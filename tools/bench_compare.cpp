/**
 * @file
 * Regression gate over "crono.bench.v1" reports.
 *
 * Compare mode (the CI gate):
 *
 *   bench_compare [--tolerance=FRAC] [--min-seconds=S] [--names-only]
 *                 BASELINE.json CURRENT.json
 *
 * matches rows by their unique "name", and fails (exit 1) when a
 * current time_seconds exceeds baseline * (1 + tolerance), or when a
 * baseline row disappeared (coverage loss is a regression too).
 * Rows faster than --min-seconds in the baseline are skipped — below
 * that, timer noise dominates any real effect. --names-only checks
 * coverage without comparing times (for cross-machine diffs, where
 * absolute times are meaningless).
 *
 * Aggregate mode (run_benches.sh --json):
 *
 *   bench_compare --aggregate OUT.json IN.json...
 *
 * merges the "results" arrays of every readable crono.bench.v1 input
 * into one document at OUT.json, skipping (with a warning) inputs
 * that carry a different schema — the per-figure series reports are
 * not row-shaped.
 *
 * Exit codes: 0 ok, 1 regression / lost coverage, 2 usage or I/O or
 * parse error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

using crono::obs::json::Value;

bool
readFile(const std::string& path, std::string* out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

/**
 * Load @p path and check it carries @p schema. @return false after
 * a stderr diagnostic on I/O, parse, or schema mismatch; when
 * @p quiet_schema is set a schema mismatch is silent (aggregate mode
 * skips those inputs by design).
 */
bool
loadReport(const std::string& path, const char* schema, Value* out,
           bool quiet_schema = false)
{
    std::string text;
    if (!readFile(path, &text)) {
        std::fprintf(stderr, "bench_compare: cannot read %s\n",
                     path.c_str());
        return false;
    }
    std::string err;
    if (!crono::obs::json::parse(text, *out, &err)) {
        std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(),
                     err.c_str());
        return false;
    }
    const Value* s = out->find("schema");
    if (s == nullptr || !s->isString() || s->str != schema) {
        if (!quiet_schema) {
            std::fprintf(stderr,
                         "bench_compare: %s: expected schema %s\n",
                         path.c_str(), schema);
        }
        return false;
    }
    return true;
}

/** The "results" rows of a crono.bench.v1 document (empty if none). */
const std::vector<Value>&
rowsOf(const Value& doc)
{
    static const std::vector<Value> kEmpty;
    const Value* results = doc.find("results");
    return results != nullptr && results->isArray() ? results->arr
                                                    : kEmpty;
}

const Value*
findRow(const std::vector<Value>& rows, const std::string& name)
{
    for (const Value& row : rows) {
        const Value* n = row.find("name");
        if (n != nullptr && n->isString() && n->str == name) {
            return &row;
        }
    }
    return nullptr;
}

double
numField(const Value& row, const char* key)
{
    const Value* v = row.find(key);
    return v != nullptr && v->isNumber() ? v->num : 0.0;
}

/** Serialize a parsed Value back through the writer. */
void
emitValue(crono::obs::JsonWriter& w, const Value& v)
{
    switch (v.kind) {
      case Value::Kind::null: w.null(); break;
      case Value::Kind::boolean: w.value(v.b); break;
      case Value::Kind::number:
        // Keep integral numbers integral (the uint64 writer path).
        if (v.num >= 0 && v.num == static_cast<double>(v.asU64())) {
            w.value(v.asU64());
        } else {
            w.value(v.num);
        }
        break;
      case Value::Kind::string: w.value(v.str); break;
      case Value::Kind::array:
        w.beginArray();
        for (const Value& e : v.arr) {
            emitValue(w, e);
        }
        w.endArray();
        break;
      case Value::Kind::object:
        w.beginObject();
        for (const auto& [k, e] : v.obj) {
            w.key(k);
            emitValue(w, e);
        }
        w.endObject();
        break;
    }
}

int
aggregate(const std::string& out_path,
          const std::vector<std::string>& inputs)
{
    crono::obs::JsonWriter w;
    w.beginObject();
    w.key("schema").value("crono.bench.v1");
    w.key("results").beginArray();
    std::size_t rows = 0, used = 0;
    for (const std::string& path : inputs) {
        Value doc;
        if (!loadReport(path, "crono.bench.v1", &doc,
                        /*quiet_schema=*/true)) {
            std::fprintf(stderr,
                         "bench_compare: skipping %s (not a "
                         "crono.bench.v1 report)\n",
                         path.c_str());
            continue;
        }
        ++used;
        // Re-emitting through the writer (rather than splicing text)
        // keeps the output canonical even if an input was hand-edited.
        for (const Value& row : rowsOf(doc)) {
            ++rows;
            emitValue(w, row);
        }
    }
    w.endArray();
    w.endObject();
    if (!crono::obs::writeTextFile(out_path, w.str())) {
        std::fprintf(stderr, "bench_compare: cannot write %s\n",
                     out_path.c_str());
        return 2;
    }
    std::printf("bench_compare: aggregated %zu rows from %zu/%zu "
                "reports into %s\n",
                rows, used, inputs.size(), out_path.c_str());
    return 0;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: bench_compare [--tolerance=FRAC] [--min-seconds=S]\n"
        "                     [--names-only] BASELINE.json "
        "CURRENT.json\n"
        "       bench_compare --aggregate OUT.json IN.json...\n");
}

} // namespace

int
main(int argc, char** argv)
{
    double tolerance = 0.10;
    double min_seconds = 0.001;
    bool names_only = false;
    bool do_aggregate = false;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const char* const a = argv[i];
        if (std::strncmp(a, "--tolerance=", 12) == 0) {
            tolerance = std::strtod(a + 12, nullptr);
        } else if (std::strncmp(a, "--min-seconds=", 14) == 0) {
            min_seconds = std::strtod(a + 14, nullptr);
        } else if (std::strcmp(a, "--names-only") == 0) {
            names_only = true;
        } else if (std::strcmp(a, "--aggregate") == 0) {
            do_aggregate = true;
        } else if (std::strncmp(a, "--", 2) == 0) {
            std::fprintf(stderr, "bench_compare: unknown option %s\n",
                         a);
            usage();
            return 2;
        } else {
            paths.emplace_back(a);
        }
    }

    if (do_aggregate) {
        if (paths.size() < 2) {
            usage();
            return 2;
        }
        const std::string out = paths.front();
        paths.erase(paths.begin());
        return aggregate(out, paths);
    }

    if (paths.size() != 2 || tolerance < 0.0) {
        usage();
        return 2;
    }
    Value base, cur;
    if (!loadReport(paths[0], "crono.bench.v1", &base) ||
        !loadReport(paths[1], "crono.bench.v1", &cur)) {
        return 2;
    }

    const std::vector<Value>& base_rows = rowsOf(base);
    const std::vector<Value>& cur_rows = rowsOf(cur);
    int regressions = 0, missing = 0, compared = 0, skipped = 0;

    for (const Value& brow : base_rows) {
        const Value* n = brow.find("name");
        if (n == nullptr || !n->isString()) {
            continue;
        }
        const Value* crow = findRow(cur_rows, n->str);
        if (crow == nullptr) {
            std::printf("MISSING   %-40s (row lost from current)\n",
                        n->str.c_str());
            ++missing;
            continue;
        }
        if (names_only) {
            ++compared;
            continue;
        }
        const double bt = numField(brow, "time_seconds");
        const double ct = numField(*crow, "time_seconds");
        if (bt < min_seconds) {
            ++skipped; // below the noise floor — uncomparable
            continue;
        }
        ++compared;
        const double ratio = ct / bt;
        if (ratio > 1.0 + tolerance) {
            std::printf("REGRESSED %-40s %.4fs -> %.4fs (%+.1f%%)\n",
                        n->str.c_str(), bt, ct,
                        (ratio - 1.0) * 100.0);
            ++regressions;
        } else if (ratio < 1.0 - tolerance) {
            std::printf("improved  %-40s %.4fs -> %.4fs (%+.1f%%)\n",
                        n->str.c_str(), bt, ct,
                        (ratio - 1.0) * 100.0);
        }
    }

    std::printf("bench_compare: %d compared, %d skipped (< %.4gs), "
                "%d regressed, %d missing (tolerance %.0f%%)\n",
                compared, skipped, min_seconds, regressions, missing,
                tolerance * 100.0);
    return regressions > 0 || missing > 0 ? 1 : 0;
}

/**
 * @file
 * crono_analyze CLI — multi-pass static analysis over files or
 * directories (DESIGN.md §16). Supersedes crono_lint.
 *
 * Usage:
 *   crono_analyze [--list-rules] [--rules-md] [--root=DIR]
 *                 [--json=FILE] [--suppressions=FILE]...
 *                 <file-or-dir>...
 *
 * --root=DIR      repo root: paths are relativized against it for
 *                 the layer policy, and scripts/suppressions/
 *                 {detector.allow,tsan.supp} under it are hygiene-
 *                 checked automatically.
 * --json=FILE     also write the crono.lint.v1 report there.
 * --rules-md      print the rule catalog as a markdown table (the
 *                 source of DESIGN.md §16's table).
 *
 * Exit status: 0 clean, 1 findings, 2 usage error. The build wires
 * `crono_analyze --root . src tools bench` in as an ALL target
 * (tools/CMakeLists.txt), so a violation anywhere in the analyzed
 * tree fails the build, not just CI. See analysis/static/passes.h
 * for the rule catalog and the layer policy, and DESIGN.md §16 for
 * the `// crono-lint: allow(rule): why` suppression lifecycle.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/static/analyzer.h"

namespace {

bool
readFile(const std::string& path, std::string* out)
{
    std::ifstream in(path);
    if (!in) {
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    *out = buf.str();
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace crono::staticlint;

    std::vector<std::string> paths;
    std::vector<std::string> supp_paths;
    std::string root;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        const auto valueOf = [&](const std::string& flag,
                                 std::string* out) -> bool {
            if (arg.rfind(flag + "=", 0) == 0) {
                *out = arg.substr(flag.size() + 1);
                return true;
            }
            if (arg == flag && i + 1 < argc) {
                *out = argv[++i];
                return true;
            }
            return false;
        };
        if (arg == "--list-rules") {
            for (const RuleInfo& r : ruleCatalog()) {
                std::printf("%-20s %s\n", std::string(r.id).c_str(),
                            std::string(r.summary).c_str());
            }
            return 0;
        }
        if (arg == "--rules-md") {
            std::printf("%s", ruleTableMarkdown().c_str());
            return 0;
        }
        if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: crono_analyze [--list-rules] [--rules-md] "
                "[--root=DIR] [--json=FILE] "
                "[--suppressions=FILE]... <file-or-dir>...\n");
            return 0;
        }
        std::string v;
        if (valueOf("--root", &v)) {
            root = v;
            continue;
        }
        if (valueOf("--json", &v)) {
            json_path = v;
            continue;
        }
        if (valueOf("--suppressions", &v)) {
            supp_paths.push_back(v);
            continue;
        }
        if (!arg.empty() && arg.front() == '-') {
            std::fprintf(stderr,
                         "crono_analyze: unknown option '%s'\n",
                         arg.c_str());
            return 2;
        }
        paths.push_back(arg);
    }
    if (paths.empty()) {
        std::fprintf(stderr,
                     "usage: crono_analyze [--list-rules] "
                     "[--rules-md] [--root=DIR] [--json=FILE] "
                     "[--suppressions=FILE]... <file-or-dir>...\n");
        return 2;
    }

    // Auto-discover the repo suppression files under --root.
    if (!root.empty() && supp_paths.empty()) {
        namespace fs = std::filesystem;
        for (const char* rel :
             {"scripts/suppressions/detector.allow",
              "scripts/suppressions/tsan.supp"}) {
            std::error_code ec;
            const fs::path p = fs::path(root) / rel;
            if (fs::is_regular_file(p, ec)) {
                supp_paths.push_back(p.string());
            }
        }
    }

    Options opt;
    opt.root = root;
    for (const std::string& sp : supp_paths) {
        std::string text;
        if (!readFile(sp, &text)) {
            std::fprintf(stderr,
                         "crono_analyze: cannot read suppression "
                         "file '%s'\n",
                         sp.c_str());
            return 2;
        }
        opt.suppression_files.push_back({sp, std::move(text)});
    }

    std::vector<std::string> files;
    for (const std::string& p : paths) {
        std::vector<std::string> fs = collectSources(p);
        if (fs.empty()) {
            std::fprintf(stderr,
                         "crono_analyze: no C++ sources under "
                         "'%s'\n",
                         p.c_str());
            return 2;
        }
        files.insert(files.end(), fs.begin(), fs.end());
    }

    const AnalysisResult res = analyzeFiles(files, opt);

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr,
                         "crono_analyze: cannot write report '%s'\n",
                         json_path.c_str());
            return 2;
        }
        out << writeReportJson(res, root) << "\n";
    }

    for (const Finding& f : res.findings) {
        std::fprintf(stderr, "%s:%d: %s: [%s] %s\n", f.file.c_str(),
                     f.line,
                     f.severity == Severity::kError ? "error"
                                                    : "warning",
                     f.rule.c_str(), f.message.c_str());
        if (!f.snippet.empty()) {
            std::fprintf(stderr, "    %s\n", f.snippet.c_str());
        }
    }
    if (!res.findings.empty()) {
        std::fprintf(
            stderr,
            "crono_analyze: %zu finding(s) in %zu file(s) "
            "(%zu suppressed by allows)\n",
            res.findings.size(), res.files_analyzed, res.suppressed);
        return 1;
    }
    std::printf("crono_analyze: %zu file(s) clean (%zu finding(s) "
                "suppressed by justified allows)\n",
                res.files_analyzed, res.suppressed);
    return 0;
}

/**
 * @file
 * crono_lint CLI — Ctx-discipline lint over files or directories.
 *
 * Usage:
 *   crono_lint [--list-rules] <file-or-dir>...
 *
 * Exit status: 0 clean, 1 findings, 2 usage error. The build wires
 * `crono_lint src/core` in as an ALL target (tools/CMakeLists.txt),
 * so a discipline violation in kernel code fails the build, not just
 * CI. See tools/lint_rules.h for the rule catalog and the
 * `// crono-lint: allow(rule): why` suppression contract.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "lint_rules.h"

int
main(int argc, char** argv)
{
    using namespace crono::lint;

    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const auto& [id, desc] : ruleCatalog()) {
                std::printf("%-14s %s\n", id.c_str(), desc.c_str());
            }
            return 0;
        }
        if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: crono_lint [--list-rules] <file-or-dir>...\n");
            return 0;
        }
        if (!arg.empty() && arg.front() == '-') {
            std::fprintf(stderr, "crono_lint: unknown option '%s'\n",
                         arg.c_str());
            return 2;
        }
        paths.push_back(arg);
    }
    if (paths.empty()) {
        std::fprintf(stderr,
                     "usage: crono_lint [--list-rules] "
                     "<file-or-dir>...\n");
        return 2;
    }

    std::size_t nfiles = 0;
    std::vector<Finding> findings;
    for (const std::string& p : paths) {
        const std::vector<std::string> files = collectSources(p);
        if (files.empty()) {
            std::fprintf(stderr,
                         "crono_lint: no C++ sources under '%s'\n",
                         p.c_str());
            return 2;
        }
        for (const std::string& f : files) {
            ++nfiles;
            for (Finding& fi : lintFile(f)) {
                findings.push_back(std::move(fi));
            }
        }
    }

    for (const Finding& f : findings) {
        std::fprintf(stderr, "%s:%d: error: [%s] %s\n", f.file.c_str(),
                     f.line, f.rule.c_str(), f.message.c_str());
    }
    if (!findings.empty()) {
        std::fprintf(stderr,
                     "crono_lint: %zu finding(s) in %zu file(s)\n",
                     findings.size(), nfiles);
        return 1;
    }
    std::printf("crono_lint: %zu file(s) clean\n", nfiles);
    return 0;
}

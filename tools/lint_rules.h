/**
 * @file
 * crono_lint — token-level Ctx-discipline checks for kernel code.
 *
 * The repo's correctness story (DESIGN.md §3, §10, §11) depends on
 * every shared access in `src/core` flowing through the ExecutionContext
 * (`ctx.read/write/fetchAdd/readAtomic`, `SimMutex`, region barriers):
 * that is what makes one kernel source measurable under the simulator
 * and checkable by the dynamic race detector. A kernel that reaches
 * for `std::atomic` or `std::mutex` directly silently bypasses both.
 * crono_lint mechanically enforces the discipline without a compiler
 * frontend: comments and string literals are stripped with a small
 * state machine, then line-oriented token rules run over the residue.
 *
 * Rules (id → what it catches):
 *  - raw-sync      std::atomic*, std::mutex, std::thread, locks,
 *                  semaphores/latches/barriers, pthread_*, __atomic_*,
 *                  __sync_* — raw synchronization that bypasses Ctx.
 *  - raw-include   #include of the headers behind raw-sync
 *                  (<atomic>, <mutex>, <thread>, ...).
 *  - parallel-stl  std::execution — hidden threading the simulator
 *                  cannot model.
 *  - volatile      `volatile` is not a synchronization primitive.
 *  - padded-slot   heuristic: `std::vector<T> x(nthreads)`-shaped
 *                  per-thread slot arrays whose element is not
 *                  Padded<T> / AlignedVector (false-sharing trap;
 *                  see rt::par's reducePerThread slots).
 *  - bad-allow     a malformed or justification-free suppression
 *                  comment (never itself suppressible).
 *
 * Suppressing a finding requires an explanation, same contract as the
 * race-detector allowlist: put
 *
 *     // crono-lint: allow(rule-id): why this is safe here
 *
 * on the offending line or the line directly above it. An allow with
 * an empty justification is a `bad-allow` finding.
 */

#ifndef CRONO_TOOLS_LINT_RULES_H_
#define CRONO_TOOLS_LINT_RULES_H_

#include <string>
#include <string_view>
#include <vector>

namespace crono::lint {

/** One lint violation. */
struct Finding {
    std::string file;
    int line = 0;       ///< 1-based
    std::string rule;   ///< rule id, e.g. "raw-sync"
    std::string message;
};

/** Rule ids with one-line descriptions, for --list-rules. */
std::vector<std::pair<std::string, std::string>> ruleCatalog();

/**
 * Replace comment bodies and string/char-literal contents of C++
 * source @p text with spaces, preserving the line structure so later
 * findings keep real line numbers. Exposed for tests.
 */
std::string stripCommentsAndStrings(std::string_view text);

/** Run every rule over @p text, reporting under file name @p path. */
std::vector<Finding> lintText(std::string_view path,
                              std::string_view text);

/**
 * lintText() over the contents of @p path. An unreadable file yields
 * a single "io" finding so a misconfigured invocation cannot pass.
 */
std::vector<Finding> lintFile(const std::string& path);

/**
 * Recursively collect C++ sources (.h/.hpp/.cpp/.cc) under @p path;
 * a regular file is returned as-is. Sorted for deterministic output.
 */
std::vector<std::string> collectSources(const std::string& path);

} // namespace crono::lint

#endif // CRONO_TOOLS_LINT_RULES_H_

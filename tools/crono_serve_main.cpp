/**
 * @file
 * crono_serve: stand up the graph query server over TCP.
 *
 * Builds (or generates) a graph, wraps it in a sharded
 * snapshot-versioned GraphStore, and serves the binary protocol of
 * serve/protocol.h on 127.0.0.1:<port>. With --smoke, instead runs a
 * self-contained loopback exercise — listen on an ephemeral port,
 * connect a TcpClient, ping / query / ingest / re-query / stats —
 * and exits nonzero on any mismatch, which is what the CI serve
 * smoke job drives.
 *
 * Usage:
 *   crono_serve [--scale=N] [--edge-factor=K] [--seed=S]
 *               [--shards=N] [--workers=N] [--threads=N]
 *               [--reorder=none|degree|hub|bfs|rcm]
 *               [--port=P] [--smoke]
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "graph/generators.h"
#include "graph/reorder.h"
#include "runtime/executor.h"
#include "serve/net.h"
#include "serve/server.h"

namespace {

using namespace crono;

struct Args {
    unsigned scale = 14;
    unsigned edge_factor = 8;
    std::uint64_t seed = 42;
    int shards = 4;
    int workers = 2;
    int threads = 2;
    graph::Reordering reorder = graph::Reordering::kDegreeSort;
    std::uint16_t port = 0;
    bool smoke = false;
};

bool
parseReordering(const char* name, graph::Reordering* out)
{
    for (const graph::Reordering r : graph::allReorderings()) {
        if (std::strcmp(name, graph::reorderingName(r)) == 0) {
            *out = r;
            return true;
        }
    }
    return false;
}

bool
parseArgs(int argc, char** argv, Args* a)
{
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strncmp(arg, "--scale=", 8) == 0) {
            a->scale = static_cast<unsigned>(std::atoi(arg + 8));
        } else if (std::strncmp(arg, "--edge-factor=", 14) == 0) {
            a->edge_factor =
                static_cast<unsigned>(std::atoi(arg + 14));
        } else if (std::strncmp(arg, "--seed=", 7) == 0) {
            a->seed = std::strtoull(arg + 7, nullptr, 10);
        } else if (std::strncmp(arg, "--shards=", 9) == 0) {
            a->shards = std::atoi(arg + 9);
        } else if (std::strncmp(arg, "--workers=", 10) == 0) {
            a->workers = std::atoi(arg + 10);
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            a->threads = std::atoi(arg + 10);
        } else if (std::strncmp(arg, "--reorder=", 10) == 0) {
            if (!parseReordering(arg + 10, &a->reorder)) {
                std::fprintf(stderr, "unknown reordering: %s\n",
                             arg + 10);
                return false;
            }
        } else if (std::strncmp(arg, "--port=", 7) == 0) {
            a->port = static_cast<std::uint16_t>(std::atoi(arg + 7));
        } else if (std::strcmp(arg, "--smoke") == 0) {
            a->smoke = true;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg);
            return false;
        }
    }
    return true;
}

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop = true;
}

/** The --smoke loopback exercise. @return process exit code. */
int
runSmoke(std::uint16_t port)
{
    serve::TcpClient client("127.0.0.1", port);
    if (!client.connected()) {
        std::fprintf(stderr, "smoke: connect failed\n");
        return 1;
    }

    serve::Request req;
    req.op = serve::Op::kPing;
    serve::Response r = client.call(req);
    if (r.status != serve::Status::kOk || r.epoch == 0) {
        std::fprintf(stderr, "smoke: ping failed (%s)\n",
                     serve::statusName(r.status));
        return 1;
    }
    const std::uint64_t epoch0 = r.epoch;

    req = {};
    req.op = serve::Op::kSsspDist;
    req.source = 0;
    req.target = 1;
    const serve::Response before = client.call(req);
    if (before.status != serve::Status::kOk ||
        before.values.size() != 1) {
        std::fprintf(stderr, "smoke: sssp failed (%s)\n",
                     serve::statusName(before.status));
        return 1;
    }

    // Ingest a short zero-ish-weight path 0 - 1: the distance after
    // must be <= the distance before (new edges only add paths).
    req = {};
    req.op = serve::Op::kIngest;
    req.edges.push_back({0, 1, 1});
    r = client.call(req);
    if (r.status != serve::Status::kOk || r.epoch <= epoch0) {
        std::fprintf(stderr, "smoke: ingest failed (%s)\n",
                     serve::statusName(r.status));
        return 1;
    }

    req = {};
    req.op = serve::Op::kSsspDist;
    req.source = 0;
    req.target = 1;
    const serve::Response after = client.call(req);
    if (after.status != serve::Status::kOk ||
        after.values.size() != 1 || after.epoch <= epoch0 ||
        after.values[0] > 1) {
        std::fprintf(stderr, "smoke: post-ingest distance wrong\n");
        return 1;
    }

    req = {};
    req.op = serve::Op::kCompact;
    r = client.call(req);
    if (r.status != serve::Status::kOk) {
        std::fprintf(stderr, "smoke: compact failed\n");
        return 1;
    }

    req = {};
    req.op = serve::Op::kSsspDist;
    req.source = 0;
    req.target = 1;
    const serve::Response compacted = client.call(req);
    if (compacted.status != serve::Status::kOk ||
        compacted.values != after.values) {
        std::fprintf(stderr,
                     "smoke: compaction changed an answer\n");
        return 1;
    }

    req = {};
    req.op = serve::Op::kStats;
    r = client.call(req);
    if (r.status != serve::Status::kOk ||
        r.text.find("crono.serve.v1") == std::string::npos) {
        std::fprintf(stderr, "smoke: stats document missing\n");
        return 1;
    }
    std::printf("%s\n", r.text.c_str());
    std::printf("smoke: ok (epoch %llu -> %llu)\n",
                static_cast<unsigned long long>(epoch0),
                static_cast<unsigned long long>(compacted.epoch));
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    Args args;
    if (!parseArgs(argc, argv, &args)) {
        return 2;
    }
    if (args.smoke) {
        // Keep the self-test fast regardless of defaults.
        args.scale = std::min(args.scale, 10u);
    }

    std::printf("building kronecker scale %u (seed %llu)...\n",
                args.scale,
                static_cast<unsigned long long>(args.seed));
    graph::Graph g = graph::generators::kronecker(
        args.scale, args.edge_factor, /*max_weight=*/64, args.seed);

    serve::StoreConfig store_cfg;
    store_cfg.num_shards = args.shards;
    store_cfg.reordering = args.reorder;
    serve::GraphStore store(std::move(g), store_cfg);

    rt::NativeExecutor exec(args.threads);
    serve::ServerConfig server_cfg;
    server_cfg.num_workers = args.workers;
    server_cfg.query.nthreads = args.threads;
    serve::Server server(store, exec, server_cfg);
    server.start();

    serve::TcpListener listener(server, args.port);
    if (!listener.start()) {
        std::fprintf(stderr, "cannot bind 127.0.0.1:%u\n", args.port);
        server.stop();
        return 1;
    }
    std::printf("serving %llu vertices / %llu edge slots on "
                "127.0.0.1:%u (%d shards, %s order)\n",
                static_cast<unsigned long long>(
                    store.snapshot()->numVertices()),
                static_cast<unsigned long long>(
                    store.snapshot()->numEdges()),
                listener.port(), store.numShards(),
                graph::reorderingName(store_cfg.reordering));

    int code = 0;
    if (args.smoke) {
        code = runSmoke(listener.port());
    } else {
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        while (!g_stop) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
        std::printf("shutting down\n");
    }
    listener.stop();
    server.stop();
    return code;
}

#include "lint_rules.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace crono::lint {

namespace {

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/** Banned synchronization tokens (prefix-matched past the shown text,
 *  so std::atomic also catches std::atomic_ref / std::atomic<T>). */
constexpr std::string_view kRawSyncTokens[] = {
    "std::atomic",     "std::mutex",        "std::shared_mutex",
    "std::timed_mutex", "std::recursive_mutex",
    "std::condition_variable",
    "std::lock_guard", "std::unique_lock",  "std::scoped_lock",
    "std::shared_lock",
    "std::counting_semaphore", "std::binary_semaphore",
    "std::barrier",    "std::latch",
    "std::thread",     "std::jthread",
    "std::call_once",  "std::once_flag",
    "std::future",     "std::promise",      "std::async",
    "pthread_",        "__atomic_",         "__sync_",
};

constexpr std::string_view kRawIncludes[] = {
    "atomic",    "mutex",     "shared_mutex", "thread",
    "condition_variable",     "barrier",      "latch",
    "semaphore", "future",    "stop_token",   "execution",
};

/** True when @p pos in @p line starts token @p tok on a left word
 *  boundary (the right side is deliberately prefix-matched). */
bool
tokenAt(std::string_view line, std::size_t pos, std::string_view tok)
{
    if (line.compare(pos, tok.size(), tok) != 0) {
        return false;
    }
    if (pos > 0 && (identChar(line[pos - 1]) || line[pos - 1] == ':')) {
        return false;
    }
    return true;
}

/** First position of @p tok on a left word boundary, or npos. */
std::size_t
findToken(std::string_view line, std::string_view tok,
          bool whole_word = false)
{
    std::size_t pos = 0;
    while ((pos = line.find(tok, pos)) != std::string_view::npos) {
        const bool left_ok = tokenAt(line, pos, tok);
        const std::size_t end = pos + tok.size();
        const bool right_ok =
            !whole_word || end >= line.size() || !identChar(line[end]);
        if (left_ok && right_ok) {
            return pos;
        }
        ++pos;
    }
    return std::string_view::npos;
}

/** Allow-directive index: line number → rule ids allowed there. */
struct Allows {
    std::map<int, std::set<std::string>> by_line;
    std::vector<Finding> bad; ///< malformed directives

    bool
    covers(int line, const std::string& rule) const
    {
        for (const int l : {line, line - 1}) {
            const auto it = by_line.find(l);
            if (it != by_line.end() && it->second.count(rule) != 0) {
                return true;
            }
        }
        return false;
    }
};

std::string_view
trim(std::string_view s)
{
    while (!s.empty() && std::isspace(static_cast<unsigned char>(
                             s.front())) != 0) {
        s.remove_prefix(1);
    }
    while (!s.empty() &&
           std::isspace(static_cast<unsigned char>(s.back())) != 0) {
        s.remove_suffix(1);
    }
    return s;
}

/** Parse `// crono-lint: allow(rule): justification` directives from
 *  the *raw* text (they live inside comments, so this runs before
 *  stripping). */
Allows
parseAllows(std::string_view path, std::string_view text)
{
    Allows allows;
    constexpr std::string_view kMarker = "crono-lint:";
    int lineno = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t nl = text.find('\n', pos);
        const std::string_view line = text.substr(
            pos, nl == std::string_view::npos ? nl : nl - pos);
        pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
        ++lineno;
        const std::size_t m = line.find(kMarker);
        if (m == std::string_view::npos) {
            continue;
        }
        const auto bad = [&](const std::string& why) {
            allows.bad.push_back({std::string(path), lineno,
                                  "bad-allow", why});
        };
        std::string_view rest = trim(line.substr(m + kMarker.size()));
        constexpr std::string_view kAllow = "allow(";
        if (rest.substr(0, kAllow.size()) != kAllow) {
            bad("crono-lint directive is not 'allow(rule): ...'");
            continue;
        }
        rest.remove_prefix(kAllow.size());
        const std::size_t close = rest.find(')');
        if (close == std::string_view::npos) {
            bad("unterminated allow(rule)");
            continue;
        }
        const std::string rule{trim(rest.substr(0, close))};
        rest = trim(rest.substr(close + 1));
        if (rest.empty() || rest.front() != ':' ||
            trim(rest.substr(1)).empty()) {
            bad("allow(" + rule +
                ") has no justification — write 'allow(" + rule +
                "): why this is safe here'");
            continue;
        }
        const auto catalog = ruleCatalog();
        const bool known = std::any_of(
            catalog.begin(), catalog.end(),
            [&](const auto& r) { return r.first == rule; });
        if (!known) {
            bad("allow(" + rule + "): unknown rule id");
            continue;
        }
        allows.by_line[lineno].insert(rule);
    }
    return allows;
}

/** The padded-slot heuristic over one stripped line (plus lookahead
 *  text for a constructor argument list that wraps). */
void
paddedSlotRule(std::string_view path, int lineno, std::string_view line,
               std::string_view lookahead, std::vector<Finding>& out)
{
    std::size_t pos = 0;
    constexpr std::string_view kVec = "std::vector<";
    while ((pos = line.find(kVec, pos)) != std::string_view::npos) {
        // Extract the template argument by balancing angle brackets.
        std::size_t i = pos + kVec.size();
        int depth = 1;
        while (i < line.size() && depth > 0) {
            if (line[i] == '<') {
                ++depth;
            } else if (line[i] == '>') {
                --depth;
            }
            ++i;
        }
        if (depth != 0) {
            break; // argument spans lines; give up on this one
        }
        const std::string_view arg =
            line.substr(pos + kVec.size(), i - pos - kVec.size() - 1);
        pos = i;
        if (arg.find("Padded") != std::string_view::npos ||
            arg.find("AlignedVector") != std::string_view::npos) {
            continue;
        }
        // Sized by a thread count before the statement ends?
        std::string_view tail = line.substr(i);
        const std::string_view more =
            lookahead.substr(0, std::min<std::size_t>(lookahead.size(),
                                                      160));
        std::string window{tail};
        window += more;
        const std::size_t semi = window.find(';');
        if (semi != std::string_view::npos) {
            window.resize(semi);
        }
        for (const std::string_view tc :
             {std::string_view("nthreads"), std::string_view("nThreads"),
              std::string_view("num_threads"),
              std::string_view("numThreads")}) {
            if (findToken(window, tc, /*whole_word=*/true) !=
                std::string_view::npos) {
                out.push_back(
                    {std::string(path), lineno, "padded-slot",
                     "per-thread slot vector 'std::vector<" +
                         std::string(arg) +
                         ">' sized by a thread count — use "
                         "Padded<T> elements (rt::par) to avoid "
                         "false sharing"});
                break;
            }
        }
    }
}

} // namespace

std::vector<std::pair<std::string, std::string>>
ruleCatalog()
{
    return {
        {"raw-sync",
         "raw std:: synchronization / threads / pthread / builtin "
         "atomics — use the ExecutionContext"},
        {"raw-include",
         "#include of a threading or atomics header"},
        {"parallel-stl",
         "std::execution policies hide threads the simulator cannot "
         "model"},
        {"volatile", "volatile is not a synchronization primitive"},
        {"padded-slot",
         "per-thread accumulator slots must be padded (Padded<T>)"},
        {"bad-allow",
         "malformed or justification-free crono-lint allow comment"},
    };
}

std::string
stripCommentsAndStrings(std::string_view text)
{
    std::string out(text);
    enum class State {
        kCode,
        kLineComment,
        kBlockComment,
        kString,
        kChar,
        kRawString,
    };
    State st = State::kCode;
    std::string raw_delim; // the )delim" closer for raw strings
    for (std::size_t i = 0; i < out.size(); ++i) {
        const char c = out[i];
        const char n = i + 1 < out.size() ? out[i + 1] : '\0';
        switch (st) {
          case State::kCode:
            if (c == '/' && n == '/') {
                st = State::kLineComment;
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c == '/' && n == '*') {
                st = State::kBlockComment;
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c == 'R' && n == '"' &&
                       (i == 0 || !identChar(out[i - 1]))) {
                // R"delim( ... )delim"
                std::size_t p = i + 2;
                while (p < out.size() && out[p] != '(') {
                    ++p;
                }
                raw_delim = ")";
                raw_delim += out.substr(i + 2, p - (i + 2));
                raw_delim += '"';
                for (std::size_t k = i; k < out.size() && k <= p; ++k) {
                    if (out[k] != '\n') {
                        out[k] = ' ';
                    }
                }
                i = p;
                st = State::kRawString;
            } else if (c == '"') {
                st = State::kString;
            } else if (c == '\'') {
                st = State::kChar;
            }
            break;
          case State::kLineComment:
            if (c == '\n') {
                st = State::kCode;
            } else {
                out[i] = ' ';
            }
            break;
          case State::kBlockComment:
            if (c == '*' && n == '/') {
                out[i] = out[i + 1] = ' ';
                ++i;
                st = State::kCode;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case State::kString:
          case State::kChar: {
            const char close = st == State::kString ? '"' : '\'';
            if (c == '\\') {
                out[i] = ' ';
                if (i + 1 < out.size() && out[i + 1] != '\n') {
                    out[i + 1] = ' ';
                }
                ++i;
            } else if (c == close) {
                st = State::kCode;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          }
          case State::kRawString:
            if (out.compare(i, raw_delim.size(), raw_delim) == 0) {
                for (std::size_t k = 0; k < raw_delim.size(); ++k) {
                    out[i + k] = ' ';
                }
                i += raw_delim.size() - 1;
                st = State::kCode;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        }
    }
    return out;
}

std::vector<Finding>
lintText(std::string_view path, std::string_view text)
{
    const Allows allows = parseAllows(path, text);
    const std::string stripped = stripCommentsAndStrings(text);

    std::vector<Finding> raw;
    int lineno = 0;
    std::size_t pos = 0;
    const std::string_view sv = stripped;
    while (pos <= sv.size()) {
        const std::size_t nl = sv.find('\n', pos);
        const std::string_view line =
            sv.substr(pos, nl == std::string_view::npos ? nl : nl - pos);
        const std::string_view lookahead =
            nl == std::string_view::npos ? std::string_view{}
                                         : sv.substr(nl + 1);
        pos = nl == std::string_view::npos ? sv.size() + 1 : nl + 1;
        ++lineno;

        for (const std::string_view tok : kRawSyncTokens) {
            if (findToken(line, tok) != std::string_view::npos) {
                raw.push_back({std::string(path), lineno, "raw-sync",
                               "raw synchronization '" +
                                   std::string(tok) +
                                   "' bypasses the ExecutionContext — "
                                   "use ctx.read/write/fetchAdd, "
                                   "SimMutex, or rt::par"});
            }
        }
        const std::size_t inc = line.find("#include");
        if (inc != std::string_view::npos) {
            const std::size_t lt = line.find('<', inc);
            const std::size_t gt = lt == std::string_view::npos
                                       ? std::string_view::npos
                                       : line.find('>', lt);
            if (gt != std::string_view::npos) {
                const std::string_view hdr =
                    line.substr(lt + 1, gt - lt - 1);
                for (const std::string_view banned : kRawIncludes) {
                    if (hdr == banned) {
                        raw.push_back(
                            {std::string(path), lineno, "raw-include",
                             "#include <" + std::string(hdr) +
                                 "> pulls raw threading into kernel "
                                 "code"});
                    }
                }
            }
        }
        if (findToken(line, "std::execution") !=
            std::string_view::npos) {
            raw.push_back({std::string(path), lineno, "parallel-stl",
                           "std::execution policies spawn threads the "
                           "simulator cannot observe"});
        }
        if (findToken(line, "volatile", /*whole_word=*/true) !=
            std::string_view::npos) {
            raw.push_back({std::string(path), lineno, "volatile",
                           "volatile does not order or atomicize "
                           "accesses — use Ctx primitives"});
        }
        paddedSlotRule(path, lineno, line, lookahead, raw);
    }

    std::vector<Finding> out = allows.bad; // never suppressible
    for (Finding& f : raw) {
        if (!allows.covers(f.line, f.rule)) {
            out.push_back(std::move(f));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const Finding& a, const Finding& b) {
                  return a.line < b.line;
              });
    return out;
}

std::vector<Finding>
lintFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        return {{path, 0, "io", "cannot read file"}};
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return lintText(path, buf.str());
}

std::vector<std::string>
collectSources(const std::string& path)
{
    namespace fs = std::filesystem;
    std::vector<std::string> out;
    std::error_code ec;
    if (fs::is_regular_file(path, ec)) {
        out.push_back(path);
        return out;
    }
    const std::set<std::string> exts{".h", ".hpp", ".cpp", ".cc"};
    for (fs::recursive_directory_iterator it(path, ec), end;
         !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() &&
            exts.count(it->path().extension().string()) != 0) {
            out.push_back(it->path().string());
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace crono::lint

#!/usr/bin/env bash
# Build the test suite under ThreadSanitizer and run the kernel /
# frontier consistency tests in every frontier mode. Simulator-backed
# suites (*Sim*) are excluded: SimExecutor schedules fibers with
# ucontext swaps, which TSan cannot track (it sees one OS thread's
# stack "jumping" and reports false positives). Logical races on the
# simulated path are covered instead by the dynamic race detector
# (src/analysis, race_detector_test). The native-executor tests are
# the ones with real data races to find, and they cover all frontier
# modes.
#
# Suppressions come from scripts/suppressions/tsan.supp. The same
# justification contract as the detector allowlist is enforced here
# structurally: every suppression directive must be immediately
# preceded by a non-empty '#' comment block, or this script fails
# before running anything.
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"
SUPP_FILE="scripts/suppressions/tsan.supp"

# --- Validate the suppression file: entries need justifications. ----
awk '
    /^[[:space:]]*$/ { pending = 0; next }          # blank detaches
    /^[[:space:]]*#/ {                               # comment line
        line = $0; sub(/^[[:space:]]*#[[:space:]]*/, "", line)
        if (line != "") pending = 1
        next
    }
    {
        if (!pending) {
            printf "%s:%d: suppression \"%s\" has no justification " \
                   "comment — explain why the race is acceptable\n", \
                   FILENAME, FNR, $0 > "/dev/stderr"
            bad = 1
        }
        pending = 0
    }
    END { exit bad }
' "$SUPP_FILE"
echo "== $SUPP_FILE: all entries justified =="

cmake -B "$BUILD_DIR" -S . -DCRONO_SANITIZE=tsan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
TARGETS="frontier_test kernels_path_test kernels_search_test \
         kernels_processing_test kernels_consistency_test runtime_test \
         par_equivalence_test"
# shellcheck disable=SC2086
cmake --build "$BUILD_DIR" --target $TARGETS -j "$(nproc)"

export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 \
suppressions=$(pwd)/$SUPP_FILE"
status=0
for t in $TARGETS; do
    bin="$(find "$BUILD_DIR" -name "$t" -type f | head -n 1)"
    echo "== TSan: $t =="
    if ! "$bin" --gtest_filter='-*Sim*' --gtest_brief=1; then
        status=1
    fi
done
exit "$status"

#!/usr/bin/env bash
# Build the test suite under ThreadSanitizer and run the kernel /
# frontier consistency tests in every frontier mode. Simulator-backed
# suites (*Sim*) are excluded: SimExecutor schedules fibers with
# ucontext swaps, which TSan cannot track (it sees one OS thread's
# stack "jumping" and reports false positives). The native-executor
# tests are the ones with real data races to find, and they cover all
# three FrontierMode paths (flagscan, sparse, adaptive).
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DCRONO_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
TARGETS="frontier_test kernels_path_test kernels_search_test \
         kernels_processing_test kernels_consistency_test runtime_test \
         par_equivalence_test"
# shellcheck disable=SC2086
cmake --build "$BUILD_DIR" --target $TARGETS -j "$(nproc)"

export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
status=0
for t in $TARGETS; do
    bin="$(find "$BUILD_DIR" -name "$t" -type f | head -n 1)"
    echo "== TSan: $t =="
    if ! "$bin" --gtest_filter='-*Sim*' --gtest_brief=1; then
        status=1
    fi
done
exit "$status"

#!/bin/bash
# New-violations-only clang-tidy gate (DESIGN.md §16).
#
# Runs clang-tidy (checks from .clang-tidy) over every translation
# unit in compile_commands.json under src/, tools/ and bench/,
# normalizes the diagnostics to stable "file:line: check" lines, and
# diffs them against the committed baseline
# (scripts/clang_tidy_baseline.txt). Only *new* lines fail the gate,
# so pre-existing debt does not block unrelated PRs; shrinking the
# baseline is always welcome.
#
# Degrades gracefully: when clang-tidy is not installed (the CI
# container does not ship it) the script prints a notice and exits 0 —
# the leg is advisory, crono_analyze is the blocking analysis gate.
#
# Usage: scripts/check_clang_tidy.sh [BUILD_DIR] [--update-baseline]
set -eu
cd "$(dirname "$0")/.."

build="build"
update=0
for arg in "$@"; do
  case "$arg" in
    --update-baseline) update=1 ;;
    *) build="$arg" ;;
  esac
done

baseline="scripts/clang_tidy_baseline.txt"
tidy=""
for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
            clang-tidy-15 clang-tidy-14; do
  if command -v "$cand" > /dev/null 2>&1; then
    tidy="$cand"
    break
  fi
done
if [ -z "$tidy" ]; then
  echo "check_clang_tidy: clang-tidy not installed; skipping (advisory leg)"
  exit 0
fi

if [ ! -f "$build/compile_commands.json" ]; then
  echo "check_clang_tidy: $build/compile_commands.json missing;"
  echo "configure with cmake first (CMAKE_EXPORT_COMPILE_COMMANDS is ON)"
  exit 2
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# TUs from the compilation database, restricted to our own trees.
sed -n 's/.*"file": *"\([^"]*\)".*/\1/p' "$build/compile_commands.json" |
  grep -E '/(src|tools|bench)/' | sort -u > "$tmp/tus" || true
if [ ! -s "$tmp/tus" ]; then
  echo "check_clang_tidy: no src/tools/bench TUs in the database"
  exit 2
fi
echo "check_clang_tidy: $tidy over $(wc -l < "$tmp/tus") TUs"

# Normalize to repo-relative "file:line: check" so the baseline is
# stable across machines and unrelated line content changes upstream
# do not spuriously churn it.
root="$(pwd)"
xargs -a "$tmp/tus" -n 8 -P "$(nproc)" "$tidy" -p "$build" --quiet \
  > "$tmp/raw" 2> /dev/null || true
sed -n "s|^$root/\([^:]*\):\([0-9]*\):[0-9]*: warning: .*\[\(.*\)\]\$|\1:\2: \3|p" \
  "$tmp/raw" | sort -u > "$tmp/now"

if [ "$update" = 1 ]; then
  {
    echo "# clang-tidy baseline: known pre-existing diagnostics."
    echo "# Regenerate with scripts/check_clang_tidy.sh --update-baseline."
    cat "$tmp/now"
  } > "$baseline"
  echo "check_clang_tidy: baseline updated ($(wc -l < "$tmp/now") entries)"
  exit 0
fi

grep -v '^#' "$baseline" 2> /dev/null | sort -u > "$tmp/base" || true
new="$(comm -13 "$tmp/base" "$tmp/now" || true)"
if [ -n "$new" ]; then
  echo "check_clang_tidy: NEW diagnostics not in $baseline:"
  echo "$new"
  echo "fix them or (only with justification) --update-baseline"
  exit 1
fi
fixed=$(comm -23 "$tmp/base" "$tmp/now" | wc -l)
echo "check_clang_tidy: clean ($(wc -l < "$tmp/now") known, $fixed baseline entries now fixed)"

#!/bin/bash
# Self-test of the bench_compare regression gate, plus the gate
# itself. Three legs:
#
#  1. Fixture sanity: comparing the committed baseline against itself
#     must pass, and against the committed +25% regressed variant
#     (bench/baselines/gap_quick_t1_regressed.json) must fail — this
#     proves the gate can actually catch a regression before we trust
#     its green.
#  2. Coverage: a fresh bench_gap --quick run must still emit every
#     row name the committed baseline has (--names-only: absolute
#     times are machine-specific, row coverage is not).
#  3. Live stability: two back-to-back --quick runs on this machine
#     compared with a wide tolerance, catching only order-of-magnitude
#     blowups rather than scheduler noise.
#  4. The same coverage + stability legs for bench_bnb against
#     bench/baselines/bnb_quick_t1.json (the branch-and-bound
#     thread/mode scaling table).
#  5. The same coverage + stability legs for bench_serve against
#     bench/baselines/serve_quick.json — a serve run must keep
#     emitting every request-class row (latency values are gated only
#     against same-machine blowups; p50/p99 magnitudes are
#     machine-specific).
#
# Usage: scripts/check_regression.sh [BUILD_DIR]   (default: build)
set -eu
cd "$(dirname "$0")/.."

build="${1:-build}"
compare="$build/tools/bench_compare"
gap="$build/bench/bench_gap"
baseline="bench/baselines/gap_quick_t1.json"
regressed="bench/baselines/gap_quick_t1_regressed.json"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== 1. fixture sanity =="
"$compare" "$baseline" "$baseline"
if "$compare" --tolerance=0.20 --min-seconds=0 "$baseline" "$regressed"; then
  echo "ERROR: gate did not flag the committed +25% regression fixture"
  exit 1
fi
echo "gate correctly flags the regressed fixture"

echo "== 2. row coverage vs committed baseline =="
mkdir -p "$tmp/a" "$tmp/b"
"$gap" --quick --threads=1 --json="$tmp/a" > /dev/null
"$compare" --names-only "$baseline" "$tmp/a/table_gap.json"

echo "== 3. live same-machine stability =="
"$gap" --quick --threads=1 --json="$tmp/b" > /dev/null
"$compare" --tolerance=4.0 --min-seconds=0.003 \
  "$tmp/a/table_gap.json" "$tmp/b/table_gap.json"

echo "== 4. branch-and-bound coverage + stability =="
bnb="$build/bench/bench_bnb"
bnb_baseline="bench/baselines/bnb_quick_t1.json"
"$bnb" --quick --threads=1 --json="$tmp/a" > /dev/null
"$compare" --names-only "$bnb_baseline" "$tmp/a/table_bnb.json"
"$bnb" --quick --threads=1 --json="$tmp/b" > /dev/null
"$compare" --tolerance=4.0 --min-seconds=0.003 \
  "$tmp/a/table_bnb.json" "$tmp/b/table_bnb.json"

echo "== 5. serve load-generator coverage + stability =="
serve="$build/bench/bench_serve"
serve_baseline="bench/baselines/serve_quick.json"
"$serve" --quick --json="$tmp/a" > /dev/null
"$compare" --names-only "$serve_baseline" "$tmp/a/table_serve.json"
"$serve" --quick --json="$tmp/b" > /dev/null
"$compare" --tolerance=4.0 --min-seconds=0.003 \
  "$tmp/a/table_serve.json" "$tmp/b/table_serve.json"

echo "check_regression: all gates passed"

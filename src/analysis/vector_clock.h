/**
 * @file
 * Vector clocks and epochs for happens-before race detection.
 *
 * Terminology follows FastTrack (Flanagan & Freund, PLDI 2009): an
 * *epoch* c@t is one thread's scalar clock value paired with its id —
 * the compressed representation of "the last access was by t at time
 * c", sufficient whenever accesses to a variable are totally ordered
 * by happens-before. A full VectorClock is only materialized where
 * the total order genuinely breaks (concurrent readers).
 */

#ifndef CRONO_ANALYSIS_VECTOR_CLOCK_H_
#define CRONO_ANALYSIS_VECTOR_CLOCK_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace crono::analysis {

/** One access's identity: thread @p tid at scalar clock @p clk. */
struct Epoch {
    std::uint64_t clk = 0;
    int tid = -1;

    bool valid() const { return tid >= 0; }
    void reset() { clk = 0; tid = -1; }
};

/** Fixed-width vector clock over the region's thread ids. */
class VectorClock {
  public:
    VectorClock() = default;

    explicit VectorClock(int nthreads)
        : c_(static_cast<std::size_t>(nthreads), 0)
    {
    }

    int size() const { return static_cast<int>(c_.size()); }

    std::uint64_t
    get(int tid) const
    {
        return c_[static_cast<std::size_t>(tid)];
    }

    void
    set(int tid, std::uint64_t value)
    {
        c_[static_cast<std::size_t>(tid)] = value;
    }

    /** this := elementwise max(this, other). */
    void
    join(const VectorClock& other)
    {
        for (std::size_t i = 0; i < c_.size(); ++i) {
            c_[i] = std::max(c_[i], other.c_[i]);
        }
    }

    /** All components zero (a fresh/reset clock). */
    bool
    zero() const
    {
        return std::all_of(c_.begin(), c_.end(),
                           [](std::uint64_t v) { return v == 0; });
    }

    void clear() { std::fill(c_.begin(), c_.end(), 0); }

    /**
     * Does the access epoch @p e happen before (or equal) this
     * thread's view? e.clk <= C[e.tid] means the accessing thread's
     * knowledge includes e — the FastTrack ordering test.
     */
    bool
    covers(const Epoch& e) const
    {
        return e.clk <= get(e.tid);
    }

  private:
    std::vector<std::uint64_t> c_;
};

} // namespace crono::analysis

#endif // CRONO_ANALYSIS_VECTOR_CLOCK_H_

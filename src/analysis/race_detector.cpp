#include "analysis/race_detector.h"

#include <algorithm>

#include "common/macros.h"
#include "obs/telemetry.h"

namespace crono::analysis {

namespace {

/** Sorted-vector set intersection in place. */
void
intersectInto(std::vector<std::uintptr_t>& into,
              const std::vector<std::uintptr_t>& other)
{
    std::vector<std::uintptr_t> out;
    std::set_intersection(into.begin(), into.end(), other.begin(),
                          other.end(), std::back_inserter(out));
    into = std::move(out);
}

/** Insert into a sorted vector (no duplicates). */
void
sortedInsert(std::vector<std::uintptr_t>& v, std::uintptr_t x)
{
    const auto it = std::lower_bound(v.begin(), v.end(), x);
    if (it == v.end() || *it != x) {
        v.insert(it, x);
    }
}

void
sortedErase(std::vector<std::uintptr_t>& v, std::uintptr_t x)
{
    const auto it = std::lower_bound(v.begin(), v.end(), x);
    if (it != v.end() && *it == x) {
        v.erase(it);
    }
}

} // namespace

const char*
accessKindName(AccessKind kind)
{
    switch (kind) {
      case AccessKind::kRead:
        return "read";
      case AccessKind::kWrite:
        return "write";
      case AccessKind::kAtomicRmw:
        return "atomic-rmw";
    }
    return "?";
}

void
RaceDetector::onRegionBegin(int nthreads)
{
    CRONO_REQUIRE(nthreads >= 1, "race detector: empty region");
    nthreads_ = nthreads;
    clocks_.assign(static_cast<std::size_t>(nthreads),
                   VectorClock(nthreads));
    for (int t = 0; t < nthreads; ++t) {
        // Epoch 0 is "before the region"; every live access gets a
        // positive clock, so a default Epoch never orders anything.
        clocks_[static_cast<std::size_t>(t)].set(t, 1);
    }
    held_.assign(static_cast<std::size_t>(nthreads), {});
    lockClocks_.clear();
    syncClocks_.clear();
    shadow_.clear();
    barrierJoin_ = VectorClock(nthreads);
    barrierArrived_ = 0;
    // races_ / totals persist across regions (cleared via clear()).
}

std::uint64_t
RaceDetector::epochOf(int tid) const
{
    return clocks_[static_cast<std::size_t>(tid)].get(tid);
}

void
RaceDetector::tick(int tid)
{
    VectorClock& c = clocks_[static_cast<std::size_t>(tid)];
    c.set(tid, c.get(tid) + 1);
}

void
RaceDetector::report(VarState& vs, std::uintptr_t addr,
                     AccessKind prior, AccessKind current,
                     int prior_tid, int cur_tid,
                     std::uint64_t prior_clock)
{
    if (vs.reported) {
        return; // one record per address per region
    }
    vs.reported = true;
    ++total_;

    RaceRecord rec;
    rec.addr = addr;
    rec.size = vs.size;
    rec.prior_kind = prior;
    rec.current_kind = current;
    rec.prior_tid = prior_tid;
    rec.current_tid = cur_tid;
    rec.prior_clock = prior_clock;
    rec.current_clock = epochOf(cur_tid);
    rec.lockset_empty = !vs.lockset_valid || vs.lockset.empty();
    rec.region = region_;
    // Attribution through the telemetry recorder's live spans: the
    // kernel driver's ScopedHostSpan names the kernel; the racing
    // simulated thread's innermost span (if any) narrows the phase.
    if (obs::Recorder* r = obs::sink()) {
        if (const obs::Track* host = r->peek(obs::TrackKind::kHost, 0)) {
            if (host->liveName() != nullptr) {
                rec.kernel = host->liveName();
            }
        }
        if (const obs::Track* t =
                r->peek(obs::TrackKind::kSimThread, cur_tid)) {
            if (t->liveName() != nullptr) {
                rec.span = t->liveName();
            }
        }
    }
    if (const SuppressionEntry* e =
            suppressions_.match(rec.kernel, rec.span, rec.region)) {
        rec.suppressed_by = e->pattern;
    } else {
        ++unsuppressed_;
    }
    if (races_.size() < kMaxRecords) {
        races_.push_back(std::move(rec));
    }
}

void
RaceDetector::eraserUpdate(VarState& vs, int tid)
{
    const auto& held = held_[static_cast<std::size_t>(tid)];
    if (!vs.lockset_valid) {
        vs.lockset = held;
        vs.lockset_valid = true;
        vs.first_tid = tid;
        return;
    }
    if (tid != vs.first_tid) {
        vs.shared = true;
    }
    if (vs.shared) {
        intersectInto(vs.lockset, held);
    }
}

void
RaceDetector::onSharedRead(int tid, std::uintptr_t addr,
                           std::uint32_t size)
{
    VarState& vs = shadow_[addr];
    vs.size = size;
    // Refine the Eraser lockset with this access's held set first, so
    // a report sees the candidate set *including* the racing access.
    eraserUpdate(vs, tid);
    const VectorClock& c = clocks_[static_cast<std::size_t>(tid)];
    if (vs.w.valid() && !c.covers(vs.w)) {
        report(vs, addr, vs.w_kind, AccessKind::kRead, vs.w.tid, tid,
               vs.w.clk);
    }
    const Epoch mine{epochOf(tid), tid};
    if (vs.rv != nullptr) {
        vs.rv->set(tid, mine.clk);
    } else if (!vs.r.valid() || vs.r.tid == tid || c.covers(vs.r)) {
        vs.r = mine; // reads still totally ordered: keep the epoch
    } else {
        // Genuinely concurrent readers: promote to a read vector.
        vs.rv = std::make_unique<VectorClock>(nthreads_);
        vs.rv->set(vs.r.tid, vs.r.clk);
        vs.rv->set(tid, mine.clk);
        vs.r.reset();
    }
    tick(tid);
}

void
RaceDetector::writeChecksAndUpdate(int tid, std::uintptr_t addr,
                                   std::uint32_t size, AccessKind kind)
{
    VarState& vs = shadow_[addr];
    vs.size = size;
    eraserUpdate(vs, tid);
    const VectorClock& c = clocks_[static_cast<std::size_t>(tid)];
    if (vs.w.valid() && !c.covers(vs.w)) {
        report(vs, addr, vs.w_kind, kind, vs.w.tid, tid, vs.w.clk);
    }
    if (vs.rv != nullptr) {
        for (int u = 0; u < nthreads_; ++u) {
            const std::uint64_t ru = vs.rv->get(u);
            if (ru != 0 && ru > c.get(u)) {
                report(vs, addr, AccessKind::kRead, kind, u, tid, ru);
                break;
            }
        }
    } else if (vs.r.valid() && !c.covers(vs.r)) {
        report(vs, addr, AccessKind::kRead, kind, vs.r.tid, tid,
               vs.r.clk);
    }
    vs.w = {epochOf(tid), tid};
    vs.w_kind = kind;
    vs.r.reset();
    vs.rv.reset();
}

void
RaceDetector::onSharedWrite(int tid, std::uintptr_t addr,
                            std::uint32_t size)
{
    writeChecksAndUpdate(tid, addr, size, AccessKind::kWrite);
    tick(tid);
}

void
RaceDetector::onAtomicRmw(int tid, std::uintptr_t addr,
                          std::uint32_t size)
{
    // Acquire side first: joining the address's publish clock orders
    // this RMW after every earlier atomic on the address, so the
    // plain-shadow checks below stay silent for atomic-after-atomic
    // and fire only against unordered *plain* accesses.
    VectorClock& s =
        syncClocks_.try_emplace(addr, VectorClock(nthreads_))
            .first->second;
    clocks_[static_cast<std::size_t>(tid)].join(s);
    writeChecksAndUpdate(tid, addr, size, AccessKind::kAtomicRmw);
    s = clocks_[static_cast<std::size_t>(tid)]; // release/publish
    tick(tid);
}

void
RaceDetector::onAtomicLoad(int tid, std::uintptr_t addr, std::uint32_t)
{
    // Declared-racy probe (Ctx::readAtomic): acquire the address's
    // publish clock if one exists; by contract the probe itself is
    // exempt from race checks and leaves no shadow trace.
    const auto it = syncClocks_.find(addr);
    if (it != syncClocks_.end()) {
        clocks_[static_cast<std::size_t>(tid)].join(it->second);
    }
    tick(tid);
}

void
RaceDetector::onLockAcquire(int tid, std::uintptr_t lock)
{
    sortedInsert(held_[static_cast<std::size_t>(tid)], lock);
    const auto it = lockClocks_.find(lock);
    if (it != lockClocks_.end()) {
        clocks_[static_cast<std::size_t>(tid)].join(it->second);
    }
}

void
RaceDetector::onLockRelease(int tid, std::uintptr_t lock)
{
    sortedErase(held_[static_cast<std::size_t>(tid)], lock);
    lockClocks_[lock] = clocks_[static_cast<std::size_t>(tid)];
    tick(tid);
}

void
RaceDetector::onBarrierArrive(int tid)
{
    barrierJoin_.join(clocks_[static_cast<std::size_t>(tid)]);
    if (++barrierArrived_ < nthreads_) {
        return;
    }
    // Episode complete: everyone adopts the joint clock and ticks —
    // all pre-barrier accesses happen before all post-barrier ones.
    for (int t = 0; t < nthreads_; ++t) {
        clocks_[static_cast<std::size_t>(t)] = barrierJoin_;
        tick(t);
    }
    barrierJoin_.clear();
    barrierArrived_ = 0;
}

void
RaceDetector::clear()
{
    races_.clear();
    total_ = 0;
    unsuppressed_ = 0;
}

} // namespace crono::analysis

/**
 * @file
 * `crono.races.v1` — the race detector's machine-readable report.
 *
 * Schema (stability contract as obs/metrics.h: fields are only ever
 * added, the tag is bumped on breaking changes):
 *
 *   {
 *     "schema": "crono.races.v1",
 *     "total_races": N,          // all conflicts, incl. suppressed
 *     "unsuppressed": N,         // the CI gate: must be 0
 *     "suppressed": N,
 *     "truncated": false,        // true when records hit the cap
 *     "races": [{
 *       "kernel": "BFS",         // host live span at detection time
 *       "span": "bfs.expand",    // racing sim thread's live span
 *       "region": "bfs/road/t4", // harness label (setRegionLabel)
 *       "addr": "0x7f..",  "size": 4,
 *       "prior":   {"kind": "write", "tid": 0, "clock": 7},
 *       "current": {"kind": "read",  "tid": 2, "clock": 3},
 *       "lockset_empty": true,   // Eraser cross-check agreed
 *       "suppressed_by": ""      // matching allowlist pattern
 *     }, ...]
 *   }
 *
 * See DESIGN.md §11 for how to read one.
 */

#ifndef CRONO_ANALYSIS_REPORT_H_
#define CRONO_ANALYSIS_REPORT_H_

#include <string>

#include "analysis/race_detector.h"

namespace crono::analysis {

/** The "crono.races.v1" JSON document for @p detector's records. */
std::string racesJson(const RaceDetector& detector);

/** Write racesJson() to @p path. @return false on I/O error. */
bool writeRacesReport(const RaceDetector& detector,
                      const std::string& path);

} // namespace crono::analysis

#endif // CRONO_ANALYSIS_REPORT_H_

/**
 * @file
 * Dynamic happens-before race detector for the simulated machine.
 *
 * A FastTrack-style vector-clock detector (Flanagan & Freund, PLDI
 * 2009) with an Eraser-style lockset cross-check (Savage et al.,
 * SOSP 1997), implementing sim::AccessObserver so it rides the
 * SimCtx interception point every shared access in a simulated build
 * already flows through. TSan cannot provide this: the simulator
 * multiplexes all software threads onto cooperative fibers of one
 * host thread, so to TSan there is no concurrency at all. The
 * detector instead checks the *logical* concurrency of the program —
 * two accesses race iff no chain of sim synchronization (SimMutex
 * acquire/release, region barriers, atomic fetchAdd publishes, the
 * region fork) orders them, regardless of how the deterministic
 * fiber schedule happened to serialize them.
 *
 * Event semantics (C_t = thread t's vector clock; every shared
 * access ticks C_t[t], so each access owns a unique epoch):
 *
 *  - plain read/write: classic FastTrack — reads kept as an epoch
 *    while totally ordered, promoted to a read vector only for
 *    genuinely concurrent readers; writes check against the last
 *    write and all unordered reads.
 *  - lock acquire m:  C_t ⊔= L_m.   release m: L_m := C_t; tick.
 *  - barrier: when all nthreads arrive, every C_t := ⊔ all clocks,
 *    then each ticks — a full synchronization point, exactly the
 *    Machine's semantics.
 *  - fetchAdd a: C_t ⊔= S_a, then the plain-write checks (silent
 *    for atomic-after-atomic because the join already ordered them),
 *    then S_a := C_t; tick. So RMWs act as release-acquire publishes
 *    that still conflict with unordered *plain* accesses.
 *  - readAtomic a: C_t ⊔= S_a only. The probe is the kernel's
 *    declaration of an intended race (core/context.h); it neither
 *    checks nor updates the plain shadow state.
 *
 * The lockset side never *causes* a report; it annotates each
 * happens-before race with whether Eraser agrees (candidate lockset
 * empty). A race with a non-empty lockset usually means a lock the
 * model didn't order (suspect the tool); an empty one corroborates
 * a real synchronization hole (suspect the code).
 *
 * Reports are attributed through the obs telemetry recorder's live
 * spans (the kernel's ScopedHostSpan gives the kernel name) and
 * emitted as a `crono.races.v1` JSON document via analysis/report.h.
 */

#ifndef CRONO_ANALYSIS_RACE_DETECTOR_H_
#define CRONO_ANALYSIS_RACE_DETECTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/suppressions.h"
#include "analysis/vector_clock.h"
#include "sim/observer.h"

namespace crono::analysis {

/** How one side of a race accessed the address. */
enum class AccessKind : std::uint8_t {
    kRead = 0,
    kWrite,
    kAtomicRmw,
};

/** Printable kind name ("read" / "write" / "atomic-rmw"). */
const char* accessKindName(AccessKind kind);

/** One detected race (the first per address per region). */
struct RaceRecord {
    std::uintptr_t addr = 0;
    std::uint32_t size = 0;
    AccessKind prior_kind = AccessKind::kRead;
    AccessKind current_kind = AccessKind::kRead;
    int prior_tid = -1;
    int current_tid = -1;
    std::uint64_t prior_clock = 0;
    std::uint64_t current_clock = 0;
    /** Eraser cross-check: no common lock covered both accesses. */
    bool lockset_empty = true;
    std::string kernel; ///< host track's live span (kernel driver)
    std::string span;   ///< racing thread's live sim span, if any
    std::string region; ///< harness-set label (setRegionLabel)
    std::string suppressed_by; ///< matching allowlist pattern, or ""
};

/**
 * The detector. Install on a Machine (machine.setObserver(&det)),
 * run kernels, then inspect races() / unsuppressedCount() or emit a
 * report (analysis/report.h). State resets at every region begin, so
 * one detector can watch many runs; records accumulate across
 * regions until clear().
 */
class RaceDetector final : public sim::AccessObserver {
  public:
    /** Cap on retained RaceRecords (more races still count totals). */
    static constexpr std::size_t kMaxRecords = 256;

    RaceDetector() = default;
    explicit RaceDetector(Suppressions suppressions)
        : suppressions_(std::move(suppressions))
    {
    }

    RaceDetector(const RaceDetector&) = delete;
    RaceDetector& operator=(const RaceDetector&) = delete;

    /** Label attached to subsequent records (e.g. benchmark name). */
    void setRegionLabel(std::string label) { region_ = std::move(label); }

    // sim::AccessObserver
    void onRegionBegin(int nthreads) override;
    void onSharedRead(int tid, std::uintptr_t addr,
                      std::uint32_t size) override;
    void onSharedWrite(int tid, std::uintptr_t addr,
                       std::uint32_t size) override;
    void onAtomicRmw(int tid, std::uintptr_t addr,
                     std::uint32_t size) override;
    void onAtomicLoad(int tid, std::uintptr_t addr,
                      std::uint32_t size) override;
    void onLockAcquire(int tid, std::uintptr_t lock) override;
    void onLockRelease(int tid, std::uintptr_t lock) override;
    void onBarrierArrive(int tid) override;

    /** Retained race records, oldest first (capped at kMaxRecords). */
    const std::vector<RaceRecord>& races() const { return races_; }

    /** Races observed in total, including beyond-cap and suppressed. */
    std::uint64_t totalRaces() const { return total_; }

    /** Races not matched by the allowlist (the CI gate). */
    std::uint64_t unsuppressedCount() const { return unsuppressed_; }

    const Suppressions& suppressions() const { return suppressions_; }

    /** Drop accumulated records and counters (shadow state stays). */
    void clear();

  private:
    /** Per-address FastTrack shadow word plus Eraser lockset state. */
    struct VarState {
        Epoch w;                          ///< last write
        AccessKind w_kind = AccessKind::kWrite; ///< how w accessed it
        Epoch r;                          ///< last read (ordered phase)
        std::unique_ptr<VectorClock> rv;  ///< concurrent-reader clocks
        std::uint32_t size = 0;
        // Eraser candidate lockset: locks held at *every* access so
        // far (after the first sharing thread), empty = no consistent
        // discipline. Kept sorted.
        std::vector<std::uintptr_t> lockset;
        bool lockset_valid = false; ///< becomes true at first access
        bool shared = false;        ///< accessed by a second thread
        int first_tid = -1;
        bool reported = false; ///< one report per address per region
    };

    std::uint64_t epochOf(int tid) const;
    void tick(int tid);
    void report(VarState& vs, std::uintptr_t addr, AccessKind prior,
                AccessKind current, int prior_tid, int cur_tid,
                std::uint64_t prior_clock);
    void eraserUpdate(VarState& vs, int tid);
    void writeChecksAndUpdate(int tid, std::uintptr_t addr,
                              std::uint32_t size, AccessKind kind);

    int nthreads_ = 0;
    std::vector<VectorClock> clocks_;                 // C_t
    std::vector<std::vector<std::uintptr_t>> held_;   // per-thread locks
    std::unordered_map<std::uintptr_t, VectorClock> lockClocks_; // L_m
    std::unordered_map<std::uintptr_t, VectorClock> syncClocks_; // S_a
    std::unordered_map<std::uintptr_t, VarState> shadow_;
    VectorClock barrierJoin_;
    int barrierArrived_ = 0;

    Suppressions suppressions_;
    std::string region_;
    std::vector<RaceRecord> races_;
    std::uint64_t total_ = 0;
    std::uint64_t unsuppressed_ = 0;
};

} // namespace crono::analysis

#endif // CRONO_ANALYSIS_RACE_DETECTOR_H_

#include "analysis/suppressions.h"

#include <fstream>
#include <sstream>

namespace crono::analysis {

namespace {

std::string_view
trim(std::string_view s)
{
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
        s.remove_prefix(1);
    }
    while (!s.empty() &&
           (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
        s.remove_suffix(1);
    }
    return s;
}

} // namespace

bool
Suppressions::parse(std::string_view text, std::string* err)
{
    std::vector<SuppressionEntry> parsed;
    std::string pending; // accumulated comment block
    int lineno = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t nl = text.find('\n', pos);
        const std::string_view raw =
            text.substr(pos, nl == std::string_view::npos ? nl
                                                          : nl - pos);
        pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
        ++lineno;
        const std::string_view line = trim(raw);
        if (line.empty()) {
            pending.clear(); // a blank line detaches the comment block
            continue;
        }
        if (line.front() == '#') {
            const std::string_view body = trim(line.substr(1));
            if (!body.empty()) {
                if (!pending.empty()) {
                    pending += ' ';
                }
                pending += body;
            }
            continue;
        }
        constexpr std::string_view kPrefix = "race:";
        if (line.substr(0, kPrefix.size()) != kPrefix) {
            if (err != nullptr) {
                std::ostringstream os;
                os << "line " << lineno << ": unknown directive '"
                   << line << "' (expected 'race:PATTERN')";
                *err = os.str();
            }
            return false;
        }
        const std::string_view pattern = trim(line.substr(kPrefix.size()));
        if (pattern.empty()) {
            if (err != nullptr) {
                std::ostringstream os;
                os << "line " << lineno << ": empty suppression pattern";
                *err = os.str();
            }
            return false;
        }
        if (pending.empty()) {
            if (err != nullptr) {
                std::ostringstream os;
                os << "line " << lineno << ": suppression 'race:"
                   << pattern
                   << "' has no justification comment — every entry "
                      "must be preceded by a '#' comment explaining "
                      "why the race is acceptable";
                *err = os.str();
            }
            return false;
        }
        parsed.push_back({std::string(pattern), pending});
        pending.clear();
    }
    entries_ = std::move(parsed);
    return true;
}

bool
Suppressions::loadFile(const std::string& path, std::string* err)
{
    std::ifstream in(path);
    if (!in) {
        if (err != nullptr) {
            *err = "cannot open suppression file: " + path;
        }
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse(buf.str(), err);
}

const SuppressionEntry*
Suppressions::match(std::string_view kernel, std::string_view span,
                    std::string_view region) const
{
    for (const SuppressionEntry& e : entries_) {
        const std::string_view pat = e.pattern;
        const auto hits = [&](std::string_view label) {
            return !label.empty() &&
                   label.find(pat) != std::string_view::npos;
        };
        if (hits(kernel) || hits(span) || hits(region)) {
            return &e;
        }
    }
    return nullptr;
}

} // namespace crono::analysis

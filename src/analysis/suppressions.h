/**
 * @file
 * Allowlist for the dynamic race detector, with *required*
 * justifications.
 *
 * A suppression that nobody can explain is a bug with a lid on it, so
 * the file format makes the justification structural: every entry
 * must be immediately preceded by at least one non-empty `#` comment
 * line saying why the report is acceptable, and the loader rejects
 * the whole file otherwise. The same convention is enforced for the
 * TSan suppression file by scripts/check_tsan.sh.
 *
 * Format (scripts/suppressions/detector.allow):
 *
 *   # BFS probes level[] before the claim; losers never write, so a
 *   # stale read only costs a wasted claim attempt.
 *   race:BFS
 *
 * An entry `race:PATTERN` suppresses any race record whose kernel
 * name, live span name, or region label contains PATTERN as a
 * substring. Blank lines separate entries; a comment block binds to
 * the next entry only.
 */

#ifndef CRONO_ANALYSIS_SUPPRESSIONS_H_
#define CRONO_ANALYSIS_SUPPRESSIONS_H_

#include <string>
#include <string_view>
#include <vector>

namespace crono::analysis {

/** One allowlist entry with its mandatory justification. */
struct SuppressionEntry {
    std::string pattern;       ///< substring matched against labels
    std::string justification; ///< the preceding comment block
};

/** A parsed allowlist. Default-constructed = suppress nothing. */
class Suppressions {
  public:
    /**
     * Parse allowlist @p text. On success entries() is replaced and
     * true returned; on a malformed file (entry without justification,
     * unknown directive) false is returned and @p err, if non-null,
     * describes the first problem with its line number.
     */
    bool parse(std::string_view text, std::string* err = nullptr);

    /** parse() over the contents of @p path (false on I/O error). */
    bool loadFile(const std::string& path, std::string* err = nullptr);

    /**
     * First entry whose pattern is a substring of any of the given
     * labels, or nullptr when the race is not suppressed.
     */
    const SuppressionEntry* match(std::string_view kernel,
                                  std::string_view span,
                                  std::string_view region) const;

    const std::vector<SuppressionEntry>& entries() const
    {
        return entries_;
    }

    bool empty() const { return entries_.empty(); }

  private:
    std::vector<SuppressionEntry> entries_;
};

} // namespace crono::analysis

#endif // CRONO_ANALYSIS_SUPPRESSIONS_H_

#include "analysis/report.h"

#include <cinttypes>
#include <cstdio>

#include "obs/json.h"

namespace crono::analysis {

namespace {

std::string
hexAddr(std::uintptr_t addr)
{
    char buf[2 + 16 + 1];
    std::snprintf(buf, sizeof(buf), "0x%" PRIxPTR, addr);
    return buf;
}

void
writeSide(obs::JsonWriter& w, const char* key, AccessKind kind, int tid,
          std::uint64_t clock)
{
    w.key(key).beginObject();
    w.key("kind").value(accessKindName(kind));
    w.key("tid").value(tid);
    w.key("clock").value(clock);
    w.endObject();
}

} // namespace

std::string
racesJson(const RaceDetector& detector)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("schema").value("crono.races.v1");
    w.key("total_races").value(detector.totalRaces());
    w.key("unsuppressed").value(detector.unsuppressedCount());
    w.key("suppressed")
        .value(detector.totalRaces() - detector.unsuppressedCount());
    w.key("truncated")
        .value(detector.totalRaces() > detector.races().size());
    w.key("races").beginArray();
    for (const RaceRecord& r : detector.races()) {
        w.beginObject();
        w.key("kernel").value(r.kernel);
        w.key("span").value(r.span);
        w.key("region").value(r.region);
        w.key("addr").value(hexAddr(r.addr));
        w.key("size").value(r.size);
        writeSide(w, "prior", r.prior_kind, r.prior_tid, r.prior_clock);
        writeSide(w, "current", r.current_kind, r.current_tid,
                  r.current_clock);
        w.key("lockset_empty").value(r.lockset_empty);
        w.key("suppressed_by").value(r.suppressed_by);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

bool
writeRacesReport(const RaceDetector& detector, const std::string& path)
{
    return obs::writeTextFile(path, racesJson(detector));
}

} // namespace crono::analysis

/**
 * @file
 * crono_analyze structural parser — scope tree, function and lambda
 * boundaries, capture lists (DESIGN.md §16).
 *
 * This is deliberately not a C++ grammar. The flow-aware passes need
 * exactly four structural facts, and this parser recovers them from
 * the token stream with bracket matching plus local classification:
 *
 *  1. the brace scope tree, with each scope classified as If / Else /
 *     Switch / Loop / Lambda / Function / Block (everything else:
 *     class bodies, namespaces, init-lists);
 *  2. lambda expressions: capture list (default &/=, explicit by-ref
 *     and by-value names, init-captures), parameter names, and the
 *     body scope;
 *  3. bracket matches for (), [] and {} so passes can jump across
 *     argument lists;
 *  4. the enclosing scope of every token, for walks toward the
 *     nearest function or lambda boundary.
 *
 * Classification is heuristic where C++ is ambiguous (a `{` after a
 * `)` whose matching `(` is not headed by a control keyword is taken
 * as a function body). The passes are written to degrade toward
 * false negatives, never toward crashes: unmatched brackets simply
 * truncate the walk.
 */

#ifndef CRONO_ANALYSIS_STATIC_PARSER_H_
#define CRONO_ANALYSIS_STATIC_PARSER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/static/lexer.h"

namespace crono::staticlint {

/** Index into Ast::code (code-token stream). */
using CodeIdx = std::size_t;
inline constexpr CodeIdx kNoIdx = static_cast<CodeIdx>(-1);

enum class ScopeKind {
    kBlock,    ///< plain compound statement, init list, class body, ...
    kIf,
    kElse,
    kSwitch,
    kLoop,     ///< for / while / do
    kLambda,
    kFunction, ///< function (or constructor) body
};

struct Scope {
    ScopeKind kind = ScopeKind::kBlock;
    int parent = -1;        ///< index into Ast::scopes, -1 for root
    CodeIdx open = kNoIdx;  ///< the '{' code token
    CodeIdx close = kNoIdx; ///< the matching '}' (kNoIdx if unmatched)
    int lambda = -1;        ///< index into Ast::lambdas for kLambda
};

struct Lambda {
    CodeIdx intro = kNoIdx;      ///< the '[' code token
    CodeIdx body_open = kNoIdx;  ///< the body '{'
    CodeIdx body_close = kNoIdx;
    bool default_ref = false;    ///< [&...]
    bool default_copy = false;   ///< [=...]
    std::vector<std::string> ref_captures; ///< [&name] / [&name = ...]
    std::vector<std::string> val_captures; ///< [name] / [name = ...]
    std::vector<std::string> params;       ///< declared parameter names
    int body_scope = -1;
};

struct Ast {
    std::vector<Token> tokens;
    /** Indices of non-comment tokens, in order ("code tokens"). */
    std::vector<std::size_t> code;
    std::vector<Scope> scopes;
    std::vector<Lambda> lambdas;
    /** Enclosing scope per code token (-1: file scope). */
    std::vector<int> scope_at;
    /** Bracket partner per code token (kNoIdx when unmatched). */
    std::vector<CodeIdx> match;

    const Token& tok(CodeIdx i) const { return tokens[code[i]]; }
    std::size_t size() const { return code.size(); }

    /** Nearest enclosing Function/Lambda scope index, or -1. */
    int enclosingBody(int scope) const;
    /** True if a kIf/kElse/kSwitch scope sits between @p scope and the
     *  nearest enclosing Function/Lambda boundary (inclusive walk). */
    bool underConditional(int scope) const;
};

/** Build the structural view of @p tokens (tokens are copied in). */
Ast parse(std::vector<Token> tokens);

} // namespace crono::staticlint

#endif // CRONO_ANALYSIS_STATIC_PARSER_H_

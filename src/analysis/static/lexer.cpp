#include "analysis/static/lexer.h"

#include <array>
#include <cctype>

namespace crono::staticlint {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/**
 * Phase-2 view of the source: backslash-newline sequences are spliced
 * out, but every surviving character remembers its physical line and
 * byte offset so tokens can report real positions.
 */
struct Spliced {
    std::string text;
    std::vector<int> line;         ///< physical line per spliced char
    std::vector<std::size_t> off;  ///< original byte offset per char
};

Spliced
splice(std::string_view src)
{
    Spliced sp;
    sp.text.reserve(src.size());
    sp.line.reserve(src.size());
    sp.off.reserve(src.size());
    int line = 1;
    for (std::size_t i = 0; i < src.size(); ++i) {
        if (src[i] == '\\') {
            // \ <newline> and \ <cr><newline> vanish entirely.
            if (i + 1 < src.size() && src[i + 1] == '\n') {
                ++line;
                ++i;
                continue;
            }
            if (i + 2 < src.size() && src[i + 1] == '\r' &&
                src[i + 2] == '\n') {
                ++line;
                i += 2;
                continue;
            }
        }
        sp.text.push_back(src[i]);
        sp.line.push_back(line);
        sp.off.push_back(i);
        if (src[i] == '\n') {
            ++line;
        }
    }
    return sp;
}

/** Multi-char punctuation, longest first within each bucket. */
constexpr std::string_view kPunct3[] = {"<<=", ">>=", "<=>", "...",
                                        "->*"};
constexpr std::string_view kPunct2[] = {
    "::", "->", ".*", "<<", ">>", "<=", ">=", "==", "!=", "&&",
    "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=", "##"};

/** String/char literal encoding prefixes. */
bool
isLiteralPrefix(std::string_view id, bool* raw)
{
    static constexpr std::string_view kRaw[] = {"R", "LR", "uR", "UR",
                                                "u8R"};
    static constexpr std::string_view kPlain[] = {"L", "u", "U", "u8"};
    for (const std::string_view p : kRaw) {
        if (id == p) {
            *raw = true;
            return true;
        }
    }
    for (const std::string_view p : kPlain) {
        if (id == p) {
            *raw = false;
            return true;
        }
    }
    return false;
}

class Lexer {
  public:
    explicit Lexer(std::string_view src) : sp_(splice(src)) {}

    std::vector<Token>
    run()
    {
        const std::string& s = sp_.text;
        bool at_line_start = true;
        while (pos_ < s.size()) {
            const char c = s[pos_];
            if (c == '\n') {
                at_line_start = true;
                ++pos_;
                continue;
            }
            if (std::isspace(static_cast<unsigned char>(c)) != 0) {
                ++pos_;
                continue;
            }
            if (c == '/' && pos_ + 1 < s.size() &&
                (s[pos_ + 1] == '/' || s[pos_ + 1] == '*')) {
                lexComment();
                continue; // comments do not clear at_line_start
            }
            if (c == '#' && at_line_start) {
                lexDirective();
                at_line_start = false;
                continue;
            }
            at_line_start = false;
            if (identStart(c)) {
                lexIdentOrLiteralPrefix();
            } else if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
                       (c == '.' && pos_ + 1 < s.size() &&
                        std::isdigit(static_cast<unsigned char>(
                            s[pos_ + 1])) != 0)) {
                lexNumber();
            } else if (c == '"') {
                lexString(pos_, /*raw=*/false);
            } else if (c == '\'') {
                lexChar(pos_);
            } else {
                lexPunct();
            }
        }
        return std::move(out_);
    }

  private:
    void
    emit(Tok kind, std::size_t begin, std::size_t end)
    {
        Token t;
        t.kind = kind;
        t.text = sp_.text.substr(begin, end - begin);
        t.line = sp_.line[begin];
        t.begin = sp_.off[begin];
        t.end = end > begin ? sp_.off[end - 1] + 1 : sp_.off[begin];
        out_.push_back(std::move(t));
    }

    void
    lexComment()
    {
        const std::string& s = sp_.text;
        const std::size_t begin = pos_;
        if (s[pos_ + 1] == '/') {
            pos_ = s.find('\n', pos_);
            pos_ = pos_ == std::string::npos ? s.size() : pos_;
        } else {
            pos_ = s.find("*/", pos_ + 2);
            pos_ = pos_ == std::string::npos ? s.size() : pos_ + 2;
        }
        emit(Tok::kComment, begin, pos_);
    }

    void
    lexDirective()
    {
        const std::string& s = sp_.text;
        std::size_t p = pos_ + 1; // past '#'
        while (p < s.size() && (s[p] == ' ' || s[p] == '\t')) {
            ++p;
        }
        std::size_t name_end = p;
        while (name_end < s.size() && identChar(s[name_end])) {
            ++name_end;
        }
        if (name_end == p) { // lone '#' — emit as punctuation
            emit(Tok::kPunct, pos_, pos_ + 1);
            ++pos_;
            return;
        }
        // Directive token reports from '#' so findings point at it.
        {
            Token t;
            t.kind = Tok::kPpDirective;
            t.text = s.substr(p, name_end - p);
            t.line = sp_.line[pos_];
            t.begin = sp_.off[pos_];
            t.end = sp_.off[name_end - 1] + 1;
            out_.push_back(std::move(t));
        }
        const std::string_view name{s.data() + p, name_end - p};
        pos_ = name_end;
        if (name != "include" && name != "include_next") {
            return; // rest of the pp-line lexes as ordinary tokens
        }
        while (pos_ < s.size() && (s[pos_] == ' ' || s[pos_] == '\t')) {
            ++pos_;
        }
        if (pos_ >= s.size()) {
            return;
        }
        const char open = s[pos_];
        const char close = open == '<' ? '>' : open == '"' ? '"' : '\0';
        if (close == '\0') {
            return; // computed include (macro) — ordinary tokens
        }
        std::size_t end = pos_ + 1;
        while (end < s.size() && s[end] != close && s[end] != '\n') {
            ++end;
        }
        if (end < s.size() && s[end] == close) {
            ++end;
        }
        emit(Tok::kHeaderName, pos_, end);
        pos_ = end;
    }

    void
    lexIdentOrLiteralPrefix()
    {
        const std::string& s = sp_.text;
        const std::size_t begin = pos_;
        while (pos_ < s.size() && identChar(s[pos_])) {
            ++pos_;
        }
        const std::string_view id{s.data() + begin, pos_ - begin};
        bool raw = false;
        if (pos_ < s.size() && s[pos_] == '"' &&
            isLiteralPrefix(id, &raw)) {
            lexString(begin, raw);
            return;
        }
        if (pos_ < s.size() && s[pos_] == '\'' && !id.empty() &&
            id.back() != 'R' && isLiteralPrefix(id, &raw)) {
            lexChar(begin);
            return;
        }
        emit(Tok::kIdent, begin, pos_);
    }

    void
    lexNumber()
    {
        const std::string& s = sp_.text;
        const std::size_t begin = pos_;
        while (pos_ < s.size()) {
            const char c = s[pos_];
            if (identChar(c) || c == '.') {
                if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
                    pos_ + 1 < s.size() &&
                    (s[pos_ + 1] == '+' || s[pos_ + 1] == '-')) {
                    pos_ += 2;
                    continue;
                }
                ++pos_;
                continue;
            }
            // Digit separator: ' between digit/identifier characters.
            if (c == '\'' && pos_ + 1 < s.size() &&
                identChar(s[pos_ + 1])) {
                pos_ += 2;
                continue;
            }
            break;
        }
        emit(Tok::kNumber, begin, pos_);
    }

    /** @p begin includes any encoding prefix; pos_ is at the '"'. */
    void
    lexString(std::size_t begin, bool raw)
    {
        const std::string& s = sp_.text;
        if (raw) {
            // R"delim( ... )delim"
            std::size_t p = pos_ + 1; // past '"'
            std::string delim = ")";
            while (p < s.size() && s[p] != '(') {
                delim.push_back(s[p]);
                ++p;
            }
            delim.push_back('"');
            const std::size_t close =
                p < s.size() ? s.find(delim, p + 1) : std::string::npos;
            pos_ = close == std::string::npos ? s.size()
                                              : close + delim.size();
            emit(Tok::kString, begin, pos_);
            return;
        }
        std::size_t p = pos_ + 1;
        while (p < s.size() && s[p] != '"' && s[p] != '\n') {
            if (s[p] == '\\' && p + 1 < s.size()) {
                ++p;
            }
            ++p;
        }
        pos_ = p < s.size() && s[p] == '"' ? p + 1 : p;
        // UDL suffix (e.g. "..."sv) folds into the literal token.
        while (pos_ < s.size() && identChar(s[pos_])) {
            ++pos_;
        }
        emit(Tok::kString, begin, pos_);
    }

    void
    lexChar(std::size_t begin)
    {
        const std::string& s = sp_.text;
        std::size_t p = pos_ + 1;
        while (p < s.size() && s[p] != '\'' && s[p] != '\n') {
            if (s[p] == '\\' && p + 1 < s.size()) {
                ++p;
            }
            ++p;
        }
        pos_ = p < s.size() && s[p] == '\'' ? p + 1 : p;
        while (pos_ < s.size() && identChar(s[pos_])) {
            ++pos_; // UDL suffix
        }
        emit(Tok::kChar, begin, pos_);
    }

    void
    lexPunct()
    {
        const std::string& s = sp_.text;
        const std::size_t begin = pos_;
        const std::string_view rest{s.data() + pos_, s.size() - pos_};
        for (const std::string_view p : kPunct3) {
            if (rest.substr(0, 3) == p) {
                pos_ += 3;
                emit(Tok::kPunct, begin, pos_);
                return;
            }
        }
        for (const std::string_view p : kPunct2) {
            if (rest.substr(0, 2) == p) {
                pos_ += 2;
                emit(Tok::kPunct, begin, pos_);
                return;
            }
        }
        ++pos_;
        emit(Tok::kPunct, begin, pos_);
    }

    Spliced sp_;
    std::size_t pos_ = 0;
    std::vector<Token> out_;
};

} // namespace

std::vector<Token>
lex(std::string_view text)
{
    return Lexer(text).run();
}

std::string
stripCommentsAndStrings(std::string_view text)
{
    std::string out(text);
    for (const Token& t : lex(text)) {
        if (t.kind != Tok::kComment && t.kind != Tok::kString &&
            t.kind != Tok::kChar) {
            continue;
        }
        for (std::size_t i = t.begin; i < t.end && i < out.size();
             ++i) {
            if (out[i] != '\n') {
                out[i] = ' ';
            }
        }
        if (t.kind != Tok::kComment) {
            // Keep the delimiting quotes so the residue still scans
            // as balanced code.
            if (t.begin < out.size() && text[t.begin] != '\n') {
                // restore prefix + opening quote up to the first quote
                const char q = t.kind == Tok::kString ? '"' : '\'';
                for (std::size_t i = t.begin;
                     i < t.end && i < out.size(); ++i) {
                    out[i] = text[i];
                    if (text[i] == q) {
                        break;
                    }
                }
                if (t.end > t.begin && t.end <= out.size() &&
                    text[t.end - 1] == q) {
                    out[t.end - 1] = q;
                }
            }
        }
    }
    return out;
}

} // namespace crono::staticlint

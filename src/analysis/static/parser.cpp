#include "analysis/static/parser.h"

#include <algorithm>

namespace crono::staticlint {

namespace {

bool
isPunct(const Token& t, std::string_view s)
{
    return t.kind == Tok::kPunct && t.text == s;
}

bool
isIdent(const Token& t, std::string_view s)
{
    return t.kind == Tok::kIdent && t.text == s;
}

/** Match (), [] and {} pairs over the code-token stream. */
std::vector<CodeIdx>
matchBrackets(const Ast& ast)
{
    std::vector<CodeIdx> match(ast.size(), kNoIdx);
    std::vector<CodeIdx> parens, squares, braces;
    for (CodeIdx i = 0; i < ast.size(); ++i) {
        const Token& t = ast.tok(i);
        if (t.kind != Tok::kPunct) {
            continue;
        }
        if (t.text == "(") {
            parens.push_back(i);
        } else if (t.text == "[") {
            squares.push_back(i);
        } else if (t.text == "{") {
            braces.push_back(i);
        } else if (t.text == ")" && !parens.empty()) {
            match[i] = parens.back();
            match[parens.back()] = i;
            parens.pop_back();
        } else if (t.text == "]" && !squares.empty()) {
            match[i] = squares.back();
            match[squares.back()] = i;
            squares.pop_back();
        } else if (t.text == "}" && !braces.empty()) {
            match[i] = braces.back();
            match[braces.back()] = i;
            braces.pop_back();
        }
    }
    return match;
}

/** Split the capture list [lo+1, hi) at depth-0 commas and classify. */
void
parseCaptures(const Ast& ast, CodeIdx lo, CodeIdx hi, Lambda* lam)
{
    std::vector<std::vector<CodeIdx>> items(1);
    int depth = 0;
    for (CodeIdx i = lo + 1; i < hi; ++i) {
        const Token& t = ast.tok(i);
        if (t.kind == Tok::kPunct) {
            if (t.text == "(" || t.text == "[" || t.text == "{" ||
                t.text == "<") {
                ++depth;
            } else if (t.text == ")" || t.text == "]" ||
                       t.text == "}" || t.text == ">") {
                --depth;
            } else if (t.text == "," && depth == 0) {
                items.emplace_back();
                continue;
            }
        }
        items.back().push_back(i);
    }
    for (const std::vector<CodeIdx>& item : items) {
        if (item.empty()) {
            continue;
        }
        const Token& first = ast.tok(item.front());
        if (isPunct(first, "&")) {
            if (item.size() == 1) {
                lam->default_ref = true;
            } else if (ast.tok(item[1]).kind == Tok::kIdent) {
                lam->ref_captures.push_back(ast.tok(item[1]).text);
            }
        } else if (isPunct(first, "=")) {
            lam->default_copy = true;
        } else if (isIdent(first, "this") ||
                   (isPunct(first, "*") && item.size() > 1 &&
                    isIdent(ast.tok(item[1]), "this"))) {
            // this / *this: member writes resolve via fields, which
            // the capture-escape pass treats as non-local names.
        } else if (first.kind == Tok::kIdent) {
            lam->val_captures.push_back(first.text);
        }
    }
}

/** Last identifier of each depth-0 comma chunk in (lo, hi). */
void
parseParams(const Ast& ast, CodeIdx lo, CodeIdx hi, Lambda* lam)
{
    int depth = 0;
    CodeIdx last_ident = kNoIdx;
    bool past_default = false;
    for (CodeIdx i = lo + 1; i < hi; ++i) {
        const Token& t = ast.tok(i);
        if (t.kind == Tok::kPunct) {
            if (t.text == "(" || t.text == "[" || t.text == "{" ||
                t.text == "<") {
                ++depth;
            } else if (t.text == ")" || t.text == "]" ||
                       t.text == "}" || t.text == ">") {
                --depth;
            } else if (t.text == "," && depth == 0) {
                if (last_ident != kNoIdx) {
                    lam->params.push_back(ast.tok(last_ident).text);
                }
                last_ident = kNoIdx;
                past_default = false;
                continue;
            } else if (t.text == "=" && depth == 0) {
                past_default = true; // default argument follows
                continue;
            }
        }
        if (t.kind == Tok::kIdent && depth == 0 && !past_default) {
            last_ident = i;
        }
    }
    if (last_ident != kNoIdx) {
        lam->params.push_back(ast.tok(last_ident).text);
    }
}

/**
 * Try to read a lambda whose introducer '[' is at @p i. Returns the
 * body '{' code index, or kNoIdx if this is not a lambda with a body.
 */
CodeIdx
lambdaBody(const Ast& ast, CodeIdx i, Lambda* lam)
{
    // Subscripts and attributes are not introducers.
    if (i > 0) {
        const Token& prev = ast.tok(i - 1);
        if (prev.kind == Tok::kIdent || prev.kind == Tok::kString ||
            prev.kind == Tok::kNumber || isPunct(prev, "]") ||
            isPunct(prev, ")")) {
            return kNoIdx;
        }
    }
    if (i + 1 < ast.size() && isPunct(ast.tok(i + 1), "[")) {
        return kNoIdx; // [[attribute]]
    }
    const CodeIdx close = ast.match[i];
    if (close == kNoIdx) {
        return kNoIdx;
    }
    parseCaptures(ast, i, close, lam);
    CodeIdx p = close + 1;
    if (p < ast.size() && isPunct(ast.tok(p), "(")) {
        const CodeIdx pclose = ast.match[p];
        if (pclose == kNoIdx) {
            return kNoIdx;
        }
        parseParams(ast, p, pclose, lam);
        p = pclose + 1;
    }
    // Skip specifiers and a trailing return type up to the body '{'.
    // Bail at tokens that cannot appear there (expression context).
    int angle = 0;
    for (int guard = 0; p < ast.size() && guard < 64; ++p, ++guard) {
        const Token& t = ast.tok(p);
        if (t.kind == Tok::kPunct) {
            if (t.text == "{" && angle == 0) {
                lam->intro = i;
                lam->body_open = p;
                lam->body_close = ast.match[p];
                return p;
            }
            if (t.text == "<") {
                ++angle;
                continue;
            }
            if (t.text == ">") {
                --angle;
                continue;
            }
            if (t.text == ">>") {
                angle -= 2;
                continue;
            }
            if (t.text == "(") { // noexcept(...) and the like
                if (ast.match[p] == kNoIdx) {
                    return kNoIdx;
                }
                p = ast.match[p];
                continue;
            }
            if (t.text == "->" || t.text == "::" || t.text == "*" ||
                t.text == "&" || t.text == "," || t.text == "...") {
                continue;
            }
            return kNoIdx;
        }
        if (t.kind != Tok::kIdent) {
            return kNoIdx;
        }
    }
    return kNoIdx;
}

} // namespace

int
Ast::enclosingBody(int scope) const
{
    for (int s = scope; s >= 0; s = scopes[s].parent) {
        if (scopes[s].kind == ScopeKind::kFunction ||
            scopes[s].kind == ScopeKind::kLambda) {
            return s;
        }
    }
    return -1;
}

bool
Ast::underConditional(int scope) const
{
    for (int s = scope; s >= 0; s = scopes[s].parent) {
        switch (scopes[s].kind) {
          case ScopeKind::kIf:
          case ScopeKind::kElse:
          case ScopeKind::kSwitch:
            return true;
          case ScopeKind::kFunction:
          case ScopeKind::kLambda:
            return false;
          default:
            break;
        }
    }
    return false;
}

Ast
parse(std::vector<Token> tokens)
{
    Ast ast;
    ast.tokens = std::move(tokens);
    for (std::size_t i = 0; i < ast.tokens.size(); ++i) {
        if (ast.tokens[i].kind != Tok::kComment) {
            ast.code.push_back(i);
        }
    }
    ast.match = matchBrackets(ast);
    ast.scope_at.assign(ast.size(), -1);

    // Lambda pre-scan: record every introducer's body '{'.
    std::vector<int> lambda_of_brace(ast.size(), -1);
    for (CodeIdx i = 0; i < ast.size(); ++i) {
        if (!isPunct(ast.tok(i), "[")) {
            continue;
        }
        Lambda lam;
        const CodeIdx body = lambdaBody(ast, i, &lam);
        if (body != kNoIdx) {
            lambda_of_brace[body] =
                static_cast<int>(ast.lambdas.size());
            ast.lambdas.push_back(std::move(lam));
        }
    }

    // Scope tree: classify each '{' by what precedes it.
    std::vector<int> stack;
    for (CodeIdx i = 0; i < ast.size(); ++i) {
        const Token& t = ast.tok(i);
        ast.scope_at[i] = stack.empty() ? -1 : stack.back();
        if (t.kind != Tok::kPunct) {
            continue;
        }
        if (t.text == "{") {
            Scope sc;
            sc.parent = stack.empty() ? -1 : stack.back();
            sc.open = i;
            sc.close = ast.match[i];
            if (lambda_of_brace[i] >= 0) {
                sc.kind = ScopeKind::kLambda;
                sc.lambda = lambda_of_brace[i];
            } else if (i > 0) {
                // Step back over trailing specifiers so
                // `T f() const noexcept {` still sees its ')'.
                CodeIdx pi = i - 1;
                while (pi > 0 && ast.tok(pi).kind == Tok::kIdent &&
                       (ast.tok(pi).text == "const" ||
                        ast.tok(pi).text == "noexcept" ||
                        ast.tok(pi).text == "override" ||
                        ast.tok(pi).text == "final" ||
                        ast.tok(pi).text == "mutable")) {
                    --pi;
                }
                const Token& prev = ast.tok(pi);
                if (isPunct(prev, ")") && ast.match[pi] != kNoIdx) {
                    CodeIdx head = ast.match[pi];
                    // `if constexpr (...)` — step over constexpr.
                    if (head > 0 &&
                        isIdent(ast.tok(head - 1), "constexpr")) {
                        --head;
                    }
                    const Token* kw =
                        head > 0 ? &ast.tok(head - 1) : nullptr;
                    if (kw != nullptr && isIdent(*kw, "if")) {
                        sc.kind = ScopeKind::kIf;
                    } else if (kw != nullptr && isIdent(*kw, "switch")) {
                        sc.kind = ScopeKind::kSwitch;
                    } else if (kw != nullptr &&
                               (isIdent(*kw, "for") ||
                                isIdent(*kw, "while"))) {
                        sc.kind = ScopeKind::kLoop;
                    } else if (kw != nullptr && isIdent(*kw, "catch")) {
                        sc.kind = ScopeKind::kBlock;
                    } else {
                        sc.kind = ScopeKind::kFunction;
                    }
                } else if (isIdent(prev, "else")) {
                    sc.kind = ScopeKind::kElse;
                } else if (isIdent(prev, "do")) {
                    sc.kind = ScopeKind::kLoop;
                } else if (isIdent(prev, "try")) {
                    sc.kind = ScopeKind::kBlock;
                } else {
                    sc.kind = ScopeKind::kBlock;
                }
            }
            // A constructor body after an init list `): x_(v) {` hits
            // the ")" path and classifies as kFunction — correct.
            const int idx = static_cast<int>(ast.scopes.size());
            if (sc.kind == ScopeKind::kLambda && sc.lambda >= 0) {
                ast.lambdas[static_cast<std::size_t>(sc.lambda)]
                    .body_scope = idx;
            }
            ast.scopes.push_back(sc);
            stack.push_back(idx);
            ast.scope_at[i] = idx; // '{' belongs to the new scope
        } else if (t.text == "}") {
            if (!stack.empty()) {
                stack.pop_back();
            }
        }
    }
    return ast;
}

} // namespace crono::staticlint

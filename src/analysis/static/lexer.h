/**
 * @file
 * crono_analyze lexer — a real C++ tokenizer for the static-analysis
 * framework (DESIGN.md §16).
 *
 * The token linter it supersedes (PR 4's crono_lint) worked on
 * stripped lines, which made it blind to anything that crosses a line
 * boundary and fragile around literal syntax: a digit separator
 * (`1'000'000`) looked like an opening char literal and blanked the
 * rest of the line, and a macro continuation split a statement the
 * rules never reassembled. This lexer produces a proper token stream
 * instead:
 *
 *  - tokens carry a kind, their text, the 1-based line they start on,
 *    and their [begin, end) byte range in the original source;
 *  - backslash-newline splicing is handled everywhere (macro bodies
 *    keep their logical structure, line numbers stay physical);
 *  - raw strings (`R"delim(...)delim"`, with encoding prefixes),
 *    digit separators, hex floats and UDL suffixes lex as single
 *    literal tokens;
 *  - preprocessor directives are recognized at line starts; an
 *    `#include` yields a HeaderName token (`<atomic>` or
 *    `"graph/graph.h"`) so include-oriented passes never re-parse
 *    text;
 *  - comments are kept as tokens: the `// crono-lint: allow(...)`
 *    suppression contract is parsed from them downstream.
 *
 * Passes run over this stream; none of them look at raw text again
 * except to extract a finding's snippet line.
 */

#ifndef CRONO_ANALYSIS_STATIC_LEXER_H_
#define CRONO_ANALYSIS_STATIC_LEXER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace crono::staticlint {

enum class Tok {
    kIdent,      ///< identifiers and keywords
    kNumber,     ///< pp-numbers incl. digit separators / hex floats
    kString,     ///< string literal incl. prefix/suffix, raw strings
    kChar,       ///< character literal incl. prefix
    kPunct,      ///< operators and punctuation, longest-match
    kComment,    ///< // or /* */ comment, full text
    kPpDirective,///< directive name token: "include", "define", ...
    kHeaderName, ///< the <...> or "..." of an #include
};

struct Token {
    Tok kind = Tok::kPunct;
    std::string text;      ///< spliced text (continuations removed)
    int line = 0;          ///< 1-based physical line the token starts on
    std::size_t begin = 0; ///< byte range in the original source,
    std::size_t end = 0;   ///< continuations included
};

/** Tokenize @p text. Never throws; unterminated literals end at EOF. */
std::vector<Token> lex(std::string_view text);

/**
 * Replace comment bodies and string/char-literal contents of C++
 * source @p text with spaces, preserving the line structure so line
 * numbers survive. Kept from the token linter (tests and external
 * tooling use it), now implemented on the lexer so raw strings,
 * digit separators, and macro continuations are handled correctly.
 */
std::string stripCommentsAndStrings(std::string_view text);

} // namespace crono::staticlint

#endif // CRONO_ANALYSIS_STATIC_LEXER_H_

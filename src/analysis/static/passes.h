/**
 * @file
 * crono_analyze pass registry and the analysis passes (DESIGN.md §16).
 *
 * A pass is a function over one parsed translation unit (FileUnit)
 * that appends Findings. The registry (ruleCatalog) carries, for
 * every rule id, its severity, a one-line summary, and the layer
 * policy describing where the rule applies — the policy is part of
 * the rule's contract and is rendered into DESIGN.md's rule table via
 * ruleTableMarkdown(), so documentation cannot drift from the code.
 *
 * Layer policy. The Ctx-discipline rules (raw-sync, raw-include,
 * parallel-stl, padded-slot) apply only to code that is *subject to*
 * the Ctx contract: src/core, src/graph, and the rt::bnb framework
 * files. src/runtime, src/obs and src/sim legitimately use raw
 * synchronization to *implement* the contract (NativeCtx's barrier is
 * a condition variable; telemetry rings are seq-cst published), so
 * those rules are off there by policy rather than drowned in allow
 * comments — that policy decision is the explicit justification
 * ISSUE 9 asks for, and it is documented here and in the rule table.
 * The flow-aware rules (capture-escape, barrier-divergence) and the
 * hygiene rules apply everywhere; include-layering applies to every
 * file whose layer is known. A file outside any known layer root
 * (unit-test snippets, fixtures) gets every rule, which preserves the
 * old linter's behavior for direct file invocations.
 */

#ifndef CRONO_ANALYSIS_STATIC_PASSES_H_
#define CRONO_ANALYSIS_STATIC_PASSES_H_

#include <string>
#include <string_view>
#include <vector>

#include "analysis/static/parser.h"

namespace crono::staticlint {

enum class Severity { kError, kWarning };

/** One finding, the unit of the crono.lint.v1 report. */
struct Finding {
    std::string file;
    int line = 0;          ///< 1-based
    std::string rule;      ///< rule id, e.g. "barrier-divergence"
    std::string message;
    std::string snippet;   ///< trimmed source line, may be empty
    Severity severity = Severity::kError;
};

struct RuleInfo {
    std::string_view id;
    Severity severity;
    std::string_view summary;
    std::string_view applies; ///< human-readable layer policy
};

/** Registry of every rule id, in catalog order. */
const std::vector<RuleInfo>& ruleCatalog();

/** True iff @p id names a cataloged rule. */
bool ruleKnown(std::string_view id);

/** The catalog as a GitHub-markdown table (used by DESIGN.md §16;
 *  tests diff the committed table against this). */
std::string ruleTableMarkdown();

// ----------------------------------------------------------- layering

/** Layer index of a repo-relative path, or -1 when unknown. The DAG
 *  is common(0) → obs(1) → sim(2) → runtime(3) → graph(4) →
 *  analysis(5) → core(6) → tools/bench(7): a file may include only
 *  its own or lower layers. */
int layerOf(std::string_view rel);

/** Layer index of a project #include path ("graph/graph.h" → 4),
 *  or -1 for non-project headers. */
int layerOfInclude(std::string_view inc);

/** Human name of a layer index ("src/graph", "tools|bench"). */
std::string_view layerName(int layer);

/** True iff @p rule applies to the file at repo-relative @p rel. */
bool ruleApplies(std::string_view rule, std::string_view rel);

// ------------------------------------------------------------- passes

/** One parsed file, shared by every pass. */
struct FileUnit {
    std::string path; ///< as reported in findings
    std::string rel;  ///< repo-relative path for layer policy
    std::string text;
    Ast ast;

    /** Trimmed content of 1-based @p line (for snippets). */
    std::string lineText(int line) const;
};

/** Build a FileUnit (lex + parse) for @p path / @p rel / @p text. */
FileUnit makeUnit(std::string path, std::string rel, std::string text);

/** The six token rules of the original linter, re-expressed on the
 *  token stream: raw-sync, raw-include, parallel-stl, volatile,
 *  padded-slot. (bad-allow lives with the suppression machinery.) */
void passCtxDiscipline(const FileUnit& u, std::vector<Finding>* out);

/** Shared lambda captures written outside the Ctx contract inside a
 *  lambda passed to an rt::par primitive. */
void passCaptureEscape(const FileUnit& u, std::vector<Finding>* out);

/** Barriers reached on divergent control paths: a `.barrier()` call
 *  nested under if/else/switch (braced or not) inside its enclosing
 *  function or lambda, or a conditional return that can skip a later
 *  barrier in the same body. */
void passBarrierDivergence(const FileUnit& u,
                           std::vector<Finding>* out);

/** Upward or cyclic #include against the layer DAG. */
void passIncludeLayering(const FileUnit& u, std::vector<Finding>* out);

} // namespace crono::staticlint

#endif // CRONO_ANALYSIS_STATIC_PASSES_H_

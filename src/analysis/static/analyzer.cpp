#include "analysis/static/analyzer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "obs/json.h"

namespace crono::staticlint {

namespace {

std::string_view
trim(std::string_view s)
{
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                          s.front() == '\r')) {
        s.remove_prefix(1);
    }
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                          s.back() == '\r')) {
        s.remove_suffix(1);
    }
    return s;
}

/** trim(), plus a trailing block-comment closer so directives on the
 *  last line of a / * ... * / comment still parse. */
std::string_view
trimCommentLine(std::string_view s)
{
    s = trim(s);
    if (s.size() >= 2 && s.substr(s.size() - 2) == "*/") {
        s = trim(s.substr(0, s.size() - 2));
    }
    return s;
}

/** One allow directive, with bookkeeping for hygiene. */
struct Allow {
    int line = 0; ///< line the directive sits on
    std::string rule;
    bool used = false;
};

struct FileAllows {
    std::vector<Allow> allows;
    std::vector<Finding> bad; ///< malformed directives (bad-allow)
};

/**
 * Parse `crono-lint: allow(rule): why` directives out of the file's
 * comment tokens. Runs on tokens, not raw lines, so directives work
 * inside block comments and survive line continuations.
 */
FileAllows
parseAllows(const FileUnit& u)
{
    FileAllows fa;
    constexpr std::string_view kMarker = "crono-lint:";
    for (const Token& t : u.ast.tokens) {
        if (t.kind != Tok::kComment) {
            continue;
        }
        // Scan each physical line of the comment separately.
        int line = t.line;
        std::size_t pos = 0;
        while (pos <= t.text.size()) {
            const std::size_t nl = t.text.find('\n', pos);
            const std::string_view ln =
                std::string_view(t.text).substr(
                    pos, nl == std::string::npos ? nl : nl - pos);
            pos = nl == std::string::npos ? t.text.size() + 1 : nl + 1;
            const std::size_t m = ln.find(kMarker);
            if (m == std::string_view::npos) {
                ++line;
                continue;
            }
            // Documentation *mentions* the directive in backticks
            // (`crono-lint: allow(rule): why`); only bare directives
            // are suppressions.
            if (ln.substr(0, m).find('`') != std::string_view::npos) {
                ++line;
                continue;
            }
            const auto bad = [&](const std::string& why) {
                fa.bad.push_back({u.path, line, "bad-allow", why,
                                  u.lineText(line),
                                  Severity::kError});
            };
            std::string_view rest =
                trimCommentLine(ln.substr(m + kMarker.size()));
            constexpr std::string_view kAllow = "allow(";
            if (rest.substr(0, kAllow.size()) != kAllow) {
                bad("crono-lint directive is not 'allow(rule): ...'");
                ++line;
                continue;
            }
            rest.remove_prefix(kAllow.size());
            const std::size_t close = rest.find(')');
            if (close == std::string_view::npos) {
                bad("unterminated allow(rule)");
                ++line;
                continue;
            }
            const std::string rule{trim(rest.substr(0, close))};
            rest = trim(rest.substr(close + 1));
            if (rest.empty() || rest.front() != ':' ||
                trim(rest.substr(1)).empty()) {
                bad("allow(" + rule +
                    ") has no justification — write 'allow(" + rule +
                    "): why this is safe here'");
                ++line;
                continue;
            }
            if (!ruleKnown(rule)) {
                bad("allow(" + rule + "): unknown rule id");
                ++line;
                continue;
            }
            if (rule == "bad-allow" || rule == "stale-suppression") {
                bad("allow(" + rule +
                    "): hygiene rules are never suppressible");
                ++line;
                continue;
            }
            fa.allows.push_back({line, rule, false});
            ++line;
        }
    }
    return fa;
}

/** Apply allows: move unsuppressed findings to @p out, mark used
 *  entries, count suppressed. bad-allow / stale-suppression pass
 *  through untouched. */
std::size_t
applyAllows(std::vector<Finding>&& raw, FileAllows* fa,
            std::vector<Finding>* out)
{
    std::size_t suppressed = 0;
    for (Finding& f : raw) {
        bool covered = false;
        if (f.rule != "bad-allow" && f.rule != "stale-suppression") {
            for (Allow& a : fa->allows) {
                if (a.rule == f.rule &&
                    (a.line == f.line || a.line == f.line - 1)) {
                    a.used = true;
                    covered = true;
                }
            }
        }
        if (covered) {
            ++suppressed;
        } else {
            out->push_back(std::move(f));
        }
    }
    return suppressed;
}

/** Parse a detector.allow / tsan.supp file: entries with the
 *  comment-justification contract. Returns (line, pattern) pairs and
 *  appends structural violations to @p out. */
std::vector<std::pair<int, std::string>>
parseSuppressionFile(const SourceFile& sf, std::vector<Finding>* out)
{
    std::vector<std::pair<int, std::string>> entries;
    std::istringstream in(sf.text);
    std::string raw;
    int lineno = 0;
    bool prev_comment = false;
    while (std::getline(in, raw)) {
        ++lineno;
        const std::string_view line = trim(raw);
        if (line.empty()) {
            prev_comment = false; // blank detaches the comment
            continue;
        }
        if (line.front() == '#') {
            prev_comment = true;
            continue;
        }
        const std::size_t colon = line.find(':');
        const auto snippet = std::string(line.substr(0, 120));
        if (colon == std::string_view::npos) {
            out->push_back({sf.path, lineno, "bad-allow",
                            "suppression entry is not "
                            "'directive:pattern'",
                            snippet, Severity::kError});
            prev_comment = false;
            continue;
        }
        if (!prev_comment) {
            out->push_back({sf.path, lineno, "bad-allow",
                            "suppression entry lacks the required "
                            "justification comment directly above it",
                            snippet, Severity::kError});
        }
        std::string pattern{trim(line.substr(colon + 1))};
        entries.emplace_back(lineno, std::move(pattern));
        prev_comment = false;
    }
    return entries;
}

/** Does @p pattern (possibly with TSan-style '*' wildcards) match
 *  anything in the analyzed sources? The longest literal fragment
 *  must appear as a substring of some file's text. */
bool
patternMatchesSources(const std::string& pattern,
                      const std::vector<SourceFile>& files)
{
    std::string longest;
    std::string cur;
    for (const char c : pattern) {
        if (c == '*' || c == '^' || c == '$') {
            if (cur.size() > longest.size()) {
                longest = cur;
            }
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (cur.size() > longest.size()) {
        longest = cur;
    }
    if (longest.empty()) {
        return true; // pure-wildcard pattern matches trivially
    }
    for (const SourceFile& f : files) {
        if (f.text.find(longest) != std::string::npos) {
            return true;
        }
    }
    return false;
}

std::string
relativize(const std::string& path, const std::string& root)
{
    if (root.empty()) {
        return path;
    }
    std::string r = root;
    if (!r.empty() && r.back() != '/') {
        r.push_back('/');
    }
    if (path.rfind(r, 0) == 0) {
        return path.substr(r.size());
    }
    return path;
}

} // namespace

AnalysisResult
analyzeSources(const std::vector<SourceFile>& files,
               const Options& opt)
{
    AnalysisResult res;
    res.files_analyzed = files.size();
    for (const SourceFile& sf : files) {
        const std::string rel = relativize(sf.path, opt.root);
        const FileUnit u = makeUnit(rel, rel, sf.text);

        std::vector<Finding> raw;
        passCtxDiscipline(u, &raw);
        passCaptureEscape(u, &raw);
        passBarrierDivergence(u, &raw);
        passIncludeLayering(u, &raw);

        FileAllows fa = parseAllows(u);
        std::vector<Finding> kept(std::move(fa.bad));
        res.suppressed += applyAllows(std::move(raw), &fa, &kept);
        // Hygiene: an allow that suppressed nothing has rotted.
        for (const Allow& a : fa.allows) {
            if (!a.used) {
                kept.push_back(
                    {u.path, a.line, "stale-suppression",
                     "allow(" + a.rule +
                         ") suppresses nothing on this or the next "
                         "line — remove it (or it is masking a fixed "
                         "finding)",
                     u.lineText(a.line), Severity::kError});
            }
        }
        std::sort(kept.begin(), kept.end(),
                  [](const Finding& x, const Finding& y) {
                      return x.line < y.line;
                  });
        res.findings.insert(res.findings.end(),
                            std::make_move_iterator(kept.begin()),
                            std::make_move_iterator(kept.end()));
    }

    // Suppression-file hygiene against the full analyzed set.
    for (const SourceFile& supp : opt.suppression_files) {
        std::vector<Finding> fs;
        const auto entries = parseSuppressionFile(supp, &fs);
        for (const auto& [line, pattern] : entries) {
            if (!patternMatchesSources(pattern, files)) {
                fs.push_back(
                    {supp.path, line, "stale-suppression",
                     "suppression pattern '" + pattern +
                         "' matches no symbol in the analyzed "
                         "sources — the suppression has rotted",
                     pattern, Severity::kError});
            }
        }
        res.findings.insert(res.findings.end(),
                            std::make_move_iterator(fs.begin()),
                            std::make_move_iterator(fs.end()));
    }
    return res;
}

std::vector<Finding>
analyzeText(std::string_view path, std::string_view text)
{
    return analyzeSources({{std::string(path), std::string(text)}})
        .findings;
}

AnalysisResult
analyzeFiles(const std::vector<std::string>& paths,
             const Options& opt)
{
    std::vector<SourceFile> files;
    std::vector<Finding> io;
    for (const std::string& p : paths) {
        std::ifstream in(p);
        if (!in) {
            io.push_back({relativize(p, opt.root), 0, "io",
                          "cannot read file", "", Severity::kError});
            continue;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        files.push_back({p, buf.str()});
    }
    AnalysisResult res = analyzeSources(files, opt);
    res.findings.insert(res.findings.end(),
                        std::make_move_iterator(io.begin()),
                        std::make_move_iterator(io.end()));
    return res;
}

std::vector<std::string>
collectSources(const std::string& path)
{
    namespace fs = std::filesystem;
    std::vector<std::string> out;
    std::error_code ec;
    if (fs::is_regular_file(path, ec)) {
        out.push_back(path);
        return out;
    }
    const std::set<std::string> exts{".h", ".hpp", ".cpp", ".cc"};
    for (fs::recursive_directory_iterator it(path, ec), end;
         !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() &&
            exts.count(it->path().extension().string()) != 0) {
            out.push_back(it->path().string());
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::string
writeReportJson(const AnalysisResult& res, std::string_view root)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("schema").value("crono.lint.v1");
    w.key("root").value(root);
    w.key("files_analyzed")
        .value(static_cast<std::uint64_t>(res.files_analyzed));
    w.key("suppressed")
        .value(static_cast<std::uint64_t>(res.suppressed));
    w.key("finding_count")
        .value(static_cast<std::uint64_t>(res.findings.size()));
    w.key("findings").beginArray();
    for (const Finding& f : res.findings) {
        w.beginObject();
        w.key("file").value(f.file);
        w.key("line").value(static_cast<std::int64_t>(f.line));
        w.key("rule").value(f.rule);
        w.key("severity")
            .value(f.severity == Severity::kError ? "error"
                                                  : "warning");
        w.key("message").value(f.message);
        w.key("snippet").value(f.snippet);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace crono::staticlint

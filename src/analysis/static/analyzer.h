/**
 * @file
 * crono_analyze driver — files in, suppressed findings out, plus the
 * crono.lint.v1 JSON report (DESIGN.md §16).
 *
 * The driver owns everything that is cross-cutting rather than
 * per-pass:
 *
 *  - running every pass over every file;
 *  - the `// crono-lint: allow(rule): why` suppression contract
 *    (same-line or line-above, justification required, unknown rule
 *    ids rejected) — parsed from comment tokens, so it works inside
 *    block comments and after continuations;
 *  - suppression hygiene: an allow that suppressed nothing, or a
 *    detector.allow / tsan.supp entry whose pattern matches no symbol
 *    in the analyzed sources, becomes a `stale-suppression` finding
 *    (never itself suppressible, so suppressions cannot rot);
 *  - the machine-readable report, emitted alongside the human
 *    output: schema `crono.lint.v1`, one entry per finding with
 *    file/line/rule/severity/message/snippet.
 */

#ifndef CRONO_ANALYSIS_STATIC_ANALYZER_H_
#define CRONO_ANALYSIS_STATIC_ANALYZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "analysis/static/passes.h"

namespace crono::staticlint {

/** One input file (or in-memory pseudo-file, for tests). */
struct SourceFile {
    std::string path; ///< reported in findings; repo-relative wanted
    std::string text;
};

struct Options {
    /** Repo root: paths under it are relativized for the layer
     *  policy; the scripts/suppressions files are auto-discovered
     *  under it by the CLI. Empty: paths are used as given. */
    std::string root;
    /** detector.allow / tsan.supp files to hygiene-check. */
    std::vector<SourceFile> suppression_files;
};

struct AnalysisResult {
    std::vector<Finding> findings; ///< post-suppression, sorted
    std::size_t files_analyzed = 0;
    std::size_t suppressed = 0; ///< findings removed by valid allows
};

/** Analyze in-memory sources (the core entry point; what the CLI and
 *  the tests both call). */
AnalysisResult analyzeSources(const std::vector<SourceFile>& files,
                              const Options& opt = {});

/** Convenience: analyze one pseudo-file, all rules, no suppression
 *  files. Mirrors the old lintText(). */
std::vector<Finding> analyzeText(std::string_view path,
                                 std::string_view text);

/** Read and analyze on-disk files. Unreadable files yield an "io"
 *  finding so a misconfigured invocation cannot pass. */
AnalysisResult analyzeFiles(const std::vector<std::string>& paths,
                            const Options& opt = {});

/** Recursively collect C++ sources (.h/.hpp/.cpp/.cc) under @p path;
 *  a regular file is returned as-is. Sorted for determinism. */
std::vector<std::string> collectSources(const std::string& path);

/** Serialize @p res as a crono.lint.v1 JSON document. */
std::string writeReportJson(const AnalysisResult& res,
                            std::string_view root);

} // namespace crono::staticlint

#endif // CRONO_ANALYSIS_STATIC_ANALYZER_H_

#include "analysis/static/passes.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace crono::staticlint {

namespace {

bool
isPunct(const Token& t, std::string_view s)
{
    return t.kind == Tok::kPunct && t.text == s;
}

bool
isIdent(const Token& t, std::string_view s)
{
    return t.kind == Tok::kIdent && t.text == s;
}

/** std:: members banned in Ctx-disciplined code (prefix-matched, so
 *  "atomic" also catches atomic_ref / atomic_flag / atomic<T>). */
constexpr std::string_view kRawSyncStd[] = {
    "atomic",        "mutex",          "shared_mutex",
    "timed_mutex",   "recursive_mutex", "condition_variable",
    "lock_guard",    "unique_lock",    "scoped_lock",
    "shared_lock",   "counting_semaphore", "binary_semaphore",
    "barrier",       "latch",          "thread",
    "jthread",       "call_once",      "once_flag",
    "future",        "promise",        "async",
};

constexpr std::string_view kRawIncludes[] = {
    "atomic",    "mutex",     "shared_mutex", "thread",
    "condition_variable",     "barrier",      "latch",
    "semaphore", "future",    "stop_token",   "execution",
};

/** rt::par primitives and rt::bnb policy entry points whose lambda
 *  arguments must honor the Ctx write contract. */
constexpr std::string_view kParPrimitives[] = {
    "vertexMap",       "vertexMapStriped", "vertexMapGuided",
    "vertexMapCapture", "edgeMapPush",     "edgeMapPull",
    "edgeMapPullAll",  "edgeMapPullAllGuided",
    "edgeMapGatherBlocked", "reduce",      "reducePerThread",
    // rt::bnb policy protocol: expand/forEachRoot receive an Emit
    // lambda from the searcher's per-thread DFS loop.
    "expand",          "forEachRoot",
};

constexpr std::string_view kThreadCountNames[] = {
    "nthreads", "nThreads", "num_threads", "numThreads"};

void
report(const FileUnit& u, int line, std::string_view rule,
       std::string message, std::vector<Finding>* out)
{
    for (const RuleInfo& r : ruleCatalog()) {
        if (r.id == rule) {
            out->push_back({u.path, line, std::string(rule),
                            std::move(message), u.lineText(line),
                            r.severity});
            return;
        }
    }
    out->push_back({u.path, line, std::string(rule),
                    std::move(message), u.lineText(line),
                    Severity::kError});
}

} // namespace

const std::vector<RuleInfo>&
ruleCatalog()
{
    static const std::vector<RuleInfo> kCatalog = {
        {"raw-sync", Severity::kError,
         "raw std:: synchronization / threads / pthread / builtin "
         "atomics bypass the ExecutionContext — use "
         "ctx.read/write/fetchAdd, SimMutex, or rt::par",
         "src/core, src/graph, rt::bnb (runtime/obs/sim implement the "
         "Ctx and are exempt by policy)"},
        {"raw-include", Severity::kError,
         "#include of a threading or atomics header in Ctx-"
         "disciplined code",
         "src/core, src/graph, rt::bnb"},
        {"parallel-stl", Severity::kError,
         "std::execution policies hide threads the simulator cannot "
         "model",
         "src/core, src/graph, rt::bnb"},
        {"volatile", Severity::kError,
         "volatile does not order or atomicize accesses — use Ctx "
         "primitives",
         "everywhere"},
        {"padded-slot", Severity::kError,
         "per-thread accumulator slots must be padded (Padded<T>) to "
         "avoid false sharing",
         "src/core, src/graph, rt::bnb"},
        {"capture-escape", Severity::kError,
         "a lambda passed to an rt::par primitive or rt::bnb policy "
         "writes a by-reference capture that aliases shared storage "
         "(a reference/pointer declaration) without going through "
         "ctx.*, a tid-indexed Padded slot, or tryClaim; value locals "
         "of the enclosing SPMD frame are thread-private and exempt",
         "everywhere"},
        {"barrier-divergence", Severity::kError,
         "a barrier reached under divergent control flow (if/else/"
         "switch, or a conditional return that skips a later barrier) "
         "deadlocks the region",
         "everywhere"},
        {"include-layering", Severity::kError,
         "#include against the layer DAG common → obs → sim → runtime "
         "→ graph → analysis → core → serve → tools/bench",
         "every file inside a known layer"},
        {"stale-suppression", Severity::kError,
         "an allow comment, detector.allow or tsan.supp entry that "
         "suppresses nothing is itself an error (never suppressible)",
         "everywhere"},
        {"bad-allow", Severity::kError,
         "malformed or justification-free suppression (never "
         "suppressible)",
         "everywhere"},
    };
    return kCatalog;
}

bool
ruleKnown(std::string_view id)
{
    const auto& cat = ruleCatalog();
    return std::any_of(cat.begin(), cat.end(), [&](const RuleInfo& r) {
        return r.id == id;
    });
}

std::string
ruleTableMarkdown()
{
    std::ostringstream os;
    os << "| rule | severity | applies to | summary |\n";
    os << "|---|---|---|---|\n";
    for (const RuleInfo& r : ruleCatalog()) {
        os << "| `" << r.id << "` | "
           << (r.severity == Severity::kError ? "error" : "warning")
           << " | " << r.applies << " | " << r.summary << " |\n";
    }
    return os.str();
}

int
layerOf(std::string_view rel)
{
    struct Entry {
        std::string_view prefix;
        int layer;
    };
    static constexpr Entry kMap[] = {
        {"src/common/", 0}, {"src/obs/", 1},     {"src/sim/", 2},
        {"src/runtime/", 3}, {"src/graph/", 4},  {"src/analysis/", 5},
        {"src/core/", 6},   {"src/serve/", 7},   {"tools/", 8},
        {"bench/", 8},
    };
    for (const Entry& e : kMap) {
        if (rel.substr(0, e.prefix.size()) == e.prefix) {
            return e.layer;
        }
    }
    return -1;
}

int
layerOfInclude(std::string_view inc)
{
    struct Entry {
        std::string_view prefix;
        int layer;
    };
    static constexpr Entry kMap[] = {
        {"common/", 0},  {"obs/", 1},   {"sim/", 2},
        {"runtime/", 3}, {"graph/", 4}, {"analysis/", 5},
        {"core/", 6},    {"serve/", 7},
    };
    for (const Entry& e : kMap) {
        if (inc.substr(0, e.prefix.size()) == e.prefix) {
            return e.layer;
        }
    }
    return -1;
}

std::string_view
layerName(int layer)
{
    switch (layer) {
      case 0: return "src/common";
      case 1: return "src/obs";
      case 2: return "src/sim";
      case 3: return "src/runtime";
      case 4: return "src/graph";
      case 5: return "src/analysis";
      case 6: return "src/core";
      case 7: return "src/serve";
      case 8: return "tools|bench";
      default: return "<unknown>";
    }
}

namespace {

/** Files subject to the full Ctx-discipline contract. */
bool
ctxDisciplined(std::string_view rel)
{
    if (rel.substr(0, 9) == "src/core/" ||
        rel.substr(0, 10) == "src/graph/") {
        return true;
    }
    // The rt::bnb framework routes every access through a Ctx like
    // kernel code does, so it must lint clean too.
    if (rel.substr(0, 16) == "src/runtime/bnb.") {
        return true;
    }
    return false;
}

} // namespace

bool
ruleApplies(std::string_view rule, std::string_view rel)
{
    // A file outside every known layer (test snippets, fixtures fed
    // directly to the CLI) gets every rule — the old linter's
    // behavior for direct invocations.
    if (layerOf(rel) == -1) {
        return rule != "include-layering";
    }
    if (rule == "raw-sync" || rule == "raw-include" ||
        rule == "parallel-stl" || rule == "padded-slot") {
        return ctxDisciplined(rel);
    }
    return true; // volatile, flow passes, layering, hygiene
}

std::string
FileUnit::lineText(int line) const
{
    if (line <= 0) {
        return {};
    }
    std::size_t pos = 0;
    for (int l = 1; l < line; ++l) {
        pos = text.find('\n', pos);
        if (pos == std::string::npos) {
            return {};
        }
        ++pos;
    }
    std::size_t end = text.find('\n', pos);
    end = end == std::string::npos ? text.size() : end;
    std::string_view sv{text.data() + pos, end - pos};
    while (!sv.empty() && (sv.front() == ' ' || sv.front() == '\t')) {
        sv.remove_prefix(1);
    }
    while (!sv.empty() &&
           (sv.back() == ' ' || sv.back() == '\t' ||
            sv.back() == '\r')) {
        sv.remove_suffix(1);
    }
    return std::string(sv.substr(0, 160));
}

FileUnit
makeUnit(std::string path, std::string rel, std::string text)
{
    FileUnit u;
    u.path = std::move(path);
    u.rel = std::move(rel);
    u.ast = parse(lex(text));
    u.text = std::move(text);
    return u;
}

// ------------------------------------------------- ctx discipline

void
passCtxDiscipline(const FileUnit& u, std::vector<Finding>* out)
{
    const Ast& ast = u.ast;
    const bool sync_on = ruleApplies("raw-sync", u.rel);
    const bool inc_on = ruleApplies("raw-include", u.rel);
    const bool stl_on = ruleApplies("parallel-stl", u.rel);
    const bool vol_on = ruleApplies("volatile", u.rel);
    const bool pad_on = ruleApplies("padded-slot", u.rel);

    for (CodeIdx i = 0; i < ast.size(); ++i) {
        const Token& t = ast.tok(i);
        if (t.kind == Tok::kHeaderName && inc_on) {
            if (t.text.size() > 2 && t.text.front() == '<') {
                const std::string_view hdr{t.text.data() + 1,
                                           t.text.size() - 2};
                for (const std::string_view banned : kRawIncludes) {
                    if (hdr == banned) {
                        report(u, t.line, "raw-include",
                               "#include <" + std::string(hdr) +
                                   "> pulls raw threading into "
                                   "Ctx-disciplined code",
                               out);
                    }
                }
            }
            continue;
        }
        if (t.kind != Tok::kIdent) {
            continue;
        }
        if (vol_on && t.text == "volatile") {
            report(u, t.line, "volatile",
                   "volatile does not order or atomicize accesses — "
                   "use Ctx primitives",
                   out);
            continue;
        }
        if (sync_on && (t.text.rfind("pthread_", 0) == 0 ||
                        t.text.rfind("__atomic_", 0) == 0 ||
                        t.text.rfind("__sync_", 0) == 0)) {
            report(u, t.line, "raw-sync",
                   "raw synchronization '" + t.text +
                       "' bypasses the ExecutionContext — use "
                       "ctx.read/write/fetchAdd, SimMutex, or rt::par",
                   out);
            continue;
        }
        if (t.text != "std" || i + 2 >= ast.size() ||
            !isPunct(ast.tok(i + 1), "::") ||
            ast.tok(i + 2).kind != Tok::kIdent) {
            continue;
        }
        const std::string& member = ast.tok(i + 2).text;
        if (stl_on && member == "execution") {
            report(u, t.line, "parallel-stl",
                   "std::execution policies spawn threads the "
                   "simulator cannot observe",
                   out);
            continue;
        }
        if (sync_on) {
            for (const std::string_view base : kRawSyncStd) {
                if (member.rfind(base, 0) == 0) {
                    report(u, t.line, "raw-sync",
                           "raw synchronization 'std::" + member +
                               "' bypasses the ExecutionContext — "
                               "use ctx.read/write/fetchAdd, "
                               "SimMutex, or rt::par",
                           out);
                    break;
                }
            }
        }
        if (pad_on && member == "vector" && i + 3 < ast.size() &&
            isPunct(ast.tok(i + 3), "<")) {
            // Balance the template argument, checking for Padded /
            // AlignedVector elements; then look for a thread-count
            // identifier before the statement ends.
            int angle = 1;
            CodeIdx j = i + 4;
            bool padded = false;
            for (; j < ast.size() && angle > 0; ++j) {
                const Token& a = ast.tok(j);
                if (a.kind == Tok::kPunct) {
                    if (a.text == "<") {
                        ++angle;
                    } else if (a.text == ">") {
                        --angle;
                    } else if (a.text == ">>") {
                        angle -= 2;
                    }
                } else if (a.kind == Tok::kIdent &&
                           (a.text.find("Padded") !=
                                std::string::npos ||
                            a.text.find("AlignedVector") !=
                                std::string::npos)) {
                    padded = true;
                }
            }
            if (padded || angle > 0) {
                continue;
            }
            // `std::vector<double> name(...)` is also the shape of a
            // function returning a vector. Skip function definitions
            // (close paren followed by `{`) and prototypes (two
            // adjacent identifiers — a declared parameter — inside
            // the parens); a variable's ctor args are expressions.
            {
                CodeIdx d = j;
                while (d < ast.size() &&
                       (isPunct(ast.tok(d), "&") ||
                        isPunct(ast.tok(d), "*"))) {
                    ++d;
                }
                if (d + 1 < ast.size() &&
                    ast.tok(d).kind == Tok::kIdent &&
                    isPunct(ast.tok(d + 1), "(")) {
                    const CodeIdx close = ast.match[d + 1];
                    if (close != kNoIdx) {
                        bool is_function =
                            close + 1 < ast.size() &&
                            isPunct(ast.tok(close + 1), "{");
                        for (CodeIdx k = d + 2;
                             !is_function && k + 1 < close; ++k) {
                            if (ast.tok(k).kind == Tok::kIdent &&
                                ast.tok(k + 1).kind == Tok::kIdent) {
                                is_function = true;
                            }
                        }
                        if (is_function) {
                            continue;
                        }
                    }
                }
            }
            for (CodeIdx k = j;
                 k < ast.size() && k < j + 64 &&
                 !isPunct(ast.tok(k), ";");
                 ++k) {
                const Token& a = ast.tok(k);
                if (a.kind != Tok::kIdent) {
                    continue;
                }
                const bool tc = std::any_of(
                    std::begin(kThreadCountNames),
                    std::end(kThreadCountNames),
                    [&](std::string_view n) { return a.text == n; });
                if (tc) {
                    report(u, t.line, "padded-slot",
                           "per-thread slot vector sized by a thread "
                           "count — use Padded<T> elements (rt::par) "
                           "to avoid false sharing",
                           out);
                    break;
                }
            }
        }
    }
}

// ------------------------------------------------- capture escape

namespace {

constexpr std::string_view kAssignOps[] = {
    "=",  "+=", "-=", "*=", "/=",  "%=",
    "&=", "|=", "^=", "<<=", ">>="};

bool
isAssignOp(const Token& t)
{
    return t.kind == Tok::kPunct &&
           std::any_of(std::begin(kAssignOps), std::end(kAssignOps),
                       [&](std::string_view op) {
                           return t.text == op;
                       });
}

/** Does the initializer / subscript after @p i mention a tid? A
 *  reference bound through a tid index (`auto& slot =
 *  counters[ctx.tid()]`) aliases the thread's own slot. */
bool
tidInitialized(const Ast& ast, CodeIdx i)
{
    for (CodeIdx k = i + 1; k < ast.size() && k < i + 32; ++k) {
        const Token& t = ast.tok(k);
        if (isPunct(t, ";") || isPunct(t, "{")) {
            return false;
        }
        if (t.kind == Tok::kIdent &&
            t.text.find("tid") != std::string::npos) {
            return true;
        }
    }
    return false;
}

/**
 * Collect declaration-shaped token patterns in [lo, hi), splitting
 * them by what the name can reach: value declarations go to @p safe
 * (per-thread storage in an SPMD frame), reference/pointer
 * declarations go to @p shared (they alias storage created
 * elsewhere, possibly shared between threads) — unless the
 * initializer is tid-indexed, which pins the alias to the thread's
 * own slot.
 */
void
collectDecls(const Ast& ast, CodeIdx lo, CodeIdx hi,
             std::set<std::string>* safe,
             std::set<std::string>* shared,
             bool skip_nested = false)
{
    for (CodeIdx i = lo; i < hi && i < ast.size(); ++i) {
        const Token& t = ast.tok(i);
        // When scanning an enclosing scope for names visible at
        // position hi, declarations inside sibling scopes (a brace
        // pair that closes before hi) are out of scope there — and
        // in a class body they belong to *other methods' frames*.
        if (skip_nested && isPunct(t, "{") &&
            ast.match[i] != kNoIdx && ast.match[i] < hi) {
            i = ast.match[i];
            continue;
        }
        if (t.kind != Tok::kIdent || i == 0 || i + 1 >= ast.size()) {
            continue;
        }
        // auto [a, b] = ... / auto& [a, b] = ... structured bindings.
        if (isIdent(t, "auto") && (isPunct(ast.tok(i + 1), "[") ||
                                   (isPunct(ast.tok(i + 1), "&") &&
                                    i + 2 < ast.size() &&
                                    isPunct(ast.tok(i + 2), "[")))) {
            const bool by_ref = isPunct(ast.tok(i + 1), "&");
            const CodeIdx open = by_ref ? i + 2 : i + 1;
            const CodeIdx close = ast.match[open];
            std::set<std::string>* dst =
                by_ref && !tidInitialized(ast, close == kNoIdx
                                                   ? open
                                                   : close)
                    ? shared
                    : safe;
            for (CodeIdx k = open + 1;
                 k != kNoIdx && close != kNoIdx && k < close; ++k) {
                if (ast.tok(k).kind == Tok::kIdent) {
                    dst->insert(ast.tok(k).text);
                }
            }
            continue;
        }
        const Token& prev = ast.tok(i - 1);
        const Token& next = ast.tok(i + 1);
        // A declared name is preceded by type-ish material...
        const bool type_before =
            (prev.kind == Tok::kIdent && !isIdent(prev, "return") &&
             !isIdent(prev, "case") && !isIdent(prev, "new") &&
             !isIdent(prev, "delete") && !isIdent(prev, "goto") &&
             !isIdent(prev, "else") && !isIdent(prev, "do")) ||
            isPunct(prev, ">") || isPunct(prev, "&") ||
            isPunct(prev, "*") || isPunct(prev, "&&");
        // ...and followed by an initializer, separator, or range-for
        // colon — never by an operator that would make this a use.
        const bool decl_after =
            isPunct(next, "=") || isPunct(next, ";") ||
            isPunct(next, "{") || isPunct(next, ":") ||
            isPunct(next, ",") || isPunct(next, ")");
        if (!type_before || !decl_after) {
            continue;
        }
        const bool aliasing = isPunct(prev, "&") ||
                              isPunct(prev, "&&") ||
                              isPunct(prev, "*");
        if (aliasing && !tidInitialized(ast, i)) {
            shared->insert(t.text);
        } else {
            safe->insert(t.text);
        }
    }
}

constexpr std::string_view kTrailingSpecifiers[] = {
    "const", "noexcept", "override", "final", "mutable"};

/**
 * Locate the parameter list `( ... )` preceding a function or lambda
 * body brace at @p open (stepping back over trailing specifiers and
 * return types) and classify each parameter: by-value → @p safe
 * (copied into the per-thread frame), reference/pointer → @p shared
 * (aliases the caller's — possibly shared — storage).
 */
void
classifyParams(const Ast& ast, CodeIdx open,
               std::set<std::string>* safe,
               std::set<std::string>* shared)
{
    if (open == kNoIdx || open == 0) {
        return;
    }
    CodeIdx j = open - 1;
    for (int guard = 0; guard < 24 && j > 0; ++guard) {
        const Token& t = ast.tok(j);
        if (isPunct(t, ")")) {
            break;
        }
        const bool skippable =
            (t.kind == Tok::kIdent &&
             std::any_of(std::begin(kTrailingSpecifiers),
                         std::end(kTrailingSpecifiers),
                         [&](std::string_view s) {
                             return t.text == s;
                         })) ||
            t.kind == Tok::kIdent || isPunct(t, "->") ||
            isPunct(t, "::") || isPunct(t, "<") || isPunct(t, ">") ||
            isPunct(t, "*") || isPunct(t, "&") || isPunct(t, "&&");
        if (!skippable) {
            return; // not a function-header shape
        }
        --j;
    }
    if (j == 0 || !isPunct(ast.tok(j), ")")) {
        return;
    }
    const CodeIdx popen = ast.match[j];
    if (popen == kNoIdx) {
        return;
    }
    // Split on depth-0 commas; in each chunk the declared name is
    // the last identifier before any default argument.
    CodeIdx name = kNoIdx;
    bool in_default = false;
    int depth = 0;
    const auto commit = [&]() {
        if (name != kNoIdx && name > popen) {
            const Token& prev = ast.tok(name - 1);
            if (isPunct(prev, "&") || isPunct(prev, "&&") ||
                isPunct(prev, "*")) {
                shared->insert(ast.tok(name).text);
            } else {
                safe->insert(ast.tok(name).text);
            }
        }
        name = kNoIdx;
        in_default = false;
    };
    for (CodeIdx k = popen + 1; k < j; ++k) {
        const Token& t = ast.tok(k);
        if (t.kind == Tok::kPunct) {
            if (t.text == "(" || t.text == "[" || t.text == "{" ||
                t.text == "<") {
                ++depth;
            } else if (t.text == ")" || t.text == "]" ||
                       t.text == "}" || t.text == ">") {
                --depth;
            } else if (t.text == "," && depth == 0) {
                commit();
                continue;
            } else if (t.text == "=" && depth == 0) {
                in_default = true;
            }
        }
        if (t.kind == Tok::kIdent && depth == 0 && !in_default) {
            name = k;
        }
    }
    commit();
}

/**
 * Walk the LHS postfix chain ending at @p j (inclusive) leftward.
 * Returns the base identifier's code index, or kNoIdx to skip
 * (parenthesized/call-result/qualified targets). Sets *tid_indexed
 * when the chain's subscripts or members mention a tid.
 */
CodeIdx
chainBase(const Ast& ast, CodeIdx j, CodeIdx lo, bool* tid_indexed)
{
    *tid_indexed = false;
    CodeIdx base = kNoIdx;
    while (j != kNoIdx && j >= lo) {
        const Token& t = ast.tok(j);
        if (isPunct(t, "]")) {
            const CodeIdx open = ast.match[j];
            if (open == kNoIdx) {
                return kNoIdx;
            }
            for (CodeIdx k = open + 1; k < j; ++k) {
                if (ast.tok(k).kind == Tok::kIdent &&
                    ast.tok(k).text.find("tid") != std::string::npos) {
                    *tid_indexed = true;
                }
            }
            if (open == 0) {
                return kNoIdx;
            }
            j = open - 1;
            continue;
        }
        if (t.kind == Tok::kIdent) {
            base = j;
            if (j >= 1 + lo &&
                (isPunct(ast.tok(j - 1), ".") ||
                 isPunct(ast.tok(j - 1), "->"))) {
                if (t.text.find("tid") != std::string::npos) {
                    *tid_indexed = true;
                }
                j -= 2;
                continue;
            }
            if (j >= 1 + lo && isPunct(ast.tok(j - 1), "::")) {
                return kNoIdx; // qualified name — not a capture
            }
            return base;
        }
        if (isPunct(t, "*")) { // *ptr = ... — dereference target
            return kNoIdx;
        }
        return kNoIdx; // ')' or anything else: give up quietly
    }
    return base;
}

} // namespace

void
passCaptureEscape(const FileUnit& u, std::vector<Finding>* out)
{
    if (!ruleApplies("capture-escape", u.rel)) {
        return;
    }
    const Ast& ast = u.ast;
    for (CodeIdx i = 0; i + 1 < ast.size(); ++i) {
        const Token& t = ast.tok(i);
        if (t.kind != Tok::kIdent || !isPunct(ast.tok(i + 1), "(")) {
            continue;
        }
        const bool prim = std::any_of(
            std::begin(kParPrimitives), std::end(kParPrimitives),
            [&](std::string_view p) { return t.text == p; });
        if (!prim) {
            continue;
        }
        const CodeIdx call_close = ast.match[i + 1];
        if (call_close == kNoIdx) {
            continue;
        }
        for (const Lambda& lam : ast.lambdas) {
            if (lam.intro <= i + 1 || lam.intro >= call_close ||
                lam.body_open == kNoIdx ||
                lam.body_close == kNoIdx) {
                continue;
            }
            if (!lam.default_ref && lam.ref_captures.empty()) {
                continue; // nothing captured by reference
            }
            // The lambda's own parameters and body locals are
            // per-invocation; what the primitive hands in (reduce
            // accumulators and the like) is the primitive's business.
            std::set<std::string> locals(lam.params.begin(),
                                         lam.params.end());
            std::set<std::string> shared_alias;
            collectDecls(ast, lam.body_open + 1, lam.body_close,
                         &locals, &shared_alias);
            // Nested lambdas' parameters and by-value captures are
            // local to their own bodies; fold them in so their
            // writes don't misattribute.
            for (const Lambda& nested : ast.lambdas) {
                if (nested.intro > lam.body_open &&
                    nested.intro < lam.body_close) {
                    locals.insert(nested.params.begin(),
                                  nested.params.end());
                    locals.insert(nested.val_captures.begin(),
                                  nested.val_captures.end());
                }
            }
            // Enclosing frames run per-thread under the SPMD
            // executor (the kernel function body *is* the per-thread
            // program), so their value locals are thread-private.
            // Only names that alias storage created elsewhere —
            // reference/pointer declarations and parameters — can
            // reach a shared object.
            for (int sc = lam.intro < ast.scope_at.size()
                              ? ast.scope_at[lam.intro]
                              : -1;
                 sc >= 0; sc = ast.scopes[sc].parent) {
                const Scope& S = ast.scopes[sc];
                if (S.open == kNoIdx) {
                    continue;
                }
                collectDecls(ast, S.open + 1, lam.intro, &locals,
                             &shared_alias, /*skip_nested=*/true);
                if (S.kind == ScopeKind::kFunction ||
                    S.kind == ScopeKind::kLambda) {
                    classifyParams(ast, S.open, &locals,
                                   &shared_alias);
                }
            }
            const std::set<std::string> by_val(
                lam.val_captures.begin(), lam.val_captures.end());
            const std::set<std::string> by_ref(
                lam.ref_captures.begin(), lam.ref_captures.end());

            const auto flag = [&](CodeIdx base, CodeIdx op,
                                  bool tid_indexed) {
                const std::string& name = ast.tok(base).text;
                if (tid_indexed || name == "ctx" ||
                    locals.count(name) != 0 ||
                    by_val.count(name) != 0) {
                    return;
                }
                const bool ref_captured =
                    by_ref.count(name) != 0 || lam.default_ref;
                if (!ref_captured ||
                    shared_alias.count(name) == 0) {
                    return; // value local of a per-thread frame
                }
                report(u, ast.tok(op).line, "capture-escape",
                       "lambda passed to " + t.text +
                           " writes by-reference capture '" + name +
                           "', which aliases shared storage — route "
                           "shared writes through ctx.write/fetchAdd, "
                           "a Padded slot indexed by ctx.tid(), or "
                           "tryClaim",
                       out);
            };

            for (CodeIdx j = lam.body_open + 1; j < lam.body_close;
                 ++j) {
                const Token& op = ast.tok(j);
                if (isAssignOp(op) && j > lam.body_open + 1) {
                    bool tid = false;
                    const CodeIdx base = chainBase(
                        ast, j - 1, lam.body_open + 1, &tid);
                    // `Type* p = ...` / `Type& r = ...` directly
                    // before the `=` is a declaration initializer,
                    // not a write to captured state.
                    if (base == j - 1 && base > lam.body_open + 1) {
                        const Token& head = ast.tok(base - 1);
                        if (isPunct(head, "*") ||
                            isPunct(head, "&") ||
                            isPunct(head, "&&") ||
                            isPunct(head, ">") ||
                            (head.kind == Tok::kIdent &&
                             !isIdent(head, "return") &&
                             !isIdent(head, "else") &&
                             !isIdent(head, "do") &&
                             !isIdent(head, "goto"))) {
                            continue;
                        }
                    }
                    if (base != kNoIdx) {
                        flag(base, j, tid);
                    }
                } else if (isPunct(op, "++") || isPunct(op, "--")) {
                    bool tid = false;
                    CodeIdx base = kNoIdx;
                    if (j + 1 < lam.body_close &&
                        ast.tok(j + 1).kind == Tok::kIdent &&
                        (j == lam.body_open + 1 ||
                         ast.tok(j - 1).kind == Tok::kPunct)) {
                        base = j + 1; // pre-increment
                        if (j + 2 < lam.body_close &&
                            isPunct(ast.tok(j + 2), "::")) {
                            base = kNoIdx;
                        }
                    } else if (j > lam.body_open + 1) {
                        base = chainBase(ast, j - 1,
                                         lam.body_open + 1, &tid);
                    }
                    if (base != kNoIdx) {
                        flag(base, j, tid);
                    }
                }
            }
        }
    }
}

// --------------------------------------------- barrier divergence

namespace {

/** Is code token @p i a `.barrier()` / `->barrier()` call? */
bool
isBarrierCall(const Ast& ast, CodeIdx i)
{
    if (!isIdent(ast.tok(i), "barrier") || i == 0 ||
        i + 1 >= ast.size()) {
        return false;
    }
    const Token& prev = ast.tok(i - 1);
    return (isPunct(prev, ".") || isPunct(prev, "->")) &&
           isPunct(ast.tok(i + 1), "(");
}

} // namespace

void
passBarrierDivergence(const FileUnit& u, std::vector<Finding>* out)
{
    if (!ruleApplies("barrier-divergence", u.rel)) {
        return;
    }
    const Ast& ast = u.ast;

    // Pass A: braced conditionals — walk the scope chain from each
    // barrier call to its enclosing function/lambda.
    std::vector<CodeIdx> barriers;
    for (CodeIdx i = 0; i < ast.size(); ++i) {
        if (!isBarrierCall(ast, i)) {
            continue;
        }
        barriers.push_back(i);
        if (ast.underConditional(ast.scope_at[i])) {
            report(u, ast.tok(i).line, "barrier-divergence",
                   "barrier under if/else/switch — threads that take "
                   "the other path never arrive and the region "
                   "deadlocks; hoist the barrier or prove the "
                   "condition uniform and allow it",
                   out);
        }
    }

    // Pass B: braceless conditionals (`if (x) ctx.barrier();`) and
    // conditional returns that skip a later barrier in the same body.
    for (CodeIdx i = 0; i < ast.size(); ++i) {
        const Token& t = ast.tok(i);
        CodeIdx stmt_begin = kNoIdx;
        if (isIdent(t, "if") && i + 1 < ast.size() &&
            isPunct(ast.tok(i + 1), "(")) {
            const CodeIdx close = ast.match[i + 1];
            if (close == kNoIdx || close + 1 >= ast.size()) {
                continue;
            }
            const Token& next = ast.tok(close + 1);
            if (isPunct(next, "{") || isIdent(next, "if")) {
                continue; // braced, or `else if` chain
            }
            stmt_begin = close + 1;
        } else if (isIdent(t, "else") && i + 1 < ast.size() &&
                   !isPunct(ast.tok(i + 1), "{") &&
                   !isIdent(ast.tok(i + 1), "if")) {
            stmt_begin = i + 1;
        } else {
            continue;
        }
        // The single statement runs to the first depth-0 ';'.
        int depth = 0;
        for (CodeIdx j = stmt_begin;
             j < ast.size() && j < stmt_begin + 256; ++j) {
            const Token& s = ast.tok(j);
            if (s.kind == Tok::kPunct) {
                if (s.text == "(" || s.text == "[" || s.text == "{") {
                    ++depth;
                } else if (s.text == ")" || s.text == "]" ||
                           s.text == "}") {
                    --depth;
                } else if (s.text == ";" && depth == 0) {
                    break;
                }
            }
            if (isBarrierCall(ast, j)) {
                report(u, ast.tok(j).line, "barrier-divergence",
                       "barrier in a braceless conditional statement "
                       "— threads that skip it never arrive",
                       out);
            }
            if (isIdent(s, "return")) {
                // Conditional return: divergent if the enclosing
                // body still has a barrier ahead.
                const int body =
                    ast.enclosingBody(ast.scope_at[j]);
                for (const CodeIdx b : barriers) {
                    if (b > j &&
                        ast.enclosingBody(ast.scope_at[b]) == body) {
                        report(u, ast.tok(j).line,
                               "barrier-divergence",
                               "conditional return before a barrier "
                               "in the same parallel body — the "
                               "returning thread never arrives",
                               out);
                        break;
                    }
                }
            }
        }
    }

    // Pass C: braced conditional returns that skip a later barrier.
    for (CodeIdx i = 0; i < ast.size(); ++i) {
        if (!isIdent(ast.tok(i), "return")) {
            continue;
        }
        const int scope = ast.scope_at[i];
        if (scope < 0 || !ast.underConditional(scope)) {
            continue;
        }
        const int body = ast.enclosingBody(scope);
        if (body < 0) {
            continue;
        }
        for (const CodeIdx b : barriers) {
            if (b > i && ast.enclosingBody(ast.scope_at[b]) == body) {
                report(u, ast.tok(i).line, "barrier-divergence",
                       "conditional return before a barrier in the "
                       "same parallel body — the returning thread "
                       "never arrives at the rendezvous",
                       out);
                break;
            }
        }
    }
}

// ---------------------------------------------- include layering

void
passIncludeLayering(const FileUnit& u, std::vector<Finding>* out)
{
    if (!ruleApplies("include-layering", u.rel)) {
        return;
    }
    const int file_layer = layerOf(u.rel);
    if (file_layer < 0) {
        return;
    }
    const Ast& ast = u.ast;
    for (CodeIdx i = 0; i < ast.size(); ++i) {
        const Token& t = ast.tok(i);
        if (t.kind != Tok::kHeaderName || t.text.size() <= 2 ||
            t.text.front() != '"') {
            continue;
        }
        const std::string_view inc{t.text.data() + 1,
                                   t.text.size() - 2};
        const int inc_layer = layerOfInclude(inc);
        if (inc_layer < 0 || inc_layer <= file_layer) {
            continue;
        }
        report(u, t.line, "include-layering",
               "#include \"" + std::string(inc) + "\" reaches up the "
               "layer DAG: " + std::string(layerName(file_layer)) +
               " may not depend on " +
               std::string(layerName(inc_layer)) +
               " (common → obs → sim → runtime → graph → analysis → "
               "core → serve → tools/bench)",
               out);
    }
}

} // namespace crono::staticlint

/**
 * @file
 * Synthetic graph generators.
 *
 * These replace the paper's inputs (Table III):
 *  - uniformRandom: the GTgraph-style "Sparse" synthetic input
 *    (n vertices, m uniformly random edges).
 *  - roadNetwork: stands in for the SNAP TX/PA/CA road networks —
 *    a perturbed planar lattice with average degree ~2.6, long
 *    diameter and strong locality.
 *  - socialNetwork: stands in for the SNAP Facebook graph — an R-MAT
 *    power-law generator with heavy degree skew.
 *  - tspCities: the "32 Cities" TSP input, random points on a plane.
 * Plus small regular topologies used by the test suite.
 *
 * Every generator is deterministic in its seed.
 */

#ifndef CRONO_GRAPH_GENERATORS_H_
#define CRONO_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/adjacency_matrix.h"
#include "graph/graph.h"

namespace crono::graph::generators {

/**
 * GTgraph-style uniform random graph.
 *
 * @param n          vertices
 * @param m          logical (undirected) edges to attempt; self loops
 *                   and duplicates are dropped, so the result can have
 *                   slightly fewer
 * @param max_weight weights are uniform in [1, max_weight]
 */
Graph uniformRandom(VertexId n, EdgeId m, Weight max_weight,
                    std::uint64_t seed);

/**
 * Road-network-like graph: a width x height lattice whose edges carry
 * distance-like weights; a fraction of lattice edges is deleted and a
 * small number of long "highway" shortcuts is added.
 *
 * Average degree lands near the 2.6 of the SNAP road networks.
 */
Graph roadNetwork(VertexId width, VertexId height, std::uint64_t seed);

/**
 * Social-network-like graph via R-MAT (a=0.57, b=c=0.19, d=0.05).
 *
 * @param scale        log2 of the vertex count
 * @param edge_factor  logical edges per vertex (Facebook ~ 14)
 */
Graph socialNetwork(unsigned scale, unsigned edge_factor,
                    std::uint64_t seed);

/** Complete symmetric distance matrix of @p n random planar cities. */
AdjacencyMatrix tspCities(VertexId n, std::uint64_t seed);

/**
 * Random vertex-labeled dense graph for the MCS kernel: @p edges
 * symmetric unit-weight edge attempts (self loops and duplicates
 * collapse), labels uniform in [0, num_labels).
 */
LabeledMatrix labeledGraph(VertexId n, EdgeId edges,
                           std::uint32_t num_labels,
                           std::uint64_t seed);

/**
 * GAP-specification Kronecker (R-MAT) graph: a = 0.57, b = c = 0.19,
 * d = 0.05, *without* the per-level parameter noise socialNetwork
 * adds — this is the Graph500 / GAP Benchmark Suite input recipe, so
 * degree skew matches the published reference (GAP runs scale 2^20 to
 * 2^24+ with edge_factor 16). Self loops and duplicate edges from the
 * R-MAT recursion are guarded out during CSR construction (builder
 * drops loops; the min-weight copy of a duplicate survives), so the
 * edge count can land slightly under n * edge_factor.
 *
 * @param scale       log2 of the vertex count, in [2, 26]
 * @param edge_factor logical (undirected) edges per vertex (GAP: 16)
 * @param max_weight  weights uniform in [1, max_weight]
 */
Graph kronecker(unsigned scale, unsigned edge_factor, Weight max_weight,
                std::uint64_t seed);

/** Unweighted-ish (weight 1) path 0-1-2-...-(n-1). */
Graph path(VertexId n);

/** Cycle of n vertices, weight 1. */
Graph ring(VertexId n);

/** Star: vertex 0 connected to all others, weight 1. */
Graph star(VertexId n);

/** Complete graph with unit weights. */
Graph complete(VertexId n);

/** Pure w x h lattice, unit weights (deterministic, connected). */
Graph grid(VertexId width, VertexId height);

/**
 * A graph of `blocks` disjoint cliques of size `block_size`, used by
 * connected-components and community tests (ground truth is known).
 */
Graph cliqueChain(VertexId blocks, VertexId block_size,
                  bool link_blocks = false);

} // namespace crono::graph::generators

#endif // CRONO_GRAPH_GENERATORS_H_

/**
 * @file
 * Graph text I/O.
 *
 * Two formats:
 *  - Weighted edge list ("crono el"): header line `el <n> <undirected>`
 *    then one `src dst weight` triple per line. Comment lines start
 *    with '#'. This matches how the SNAP datasets the paper uses are
 *    distributed (plain edge lists), so real inputs can be dropped in.
 *  - DIMACS shortest-path format (`p sp <n> <m>` / `a u v w` lines,
 *    1-indexed), the standard distribution format for the road
 *    networks the paper evaluates.
 */

#ifndef CRONO_GRAPH_IO_H_
#define CRONO_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace crono::graph::io {

/** Write @p g as a crono edge list. */
void writeEdgeList(std::ostream& out, const Graph& g);

/** Parse a crono edge list. Throws std::runtime_error on bad input. */
Graph readEdgeList(std::istream& in);

/** Parse a DIMACS .gr shortest-path file (undirected result). */
Graph readDimacs(std::istream& in);

/** Convenience file wrappers. */
void saveEdgeList(const std::string& file_path, const Graph& g);
Graph loadEdgeList(const std::string& file_path);
Graph loadDimacs(const std::string& file_path);

} // namespace crono::graph::io

#endif // CRONO_GRAPH_IO_H_

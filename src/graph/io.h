/**
 * @file
 * Graph text I/O.
 *
 * Three formats:
 *  - Weighted edge list ("crono el"): header line `el <n> <undirected>`
 *    then one `src dst weight` triple per line. Comment lines start
 *    with '#'. This matches how the SNAP datasets the paper uses are
 *    distributed (plain edge lists), so real inputs can be dropped in.
 *  - DIMACS shortest-path format (`p sp <n> <m>` / `a u v w` lines,
 *    1-indexed), the standard distribution format for the road
 *    networks the paper evaluates.
 *  - MatrixMarket coordinate format (`%%MatrixMarket matrix
 *    coordinate <field> <symmetry>`), the distribution format of the
 *    GAP Benchmark Suite / SuiteSparse inputs.
 *
 * All readers share one buffered chunked scanner (readers pull ~1 MiB
 * blocks and tokenize in place), so loading a multi-million-edge file
 * is I/O-bound rather than istream/stoi-bound; the file wrappers
 * record wall-clock parse time on the obs kLoadMs counter.
 */

#ifndef CRONO_GRAPH_IO_H_
#define CRONO_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace crono::graph::io {

/** Write @p g as a crono edge list. */
void writeEdgeList(std::ostream& out, const Graph& g);

/** Parse a crono edge list. Throws std::runtime_error on bad input. */
Graph readEdgeList(std::istream& in);

/** Parse a DIMACS .gr shortest-path file (undirected result). */
Graph readDimacs(std::istream& in);

/**
 * Parse a MatrixMarket coordinate file. Accepted headers: object
 * `matrix`, format `coordinate`, field `real` / `integer` /
 * `pattern`, symmetry `general` / `symmetric`. The matrix must be
 * square; `symmetric` yields an undirected graph (entries mirrored),
 * `general` a directed one. Entry values become edge weights by
 * rounded magnitude with zero clamped to 1 (`pattern` entries weigh
 * 1); diagonal entries are dropped and duplicates keep the minimum
 * weight. Throws std::runtime_error on malformed input.
 */
Graph readMatrixMarket(std::istream& in);

/** Convenience file wrappers. */
void saveEdgeList(const std::string& file_path, const Graph& g);
Graph loadEdgeList(const std::string& file_path);
Graph loadDimacs(const std::string& file_path);
Graph loadMatrixMarket(const std::string& file_path);

} // namespace crono::graph::io

#endif // CRONO_GRAPH_IO_H_

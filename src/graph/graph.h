/**
 * @file
 * Immutable CSR (compressed sparse row) graph.
 *
 * This is the adjacency-list representation the CRONO paper describes
 * in Section IV-F: one structure for vertex connections (offsets +
 * neighbor ids) and another for edge weights, all cache-line aligned.
 * Graphs are immutable after construction; kernels never mutate the
 * topology, which lets many threads traverse it without coherence
 * traffic on the structure itself.
 */

#ifndef CRONO_GRAPH_GRAPH_H_
#define CRONO_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>

#include "common/aligned.h"
#include "common/macros.h"

namespace crono::graph {

class BlockedCsr;

/** Vertex identifier. Dense, in [0, numVertices). */
using VertexId = std::uint32_t;

/** Edge index into the CSR arrays. */
using EdgeId = std::uint64_t;

/** Non-negative edge weight (Dijkstra requires non-negativity). */
using Weight = std::uint32_t;

/** Path-cost type, wide enough to never overflow a summed path. */
using Dist = std::uint64_t;

/** Sentinel "unreachable" distance. */
inline constexpr Dist kInfDist = ~Dist{0};

/** Sentinel "no vertex". */
inline constexpr VertexId kNoVertex = ~VertexId{0};

/**
 * Immutable weighted graph in CSR form.
 *
 * For undirected graphs every edge appears in both endpoints'
 * adjacency ranges (the builder takes care of mirroring), so kernels
 * can treat every graph as directed adjacency.
 */
class Graph {
  public:
    /**
     * Construct from raw CSR arrays.
     *
     * @param offsets   numVertices + 1 monotone offsets into neighbors
     * @param neighbors target vertex of each edge slot
     * @param weights   weight of each edge slot (same length)
     * @param undirected true if the arrays already contain both
     *                   directions of every logical edge
     */
    Graph(AlignedVector<EdgeId> offsets, AlignedVector<VertexId> neighbors,
          AlignedVector<Weight> weights, bool undirected);

    /** Number of vertices. */
    VertexId numVertices() const { return numVertices_; }

    /** Number of directed edge slots (2x logical edges if undirected). */
    EdgeId numEdges() const { return static_cast<EdgeId>(neighbors_.size()); }

    /** Whether both directions of every edge are present. */
    bool undirected() const { return undirected_; }

    /** Out-degree of @p v. */
    EdgeId
    degree(VertexId v) const
    {
        return offsets_[v + 1] - offsets_[v];
    }

    /** Neighbor ids of @p v. */
    std::span<const VertexId>
    neighbors(VertexId v) const
    {
        return {neighbors_.data() + offsets_[v],
                static_cast<std::size_t>(degree(v))};
    }

    /** Edge weights of @p v, parallel to neighbors(v). */
    std::span<const Weight>
    weights(VertexId v) const
    {
        return {weights_.data() + offsets_[v],
                static_cast<std::size_t>(degree(v))};
    }

    /** First edge slot of @p v (for indexed edge access in kernels). */
    EdgeId firstEdge(VertexId v) const { return offsets_[v]; }

    /** Target vertex of edge slot @p e. */
    VertexId edgeTarget(EdgeId e) const { return neighbors_[e]; }

    /** Weight of edge slot @p e. */
    Weight edgeWeight(EdgeId e) const { return weights_[e]; }

    /** True if an edge v -> u exists (linear scan of v's list). */
    bool hasEdge(VertexId v, VertexId u) const;

    /** Largest out-degree over all vertices (0 for an empty graph). */
    EdgeId maxDegree() const;

    /** Raw arrays, exposed for the simulator's address instrumentation. */
    const AlignedVector<EdgeId>& rawOffsets() const { return offsets_; }
    const AlignedVector<VertexId>& rawNeighbors() const { return neighbors_; }
    const AlignedVector<Weight>& rawWeights() const { return weights_; }

    /**
     * Attach a cache-blocked pull layout (see blocked_csr.h) covering
     * the same edges. Derived data, not topology: the graph stays
     * immutable in every way kernels can observe, and rt::par's pull
     * primitives pick the layout up via blockedLayout().
     */
    void
    attachBlockedLayout(std::shared_ptr<const BlockedCsr> layout)
    {
        blocked_ = std::move(layout);
    }

    /** The attached blocked layout, or nullptr. */
    const BlockedCsr* blockedLayout() const { return blocked_.get(); }

  private:
    AlignedVector<EdgeId> offsets_;
    AlignedVector<VertexId> neighbors_;
    AlignedVector<Weight> weights_;
    std::shared_ptr<const BlockedCsr> blocked_;
    VertexId numVertices_;
    bool undirected_;
};

} // namespace crono::graph

#endif // CRONO_GRAPH_GRAPH_H_

/**
 * @file
 * Edge-list accumulator that produces CSR graphs.
 *
 * The builder collects (src, dst, weight) triples, optionally mirrors
 * them for undirected graphs, removes self-loops and duplicate edges
 * according to policy, and emits an immutable Graph.
 */

#ifndef CRONO_GRAPH_BUILDER_H_
#define CRONO_GRAPH_BUILDER_H_

#include <vector>

#include "graph/graph.h"
#include "graph/reorder.h"

namespace crono::graph {

/** One input edge for GraphBuilder. */
struct Edge {
    VertexId src;
    VertexId dst;
    Weight weight;

    friend bool operator==(const Edge&, const Edge&) = default;
};

/**
 * Accumulates edges and finalizes them into a CSR Graph.
 *
 * Typical use:
 * @code
 *   GraphBuilder b(n, true);
 *   b.addEdge(0, 1, 5);
 *   Graph g = std::move(b).build();
 * @endcode
 */
class GraphBuilder {
  public:
    /** Duplicate-edge handling for build(). */
    enum class DedupPolicy {
        keepAll,   ///< keep parallel edges as given
        keepMin,   ///< collapse parallel edges, keeping the min weight
    };

    /**
     * @param num_vertices vertex-id domain [0, num_vertices)
     * @param undirected   mirror every added edge
     */
    explicit GraphBuilder(VertexId num_vertices, bool undirected = true);

    /** Add one edge; ignores self-loops. Ids must be in range. */
    void addEdge(VertexId src, VertexId dst, Weight weight = 1);

    /** Number of edges accepted so far (pre-mirroring). */
    std::size_t pendingEdges() const { return edges_.size(); }

    /**
     * Relabel the finished graph under @p r (see reorder.h). build()
     * discards the permutation — fine for synthetic inputs whose ids
     * carry no meaning; use buildReordered() to keep it.
     */
    GraphBuilder&
    withReordering(Reordering r)
    {
        reordering_ = r;
        return *this;
    }

    /** Attach the cache-blocked pull layout to the finished graph. */
    GraphBuilder&
    withBlockedLayout(bool enabled = true)
    {
        blockedLayout_ = enabled;
        return *this;
    }

    /** Finalize into a CSR graph, consuming the builder. */
    Graph build(DedupPolicy policy = DedupPolicy::keepMin) &&;

    /**
     * Finalize like build(), but return the relabeled graph together
     * with the permutation that made it (identity for kNone), so the
     * caller can keep mapping ids and per-vertex results round-trip.
     */
    ReorderedGraph
    buildReordered(DedupPolicy policy = DedupPolicy::keepMin) &&;

  private:
    /** The CSR finalization itself, ignoring the reordering options. */
    Graph buildPlain(DedupPolicy policy) &&;

    std::vector<Edge> edges_;
    VertexId numVertices_;
    bool undirected_;
    Reordering reordering_ = Reordering::kNone;
    bool blockedLayout_ = false;
};

} // namespace crono::graph

#endif // CRONO_GRAPH_BUILDER_H_

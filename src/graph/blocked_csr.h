/**
 * @file
 * Cache-blocked (binned) edge layout for pull/gather traversal.
 *
 * A pull-direction round reads a per-vertex array at every *source*
 * id its destinations name — on a social graph that is a random walk
 * over the whole array, and the paper's §IV miss rates are the bill.
 * Propagation-blocking-style binning bounds that walk: sources are
 * split into bins of 2^bin_bits consecutive ids, and every edge is
 * stored bin-major, so one bin's gather touches a source window that
 * fits in cache before the traversal moves on to the next window.
 *
 * Within a bin, edges stay grouped by destination (ascending), so a
 * destination-partitioned gather still makes owner-exclusive writes;
 * rt::par's pull primitives iterate this layout when a graph carries
 * one (Graph::blockedLayout).
 *
 * The layout is derived data: it references the same vertex-id space
 * as its source Graph and stores its own copy of the edge arrays in
 * bin-major order.
 */

#ifndef CRONO_GRAPH_BLOCKED_CSR_H_
#define CRONO_GRAPH_BLOCKED_CSR_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace crono::graph {

/** Bin-major edge layout over a Graph's vertex-id space. */
class BlockedCsr {
  public:
    /**
     * Edges whose *source* (the neighbor id a pull reads) falls in
     * one 2^bin_bits-wide id window. `dsts` lists the destinations
     * with at least one such source, ascending; `offsets[i]` ..
     * `offsets[i+1]` delimit dsts[i]'s slots in the shared
     * neighbors()/weights() arrays.
     */
    struct Bin {
        AlignedVector<VertexId> dsts;
        AlignedVector<EdgeId> offsets;
    };

    /**
     * Build from @p g (adjacency rows must be sorted ascending — the
     * builder's and permuteGraph's invariant). Bumps
     * Counter::kBlockFills by the number of (bin, destination) list
     * entries when a telemetry sink is installed.
     */
    BlockedCsr(const Graph& g, unsigned bin_bits);

    /**
     * Bin width heuristic: a 2^12-source window keeps an 8-byte
     * per-vertex array inside a 32 KiB L1; the width grows on large
     * graphs to cap the bin count (and with it the per-bin sweep
     * overhead) at 64.
     */
    static unsigned defaultBinBits(VertexId num_vertices);

    unsigned binBits() const { return binBits_; }

    int numBins() const { return static_cast<int>(bins_.size()); }

    const Bin& bin(int b) const
    {
        return bins_[static_cast<std::size_t>(b)];
    }

    /** Bin-major neighbor (source) ids, shared across bins. */
    const AlignedVector<VertexId>& neighbors() const { return nbrs_; }

    /** Bin-major edge weights, parallel to neighbors(). */
    const AlignedVector<Weight>& weights() const { return wts_; }

    EdgeId numEdges() const
    {
        return static_cast<EdgeId>(nbrs_.size());
    }

    /** Total (bin, destination) entries — the kBlockFills quantity. */
    std::uint64_t binFills() const { return binFills_; }

  private:
    unsigned binBits_;
    std::vector<Bin> bins_;
    AlignedVector<VertexId> nbrs_;
    AlignedVector<Weight> wts_;
    std::uint64_t binFills_ = 0;
};

} // namespace crono::graph

#endif // CRONO_GRAPH_BLOCKED_CSR_H_

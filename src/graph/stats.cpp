#include "graph/stats.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

namespace crono::graph {

namespace {

/**
 * Multi-source BFS depth: the largest distance-to-nearest-seed over
 * the vertices reachable from @p seeds. Distances from a seed *set*
 * are well-defined per vertex (no tie-breaking), so the depth — and
 * the set of vertices attaining it, returned via @p at_max — depend
 * only on the graph's structure, not its labeling.
 */
std::uint64_t
multiSourceDepth(const Graph& g, const std::vector<VertexId>& seeds,
                 std::vector<VertexId>* at_max)
{
    std::vector<char> seen(g.numVertices(), 0);
    std::vector<VertexId> level(seeds);
    for (const VertexId s : seeds) {
        seen[s] = 1;
    }
    std::uint64_t depth = 0;
    std::vector<VertexId> next;
    for (;;) {
        next.clear();
        for (const VertexId u : level) {
            for (const VertexId w : g.neighbors(u)) {
                if (!seen[w]) {
                    seen[w] = 1;
                    next.push_back(w);
                }
            }
        }
        if (next.empty()) {
            break;
        }
        ++depth;
        level.swap(next);
    }
    if (at_max != nullptr) {
        *at_max = std::move(level);
    }
    return depth;
}

/** See GraphStats::pseudo_diameter for the invariance argument. */
std::uint64_t
pseudoDiameter(const Graph& g)
{
    const EdgeId max_degree = g.maxDegree();
    if (max_degree == 0) {
        return 0; // edgeless
    }
    // Sweep outward from the center-most label-free set (all vertices
    // of maximum degree): its rim is the graph's periphery.
    std::vector<VertexId> seeds;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (g.degree(v) == max_degree) {
            seeds.push_back(v);
        }
    }
    std::vector<VertexId> rim;
    const std::uint64_t d1 = multiSourceDepth(g, seeds, &rim);
    // Small rim: classic double-sweep refinement — the exact
    // eccentricity of every rim vertex. Max over the whole set (and a
    // size threshold that is itself invariant) keeps this label-free.
    constexpr std::size_t kRimCap = 32;
    if (rim.size() <= kRimCap) {
        std::uint64_t best = 0;
        for (const VertexId r : rim) {
            best = std::max(best, multiSourceDepth(g, {r}, nullptr));
        }
        return best;
    }
    return d1 + multiSourceDepth(g, rim, nullptr);
}

} // namespace

GraphStats
computeStats(const Graph& g)
{
    GraphStats s;
    s.num_vertices = g.numVertices();
    s.num_edge_slots = g.numEdges();
    if (s.num_vertices == 0) {
        return s;
    }
    s.avg_degree = static_cast<double>(s.num_edge_slots) / s.num_vertices;
    s.max_degree = g.maxDegree();

    std::vector<EdgeId> degrees(s.num_vertices);
    for (VertexId v = 0; v < s.num_vertices; ++v) {
        degrees[v] = g.degree(v);
        if (degrees[v] == 0) {
            ++s.isolated_vertices;
        }
    }

    // Gini coefficient over sorted degrees.
    std::sort(degrees.begin(), degrees.end());
    const double total = static_cast<double>(
        std::accumulate(degrees.begin(), degrees.end(), EdgeId{0}));
    if (total > 0) {
        double weighted = 0.0;
        for (std::size_t i = 0; i < degrees.size(); ++i) {
            weighted += static_cast<double>(i + 1) *
                        static_cast<double>(degrees[i]);
        }
        const double n = static_cast<double>(degrees.size());
        s.degree_gini = (2.0 * weighted) / (n * total) - (n + 1.0) / n;
    }

    // Connected components by iterative BFS flood fill.
    std::vector<char> seen(s.num_vertices, 0);
    std::vector<VertexId> stack;
    for (VertexId v = 0; v < s.num_vertices; ++v) {
        if (seen[v]) {
            continue;
        }
        ++s.num_components;
        VertexId size = 0;
        stack.push_back(v);
        seen[v] = 1;
        while (!stack.empty()) {
            VertexId u = stack.back();
            stack.pop_back();
            ++size;
            for (VertexId w : g.neighbors(u)) {
                if (!seen[w]) {
                    seen[w] = 1;
                    stack.push_back(w);
                }
            }
        }
        s.largest_component = std::max(s.largest_component, size);
    }
    s.pseudo_diameter = pseudoDiameter(g);
    return s;
}

std::vector<EdgeId>
degreeHistogram(const Graph& g)
{
    std::vector<EdgeId> hist(static_cast<std::size_t>(g.maxDegree()) + 1, 0);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        ++hist[g.degree(v)];
    }
    return hist;
}

double
clusteringCoefficient(const Graph& g)
{
    std::uint64_t triangles3 = 0; // each triangle counted 3x
    std::uint64_t wedges = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        const EdgeId d = g.degree(v);
        if (d >= 2) {
            wedges += d * (d - 1) / 2;
        }
        auto ns = g.neighbors(v);
        for (std::size_t i = 0; i < ns.size(); ++i) {
            for (std::size_t j = i + 1; j < ns.size(); ++j) {
                // Adjacency lists are sorted: binary containment test.
                auto cand = g.neighbors(ns[i]);
                if (std::binary_search(cand.begin(), cand.end(),
                                       ns[j])) {
                    ++triangles3;
                }
            }
        }
    }
    return wedges == 0 ? 0.0
                       : static_cast<double>(triangles3) /
                             static_cast<double>(wedges);
}

std::string
formatStats(const std::string& name, const GraphStats& s)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%-16s V=%-9u E=%-10llu avg_deg=%-6.2f max_deg=%-7llu "
                  "comps=%-6u gini=%.2f diam~%llu",
                  name.c_str(), s.num_vertices,
                  static_cast<unsigned long long>(s.num_edge_slots),
                  s.avg_degree,
                  static_cast<unsigned long long>(s.max_degree),
                  s.num_components, s.degree_gini,
                  static_cast<unsigned long long>(s.pseudo_diameter));
    return buf;
}

} // namespace crono::graph

#include "graph/builder.h"

#include <algorithm>
// crono-lint: allow(raw-include): host-side CSR construction helpers only
#include <thread>
#include <utility>

namespace crono::graph {

namespace {

/**
 * Edge count above which finalization switches from one global
 * std::sort to the counting-sort path with parallel per-vertex
 * segment sorts. Below it the fork/join overhead is not worth it.
 */
constexpr std::size_t kParallelBuildThreshold = std::size_t{1} << 21;

/** Run fn(t) on nthreads host helper threads and join. */
template <class Fn>
void
hostParallelFor(unsigned nthreads, Fn&& fn)
{
    if (nthreads <= 1) {
        fn(0u);
        return;
    }
    // Graph finalization happens before any kernel region opens, so
    // there is no Ctx to route this fork/join through.
    // crono-lint: allow(raw-sync): host-side construction fork/join
    std::vector<std::thread> workers;
    workers.reserve(nthreads);
    for (unsigned t = 0; t < nthreads; ++t) {
        workers.emplace_back([&fn, t] { fn(t); });
    }
    for (auto& w : workers) {
        w.join();
    }
}

/** Helper-thread count for host-side construction. */
unsigned
hostThreads()
{
    // crono-lint: allow(raw-sync): hardware query, not synchronization.
    const unsigned hw = std::thread::hardware_concurrency();
    return std::max(1u, std::min(hw, 16u));
}

/**
 * Counting-sort CSR finalization for multi-million-edge inputs,
 * bit-identical to the global-sort path: a degree histogram and a
 * stable scatter replace the O(E log E) whole-array sort, and the
 * per-vertex segment sorts (the remaining log factor) run on host
 * helper threads over edge-balanced vertex ranges. keepMin then
 * compacts each segment exactly like sort-then-unique would.
 */
Graph
buildCsrLarge(VertexId num_vertices, bool undirected,
              GraphBuilder::DedupPolicy policy, std::vector<Edge>&& all)
{
    AlignedVector<EdgeId> offsets(num_vertices + 1, 0);
    for (const Edge& e : all) {
        ++offsets[e.src + 1];
    }
    for (VertexId v = 0; v < num_vertices; ++v) {
        offsets[v + 1] += offsets[v];
    }

    AlignedVector<VertexId> neighbors(all.size());
    AlignedVector<Weight> weights(all.size());
    {
        AlignedVector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
        for (const Edge& e : all) {
            const EdgeId slot = cursor[e.src]++;
            neighbors[slot] = e.dst;
            weights[slot] = e.weight;
        }
    }
    all.clear();
    all.shrink_to_fit();

    const unsigned nthreads = hostThreads();
    const EdgeId total = offsets[num_vertices];
    AlignedVector<EdgeId> kept(num_vertices, 0);
    hostParallelFor(nthreads, [&](unsigned t) {
        const EdgeId lo_e = total * t / nthreads;
        const EdgeId hi_e = total * (t + 1) / nthreads;
        // First vertex whose segment starts at or after lo_e; a
        // vertex belongs to the thread owning its segment start, so
        // shared boundaries are claimed exactly once.
        VertexId v = static_cast<VertexId>(
            std::lower_bound(offsets.begin(),
                             offsets.begin() + num_vertices, lo_e) -
            offsets.begin());
        std::vector<std::pair<VertexId, Weight>> seg;
        for (; v < num_vertices && offsets[v] < hi_e; ++v) {
            const EdgeId begin = offsets[v];
            const EdgeId end = offsets[v + 1];
            seg.clear();
            for (EdgeId e = begin; e < end; ++e) {
                seg.emplace_back(neighbors[e], weights[e]);
            }
            std::sort(seg.begin(), seg.end());
            if (policy == GraphBuilder::DedupPolicy::keepMin) {
                // Min-weight copy of each dst comes first after the
                // (dst, weight) sort; keep exactly that copy.
                seg.erase(std::unique(seg.begin(), seg.end(),
                                      [](const auto& a, const auto& b) {
                                          return a.first == b.first;
                                      }),
                          seg.end());
            }
            kept[v] = static_cast<EdgeId>(seg.size());
            for (std::size_t i = 0; i < seg.size(); ++i) {
                neighbors[begin + i] = seg[i].first;
                weights[begin + i] = seg[i].second;
            }
        }
    });

    if (policy == GraphBuilder::DedupPolicy::keepAll) {
        return Graph(std::move(offsets), std::move(neighbors),
                     std::move(weights), undirected);
    }
    AlignedVector<EdgeId> final_offsets(num_vertices + 1, 0);
    for (VertexId v = 0; v < num_vertices; ++v) {
        final_offsets[v + 1] = final_offsets[v] + kept[v];
    }
    AlignedVector<VertexId> final_neighbors(final_offsets[num_vertices]);
    AlignedVector<Weight> final_weights(final_offsets[num_vertices]);
    hostParallelFor(nthreads, [&](unsigned t) {
        const EdgeId lo_e = total * t / nthreads;
        const EdgeId hi_e = total * (t + 1) / nthreads;
        VertexId v = static_cast<VertexId>(
            std::lower_bound(offsets.begin(),
                             offsets.begin() + num_vertices, lo_e) -
            offsets.begin());
        for (; v < num_vertices && offsets[v] < hi_e; ++v) {
            std::copy_n(neighbors.begin() + offsets[v], kept[v],
                        final_neighbors.begin() + final_offsets[v]);
            std::copy_n(weights.begin() + offsets[v], kept[v],
                        final_weights.begin() + final_offsets[v]);
        }
    });
    return Graph(std::move(final_offsets), std::move(final_neighbors),
                 std::move(final_weights), undirected);
}

} // namespace

GraphBuilder::GraphBuilder(VertexId num_vertices, bool undirected)
    : numVertices_(num_vertices), undirected_(undirected)
{
}

void
GraphBuilder::addEdge(VertexId src, VertexId dst, Weight weight)
{
    CRONO_ASSERT(src < numVertices_ && dst < numVertices_,
                 "edge endpoint out of range");
    if (src == dst) {
        return;
    }
    edges_.push_back({src, dst, weight});
}

Graph
GraphBuilder::build(DedupPolicy policy) &&
{
    if (reordering_ != Reordering::kNone || blockedLayout_) {
        return std::move(*this).buildReordered(policy).graph;
    }
    return std::move(*this).buildPlain(policy);
}

ReorderedGraph
GraphBuilder::buildReordered(DedupPolicy policy) &&
{
    const Reordering r = reordering_;
    const bool blocked = blockedLayout_;
    Graph plain = std::move(*this).buildPlain(policy);
    return reorderGraph(plain, r, blocked);
}

Graph
GraphBuilder::buildPlain(DedupPolicy policy) &&
{
    std::vector<Edge> all = std::move(edges_);
    if (undirected_) {
        const std::size_t n = all.size();
        all.reserve(2 * n);
        for (std::size_t i = 0; i < n; ++i) {
            all.push_back({all[i].dst, all[i].src, all[i].weight});
        }
    }
    if (all.size() >= kParallelBuildThreshold) {
        return buildCsrLarge(numVertices_, undirected_, policy,
                             std::move(all));
    }

    auto key_less = [](const Edge& a, const Edge& b) {
        return std::pair(a.src, a.dst) < std::pair(b.src, b.dst);
    };
    auto weight_then_key = [&](const Edge& a, const Edge& b) {
        if (std::pair(a.src, a.dst) != std::pair(b.src, b.dst)) {
            return key_less(a, b);
        }
        return a.weight < b.weight;
    };
    std::sort(all.begin(), all.end(), weight_then_key);
    if (policy == DedupPolicy::keepMin) {
        // After the sort the min-weight copy of each (src, dst) comes
        // first, so unique() keeps exactly that copy.
        auto same_key = [](const Edge& a, const Edge& b) {
            return a.src == b.src && a.dst == b.dst;
        };
        all.erase(std::unique(all.begin(), all.end(), same_key), all.end());
    }

    AlignedVector<EdgeId> offsets(numVertices_ + 1, 0);
    for (const Edge& e : all) {
        ++offsets[e.src + 1];
    }
    for (VertexId v = 0; v < numVertices_; ++v) {
        offsets[v + 1] += offsets[v];
    }

    AlignedVector<VertexId> neighbors(all.size());
    AlignedVector<Weight> weights(all.size());
    AlignedVector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
    for (const Edge& e : all) {
        EdgeId slot = cursor[e.src]++;
        neighbors[slot] = e.dst;
        weights[slot] = e.weight;
    }

    return Graph(std::move(offsets), std::move(neighbors),
                 std::move(weights), undirected_);
}

} // namespace crono::graph

#include "graph/builder.h"

#include <algorithm>
#include <utility>

namespace crono::graph {

GraphBuilder::GraphBuilder(VertexId num_vertices, bool undirected)
    : numVertices_(num_vertices), undirected_(undirected)
{
}

void
GraphBuilder::addEdge(VertexId src, VertexId dst, Weight weight)
{
    CRONO_ASSERT(src < numVertices_ && dst < numVertices_,
                 "edge endpoint out of range");
    if (src == dst) {
        return;
    }
    edges_.push_back({src, dst, weight});
}

Graph
GraphBuilder::build(DedupPolicy policy) &&
{
    if (reordering_ != Reordering::kNone || blockedLayout_) {
        return std::move(*this).buildReordered(policy).graph;
    }
    return std::move(*this).buildPlain(policy);
}

ReorderedGraph
GraphBuilder::buildReordered(DedupPolicy policy) &&
{
    const Reordering r = reordering_;
    const bool blocked = blockedLayout_;
    Graph plain = std::move(*this).buildPlain(policy);
    return reorderGraph(plain, r, blocked);
}

Graph
GraphBuilder::buildPlain(DedupPolicy policy) &&
{
    std::vector<Edge> all = std::move(edges_);
    if (undirected_) {
        const std::size_t n = all.size();
        all.reserve(2 * n);
        for (std::size_t i = 0; i < n; ++i) {
            all.push_back({all[i].dst, all[i].src, all[i].weight});
        }
    }

    auto key_less = [](const Edge& a, const Edge& b) {
        return std::pair(a.src, a.dst) < std::pair(b.src, b.dst);
    };
    auto weight_then_key = [&](const Edge& a, const Edge& b) {
        if (std::pair(a.src, a.dst) != std::pair(b.src, b.dst)) {
            return key_less(a, b);
        }
        return a.weight < b.weight;
    };
    std::sort(all.begin(), all.end(), weight_then_key);
    if (policy == DedupPolicy::keepMin) {
        // After the sort the min-weight copy of each (src, dst) comes
        // first, so unique() keeps exactly that copy.
        auto same_key = [](const Edge& a, const Edge& b) {
            return a.src == b.src && a.dst == b.dst;
        };
        all.erase(std::unique(all.begin(), all.end(), same_key), all.end());
    }

    AlignedVector<EdgeId> offsets(numVertices_ + 1, 0);
    for (const Edge& e : all) {
        ++offsets[e.src + 1];
    }
    for (VertexId v = 0; v < numVertices_; ++v) {
        offsets[v + 1] += offsets[v];
    }

    AlignedVector<VertexId> neighbors(all.size());
    AlignedVector<Weight> weights(all.size());
    AlignedVector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
    for (const Edge& e : all) {
        EdgeId slot = cursor[e.src]++;
        neighbors[slot] = e.dst;
        weights[slot] = e.weight;
    }

    return Graph(std::move(offsets), std::move(neighbors),
                 std::move(weights), undirected_);
}

} // namespace crono::graph

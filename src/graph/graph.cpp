#include "graph/graph.h"

#include <algorithm>

namespace crono::graph {

Graph::Graph(AlignedVector<EdgeId> offsets, AlignedVector<VertexId> neighbors,
             AlignedVector<Weight> weights, bool undirected)
    : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)),
      weights_(std::move(weights)),
      numVertices_(offsets_.empty()
                       ? 0
                       : static_cast<VertexId>(offsets_.size() - 1)),
      undirected_(undirected)
{
    CRONO_ASSERT(!offsets_.empty(), "CSR offsets must have >= 1 entry");
    CRONO_ASSERT(offsets_.front() == 0, "CSR offsets must start at 0");
    CRONO_ASSERT(offsets_.back() == neighbors_.size(),
                 "CSR offsets must end at edge count");
    CRONO_ASSERT(weights_.size() == neighbors_.size(),
                 "weights and neighbors must be parallel arrays");
    CRONO_ASSERT(std::is_sorted(offsets_.begin(), offsets_.end()),
                 "CSR offsets must be monotone");
    for (VertexId t : neighbors_) {
        CRONO_ASSERT(t < numVertices_, "neighbor id out of range");
    }
}

bool
Graph::hasEdge(VertexId v, VertexId u) const
{
    CRONO_ASSERT(v < numVertices_ && u < numVertices_,
                 "hasEdge vertex out of range");
    auto ns = neighbors(v);
    return std::find(ns.begin(), ns.end(), u) != ns.end();
}

EdgeId
Graph::maxDegree() const
{
    EdgeId best = 0;
    for (VertexId v = 0; v < numVertices_; ++v) {
        best = std::max(best, degree(v));
    }
    return best;
}

} // namespace crono::graph

#include "graph/generators.h"

#include <cmath>
#include <cstdlib>

#include "common/rng.h"
#include "graph/builder.h"

namespace crono::graph::generators {

Graph
uniformRandom(VertexId n, EdgeId m, Weight max_weight, std::uint64_t seed)
{
    CRONO_REQUIRE(n >= 2, "uniformRandom needs >= 2 vertices");
    CRONO_REQUIRE(max_weight >= 1, "max_weight must be >= 1");
    Rng rng(seed);
    GraphBuilder b(n, /*undirected=*/true);
    for (EdgeId i = 0; i < m; ++i) {
        auto src = static_cast<VertexId>(rng.nextBelow(n));
        auto dst = static_cast<VertexId>(rng.nextBelow(n));
        auto w = static_cast<Weight>(rng.nextInRange(1, max_weight));
        b.addEdge(src, dst, w);
    }
    return std::move(b).build();
}

Graph
roadNetwork(VertexId width, VertexId height, std::uint64_t seed)
{
    CRONO_REQUIRE(width >= 2 && height >= 2, "road grid must be >= 2x2");
    Rng rng(seed);
    const VertexId n = width * height;
    GraphBuilder b(n, /*undirected=*/true);
    auto id = [width](VertexId x, VertexId y) { return y * width + x; };

    // Lattice edges with distance-like weights; delete ~20% of them to
    // break the regularity (real road grids have missing segments),
    // which brings the average degree down toward SNAP's ~2.6.
    for (VertexId y = 0; y < height; ++y) {
        for (VertexId x = 0; x < width; ++x) {
            auto w = [&] {
                return static_cast<Weight>(rng.nextInRange(1, 100));
            };
            if (x + 1 < width && rng.nextDouble() >= 0.20) {
                b.addEdge(id(x, y), id(x + 1, y), w());
            }
            if (y + 1 < height && rng.nextDouble() >= 0.20) {
                b.addEdge(id(x, y), id(x, y + 1), w());
            }
        }
    }

    // Sparse long-range "highways": one per ~256 vertices.
    const EdgeId highways = n / 256 + 1;
    for (EdgeId i = 0; i < highways; ++i) {
        auto a = static_cast<VertexId>(rng.nextBelow(n));
        auto c = static_cast<VertexId>(rng.nextBelow(n));
        b.addEdge(a, c, static_cast<Weight>(rng.nextInRange(50, 400)));
    }
    return std::move(b).build();
}

Graph
socialNetwork(unsigned scale, unsigned edge_factor, std::uint64_t seed)
{
    CRONO_REQUIRE(scale >= 2 && scale <= 28, "socialNetwork scale in [2,28]");
    Rng rng(seed);
    const VertexId n = VertexId{1} << scale;
    const EdgeId m = static_cast<EdgeId>(n) * edge_factor;
    // Standard R-MAT recursion with mild parameter noise per level so
    // the degree distribution is smooth rather than strictly fractal.
    constexpr double a = 0.57, bq = 0.19, cq = 0.19;
    GraphBuilder b(n, /*undirected=*/true);
    for (EdgeId i = 0; i < m; ++i) {
        VertexId src = 0, dst = 0;
        for (unsigned level = 0; level < scale; ++level) {
            const double noise = 0.9 + 0.2 * rng.nextDouble();
            const double p = rng.nextDouble();
            const double aa = a * noise;
            const double ab = aa + bq;
            const double ac = ab + cq;
            VertexId bit = VertexId{1} << (scale - 1 - level);
            if (p < aa) {
                // top-left quadrant: no bits set
            } else if (p < ab) {
                dst |= bit;
            } else if (p < ac) {
                src |= bit;
            } else {
                src |= bit;
                dst |= bit;
            }
        }
        b.addEdge(src, dst, static_cast<Weight>(rng.nextInRange(1, 64)));
    }
    return std::move(b).build();
}

Graph
kronecker(unsigned scale, unsigned edge_factor, Weight max_weight,
          std::uint64_t seed)
{
    CRONO_REQUIRE(scale >= 2 && scale <= 26, "kronecker scale in [2,26]");
    CRONO_REQUIRE(edge_factor >= 1, "kronecker edge_factor >= 1");
    CRONO_REQUIRE(max_weight >= 1, "kronecker max_weight >= 1");
    Rng rng(seed);
    const VertexId n = VertexId{1} << scale;
    const EdgeId m = static_cast<EdgeId>(n) * edge_factor;
    // GAP / Graph500 R-MAT: fixed quadrant probabilities, no noise.
    constexpr double a = 0.57, bq = 0.19, cq = 0.19;
    GraphBuilder b(n, /*undirected=*/true);
    for (EdgeId i = 0; i < m; ++i) {
        VertexId src = 0, dst = 0;
        for (unsigned level = 0; level < scale; ++level) {
            const double p = rng.nextDouble();
            const VertexId bit = VertexId{1} << (scale - 1 - level);
            if (p < a) {
                // top-left quadrant: no bits set
            } else if (p < a + bq) {
                dst |= bit;
            } else if (p < a + bq + cq) {
                src |= bit;
            } else {
                src |= bit;
                dst |= bit;
            }
        }
        b.addEdge(src, dst,
                  static_cast<Weight>(rng.nextInRange(1, max_weight)));
    }
    // keepMin: the R-MAT recursion lands many edges on the same hub
    // pair; deduplicating keeps the CSR a simple graph (the guard the
    // generator contract promises).
    return std::move(b).build(GraphBuilder::DedupPolicy::keepMin);
}

AdjacencyMatrix
tspCities(VertexId n, std::uint64_t seed)
{
    CRONO_REQUIRE(n >= 2, "tspCities needs >= 2 cities");
    Rng rng(seed);
    std::vector<std::pair<double, double>> pts;
    pts.reserve(n);
    for (VertexId i = 0; i < n; ++i) {
        pts.emplace_back(rng.nextDouble() * 1000.0,
                         rng.nextDouble() * 1000.0);
    }
    AdjacencyMatrix m(n);
    for (VertexId i = 0; i < n; ++i) {
        m.set(i, i, 0);
        for (VertexId j = i + 1; j < n; ++j) {
            const double dx = pts[i].first - pts[j].first;
            const double dy = pts[i].second - pts[j].second;
            auto d = static_cast<Weight>(std::lround(
                         std::sqrt(dx * dx + dy * dy))) + 1;
            m.set(i, j, d);
            m.set(j, i, d);
        }
    }
    return m;
}

LabeledMatrix
labeledGraph(VertexId n, EdgeId edges, std::uint32_t num_labels,
             std::uint64_t seed)
{
    CRONO_REQUIRE(n >= 1, "labeledGraph needs >= 1 vertex");
    CRONO_REQUIRE(num_labels >= 1, "labeledGraph needs >= 1 label");
    Rng rng(seed);
    LabeledMatrix g(n);
    for (VertexId v = 0; v < n; ++v) {
        g.labels[v] =
            static_cast<std::uint32_t>(rng.nextBelow(num_labels));
    }
    for (EdgeId i = 0; i < edges; ++i) {
        auto a = static_cast<VertexId>(rng.nextBelow(n));
        auto b = static_cast<VertexId>(rng.nextBelow(n));
        if (a == b) {
            continue; // self loop: drop
        }
        g.adj.set(a, b, 1);
        g.adj.set(b, a, 1);
    }
    return g;
}

Graph
path(VertexId n)
{
    GraphBuilder b(n, true);
    for (VertexId v = 0; v + 1 < n; ++v) {
        b.addEdge(v, v + 1, 1);
    }
    return std::move(b).build();
}

Graph
ring(VertexId n)
{
    CRONO_REQUIRE(n >= 3, "ring needs >= 3 vertices");
    GraphBuilder b(n, true);
    for (VertexId v = 0; v < n; ++v) {
        b.addEdge(v, (v + 1) % n, 1);
    }
    return std::move(b).build();
}

Graph
star(VertexId n)
{
    CRONO_REQUIRE(n >= 2, "star needs >= 2 vertices");
    GraphBuilder b(n, true);
    for (VertexId v = 1; v < n; ++v) {
        b.addEdge(0, v, 1);
    }
    return std::move(b).build();
}

Graph
complete(VertexId n)
{
    GraphBuilder b(n, true);
    for (VertexId i = 0; i < n; ++i) {
        for (VertexId j = i + 1; j < n; ++j) {
            b.addEdge(i, j, 1);
        }
    }
    return std::move(b).build();
}

Graph
grid(VertexId width, VertexId height)
{
    GraphBuilder b(width * height, true);
    auto id = [width](VertexId x, VertexId y) { return y * width + x; };
    for (VertexId y = 0; y < height; ++y) {
        for (VertexId x = 0; x < width; ++x) {
            if (x + 1 < width) {
                b.addEdge(id(x, y), id(x + 1, y), 1);
            }
            if (y + 1 < height) {
                b.addEdge(id(x, y), id(x, y + 1), 1);
            }
        }
    }
    return std::move(b).build();
}

Graph
cliqueChain(VertexId blocks, VertexId block_size, bool link_blocks)
{
    CRONO_REQUIRE(blocks >= 1 && block_size >= 1, "empty cliqueChain");
    const VertexId n = blocks * block_size;
    GraphBuilder b(n, true);
    for (VertexId k = 0; k < blocks; ++k) {
        const VertexId base = k * block_size;
        for (VertexId i = 0; i < block_size; ++i) {
            for (VertexId j = i + 1; j < block_size; ++j) {
                b.addEdge(base + i, base + j, 1);
            }
        }
        if (link_blocks && k + 1 < blocks) {
            b.addEdge(base, base + block_size, 1);
        }
    }
    return std::move(b).build();
}

} // namespace crono::graph::generators

/**
 * @file
 * Structural graph statistics, used by the Table III catalog printout
 * and by tests validating the generators' degree structure.
 */

#ifndef CRONO_GRAPH_STATS_H_
#define CRONO_GRAPH_STATS_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace crono::graph {

/** Summary statistics of one graph. */
struct GraphStats {
    VertexId num_vertices = 0;
    EdgeId num_edge_slots = 0;    ///< directed slots (2x undirected edges)
    double avg_degree = 0.0;
    EdgeId max_degree = 0;
    VertexId isolated_vertices = 0;
    VertexId num_components = 0;
    VertexId largest_component = 0;
    /** Gini coefficient of the degree distribution (0 = regular). */
    double degree_gini = 0.0;
};

/** Compute all summary statistics (O(V + E) plus a sort). */
GraphStats computeStats(const Graph& g);

/** Histogram of degrees: index d holds #vertices of degree d. */
std::vector<EdgeId> degreeHistogram(const Graph& g);

/** One-line human-readable rendering of stats. */
std::string formatStats(const std::string& name, const GraphStats& s);

/**
 * Global clustering coefficient: 3 x triangles / open-or-closed
 * wedges (0 if the graph has no wedge). Exact; O(sum degree^2 log).
 */
double clusteringCoefficient(const Graph& g);

} // namespace crono::graph

#endif // CRONO_GRAPH_STATS_H_

/**
 * @file
 * Structural graph statistics, used by the Table III catalog printout
 * and by tests validating the generators' degree structure.
 */

#ifndef CRONO_GRAPH_STATS_H_
#define CRONO_GRAPH_STATS_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace crono::graph {

/** Summary statistics of one graph. */
struct GraphStats {
    VertexId num_vertices = 0;
    EdgeId num_edge_slots = 0;    ///< directed slots (2x undirected edges)
    double avg_degree = 0.0;
    EdgeId max_degree = 0;
    VertexId isolated_vertices = 0;
    VertexId num_components = 0;
    VertexId largest_component = 0;
    /** Gini coefficient of the degree distribution (0 = regular). */
    double degree_gini = 0.0;
    /**
     * Pseudo-diameter estimate by multi-source double-sweep BFS: a
     * sweep out of the max-degree vertex set finds the peripheral rim,
     * whose exact eccentricities (small rim) or depth-sum estimate
     * (large rim) give the diameter bound. Every ingredient — the seed
     * set, the rim, the size threshold, the max over the rim — is
     * defined by label-free properties, so the estimate is invariant
     * under relabeling; an estimator seeded from "vertex 0" or "first
     * max-degree vertex" would not be. 0 for an edgeless graph.
     */
    std::uint64_t pseudo_diameter = 0;
};

/** Compute all summary statistics (O(V + E) plus a sort). */
GraphStats computeStats(const Graph& g);

/** Histogram of degrees: index d holds #vertices of degree d. */
std::vector<EdgeId> degreeHistogram(const Graph& g);

/** One-line human-readable rendering of stats. */
std::string formatStats(const std::string& name, const GraphStats& s);

/**
 * Global clustering coefficient: 3 x triangles / open-or-closed
 * wedges (0 if the graph has no wedge). Exact; O(sum degree^2 log).
 */
double clusteringCoefficient(const Graph& g);

} // namespace crono::graph

#endif // CRONO_GRAPH_STATS_H_

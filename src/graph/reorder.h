/**
 * @file
 * Cache-aware vertex reordering.
 *
 * CRONO's kernels are dominated by cache-hostile irregular access to
 * per-vertex arrays (paper §IV: L1/L2 miss rates, locality-sensitive
 * NoC behaviour); which vertex *ids* neighbors carry decides which
 * cache lines a traversal touches. This module relabels a graph under
 * one of several standard orderings and hands back a
 * VertexPermutation so callers can keep reasoning in original ids:
 *
 *  - kDegreeSort: descending-degree relabeling. Hot (high-degree)
 *    vertices share the first cache lines of every per-vertex array.
 *  - kHubCluster: hubs (degree > average) packed first in descending
 *    degree order, everyone else keeping their relative order — the
 *    degree-sort locality win without destroying whatever locality
 *    the original ordering had among cold vertices.
 *  - kBfs: BFS visit order from the highest-degree vertex. Neighbors
 *    get nearby ids, so frontier expansion walks nearby lines.
 *  - kRcm: reverse Cuthill-McKee — BFS from a low-degree peripheral
 *    vertex with degree-sorted tie-breaking, reversed; the classic
 *    bandwidth-reducing ordering for road/mesh-like graphs.
 *
 * Every ordering is deterministic (ties broken by original id), so a
 * reordered run is exactly reproducible.
 */

#ifndef CRONO_GRAPH_REORDER_H_
#define CRONO_GRAPH_REORDER_H_

#include <memory>
#include <span>

#include "graph/adjacency_matrix.h"
#include "graph/graph.h"

namespace crono::graph {

/** Vertex relabeling strategy. */
enum class Reordering : int {
    kNone = 0,    ///< identity (the generator's ordering)
    kDegreeSort,  ///< descending degree
    kHubCluster,  ///< hubs first, cold vertices keep relative order
    kBfs,         ///< BFS visit order from the max-degree vertex
    kRcm,         ///< reverse Cuthill-McKee (bandwidth reduction)
};

/** Number of orderings (for sweeps). */
inline constexpr int kNumReorderings = 5;

/** Printable name, e.g. "degree". */
const char* reorderingName(Reordering r);

/** All orderings, kNone first (for sweeps). */
std::span<const Reordering> allReorderings();

/**
 * Bijection between an original ("old") and a relabeled ("new")
 * vertex-id space, with the round-trip helpers the kernels' callers
 * need: map the source vertex in, map per-vertex results back out.
 */
class VertexPermutation {
  public:
    VertexPermutation() = default;

    /** Build from the new-id-indexed old-id array (validated). */
    explicit VertexPermutation(AlignedVector<VertexId> new_to_old);

    /** The identity permutation over @p n vertices. */
    static VertexPermutation identity(VertexId n);

    VertexId size() const
    {
        return static_cast<VertexId>(newToOld_.size());
    }

    /** New id of original vertex @p v. */
    VertexId toNew(VertexId v) const { return oldToNew_[v]; }

    /** Original id of relabeled vertex @p v. */
    VertexId toOld(VertexId v) const { return newToOld_[v]; }

    /** True if this permutation maps every id to itself. */
    bool isIdentity() const;

    /** The permutation undoing this one. */
    VertexPermutation inverse() const;

    /**
     * The permutation equivalent to applying this one, then @p then
     * (both old->new compositions chain left to right).
     */
    VertexPermutation composedWith(const VertexPermutation& then) const;

    /**
     * Reindex per-vertex values produced in the relabeled space
     * (distances, levels, ranks, per-vertex counts) back to original
     * ids: out[old] = by_new[toNew(old)].
     */
    template <class T>
    AlignedVector<T>
    valuesToOld(std::span<const T> by_new) const
    {
        AlignedVector<T> out(by_new.size());
        for (std::size_t v = 0; v < by_new.size(); ++v) {
            out[newToOld_[v]] = by_new[v];
        }
        return out;
    }

    /** Reindex per-vertex values into the relabeled space. */
    template <class T>
    AlignedVector<T>
    valuesToNew(std::span<const T> by_old) const
    {
        AlignedVector<T> out(by_old.size());
        for (std::size_t v = 0; v < by_old.size(); ++v) {
            out[oldToNew_[v]] = by_old[v];
        }
        return out;
    }

    /**
     * Remap a vertex-valued per-vertex array (parent trees, component
     * labels) fully back to original ids: both the index and the
     * stored vertex id are mapped, and @p sentinel values (kNoVertex)
     * pass through untouched.
     */
    AlignedVector<VertexId>
    vertexValuesToOld(std::span<const VertexId> by_new,
                      VertexId sentinel = kNoVertex) const;

    const AlignedVector<VertexId>& oldToNew() const { return oldToNew_; }
    const AlignedVector<VertexId>& newToOld() const { return newToOld_; }

  private:
    AlignedVector<VertexId> oldToNew_;
    AlignedVector<VertexId> newToOld_;
};

/**
 * Compute the @p r ordering of @p g without materializing the
 * relabeled graph. Deterministic; kNone yields the identity.
 */
VertexPermutation computeOrdering(const Graph& g, Reordering r);

/**
 * Materialize the relabeled graph: vertex v of the result is original
 * vertex perm.toOld(v), with neighbor ids mapped and each adjacency
 * row re-sorted ascending (the builder's invariant, which triangle
 * counting's binary searches rely on).
 */
Graph permuteGraph(const Graph& g, const VertexPermutation& perm);

/** Relabel a dense matrix: out(a', b') = m(toOld(a'), toOld(b')). */
AdjacencyMatrix permuteMatrix(const AdjacencyMatrix& m,
                              const VertexPermutation& perm);

/** A relabeled graph together with the permutation that made it. */
struct ReorderedGraph {
    Graph graph;
    VertexPermutation perm;
};

/**
 * One-call reordering front end: compute the @p r ordering, relabel,
 * and (optionally) attach a cache-blocked pull layout (see
 * blocked_csr.h). Records the elapsed time on the host telemetry
 * track (Counter::kReorderMs) when a sink is installed. @p blocked
 * also works with r == kNone (layout without relabeling).
 */
ReorderedGraph reorderGraph(const Graph& g, Reordering r,
                            bool blocked = false);

/**
 * Adjacency bandwidth max_{(u,v) in E} |u - v| — the quantity RCM
 * exists to shrink; 0 for an edgeless graph.
 */
std::uint64_t adjacencyBandwidth(const Graph& g);

} // namespace crono::graph

#endif // CRONO_GRAPH_REORDER_H_

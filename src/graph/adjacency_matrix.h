/**
 * @file
 * Dense adjacency-matrix representation.
 *
 * The paper's APSP and BETW_CENT benchmarks use an adjacency matrix
 * (Section IV-F) because every thread repeatedly scans full rows; the
 * matrix is cache-line aligned and row-major so one row is a
 * contiguous streaming access.
 */

#ifndef CRONO_GRAPH_ADJACENCY_MATRIX_H_
#define CRONO_GRAPH_ADJACENCY_MATRIX_H_

#include <span>

#include "graph/graph.h"

namespace crono::graph {

/**
 * Row-major V x V matrix of edge weights; kInfWeight marks "no edge".
 */
class AdjacencyMatrix {
  public:
    /** Sentinel for absent edges. */
    static constexpr Weight kInfWeight = ~Weight{0};

    /** All-disconnected matrix of @p n vertices. */
    explicit AdjacencyMatrix(VertexId n);

    /** Densify a CSR graph (parallel edges collapse to min weight). */
    explicit AdjacencyMatrix(const Graph& g);

    VertexId numVertices() const { return n_; }

    /** Weight of edge v -> u, or kInfWeight. */
    Weight
    at(VertexId v, VertexId u) const
    {
        return cells_[static_cast<std::size_t>(v) * n_ + u];
    }

    /** Set weight of edge v -> u. */
    void
    set(VertexId v, VertexId u, Weight w)
    {
        cells_[static_cast<std::size_t>(v) * n_ + u] = w;
    }

    /** Full row of @p v, for streaming scans. */
    std::span<const Weight>
    row(VertexId v) const
    {
        return {cells_.data() + static_cast<std::size_t>(v) * n_, n_};
    }

  private:
    AlignedVector<Weight> cells_;
    VertexId n_;
};

/**
 * Dense graph with a label per vertex — the input shape of the MCS
 * (maximum common subgraph) kernel, where only equally-labeled
 * vertices may map onto each other. Edges are symmetric and
 * unweighted in spirit (kInfWeight = absent, anything else = present).
 */
struct LabeledMatrix {
    explicit LabeledMatrix(VertexId n) : adj(n), labels(n, 0) {}

    AdjacencyMatrix adj;
    AlignedVector<std::uint32_t> labels;
};

} // namespace crono::graph

#endif // CRONO_GRAPH_ADJACENCY_MATRIX_H_

#include "graph/reorder.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <utility>
#include <vector>

#include "graph/blocked_csr.h"
#include "obs/telemetry.h"

namespace crono::graph {

const char*
reorderingName(Reordering r)
{
    switch (r) {
      case Reordering::kNone:
        return "none";
      case Reordering::kDegreeSort:
        return "degree";
      case Reordering::kHubCluster:
        return "hub";
      case Reordering::kBfs:
        return "bfs";
      case Reordering::kRcm:
        return "rcm";
    }
    return "?";
}

std::span<const Reordering>
allReorderings()
{
    static constexpr Reordering kAll[] = {
        Reordering::kNone, Reordering::kDegreeSort,
        Reordering::kHubCluster, Reordering::kBfs, Reordering::kRcm};
    return kAll;
}

VertexPermutation::VertexPermutation(AlignedVector<VertexId> new_to_old)
    : newToOld_(std::move(new_to_old))
{
    const auto n = static_cast<VertexId>(newToOld_.size());
    oldToNew_.assign(n, kNoVertex);
    for (VertexId v = 0; v < n; ++v) {
        const VertexId old = newToOld_[v];
        CRONO_REQUIRE(old < n, "permutation entry out of range");
        CRONO_REQUIRE(oldToNew_[old] == kNoVertex,
                      "permutation entry repeated");
        oldToNew_[old] = v;
    }
}

VertexPermutation
VertexPermutation::identity(VertexId n)
{
    AlignedVector<VertexId> order(n);
    std::iota(order.begin(), order.end(), VertexId{0});
    return VertexPermutation(std::move(order));
}

bool
VertexPermutation::isIdentity() const
{
    for (VertexId v = 0; v < size(); ++v) {
        if (newToOld_[v] != v) {
            return false;
        }
    }
    return true;
}

VertexPermutation
VertexPermutation::inverse() const
{
    return VertexPermutation(oldToNew_);
}

VertexPermutation
VertexPermutation::composedWith(const VertexPermutation& then) const
{
    CRONO_REQUIRE(size() == then.size(),
                  "composing permutations of different sizes");
    AlignedVector<VertexId> new_to_old(size());
    for (VertexId v = 0; v < size(); ++v) {
        // Vertex v of the final space came from `then`'s old space,
        // which is this permutation's new space.
        new_to_old[v] = newToOld_[then.toOld(v)];
    }
    return VertexPermutation(std::move(new_to_old));
}

AlignedVector<VertexId>
VertexPermutation::vertexValuesToOld(std::span<const VertexId> by_new,
                                     VertexId sentinel) const
{
    AlignedVector<VertexId> out(by_new.size());
    for (std::size_t v = 0; v < by_new.size(); ++v) {
        const VertexId value = by_new[v];
        out[newToOld_[v]] =
            value == sentinel ? sentinel : newToOld_[value];
    }
    return out;
}

namespace {

/** Vertices sorted by (descending degree, ascending id). */
std::vector<VertexId>
byDegreeDescending(const Graph& g)
{
    std::vector<VertexId> order(g.numVertices());
    std::iota(order.begin(), order.end(), VertexId{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](VertexId a, VertexId b) {
                         return g.degree(a) > g.degree(b);
                     });
    return order;
}

AlignedVector<VertexId>
degreeSortOrder(const Graph& g)
{
    const std::vector<VertexId> sorted = byDegreeDescending(g);
    return {sorted.begin(), sorted.end()};
}

AlignedVector<VertexId>
hubClusterOrder(const Graph& g)
{
    const VertexId n = g.numVertices();
    const double avg_degree =
        n == 0 ? 0.0
               : static_cast<double>(g.numEdges()) /
                     static_cast<double>(n);
    AlignedVector<VertexId> order;
    order.reserve(n);
    for (const VertexId v : byDegreeDescending(g)) {
        if (static_cast<double>(g.degree(v)) > avg_degree) {
            order.push_back(v);
        }
    }
    // Cold vertices follow in their original relative order.
    for (VertexId v = 0; v < n; ++v) {
        if (static_cast<double>(g.degree(v)) <= avg_degree) {
            order.push_back(v);
        }
    }
    return order;
}

/**
 * Shared BFS relabeling core: visit from per-component seeds chosen
 * by @p seed_rank (an index into a precomputed seed candidate list),
 * appending neighbors of each vertex in @p neighbor_order.
 */
AlignedVector<VertexId>
bfsOrderFromSeeds(const Graph& g,
                  const std::vector<VertexId>& seed_candidates,
                  bool sort_neighbors_by_degree)
{
    const VertexId n = g.numVertices();
    AlignedVector<VertexId> order;
    order.reserve(n);
    std::vector<char> seen(n, 0);
    std::vector<VertexId> queue;
    std::vector<VertexId> scratch;
    queue.reserve(n);
    for (const VertexId seed : seed_candidates) {
        if (seen[seed]) {
            continue;
        }
        seen[seed] = 1;
        queue.clear();
        queue.push_back(seed);
        for (std::size_t head = 0; head < queue.size(); ++head) {
            const VertexId u = queue[head];
            order.push_back(u);
            const auto ns = g.neighbors(u);
            scratch.assign(ns.begin(), ns.end());
            if (sort_neighbors_by_degree) {
                // Cuthill-McKee visits low-degree neighbors first
                // (ties by id for determinism).
                std::stable_sort(scratch.begin(), scratch.end(),
                                 [&](VertexId a, VertexId b) {
                                     return g.degree(a) < g.degree(b);
                                 });
            }
            for (const VertexId w : scratch) {
                if (!seen[w]) {
                    seen[w] = 1;
                    queue.push_back(w);
                }
            }
        }
    }
    return order;
}

AlignedVector<VertexId>
bfsOrder(const Graph& g)
{
    // Seeds in descending-degree order: the hub starts the layout and
    // every component is eventually covered.
    return bfsOrderFromSeeds(g, byDegreeDescending(g),
                             /*sort_neighbors_by_degree=*/false);
}

AlignedVector<VertexId>
rcmOrder(const Graph& g)
{
    // Cuthill-McKee seeds from a pseudo-peripheral (low-degree)
    // vertex of each component, then the whole order is reversed.
    std::vector<VertexId> seeds(g.numVertices());
    std::iota(seeds.begin(), seeds.end(), VertexId{0});
    std::stable_sort(seeds.begin(), seeds.end(),
                     [&](VertexId a, VertexId b) {
                         return g.degree(a) < g.degree(b);
                     });
    AlignedVector<VertexId> order =
        bfsOrderFromSeeds(g, seeds, /*sort_neighbors_by_degree=*/true);
    std::reverse(order.begin(), order.end());
    return order;
}

} // namespace

VertexPermutation
computeOrdering(const Graph& g, Reordering r)
{
    switch (r) {
      case Reordering::kNone:
        return VertexPermutation::identity(g.numVertices());
      case Reordering::kDegreeSort:
        return VertexPermutation(degreeSortOrder(g));
      case Reordering::kHubCluster:
        return VertexPermutation(hubClusterOrder(g));
      case Reordering::kBfs:
        return VertexPermutation(bfsOrder(g));
      case Reordering::kRcm:
        return VertexPermutation(rcmOrder(g));
    }
    CRONO_ASSERT(false, "unknown reordering");
    return VertexPermutation::identity(g.numVertices());
}

Graph
permuteGraph(const Graph& g, const VertexPermutation& perm)
{
    const VertexId n = g.numVertices();
    CRONO_REQUIRE(perm.size() == n, "permutation size mismatch");

    AlignedVector<EdgeId> offsets(n + 1, 0);
    for (VertexId v = 0; v < n; ++v) {
        offsets[v + 1] = offsets[v] + g.degree(perm.toOld(v));
    }

    AlignedVector<VertexId> neighbors(g.numEdges());
    AlignedVector<Weight> weights(g.numEdges());
    std::vector<std::pair<VertexId, Weight>> row;
    for (VertexId v = 0; v < n; ++v) {
        const VertexId old = perm.toOld(v);
        const auto ns = g.neighbors(old);
        const auto ws = g.weights(old);
        row.clear();
        for (std::size_t i = 0; i < ns.size(); ++i) {
            row.emplace_back(perm.toNew(ns[i]), ws[i]);
        }
        std::sort(row.begin(), row.end());
        EdgeId slot = offsets[v];
        for (const auto& [u, w] : row) {
            neighbors[slot] = u;
            weights[slot] = w;
            ++slot;
        }
    }
    return Graph(std::move(offsets), std::move(neighbors),
                 std::move(weights), g.undirected());
}

AdjacencyMatrix
permuteMatrix(const AdjacencyMatrix& m, const VertexPermutation& perm)
{
    const VertexId n = m.numVertices();
    CRONO_REQUIRE(perm.size() == n, "permutation size mismatch");
    AdjacencyMatrix out(n);
    for (VertexId a = 0; a < n; ++a) {
        for (VertexId b = 0; b < n; ++b) {
            out.set(a, b, m.at(perm.toOld(a), perm.toOld(b)));
        }
    }
    return out;
}

ReorderedGraph
reorderGraph(const Graph& g, Reordering r, bool blocked)
{
    const auto start = std::chrono::steady_clock::now();
    VertexPermutation perm = computeOrdering(g, r);
    Graph relabeled = permuteGraph(g, perm);
    if (blocked) {
        relabeled.attachBlockedLayout(std::make_shared<const BlockedCsr>(
            relabeled, BlockedCsr::defaultBinBits(g.numVertices())));
    }
    const auto elapsed =
        std::chrono::steady_clock::now() - start;
    if (obs::Track* const track =
            obs::trackFor(obs::sink(), obs::TrackKind::kHost, 0)) {
        // Ceil to whole milliseconds: sub-ms reorders of small graphs
        // must still show up (zero-valued counters are filtered from
        // reports).
        const auto us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                elapsed)
                .count();
        obs::counterBump(track, obs::Counter::kReorderMs,
                         static_cast<std::uint64_t>((us + 999) / 1000));
    }
    return ReorderedGraph{std::move(relabeled), std::move(perm)};
}

std::uint64_t
adjacencyBandwidth(const Graph& g)
{
    std::uint64_t bandwidth = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        for (const VertexId u : g.neighbors(v)) {
            const std::uint64_t spread = v > u ? v - u : u - v;
            bandwidth = std::max(bandwidth, spread);
        }
    }
    return bandwidth;
}

} // namespace crono::graph

#include "graph/blocked_csr.h"

#include <algorithm>

#include "obs/telemetry.h"

namespace crono::graph {

unsigned
BlockedCsr::defaultBinBits(VertexId num_vertices)
{
    unsigned bits = 12;
    while ((static_cast<std::uint64_t>(num_vertices) >> bits) > 64) {
        ++bits;
    }
    return bits;
}

BlockedCsr::BlockedCsr(const Graph& g, unsigned bin_bits)
    : binBits_(bin_bits)
{
    const VertexId n = g.numVertices();
    const std::size_t num_bins =
        n == 0 ? 1
               : (static_cast<std::size_t>(n - 1) >> bin_bits) + 1;
    bins_.resize(num_bins);

    // Adjacency rows are sorted ascending, so each row splits into at
    // most num_bins contiguous runs; pass 1 sizes every bin's edge
    // range and destination list from those runs.
    std::vector<EdgeId> edge_count(num_bins, 0);
    std::vector<std::size_t> dst_count(num_bins, 0);
    for (VertexId v = 0; v < n; ++v) {
        const auto ns = g.neighbors(v);
        std::size_t i = 0;
        while (i < ns.size()) {
            const std::size_t b = ns[i] >> bin_bits;
            std::size_t j = i;
            while (j < ns.size() && (ns[j] >> bin_bits) == b) {
                CRONO_REQUIRE(j == i || ns[j - 1] <= ns[j],
                              "blocked layout needs sorted rows");
                ++j;
            }
            edge_count[b] += j - i;
            ++dst_count[b];
            i = j;
        }
    }

    // Bin-major edge bases: bin b's slots start where bin b-1 ends.
    std::vector<EdgeId> edge_base(num_bins + 1, 0);
    for (std::size_t b = 0; b < num_bins; ++b) {
        edge_base[b + 1] = edge_base[b] + edge_count[b];
        bins_[b].dsts.reserve(dst_count[b]);
        bins_[b].offsets.reserve(dst_count[b] + 1);
        bins_[b].offsets.push_back(edge_base[b]);
        binFills_ += dst_count[b];
    }
    nbrs_.resize(edge_base[num_bins]);
    wts_.resize(edge_base[num_bins]);

    // Pass 2 copies the runs out; visiting v ascending keeps every
    // bin's destination list ascending.
    std::vector<EdgeId> cursor = edge_base;
    for (VertexId v = 0; v < n; ++v) {
        const auto ns = g.neighbors(v);
        const auto ws = g.weights(v);
        std::size_t i = 0;
        while (i < ns.size()) {
            const std::size_t b = ns[i] >> bin_bits;
            std::size_t j = i;
            while (j < ns.size() && (ns[j] >> bin_bits) == b) {
                nbrs_[cursor[b]] = ns[j];
                wts_[cursor[b]] = ws[j];
                ++cursor[b];
                ++j;
            }
            bins_[b].dsts.push_back(v);
            bins_[b].offsets.push_back(cursor[b]);
            i = j;
        }
    }

    if (obs::Track* const track =
            obs::trackFor(obs::sink(), obs::TrackKind::kHost, 0)) {
        obs::counterBump(track, obs::Counter::kBlockFills, binFills_);
    }
}

} // namespace crono::graph

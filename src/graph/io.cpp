#include "graph/io.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "graph/builder.h"
#include "obs/telemetry.h"

namespace crono::graph::io {

namespace {

[[noreturn]] void
badInput(const std::string& what)
{
    throw std::runtime_error("crono graph io: " + what);
}

std::ifstream
openOrThrow(const std::string& file_path)
{
    std::ifstream in(file_path);
    if (!in) {
        badInput("cannot open " + file_path);
    }
    return in;
}

// ------------------------------------------------- chunked line scanner

/**
 * Pulls ~1 MiB blocks from the stream and hands out '\n'-delimited
 * lines as views into the buffer (valid until the next call). A line
 * straddling a block boundary is compacted to the buffer front before
 * the refill; a line longer than the buffer grows it. This replaces
 * the per-line getline + istringstream + operator>> tokenization,
 * which dominated load time for multi-million-edge files.
 */
class LineReader {
  public:
    explicit LineReader(std::istream& in) : in_(in), buf_(kChunkBytes) {}

    /** Next line without its terminator; false at end of input. */
    bool
    next(std::string_view& line)
    {
        for (;;) {
            char* const base = buf_.data();
            if (pos_ < size_) {
                const char* const nl = static_cast<const char*>(
                    std::memchr(base + pos_, '\n', size_ - pos_));
                if (nl != nullptr) {
                    line = trimCr({base + pos_,
                                   static_cast<std::size_t>(
                                       nl - (base + pos_))});
                    pos_ = static_cast<std::size_t>(nl - base) + 1;
                    return true;
                }
            }
            if (eof_) {
                if (pos_ == size_) {
                    return false;
                }
                line = trimCr({base + pos_, size_ - pos_});
                pos_ = size_;
                return true;
            }
            std::memmove(base, base + pos_, size_ - pos_);
            size_ -= pos_;
            pos_ = 0;
            if (size_ == buf_.size()) {
                buf_.resize(buf_.size() * 2);
            }
            in_.read(buf_.data() + size_,
                     static_cast<std::streamsize>(buf_.size() - size_));
            const std::size_t got =
                static_cast<std::size_t>(in_.gcount());
            size_ += got;
            if (got == 0) {
                eof_ = true;
            }
        }
    }

  private:
    static constexpr std::size_t kChunkBytes = std::size_t{1} << 20;

    static std::string_view
    trimCr(std::string_view line)
    {
        if (!line.empty() && line.back() == '\r') {
            line.remove_suffix(1);
        }
        return line;
    }

    std::istream& in_;
    std::vector<char> buf_;
    std::size_t pos_ = 0;
    std::size_t size_ = 0;
    bool eof_ = false;
};

// -------------------------------------------------- in-place tokenizing

const char*
skipSpace(const char* p, const char* end)
{
    while (p != end && (*p == ' ' || *p == '\t')) {
        ++p;
    }
    return p;
}

/** Scan one decimal unsigned integer; nullptr if none is present. */
const char*
parseU64(const char* p, const char* end, std::uint64_t& out)
{
    p = skipSpace(p, end);
    if (p == end || *p < '0' || *p > '9') {
        return nullptr;
    }
    std::uint64_t v = 0;
    while (p != end && *p >= '0' && *p <= '9') {
        v = v * 10 + static_cast<std::uint64_t>(*p - '0');
        ++p;
    }
    out = v;
    return p;
}

/** Scan one floating-point value; nullptr if none is present. */
const char*
parseF64(const char* p, const char* end, double& out)
{
    p = skipSpace(p, end);
    const std::from_chars_result r = std::from_chars(p, end, out);
    if (r.ec != std::errc() || r.ptr == p) {
        return nullptr;
    }
    return r.ptr;
}

bool
onlySpaceLeft(const char* p, const char* end)
{
    return skipSpace(p, end) == end;
}

/** Lower-case whitespace-split words of @p line. */
std::vector<std::string>
words(std::string_view line)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char c : line) {
        if (c == ' ' || c == '\t') {
            if (!cur.empty()) {
                out.push_back(std::move(cur));
                cur.clear();
            }
        } else {
            cur.push_back(
                static_cast<char>(std::tolower(
                    static_cast<unsigned char>(c))));
        }
    }
    if (!cur.empty()) {
        out.push_back(std::move(cur));
    }
    return out;
}

/** Record parse wall-clock on the host track's load_ms counter. */
class ScopedLoadTimer {
  public:
    ScopedLoadTimer() : start_(std::chrono::steady_clock::now()) {}
    ~ScopedLoadTimer()
    {
        if (obs::Track* const track =
                obs::trackFor(obs::sink(), obs::TrackKind::kHost, 0)) {
            // Ceil to whole milliseconds so sub-ms loads still show
            // up (zero-valued counters are filtered from reports).
            const auto us =
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
            obs::counterBump(track, obs::Counter::kLoadMs,
                             static_cast<std::uint64_t>((us + 999) /
                                                        1000));
        }
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace

void
writeEdgeList(std::ostream& out, const Graph& g)
{
    out << "el " << g.numVertices() << ' ' << (g.undirected() ? 1 : 0)
        << '\n';
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        auto ns = g.neighbors(v);
        auto ws = g.weights(v);
        for (std::size_t i = 0; i < ns.size(); ++i) {
            // For undirected graphs each logical edge is stored twice;
            // emit it once, from its lower endpoint.
            if (g.undirected() && ns[i] < v) {
                continue;
            }
            out << v << ' ' << ns[i] << ' ' << ws[i] << '\n';
        }
    }
}

Graph
readEdgeList(std::istream& in)
{
    LineReader lines(in);
    std::string_view line;
    VertexId n = 0;
    bool have_header = false;
    GraphBuilder builder(0, true);

    while (lines.next(line)) {
        if (line.empty() || line[0] == '#') {
            continue;
        }
        const char* p = line.data();
        const char* const end = p + line.size();
        if (!have_header) {
            p = skipSpace(p, end);
            std::uint64_t nv = 0, und = 0;
            if (end - p < 2 || p[0] != 'e' || p[1] != 'l' ||
                (p = parseU64(p + 2, end, nv)) == nullptr ||
                (p = parseU64(p, end, und)) == nullptr) {
                badInput("expected 'el <n> <undirected>' header");
            }
            n = static_cast<VertexId>(nv);
            builder = GraphBuilder(n, und != 0);
            have_header = true;
            continue;
        }
        std::uint64_t src = 0, dst = 0, w = 0;
        if ((p = parseU64(p, end, src)) == nullptr ||
            (p = parseU64(p, end, dst)) == nullptr ||
            (p = parseU64(p, end, w)) == nullptr) {
            badInput("bad edge line: " + std::string(line));
        }
        if (src >= n || dst >= n) {
            badInput("edge endpoint out of range: " + std::string(line));
        }
        builder.addEdge(static_cast<VertexId>(src),
                        static_cast<VertexId>(dst),
                        static_cast<Weight>(w));
    }
    if (!have_header) {
        badInput("missing header");
    }
    return std::move(builder).build(GraphBuilder::DedupPolicy::keepAll);
}

Graph
readDimacs(std::istream& in)
{
    LineReader lines(in);
    std::string_view line;
    VertexId n = 0;
    bool have_problem = false;
    GraphBuilder builder(0, true);

    while (lines.next(line)) {
        if (line.empty() || line[0] == 'c') {
            continue;
        }
        const char* p = line.data();
        const char* const end = p + line.size();
        p = skipSpace(p, end);
        const char kind = p == end ? '\0' : *p;
        if (p != end) {
            ++p;
        }
        if (kind == 'p') {
            std::uint64_t nv = 0, m = 0;
            p = skipSpace(p, end);
            if (end - p < 2 || p[0] != 's' || p[1] != 'p' ||
                (p = parseU64(p + 2, end, nv)) == nullptr ||
                (p = parseU64(p, end, m)) == nullptr) {
                badInput("bad DIMACS problem line: " + std::string(line));
            }
            n = static_cast<VertexId>(nv);
            builder = GraphBuilder(n, true);
            have_problem = true;
        } else if (kind == 'a') {
            if (!have_problem) {
                badInput("arc before problem line");
            }
            std::uint64_t src = 0, dst = 0, w = 0;
            if ((p = parseU64(p, end, src)) == nullptr ||
                (p = parseU64(p, end, dst)) == nullptr ||
                (p = parseU64(p, end, w)) == nullptr || src == 0 ||
                dst == 0 || src > n || dst > n) {
                badInput("bad DIMACS arc line: " + std::string(line));
            }
            builder.addEdge(static_cast<VertexId>(src - 1),
                            static_cast<VertexId>(dst - 1),
                            static_cast<Weight>(w));
        } else {
            badInput("unknown DIMACS line: " + std::string(line));
        }
    }
    if (!have_problem) {
        badInput("missing DIMACS problem line");
    }
    return std::move(builder).build();
}

Graph
readMatrixMarket(std::istream& in)
{
    LineReader lines(in);
    std::string_view line;
    if (!lines.next(line)) {
        badInput("empty MatrixMarket file");
    }
    const std::vector<std::string> banner = words(line);
    if (banner.size() < 5 || banner[0] != "%%matrixmarket") {
        badInput("missing %%MatrixMarket banner");
    }
    if (banner[1] != "matrix" || banner[2] != "coordinate") {
        badInput("unsupported MatrixMarket object/format: " +
                 std::string(line));
    }
    const std::string& field = banner[3];
    const bool pattern = field == "pattern";
    if (!pattern && field != "real" && field != "integer") {
        badInput("unsupported MatrixMarket field: " + field);
    }
    const std::string& symmetry = banner[4];
    const bool symmetric = symmetry == "symmetric";
    if (!symmetric && symmetry != "general") {
        badInput("unsupported MatrixMarket symmetry: " + symmetry);
    }

    // Size line: first non-comment line after the banner.
    std::uint64_t rows = 0, cols = 0, nnz = 0;
    bool have_size = false;
    while (lines.next(line)) {
        if (line.empty() || line[0] == '%') {
            continue;
        }
        const char* p = line.data();
        const char* const end = p + line.size();
        if ((p = parseU64(p, end, rows)) == nullptr ||
            (p = parseU64(p, end, cols)) == nullptr ||
            (p = parseU64(p, end, nnz)) == nullptr ||
            !onlySpaceLeft(p, end)) {
            badInput("bad MatrixMarket size line: " + std::string(line));
        }
        have_size = true;
        break;
    }
    if (!have_size) {
        badInput("missing MatrixMarket size line");
    }
    if (rows != cols) {
        badInput("MatrixMarket matrix is not square");
    }

    GraphBuilder builder(static_cast<VertexId>(rows), symmetric);
    std::uint64_t seen = 0;
    while (lines.next(line)) {
        if (line.empty() || line[0] == '%') {
            continue;
        }
        const char* p = line.data();
        const char* const end = p + line.size();
        std::uint64_t i = 0, j = 0;
        if ((p = parseU64(p, end, i)) == nullptr ||
            (p = parseU64(p, end, j)) == nullptr) {
            badInput("bad MatrixMarket entry: " + std::string(line));
        }
        Weight w = 1;
        if (!pattern) {
            double value = 0.0;
            if ((p = parseF64(p, end, value)) == nullptr ||
                !std::isfinite(value)) {
                badInput("bad MatrixMarket entry value: " +
                         std::string(line));
            }
            // Edge weights are distances: rounded magnitude, zero
            // clamped to 1 so every edge stays traversable.
            const double mag = std::round(std::fabs(value));
            w = mag < 1.0 ? Weight{1}
                          : static_cast<Weight>(
                                std::min(mag, 4294967295.0));
        }
        if (!onlySpaceLeft(p, end)) {
            badInput("trailing junk on MatrixMarket entry: " +
                     std::string(line));
        }
        if (i == 0 || j == 0 || i > rows || j > cols) {
            badInput("MatrixMarket index out of range: " +
                     std::string(line));
        }
        ++seen;
        if (seen > nnz) {
            badInput("more MatrixMarket entries than declared");
        }
        builder.addEdge(static_cast<VertexId>(i - 1),
                        static_cast<VertexId>(j - 1), w);
    }
    if (seen != nnz) {
        badInput("truncated MatrixMarket file: expected " +
                 std::to_string(nnz) + " entries, got " +
                 std::to_string(seen));
    }
    return std::move(builder).build(GraphBuilder::DedupPolicy::keepMin);
}

void
saveEdgeList(const std::string& file_path, const Graph& g)
{
    std::ofstream out(file_path);
    if (!out) {
        badInput("cannot write " + file_path);
    }
    writeEdgeList(out, g);
}

Graph
loadEdgeList(const std::string& file_path)
{
    auto in = openOrThrow(file_path);
    const ScopedLoadTimer timer;
    return readEdgeList(in);
}

Graph
loadDimacs(const std::string& file_path)
{
    auto in = openOrThrow(file_path);
    const ScopedLoadTimer timer;
    return readDimacs(in);
}

Graph
loadMatrixMarket(const std::string& file_path)
{
    auto in = openOrThrow(file_path);
    const ScopedLoadTimer timer;
    return readMatrixMarket(in);
}

} // namespace crono::graph::io

#include "graph/io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "graph/builder.h"

namespace crono::graph::io {

namespace {

[[noreturn]] void
badInput(const std::string& what)
{
    throw std::runtime_error("crono graph io: " + what);
}

std::ifstream
openOrThrow(const std::string& file_path)
{
    std::ifstream in(file_path);
    if (!in) {
        badInput("cannot open " + file_path);
    }
    return in;
}

} // namespace

void
writeEdgeList(std::ostream& out, const Graph& g)
{
    out << "el " << g.numVertices() << ' ' << (g.undirected() ? 1 : 0)
        << '\n';
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        auto ns = g.neighbors(v);
        auto ws = g.weights(v);
        for (std::size_t i = 0; i < ns.size(); ++i) {
            // For undirected graphs each logical edge is stored twice;
            // emit it once, from its lower endpoint.
            if (g.undirected() && ns[i] < v) {
                continue;
            }
            out << v << ' ' << ns[i] << ' ' << ws[i] << '\n';
        }
    }
}

Graph
readEdgeList(std::istream& in)
{
    std::string line;
    std::string tag;
    VertexId n = 0;
    int undirected = 1;
    bool have_header = false;
    GraphBuilder builder(0, true);

    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') {
            continue;
        }
        std::istringstream ls(line);
        if (!have_header) {
            if (!(ls >> tag >> n >> undirected) || tag != "el") {
                badInput("expected 'el <n> <undirected>' header");
            }
            builder = GraphBuilder(n, undirected != 0);
            have_header = true;
            continue;
        }
        VertexId src, dst;
        Weight w;
        if (!(ls >> src >> dst >> w)) {
            badInput("bad edge line: " + line);
        }
        if (src >= n || dst >= n) {
            badInput("edge endpoint out of range: " + line);
        }
        builder.addEdge(src, dst, w);
    }
    if (!have_header) {
        badInput("missing header");
    }
    return std::move(builder).build(GraphBuilder::DedupPolicy::keepAll);
}

Graph
readDimacs(std::istream& in)
{
    std::string line;
    VertexId n = 0;
    bool have_problem = false;
    GraphBuilder builder(0, true);

    while (std::getline(in, line)) {
        if (line.empty() || line[0] == 'c') {
            continue;
        }
        std::istringstream ls(line);
        char kind;
        ls >> kind;
        if (kind == 'p') {
            std::string sp;
            EdgeId m;
            if (!(ls >> sp >> n >> m) || sp != "sp") {
                badInput("bad DIMACS problem line: " + line);
            }
            builder = GraphBuilder(n, true);
            have_problem = true;
        } else if (kind == 'a') {
            if (!have_problem) {
                badInput("arc before problem line");
            }
            VertexId src, dst;
            Weight w;
            if (!(ls >> src >> dst >> w) || src == 0 || dst == 0 ||
                src > n || dst > n) {
                badInput("bad DIMACS arc line: " + line);
            }
            builder.addEdge(src - 1, dst - 1, w);
        } else {
            badInput("unknown DIMACS line: " + line);
        }
    }
    if (!have_problem) {
        badInput("missing DIMACS problem line");
    }
    return std::move(builder).build();
}

void
saveEdgeList(const std::string& file_path, const Graph& g)
{
    std::ofstream out(file_path);
    if (!out) {
        badInput("cannot write " + file_path);
    }
    writeEdgeList(out, g);
}

Graph
loadEdgeList(const std::string& file_path)
{
    auto in = openOrThrow(file_path);
    return readEdgeList(in);
}

Graph
loadDimacs(const std::string& file_path)
{
    auto in = openOrThrow(file_path);
    return readDimacs(in);
}

} // namespace crono::graph::io

#include "graph/adjacency_matrix.h"

#include <algorithm>

namespace crono::graph {

AdjacencyMatrix::AdjacencyMatrix(VertexId n)
    : cells_(static_cast<std::size_t>(n) * n, kInfWeight), n_(n)
{
}

AdjacencyMatrix::AdjacencyMatrix(const Graph& g)
    : AdjacencyMatrix(g.numVertices())
{
    for (VertexId v = 0; v < n_; ++v) {
        auto ns = g.neighbors(v);
        auto ws = g.weights(v);
        for (std::size_t i = 0; i < ns.size(); ++i) {
            set(v, ns[i], std::min(at(v, ns[i]), ws[i]));
        }
    }
}

} // namespace crono::graph

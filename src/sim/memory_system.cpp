#include "sim/memory_system.h"

#include <algorithm>

#include "common/macros.h"

namespace crono::sim {

MemorySystem::MemorySystem(const Config& cfg)
    : mesh_(cfg), dram_(cfg), numCores_(cfg.num_cores),
      lineBytes_(cfg.line_bytes), l2Cycles_(cfg.l2.access_cycles),
      ctlBits_(cfg.control_message_bits), dataBits_(cfg.line_bytes * 8)
{
    nodes_.reserve(numCores_);
    for (int i = 0; i < numCores_; ++i) {
        nodes_.emplace_back(cfg);
    }
    ackwiseK_ = cfg.ackwise_pointers;
    l1Allocation_ = cfg.l1_allocation;
    localityThreshold_ = cfg.locality_threshold;
}

LineState
MemorySystem::l1State(int core, LineAddr line) const
{
    return nodes_[core].l1d.peek(line);
}

DirState
MemorySystem::dirState(LineAddr line) const
{
    const Node& h = nodes_[homeOf(line)];
    auto it = h.dir.find(line);
    return it == h.dir.end() ? DirState::uncached : it->second.state;
}

LineAddr
MemorySystem::translateLine(std::uintptr_t host_line)
{
    auto [it, inserted] = lineMap_.try_emplace(host_line, nextLine_);
    if (inserted) {
        ++nextLine_;
    }
    return it->second;
}

AccessLatency
MemorySystem::access(int core, std::uintptr_t host_addr, std::uint32_t size,
                     bool is_store, std::uint64_t start)
{
    CRONO_ASSERT(size >= 1, "zero-size access");
    // Translate each touched host line independently.
    const std::uintptr_t host_first = host_addr / lineBytes_;
    const std::uintptr_t host_last = (host_addr + size - 1) / lineBytes_;
    AccessLatency total;
    for (std::uintptr_t host_line = host_first; host_line <= host_last;
         ++host_line) {
        const LineAddr line = translateLine(host_line);
        const AccessLatency part = accessLine(core, line, is_store, start);
        total.l1_to_l2 += part.l1_to_l2;
        total.waiting += part.waiting;
        total.sharers += part.sharers;
        total.offchip += part.offchip;
    }
    return total;
}

AccessLatency
MemorySystem::accessLine(int core, LineAddr line, bool is_store,
                         std::uint64_t start)
{
    Node& me = nodes_[core];
    ++l1d_.accesses;

    if (!l1Allocation_) {
        return remoteAccessLine(core, line, is_store, start);
    }
    if (localityThreshold_ > 0 && me.l1d.peek(line) == LineState::invalid) {
        // Locality-aware adaptation: stay in remote-access mode until
        // the home has seen enough reuse from this core to justify a
        // private copy (low-locality data never thrashes the L1 or
        // generates invalidation storms).
        std::uint32_t& count =
            nodes_[homeOf(line)].reuse[line][core];
        if (++count <= localityThreshold_) {
            return remoteAccessLine(core, line, is_store, start);
        }
        count = 0; // granted: restart the observation window
    }

    const LineState l1_state = me.l1d.lookup(line);
    bool upgrade = false;
    if (l1_state != LineState::invalid) {
        if (!is_store || l1_state == LineState::modified ||
            l1_state == LineState::exclusive) {
            if (is_store && l1_state == LineState::exclusive) {
                me.l1d.setState(line, LineState::modified);
            }
            ++l1d_.hits;
            return {};
        }
        // Store to a Shared line: coherence upgrade, counted as a hit.
        ++l1d_.hits;
        upgrade = true;
    } else {
        auto hist = me.l1History.find(line);
        const MissClass cls =
            hist == me.l1History.end() ? MissClass::cold : hist->second;
        ++l1d_.misses[static_cast<int>(cls)];
    }

    const int home = homeOf(line);
    Node& h = nodes_[home];
    AccessLatency lat;

    // Request to the home slice.
    std::uint64_t t = mesh_.send(core, home, ctlBits_, start);
    lat.l1_to_l2 += t - start;

    // Serialize against an in-flight transaction on the same line.
    if (auto busy = h.busyUntil.find(line);
        busy != h.busyUntil.end() && busy->second > t) {
        lat.waiting += busy->second - t;
        t = busy->second;
    }

    // First access to the L2 slice (tag + data + directory).
    ++dirStats_.lookups;
    ++l2_.accesses;
    t += l2Cycles_;
    lat.l1_to_l2 += l2Cycles_;

    LineState l2_state = h.l2.lookup(line);
    if (l2_state == LineState::invalid) {
        // Fetch the line from DRAM through this slice's controller.
        ++l2_.misses[static_cast<int>(h.l2Seen.count(line)
                                          ? MissClass::capacity
                                          : MissClass::cold)];
        h.l2Seen.insert(line);
        const int ctrl = dram_.controllerNode(line);
        const std::uint64_t t_req = mesh_.send(home, ctrl, ctlBits_, t);
        const std::uint64_t t_mem = dram_.access(line, t_req);
        const std::uint64_t t_back = mesh_.send(ctrl, home, dataBits_, t_mem);
        lat.offchip += t_back - t;
        t = t_back;
        const Cache::Victim victim = h.l2.insert(line, LineState::shared);
        evictL2Line(h, home, victim, t);
        h.dir.emplace(line, DirEntry(ackwiseK_));
    } else {
        ++l2_.hits;
    }

    auto dir_it = h.dir.find(line);
    CRONO_ASSERT(dir_it != h.dir.end(), "L2 line without directory entry");
    DirEntry& de = dir_it->second;

    LineState grant;
    switch (de.state) {
      case DirState::uncached:
        CRONO_ASSERT(!upgrade, "upgrade on uncached line");
        grant = is_store ? LineState::modified : LineState::exclusive;
        de.state = DirState::exclusive;
        de.owner = core;
        break;

      case DirState::shared:
        if (!is_store) {
            CRONO_ASSERT(!upgrade, "read upgrade is impossible");
            de.sharers.add(core);
            grant = LineState::shared;
        } else {
            const std::uint64_t done = invalidateSharers(
                de, line, home, core, t, MissClass::sharing);
            lat.sharers += done - t;
            t = done;
            de.sharers.clear();
            de.state = DirState::exclusive;
            de.owner = core;
            grant = LineState::modified;
        }
        break;

      case DirState::exclusive: {
        CRONO_ASSERT(de.owner != core,
                     "requester cannot be the registered owner");
        const std::uint64_t done =
            recallOwner(h, de, line, home, /*invalidate_owner=*/is_store, t);
        lat.sharers += done - t;
        t = done;
        if (is_store) {
            de.owner = core;
            grant = LineState::modified;
        } else {
            const int prev_owner = de.owner;
            de.state = DirState::shared;
            de.owner = -1;
            de.sharers.clear();
            de.sharers.add(prev_owner);
            de.sharers.add(core);
            grant = LineState::shared;
        }
        break;
      }

      default:
        CRONO_ASSERT(false, "bad directory state");
        grant = LineState::shared;
    }

    // Home is busy with this line until it sends the reply.
    h.busyUntil[line] = t;

    // Reply to the requester (data, or just an ack for upgrades).
    const std::uint64_t t_reply =
        mesh_.send(home, core, upgrade ? ctlBits_ : dataBits_, t);
    lat.l1_to_l2 += t_reply - t;

    if (upgrade) {
        me.l1d.setState(line, LineState::modified);
    } else {
        const Cache::Victim victim = me.l1d.insert(line, grant);
        evictL1Line(core, victim, t_reply);
    }
    return lat;
}

AccessLatency
MemorySystem::remoteAccessLine(int core, LineAddr line, bool is_store,
                               std::uint64_t start)
{
    // Remote-access mode: no private caching, every reference is a
    // round trip to the home slice; the directory never tracks
    // sharers, so there is no invalidation traffic at all.
    (void)is_store;
    ++l1d_.misses[static_cast<int>(MissClass::cold)];
    const int home = homeOf(line);
    Node& h = nodes_[home];
    AccessLatency lat;

    std::uint64_t t = mesh_.send(core, home, ctlBits_, start);
    lat.l1_to_l2 += t - start;
    if (auto busy = h.busyUntil.find(line);
        busy != h.busyUntil.end() && busy->second > t) {
        lat.waiting += busy->second - t;
        t = busy->second;
    }
    ++dirStats_.lookups;
    ++l2_.accesses;
    t += l2Cycles_;
    lat.l1_to_l2 += l2Cycles_;

    if (h.l2.lookup(line) == LineState::invalid) {
        ++l2_.misses[static_cast<int>(h.l2Seen.count(line)
                                          ? MissClass::capacity
                                          : MissClass::cold)];
        h.l2Seen.insert(line);
        const int ctrl = dram_.controllerNode(line);
        const std::uint64_t t_req = mesh_.send(home, ctrl, ctlBits_, t);
        const std::uint64_t t_mem = dram_.access(line, t_req);
        const std::uint64_t t_back =
            mesh_.send(ctrl, home, dataBits_, t_mem);
        lat.offchip += t_back - t;
        t = t_back;
        const Cache::Victim victim = h.l2.insert(line, LineState::shared);
        evictL2Line(h, home, victim, t);
        h.dir.emplace(line, DirEntry(ackwiseK_));
    } else {
        ++l2_.hits;
    }
    h.busyUntil[line] = t;
    const std::uint64_t t_reply = mesh_.send(home, core, ctlBits_, t);
    lat.l1_to_l2 += t_reply - t;
    return lat;
}

std::uint64_t
MemorySystem::invalidateSharers(DirEntry& de, LineAddr line,
                                int home, int except, std::uint64_t t,
                                MissClass reason)
{
    std::uint64_t done = t;
    auto invalidate_one = [&](int s) {
        if (s == except) {
            return;
        }
        Node& sharer = nodes_[s];
        if (sharer.l1d.invalidate(line) != LineState::invalid) {
            sharer.l1History[line] = reason;
            ++dirStats_.invalidations;
        }
        const std::uint64_t t_inv = mesh_.send(home, s, ctlBits_, t);
        const std::uint64_t t_ack = mesh_.send(s, home, ctlBits_, t_inv + 1);
        done = std::max(done, t_ack);
    };

    if (de.sharers.overflowed()) {
        // Identities lost: broadcast to every core and collect acks.
        ++dirStats_.broadcasts;
        for (int s = 0; s < numCores_; ++s) {
            invalidate_one(s);
        }
    } else {
        for (int s : de.sharers.pointers()) {
            invalidate_one(s);
        }
    }
    return done;
}

std::uint64_t
MemorySystem::recallOwner(Node& h, DirEntry& de, LineAddr line, int home,
                          bool invalidate_owner, std::uint64_t t)
{
    const int owner = de.owner;
    Node& o = nodes_[owner];
    const std::uint64_t t_fwd = mesh_.send(home, owner, ctlBits_, t);

    const LineState owner_state = o.l1d.peek(line);
    CRONO_ASSERT(owner_state == LineState::modified ||
                     owner_state == LineState::exclusive,
                 "registered owner does not hold the line");
    if (owner_state == LineState::modified) {
        ++dirStats_.write_backs;
        h.l2.setState(line, LineState::modified); // slice copy now dirty
    }
    if (invalidate_owner) {
        o.l1d.invalidate(line);
        o.l1History[line] = MissClass::sharing;
        ++dirStats_.invalidations;
    } else {
        o.l1d.setState(line, LineState::shared);
    }
    // Owner responds with the line (synchronous write-back).
    return mesh_.send(owner, home, dataBits_, t_fwd + 1);
}

void
MemorySystem::evictL2Line(Node& h, int home, const Cache::Victim& victim,
                          std::uint64_t t)
{
    if (!victim.valid) {
        return;
    }
    auto dir_it = h.dir.find(victim.line);
    CRONO_ASSERT(dir_it != h.dir.end(), "L2 victim without directory entry");
    DirEntry& de = dir_it->second;

    bool dirty = victim.state == LineState::modified;
    if (de.state == DirState::exclusive) {
        // Pull the owner's copy back before dropping the line.
        const int owner = de.owner;
        Node& o = nodes_[owner];
        mesh_.send(home, owner, ctlBits_, t);
        mesh_.send(owner, home, dataBits_, t + 1);
        if (o.l1d.peek(victim.line) == LineState::modified) {
            dirty = true;
            ++dirStats_.write_backs;
        }
        o.l1d.invalidate(victim.line);
        o.l1History[victim.line] = MissClass::capacity;
        ++dirStats_.invalidations;
    } else if (de.state == DirState::shared) {
        // Inclusive L2: back-invalidate every L1 sharer.
        const bool overflowed = de.sharers.overflowed();
        for (int s = 0; s < numCores_; ++s) {
            if (!overflowed && !de.sharers.contains(s)) {
                continue;
            }
            Node& sharer = nodes_[s];
            if (sharer.l1d.invalidate(victim.line) != LineState::invalid) {
                sharer.l1History[victim.line] = MissClass::capacity;
                ++dirStats_.invalidations;
                mesh_.send(home, s, ctlBits_, t);
                mesh_.send(s, home, ctlBits_, t + 1);
            }
        }
        if (overflowed) {
            ++dirStats_.broadcasts;
        }
    }
    if (dirty) {
        // Write the line back to memory (bandwidth occupancy only).
        mesh_.send(home, dram_.controllerNode(victim.line), dataBits_, t);
        dram_.access(victim.line, t);
    }
    h.dir.erase(dir_it);
    h.busyUntil.erase(victim.line);
}

void
MemorySystem::evictL1Line(int core, const Cache::Victim& victim,
                          std::uint64_t t)
{
    if (!victim.valid) {
        return;
    }
    Node& me = nodes_[core];
    me.l1History[victim.line] = MissClass::capacity;

    const int home = homeOf(victim.line);
    Node& h = nodes_[home];
    auto dir_it = h.dir.find(victim.line);
    CRONO_ASSERT(dir_it != h.dir.end(),
                 "L1 victim without home directory entry");
    DirEntry& de = dir_it->second;

    // Non-silent eviction: tell the home so sharer sets stay precise.
    const bool dirty = victim.state == LineState::modified;
    mesh_.send(core, home, dirty ? dataBits_ : ctlBits_, t);
    if (dirty) {
        ++dirStats_.write_backs;
        h.l2.setState(victim.line, LineState::modified);
    }

    if (de.state == DirState::exclusive) {
        CRONO_ASSERT(de.owner == core, "exclusive victim from non-owner");
        de.state = DirState::uncached;
        de.owner = -1;
    } else {
        de.sharers.remove(core);
        if (de.sharers.empty()) {
            de.state = DirState::uncached;
        }
    }
}

} // namespace crono::sim

/**
 * @file
 * Electrical 2-D mesh network-on-chip with XY dimension-ordered
 * routing, per Table II: 2-cycle hops (1 router + 1 link), 64-bit
 * flits, link contention only (infinite input buffers).
 */

#ifndef CRONO_SIM_NOC_H_
#define CRONO_SIM_NOC_H_

#include <cstdint>
#include <vector>

#include "sim/config.h"
#include "sim/stats.h"

namespace crono::sim {

/** 2-D mesh interconnect. Core i sits at (i % width, i / width). */
class Mesh {
  public:
    explicit Mesh(const Config& cfg);

    /** Hop count of the XY route from @p src to @p dst. */
    int hops(int src, int dst) const;

    /**
     * Send a message, modeling per-link serialization and contention.
     *
     * @param src/dst     node ids
     * @param payload_bits message size excluding the header flit
     * @param depart_time  cycle the message leaves @p src
     * @return arrival cycle at @p dst (== depart_time if src == dst)
     */
    std::uint64_t send(int src, int dst, std::uint32_t payload_bits,
                       std::uint64_t depart_time);

    /** Counters accumulated by send(). */
    const NetworkStats& stats() const { return stats_; }
    NetworkStats& stats() { return stats_; }

    /** Contention window width in cycles (== flit capacity). */
    static constexpr std::uint64_t kWindowCycles = 64;
    /** Number of windows retained per link. */
    static constexpr std::size_t kWindowRing = 32;

  private:
    /** Directed link leaving @p node toward @p next. */
    std::size_t linkIndex(int node, int next) const;

    /** Queueing delay for @p flits crossing @p link at time @p t. */
    std::uint64_t linkDelay(std::size_t link, std::uint64_t t,
                            std::uint32_t flits);

    /** One time-window of flit occupancy on a link. */
    struct Window {
        std::uint64_t epoch = ~std::uint64_t{0};
        std::uint64_t flits = 0;
    };

    std::vector<Window> windows_; // [link][epoch % kWindowRing]
    NetworkStats stats_;
    Routing routing_;
    std::uint64_t messageParity_ = 0; // O1TURN alternation
    int width_;
    int numCores_;
    std::uint32_t hopCycles_;
    std::uint32_t flitBits_;
};

} // namespace crono::sim

#endif // CRONO_SIM_NOC_H_

#include "sim/core_model.h"

#include "common/macros.h"

namespace crono::sim {

std::unique_ptr<CoreModel>
CoreModel::create(const Config& cfg)
{
    if (cfg.core_type == CoreType::inOrder) {
        return std::make_unique<InOrderCore>();
    }
    return std::make_unique<OutOfOrderCore>(cfg.ooo);
}

OutOfOrderCore::OutOfOrderCore(const OooConfig& cfg)
    : loadRing_(cfg.load_queue), storeRing_(cfg.store_queue),
      robCapacity_(cfg.rob_size)
{
    CRONO_REQUIRE(cfg.rob_size >= 1 && cfg.load_queue >= 1 &&
                      cfg.store_queue >= 1,
                  "OOO window sizes must be >= 1");
}

void
OutOfOrderCore::addCompute(std::uint64_t n)
{
    CoreModel::addCompute(n);
    seq_ += n;
    // Drop ops that have both completed and left the window; keeps the
    // in-flight deque short across long compute stretches.
    while (!inflight_.empty() && inflight_.front().completion <= now_ &&
           inflight_.front().seq + robCapacity_ <= seq_) {
        inflight_.pop_front();
    }
}

void
OutOfOrderCore::addAccess(bool is_store, const AccessLatency& lat)
{
    addCompute(1); // the issue slot and L1 access
    std::uint64_t issue = now_;
    issue = retireBeyondWindow(issue);
    issue = enforceQueue(is_store ? storeRing_ : loadRing_,
                         is_store ? storeSeq_ : loadSeq_, issue, lat);
    if (issue > now_) {
        now_ = issue;
    }
    inflight_.push_back(Slot{seq_, now_ + lat.total(), lat, is_store});
}

std::uint64_t
OutOfOrderCore::retireBeyondWindow(std::uint64_t issue)
{
    while (!inflight_.empty() &&
           inflight_.front().seq + robCapacity_ <= seq_) {
        const Slot s = inflight_.front();
        inflight_.pop_front();
        if (s.completion > issue) {
            chargeStall(s, s.completion - issue);
            issue = s.completion;
        }
    }
    return issue;
}

std::uint64_t
OutOfOrderCore::enforceQueue(std::vector<Slot>& ring, std::uint64_t& seq,
                             std::uint64_t issue, const AccessLatency& lat)
{
    Slot& slot = ring[seq % ring.size()];
    if (seq >= ring.size() && slot.completion > issue) {
        // Queue full: wait for its oldest entry to free.
        chargeStall(slot, slot.completion - issue);
        issue = slot.completion;
    }
    slot = Slot{seq, issue + lat.total(), lat, false};
    ++seq;
    return issue;
}

void
OutOfOrderCore::chargeStall(const Slot& blocker, std::uint64_t stall)
{
    const std::uint64_t lat_total = blocker.lat.total();
    if (lat_total == 0) {
        bd_[Component::compute] += static_cast<double>(stall);
        return;
    }
    chargeAccess(blocker.lat,
                 static_cast<double>(stall) / static_cast<double>(lat_total));
}

void
OutOfOrderCore::drain()
{
    while (!inflight_.empty()) {
        const Slot s = inflight_.front();
        inflight_.pop_front();
        if (s.completion > now_) {
            chargeStall(s, s.completion - now_);
            now_ = s.completion;
        }
    }
    // Ring entries are a subset of inflight_ timing-wise, but stale
    // completions must not gate the next region after a drain.
    for (Slot& s : loadRing_) {
        s.completion = 0;
    }
    for (Slot& s : storeRing_) {
        s.completion = 0;
    }
}

} // namespace crono::sim

/**
 * @file
 * The full simulated memory hierarchy: per-core private L1-D caches,
 * address-interleaved shared NUCA L2 slices with an integrated
 * ACKwise-4 MESI invalidation directory, the 2-D mesh, and DRAM.
 *
 * access() executes one coherence transaction and returns the latency
 * decomposed into the paper's four memory components (Section IV-D):
 * L1Cache-L2Home, L2Home-Waiting, L2Home-Sharers, L2Home-OffChip.
 *
 * Modeling notes (documented simplifications, see DESIGN.md):
 *  - L1 evictions notify the directory (non-silent), keeping sharer
 *    sets precise; the notification's messages and energy are counted
 *    but add no latency to any requester.
 *  - Inclusive-L2 back-invalidations and dirty write-backs likewise
 *    happen off the critical path (counted, not charged).
 *  - A store hit on a Shared line (upgrade) performs the full
 *    invalidation transaction but is not counted as an L1 miss, per
 *    the paper's definition of sharing misses (the line was present).
 */

#ifndef CRONO_SIM_MEMORY_SYSTEM_H_
#define CRONO_SIM_MEMORY_SYSTEM_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/cache.h"
#include "sim/config.h"
#include "sim/core_model.h"
#include "sim/directory.h"
#include "sim/dram.h"
#include "sim/noc.h"
#include "sim/stats.h"

namespace crono::sim {

/** Coherent multi-level memory hierarchy shared by all cores. */
class MemorySystem {
  public:
    explicit MemorySystem(const Config& cfg);

    /**
     * Model one data access.
     *
     * @param core     issuing core id
     * @param addr     virtual (host) byte address
     * @param size     access size in bytes; accesses spanning a line
     *                 boundary are split
     * @param is_store write (or atomic RMW) semantics
     * @param start    core-local cycle the access issues
     */
    AccessLatency access(int core, std::uintptr_t addr, std::uint32_t size,
                         bool is_store, std::uint64_t start);

    /**
     * Translate a host cache-line address into the deterministic
     * simulated line space (first-touch assignment). Because the
     * fiber scheduler is deterministic, lines are first touched in a
     * fixed order, making simulated timing independent of ASLR and
     * host heap history.
     */
    LineAddr translateLine(std::uintptr_t host_line);

    /** Account @p count instruction fetches (L1-I hits). */
    void instructionFetch(std::uint64_t count) { l1iAccesses_ += count; }

    /** Home L2 slice of a line (static address interleaving). */
    int
    homeOf(LineAddr line) const
    {
        return static_cast<int>(line % numCores_);
    }

    /** L1-D state visible to tests. */
    LineState l1State(int core, LineAddr line) const;
    /** Directory state visible to tests. */
    DirState dirState(LineAddr line) const;

    const CacheStats& l1dStats() const { return l1d_; }
    const CacheStats& l2Stats() const { return l2_; }
    const DirectoryStats& directoryStats() const { return dirStats_; }
    const NetworkStats& networkStats() const { return mesh_.stats(); }
    const DramStats& dramStats() const { return dram_.stats(); }
    std::uint64_t l1iAccesses() const { return l1iAccesses_; }
    const Mesh& mesh() const { return mesh_; }

  private:
    struct Node {
        Node(const Config& cfg)
            : l1d(cfg.l1d, cfg.line_bytes), l2(cfg.l2, cfg.line_bytes)
        {
        }

        Cache l1d;
        Cache l2;
        /** Last reason a line left this L1 (for miss classification). */
        std::unordered_map<LineAddr, MissClass> l1History;
        /** Lines ever resident in this L2 slice (cold/capacity split). */
        std::unordered_set<LineAddr> l2Seen;
        /** Directory entries for lines resident in this slice. */
        std::unordered_map<LineAddr, DirEntry> dir;
        /** In-flight transaction serialization per line. */
        std::unordered_map<LineAddr, std::uint64_t> busyUntil;
        /**
         * Locality tracking (adaptive mode): per-line, per-core access
         * counts observed at this home slice.
         */
        std::unordered_map<LineAddr, std::unordered_map<int, std::uint32_t>>
            reuse;
    };

    AccessLatency accessLine(int core, LineAddr line, bool is_store,
                             std::uint64_t start);

    /** Home-only service path used when Config::l1_allocation is off. */
    AccessLatency remoteAccessLine(int core, LineAddr line, bool is_store,
                                   std::uint64_t start);

    /**
     * Invalidate every sharer of @p line except @p except, in
     * parallel. @return the last-ack arrival time at @p home.
     */
    std::uint64_t invalidateSharers(DirEntry& de, LineAddr line,
                                    int home, int except, std::uint64_t t,
                                    MissClass reason);

    /**
     * Fetch (and invalidate or downgrade) the exclusive owner's copy.
     * @return time the write-back data reaches @p home.
     */
    std::uint64_t recallOwner(Node& h, DirEntry& de, LineAddr line,
                              int home, bool invalidate_owner,
                              std::uint64_t t);

    /** Handle eviction of @p victim from the home slice @p home. */
    void evictL2Line(Node& h, int home, const Cache::Victim& victim,
                     std::uint64_t t);

    /** Victim handling for an L1 insertion by @p core. */
    void evictL1Line(int core, const Cache::Victim& victim,
                     std::uint64_t t);

    std::vector<Node> nodes_;
    std::unordered_map<std::uintptr_t, LineAddr> lineMap_;
    LineAddr nextLine_ = 1; // line 0 reserved (never mapped)
    Mesh mesh_;
    Dram dram_;
    CacheStats l1d_;
    CacheStats l2_;
    DirectoryStats dirStats_;
    std::uint64_t l1iAccesses_ = 0;
    int numCores_;
    int ackwiseK_;
    bool l1Allocation_ = true;
    std::uint32_t localityThreshold_ = 0;
    std::uint32_t lineBytes_;
    std::uint32_t l2Cycles_;
    std::uint32_t ctlBits_;
    std::uint32_t dataBits_;
};

} // namespace crono::sim

#endif // CRONO_SIM_MEMORY_SYSTEM_H_

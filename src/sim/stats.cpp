#include "sim/stats.h"

#include <sstream>

namespace crono::sim {

const char*
componentName(Component c)
{
    switch (c) {
      case Component::compute:
        return "Compute";
      case Component::l1ToL2Home:
        return "L1Cache-L2Home";
      case Component::l2HomeWaiting:
        return "L2Home-Waiting";
      case Component::l2HomeSharers:
        return "L2Home-Sharers";
      case Component::l2HomeOffChip:
        return "L2Home-OffChip";
      case Component::synchronization:
        return "Synchronization";
    }
    return "?";
}

double
Breakdown::total() const
{
    double sum = 0;
    for (double c : cycles) {
        sum += c;
    }
    return sum;
}

Breakdown&
Breakdown::operator+=(const Breakdown& other)
{
    for (int i = 0; i < kNumComponents; ++i) {
        cycles[i] += other.cycles[i];
    }
    return *this;
}

Breakdown
Breakdown::normalized() const
{
    Breakdown out;
    const double t = total();
    if (t > 0) {
        for (int i = 0; i < kNumComponents; ++i) {
            out.cycles[i] = cycles[i] / t;
        }
    }
    return out;
}

CacheStats&
CacheStats::operator+=(const CacheStats& o)
{
    accesses += o.accesses;
    hits += o.hits;
    for (int i = 0; i < 3; ++i) {
        misses[i] += o.misses[i];
    }
    return *this;
}

NetworkStats&
NetworkStats::operator+=(const NetworkStats& o)
{
    messages += o.messages;
    flits += o.flits;
    flit_hops += o.flit_hops;
    contention_cycles += o.contention_cycles;
    return *this;
}

DramStats&
DramStats::operator+=(const DramStats& o)
{
    accesses += o.accesses;
    queue_cycles += o.queue_cycles;
    return *this;
}

DirectoryStats&
DirectoryStats::operator+=(const DirectoryStats& o)
{
    lookups += o.lookups;
    invalidations += o.invalidations;
    broadcasts += o.broadcasts;
    write_backs += o.write_backs;
    return *this;
}

EnergyBreakdown&
EnergyBreakdown::operator+=(const EnergyBreakdown& o)
{
    l1i += o.l1i;
    l1d += o.l1d;
    l2 += o.l2;
    directory += o.directory;
    router += o.router;
    link += o.link;
    dram += o.dram;
    return *this;
}

std::string
SimRunStats::describe() const
{
    std::ostringstream os;
    os << "completion cycles: " << completion_cycles << "\n";
    const Breakdown n = breakdown.normalized();
    os << "breakdown:";
    for (int i = 0; i < kNumComponents; ++i) {
        os << ' ' << componentName(static_cast<Component>(i)) << '='
           << n.cycles[i];
    }
    os << "\nL1D: accesses=" << l1d.accesses << " hits=" << l1d.hits
       << " cold=" << l1d.misses[0] << " capacity=" << l1d.misses[1]
       << " sharing=" << l1d.misses[2]
       << "\nL2: accesses=" << l2.accesses << " misses=" << l2.totalMisses()
       << " hierarchy-miss-rate=" << cacheHierarchyMissRate()
       << "\nnetwork: msgs=" << network.messages
       << " flit-hops=" << network.flit_hops
       << " contention=" << network.contention_cycles
       << "\ndram: accesses=" << dram.accesses
       << " queue-cycles=" << dram.queue_cycles
       << "\ndirectory: invalidations=" << directory.invalidations
       << " broadcasts=" << directory.broadcasts << "\n";
    return os.str();
}

} // namespace crono::sim

/**
 * @file
 * Synchronization objects for simulated threads.
 *
 * A SimMutex carries a modeled memory word: every acquire/release
 * performs an RMW access on that word's cache line, so lock transfer
 * generates real coherence traffic (invalidations, sharing misses,
 * network messages) in the simulated hierarchy — the paper's
 * "synchronization and data sharing" bottleneck emerges from the
 * model rather than being asserted. Blocking time is charged to the
 * Synchronization component by the Machine.
 */

#ifndef CRONO_SIM_SYNC_H_
#define CRONO_SIM_SYNC_H_

#include <cstdint>
#include <vector>

#include "common/aligned.h"

namespace crono::sim {

/** Mutex for simulated threads; the Machine implements its semantics. */
struct SimMutex {
    /** Modeled lock word; its address anchors the coherence traffic. */
    alignas(kCacheLineBytes) std::uint64_t word = 0;

    bool held = false;
    int holder = -1;              ///< owning fiber id
    std::vector<int> waiters;     ///< FIFO of blocked fiber ids

    SimMutex() = default;
    SimMutex(const SimMutex&) = delete;
    SimMutex& operator=(const SimMutex&) = delete;
    SimMutex(SimMutex&&) = delete;
};

} // namespace crono::sim

#endif // CRONO_SIM_SYNC_H_

#include "sim/fiber.h"

#include "common/macros.h"

namespace crono::sim {

namespace {

// The fiber being resumed right now. The simulator is single-host-
// threaded by construction, but thread_local keeps this safe even if
// two Machines run on different host threads.
thread_local Fiber* t_current_fiber = nullptr;

} // namespace

Fiber::Fiber(std::function<void()> entry, std::size_t stack_bytes)
    : entry_(std::move(entry)), stack_(new char[stack_bytes])
{
    CRONO_REQUIRE(stack_bytes >= 64 * 1024, "fiber stack too small");
    CRONO_ASSERT(getcontext(&context_) == 0, "getcontext failed");
    context_.uc_stack.ss_sp = stack_.get();
    context_.uc_stack.ss_size = stack_bytes;
    context_.uc_link = nullptr; // trampoline switches back explicitly
    makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline),
                0);
}

Fiber::~Fiber()
{
    // A fiber destroyed while suspended simply abandons its stack
    // frame; the owning Machine only destroys fibers after run() has
    // completed them, so this is a no-op in practice.
}

void
Fiber::resume()
{
    CRONO_ASSERT(!finished_, "resume of finished fiber");
    Fiber* previous = t_current_fiber;
    t_current_fiber = this;
    started_ = true;
    CRONO_ASSERT(swapcontext(&hostContext_, &context_) == 0,
                 "swapcontext into fiber failed");
    t_current_fiber = previous;
}

void
Fiber::yieldToHost()
{
    CRONO_ASSERT(t_current_fiber == this, "yield from foreign context");
    CRONO_ASSERT(swapcontext(&context_, &hostContext_) == 0,
                 "swapcontext to host failed");
}

void
Fiber::trampoline()
{
    Fiber* self = t_current_fiber;
    CRONO_ASSERT(self != nullptr, "trampoline without current fiber");
    self->entry_();
    self->finished_ = true;
    // Final switch back to the host; never returns here again.
    CRONO_ASSERT(swapcontext(&self->context_, &self->hostContext_) == 0,
                 "final swapcontext failed");
}

} // namespace crono::sim

/**
 * @file
 * Set-associative cache model with true-LRU replacement.
 *
 * Purely structural: tracks which lines are present in which MESI
 * state and decides evictions. Timing, coherence actions and miss
 * classification live in the memory system that owns the caches.
 */

#ifndef CRONO_SIM_CACHE_H_
#define CRONO_SIM_CACHE_H_

#include <cstdint>
#include <vector>

#include "sim/config.h"

namespace crono::sim {

/** MESI state of a cached line. */
enum class LineState : std::uint8_t {
    invalid = 0,
    shared,
    exclusive,
    modified,
};

/** Cache-line-address type: byte address >> log2(line size). */
using LineAddr = std::uint64_t;

/**
 * One cache (an L1 or one NUCA L2 slice).
 *
 * Lookups update LRU; insertions evict the LRU way of the set and
 * report what was evicted so the owner can handle write-backs and
 * inclusive invalidations.
 */
class Cache {
  public:
    /** Result of insert(): the displaced victim, if any. */
    struct Victim {
        bool valid = false;
        LineAddr line = 0;
        LineState state = LineState::invalid;
    };

    Cache(const CacheConfig& cfg, std::uint32_t line_bytes);

    /** Number of sets. */
    std::uint32_t numSets() const { return numSets_; }

    /**
     * Look up @p line; bumps LRU on hit.
     * @return current state, or LineState::invalid on miss.
     */
    LineState lookup(LineAddr line);

    /** Peek at state without touching LRU. */
    LineState peek(LineAddr line) const;

    /**
     * Insert @p line in @p state, evicting the set's LRU way if the
     * set is full. @pre line is not already present.
     */
    Victim insert(LineAddr line, LineState state);

    /** Change the state of a present line. @pre present. */
    void setState(LineAddr line, LineState state);

    /** Drop @p line if present; returns its prior state. */
    LineState invalidate(LineAddr line);

    /** Number of valid lines currently held (O(capacity), for tests). */
    std::size_t occupancy() const;

  private:
    struct Way {
        LineAddr line = 0;
        std::uint64_t lru = 0;
        LineState state = LineState::invalid;
    };

    Way* find(LineAddr line);
    const Way* find(LineAddr line) const;
    std::vector<Way>& setOf(LineAddr line);

    std::vector<std::vector<Way>> sets_;
    std::uint64_t useClock_ = 0;
    std::uint32_t numSets_;
};

} // namespace crono::sim

#endif // CRONO_SIM_CACHE_H_

#include "sim/noc.h"

#include <algorithm>
#include <cstdlib>

#include "common/macros.h"

namespace crono::sim {

Mesh::Mesh(const Config& cfg)
    : routing_(cfg.routing), width_(cfg.meshWidth()),
      numCores_(cfg.num_cores), hopCycles_(cfg.hop_cycles),
      flitBits_(cfg.flit_bits)
{
    // 4 outgoing directions per node (E/W/S/N), flattened; each link
    // carries a ring of time-windowed flit counters for contention.
    const std::size_t links =
        static_cast<std::size_t>(width_) * width_ * 4;
    windows_.assign(links * kWindowRing, Window{});
}

int
Mesh::hops(int src, int dst) const
{
    const int sx = src % width_, sy = src / width_;
    const int dx = dst % width_, dy = dst / width_;
    return std::abs(sx - dx) + std::abs(sy - dy);
}

std::size_t
Mesh::linkIndex(int node, int next) const
{
    const int diff = next - node;
    int dir;
    if (diff == 1) {
        dir = 0; // east
    } else if (diff == -1) {
        dir = 1; // west
    } else if (diff == width_) {
        dir = 2; // south
    } else {
        CRONO_ASSERT(diff == -width_, "non-adjacent mesh hop");
        dir = 3; // north
    }
    return static_cast<std::size_t>(node) * 4 + dir;
}

std::uint64_t
Mesh::linkDelay(std::size_t link, std::uint64_t t, std::uint32_t flits)
{
    // Windowed contention: each link serializes one flit per cycle, so
    // a W-cycle window carries at most W flits. A crossing records its
    // flits in the window of its timestamp; flits beyond the window's
    // capacity are delayed past the end of the window. This stays
    // causally stable under the scheduler's bounded timestamp skew
    // (unlike a next-free-time reservation, which lets a future-dated
    // message starve earlier-dated ones).
    const std::uint64_t epoch = t / kWindowCycles;
    Window& w = windows_[link * kWindowRing + (epoch % kWindowRing)];
    if (w.epoch != epoch) {
        w.epoch = epoch;
        w.flits = 0;
    }
    const std::uint64_t occupied = w.flits;
    w.flits += flits;
    if (occupied + flits <= kWindowCycles) {
        return 0;
    }
    // Overflow: this message queues behind the window's excess.
    return occupied + flits - kWindowCycles;
}

std::uint64_t
Mesh::send(int src, int dst, std::uint32_t payload_bits,
           std::uint64_t depart_time)
{
    CRONO_ASSERT(src >= 0 && src < numCores_ && dst >= 0 &&
                     dst < numCores_,
                 "mesh endpoint out of range");
    if (src == dst) {
        return depart_time; // local: never enters the network
    }
    const std::uint32_t total_bits = payload_bits + flitBits_; // + header
    const std::uint32_t flits = (total_bits + flitBits_ - 1) / flitBits_;

    ++stats_.messages;
    stats_.flits += flits;

    // Dimension-ordered walk; O1TURN alternates the leading
    // dimension per message, spreading load over both minimal routes.
    bool x_first = routing_ != Routing::yx;
    if (routing_ == Routing::o1turn) {
        x_first = (messageParity_++ % 2) == 0;
    }
    std::uint64_t t = depart_time;
    int node = src;
    const int dx = dst % width_, dy = dst / width_;
    while (node != dst) {
        int next;
        const int nx = node % width_, ny = node / width_;
        const bool move_x =
            nx != dx && (x_first || ny == dy);
        if (move_x) {
            next = node + (dx > nx ? 1 : -1);
        } else {
            next = node + (dy > ny ? width_ : -width_);
        }
        const std::size_t link = linkIndex(node, next);
        const std::uint64_t queue = linkDelay(link, t, flits);
        stats_.contention_cycles += queue;
        t += queue + hopCycles_;
        stats_.flit_hops += flits;
        node = next;
    }
    // Tail flits arrive behind the head.
    return t + (flits - 1);
}

} // namespace crono::sim

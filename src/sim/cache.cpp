#include "sim/cache.h"

#include "common/macros.h"

namespace crono::sim {

Cache::Cache(const CacheConfig& cfg, std::uint32_t line_bytes)
    : numSets_(cfg.numSets(line_bytes))
{
    CRONO_REQUIRE(numSets_ >= 1, "cache must have >= 1 set");
    CRONO_REQUIRE((numSets_ & (numSets_ - 1)) == 0,
                  "number of sets must be a power of two");
    sets_.resize(numSets_);
    for (auto& s : sets_) {
        s.resize(cfg.associativity);
    }
}

std::vector<Cache::Way>&
Cache::setOf(LineAddr line)
{
    return sets_[line & (numSets_ - 1)];
}

Cache::Way*
Cache::find(LineAddr line)
{
    for (Way& w : setOf(line)) {
        if (w.state != LineState::invalid && w.line == line) {
            return &w;
        }
    }
    return nullptr;
}

const Cache::Way*
Cache::find(LineAddr line) const
{
    return const_cast<Cache*>(this)->find(line);
}

LineState
Cache::lookup(LineAddr line)
{
    Way* w = find(line);
    if (w == nullptr) {
        return LineState::invalid;
    }
    w->lru = ++useClock_;
    return w->state;
}

LineState
Cache::peek(LineAddr line) const
{
    const Way* w = find(line);
    return w ? w->state : LineState::invalid;
}

Cache::Victim
Cache::insert(LineAddr line, LineState state)
{
    CRONO_ASSERT(state != LineState::invalid, "cannot insert invalid line");
    CRONO_ASSERT(find(line) == nullptr, "double insert of cached line");
    auto& set = setOf(line);

    Way* target = nullptr;
    for (Way& w : set) {
        if (w.state == LineState::invalid) {
            target = &w;
            break;
        }
        if (target == nullptr || w.lru < target->lru) {
            target = &w;
        }
    }

    Victim victim;
    if (target->state != LineState::invalid) {
        victim = {true, target->line, target->state};
    }
    target->line = line;
    target->state = state;
    target->lru = ++useClock_;
    return victim;
}

void
Cache::setState(LineAddr line, LineState state)
{
    Way* w = find(line);
    CRONO_ASSERT(w != nullptr, "setState on absent line");
    CRONO_ASSERT(state != LineState::invalid,
                 "use invalidate() to drop a line");
    w->state = state;
}

LineState
Cache::invalidate(LineAddr line)
{
    Way* w = find(line);
    if (w == nullptr) {
        return LineState::invalid;
    }
    const LineState prior = w->state;
    w->state = LineState::invalid;
    return prior;
}

std::size_t
Cache::occupancy() const
{
    std::size_t n = 0;
    for (const auto& set : sets_) {
        for (const Way& w : set) {
            if (w.state != LineState::invalid) {
                ++n;
            }
        }
    }
    return n;
}

} // namespace crono::sim

/**
 * @file
 * Observation interface over the simulated machine's shared-memory
 * and synchronization events.
 *
 * Every shared access in a simulated build already flows through
 * SimCtx::read/write/fetchAdd and the Machine's lock/barrier
 * primitives — a free, complete interception point for dynamic
 * analyses that host-level tools cannot provide (TSan cannot see
 * fibers multiplexed on one host thread; it observes a single OS
 * thread whose stack "jumps"). An AccessObserver installed via
 * Machine::setObserver receives one callback per modeled event, in
 * the exact order the fibers execute them.
 *
 * Contract (both sides):
 *  - Callbacks fire on the host thread, never concurrently.
 *  - The observer must not touch the machine: it sees addresses and
 *    thread ids only, and the Machine charges no cycles for the
 *    callbacks, so SimRunStats stays bit-for-bit identical with an
 *    observer installed or not (race_detector_test pins this).
 *  - onRegionBegin is raised by Machine::run before any fiber runs;
 *    per-region analyses reset there. Thread start/finish edges need
 *    no callbacks of their own: the host forks and joins the region
 *    sequentially, so nothing an analysis could race with exists
 *    outside [onRegionBegin, run() returning].
 *  - Lock identity is the SimMutex object's address; atomic events
 *    (fetchAdd, readAtomic) carry the data word's address.
 *
 * The interface lives in sim (not analysis) so the Machine depends
 * only on its own layer; crono_analysis implements it one level up.
 */

#ifndef CRONO_SIM_OBSERVER_H_
#define CRONO_SIM_OBSERVER_H_

#include <cstdint>

namespace crono::sim {

/** Receiver for the simulated machine's shared-memory event stream. */
class AccessObserver {
  public:
    virtual ~AccessObserver() = default;

    /** A parallel region of @p nthreads software threads is starting. */
    virtual void onRegionBegin(int nthreads) = 0;

    /** Plain shared load by thread @p tid (SimCtx::read). */
    virtual void onSharedRead(int tid, std::uintptr_t addr,
                              std::uint32_t size) = 0;

    /** Plain shared store by thread @p tid (SimCtx::write). */
    virtual void onSharedWrite(int tid, std::uintptr_t addr,
                               std::uint32_t size) = 0;

    /** Atomic read-modify-write by thread @p tid (SimCtx::fetchAdd). */
    virtual void onAtomicRmw(int tid, std::uintptr_t addr,
                             std::uint32_t size) = 0;

    /**
     * Declared-racy atomic load by thread @p tid (SimCtx::readAtomic):
     * an intentional unordered probe whose raciness the kernel
     * tolerates by construction (see core/context.h).
     */
    virtual void onAtomicLoad(int tid, std::uintptr_t addr,
                              std::uint32_t size) = 0;

    /** Thread @p tid acquired the SimMutex at @p lock. */
    virtual void onLockAcquire(int tid, std::uintptr_t lock) = 0;

    /** Thread @p tid is releasing the SimMutex at @p lock. */
    virtual void onLockRelease(int tid, std::uintptr_t lock) = 0;

    /**
     * Thread @p tid arrived at the region barrier. The Machine raises
     * exactly nthreads arrivals per barrier episode; the observer can
     * count them itself to find the release point.
     */
    virtual void onBarrierArrive(int tid) = 0;
};

} // namespace crono::sim

#endif // CRONO_SIM_OBSERVER_H_

/**
 * @file
 * Simulation statistics: the completion-time breakdown, cache miss
 * classification, network/DRAM counters and energy breakdown the
 * paper's characterization (Section IV-D/F) is built on.
 */

#ifndef CRONO_SIM_STATS_H_
#define CRONO_SIM_STATS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace crono::sim {

/** Completion-time components (Section IV-D of the paper). */
enum class Component : int {
    compute = 0,       ///< pipeline + L1 hits
    l1ToL2Home,        ///< L1 miss round trip to L2 home (net + L2)
    l2HomeWaiting,     ///< queueing on a busy line at the home slice
    l2HomeSharers,     ///< invalidation / write-back round trips
    l2HomeOffChip,     ///< DRAM access incl. controller queueing
    synchronization,   ///< lock and barrier wait
};

/** Number of Component values. */
inline constexpr int kNumComponents = 6;

/** Printable component name. */
const char* componentName(Component c);

/** Per-core (or aggregated) cycle breakdown. */
struct Breakdown {
    std::array<double, kNumComponents> cycles{};

    double& operator[](Component c) { return cycles[static_cast<int>(c)]; }
    double operator[](Component c) const
    {
        return cycles[static_cast<int>(c)];
    }

    double total() const;
    Breakdown& operator+=(const Breakdown& other);
    /** Each component divided by total (all zero if total is 0). */
    Breakdown normalized() const;
};

/** L1 miss classification (Section IV-D). */
enum class MissClass : int {
    cold = 0,      ///< line never previously cached here
    capacity,      ///< line evicted earlier by replacement
    sharing,       ///< line invalidated/downgraded by another core
};

/** Cache access counters with miss classification. */
struct CacheStats {
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::array<std::uint64_t, 3> misses{}; // by MissClass

    std::uint64_t totalMisses() const
    {
        return misses[0] + misses[1] + misses[2];
    }
    double missRate() const
    {
        return accesses ? static_cast<double>(totalMisses()) / accesses : 0.0;
    }
    CacheStats& operator+=(const CacheStats& o);
};

/** On-chip network counters. */
struct NetworkStats {
    std::uint64_t messages = 0;
    std::uint64_t flits = 0;
    std::uint64_t flit_hops = 0;     ///< flits x links traversed
    std::uint64_t contention_cycles = 0;
    NetworkStats& operator+=(const NetworkStats& o);
};

/** DRAM counters. */
struct DramStats {
    std::uint64_t accesses = 0;
    std::uint64_t queue_cycles = 0;
    DramStats& operator+=(const DramStats& o);
};

/** Directory protocol counters. */
struct DirectoryStats {
    std::uint64_t lookups = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t broadcasts = 0;      ///< ACKwise overflow broadcasts
    std::uint64_t write_backs = 0;
    DirectoryStats& operator+=(const DirectoryStats& o);
};

/** Dynamic energy, one bucket per Figure 6 bar segment. */
struct EnergyBreakdown {
    double l1i = 0, l1d = 0, l2 = 0, directory = 0;
    double router = 0, link = 0, dram = 0;

    double total() const
    {
        return l1i + l1d + l2 + directory + router + link + dram;
    }
    EnergyBreakdown& operator+=(const EnergyBreakdown& o);
};

/** Everything measured in one simulated parallel region. */
struct SimRunStats {
    /** Simulated completion time of the region (max over threads). */
    std::uint64_t completion_cycles = 0;
    /** Cycle breakdown summed over all threads. */
    Breakdown breakdown;
    /** Per-thread instruction-count proxies (for Variability). */
    std::vector<std::uint64_t> thread_ops;

    CacheStats l1d;                   ///< all cores combined
    std::uint64_t l1i_accesses = 0;
    CacheStats l2;                    ///< all slices combined
    NetworkStats network;
    DramStats dram;
    DirectoryStats directory;
    EnergyBreakdown energy;

    /**
     * Paper's "cache hierarchy miss rate": L2 misses / L1-D accesses
     * (in percent when multiplied by 100).
     */
    double cacheHierarchyMissRate() const
    {
        return l1d.accesses
                   ? static_cast<double>(l2.totalMisses()) / l1d.accesses
                   : 0.0;
    }

    /** Multi-line report of the run. */
    std::string describe() const;
};

} // namespace crono::sim

#endif // CRONO_SIM_STATS_H_

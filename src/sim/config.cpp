#include "sim/config.h"

#include <cmath>
#include <sstream>

namespace crono::sim {

Config
Config::futuristic256(CoreType core)
{
    Config c;
    c.core_type = core;
    c.name = core == CoreType::inOrder ? "futuristic-256-inorder"
                                       : "futuristic-256-ooo";
    return c;
}

Config
Config::realMachine()
{
    Config c;
    c.name = "i7-4790-like";
    c.num_cores = 8; // 4 cores x 2-way hyperthreading
    c.core_type = CoreType::outOfOrder;
    c.l2 = CacheConfig{1024 * 1024, 16, 12}; // 8 MB shared / 8 contexts
    c.num_mem_controllers = 2;
    c.dram_latency_cycles = 60;
    c.dram_bytes_per_cycle = 12.0;
    c.hop_cycles = 1; // small on-die interconnect
    // Software threads beyond the 8 contexts are timesliced; slices
    // follow the scheduler quantum with a visible per-switch cost.
    c.scheduler_quantum = 2000;
    c.context_switch_cycles = 200;
    return c;
}

int
Config::meshWidth() const
{
    int w = 1;
    while (w * w < num_cores) {
        ++w;
    }
    return w;
}

std::string
Config::describe() const
{
    std::ostringstream os;
    os << "Configuration: " << name << "\n"
       << "  cores                " << num_cores << " @ 1 GHz, "
       << (core_type == CoreType::inOrder ? "in-order" : "out-of-order")
       << " single-issue\n";
    if (core_type == CoreType::outOfOrder) {
        os << "  reorder buffer       " << ooo.rob_size << "\n"
           << "  load/store queue     " << ooo.load_queue << "/"
           << ooo.store_queue << "\n";
    }
    os << "  L1-I per core        " << l1i.size_bytes / 1024 << " KB, "
       << l1i.associativity << "-way, " << l1i.access_cycles << " cycle\n"
       << "  L1-D per core        " << l1d.size_bytes / 1024 << " KB, "
       << l1d.associativity << "-way, " << l1d.access_cycles << " cycle\n"
       << "  L2 per core          " << l2.size_bytes / 1024 << " KB, "
       << l2.associativity << "-way, " << l2.access_cycles
       << " cycle, inclusive NUCA\n"
       << "  cache line           " << line_bytes << " bytes\n"
       << "  directory            invalidation MESI, ACKwise"
       << ackwise_pointers << "\n"
       << "  memory controllers   " << num_mem_controllers << " x "
       << dram_bytes_per_cycle << " GB/s, " << dram_latency_cycles
       << " ns DRAM\n"
       << "  network              " << meshWidth() << "x" << meshWidth()
       << " mesh, XY routing, " << hop_cycles << "-cycle hops, "
       << flit_bits << "-bit flits, link contention\n";
    return os.str();
}

} // namespace crono::sim

/**
 * @file
 * Per-thread core timing models.
 *
 * Both models are single-issue (Table II). The in-order model stalls
 * the pipeline for the full latency of every memory access. The
 * out-of-order model lets memory latency overlap with subsequent
 * instructions, bounded by the reorder-buffer and load/store-queue
 * windows: an instruction cannot issue while an instruction ROB or
 * more positions older is still outstanding (and at most LQ loads /
 * SQ stores may be in flight), so isolated misses hide completely
 * while bursts of misses expose stalls — reproducing the paper's
 * finding that OOO cores cannot hide on-chip communication in graph
 * workloads.
 */

#ifndef CRONO_SIM_CORE_MODEL_H_
#define CRONO_SIM_CORE_MODEL_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "sim/config.h"
#include "sim/stats.h"

namespace crono::sim {

/** Latency decomposition of one memory access beyond the L1 hit. */
struct AccessLatency {
    std::uint64_t l1_to_l2 = 0;
    std::uint64_t waiting = 0;
    std::uint64_t sharers = 0;
    std::uint64_t offchip = 0;

    std::uint64_t
    total() const
    {
        return l1_to_l2 + waiting + sharers + offchip;
    }
};

/** Abstract per-thread pipeline clock with component accounting. */
class CoreModel {
  public:
    virtual ~CoreModel() = default;

    /** Current local cycle of this thread. */
    std::uint64_t now() const { return now_; }

    /** Accumulated cycle breakdown of this thread. */
    const Breakdown& breakdown() const { return bd_; }

    /** Advance by @p n single-cycle compute instructions. */
    virtual void
    addCompute(std::uint64_t n)
    {
        now_ += n;
        bd_[Component::compute] += static_cast<double>(n);
    }

    /**
     * Issue one memory instruction whose hierarchy latency beyond the
     * 1-cycle L1 access is @p lat.
     */
    virtual void addAccess(bool is_store, const AccessLatency& lat) = 0;

    /** Wait for all outstanding memory operations (fence semantics). */
    virtual void drain() {}

    /**
     * Block until @p until, charging the gap to @p component
     * (synchronization wait, timesharing delay, ...).
     */
    void
    waitUntil(std::uint64_t until, Component component)
    {
        if (until > now_) {
            bd_[component] += static_cast<double>(until - now_);
            now_ = until;
        }
    }

    /** Factory for the configured model type. */
    static std::unique_ptr<CoreModel> create(const Config& cfg);

  protected:
    void
    chargeAccess(const AccessLatency& lat, double scale)
    {
        bd_[Component::l1ToL2Home] += scale * lat.l1_to_l2;
        bd_[Component::l2HomeWaiting] += scale * lat.waiting;
        bd_[Component::l2HomeSharers] += scale * lat.sharers;
        bd_[Component::l2HomeOffChip] += scale * lat.offchip;
    }

    std::uint64_t now_ = 0;
    Breakdown bd_;
};

/** Stall-on-use single-issue pipeline. */
class InOrderCore final : public CoreModel {
  public:
    void
    addAccess(bool, const AccessLatency& lat) override
    {
        addCompute(1);            // the L1 access / pipeline slot
        now_ += lat.total();
        chargeAccess(lat, 1.0);
    }
};

/** ROB/LSQ-windowed overlap model. */
class OutOfOrderCore final : public CoreModel {
  public:
    explicit OutOfOrderCore(const OooConfig& cfg);

    void addCompute(std::uint64_t n) override;
    void addAccess(bool is_store, const AccessLatency& lat) override;
    void drain() override;

    /** Memory ops not yet retired (exposed for tests). */
    std::size_t inflightOps() const { return inflight_.size(); }

  private:
    /** One outstanding memory instruction. */
    struct Slot {
        std::uint64_t seq;
        std::uint64_t completion;
        AccessLatency lat; // component mix for stall attribution
        bool is_store;
    };

    /** Retire ops that left the ROB window, stalling if incomplete. */
    std::uint64_t retireBeyondWindow(std::uint64_t issue);
    /**
     * Enforce LQ/SQ occupancy at @p issue: entries allocate and free
     * in program order, so a new load waits for the load LQ positions
     * earlier (a ring buffer lookup, O(1)).
     */
    std::uint64_t enforceQueue(std::vector<Slot>& ring,
                               std::uint64_t& seq, std::uint64_t issue,
                               const AccessLatency& lat);
    /** Charge @p stall cycles in @p blocker's component proportions. */
    void chargeStall(const Slot& blocker, std::uint64_t stall);

    std::deque<Slot> inflight_;       // ROB window (memory ops only)
    std::vector<Slot> loadRing_;      // LQ, indexed by loadSeq_ % LQ
    std::vector<Slot> storeRing_;     // SQ, indexed by storeSeq_ % SQ
    std::uint64_t seq_ = 0;
    std::uint64_t loadSeq_ = 0;
    std::uint64_t storeSeq_ = 0;
    std::uint64_t robCapacity_;
};

} // namespace crono::sim

#endif // CRONO_SIM_CORE_MODEL_H_

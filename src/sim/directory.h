/**
 * @file
 * ACKwise-k sharer tracking (Kurian et al., the directory the paper's
 * Table II configures as "ACKwise4").
 *
 * Up to k sharers are tracked by precise core pointers. When an
 * (k+1)-th sharer joins, the entry switches to overflow mode: only
 * the sharer *count* is maintained, and invalidations must broadcast
 * to every core, collecting acks counted against that total.
 */

#ifndef CRONO_SIM_DIRECTORY_H_
#define CRONO_SIM_DIRECTORY_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace crono::sim {

/** Maximum supported precise pointers per entry. */
inline constexpr int kMaxAckwisePointers = 8;

/** Sharer set of one directory entry under the ACKwise-k scheme. */
class AckwiseSharers {
  public:
    explicit AckwiseSharers(int k) : k_(k)
    {
        CRONO_ASSERT(k >= 1 && k <= kMaxAckwisePointers,
                     "ACKwise pointer count out of range");
        pointers_.fill(-1);
    }

    /** Number of sharers (exact even in overflow mode). */
    int count() const { return count_; }

    /** True once precise identities have been lost. */
    bool overflowed() const { return overflowed_; }

    bool empty() const { return count_ == 0; }

    /**
     * Record @p core as a sharer.
     * @pre core is not already a precise pointer (callers look up
     *      their own L1 first); in overflow mode duplicates cannot be
     *      detected and the caller must not add one.
     */
    void
    add(int core)
    {
        if (!overflowed_) {
            for (int i = 0; i < k_; ++i) {
                if (pointers_[i] < 0) {
                    pointers_[i] = core;
                    ++count_;
                    return;
                }
            }
            // All k pointers in use: degrade to count-only tracking.
            overflowed_ = true;
        }
        ++count_;
    }

    /**
     * Remove @p core if trackable. In overflow mode only the count is
     * decremented; identities stay unknown until the set empties.
     */
    void
    remove(int core)
    {
        CRONO_ASSERT(count_ > 0, "remove from empty sharer set");
        if (!overflowed_) {
            for (int i = 0; i < k_; ++i) {
                if (pointers_[i] == core) {
                    pointers_[i] = -1;
                    --count_;
                    return;
                }
            }
            CRONO_ASSERT(false, "precise sharer not found");
        }
        if (--count_ == 0) {
            clear();
        }
    }

    /** True if @p core is known to share. Only precise when tracked. */
    bool
    contains(int core) const
    {
        if (overflowed_) {
            return count_ > 0; // conservative: anyone may share
        }
        for (int i = 0; i < k_; ++i) {
            if (pointers_[i] == core) {
                return true;
            }
        }
        return false;
    }

    /** Precise pointers (valid only when !overflowed()). */
    std::vector<int>
    pointers() const
    {
        std::vector<int> out;
        for (int i = 0; i < k_; ++i) {
            if (pointers_[i] >= 0) {
                out.push_back(pointers_[i]);
            }
        }
        return out;
    }

    void
    clear()
    {
        pointers_.fill(-1);
        count_ = 0;
        overflowed_ = false;
    }

  private:
    std::array<int, kMaxAckwisePointers> pointers_;
    int k_;
    int count_ = 0;
    bool overflowed_ = false;
};

/** Directory-side view of one line's global coherence state. */
enum class DirState : std::uint8_t {
    uncached = 0,  ///< no L1 holds the line
    shared,        ///< >= 1 L1 in S
    exclusive,     ///< exactly one L1 owner in E or M
};

/** Directory entry stored alongside each L2 line. */
struct DirEntry {
    explicit DirEntry(int k) : sharers(k) {}

    DirState state = DirState::uncached;
    AckwiseSharers sharers;
    int owner = -1;  ///< valid when state == exclusive
};

} // namespace crono::sim

#endif // CRONO_SIM_DIRECTORY_H_

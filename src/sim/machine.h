/**
 * @file
 * The simulated multicore: fibers + scheduler + memory system.
 *
 * Machine executes a parallel region the way Graphite does — direct
 * execution with per-thread local clocks and lax synchronization —
 * but on cooperative fibers multiplexed over one host thread, which
 * makes every simulation bit-for-bit deterministic:
 *
 *  - each software thread runs on its own fiber, pinned to physical
 *    core (tid % num_cores);
 *  - the scheduler always resumes the ready fiber with the smallest
 *    local clock; a running fiber yields whenever it gets more than
 *    `scheduler_quantum` cycles ahead of the next ready fiber, so
 *    accesses hit the shared memory model in near-timestamp order;
 *  - every read/write/RMW goes through MemorySystem and advances the
 *    thread's CoreModel clock; lock/barrier blocking charges the
 *    Synchronization component;
 *  - when more threads than cores exist (the i7-style configuration),
 *    fibers sharing a core serialize on the core's clock and pay a
 *    context-switch penalty, reproducing the >8-thread slowdown of
 *    the paper's Figure 9.
 */

#ifndef CRONO_SIM_MACHINE_H_
#define CRONO_SIM_MACHINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

// crono-lint: allow(include-layering): Machine embeds the Executor to schedule SPMD fibers over simulated cores — the sim→runtime coupling is the simulator's entry point and is documented in DESIGN.md
#include "runtime/executor.h"
#include "sim/config.h"
#include "sim/core_model.h"
#include "sim/energy.h"
#include "sim/fiber.h"
#include "sim/memory_system.h"
#include "sim/observer.h"
#include "sim/stats.h"
#include "sim/sync.h"

namespace crono::sim {

class Machine;

/**
 * ExecutionContext over the simulated machine (see
 * runtime/native_context.h for the concept). One per software thread.
 */
class SimCtx {
  public:
    using Mutex = SimMutex;

    /** Telemetry routes simulated contexts to the sim track domain. */
    static constexpr bool kSimulated = true;

    SimCtx(Machine* machine, int tid, int nthreads)
        : machine_(machine), tid_(tid), nthreads_(nthreads)
    {
    }

    int tid() const { return tid_; }
    int nthreads() const { return nthreads_; }

    template <class T>
    T read(const T& ref);

    template <class T>
    void write(T& ref, T value);

    template <class T>
    T fetchAdd(T& ref, T delta);

    /**
     * Declared-racy atomic load: modeled exactly like read() (same
     * cache/NoC traffic, same cycles), but classified as an atomic
     * probe for the analysis layer — the race detector orders it
     * after atomic publishes to the same address and excludes it
     * from race checks. Use only where core/context.h's contract
     * holds (a stale value must be correctness-neutral).
     */
    template <class T>
    T readAtomic(const T& ref);

    void work(std::uint64_t n);
    void lock(SimMutex& m);
    void unlock(SimMutex& m);
    void barrier();
    std::uint64_t ops() const;

    /**
     * This thread's local simulated clock in cycles (telemetry clock
     * domain). Does NOT model any instruction or memory access.
     */
    std::uint64_t timestamp() const;

  private:
    Machine* machine_;
    int tid_;
    int nthreads_;
};

/** A simulated multicore processor. */
class Machine {
  public:
    using Ctx = SimCtx;

    explicit Machine(const Config& cfg);
    ~Machine();

    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;

    const Config& config() const { return cfg_; }

    /**
     * Simulate one parallel region of @p nthreads software threads
     * executing @p body. Machine state (caches, clocks, statistics)
     * is reset at the start of each run.
     */
    SimRunStats run(int nthreads, std::function<void(SimCtx&)> body);

    /**
     * Executor-concept adapter (same shape as NativeExecutor): runs
     * the region and reports completion cycles as RunInfo::time.
     * Detailed statistics stay available via lastStats().
     */
    rt::RunInfo parallel(int nthreads, std::function<void(SimCtx&)> body);

    /** Full statistics of the most recent run. */
    const SimRunStats& lastStats() const { return lastStats_; }

    /** Energy constants used to fold counters into Figure 6 buckets. */
    EnergyParams& energyParams() { return energyParams_; }

    /**
     * Install (or, with nullptr, remove) an analysis observer. The
     * observer sees every shared access and sync event of subsequent
     * run() calls; it is charged no cycles, so the modeled statistics
     * are identical with or without one (see sim/observer.h).
     */
    void setObserver(AccessObserver* observer) { observer_ = observer; }

    AccessObserver* observer() const { return observer_; }

    // ---- Interface used by SimCtx (one fiber active at a time) ----

    /** Model a data access of the running thread. */
    void modelAccess(int tid, std::uintptr_t addr, std::uint32_t size,
                     bool is_store);
    /** Model @p n pure-compute instructions. */
    void modelWork(int tid, std::uint64_t n);
    void mutexLock(int tid, SimMutex& m);
    void mutexUnlock(int tid, SimMutex& m);
    void regionBarrier(int tid);
    std::uint64_t threadOps(int tid) const;
    /** Thread @p tid's local clock (telemetry; no modeling effect). */
    std::uint64_t threadNow(int tid) const
    {
        return threads_[tid].core->now();
    }

    // Analysis-observer forwarding (no modeling effect; see
    // sim/observer.h). Inline so the no-observer case is one
    // predictable branch on the access path.

    void
    observeRead(int tid, std::uintptr_t addr, std::uint32_t size)
    {
        if (observer_ != nullptr) {
            observer_->onSharedRead(tid, addr, size);
        }
    }

    void
    observeWrite(int tid, std::uintptr_t addr, std::uint32_t size)
    {
        if (observer_ != nullptr) {
            observer_->onSharedWrite(tid, addr, size);
        }
    }

    void
    observeRmw(int tid, std::uintptr_t addr, std::uint32_t size)
    {
        if (observer_ != nullptr) {
            observer_->onAtomicRmw(tid, addr, size);
        }
    }

    void
    observeAtomicLoad(int tid, std::uintptr_t addr, std::uint32_t size)
    {
        if (observer_ != nullptr) {
            observer_->onAtomicLoad(tid, addr, size);
        }
    }

  private:
    struct ThreadState {
        std::unique_ptr<CoreModel> core;
        std::unique_ptr<Fiber> fiber;
        std::uint64_t ops = 0;
        std::uint64_t wakeTime = 0;
        int physCore = 0;
        bool blocked = false;
    };

    struct PhysCore {
        std::uint64_t clock = 0;
        int lastThread = -1;
    };

    /** Yield if this thread ran past the lax-synchronization skew. */
    void maybeYield(int tid);
    /** Block the running thread until another calls wake(). */
    void blockCurrent(int tid);
    /** Make @p tid runnable again at simulated time @p when. */
    void wake(int tid, std::uint64_t when);
    /** Scheduler main loop; returns when every fiber finished. */
    void schedule();

    using ReadyEntry = std::pair<std::uint64_t, int>; // (time, tid)

    Config cfg_;
    EnergyParams energyParams_;
    AccessObserver* observer_ = nullptr;
    std::unique_ptr<MemorySystem> mem_;
    std::vector<ThreadState> threads_;
    std::vector<PhysCore> phys_;
    std::priority_queue<ReadyEntry, std::vector<ReadyEntry>,
                        std::greater<ReadyEntry>>
        ready_;
    SimRunStats lastStats_;

    // Region-wide barrier state.
    struct alignas(kCacheLineBytes) BarrierWord {
        std::uint64_t word = 0;
    };
    BarrierWord barrierWord_;
    std::vector<int> barrierWaiters_;
    int barrierArrived_ = 0;
    int nthreads_ = 0;
};

// ---- SimCtx inline implementations ----

// Observer calls come after modelAccess (whose maybeYield is the only
// scheduling point), adjacent to the actual data operation, so the
// observer sees events in the exact order the fibers perform them.

template <class T>
T
SimCtx::read(const T& ref)
{
    machine_->modelAccess(tid_, reinterpret_cast<std::uintptr_t>(&ref),
                          sizeof(T), /*is_store=*/false);
    machine_->observeRead(tid_, reinterpret_cast<std::uintptr_t>(&ref),
                          sizeof(T));
    return ref;
}

template <class T>
void
SimCtx::write(T& ref, T value)
{
    machine_->modelAccess(tid_, reinterpret_cast<std::uintptr_t>(&ref),
                          sizeof(T), /*is_store=*/true);
    machine_->observeWrite(tid_, reinterpret_cast<std::uintptr_t>(&ref),
                           sizeof(T));
    ref = value;
}

template <class T>
T
SimCtx::fetchAdd(T& ref, T delta)
{
    machine_->modelAccess(tid_, reinterpret_cast<std::uintptr_t>(&ref),
                          sizeof(T), /*is_store=*/true);
    machine_->observeRmw(tid_, reinterpret_cast<std::uintptr_t>(&ref),
                         sizeof(T));
    // Functionally atomic: fibers cannot interleave between these two
    // statements (the model call above is the only yield point).
    const T old = ref;
    ref = static_cast<T>(old + delta);
    return old;
}

template <class T>
T
SimCtx::readAtomic(const T& ref)
{
    machine_->modelAccess(tid_, reinterpret_cast<std::uintptr_t>(&ref),
                          sizeof(T), /*is_store=*/false);
    machine_->observeAtomicLoad(
        tid_, reinterpret_cast<std::uintptr_t>(&ref), sizeof(T));
    return ref;
}

inline void
SimCtx::work(std::uint64_t n)
{
    machine_->modelWork(tid_, n);
}

inline void
SimCtx::lock(SimMutex& m)
{
    machine_->mutexLock(tid_, m);
}

inline void
SimCtx::unlock(SimMutex& m)
{
    machine_->mutexUnlock(tid_, m);
}

inline void
SimCtx::barrier()
{
    machine_->regionBarrier(tid_);
}

inline std::uint64_t
SimCtx::ops() const
{
    return machine_->threadOps(tid_);
}

inline std::uint64_t
SimCtx::timestamp() const
{
    return machine_->threadNow(tid_);
}

} // namespace crono::sim

#endif // CRONO_SIM_MACHINE_H_

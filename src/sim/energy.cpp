#include "sim/energy.h"

namespace crono::sim {

EnergyBreakdown
computeEnergy(const EnergyParams& p, std::uint64_t l1i_accesses,
              const CacheStats& l1d, const CacheStats& l2,
              const DirectoryStats& dir, const NetworkStats& net,
              const DramStats& dram)
{
    EnergyBreakdown e;
    e.l1i = p.l1i_access_pj * static_cast<double>(l1i_accesses);
    e.l1d = p.l1d_access_pj * static_cast<double>(l1d.accesses);
    e.l2 = p.l2_access_pj * static_cast<double>(l2.accesses);
    e.directory = p.directory_access_pj * static_cast<double>(dir.lookups);
    e.router = p.router_per_flit_hop_pj * static_cast<double>(net.flit_hops);
    e.link = p.link_per_flit_hop_pj * static_cast<double>(net.flit_hops);
    e.dram = p.dram_access_pj * static_cast<double>(dram.accesses);
    return e;
}

} // namespace crono::sim

#include "sim/dram.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace crono::sim {

Dram::Dram(const Config& cfg)
    : numControllers_(static_cast<std::size_t>(cfg.num_mem_controllers)),
      latency_(cfg.dram_latency_cycles)
{
    CRONO_REQUIRE(cfg.num_mem_controllers >= 1, "need >= 1 controller");
    CRONO_REQUIRE(cfg.dram_bytes_per_cycle > 0, "bandwidth must be > 0");
    windows_.assign(numControllers_ * kWindowRing, Window{});
    serviceCycles_ = static_cast<std::uint32_t>(std::ceil(
        static_cast<double>(cfg.line_bytes) / cfg.dram_bytes_per_cycle));

    // Spread controllers evenly over the mesh nodes.
    nodes_.resize(cfg.num_mem_controllers);
    for (int i = 0; i < cfg.num_mem_controllers; ++i) {
        nodes_[i] = static_cast<int>(
            (static_cast<std::int64_t>(i) * cfg.num_cores) /
            cfg.num_mem_controllers);
    }
}

int
Dram::controllerNode(LineAddr line) const
{
    return nodes_[line % numControllers_];
}

std::uint64_t
Dram::access(LineAddr line, std::uint64_t start)
{
    // Windowed bandwidth model (see Mesh::linkDelay for rationale):
    // each controller serves kWindowCycles of service time per window;
    // overflow queues past the window.
    const std::size_t ctrl = line % numControllers_;
    const std::uint64_t epoch = start / kWindowCycles;
    Window& w = windows_[ctrl * kWindowRing + (epoch % kWindowRing)];
    if (w.epoch != epoch) {
        w.epoch = epoch;
        w.busy = 0;
    }
    const std::uint64_t occupied = w.busy;
    w.busy += serviceCycles_;
    std::uint64_t queue = 0;
    if (occupied + serviceCycles_ > kWindowCycles) {
        queue = occupied + serviceCycles_ - kWindowCycles;
    }
    stats_.queue_cycles += queue;
    ++stats_.accesses;
    return start + queue + latency_;
}

} // namespace crono::sim

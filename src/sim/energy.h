/**
 * @file
 * Dynamic energy model for the memory system (Section IV-D/V-F).
 *
 * The paper feeds event counts into DSENT (network routers/links) and
 * McPAT (caches + integrated directory) at the 11 nm node. We
 * reproduce the same structure with per-event energy constants in the
 * ballpark those tools report for 11 nm; Figure 6 plots *normalized*
 * breakdowns, so the relative magnitudes are what matter. The
 * constants are centralised here and overridable for sensitivity
 * studies.
 */

#ifndef CRONO_SIM_ENERGY_H_
#define CRONO_SIM_ENERGY_H_

#include "sim/stats.h"

namespace crono::sim {

/** Per-event dynamic energies, picojoules, ~11 nm class. */
struct EnergyParams {
    double l1i_access_pj = 5.0;
    double l1d_access_pj = 6.0;
    double l2_access_pj = 24.0;
    double directory_access_pj = 4.0;
    double router_per_flit_hop_pj = 8.0;
    double link_per_flit_hop_pj = 4.0;
    double dram_access_pj = 10240.0; // ~20 pJ/bit x 512-bit line
};

/**
 * Fold the run's event counters into the Figure 6 energy buckets.
 *
 * @param l1i_accesses  instruction-fetch count (all L1-I hits)
 * @param l1d           combined L1-D counters
 * @param l2            combined L2 counters
 * @param dir           directory counters (lookups include updates)
 * @param net           network counters (flit_hops drive router+link)
 * @param dram          DRAM counters
 */
EnergyBreakdown computeEnergy(const EnergyParams& params,
                              std::uint64_t l1i_accesses,
                              const CacheStats& l1d, const CacheStats& l2,
                              const DirectoryStats& dir,
                              const NetworkStats& net,
                              const DramStats& dram);

} // namespace crono::sim

#endif // CRONO_SIM_ENERGY_H_

/**
 * @file
 * Architectural configuration of the simulated multicore.
 *
 * Defaults reproduce Table II of the CRONO paper: 256 cores at 1 GHz,
 * single-issue pipelines (in-order or out-of-order memory), 32 KB
 * 4-way L1-I/L1-D (1 cycle), 256 KB 8-way inclusive NUCA L2 slice per
 * core (8 cycles), ACKwise-4 invalidation directory, 8 memory
 * controllers (5 GB/s, 100 ns), electrical 2-D mesh with XY routing,
 * 2-cycle hops, 64-bit flits and link-contention-only modeling.
 */

#ifndef CRONO_SIM_CONFIG_H_
#define CRONO_SIM_CONFIG_H_

#include <cstdint>
#include <string>

namespace crono::sim {

/** NoC routing policy (Section VII-B discusses oblivious routing). */
enum class Routing {
    xy,      ///< dimension-ordered X then Y (Table II default)
    yx,      ///< dimension-ordered Y then X
    o1turn,  ///< O1TURN-style oblivious: alternate XY/YX per message
};

/** Core timing model selector. */
enum class CoreType {
    inOrder,     ///< stall-on-use, one instruction per cycle
    outOfOrder,  ///< ROB/LSQ-windowed memory-latency overlap
};

/** Geometry and latency of one cache level. */
struct CacheConfig {
    std::uint32_t size_bytes;
    std::uint32_t associativity;
    std::uint32_t access_cycles;

    std::uint32_t numSets(std::uint32_t line_bytes) const
    {
        return size_bytes / (line_bytes * associativity);
    }
};

/** Out-of-order window sizes (Table II). */
struct OooConfig {
    std::uint32_t rob_size = 168;
    std::uint32_t load_queue = 64;
    std::uint32_t store_queue = 48;
};

/** Full machine description. */
struct Config {
    /** Human-readable preset name (for report headers). */
    std::string name = "futuristic-256";

    int num_cores = 256;
    CoreType core_type = CoreType::inOrder;
    OooConfig ooo;

    std::uint32_t line_bytes = 64;
    CacheConfig l1i{32 * 1024, 4, 1};
    CacheConfig l1d{32 * 1024, 4, 1};
    CacheConfig l2{256 * 1024, 8, 8};

    /** ACKwise-k precise sharer pointers before broadcast fallback. */
    int ackwise_pointers = 4;

    /**
     * Allow private L1 caching of data lines. Disabling it models the
     * "remote access only" extreme of the locality-aware coherence
     * discussion in Section VII-A: every access is serviced at the L2
     * home, eliminating invalidation traffic at the cost of network
     * round trips on every reference.
     */
    bool l1_allocation = true;

    /**
     * Locality-aware adaptive coherence (Kurian et al., discussed in
     * Section VII-A): when > 0, a core's accesses to a line are
     * serviced remotely at the L2 home until the home has observed
     * this many accesses by that core; only then is the line granted
     * for private L1 caching. 0 disables the adaptation (classic
     * MESI). Requires l1_allocation == true to have any effect.
     */
    std::uint32_t locality_threshold = 0;

    int num_mem_controllers = 8;
    std::uint32_t dram_latency_cycles = 100;     ///< 100 ns @ 1 GHz
    double dram_bytes_per_cycle = 5.0;           ///< 5 GB/s @ 1 GHz

    std::uint32_t hop_cycles = 2;                ///< 1 router + 1 link
    std::uint32_t flit_bits = 64;
    Routing routing = Routing::xy;
    std::uint32_t control_message_bits = 64;     ///< coherence requests/acks
    /** Data message payload is one cache line + a header flit. */

    /** Lock/barrier release notification latency (cycles). */
    std::uint32_t sync_notify_cycles = 20;

    /** Extra cycles charged when a core switches between fibers. */
    std::uint32_t context_switch_cycles = 1000;

    /** Lax-synchronization quantum for the fiber scheduler (cycles). */
    std::uint32_t scheduler_quantum = 200;

    /** Stack bytes per simulated thread. */
    std::size_t fiber_stack_bytes = 512 * 1024;

    /** Table II configuration with the requested core model. */
    static Config futuristic256(CoreType core = CoreType::inOrder);

    /**
     * The paper's real-machine stand-in: an Intel i7-4790-like
     * organization — 8 hardware contexts (4 cores x 2-way SMT), OOO,
     * 1 MB of shared cache per context (8 MB total), faster DRAM.
     * Software threads beyond 8 are multiplexed with a context-switch
     * penalty, mirroring Section VI's observation that speedups drop
     * at 16 threads.
     */
    static Config realMachine();

    /** Multi-line human-readable dump (Table II style). */
    std::string describe() const;

    /** Mesh edge length (smallest square covering num_cores). */
    int meshWidth() const;
};

} // namespace crono::sim

#endif // CRONO_SIM_CONFIG_H_

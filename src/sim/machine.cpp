#include "sim/machine.h"

#include <algorithm>

#include "common/macros.h"
#include "obs/telemetry.h"
// crono-lint: allow(include-layering): the instrumentation hooks fire from inside the simulated cores — same documented sim→runtime coupling as machine.h
#include "runtime/instrumentation.h"

namespace crono::sim {

Machine::Machine(const Config& cfg) : cfg_(cfg)
{
    CRONO_REQUIRE(cfg.num_cores >= 1, "machine needs >= 1 core");
}

Machine::~Machine() = default;

SimRunStats
Machine::run(int nthreads, std::function<void(SimCtx&)> body)
{
    CRONO_REQUIRE(nthreads >= 1, "run needs >= 1 thread");

    // Fresh machine state: cold caches, zeroed clocks and counters.
    mem_ = std::make_unique<MemorySystem>(cfg_);
    threads_.clear();
    threads_.resize(nthreads);
    phys_.assign(cfg_.num_cores, PhysCore{});
    barrierWaiters_.clear();
    barrierArrived_ = 0;
    nthreads_ = nthreads;
    CRONO_ASSERT(ready_.empty(), "stale ready queue");
    if (observer_ != nullptr) {
        observer_->onRegionBegin(nthreads);
    }

    for (int tid = 0; tid < nthreads; ++tid) {
        ThreadState& ts = threads_[tid];
        ts.core = CoreModel::create(cfg_);
        ts.physCore = tid % cfg_.num_cores;
        ts.fiber = std::make_unique<Fiber>(
            [this, tid, &body] {
                SimCtx ctx(this, tid, nthreads_);
                body(ctx);
                threads_[tid].core->drain();
            },
            cfg_.fiber_stack_bytes);
        ready_.push({0, tid});
    }

    schedule();

    // Assemble the run's statistics.
    SimRunStats st;
    for (ThreadState& ts : threads_) {
        st.completion_cycles =
            std::max(st.completion_cycles, ts.core->now());
        st.breakdown += ts.core->breakdown();
        st.thread_ops.push_back(ts.ops);
    }
    st.l1d = mem_->l1dStats();
    st.l1i_accesses = mem_->l1iAccesses();
    st.l2 = mem_->l2Stats();
    st.network = mem_->networkStats();
    st.dram = mem_->dramStats();
    st.directory = mem_->directoryStats();
    st.energy = computeEnergy(energyParams_, st.l1i_accesses, st.l1d,
                              st.l2, st.directory, st.network, st.dram);
    lastStats_ = st;

    // Telemetry: one epoch span per software thread on its sim-thread
    // track (busy = compute cycles, stall = everything else), and one
    // utilization span per physical core. Emitted after the run is
    // fully assembled, so the modeled statistics cannot be perturbed.
    if (obs::Recorder* rec = obs::sink()) {
        for (int tid = 0; tid < nthreads; ++tid) {
            ThreadState& ts = threads_[tid];
            obs::Track* t =
                obs::trackFor(rec, obs::TrackKind::kSimThread, tid);
            if (t == nullptr) {
                continue;
            }
            const Breakdown& bd = ts.core->breakdown();
            const auto busy =
                static_cast<std::uint64_t>(bd[Component::compute]);
            const std::uint64_t end = ts.core->now();
            obs::spanRecord(t, {0, end, "sim-thread", ts.ops,
                                obs::SpanCat::kSimEpoch});
            obs::counterBump(t, obs::Counter::kBusyCycles, busy);
            obs::counterBump(t, obs::Counter::kStallCycles,
                             end > busy ? end - busy : 0);
        }
        for (std::size_t c = 0; c < phys_.size(); ++c) {
            if (phys_[c].lastThread == -1) {
                continue; // core never scheduled a thread
            }
            obs::Track* t = obs::trackFor(
                rec, obs::TrackKind::kSimCore, static_cast<int>(c));
            if (t == nullptr) {
                continue;
            }
            std::uint64_t busy = 0;
            for (int tid = 0; tid < nthreads; ++tid) {
                if (threads_[tid].physCore == static_cast<int>(c)) {
                    busy += static_cast<std::uint64_t>(
                        threads_[tid].core->breakdown()[Component::compute]);
                }
            }
            obs::spanRecord(t, {0, phys_[c].clock, "core", busy,
                                obs::SpanCat::kSimEpoch});
            obs::counterBump(t, obs::Counter::kBusyCycles, busy);
            obs::counterBump(
                t, obs::Counter::kStallCycles,
                phys_[c].clock > busy ? phys_[c].clock - busy : 0);
        }
    }
    return st;
}

rt::RunInfo
Machine::parallel(int nthreads, std::function<void(SimCtx&)> body)
{
    const SimRunStats st = run(nthreads, std::move(body));
    rt::RunInfo info;
    info.time = static_cast<double>(st.completion_cycles);
    info.thread_ops = st.thread_ops;
    info.variability = rt::variability(st.thread_ops);
    return info;
}

void
Machine::schedule()
{
    while (!ready_.empty()) {
        const auto [when, tid] = ready_.top();
        ready_.pop();
        ThreadState& ts = threads_[tid];
        PhysCore& pc = phys_[ts.physCore];

        // Timesharing: a fiber cannot run while its physical core's
        // clock is ahead of it; switching fibers costs extra.
        std::uint64_t core_free = pc.clock;
        if (pc.lastThread != tid && pc.lastThread != -1) {
            core_free += cfg_.context_switch_cycles;
        }
        ts.core->waitUntil(core_free, Component::synchronization);
        pc.lastThread = tid;

        ts.fiber->resume();

        pc.clock = std::max(pc.clock, ts.core->now());
        // A voluntarily yielding fiber re-queued itself before the
        // switch; a blocked fiber is re-queued by wake(); a finished
        // fiber is done. Nothing to do here.
    }

    for (std::size_t tid = 0; tid < threads_.size(); ++tid) {
        CRONO_ASSERT(threads_[tid].fiber->finished(),
                     "deadlock: runnable queue empty with live threads");
    }
}

void
Machine::maybeYield(int tid)
{
    ThreadState& ts = threads_[tid];
    if (!ready_.empty() &&
        ts.core->now() > ready_.top().first + cfg_.scheduler_quantum) {
        ready_.push({ts.core->now(), tid});
        phys_[ts.physCore].clock = ts.core->now();
        ts.fiber->yieldToHost();
    }
}

void
Machine::blockCurrent(int tid)
{
    ThreadState& ts = threads_[tid];
    ts.blocked = true;
    phys_[ts.physCore].clock = ts.core->now();
    ts.fiber->yieldToHost();
    // Resumed by the scheduler after wake(): charge the sleep.
    ts.blocked = false;
    ts.core->waitUntil(ts.wakeTime, Component::synchronization);
}

void
Machine::wake(int tid, std::uint64_t when)
{
    ThreadState& ts = threads_[tid];
    CRONO_ASSERT(ts.blocked, "wake of non-blocked thread");
    ts.wakeTime = when;
    ready_.push({when, tid});
}

void
Machine::modelAccess(int tid, std::uintptr_t addr, std::uint32_t size,
                     bool is_store)
{
    ThreadState& ts = threads_[tid];
    mem_->instructionFetch(1);
    const AccessLatency lat =
        mem_->access(ts.physCore, addr, size, is_store, ts.core->now());
    ts.core->addAccess(is_store, lat);
    ++ts.ops;
    maybeYield(tid);
}

void
Machine::modelWork(int tid, std::uint64_t n)
{
    ThreadState& ts = threads_[tid];
    mem_->instructionFetch(n);
    ts.core->addCompute(n);
    ts.ops += n;
    maybeYield(tid);
}

void
Machine::mutexLock(int tid, SimMutex& m)
{
    ThreadState& ts = threads_[tid];
    ts.core->drain(); // acquire fence
    modelAccess(tid, reinterpret_cast<std::uintptr_t>(&m.word),
                sizeof(m.word), /*is_store=*/true);
    if (!m.held) {
        m.held = true;
        m.holder = tid;
        if (observer_ != nullptr) {
            observer_->onLockAcquire(
                tid, reinterpret_cast<std::uintptr_t>(&m));
        }
        return;
    }
    m.waiters.push_back(tid);
    const std::uint64_t wait_begin = ts.core->now();
    blockCurrent(tid);
    if (obs::Track* t = obs::trackFor(
            obs::sink(), obs::TrackKind::kSimThread, tid)) {
        obs::spanRecord(t, {wait_begin, ts.core->now(), "lock-wait", 0,
                            obs::SpanCat::kBarrierWait});
    }
    // The releaser handed the lock to us directly.
    CRONO_ASSERT(m.holder == tid, "lock handoff mismatch");
    // Acquiring RMW after the handoff (the lock line changes hands).
    modelAccess(tid, reinterpret_cast<std::uintptr_t>(&m.word),
                sizeof(m.word), /*is_store=*/true);
    if (observer_ != nullptr) {
        observer_->onLockAcquire(tid,
                                 reinterpret_cast<std::uintptr_t>(&m));
    }
}

void
Machine::mutexUnlock(int tid, SimMutex& m)
{
    ThreadState& ts = threads_[tid];
    CRONO_ASSERT(m.held && m.holder == tid, "unlock by non-holder");
    ts.core->drain(); // release fence
    // Release edge published before the handoff below, so the next
    // holder's acquire callback observes it in order.
    if (observer_ != nullptr) {
        observer_->onLockRelease(tid,
                                 reinterpret_cast<std::uintptr_t>(&m));
    }
    modelAccess(tid, reinterpret_cast<std::uintptr_t>(&m.word),
                sizeof(m.word), /*is_store=*/true);
    if (m.waiters.empty()) {
        m.held = false;
        m.holder = -1;
        return;
    }
    const int next = m.waiters.front();
    m.waiters.erase(m.waiters.begin());
    m.holder = next;
    wake(next, ts.core->now() + cfg_.sync_notify_cycles);
}

void
Machine::regionBarrier(int tid)
{
    ThreadState& ts = threads_[tid];
    ts.core->drain();
    modelAccess(tid, reinterpret_cast<std::uintptr_t>(&barrierWord_.word),
                sizeof(barrierWord_.word), /*is_store=*/true);
    // Arrival published after the modeled RMW (its maybeYield is the
    // last scheduling point before this thread blocks or releases), so
    // the observer sees exactly nthreads arrivals per episode, the
    // releasing one last.
    if (observer_ != nullptr) {
        observer_->onBarrierArrive(tid);
    }
    if (++barrierArrived_ < nthreads_) {
        barrierWaiters_.push_back(tid);
        const std::uint64_t wait_begin = ts.core->now();
        blockCurrent(tid);
        if (obs::Track* t = obs::trackFor(
                obs::sink(), obs::TrackKind::kSimThread, tid)) {
            obs::spanRecord(t, {wait_begin, ts.core->now(), "barrier", 0,
                                obs::SpanCat::kBarrierWait});
            obs::counterBump(t, obs::Counter::kBarrierWaits, 1);
        }
        return;
    }
    // Last arriver releases everyone.
    const std::uint64_t release =
        ts.core->now() + cfg_.sync_notify_cycles;
    for (int w : barrierWaiters_) {
        wake(w, release);
    }
    barrierWaiters_.clear();
    barrierArrived_ = 0;
}

std::uint64_t
Machine::threadOps(int tid) const
{
    return threads_[tid].ops;
}

} // namespace crono::sim

/**
 * @file
 * Off-chip memory: N controllers spread along the mesh, each with a
 * fixed access latency and a finite-bandwidth service queue
 * (Table II: 8 controllers, 5 GB/s each, 100 ns).
 */

#ifndef CRONO_SIM_DRAM_H_
#define CRONO_SIM_DRAM_H_

#include <cstdint>
#include <vector>

#include "sim/cache.h"
#include "sim/config.h"
#include "sim/stats.h"

namespace crono::sim {

/** The set of memory controllers. */
class Dram {
  public:
    explicit Dram(const Config& cfg);

    /** Mesh node the controller for @p line attaches to. */
    int controllerNode(LineAddr line) const;

    /**
     * Service one cache-line access beginning at @p start.
     * Queueing for controller bandwidth is charged before the fixed
     * DRAM latency. @return completion cycle.
     */
    std::uint64_t access(LineAddr line, std::uint64_t start);

    const DramStats& stats() const { return stats_; }

    /** Bandwidth-accounting window width in cycles. */
    static constexpr std::uint64_t kWindowCycles = 512;
    /** Number of windows retained per controller. */
    static constexpr std::size_t kWindowRing = 16;

  private:
    /** One time-window of service occupancy on a controller. */
    struct Window {
        std::uint64_t epoch = ~std::uint64_t{0};
        std::uint64_t busy = 0; ///< service cycles booked in window
    };

    std::vector<Window> windows_; // [controller][epoch % kWindowRing]
    std::vector<int> nodes_;      // mesh node per controller
    std::size_t numControllers_;
    DramStats stats_;
    std::uint32_t latency_;
    std::uint32_t serviceCycles_; // line_bytes / bytes_per_cycle
};

} // namespace crono::sim

#endif // CRONO_SIM_DRAM_H_

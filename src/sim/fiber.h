/**
 * @file
 * Cooperative fibers (ucontext-based) for direct-execution simulation.
 *
 * Each simulated thread runs its kernel body on a fiber; the scheduler
 * switches fibers on the single host thread. This is what makes the
 * whole simulation deterministic: exactly one fiber executes at any
 * instant, so simulated shared memory needs no host synchronization
 * and the interleaving is fixed by the scheduler's time ordering.
 */

#ifndef CRONO_SIM_FIBER_H_
#define CRONO_SIM_FIBER_H_

#include <ucontext.h>

#include <cstdint>
#include <functional>
#include <memory>

namespace crono::sim {

/**
 * One suspendable execution context with its own stack.
 *
 * Lifecycle: constructed with an entry function; resume() runs it
 * until it calls yieldToHost() or returns; finished() reports
 * completion. Must always be resumed from the same host thread.
 */
class Fiber {
  public:
    /**
     * @param entry       body to run on the fiber
     * @param stack_bytes stack size for the fiber
     */
    Fiber(std::function<void()> entry, std::size_t stack_bytes);
    ~Fiber();

    Fiber(const Fiber&) = delete;
    Fiber& operator=(const Fiber&) = delete;

    /** Switch from the host context into the fiber. @pre !finished() */
    void resume();

    /** Switch from the fiber back to the host. Call only on-fiber. */
    void yieldToHost();

    /** True once the entry function has returned. */
    bool finished() const { return finished_; }

  private:
    static void trampoline();

    std::function<void()> entry_;
    std::unique_ptr<char[]> stack_;
    ucontext_t context_;
    ucontext_t hostContext_;
    bool started_ = false;
    bool finished_ = false;
};

} // namespace crono::sim

#endif // CRONO_SIM_FIBER_H_

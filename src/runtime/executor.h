/**
 * @file
 * NativeExecutor: a persistent worker pool that runs kernel bodies
 * across real threads and reports wall time plus per-thread
 * instruction counts.
 */

#ifndef CRONO_RUNTIME_EXECUTOR_H_
#define CRONO_RUNTIME_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/native_context.h"

namespace crono::rt {

/** Outcome of one parallel region. */
struct RunInfo {
    /** Wall-clock seconds (native) or simulated cycles (simulator). */
    double time = 0.0;
    /** Per-thread instruction-count proxies (ops). */
    std::vector<std::uint64_t> thread_ops;
    /**
     * Load-imbalance metric, Equation 2 of the paper. Whole-run for
     * the flag-scan kernels; mean of round_variability for frontier
     * kernels (per-round imbalance is what work-stealing removes).
     */
    double variability = 0.0;
    /**
     * Equation 2 per round, populated only by the frontier-driven
     * kernels running in kSparse/kAdaptive mode (empty otherwise).
     */
    std::vector<double> round_variability;
};

/**
 * Pool of persistent worker threads executing parallel regions.
 *
 * Satisfies the Executor concept used by the kernel drivers:
 *   using Ctx = ...;
 *   RunInfo parallel(int nthreads, function<void(Ctx&)> body);
 *
 * Regions may not nest. Worker 0..nthreads-1 each invoke the body
 * exactly once with their own context.
 */
class NativeExecutor {
  public:
    using Ctx = NativeCtx;

    /** @param max_threads upper bound for nthreads in parallel(). */
    explicit NativeExecutor(int max_threads);
    ~NativeExecutor();

    NativeExecutor(const NativeExecutor&) = delete;
    NativeExecutor& operator=(const NativeExecutor&) = delete;

    int maxThreads() const { return maxThreads_; }

    /** Run @p body on @p nthreads workers; blocks until all finish. */
    RunInfo parallel(int nthreads, std::function<void(NativeCtx&)> body);

  private:
    void workerLoop(int tid);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable startCv_;
    std::condition_variable doneCv_;

    // Current job, valid while generation_ is odd-stepped per run.
    std::function<void(NativeCtx&)>* body_ = nullptr;
    Barrier* jobBarrier_ = nullptr;
    std::vector<std::uint64_t>* opsOut_ = nullptr;
    int jobThreads_ = 0;
    int pendingWorkers_ = 0;
    std::uint64_t generation_ = 0;
    bool shutdown_ = false;
    int maxThreads_;
};

} // namespace crono::rt

#endif // CRONO_RUNTIME_EXECUTOR_H_

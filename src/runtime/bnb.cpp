#include "runtime/bnb.h"

namespace crono::rt::bnb {

const char*
searchModeName(bool deterministic)
{
    return deterministic ? "replay" : "capture";
}

} // namespace crono::rt::bnb

#include "runtime/executor.h"

#include <chrono>

#include "common/macros.h"
#include "obs/telemetry.h"
#include "runtime/instrumentation.h"

namespace crono::rt {

NativeExecutor::NativeExecutor(int max_threads) : maxThreads_(max_threads)
{
    CRONO_REQUIRE(max_threads >= 1, "executor needs >= 1 thread");
    workers_.reserve(max_threads);
    for (int t = 0; t < max_threads; ++t) {
        workers_.emplace_back([this, t] { workerLoop(t); });
    }
}

NativeExecutor::~NativeExecutor()
{
    {
        std::lock_guard<std::mutex> g(mutex_);
        shutdown_ = true;
        ++generation_;
    }
    startCv_.notify_all();
    for (auto& w : workers_) {
        w.join();
    }
}

RunInfo
NativeExecutor::parallel(int nthreads, std::function<void(NativeCtx&)> body)
{
    CRONO_REQUIRE(nthreads >= 1 && nthreads <= maxThreads_,
                  "nthreads out of range for this executor");
    obs::ScopedHostSpan region_span(
        "parallel", static_cast<std::uint64_t>(nthreads));
    Barrier barrier(nthreads);
    std::vector<std::uint64_t> ops(nthreads, 0);

    const auto start = std::chrono::steady_clock::now();
    {
        std::lock_guard<std::mutex> g(mutex_);
        body_ = &body;
        jobBarrier_ = &barrier;
        opsOut_ = &ops;
        jobThreads_ = nthreads;
        pendingWorkers_ = nthreads;
        ++generation_;
    }
    startCv_.notify_all();
    {
        std::unique_lock<std::mutex> g(mutex_);
        doneCv_.wait(g, [this] { return pendingWorkers_ == 0; });
        body_ = nullptr;
    }
    const auto stop = std::chrono::steady_clock::now();

    RunInfo info;
    info.time = std::chrono::duration<double>(stop - start).count();
    info.thread_ops = std::move(ops);
    info.variability = variability(info.thread_ops);
    return info;
}

void
NativeExecutor::workerLoop(int tid)
{
    std::uint64_t seen_generation = 0;
    for (;;) {
        std::function<void(NativeCtx&)>* body = nullptr;
        Barrier* barrier = nullptr;
        std::vector<std::uint64_t>* ops_out = nullptr;
        int nthreads = 0;
        {
            std::unique_lock<std::mutex> g(mutex_);
            startCv_.wait(g, [&] {
                return shutdown_ || generation_ != seen_generation;
            });
            if (shutdown_) {
                return;
            }
            seen_generation = generation_;
            if (tid >= jobThreads_) {
                continue; // not a participant this round
            }
            body = body_;
            barrier = jobBarrier_;
            ops_out = opsOut_;
            nthreads = jobThreads_;
        }

        NativeCtx ctx(tid, nthreads, barrier);
        // Telemetry: one "worker" span per thread per region; barrier
        // waits inside it are recorded by NativeCtx::barrier, so the
        // trace shows work vs. barrier-wait time per thread per round.
        // An active ProfileSession additionally brackets the body
        // with hardware-counter samples, so the "worker" aggregate
        // carries each thread's whole-region counter deltas.
        obs::Track* const track =
            obs::trackFor(obs::sink(), obs::TrackKind::kWorker, tid);
        const std::uint64_t begin =
            track != nullptr ? obs::nowNs() : 0;
        const int hw_token =
            track != nullptr
                ? obs::perf::spanBegin(obs::perf::slotForTid(tid))
                : -1;
        (*body)(ctx);
        if (track != nullptr) {
            const std::uint64_t end = obs::nowNs();
            obs::spanRecord(track, {begin, end, "worker", ctx.ops(),
                                    obs::SpanCat::kKernel});
            obs::perf::spanEnd(
                obs::perf::slotForTid(tid), hw_token, "worker",
                static_cast<std::uint8_t>(obs::SpanCat::kKernel),
                end - begin);
        }
        (*ops_out)[tid] = ctx.ops();

        {
            std::lock_guard<std::mutex> g(mutex_);
            if (--pendingWorkers_ == 0) {
                doneCv_.notify_all();
            }
        }
    }
}

} // namespace crono::rt

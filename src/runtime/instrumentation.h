/**
 * @file
 * Workload instrumentation: load-imbalance metric and the active-
 * vertices trace behind Figure 2 of the paper.
 */

#ifndef CRONO_RUNTIME_INSTRUMENTATION_H_
#define CRONO_RUNTIME_INSTRUMENTATION_H_

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "runtime/spinlock.h"

namespace crono::rt {

/**
 * Load-imbalance "Variability" metric, Equation 2 of the paper:
 * (max - min) / max over per-thread instruction counts.
 * Returns 0 for empty input or all-zero counts.
 */
double variability(const std::vector<std::uint64_t>& thread_ops);

/**
 * Event-ordered trace of the number of "active vertices".
 *
 * Kernels call add()/sub() as vertices become live work; the tracker
 * samples the running count every @p stride events into a bounded
 * buffer (compacting by doubling the stride when full). The event
 * sequence number serves as the execution-time axis: Figure 2 plots
 * both axes normalized, so only ordering matters.
 *
 * Thread-safe; negligible overhead when no tracker is attached to a
 * kernel (kernels hold a nullable pointer).
 */
class ActiveTracker {
  public:
    /** One recorded observation. */
    struct Sample {
        std::uint64_t event;   ///< event sequence number
        std::int64_t active;   ///< active-vertex count after the event
    };

    explicit ActiveTracker(std::size_t max_samples = 16384,
                           std::uint64_t stride = 1);

    /** Record @p delta newly active vertices (may be negative). */
    void add(std::int64_t delta);

    /** Convenience for add(-delta). */
    void sub(std::int64_t delta) { add(-delta); }

    /** Total events observed. */
    std::uint64_t events() const
    {
        return events_.load(std::memory_order_relaxed);
    }

    /** Copy of the recorded samples, in event order. */
    std::vector<Sample> samples() const;

    /**
     * The Figure 2 series: @p buckets values in [0, 1], the mean
     * active count of each normalized-time bucket divided by the
     * maximum observed count.
     */
    std::vector<double> normalizedSeries(std::size_t buckets) const;

  private:
    mutable Spinlock lock_;
    std::vector<Sample> samples_;
    std::size_t maxSamples_;
    std::uint64_t stride_;
    std::atomic<std::int64_t> active_{0};
    std::atomic<std::uint64_t> events_{0};
};

} // namespace crono::rt

#endif // CRONO_RUNTIME_INSTRUMENTATION_H_

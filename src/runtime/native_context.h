/**
 * @file
 * Native (real-threads) implementation of the ExecutionContext
 * concept that all CRONO kernels are templated over.
 *
 * The concept (see core/context.h for the full contract):
 *   - tid() / nthreads()
 *   - read(ref) / write(ref, v) / fetchAdd(ref, d): shared-memory
 *     accesses. Native: (atomic) machine accesses. Simulator: routed
 *     through the modeled memory hierarchy.
 *   - work(n): n units of pure compute.
 *   - Mutex, lock(), unlock(), barrier(): synchronization.
 *   - ops(): per-thread instruction-count proxy for the Variability
 *     load-imbalance metric.
 *   - timestamp(): monotonic time in the context's clock domain
 *     (native: steady-clock ns; simulator: the thread's local cycle
 *     clock), used only by the telemetry layer.
 *   - kSimulated: constexpr bool routing telemetry to the right
 *     track domain.
 */

#ifndef CRONO_RUNTIME_NATIVE_CONTEXT_H_
#define CRONO_RUNTIME_NATIVE_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "obs/telemetry.h"
#include "runtime/barrier.h"
#include "runtime/spinlock.h"

namespace crono::rt {

/** ExecutionContext over real threads; one instance per thread. */
class NativeCtx {
  public:
    using Mutex = Spinlock;

    /** Telemetry routes native contexts to the worker track domain. */
    static constexpr bool kSimulated = false;

    NativeCtx(int tid, int nthreads, Barrier* barrier)
        : barrier_(barrier), tid_(tid), nthreads_(nthreads)
    {
    }

    int tid() const { return tid_; }
    int nthreads() const { return nthreads_; }

    /** Shared read. Atomic (relaxed) for scalar T, plain otherwise. */
    template <class T>
    T
    read(const T& ref)
    {
        ++ops_;
        if constexpr (atomicCapable<T>) {
            return std::atomic_ref<const T>(ref).load(
                std::memory_order_relaxed);
        } else {
            return ref;
        }
    }

    /** Shared write. Atomic (relaxed) for scalar T, plain otherwise. */
    template <class T>
    void
    write(T& ref, T value)
    {
        ++ops_;
        if constexpr (atomicCapable<T>) {
            std::atomic_ref<T>(ref).store(value, std::memory_order_relaxed);
        } else {
            ref = value;
        }
    }

    /**
     * Declared-racy atomic load: a probe the kernel *intends* to race
     * (monotone convergence filters, claim-protected re-checks, B&B
     * bound pruning — see core/context.h for the contract). Natively
     * identical to read(); the distinction exists for the analysis
     * layer, whose happens-before race detector excludes these probes
     * from race checks instead of flagging intended races.
     */
    template <class T>
    T
    readAtomic(const T& ref)
    {
        ++ops_;
        if constexpr (atomicCapable<T>) {
            return std::atomic_ref<const T>(ref).load(
                std::memory_order_relaxed);
        } else {
            return ref;
        }
    }

    /** Atomic fetch-add on a shared counter; returns the old value. */
    template <class T>
    T
    fetchAdd(T& ref, T delta)
    {
        static_assert(atomicCapable<T>, "fetchAdd needs an atomic scalar");
        ++ops_;
        return std::atomic_ref<T>(ref).fetch_add(
            delta, std::memory_order_acq_rel);
    }

    /** Account @p n units of pure computation. */
    void work(std::uint64_t n) { ops_ += n; }

    void
    lock(Mutex& m)
    {
        ++ops_;
        m.lock();
        // Pairing note: reads of data written under the lock are
        // ordered by the lock's acquire/release.
    }

    void
    unlock(Mutex& m)
    {
        ++ops_;
        m.unlock();
    }

    void
    barrier()
    {
        ++ops_;
        // Telemetry: the dominant sync cost is waiting here, so the
        // barrier hook lives on the context rather than in every
        // kernel. Idle-sink cost: one relaxed load + branch.
        obs::Track* const t =
            obs::trackFor(obs::sink(), obs::TrackKind::kWorker, tid_);
        if (t != nullptr) {
            const std::uint64_t begin = obs::nowNs();
            barrier_->arriveAndWait();
            obs::spanRecord(t, {begin, obs::nowNs(), "barrier", 0,
                                obs::SpanCat::kBarrierWait});
            obs::counterBump(t, obs::Counter::kBarrierWaits, 1);
            return;
        }
        barrier_->arriveAndWait();
    }

    /** Instruction-count proxy accumulated by this thread. */
    std::uint64_t ops() const { return ops_; }

    /** Monotonic steady-clock nanoseconds (telemetry clock domain). */
    std::uint64_t timestamp() const { return obs::nowNs(); }

  private:
    template <class T>
    static constexpr bool atomicCapable =
        std::is_trivially_copyable_v<T> && (sizeof(T) <= 8) &&
        std::atomic_ref<std::remove_const_t<T>>::is_always_lock_free;

    Barrier* barrier_;
    std::uint64_t ops_ = 0;
    int tid_;
    int nthreads_;
};

} // namespace crono::rt

#endif // CRONO_RUNTIME_NATIVE_CONTEXT_H_

#include "runtime/frontier.h"

#include <algorithm>

#include "runtime/instrumentation.h"

namespace crono::rt {

const char*
frontierModeName(FrontierMode mode)
{
    switch (mode) {
      case FrontierMode::kFlagScan:
        return "flagscan";
      case FrontierMode::kSparse:
        return "sparse";
      case FrontierMode::kAdaptive:
        return "adaptive";
      case FrontierMode::kPull:
        return "pull";
    }
    return "unknown";
}

std::uint64_t
denseFrontThreshold(std::uint64_t num_vertices, std::uint64_t num_edges)
{
    if (num_edges == 0) {
        // No edges: fronts never exceed the seeds and die in one
        // round; a threshold of V keeps every round sparse.
        return num_vertices;
    }
    const std::uint64_t threshold =
        num_vertices * num_vertices /
        (kFrontierDenseSwitchFactor * num_edges);
    return threshold == 0 ? 1 : threshold;
}

std::uint64_t
pullFrontThreshold(std::uint64_t num_vertices)
{
    const std::uint64_t threshold =
        num_vertices / kFrontierPullSwitchDivisor;
    return threshold == 0 ? 1 : threshold;
}

FrontierEngine::FrontierEngine(std::uint64_t num_vertices,
                               std::uint64_t num_edges, int nthreads,
                               FrontierMode mode)
    : numVertices_(num_vertices), nthreads_(nthreads), mode_(mode),
      denseThreshold_(denseFrontThreshold(num_vertices, num_edges)),
      pullThreshold_(pullFrontThreshold(num_vertices)),
      useQueues_(mode == FrontierMode::kSparse ||
                 mode == FrontierMode::kAdaptive),
      threads_(static_cast<std::size_t>(nthreads))
{
    CRONO_REQUIRE(nthreads >= 1, "frontier engine needs >= 1 thread");
    flags_[0].assign(num_vertices, 0);
    flags_[1].assign(num_vertices, 0);
}

void
FrontierEngine::hostPush(int owner, Vertex v)
{
    if (!useQueues_) {
        ++front_[0].value;
        return;
    }
    Queue& q = threads_[static_cast<std::size_t>(owner)].queue[0];
    if (q.fill == kFrontierChunkCap || q.used == 0) {
        if (q.used == q.chunks.size()) {
            q.chunks.emplace_back(new Chunk);
        }
        ++q.used;
        q.fill = 0;
    }
    q.chunks[q.used - 1]->items[q.fill] = v;
    ++q.fill;
    // Keep the queue consumable after every seed: seal the tail chunk
    // and publish the chunk count directly (host side, pre-region).
    q.chunks[q.used - 1]->size = q.fill;
    q.ready.value = q.used;
    ++front_[0].value;
}

void
FrontierEngine::seed(Vertex v)
{
    CRONO_REQUIRE(v < numVertices_, "frontier seed out of range");
    if (flags_[0][v] != 0) {
        return;
    }
    flags_[0][v] = 1;
    if (!useQueues_) {
        ++front_[0].value;
        return;
    }
    // Route the seed to its block-partition owner so round 0 starts
    // with the same locality the dense scan would have.
    for (int t = 0; t < nthreads_; ++t) {
        const Range r = blockPartition(numVertices_, t, nthreads_);
        if (v >= r.begin && v < r.end) {
            hostPush(t, v);
            return;
        }
    }
    CRONO_ASSERT(false, "seed vertex not covered by any partition");
}

void
FrontierEngine::seedAll()
{
    for (int t = 0; t < nthreads_; ++t) {
        const Range r = blockPartition(numVertices_, t, nthreads_);
        for (std::uint64_t v = r.begin; v < r.end; ++v) {
            if (flags_[0][v] != 0) {
                continue;
            }
            flags_[0][v] = 1;
            hostPush(t, static_cast<Vertex>(v));
        }
    }
}

std::vector<double>
FrontierEngine::roundVariability() const
{
    std::size_t rounds = ~std::size_t{0};
    for (const PerThread& t : threads_) {
        rounds = std::min(rounds, t.opsMarks.size());
    }
    if (threads_.empty() || rounds == 0 || rounds == ~std::size_t{0}) {
        return {};
    }
    std::vector<double> out;
    out.reserve(rounds);
    std::vector<std::uint64_t> delta(threads_.size());
    for (std::size_t r = 0; r < rounds; ++r) {
        for (std::size_t t = 0; t < threads_.size(); ++t) {
            const auto& marks = threads_[t].opsMarks;
            delta[t] = r == 0 ? marks[0] : marks[r] - marks[r - 1];
        }
        out.push_back(variability(delta));
    }
    return out;
}

void
FrontierEngine::applyRoundStats(RunInfo& info) const
{
    info.round_variability = roundVariability();
    if (info.round_variability.empty()) {
        return;
    }
    double sum = 0.0;
    for (double v : info.round_variability) {
        sum += v;
    }
    info.variability =
        sum / static_cast<double>(info.round_variability.size());
}

} // namespace crono::rt

/**
 * @file
 * Ctx-generic parallelization strategies (Table I of the paper).
 *
 * These helpers express the three CRONO parallelization idioms in
 * terms of the ExecutionContext concept so that the same kernel code
 * is accounted correctly on both the native and the simulated paths:
 *
 *  - vertex capture: threads compete for work items through an atomic
 *    counter (modeled as an RMW on the counter's cache line);
 *  - graph division: static partitioning (see partition.h, pure index
 *    arithmetic, no shared memory traffic);
 *  - branch & bound: a global best-cost bound guarded by a lock.
 */

#ifndef CRONO_RUNTIME_STRATEGIES_H_
#define CRONO_RUNTIME_STRATEGIES_H_

#include <cstdint>

#include "common/aligned.h"

namespace crono::rt {

/**
 * Frontier representation used by the frontier-driven kernels (SSSP,
 * BFS, connected components and the betweenness/APSP forward pass).
 *
 *  - kFlagScan: the paper's structure — per-vertex active flags,
 *    every thread rescans its full static vertex block each round.
 *    O(V) per round regardless of front size; this is what CRONO's
 *    released kernels do, so it stays the default for every
 *    paper-figure experiment (fidelity preserved bit-for-bit).
 *  - kSparse: per-thread chunked work-lists (see rt::FrontierEngine)
 *    with chunk-granularity work-stealing; O(front) per round.
 *  - kAdaptive: per-round choice between the representations based on
 *    front occupancy — dense when front_size * avg_degree > V / k,
 *    sparse again once the front shrinks below that threshold, and
 *    pull-side (direction-optimized, for kernels that support it)
 *    once the front exceeds the pull threshold (see
 *    rt::pullFrontThreshold).
 *  - kPull: always consume rounds pull-side where the kernel supports
 *    it (destinations scan their in-neighbors against the dense front
 *    bitmap); kernels without a pull formulation fall back to dense
 *    push. Mostly a debugging / benchmarking mode — kAdaptive is the
 *    production direction-optimizing policy.
 */
enum class FrontierMode : int {
    kFlagScan = 0,
    kSparse = 1,
    kAdaptive = 2,
    kPull = 3,
};

/**
 * Human-readable name of @p mode
 * ("flagscan" / "sparse" / "adaptive" / "pull").
 */
const char* frontierModeName(FrontierMode mode);

/**
 * Shared counter for vertex capture. Lives on its own cache line:
 * every capture is an RMW that ping-pongs the line between threads,
 * which is exactly the fine-grain communication the paper measures.
 */
struct CaptureCounter {
    alignas(kCacheLineBytes) std::uint64_t next = 0;
};

/** Sentinel returned by captureNext when the range is exhausted. */
inline constexpr std::uint64_t kCaptureDone = ~std::uint64_t{0};

/**
 * Atomically claim the next work item below @p limit.
 *
 * @return the claimed index, or kCaptureDone when exhausted.
 */
template <class Ctx>
std::uint64_t
captureNext(Ctx& ctx, CaptureCounter& counter, std::uint64_t limit)
{
    const std::uint64_t claimed =
        ctx.fetchAdd(counter.next, std::uint64_t{1});
    return claimed < limit ? claimed : kCaptureDone;
}

/**
 * Global bound for branch & bound (TSP, DFS pruning).
 *
 * The value is read without the lock on the fast path (a stale-high
 * read only delays pruning, never breaks correctness) and improved
 * under the lock.
 */
template <class Ctx>
struct GlobalBound {
    alignas(kCacheLineBytes) std::uint64_t value;
    typename Ctx::Mutex mutex;

    explicit GlobalBound(std::uint64_t initial = ~std::uint64_t{0})
        : value(initial)
    {
    }

    /** Racy read of the current bound (monotone non-increasing). */
    std::uint64_t
    current(Ctx& ctx)
    {
        // Declared-racy probe: unordered with the locked improvement
        // write. The bound only decreases, so a stale (higher) value
        // merely delays pruning; it never prunes a viable branch.
        return ctx.readAtomic(value);
    }

    /**
     * Install @p candidate if it improves the bound.
     * @return true if the bound was improved by this call.
     */
    bool
    tryImprove(Ctx& ctx, std::uint64_t candidate)
    {
        // Declared-racy probe: unlocked filter before taking the
        // mutex. A stale (higher) value admits at worst a wasted lock
        // acquisition; the locked compare below decides.
        if (ctx.readAtomic(value) <= candidate) {
            return false;
        }
        ctx.lock(mutex);
        const bool improved = ctx.read(value) > candidate;
        if (improved) {
            ctx.write(value, candidate);
        }
        ctx.unlock(mutex);
        return improved;
    }
};

} // namespace crono::rt

#endif // CRONO_RUNTIME_STRATEGIES_H_

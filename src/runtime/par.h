/**
 * @file
 * rt::par — the shared parallel-primitives layer every kernel builds
 * on.
 *
 * The ten CRONO kernels share a handful of parallel skeletons (Table I
 * of the paper): static vertex-block loops, vertex capture from an
 * atomic cursor, per-thread accumulators merged behind a barrier,
 * frontier expansion. This header expresses each skeleton once, as a
 * Ctx-generic primitive, so a kernel body reads as algorithm logic
 * only and every kernel inherits the same telemetry hooks:
 *
 *  - vertexMap / vertexMapStriped: graph division (static block /
 *    cyclic stripe) — pure index arithmetic, no shared traffic.
 *  - vertexMapGuided: guided self-scheduling — threads claim shrinking
 *    chunks from a shared cursor (one RMW per chunk, not per item).
 *  - vertexMapCapture: the paper's vertex-capture idiom — one RMW per
 *    item on a shared cursor whose cache line deliberately ping-pongs.
 *  - edgeMapPush / edgeMapPull / edgeMapPullAll: frontier traversal in
 *    both directions, with FrontierEngine's dense flag array doubling
 *    as the pull-side membership probe (direction optimization).
 *  - reduce / reducePerThread: per-thread cache-line-padded slots
 *    combined deterministically behind one barrier, replacing the
 *    fetchAdd-into-a-shared-counter merge (which, for floating point,
 *    made results depend on arrival order).
 *  - ScratchArena: reusable per-thread buffers (APSP's private
 *    distance rows, community detection's neighbor accumulators).
 *  - BranchStack: the DFS shared branch stack with its race-free
 *    empty+idle termination protocol.
 *  - tryClaim: the read-then-fetchAdd first-touch claim idiom.
 *
 * Every shared access inside a primitive goes through the
 * ExecutionContext (ctx.read/write/fetchAdd), so the simulator models
 * the primitives' traffic exactly as it modeled the hand-rolled loops
 * they replace. Telemetry hooks never touch ctx.read/write, keeping
 * simulated statistics independent of whether a sink is installed.
 */

#ifndef CRONO_RUNTIME_PAR_H_
#define CRONO_RUNTIME_PAR_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "common/macros.h"
// crono-lint: allow(include-layering): the edgeMap primitives are defined over the CSR/blocked-CSR types themselves — this runtime→graph edge is the one acknowledged exception to the DAG (splitting traversal out of rt::par would fork the primitive set)
#include "graph/blocked_csr.h"
// crono-lint: allow(include-layering): same acknowledged runtime→graph exception as blocked_csr.h above
#include "graph/graph.h"
#include "obs/telemetry.h"
#include "runtime/frontier.h"
#include "runtime/partition.h"
#include "runtime/strategies.h"

namespace crono::rt::par {

// ----------------------------------------------------------- CSR view

/**
 * Non-owning view of a CSR graph's raw arrays, so primitives take one
 * argument instead of three pointers. Graphs are undirected (both
 * directions present), which is what makes pull traversal possible
 * without a transposed copy: in-neighbors == out-neighbors.
 */
struct Csr {
    const graph::EdgeId* offsets = nullptr;
    const graph::VertexId* neighbors = nullptr;
    const graph::Weight* weights = nullptr;
    std::uint64_t num_vertices = 0;
    std::uint64_t num_edges = 0;

    /**
     * Cache-blocked pull layout attached to the graph, or nullptr.
     * When present, edgeMapPull / edgeMapPullAll iterate it bin-major
     * — see their contract notes — and gather kernels can use
     * edgeMapGatherBlocked.
     */
    const graph::BlockedCsr* blocked = nullptr;
};

inline Csr
csrOf(const graph::Graph& g)
{
    return {g.rawOffsets().data(), g.rawNeighbors().data(),
            g.rawWeights().data(), g.numVertices(), g.numEdges(),
            g.blockedLayout()};
}

// -------------------------------------------------------- vertex maps

/**
 * Static graph division: invoke fn(i) for every index of this
 * thread's contiguous block of [0, total).
 */
template <class Ctx, class Fn>
void
vertexMap(Ctx& ctx, std::uint64_t total, Fn&& fn)
{
    const Range range = blockPartition(total, ctx.tid(), ctx.nthreads());
    for (std::uint64_t i = range.begin; i < range.end; ++i) {
        fn(i);
    }
}

/**
 * Cyclic graph division: invoke fn(i) for every index of this
 * thread's stripe {tid, tid + nthreads, ...} — better balance than
 * contiguous blocks under skewed degree distributions.
 */
template <class Ctx, class Fn>
void
vertexMapStriped(Ctx& ctx, std::uint64_t total, Fn&& fn)
{
    cyclicPartition(total, ctx.tid(), ctx.nthreads(),
                    [&](std::uint64_t i) { fn(i); });
}

/** Smallest chunk the guided scheduler will claim. */
inline constexpr std::uint64_t kGuidedMinChunk = 16;

/**
 * Guided self-scheduling over [0, total): threads claim chunks of
 * remaining/(2*nthreads) items (never below kGuidedMinChunk) from a
 * shared cursor. One RMW per chunk amortizes the cursor ping-pong
 * that per-item capture pays, while late small chunks absorb the load
 * imbalance static blocks suffer on power-law degree distributions.
 * The cursor must be zeroed (host-side or by a pre-barrier thread)
 * before each sweep.
 */
template <class Ctx, class Fn>
void
vertexMapGuided(Ctx& ctx, CaptureCounter& cursor, std::uint64_t total,
                Fn&& fn)
{
    const auto nthreads = static_cast<std::uint64_t>(ctx.nthreads());
    for (;;) {
        // Declared-racy probe: a size estimate unordered with the
        // other threads' capture RMWs. A stale-low `seen` only makes
        // this chunk a little larger than ideal; the fetchAdd below
        // is what actually claims work.
        const std::uint64_t seen = ctx.readAtomic(cursor.next);
        if (seen >= total) {
            break;
        }
        std::uint64_t chunk = (total - seen) / (2 * nthreads);
        if (chunk < kGuidedMinChunk) {
            chunk = kGuidedMinChunk;
        }
        const std::uint64_t begin = ctx.fetchAdd(cursor.next, chunk);
        if (begin >= total) {
            break;
        }
        const std::uint64_t end =
            begin + chunk < total ? begin + chunk : total;
        for (std::uint64_t i = begin; i < end; ++i) {
            fn(i);
        }
    }
}

/**
 * Vertex capture (Table I): claim items one at a time from a shared
 * atomic cursor until the range is exhausted. The per-item RMW
 * ping-pongs the cursor's cache line between threads — the fine-grain
 * communication the paper measures — so this stays the scheduling
 * primitive of the capture-based kernels (APSP, PageRank scatter,
 * triangle counting, community detection, TSP).
 *
 * @return number of items this thread captured (also bumped onto the
 *         kCaptures telemetry counter).
 */
template <class Ctx, class Fn>
std::uint64_t
vertexMapCapture(Ctx& ctx, CaptureCounter& cursor, std::uint64_t total,
                 Fn&& fn)
{
    std::uint64_t captured = 0;
    for (;;) {
        const std::uint64_t i = captureNext(ctx, cursor, total);
        if (i == kCaptureDone) {
            break;
        }
        ++captured;
        fn(i);
    }
    obs::counterAdd(ctx, obs::Counter::kCaptures, captured);
    return captured;
}

// ---------------------------------------------------------- edge maps

/**
 * Push-direction frontier traversal: consume the current front
 * through @p engine (dense flag scan or sparse work lists, chosen by
 * @p dense) and scan each front vertex's out-edges.
 *
 * @p pre(u) runs once per front vertex; returning false skips the
 * edge scan (SSSP's pacing deferral). @p edge(u, v, e) runs once per
 * out-edge, with v already read through the context; the kernel reads
 * weights[e] / charges ctx.work itself so its modeled per-edge cost
 * is exactly what the hand-rolled loop had.
 */
template <class Ctx, class Pre, class Edge>
void
edgeMapPush(Ctx& ctx, const Csr& g, FrontierEngine& engine,
            std::uint64_t round, bool dense, Pre&& pre, Edge&& edge)
{
    engine.processCurrent(
        ctx, round, dense, [&](FrontierEngine::Vertex u) {
            if (!pre(u)) {
                return;
            }
            const graph::EdgeId beg = ctx.read(g.offsets[u]);
            const graph::EdgeId end = ctx.read(g.offsets[u + 1]);
            for (graph::EdgeId e = beg; e < end; ++e) {
                edge(u, ctx.read(g.neighbors[e]), e);
            }
        });
}

namespace detail {

/** Shared destination-side gather loop of the pull edge maps. */
template <class Ctx, class Member, class Pre, class Edge, class Post>
void
pullVertex(Ctx& ctx, const Csr& g, graph::VertexId v, Member&& member,
           Pre&& pre, Edge&& edge, Post&& post)
{
    if (!pre(v)) {
        return;
    }
    const graph::EdgeId beg = ctx.read(g.offsets[v]);
    const graph::EdgeId end = ctx.read(g.offsets[v + 1]);
    for (graph::EdgeId e = beg; e < end; ++e) {
        const graph::VertexId u = ctx.read(g.neighbors[e]);
        ctx.work(1);
        if (!member(u)) {
            continue;
        }
        if (edge(v, u, e)) {
            break; // satisfied (BFS: first in-front parent wins)
        }
    }
    post(v);
}

/**
 * This thread's destination-id range for blocked iteration, balanced
 * by edge count rather than vertex count: reordered graphs pack the
 * hubs into the lowest ids, where a vertex-count split would hand one
 * thread most of the edges. Pure scheduling arithmetic over the
 * immutable offsets array (like blockPartition, not modeled traffic);
 * deterministic, so ownership is stable for the whole invocation.
 */
template <class Ctx>
Range
degreeBalancedRange(Ctx& ctx, const Csr& g)
{
    const auto tid = static_cast<std::uint64_t>(ctx.tid());
    const auto nthreads = static_cast<std::uint64_t>(ctx.nthreads());
    const graph::EdgeId* const first = g.offsets;
    const graph::EdgeId* const last = g.offsets + g.num_vertices + 1;
    const auto cut = [&](std::uint64_t t) -> std::uint64_t {
        const graph::EdgeId target = g.num_edges * t / nthreads;
        return static_cast<std::uint64_t>(
            std::lower_bound(first, last, target) - first);
    };
    // The last cut must be num_vertices, not lower_bound(num_edges):
    // the latter stops at the FIRST offset equal to num_edges, which
    // would orphan a zero-degree tail (exactly what degree orderings
    // produce) from every thread's pre/zero/finish phases.
    Range r{cut(tid), tid + 1 == nthreads
                          ? static_cast<std::uint64_t>(g.num_vertices)
                          : cut(tid + 1)};
    if (r.end > g.num_vertices) {
        r.end = g.num_vertices;
    }
    if (r.begin > r.end) {
        r.begin = r.end;
    }
    return r;
}

/**
 * Bin-major traversal of the blocked layout: for every bin, this
 * thread runs pre / edge / post over the bin's destinations inside
 * its own id range. Destination ownership (degreeBalancedRange) is
 * identical in every bin, so post() stays owner-exclusive; `e` values
 * index the layout's neighbors()/weights() arrays.
 */
template <class Ctx, class Member, class Pre, class Edge, class Post>
void
pullBlocked(Ctx& ctx, const Csr& g, Member&& member, Pre&& pre,
            Edge&& edge, Post&& post)
{
    const Range range = degreeBalancedRange(ctx, g);
    const graph::BlockedCsr& layout = *g.blocked;
    const graph::VertexId* const nbrs = layout.neighbors().data();
    for (int b = 0; b < layout.numBins(); ++b) {
        const graph::BlockedCsr::Bin& bin = layout.bin(b);
        const auto lo = std::lower_bound(
            bin.dsts.begin(), bin.dsts.end(),
            static_cast<graph::VertexId>(range.begin));
        const auto hi = std::lower_bound(
            lo, bin.dsts.end(), static_cast<graph::VertexId>(range.end));
        for (auto it = lo; it != hi; ++it) {
            const graph::VertexId v = ctx.read(*it);
            if (!pre(v)) {
                continue;
            }
            const auto di =
                static_cast<std::size_t>(it - bin.dsts.begin());
            const graph::EdgeId beg = ctx.read(bin.offsets[di]);
            const graph::EdgeId end = ctx.read(bin.offsets[di + 1]);
            for (graph::EdgeId e = beg; e < end; ++e) {
                const graph::VertexId u = ctx.read(nbrs[e]);
                ctx.work(1);
                if (!member(u)) {
                    continue;
                }
                if (edge(v, u, e)) {
                    break;
                }
            }
            post(v);
        }
    }
}

} // namespace detail

/**
 * Pull-direction (direction-optimized) frontier round: every vertex
 * that passes @p pre(v) scans its neighbors, keeping only those on
 * the current front (engine.inCurrent probe against the dense flag
 * array). @p edge(v, u, e) returns true to stop scanning v early —
 * the saving that makes pull win on heavy fronts. @p post(v) runs
 * after v's scan (also when no neighbor matched); writes made there
 * are owner-exclusive, since each vertex is visited by exactly one
 * thread, so self-activation needs no lock.
 *
 * The round's flags are NOT consumed here — the caller must clear
 * them from advance()'s between-hook via engine.clearCurrentBlock.
 * The primitive charges ctx.work(1) per scanned edge (the pull path
 * is new; there is no hand-rolled cost profile to preserve) and bumps
 * kPullRounds / records a "round-pull" span.
 *
 * Blocked contract: when g.blocked is set, the traversal is bin-major
 * and pre / edge / post run once per (bin, vertex) pair instead of
 * once per vertex — the same thread owns a vertex in every bin, so
 * post stays owner-exclusive, but the per-vertex fold MUST be
 * incremental: pre re-reads current state, post folds a partial
 * result into it (BFS's set-once claim and CC's monotone min both
 * qualify; an overwrite like "result = partial sum" does not — use
 * edgeMapGatherBlocked for those). `e` then indexes the blocked
 * layout's arrays, not the graph's.
 */
template <class Ctx, class Pre, class Edge, class Post>
void
edgeMapPull(Ctx& ctx, const Csr& g, FrontierEngine& engine,
            std::uint64_t round, Pre&& pre, Edge&& edge, Post&& post)
{
    obs::Track* const track =
        obs::trackFor(obs::sink(), obs::ctxTrackKind<Ctx>, ctx.tid());
    const std::uint64_t begin = track != nullptr ? ctx.timestamp() : 0;
    if (track != nullptr && ctx.tid() == 0) {
        obs::counterBump(track, obs::Counter::kPullRounds, 1);
    }
    const auto member = [&](graph::VertexId u) {
        return engine.inCurrent(ctx, round, u);
    };
    if (g.blocked != nullptr) {
        detail::pullBlocked(ctx, g, member, pre, edge, post);
    } else {
        const Range range =
            blockPartition(g.num_vertices, ctx.tid(), ctx.nthreads());
        for (std::uint64_t vi = range.begin; vi < range.end; ++vi) {
            const auto v = static_cast<graph::VertexId>(vi);
            detail::pullVertex(ctx, g, v, member, pre, edge, post);
        }
    }
    if (track != nullptr) {
        obs::spanRecord(track, {begin, ctx.timestamp(), "round-pull",
                                round, obs::SpanCat::kRound});
    }
}

/**
 * Frontier-less dense gather over this thread's static block: every
 * vertex passing @p pre scans all neighbors (no membership probe, no
 * early exit unless @p edge returns true). This is the paper's
 * pull-style full-rescan structure (connected components) and the
 * gather half of pull PageRank. The blocked per-(bin, vertex)
 * contract of edgeMapPull applies here too when g.blocked is set.
 */
template <class Ctx, class Pre, class Edge, class Post>
void
edgeMapPullAll(Ctx& ctx, const Csr& g, Pre&& pre, Edge&& edge,
               Post&& post)
{
    const auto all = [](graph::VertexId) { return true; };
    if (g.blocked != nullptr) {
        detail::pullBlocked(ctx, g, all, pre, edge, post);
        return;
    }
    const Range range =
        blockPartition(g.num_vertices, ctx.tid(), ctx.nthreads());
    for (std::uint64_t vi = range.begin; vi < range.end; ++vi) {
        detail::pullVertex(ctx, g, static_cast<graph::VertexId>(vi), all,
                           pre, edge, post);
    }
}

/**
 * Guided-scheduling variant of edgeMapPullAll, for gathers whose
 * per-vertex cost is degree-skewed (pull PageRank on power-law
 * inputs). Deterministic despite the dynamic assignment: each vertex
 * is processed by exactly one thread and its gather reads only values
 * frozen for the phase.
 *
 * Deliberately ignores g.blocked: guided assignment can hand the same
 * vertex's bins to different threads, which would break the blocked
 * owner-exclusivity contract. Callers with a non-incremental fold use
 * edgeMapGatherBlocked on blocked graphs instead.
 */
template <class Ctx, class Pre, class Edge, class Post>
void
edgeMapPullAllGuided(Ctx& ctx, const Csr& g, CaptureCounter& cursor,
                     Pre&& pre, Edge&& edge, Post&& post)
{
    vertexMapGuided(ctx, cursor, g.num_vertices, [&](std::uint64_t vi) {
        detail::pullVertex(ctx, g, static_cast<graph::VertexId>(vi),
                           [](graph::VertexId) { return true; }, pre,
                           edge, post);
    });
}

/**
 * Propagation-blocking gather over a blocked layout (g.blocked must
 * be set): @p zero(v) resets each owned destination's accumulator,
 * @p accum(v, u, e) folds one in-edge bin-major — so the per-source
 * read window stays inside one bin's cache footprint — and
 * @p finish(v) turns the accumulated value into the result. This is
 * the non-incremental-fold counterpart of the blocked edgeMapPull
 * contract (PageRank's gather: zero rank, sum frozen shares, apply
 * Equation 1).
 *
 * All three phases use the same degree-balanced static destination
 * partition, so every write is owner-exclusive and no barriers are
 * needed between phases. Charges ctx.work(1) per folded edge; `e`
 * indexes the layout's arrays.
 */
template <class Ctx, class Zero, class Accum, class Finish>
void
edgeMapGatherBlocked(Ctx& ctx, const Csr& g, Zero&& zero, Accum&& accum,
                     Finish&& finish)
{
    CRONO_ASSERT(g.blocked != nullptr,
                 "edgeMapGatherBlocked needs a blocked layout");
    const Range range = detail::degreeBalancedRange(ctx, g);
    for (std::uint64_t vi = range.begin; vi < range.end; ++vi) {
        zero(static_cast<graph::VertexId>(vi));
    }
    const graph::BlockedCsr& layout = *g.blocked;
    const graph::VertexId* const nbrs = layout.neighbors().data();
    for (int b = 0; b < layout.numBins(); ++b) {
        const graph::BlockedCsr::Bin& bin = layout.bin(b);
        const auto lo = std::lower_bound(
            bin.dsts.begin(), bin.dsts.end(),
            static_cast<graph::VertexId>(range.begin));
        const auto hi = std::lower_bound(
            lo, bin.dsts.end(), static_cast<graph::VertexId>(range.end));
        for (auto it = lo; it != hi; ++it) {
            const graph::VertexId v = ctx.read(*it);
            const auto di =
                static_cast<std::size_t>(it - bin.dsts.begin());
            const graph::EdgeId beg = ctx.read(bin.offsets[di]);
            const graph::EdgeId end = ctx.read(bin.offsets[di + 1]);
            for (graph::EdgeId e = beg; e < end; ++e) {
                ctx.work(1);
                accum(v, ctx.read(nbrs[e]), e);
            }
        }
    }
    for (std::uint64_t vi = range.begin; vi < range.end; ++vi) {
        finish(static_cast<graph::VertexId>(vi));
    }
}

// --------------------------------------------------------- reductions

/** Per-thread cache-line-padded reduction slots. */
template <class T>
struct ReduceSlots {
    explicit ReduceSlots(int nthreads)
        : slots(static_cast<std::size_t>(nthreads))
    {
    }

    std::vector<Padded<T>> slots;
};

/**
 * Deterministic all-threads reduction: publish @p local, rendezvous,
 * then every thread folds the slots in tid order. One barrier, O(T)
 * reads per thread, and — unlike the fetchAdd merge it replaces —
 * a result independent of thread arrival order (which matters for
 * floating-point sums like community detection's 2m).
 *
 * All threads must call it; all receive the same result.
 */
template <class Ctx, class T, class Op>
T
reducePerThread(Ctx& ctx, ReduceSlots<T>& r, T local, Op&& op)
{
    ctx.write(r.slots[static_cast<std::size_t>(ctx.tid())].value, local);
    ctx.barrier();
    T acc = ctx.read(r.slots[0].value);
    for (int t = 1; t < ctx.nthreads(); ++t) {
        acc = op(acc, ctx.read(r.slots[static_cast<std::size_t>(t)].value));
    }
    return acc;
}

/**
 * Tree reduction: publish @p local, then combine pairwise with
 * stride doubling (log2(T) barriered levels, O(1) reads per thread
 * per level). Deterministic combine order; all threads receive the
 * final value. Prefer reducePerThread for small thread counts — the
 * tree pays off when T is large enough that O(T) serial reads per
 * thread dominate.
 */
template <class Ctx, class T, class Op>
T
reduce(Ctx& ctx, ReduceSlots<T>& r, T local, Op&& op)
{
    const int tid = ctx.tid();
    const int nthreads = ctx.nthreads();
    ctx.write(r.slots[static_cast<std::size_t>(tid)].value, local);
    ctx.barrier();
    for (int stride = 1; stride < nthreads; stride <<= 1) {
        if (tid % (2 * stride) == 0 && tid + stride < nthreads) {
            const T mine =
                ctx.read(r.slots[static_cast<std::size_t>(tid)].value);
            const T theirs = ctx.read(
                r.slots[static_cast<std::size_t>(tid + stride)].value);
            ctx.write(r.slots[static_cast<std::size_t>(tid)].value,
                      op(mine, theirs));
        }
        ctx.barrier();
    }
    return ctx.read(r.slots[0].value);
}

// ------------------------------------------------------ scratch arena

/**
 * Reusable per-thread scratch buffers. A kernel asks for typed lanes
 * (`arena.lane<Dist>(tid, 0, n)`); storage is cache-line aligned,
 * grows monotonically, and persists across rounds, so the per-round
 * working set is allocated once and then only re-touched — the
 * "private structures that thrash the L1" the paper describes for
 * APSP, without per-round allocator traffic.
 *
 * Lanes are returned uninitialized; callers write before reading
 * (every current user initializes or fills slots before use). Lane
 * growth is thread-private: each tid only ever touches its own entry.
 */
class ScratchArena {
  public:
    explicit ScratchArena(int nthreads);

    /** The @p tid thread's lane @p slot, holding @p count Ts. */
    template <class T>
    T*
    lane(int tid, int slot, std::size_t count)
    {
        static_assert(alignof(T) <= kCacheLineBytes);
        return reinterpret_cast<T*>(bytes(tid, slot, count * sizeof(T)));
    }

  private:
    std::byte* bytes(int tid, int slot, std::size_t size);

    struct alignas(kCacheLineBytes) Thread {
        std::vector<AlignedVector<std::byte>> lanes;
    };

    std::vector<Thread> threads_;
};

// ------------------------------------------------------- branch stack

/**
 * First-touch claim idiom: cheap racy read, then fetchAdd as the
 * claim. Returns true iff the caller won @p v.
 */
template <class Ctx>
bool
tryClaim(Ctx& ctx, std::uint32_t* claimed, std::uint32_t v)
{
    // The pre-filter is a declared-racy probe (readAtomic): a stale 0
    // just means a losing fetchAdd; the RMW is the real arbiter.
    return ctx.readAtomic(claimed[v]) == 0 &&
           ctx.fetchAdd(claimed[v], 1u) == 0;
}

/**
 * Shared LIFO of subtree roots for branch-parallel traversals (DFS)
 * and the rt::bnb search framework. pop() increments a `working`
 * count under the stack lock so the empty+idle termination test is
 * race-free: a thread observing an empty stack with zero workers
 * knows no branch can ever appear again.
 *
 * The element type defaults to the vertex ids DFS donates; rt::bnb
 * instantiates it with whole (trivially copyable) search nodes, so a
 * donation moves the entire subproblem through the modeled stack.
 */
template <class Ctx, class T = std::uint32_t>
class BranchStack {
  public:
    /** @param capacity max simultaneous entries (use V). */
    explicit BranchStack(std::uint64_t capacity) : stack_(capacity) {}

    /** Host-side, pre-region: push the initial branch root(s). */
    void
    hostSeed(const T& v)
    {
        stack_[top_.value] = v;
        ++top_.value;
    }

    /**
     * Pop a branch root into @p out, registering the caller as
     * working. Returns true on success; on false, *done tells the
     * caller whether the traversal is over (empty stack, nobody
     * working) or it should retry after an idle poll.
     */
    bool
    pop(Ctx& ctx, T* out, bool* done)
    {
        ctx.lock(lock_);
        const std::uint64_t top = ctx.read(top_.value);
        bool popped = false;
        if (top > 0) {
            *out = ctx.read(stack_[top - 1]);
            ctx.write(top_.value, top - 1);
            ctx.write(working_.value, ctx.read(working_.value) + 1);
            popped = true;
            *done = false;
        } else {
            *done = ctx.read(working_.value) == 0;
        }
        ctx.unlock(lock_);
        return popped;
    }

    /**
     * Register the caller as working without popping — for work
     * obtained outside the stack (rt::bnb's statically designated
     * branches), so the empty+idle termination test still covers the
     * donations that work may produce. Pair with finish().
     */
    void
    enter(Ctx& ctx)
    {
        ctx.lock(lock_);
        ctx.write(working_.value, ctx.read(working_.value) + 1);
        ctx.unlock(lock_);
    }

    /** Racy shallowness probe — donation heuristic, stale reads fine
     *  either way (declared via readAtomic: misjudging only trades a
     *  donation for a local push or vice versa). */
    bool
    below(Ctx& ctx, std::uint64_t limit)
    {
        return ctx.readAtomic(top_.value) < limit;
    }

    /**
     * Donate @p v as a new branch root. Returns false (declining the
     * donation) when the stack is at capacity — the caller keeps the
     * branch and explores it locally, so capacity exhaustion degrades
     * to less parallelism, never to loss of work.
     */
    bool
    push(Ctx& ctx, const T& v)
    {
        ctx.lock(lock_);
        const std::uint64_t top = ctx.read(top_.value);
        const bool fits = top < stack_.size();
        if (fits) {
            ctx.write(stack_[top], v);
            ctx.write(top_.value, top + 1);
        }
        ctx.unlock(lock_);
        return fits;
    }

    /** Caller finished (or abandoned) its branch. */
    void
    finish(Ctx& ctx)
    {
        ctx.lock(lock_);
        ctx.write(working_.value, ctx.read(working_.value) - 1);
        ctx.unlock(lock_);
    }

  private:
    AlignedVector<T> stack_;
    Padded<std::uint64_t> top_;
    Padded<std::uint64_t> working_;
    typename Ctx::Mutex lock_;
};

} // namespace crono::rt::par

#endif // CRONO_RUNTIME_PAR_H_

/**
 * @file
 * Sense-reversing centralized barrier.
 *
 * Kernels separate phases (e.g. label-set / label-update in connected
 * components) with barriers. A sense-reversing barrier is reusable
 * with no re-initialization between episodes and issues exactly one
 * RMW per participant per episode.
 */

#ifndef CRONO_RUNTIME_BARRIER_H_
#define CRONO_RUNTIME_BARRIER_H_

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/macros.h"

namespace crono::rt {

/** Reusable barrier for a fixed number of participants. */
class Barrier {
  public:
    explicit Barrier(int participants) : participants_(participants)
    {
        CRONO_ASSERT(participants >= 1, "barrier needs >= 1 participant");
    }

    Barrier(const Barrier&) = delete;
    Barrier& operator=(const Barrier&) = delete;

    /**
     * Block until all participants arrive.
     *
     * Each thread keeps its own sense in thread-local fashion via the
     * per-call flip: callers must all use the same Barrier object for
     * every episode, which the executor guarantees.
     */
    void
    arriveAndWait()
    {
        const std::uint32_t my_epoch = epoch_.load(std::memory_order_relaxed);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            participants_) {
            arrived_.store(0, std::memory_order_relaxed);
            epoch_.fetch_add(1, std::memory_order_release);
        } else {
            while (epoch_.load(std::memory_order_acquire) == my_epoch) {
                std::this_thread::yield();
            }
        }
    }

  private:
    std::atomic<int> arrived_{0};
    std::atomic<std::uint32_t> epoch_{0};
    int participants_;
};

} // namespace crono::rt

#endif // CRONO_RUNTIME_BARRIER_H_

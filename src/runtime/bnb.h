/**
 * @file
 * rt::bnb — the generalized parallel branch-and-bound framework.
 *
 * TSP (Section III-6 of the paper) hard-codes a pattern: branches
 * designated statically, captured by threads through an atomic
 * counter, searched depth-first against a global best-cost bound that
 * is read racily on the hot path and improved under a lock. That
 * machinery — par::BranchStack, rt::GlobalBound, the CaptureCounter
 * capture idiom — is one hand-specialized instance of a reusable
 * parallel search abstraction. This header expresses it once, as a
 * typed Searcher over a pluggable Policy, so a second B&B workload
 * (the McSplit maximum-common-subgraph kernel) is a policy rather
 * than a reimplementation, and both inherit the same telemetry, race
 * discipline, and deterministic-replay story.
 *
 * Policy concept (see core::TspPolicy / core::McsPolicy):
 *
 *   using Node = ...;              // trivially copyable search node
 *   std::uint64_t numBranches();   // static branch designation
 *   bool root(Ctx&, std::uint64_t branch, Node* out);
 *                                  // build branch root; false = skip
 *   std::uint64_t lowerBound(Ctx&, const Node&);
 *                                  // optimistic completion cost
 *   bool objective(Ctx&, const Node&, std::uint64_t* value);
 *                                  // candidate solution at this node?
 *   void expand(Ctx&, const Node&, Emit&&);
 *                                  // emit children in DFS order
 *   void install(Ctx&, const Node&);
 *                                  // record solution payload (called
 *                                  // under the searcher's best-lock)
 *   void branchDone(Ctx&);         // one designated branch finished
 *
 * Everything is minimized: a maximizing policy (MCS) maps its score s
 * onto the objective `cap - s`, which keeps rt::GlobalBound's
 * monotone-non-increasing contract (and its readAtomic pruning
 * justification) intact for every consumer.
 *
 * Search-node lifecycle: a node is born in policy.root() (branch
 * roots) or policy.expand() (children), lives on the thread-private
 * DFS stack — plain memory, never modeled, exactly like the old TSP
 * kernel's private path vector — and dies when popped: the searcher
 * counts it (kBranches), offers its objective to the bound, prunes it
 * against the racy global bound, or expands it. A node crosses
 * threads only by donation, which moves the whole (trivially
 * copyable) node through the Ctx-modeled shared BranchStack.
 *
 * Donation policy: after the first child of an expansion is kept
 * local (deepen-first, same as the DFS kernel), later siblings are
 * donated while the shared stack is below donate_factor * nthreads
 * entries (below() is a declared-racy probe; a full stack declines
 * the push and the child stays local). donate_factor = 0 disables
 * donation entirely — the TSP default, preserving the paper's
 * capture-only structure.
 *
 * Bound protocol (lifted verbatim from TSP): prune on a racy
 * bound.current() read — stale values are only ever high, so a miss
 * merely delays pruning; improve via tryImprove()'s
 * filter-then-lock-then-recheck; install the winning payload under a
 * separate best-lock only after re-reading the bound equals the
 * candidate, so a concurrently installed better solution is never
 * overwritten by a worse one.
 *
 * Deterministic replay mode (SearchConfig::deterministic): branches
 * are assigned by fixed round-robin (branch b to thread b % T)
 * instead of atomic capture, donation is disabled, and each thread
 * prunes only against a thread-local bound — no cross-thread reads on
 * the search path at all — with the per-thread bests merged once, in
 * tid order, behind a barrier. Node visit counts are then a pure
 * function of (policy, nthreads), reproducible across runs, so the
 * race detector and the differential harness can compare a replay
 * run against a sequential oracle node-for-node (T = 1 replays the
 * oracle's exact visit order).
 */

#ifndef CRONO_RUNTIME_BNB_H_
#define CRONO_RUNTIME_BNB_H_

#include <algorithm>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/aligned.h"
#include "common/macros.h"
#include "obs/telemetry.h"
#include "runtime/par.h"
#include "runtime/strategies.h"

namespace crono::rt::bnb {

/** Objective value meaning "no solution installed yet". */
inline constexpr std::uint64_t kNoSolution = ~std::uint64_t{0};

/** Donation and replay knobs for one Searcher. */
struct SearchConfig {
    /**
     * Donate later siblings while the shared stack holds fewer than
     * donate_factor * nthreads nodes. 0 disables donation (TSP's
     * paper-faithful capture-only default).
     */
    std::uint64_t donate_factor = 0;
    /** Shared donation-stack capacity (nodes). */
    std::uint64_t stack_capacity = 256;
    /**
     * Deterministic replay: fixed branch order, donation disabled,
     * thread-local bounds merged in tid order behind a barrier.
     */
    bool deterministic = false;
};

/** Printable name of a searcher mode ("capture" / "replay"). */
const char* searchModeName(bool deterministic);

/** Aggregated statistics of the most recent run. */
struct SearchStats {
    std::uint64_t nodes = 0;     ///< search-tree nodes visited
    std::uint64_t donations = 0; ///< nodes moved through the stack
};

/**
 * Typed parallel branch-and-bound searcher. Construct host-side, run
 * from every thread of one parallel region, read value() host-side
 * afterwards. The Policy holds the solution payload; the searcher
 * owns bound, branch designation, donation, and termination.
 */
template <class Ctx, class Policy>
class Searcher {
  public:
    using Node = typename Policy::Node;
    static_assert(std::is_trivially_copyable_v<Node>,
                  "search nodes move through the shared stack by copy");

    Searcher(Policy& policy, int nthreads, SearchConfig cfg = {})
        : policy_(policy), cfg_(cfg), shared_(cfg.stack_capacity),
          locals_(static_cast<std::size_t>(nthreads))
    {
        CRONO_REQUIRE(nthreads > 0, "Searcher needs >= 1 thread");
        CRONO_REQUIRE(cfg.stack_capacity > 0,
                      "Searcher needs a nonempty shared stack");
    }

    /** Thread body: call exactly once from every region thread. */
    void
    run(Ctx& ctx)
    {
        SearchStats st;
        std::vector<Node> local;
        if (cfg_.deterministic) {
            runReplay(ctx, local, st);
        } else {
            runCapture(ctx, local, st);
        }
        ctx.fetchAdd(nodes_.value, st.nodes);
        ctx.fetchAdd(donations_.value, st.donations);
        obs::counterAdd(ctx, obs::Counter::kBranches, st.nodes);
        obs::counterAdd(ctx, obs::Counter::kDonations, st.donations);
    }

    /** Best objective installed, or kNoSolution (host-side). */
    std::uint64_t value() const { return bound_.value; }

    /** Whole-run statistics, summed over threads (host-side). */
    SearchStats
    stats() const
    {
        return {nodes_.value, donations_.value};
    }

  private:
    /** Shared-bound handle: the capture-mode pruning/install path. */
    struct SharedBound {
        Searcher* s;

        std::uint64_t
        current(Ctx& ctx)
        {
            return s->bound_.current(ctx);
        }

        void
        offer(Ctx& ctx, std::uint64_t value, const Node& n)
        {
            if (!s->bound_.tryImprove(ctx, value)) {
                return;
            }
            ctx.lock(s->best_lock_);
            // Re-check under the lock: a concurrent improvement past
            // `value` must not be overwritten by this (worse)
            // solution. Declared-racy probe: best_lock_ does not
            // order against the bound's own mutex, so a concurrent
            // improver may write mid-read; any mismatch skips the
            // install, leaving the payload to the better bound's
            // owner.
            if (ctx.readAtomic(s->bound_.value) == value) {
                s->policy_.install(ctx, n);
            }
            ctx.unlock(s->best_lock_);
        }
    };

    /** Thread-local bound handle: the replay-mode path (no shared
     *  reads; the merge happens later, in tid order). */
    struct LocalBound {
        std::uint64_t best = kNoSolution;
        Node node{};
        bool has_node = false;

        std::uint64_t current(Ctx&) const { return best; }

        void
        offer(Ctx&, std::uint64_t value, const Node& n)
        {
            if (value < best) {
                best = value;
                node = n;
                has_node = true;
            }
        }
    };

    void
    runCapture(Ctx& ctx, std::vector<Node>& local, SearchStats& st)
    {
        SharedBound bound{this};
        const std::uint64_t total = policy_.numBranches();
        const std::uint64_t donate_limit =
            cfg_.donate_factor *
            static_cast<std::uint64_t>(ctx.nthreads());
        bool captures_done = false;
        for (;;) {
            if (!captures_done) {
                const std::uint64_t b =
                    captureNext(ctx, counter_, total);
                if (b == kCaptureDone) {
                    captures_done = true;
                } else {
                    obs::counterAdd(ctx, obs::Counter::kCaptures, 1);
                    shared_.enter(ctx);
                    Node root;
                    if (policy_.root(ctx, b, &root)) {
                        dfsFrom(ctx, root, local, bound, donate_limit,
                                st);
                    }
                    shared_.finish(ctx);
                    policy_.branchDone(ctx);
                    continue;
                }
            }
            bool done = false;
            Node n;
            if (shared_.pop(ctx, &n, &done)) {
                dfsFrom(ctx, n, local, bound, donate_limit, st);
                shared_.finish(ctx);
            } else if (done) {
                break;
            } else {
                ctx.work(8); // idle poll
            }
        }
    }

    void
    runReplay(Ctx& ctx, std::vector<Node>& local, SearchStats& st)
    {
        LocalBound& bound =
            locals_[static_cast<std::size_t>(ctx.tid())].value;
        const std::uint64_t total = policy_.numBranches();
        const auto tid = static_cast<std::uint64_t>(ctx.tid());
        const auto nthreads =
            static_cast<std::uint64_t>(ctx.nthreads());
        for (std::uint64_t b = tid; b < total; b += nthreads) {
            Node root;
            if (policy_.root(ctx, b, &root)) {
                dfsFrom(ctx, root, local, bound, /*donate_limit=*/0,
                        st);
            }
            policy_.branchDone(ctx);
        }
        ctx.barrier();
        // Merge in tid order on one thread: deterministic winner
        // (strict improvement keeps the lowest-tid holder on ties),
        // installed through the same offer protocol so the payload
        // path is identical to capture mode.
        if (ctx.tid() == 0) {
            SharedBound merged{this};
            for (int t = 0; t < ctx.nthreads(); ++t) {
                const LocalBound& lb =
                    locals_[static_cast<std::size_t>(t)].value;
                if (lb.has_node &&
                    ctx.read(lb.best) < bound_.current(ctx)) {
                    merged.offer(ctx, ctx.read(lb.best), lb.node);
                }
            }
        }
    }

    /**
     * Exhaust the subtree rooted at @p root depth-first. Children are
     * visited in the policy's emission order (the local stack holds
     * them reversed so the first child is deepened next); later
     * siblings are donated while the shared stack is shallow.
     */
    template <class Bound>
    void
    dfsFrom(Ctx& ctx, const Node& root, std::vector<Node>& local,
            Bound& bound, std::uint64_t donate_limit, SearchStats& st)
    {
        const std::size_t base = local.size();
        local.push_back(root);
        while (local.size() > base) {
            const Node n = local.back();
            local.pop_back();
            ctx.work(2);
            ++st.nodes;
            std::uint64_t value = 0;
            if (policy_.objective(ctx, n, &value)) {
                bound.offer(ctx, value, n);
            }
            // Prune: the racy bound read can only be stale-high,
            // which merely delays pruning (replay mode reads a
            // thread-local bound instead — no read at all).
            if (policy_.lowerBound(ctx, n) >= bound.current(ctx)) {
                continue;
            }
            const std::size_t mark = local.size();
            std::uint64_t emitted = 0;
            policy_.expand(ctx, n, [&](const Node& child) {
                // Deepen along the first child; donate later siblings
                // while other threads may be starving (full stack =>
                // donation declined, child stays local).
                ++emitted;
                if (emitted > 1 && donate_limit > 0 &&
                    shared_.below(ctx, donate_limit) &&
                    shared_.push(ctx, child)) {
                    // crono-lint: allow(capture-escape): st is the calling thread's private SearchStats (declared in run()'s frame and only summed into shared counters after the search) — the emit lambda never leaves this thread
                    ++st.donations;
                } else {
                    local.push_back(child);
                }
            });
            std::reverse(local.begin() +
                             static_cast<std::ptrdiff_t>(mark),
                         local.end());
        }
    }

    Policy& policy_;
    SearchConfig cfg_;
    GlobalBound<Ctx> bound_;
    typename Ctx::Mutex best_lock_;
    CaptureCounter counter_;
    par::BranchStack<Ctx, Node> shared_;
    std::vector<Padded<LocalBound>> locals_; ///< replay per-thread bests
    Padded<std::uint64_t> nodes_;
    Padded<std::uint64_t> donations_;
};

} // namespace crono::rt::bnb

#endif // CRONO_RUNTIME_BNB_H_

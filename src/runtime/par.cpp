#include "runtime/par.h"

#include "common/macros.h"

namespace crono::rt::par {

ScratchArena::ScratchArena(int nthreads)
    : threads_(static_cast<std::size_t>(nthreads))
{
    CRONO_REQUIRE(nthreads >= 1, "scratch arena needs >= 1 thread");
}

std::byte*
ScratchArena::bytes(int tid, int slot, std::size_t size)
{
    Thread& t = threads_[static_cast<std::size_t>(tid)];
    if (t.lanes.size() <= static_cast<std::size_t>(slot)) {
        t.lanes.resize(static_cast<std::size_t>(slot) + 1);
    }
    AlignedVector<std::byte>& lane =
        t.lanes[static_cast<std::size_t>(slot)];
    if (lane.size() < size) {
        lane.resize(size);
    }
    return lane.data();
}

} // namespace crono::rt::par

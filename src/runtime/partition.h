/**
 * @file
 * Graph-division partitioners.
 *
 * "Graph division" (Table I) statically splits the vertex range among
 * threads. Two flavors are provided: contiguous blocks (good locality
 * for lattice-like graphs) and cyclic striping (better balance for
 * skewed degree distributions).
 */

#ifndef CRONO_RUNTIME_PARTITION_H_
#define CRONO_RUNTIME_PARTITION_H_

#include <cstdint>

#include "common/macros.h"

namespace crono::rt {

/** Half-open index range [begin, end). */
struct Range {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;

    std::uint64_t size() const { return end - begin; }
    bool empty() const { return begin == end; }

    friend bool operator==(const Range&, const Range&) = default;
};

/**
 * Contiguous block owned by thread @p tid out of @p nthreads over
 * [0, total). Remainder elements go to the lowest-numbered threads so
 * block sizes differ by at most one.
 */
inline Range
blockPartition(std::uint64_t total, int tid, int nthreads)
{
    CRONO_ASSERT(nthreads >= 1 && tid >= 0 && tid < nthreads,
                 "bad partition arguments");
    const std::uint64_t base = total / nthreads;
    const std::uint64_t extra = total % nthreads;
    const auto t = static_cast<std::uint64_t>(tid);
    const std::uint64_t begin = t * base + (t < extra ? t : extra);
    return {begin, begin + base + (t < extra ? 1 : 0)};
}

/**
 * Visit the cyclic stripe {tid, tid + nthreads, ...} of [0, total).
 * @param fn callable taking the element index
 */
template <class Fn>
void
cyclicPartition(std::uint64_t total, int tid, int nthreads, Fn&& fn)
{
    for (std::uint64_t i = static_cast<std::uint64_t>(tid); i < total;
         i += static_cast<std::uint64_t>(nthreads)) {
        fn(i);
    }
}

} // namespace crono::rt

#endif // CRONO_RUNTIME_PARTITION_H_

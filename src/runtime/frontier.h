/**
 * @file
 * Sparse-frontier work-list engine with adaptive dense/sparse
 * switching for the frontier-driven kernels.
 *
 * CRONO's released kernels advance each round by rescanning every
 * thread's full static vertex block for per-vertex `active` flags —
 * O(V) work per round even when the pareto front holds a handful of
 * vertices, which is exactly the regime the road-network inputs
 * (avg degree ~2.6, huge diameter, thousands of tiny rounds) spend
 * most of their time in. The FrontierEngine keeps that dense bitmap
 * representation available but adds per-thread sparse work-lists
 * (chunked vertex queues with padded claim cursors) plus
 * chunk-granularity work-stealing, and can pick the representation
 * per round from front occupancy (FrontierMode::kAdaptive).
 *
 * Design invariants:
 *  - Membership is always tracked in the parity-indexed flag arrays;
 *    in the queue-backed modes (kSparse/kAdaptive) activations are
 *    additionally appended to the activating thread's queue, so a
 *    round can be *consumed* either densely (scan the thread's static
 *    block of flags) or sparsely (claim chunks from the per-thread
 *    queues, own queue first, then steal round-robin) — switching
 *    representation between rounds is free. The flag arrays double as
 *    the pull-side membership probe (inCurrent): a direction-
 *    optimized round skips processCurrent entirely and has every
 *    *destination* scan its neighbors against the current parity,
 *    clearing its own flag block in advance()'s between-barriers hook
 *    (see clearCurrentBlock).
 *  - Every shared-memory access goes through the ExecutionContext
 *    (`ctx.read/write/fetchAdd`), so simulated cache and NoC traffic
 *    stays honest when the engine runs on the Graphite-style
 *    simulator. Owner-private bookkeeping (chunk fill cursors,
 *    pending counts) is deliberately *not* modeled, the same way
 *    kernels keep loop state in registers.
 *  - Producers must guarantee exclusive activation of a vertex (the
 *    kernels already do: per-vertex locks in SSSP/CC, the claimed
 *    atomic in BFS), mirroring the contract of the flag-scan code.
 *
 * The engine also records each thread's ops() at every round
 * boundary, so drivers can report the Variability metric (Equation 2
 * of the paper) per round rather than per run — that is what makes
 * the load imbalance removed by work-stealing visible to the benches.
 */

#ifndef CRONO_RUNTIME_FRONTIER_H_
#define CRONO_RUNTIME_FRONTIER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/aligned.h"
#include "common/macros.h"
#include "obs/telemetry.h"
#include "runtime/executor.h"
#include "runtime/partition.h"
#include "runtime/strategies.h"

namespace crono::rt {

/** Vertices per work-list chunk (also the stealing granularity). */
inline constexpr std::uint32_t kFrontierChunkCap = 256;

/**
 * Dense-switch factor k of the adaptive policy: a round is consumed
 * densely when front_size * avg_degree > V / k.
 */
inline constexpr std::uint64_t kFrontierDenseSwitchFactor = 4;

/**
 * Front size above which kAdaptive consumes a round densely:
 * front * (E/V) > V/k  <=>  front > V^2 / (k * E).
 */
std::uint64_t denseFrontThreshold(std::uint64_t num_vertices,
                                  std::uint64_t num_edges);

/**
 * Pull-switch divisor d of the direction-optimizing policy: a round
 * whose front exceeds V / d is consumed pull-side (when the kernel
 * supports it). The GAP-style intuition: once a sizable fraction of
 * the graph is on the front, most push edge-scans hit already-claimed
 * destinations, while a destination-side gather can stop at its first
 * in-front neighbor — on power-law inputs the heavy middle rounds of
 * a BFS put 20-60% of all vertices on the front at once. V/20 keeps
 * road networks (fronts of a few hundred out of 10^5+ vertices)
 * permanently push-side while catching exactly those heavy rounds.
 */
inline constexpr std::uint64_t kFrontierPullSwitchDivisor = 20;

/** Front size above which a round is consumed pull-side (>= 1). */
std::uint64_t pullFrontThreshold(std::uint64_t num_vertices);

/**
 * Per-round traversal decision of FrontierEngine::planRound: how the
 * current round's front should be consumed.
 */
enum class RoundPlan : int {
    kSparsePush = 0, ///< drain the per-thread work lists (push)
    kDensePush = 1,  ///< scan the dense flag array (push)
    kPull = 2,       ///< destinations gather against the flag array
};

/**
 * Double-buffered frontier over vertices [0, V): dense parity-indexed
 * flag arrays plus per-thread chunked queues with work-stealing.
 *
 * Round protocol, executed by all nthreads threads of one parallel
 * region (rounds are numbered from 0; parity = round & 1):
 *
 *   seed()/seedAll()                  host side, before the region
 *   loop:
 *     dense = denseRound(front)       pure, same answer on all threads
 *     processCurrent(ctx, round, dense, fn)
 *        -> fn(v) exactly once per active vertex; inside fn the
 *           kernel calls activate(ctx, round, v') for next-round work
 *     front = advance(ctx, round)     two barriers, returns next size
 *   until front == 0
 */
class FrontierEngine {
  public:
    using Vertex = std::uint32_t;

    /**
     * @param num_edges directed edge count of the graph, used only by
     *        the adaptive dense/sparse policy (avg degree = E/V).
     */
    FrontierEngine(std::uint64_t num_vertices, std::uint64_t num_edges,
                   int nthreads, FrontierMode mode);

    FrontierEngine(const FrontierEngine&) = delete;
    FrontierEngine& operator=(const FrontierEngine&) = delete;

    /** Host-side: mark @p v active for round 0 (idempotent). */
    void seed(Vertex v);

    /** Host-side: mark every vertex active for round 0. */
    void seedAll();

    /** Size of the round-0 front (for the kernel's loop entry). */
    std::uint64_t initialFrontSize() const { return front_[0].value; }

    FrontierMode mode() const { return mode_; }

    /**
     * Representation decision for a round whose front holds
     * @p front_size vertices. Pure function of shared values, so all
     * threads independently derive the same answer.
     */
    bool
    denseRound(std::uint64_t front_size) const
    {
        switch (mode_) {
          case FrontierMode::kFlagScan:
          case FrontierMode::kPull:
            return true;
          case FrontierMode::kSparse:
            return false;
          case FrontierMode::kAdaptive:
            return front_size > denseThreshold_;
        }
        return true;
    }

    /**
     * Full traversal decision for a round whose front holds
     * @p front_size vertices, including the pull side. Pure function
     * of shared values, so all threads independently derive the same
     * answer. @p allow_pull gates the pull side per kernel: a kernel
     * without a pull formulation (SSSP's weighted relaxation) passes
     * false and gets the push-only policy.
     *
     * Direction-optimizing policy (kAdaptive): pull when the front
     * exceeds pullFrontThreshold(V), dense push when it exceeds
     * denseFrontThreshold(V, E), sparse push otherwise.
     */
    RoundPlan
    planRound(std::uint64_t front_size, bool allow_pull) const
    {
        switch (mode_) {
          case FrontierMode::kFlagScan:
            return RoundPlan::kDensePush;
          case FrontierMode::kSparse:
            return RoundPlan::kSparsePush;
          case FrontierMode::kPull:
            return allow_pull ? RoundPlan::kPull : RoundPlan::kDensePush;
          case FrontierMode::kAdaptive:
            if (allow_pull && front_size > pullThreshold_) {
                return RoundPlan::kPull;
            }
            return front_size > denseThreshold_ ? RoundPlan::kDensePush
                                                : RoundPlan::kSparsePush;
        }
        return RoundPlan::kDensePush;
    }

    /**
     * Membership test against the *current* round's flags — the
     * pull-side "is u on the front" probe. Race-free during a pull
     * round: round @p round reads parity round&1 while activations
     * write parity (round+1)&1.
     */
    template <class Ctx>
    bool
    inCurrent(Ctx& ctx, std::uint64_t round, Vertex v)
    {
        return ctx.read(flags_[round & 1].data()[v]) != 0;
    }

    /**
     * Clear this thread's static block of the current round's flags.
     * A pull round never consumes flags through processCurrent, so its
     * front membership must be wiped before the parity is reused; call
     * this from advance()'s between-barriers hook (the round is
     * quiesced there, and parity round&1 is not written again until
     * round+2's activations, which begin after the second barrier).
     */
    template <class Ctx>
    void
    clearCurrentBlock(Ctx& ctx, std::uint64_t round)
    {
        std::uint32_t* flags = flags_[round & 1].data();
        const Range range =
            blockPartition(numVertices_, ctx.tid(), nthreads_);
        for (std::uint64_t v = range.begin; v < range.end; ++v) {
            if (ctx.read(flags[v]) != 0) { // avoid dirtying clean lines
                ctx.write(flags[v], 0u);
            }
        }
    }

    /**
     * Add @p v to round round+1's front. Returns true iff v was newly
     * activated. NOT atomic: the caller must hold v's lock or have
     * won an atomic claim, exactly as the flag-scan kernels do.
     */
    template <class Ctx>
    bool
    activate(Ctx& ctx, std::uint64_t round, Vertex v)
    {
        const std::size_t next = (round + 1) & 1;
        std::uint32_t* flags = flags_[next].data();
        if (ctx.read(flags[v]) != 0) {
            return false; // already in the next front
        }
        ctx.write(flags[v], 1u);
        enqueue(ctx, next, v);
        return true;
    }

    /**
     * Atomic claim-and-activate: the flag's fetch-and-add IS the
     * claim, so a kernel whose only exclusivity need is first-touch
     * discovery (BFS) can drop its separate claimed array — one RMW
     * replaces claim + flag read + flag write. Returns true iff the
     * caller won. The flag may end up > 1 from losing claimants;
     * consumption writes 0, so membership tests (!= 0) are unchanged.
     */
    template <class Ctx>
    bool
    activateClaim(Ctx& ctx, std::uint64_t round, Vertex v)
    {
        const std::size_t next = (round + 1) & 1;
        if (ctx.fetchAdd(flags_[next].data()[v], 1u) != 0) {
            return false;
        }
        enqueue(ctx, next, v);
        return true;
    }

    /**
     * Invoke fn(v) exactly once for every vertex of the current round
     * and clear its membership. Dense rounds scan the thread's static
     * vertex block; sparse rounds drain the thread's own chunk queue,
     * then steal whole chunks round-robin from the other threads'
     * queues through their padded claim cursors.
     */
    template <class Ctx, class Fn>
    void
    processCurrent(Ctx& ctx, std::uint64_t round, bool dense, Fn&& fn)
    {
        // Telemetry (null when idle): one "round" span per thread per
        // round, "steal" spans around drained victim queues, and the
        // dense/sparse/mode-switch counters on thread 0's track. Hooks
        // never touch ctx.read/write, so the simulated statistics are
        // unperturbed.
        obs::Track* const track = obs::trackFor(
            obs::sink(), obs::ctxTrackKind<Ctx>, ctx.tid());
        const std::uint64_t round_begin =
            track != nullptr ? ctx.timestamp() : 0;
        if (track != nullptr && ctx.tid() == 0) {
            obs::counterBump(track,
                             dense ? obs::Counter::kDenseRounds
                                   : obs::Counter::kSparseRounds,
                             1);
            if (round > 0 && dense != lastDense_) {
                obs::counterBump(track, obs::Counter::kModeSwitches, 1);
            }
            lastDense_ = dense;
        }

        const std::size_t p = round & 1;
        std::uint32_t* flags = flags_[p].data();
        if (dense) {
            const Range range =
                blockPartition(numVertices_, ctx.tid(), nthreads_);
            for (std::uint64_t v = range.begin; v < range.end; ++v) {
                if (ctx.read(flags[v]) == 0) {
                    continue;
                }
                ctx.write(flags[v], 0u);
                fn(static_cast<Vertex>(v));
            }
            if (track != nullptr) {
                obs::spanRecord(track, {round_begin, ctx.timestamp(),
                                        "round-dense", round,
                                        obs::SpanCat::kRound});
            }
            return;
        }
        for (int probe = 0; probe < nthreads_; ++probe) {
            const int victim = (ctx.tid() + probe) % nthreads_;
            Queue& q = threads_[static_cast<std::size_t>(victim)].queue[p];
            const std::uint64_t ready = ctx.read(q.ready.value);
            if (ready == 0) {
                continue;
            }
            const bool stealing = victim != ctx.tid();
            const std::uint64_t steal_begin =
                track != nullptr && stealing ? ctx.timestamp() : 0;
            std::uint64_t chunks_taken = 0;
            for (;;) {
                const std::uint64_t i =
                    ctx.fetchAdd(q.claim.value, std::uint64_t{1});
                if (i >= ready) {
                    break;
                }
                ++chunks_taken;
                const Chunk& c = *q.chunks[i];
                const std::uint32_t count = ctx.read(c.size);
                for (std::uint32_t j = 0; j < count; ++j) {
                    const Vertex v = ctx.read(c.items[j]);
                    ctx.write(flags[v], 0u);
                    fn(v);
                }
            }
            if (track != nullptr && stealing) {
                obs::counterBump(track, obs::Counter::kStealAttempts, 1);
                if (chunks_taken != 0) {
                    obs::counterBump(track, obs::Counter::kStealChunks,
                                     chunks_taken);
                    obs::spanRecord(
                        track, {steal_begin, ctx.timestamp(), "steal",
                                chunks_taken, obs::SpanCat::kSteal});
                }
            }
        }
        if (track != nullptr) {
            obs::spanRecord(
                track, {round_begin, ctx.timestamp(), "round-sparse",
                        round, obs::SpanCat::kRound});
        }
    }

    /** advance() without a between-barriers hook. */
    template <class Ctx>
    std::uint64_t
    advance(Ctx& ctx, std::uint64_t round)
    {
        return advance(ctx, round, [] {});
    }

    /**
     * End-of-round rendezvous: publishes this thread's activations and
     * queue, records the per-round ops mark, recycles the consumed
     * parity's queues, and returns the size of the next front
     * (0 = converged). All threads must call it every round.
     *
     * @p between runs between the two barriers, where round @p round
     * is fully quiesced: every write made while processing it is
     * visible and no thread can have started the next round. Reading
     * a shared stop flag here (BFS target found) gives every thread
     * the same snapshot; reading it after advance() returns would
     * not — a fast thread could start the next round and set the flag
     * before a slow thread performed its check, splitting the
     * threads' decisions and deadlocking the next rendezvous.
     */
    template <class Ctx, class Between>
    std::uint64_t
    advance(Ctx& ctx, std::uint64_t round, Between&& between)
    {
        const std::size_t p = round & 1;
        const std::size_t next = p ^ 1;
        PerThread& me = threads_[static_cast<std::size_t>(ctx.tid())];
        me.opsMarks.push_back(ctx.ops()); // pre-wait: captures imbalance
        if (useQueues_) {
            Queue& nq = me.queue[next];
            if (nq.used != 0) { // seal the trailing partial chunk
                ctx.write(nq.chunks[nq.used - 1]->size, nq.fill);
            }
            ctx.write(nq.ready.value, nq.used);
        }
        if (me.pending != 0) {
            obs::counterAdd(ctx, obs::Counter::kActivations, me.pending);
            ctx.fetchAdd(front_[next].value, me.pending);
            me.pending = 0;
        }
        ctx.barrier();
        const std::uint64_t next_front = ctx.read(front_[next].value);
        between();
        if (useQueues_) {
            // Recycle the just-consumed parity: it becomes the push
            // target of the upcoming round. Safe between the two
            // barriers — all consumption finished at the first one,
            // pushes start after the second.
            Queue& cq = me.queue[p];
            ctx.write(cq.claim.value, std::uint64_t{0});
            ctx.write(cq.ready.value, std::uint64_t{0});
            cq.used = 0;
            cq.fill = 0;
        }
        if (ctx.tid() == 0) {
            ctx.write(front_[p].value, std::uint64_t{0});
        }
        ctx.barrier();
        return next_front;
    }

    /**
     * Host-side, after the run: per-round Variability (Equation 2)
     * over the per-thread ops deltas of each round.
     */
    std::vector<double> roundVariability() const;

    /**
     * Host-side, after the run: attach the per-round series to
     * @p info and replace the whole-run scalar with the per-round
     * mean (frontier kernels report imbalance per round, not per
     * run — satellite of the frontier-engine change).
     */
    void applyRoundStats(RunInfo& info) const;

  private:
    struct Chunk {
        std::uint32_t size; ///< sealed entry count (shared-read)
        Vertex items[kFrontierChunkCap];
    };

    /** One parity's work-list of one thread. */
    struct Queue {
        /** Chunk-claim cursor; owner and thieves fetchAdd it. */
        Padded<std::uint64_t> claim;
        /** Consumable chunk count, frozen at the round barrier. */
        Padded<std::uint64_t> ready;
        std::vector<std::unique_ptr<Chunk>> chunks;
        // Owner-private push state (unmodeled, register-like).
        std::uint64_t used = 0; ///< chunks holding entries this fill
        std::uint32_t fill = 0; ///< entries in chunks[used - 1]
    };

    struct alignas(kCacheLineBytes) PerThread {
        Queue queue[2];
        std::uint64_t pending = 0; ///< activations since last advance
        std::vector<std::uint64_t> opsMarks; ///< ops() per round end
    };

    /**
     * Count @p v toward this thread's pending activations and, in the
     * queue-backed modes (kSparse/kAdaptive), append it to the
     * parity-@p next work list. kFlagScan/kPull rounds are always
     * consumed through the flag arrays, so maintaining queues there
     * would only add unmodeled bookkeeping the paper's structure does
     * not have.
     */
    template <class Ctx>
    void
    enqueue(Ctx& ctx, std::size_t next, Vertex v)
    {
        PerThread& me = threads_[static_cast<std::size_t>(ctx.tid())];
        if (!useQueues_) {
            ++me.pending;
            return;
        }
        Queue& q = me.queue[next];
        if (q.fill == kFrontierChunkCap || q.used == 0) {
            if (q.used != 0) { // seal the filled chunk for consumers
                ctx.write(q.chunks[q.used - 1]->size, q.fill);
            }
            if (q.used == q.chunks.size()) {
                q.chunks.emplace_back(new Chunk);
            }
            ++q.used;
            q.fill = 0;
        }
        ctx.write(q.chunks[q.used - 1]->items[q.fill], v);
        ++q.fill;
        ++me.pending;
    }

    /** Plain (host-side) push used by seed/seedAll. */
    void hostPush(int owner, Vertex v);

    std::uint64_t numVertices_;
    int nthreads_;
    FrontierMode mode_;
    std::uint64_t denseThreshold_;
    std::uint64_t pullThreshold_;
    /** Work lists maintained? False for kFlagScan/kPull (flags only). */
    bool useQueues_;
    /** Previous round's representation (thread 0 only, telemetry). */
    bool lastDense_ = false;
    AlignedVector<std::uint32_t> flags_[2];
    Padded<std::uint64_t> front_[2];
    std::vector<PerThread> threads_;
};

/**
 * Single-owner FIFO work-list for the per-source forward passes of
 * APSP / betweenness centrality: a fixed-capacity ring over the
 * thread's private (but modeled) memory. Replaces the O(V) scan-min
 * selection of the flag-scan Dijkstra with label-correcting pops.
 * Cursors are owner-private loop state; only the ring storage is
 * modeled through the context.
 */
class LocalWorklist {
  public:
    /** @param capacity max simultaneous entries (use V). */
    explicit LocalWorklist(std::uint32_t capacity)
        : ring_(static_cast<std::size_t>(capacity) + 1),
          cap_(capacity + 1)
    {
    }

    bool empty() const { return head_ == tail_; }

    void clear() { head_ = tail_ = 0; }

    template <class Ctx>
    void
    push(Ctx& ctx, std::uint32_t v)
    {
        ctx.write(ring_[tail_], v);
        tail_ = tail_ + 1 == cap_ ? 0 : tail_ + 1;
        CRONO_ASSERT(head_ != tail_, "LocalWorklist overflow");
    }

    template <class Ctx>
    std::uint32_t
    pop(Ctx& ctx)
    {
        CRONO_ASSERT(head_ != tail_, "LocalWorklist underflow");
        const std::uint32_t v = ctx.read(ring_[head_]);
        head_ = head_ + 1 == cap_ ? 0 : head_ + 1;
        return v;
    }

  private:
    AlignedVector<std::uint32_t> ring_;
    std::uint32_t cap_;
    std::uint32_t head_ = 0;
    std::uint32_t tail_ = 0;
};

} // namespace crono::rt

#endif // CRONO_RUNTIME_FRONTIER_H_

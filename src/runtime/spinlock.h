/**
 * @file
 * Test-and-test-and-set spinlock.
 *
 * CRONO's kernels guard fine-grain vertex updates with "atomic locks"
 * (Section III). On the native execution path those are TTAS
 * spinlocks: critical sections are a handful of instructions, so
 * parking a thread in the kernel would dominate the cost.
 */

#ifndef CRONO_RUNTIME_SPINLOCK_H_
#define CRONO_RUNTIME_SPINLOCK_H_

#include <atomic>
#include <thread>

namespace crono::rt {

/** TTAS spinlock meeting the Lockable requirements. */
class Spinlock {
  public:
    Spinlock() = default;
    Spinlock(const Spinlock&) = delete;
    Spinlock& operator=(const Spinlock&) = delete;

    void
    lock()
    {
        for (;;) {
            if (!flag_.exchange(true, std::memory_order_acquire)) {
                return;
            }
            // Spin on a plain load to avoid hammering the line with
            // RMWs while it is held (the second "test"); yield so an
            // oversubscribed host schedules the holder.
            while (flag_.load(std::memory_order_relaxed)) {
                std::this_thread::yield();
            }
        }
    }

    bool
    try_lock()
    {
        return !flag_.load(std::memory_order_relaxed) &&
               !flag_.exchange(true, std::memory_order_acquire);
    }

    void
    unlock()
    {
        flag_.store(false, std::memory_order_release);
    }

  private:
    std::atomic<bool> flag_{false};
};

} // namespace crono::rt

#endif // CRONO_RUNTIME_SPINLOCK_H_

#include "runtime/instrumentation.h"

#include <algorithm>

#include "common/macros.h"

namespace crono::rt {

double
variability(const std::vector<std::uint64_t>& thread_ops)
{
    if (thread_ops.empty()) {
        return 0.0;
    }
    const auto [mn, mx] =
        std::minmax_element(thread_ops.begin(), thread_ops.end());
    if (*mx == 0) {
        return 0.0;
    }
    return static_cast<double>(*mx - *mn) / static_cast<double>(*mx);
}

ActiveTracker::ActiveTracker(std::size_t max_samples, std::uint64_t stride)
    : maxSamples_(max_samples), stride_(stride)
{
    CRONO_ASSERT(max_samples >= 16, "tracker needs >= 16 sample slots");
    CRONO_ASSERT(stride >= 1, "stride must be >= 1");
    samples_.reserve(max_samples);
}

void
ActiveTracker::add(std::int64_t delta)
{
    const std::int64_t now =
        active_.fetch_add(delta, std::memory_order_relaxed) + delta;
    const std::uint64_t seq =
        events_.fetch_add(1, std::memory_order_relaxed);

    lock_.lock();
    if (seq % stride_ == 0) {
        if (samples_.size() == maxSamples_) {
            // Compact: keep every other sample, double the stride.
            for (std::size_t i = 0; 2 * i < samples_.size(); ++i) {
                samples_[i] = samples_[2 * i];
            }
            samples_.resize(samples_.size() / 2);
            stride_ *= 2;
        }
        if (seq % stride_ == 0) {
            samples_.push_back({seq, now});
        }
    }
    lock_.unlock();
}

std::vector<ActiveTracker::Sample>
ActiveTracker::samples() const
{
    lock_.lock();
    auto copy = samples_;
    lock_.unlock();
    std::sort(copy.begin(), copy.end(),
              [](const Sample& a, const Sample& b) {
                  return a.event < b.event;
              });
    return copy;
}

std::vector<double>
ActiveTracker::normalizedSeries(std::size_t buckets) const
{
    CRONO_ASSERT(buckets >= 1, "need >= 1 bucket");
    const auto samps = samples();
    std::vector<double> out(buckets, 0.0);
    if (samps.empty()) {
        return out;
    }
    const std::uint64_t total = events();
    std::vector<double> sums(buckets, 0.0);
    std::vector<std::uint64_t> counts(buckets, 0);
    std::int64_t peak = 1;
    for (const Sample& s : samps) {
        peak = std::max(peak, s.active);
        std::size_t bucket = total <= 1
                                 ? 0
                                 : static_cast<std::size_t>(
                                       (s.event * buckets) / total);
        bucket = std::min(bucket, buckets - 1);
        sums[bucket] += static_cast<double>(std::max<std::int64_t>(
            s.active, 0));
        ++counts[bucket];
    }
    double last = 0.0;
    for (std::size_t i = 0; i < buckets; ++i) {
        if (counts[i] > 0) {
            last = sums[i] / static_cast<double>(counts[i]) /
                   static_cast<double>(peak);
        }
        out[i] = last;
    }
    return out;
}

} // namespace crono::rt

/**
 * @file
 * Cache-line-aligned storage helpers.
 *
 * The CRONO paper stresses that "all data structures are cache line
 * aligned to ensure optimal performance" (Section IV-F). We provide a
 * 64-byte-aligned allocator so that every graph array, distance array
 * and lock array starts on a cache-line boundary, both for the native
 * runs and so the simulator sees line-aligned footprints.
 */

#ifndef CRONO_COMMON_ALIGNED_H_
#define CRONO_COMMON_ALIGNED_H_

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace crono {

/** Size, in bytes, of one cache line across the whole project. */
inline constexpr std::size_t kCacheLineBytes = 64;

/**
 * Minimal C++17-style allocator that returns 64-byte-aligned blocks.
 *
 * Used through the AlignedVector alias below; interoperates with the
 * standard containers.
 */
template <class T>
struct CacheAlignedAllocator {
    using value_type = T;

    CacheAlignedAllocator() noexcept = default;

    template <class U>
    CacheAlignedAllocator(const CacheAlignedAllocator<U>&) noexcept
    {
    }

    T*
    allocate(std::size_t n)
    {
        if (n == 0) {
            return nullptr;
        }
        void* p = ::operator new[](
            n * sizeof(T), std::align_val_t(kCacheLineBytes));
        return static_cast<T*>(p);
    }

    void
    deallocate(T* p, std::size_t) noexcept
    {
        ::operator delete[](p, std::align_val_t(kCacheLineBytes));
    }

    template <class U>
    bool
    operator==(const CacheAlignedAllocator<U>&) const noexcept
    {
        return true;
    }
};

/** std::vector whose storage begins on a cache-line boundary. */
template <class T>
using AlignedVector = std::vector<T, CacheAlignedAllocator<T>>;

/**
 * A value padded out to occupy a full cache line.
 *
 * Useful for per-thread counters and lock arrays where false sharing
 * between adjacent slots would distort both native performance and the
 * simulated sharing-miss statistics.
 */
template <class T>
struct alignas(kCacheLineBytes) Padded {
    T value{};
};

} // namespace crono

#endif // CRONO_COMMON_ALIGNED_H_

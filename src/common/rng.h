/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All graph generators and randomized tests use this engine so that a
 * given seed reproduces the identical graph on every platform; the
 * standard library engines do not guarantee cross-implementation
 * stability for their distributions, so the distribution helpers here
 * are hand-rolled.
 */

#ifndef CRONO_COMMON_RNG_H_
#define CRONO_COMMON_RNG_H_

#include <cstdint>

namespace crono {

/**
 * SplitMix64: tiny, high-quality, splittable 64-bit generator.
 *
 * Sequence is fully determined by the seed. Passes BigCrush when used
 * as a stream; more than adequate for workload generation.
 */
class Rng {
  public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        // Multiplicative range reduction (Lemire); bias is negligible
        // for our bounds and the method is deterministic.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::uint64_t
    nextInRange(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + nextBelow(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Fork an independent stream (for per-thread generation). */
    Rng
    split()
    {
        return Rng(next() ^ 0xd2b74407b1ce6e93ULL);
    }

  private:
    std::uint64_t state_;
};

} // namespace crono

#endif // CRONO_COMMON_RNG_H_

/**
 * @file
 * Project-wide assertion and diagnostics macros.
 *
 * CRONO follows the gem5 convention of separating programmer errors
 * (panic-style, abort) from user errors (fatal-style, clean exit with
 * a message). Both always evaluate their condition, including in
 * release builds, because the library is used as a measurement
 * substrate and silent corruption would invalidate experiments.
 */

#ifndef CRONO_COMMON_MACROS_H_
#define CRONO_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

namespace crono {

/** Terminate due to an internal invariant violation (a CRONO bug). */
[[noreturn]] inline void
panicImpl(const char* file, int line, const char* msg)
{
    std::fprintf(stderr, "crono panic: %s:%d: %s\n", file, line, msg);
    std::abort();
}

/** Terminate due to unusable user input (configuration, arguments). */
[[noreturn]] inline void
fatalImpl(const char* file, int line, const char* msg)
{
    std::fprintf(stderr, "crono fatal: %s:%d: %s\n", file, line, msg);
    std::exit(1);
}

} // namespace crono

/** Abort if an internal invariant does not hold. Always enabled. */
#define CRONO_ASSERT(cond, msg)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::crono::panicImpl(__FILE__, __LINE__, (msg));                  \
        }                                                                   \
    } while (0)

/** Exit cleanly if a user-supplied precondition does not hold. */
#define CRONO_REQUIRE(cond, msg)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::crono::fatalImpl(__FILE__, __LINE__, (msg));                  \
        }                                                                   \
    } while (0)

#endif // CRONO_COMMON_MACROS_H_

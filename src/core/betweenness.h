/**
 * @file
 * Betweenness Centrality (Section III-3).
 *
 * Parallelization: vertex capture for the APSP phase, then a barrier,
 * then an outer-loop (statically divided, par::vertexMap) pass that,
 * for every vertex v, counts the shortest paths passing through v by
 * testing dist(s,t) == dist(s,v) + dist(v,t) over all pairs — the
 * paper's formulation built directly on the APSP results.
 */

#ifndef CRONO_CORE_BETWEENNESS_H_
#define CRONO_CORE_BETWEENNESS_H_

#include <utility>

#include "core/apsp.h"
#include "runtime/par.h"

namespace crono::core {

/** Per-vertex centrality counts plus the underlying APSP matrix. */
struct BetweennessResult {
    AlignedVector<std::uint64_t> centrality;
    graph::VertexId n = 0;
    rt::RunInfo run;
};

template <class Ctx>
struct BetweennessState {
    BetweennessState(const graph::AdjacencyMatrix& m, int nthreads,
                     rt::ActiveTracker* tracker_in,
                     rt::FrontierMode mode = rt::FrontierMode::kFlagScan)
        : apsp(m, nthreads, tracker_in, mode),
          centrality(m.numVertices(), 0), tracker(tracker_in)
    {
    }

    ApspState<Ctx> apsp;
    AlignedVector<std::uint64_t> centrality;
    rt::ActiveTracker* tracker;
};

template <class Ctx>
void
betweennessKernel(Ctx& ctx, BetweennessState<Ctx>& s)
{
    // Phase 1: all-pairs shortest paths (vertex capture).
    apspKernel(ctx, s.apsp);
    ctx.barrier();

    // Phase 2: centrality accumulation (static outer-loop division).
    // The end-of-run spike in Figure 2's BETW_CENT curve is this pass.
    // centrality[v] is written only by v's owner under the static
    // division, so the accumulation needs no lock — each count is an
    // owner-exclusive store.
    const graph::VertexId n = s.apsp.n;
    const graph::Dist* dist = s.apsp.dist.data();
    std::uint64_t expansions = 0;
    rt::par::vertexMap(ctx, n, [&](std::uint64_t vi) {
        const auto v = static_cast<graph::VertexId>(vi);
        trackAdd(s.tracker, 1);
        ++expansions;
        std::uint64_t through = 0;
        const graph::Dist* row_v = dist + static_cast<std::size_t>(v) * n;
        for (graph::VertexId a = 0; a < n; ++a) {
            if (a == v) {
                continue;
            }
            const graph::Dist d_av =
                ctx.read(dist[static_cast<std::size_t>(a) * n + v]);
            if (d_av == graph::kInfDist) {
                continue;
            }
            const graph::Dist* row_a =
                dist + static_cast<std::size_t>(a) * n;
            for (graph::VertexId b = 0; b < n; ++b) {
                ctx.work(1);
                if (b == v || b == a) {
                    continue;
                }
                const graph::Dist d_ab = ctx.read(row_a[b]);
                const graph::Dist d_vb = ctx.read(row_v[b]);
                if (d_ab != graph::kInfDist &&
                    d_vb != graph::kInfDist && d_av + d_vb == d_ab) {
                    ++through;
                }
            }
        }
        ctx.write(s.centrality[v],
                  ctx.read(s.centrality[v]) + through);
        trackAdd(s.tracker, -1);
    });
    obs::counterAdd(ctx, obs::Counter::kExpansions, expansions);
}

/**
 * Run betweenness centrality over an adjacency matrix.
 *
 * @param mode forward-pass work distribution: kFlagScan (default) is
 *             the paper's scan-min Dijkstra per source;
 *             kSparse/kAdaptive run the label-correcting work-list
 *             forward pass (see apspSolveSourceWorklist). The
 *             centrality accumulation pass is unchanged.
 */
template <class Exec>
BetweennessResult
betweenness(Exec& exec, int nthreads, const graph::AdjacencyMatrix& m,
            rt::ActiveTracker* tracker = nullptr,
            rt::FrontierMode mode = rt::FrontierMode::kFlagScan)
{
    using Ctx = typename Exec::Ctx;
    obs::ScopedHostSpan kernel_span("BETW_CENT", m.numVertices());
    BetweennessState<Ctx> state(m, nthreads, tracker, mode);
    rt::RunInfo info = exec.parallel(
        nthreads, [&state](Ctx& ctx) { betweennessKernel(ctx, state); });
    return BetweennessResult{std::move(state.centrality), m.numVertices(),
                             std::move(info)};
}

} // namespace crono::core

#endif // CRONO_CORE_BETWEENNESS_H_

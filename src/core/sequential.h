/**
 * @file
 * Sequential reference implementations of every CRONO kernel.
 *
 * These are textbook single-threaded algorithms (binary-heap
 * Dijkstra, queue BFS, stack DFS, Floyd-Warshall, exhaustive TSP,
 * flood-fill components, brute-force triangles/betweenness, dense
 * power iteration). The test suite validates every parallel kernel —
 * native and simulated — against them, and they document the intended
 * semantics of each parallel result.
 */

#ifndef CRONO_CORE_SEQUENTIAL_H_
#define CRONO_CORE_SEQUENTIAL_H_

#include <cstdint>
#include <vector>

#include "graph/adjacency_matrix.h"
#include "graph/graph.h"

namespace crono::core::seq {

/** Dijkstra with a binary heap. dist[v] == kInfDist if unreachable. */
std::vector<graph::Dist> sssp(const graph::Graph& g,
                              graph::VertexId source);

/** BFS levels (hop counts); kNoLevel-equivalent is ~0u. */
std::vector<std::uint32_t> bfsLevels(const graph::Graph& g,
                                     graph::VertexId source);

/** Vertices reachable from @p source (including it). */
std::uint64_t reachableCount(const graph::Graph& g,
                             graph::VertexId source);

/** Floyd-Warshall over a dense matrix. Row-major n x n result. */
std::vector<graph::Dist> apsp(const graph::AdjacencyMatrix& m);

/**
 * Betweenness counts with the paper's APSP-based definition: for each
 * v, the number of ordered pairs (a, b), a != v != b, with
 * dist(a,b) == dist(a,v) + dist(v,b).
 */
std::vector<std::uint64_t> betweenness(const graph::AdjacencyMatrix& m);

/** Exact optimal TSP tour cost by branch and bound (n <= 16). */
std::uint64_t tspCost(const graph::AdjacencyMatrix& cities);

/**
 * Exact maximum common induced labeled subgraph size by exhaustive
 * enumeration (each pattern vertex is skipped or mapped to any
 * label-equal, adjacency-consistent unused target vertex). Feasible
 * for sides up to ~8 vertices; the oracle for core::mcs.
 */
std::uint64_t mcsSize(const graph::LabeledMatrix& pattern,
                      const graph::LabeledMatrix& target);

/** Component label of every vertex (smallest member id). */
std::vector<graph::VertexId> componentLabels(const graph::Graph& g);

/** Total number of triangles. */
std::uint64_t triangleCount(const graph::Graph& g);

/** PageRank matching core::pageRank's update rule exactly. */
std::vector<double> pageRank(const graph::Graph& g, unsigned iterations,
                             double damping);

/**
 * Iterative stack DFS from @p source; returns vertices in visitation
 * order (the work-efficient sequential baseline for the DFS kernel,
 * which traverses the same reachable set).
 */
std::vector<graph::VertexId> dfsOrder(const graph::Graph& g,
                                      graph::VertexId source);

/**
 * Sequential label propagation: @p rounds sweeps in which every
 * vertex adopts the smallest label among itself and its neighbors.
 * The work-efficient baseline for the community-detection kernel
 * (same sweep count, same per-edge work, no locks or phases).
 */
std::vector<graph::VertexId> communityLabels(const graph::Graph& g,
                                             unsigned rounds);

/**
 * Merge-based triangle count over sorted adjacency lists — the
 * GAP-style work-efficient baseline, O(sum over edges of
 * min(deg(u), deg(v))). Requires a simple graph (CSR adjacency
 * sorted and deduplicated, the builder's keepMin output); agrees
 * with triangleCount() there.
 */
std::uint64_t triangleCountFast(const graph::Graph& g);

} // namespace crono::core::seq

#endif // CRONO_CORE_SEQUENTIAL_H_

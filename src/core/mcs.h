/**
 * @file
 * Maximum Common Subgraph — the suite's eleventh kernel, and the
 * second consumer of the rt::bnb framework.
 *
 * Parallelization: branch and bound (McSplit-style). The search state
 * is a *bidomain partition*: the not-yet-mapped pattern and target
 * vertices are grouped into classes that are mutually mappable —
 * initially by vertex label, refined on every mapping by adjacency to
 * the newly mapped pair, so that two vertices share a class iff they
 * have the same label and the same adjacency pattern towards every
 * mapped vertex. Branching picks the most constrained bidomain (the
 * McSplit min-max(|left|,|right|) rule), takes its smallest pattern
 * vertex v, and emits one child per target vertex w (map v->w) plus a
 * final child that excludes v. The incremental upper bound
 * |M| + sum_i min(|left_i|, |right_i|) prunes against the global best.
 *
 * The suite minimizes (rt::GlobalBound is monotone non-increasing),
 * so the maximized subgraph size s is carried as the objective
 * n_cap - s with n_cap = min(|pattern|, |target|); every node's
 * mapping is itself a feasible solution, so the objective is offered
 * at every node (incumbent search), not only at leaves.
 *
 * Branch designation differs from TSP's two-level city prefix: the
 * statically designated branches are the root's own children (one per
 * candidate w, plus exclude-v). That yields few top-level branches,
 * so MCS defaults donation ON (mcsDefaultConfig) — later siblings
 * spill into the shared BranchStack while it is shallow, which is the
 * donation path the TSan leg of the analysis workflow sweeps.
 */

#ifndef CRONO_CORE_MCS_H_
#define CRONO_CORE_MCS_H_

#include <utility>
#include <vector>

#include "core/context.h"
#include "graph/adjacency_matrix.h"
#include "obs/telemetry.h"
#include "runtime/bnb.h"
#include "runtime/executor.h"
#include "runtime/par.h"
#include "runtime/strategies.h"

namespace crono::core {

/**
 * Largest supported side (pattern or target). Vertex ids and segment
 * offsets live in 8-bit fields of a trivially copyable node, and a
 * bidomain partition of a 32-vertex side can hold at most 32 classes;
 * McsPolicy's constructor is the single place the limit is checked.
 */
inline constexpr graph::VertexId kMaxMcs = 32;

/** One class of mutually-mappable unmapped vertices. Left/right are
 *  segments [l, l+ll) / [r, r+rl) of the node's vertex arrays. */
struct McsBidomain {
    std::uint8_t l = 0;
    std::uint8_t r = 0;
    std::uint8_t ll = 0;
    std::uint8_t rl = 0;
};

/**
 * One search state: the mapping built so far plus the bidomain
 * partition of everything still unmapped. Trivially copyable so it
 * can move through the shared donation stack whole. Segment contents
 * stay sorted ascending (children are rebuilt by order-preserving
 * gathers), which makes branch order deterministic.
 */
struct McsNode {
    std::uint8_t left[kMaxMcs] = {};  ///< unmapped pattern vertices
    std::uint8_t right[kMaxMcs] = {}; ///< unmapped target vertices
    std::uint8_t pair_left[kMaxMcs] = {};  ///< mapping, pattern side
    std::uint8_t pair_right[kMaxMcs] = {}; ///< mapping, target side
    McsBidomain bds[kMaxMcs] = {};
    std::uint8_t num_bds = 0;
    std::uint8_t depth = 0; ///< |M|, pairs mapped so far
};

/** Maximum common induced labeled subgraph of two dense graphs. */
struct McsResult {
    std::uint64_t size = 0; ///< vertices in the common subgraph
    /** Mapping pairs (pattern vertex, target vertex), size entries. */
    std::vector<std::pair<graph::VertexId, graph::VertexId>> mapping;
    rt::bnb::SearchStats stats; ///< nodes visited / donations
    rt::RunInfo run;
};

/** MCS default search knobs: donation on (see file comment). */
inline rt::bnb::SearchConfig
mcsDefaultConfig()
{
    rt::bnb::SearchConfig cfg;
    cfg.donate_factor = 4;
    return cfg;
}

/**
 * rt::bnb policy for McSplit MCS. Owns the best-mapping payload; the
 * searcher owns bound, capture, donation, and termination.
 */
template <class Ctx>
struct McsPolicy {
    using Node = McsNode;

    McsPolicy(const graph::LabeledMatrix& pattern,
              const graph::LabeledMatrix& target,
              rt::ActiveTracker* tracker_in)
        : p_(pattern), t_(target), np_(pattern.adj.numVertices()),
          nt_(target.adj.numVertices()),
          n_cap_(np_ < nt_ ? np_ : nt_),
          bestLeft(n_cap_ > 0 ? n_cap_ : 1, graph::kNoVertex),
          bestRight(n_cap_ > 0 ? n_cap_ : 1, graph::kNoVertex),
          tracker(tracker_in)
    {
        CRONO_REQUIRE(np_ >= 1 && np_ <= kMaxMcs &&
                          nt_ >= 1 && nt_ <= kMaxMcs,
                      "MCS supports 1..32 vertices per side");
        buildRoot();
    }

    std::uint64_t
    numBranches() const
    {
        // The designated branches are the root's children: one per
        // candidate target vertex of the root's chosen bidomain plus
        // the exclude-v branch. A root with no bidomain (no label in
        // common) degenerates to one branch carrying the empty
        // mapping.
        if (root_bd_ < 0) {
            return 1;
        }
        return static_cast<std::uint64_t>(
                   root_.bds[root_bd_].rl) +
               1;
    }

    bool
    root(Ctx& ctx, std::uint64_t branch, Node* out)
    {
        trackAdd(tracker, 1);
        if (root_bd_ < 0) {
            *out = root_;
            return true;
        }
        const McsBidomain& bd = root_.bds[root_bd_];
        const std::uint8_t v = root_.left[bd.l];
        if (branch < bd.rl) {
            const std::uint8_t w =
                root_.right[bd.r + static_cast<std::uint8_t>(branch)];
            std::uint64_t splits = 0;
            mapChild(ctx, root_, root_bd_, v, w, out, &splits);
            obs::counterAdd(ctx, obs::Counter::kBidomainSplits,
                            splits);
        } else {
            excludeChild(root_, root_bd_, v, out);
        }
        return true;
    }

    std::uint64_t
    lowerBound(Ctx&, const Node& node) const
    {
        // Minimized form of the McSplit bound: the mapping can grow by
        // at most min(|left|, |right|) per bidomain, so the objective
        // can sink at most that far below n_cap - |M|.
        std::uint64_t reach = node.depth;
        for (std::uint8_t i = 0; i < node.num_bds; ++i) {
            reach += node.bds[i].ll < node.bds[i].rl ? node.bds[i].ll
                                                     : node.bds[i].rl;
        }
        return n_cap_ - reach;
    }

    bool
    objective(Ctx&, const Node& node, std::uint64_t* value) const
    {
        // Every node's mapping is a feasible common subgraph: offer it
        // as the incumbent (maximize |M| == minimize n_cap - |M|).
        *value = n_cap_ - node.depth;
        return true;
    }

    template <class Emit>
    void
    expand(Ctx& ctx, const Node& node, Emit&& emit) const
    {
        const int bd_idx = chooseBidomain(node);
        if (bd_idx < 0) {
            return; // nothing left to map
        }
        const McsBidomain& bd = node.bds[bd_idx];
        const std::uint8_t v = node.left[bd.l]; // smallest (sorted)
        std::uint64_t splits = 0;
        for (std::uint8_t r = 0; r < bd.rl; ++r) {
            const std::uint8_t w = node.right[bd.r + r];
            Node child;
            mapChild(ctx, node, bd_idx, v, w, &child, &splits);
            ctx.work(1);
            emit(child);
        }
        Node child;
        excludeChild(node, bd_idx, v, &child);
        emit(child);
        obs::counterAdd(ctx, obs::Counter::kBidomainSplits, splits);
    }

    void
    install(Ctx& ctx, const Node& node)
    {
        for (std::uint8_t i = 0; i < node.depth; ++i) {
            ctx.write(bestLeft[i],
                      static_cast<graph::VertexId>(node.pair_left[i]));
            ctx.write(bestRight[i], static_cast<graph::VertexId>(
                                        node.pair_right[i]));
        }
    }

    void branchDone(Ctx&) { trackAdd(tracker, -1); }

    const graph::LabeledMatrix& p_;
    const graph::LabeledMatrix& t_;
    graph::VertexId np_;
    graph::VertexId nt_;
    graph::VertexId n_cap_;
    AlignedVector<graph::VertexId> bestLeft;
    AlignedVector<graph::VertexId> bestRight;
    rt::ActiveTracker* tracker;
    Node root_{};
    int root_bd_ = -1; ///< root's chosen bidomain, -1 if none

  private:
    /** McSplit selection rule: most constrained bidomain first —
     *  minimize max(|left|, |right|), ties to the lowest index. */
    static int
    chooseBidomain(const Node& node)
    {
        int best = -1;
        std::uint8_t best_score = 0;
        for (std::uint8_t i = 0; i < node.num_bds; ++i) {
            const std::uint8_t score = node.bds[i].ll > node.bds[i].rl
                                           ? node.bds[i].ll
                                           : node.bds[i].rl;
            if (best < 0 || score < best_score) {
                best = i;
                best_score = score;
            }
        }
        return best;
    }

    /** Append a bidomain built from gathered classes to @p out. */
    static void
    appendBidomain(Node* out, std::uint8_t* lc, std::uint8_t* rc,
                   const std::uint8_t* lv, std::uint8_t ln,
                   const std::uint8_t* rv, std::uint8_t rn)
    {
        McsBidomain nb;
        nb.l = *lc;
        nb.r = *rc;
        nb.ll = ln;
        nb.rl = rn;
        for (std::uint8_t j = 0; j < ln; ++j) {
            out->left[(*lc)++] = lv[j];
        }
        for (std::uint8_t j = 0; j < rn; ++j) {
            out->right[(*rc)++] = rv[j];
        }
        out->bds[out->num_bds++] = nb;
    }

    /**
     * Child that maps v -> w: every bidomain is re-partitioned by
     * adjacency to the new pair (adjacent-with-adjacent and
     * non-adjacent-with-non-adjacent survive; mixed classes die).
     * Order-preserving gathers keep segments sorted.
     */
    void
    mapChild(Ctx& ctx, const Node& p, int bd_idx, std::uint8_t v,
             std::uint8_t w, Node* out, std::uint64_t* splits) const
    {
        Node c{};
        for (std::uint8_t i = 0; i < p.depth; ++i) {
            c.pair_left[i] = p.pair_left[i];
            c.pair_right[i] = p.pair_right[i];
        }
        c.pair_left[p.depth] = v;
        c.pair_right[p.depth] = w;
        c.depth = p.depth + 1;
        std::uint8_t lc = 0;
        std::uint8_t rc = 0;
        for (std::uint8_t i = 0; i < p.num_bds; ++i) {
            const McsBidomain& bd = p.bds[i];
            std::uint8_t la[kMaxMcs];
            std::uint8_t ln_[kMaxMcs];
            std::uint8_t ra[kMaxMcs];
            std::uint8_t rn_[kMaxMcs];
            std::uint8_t nla = 0;
            std::uint8_t nln = 0;
            std::uint8_t nra = 0;
            std::uint8_t nrn = 0;
            for (std::uint8_t j = 0; j < bd.ll; ++j) {
                const std::uint8_t u = p.left[bd.l + j];
                if (static_cast<std::uint8_t>(bd_idx) ==
                        static_cast<std::uint8_t>(i) &&
                    u == v) {
                    continue; // v is now mapped
                }
                if (ctx.read(p_.adj.row(v)[u]) !=
                    graph::AdjacencyMatrix::kInfWeight) {
                    la[nla++] = u;
                } else {
                    ln_[nln++] = u;
                }
            }
            for (std::uint8_t j = 0; j < bd.rl; ++j) {
                const std::uint8_t u = p.right[bd.r + j];
                if (static_cast<std::uint8_t>(bd_idx) ==
                        static_cast<std::uint8_t>(i) &&
                    u == w) {
                    continue; // w is now mapped
                }
                if (ctx.read(t_.adj.row(w)[u]) !=
                    graph::AdjacencyMatrix::kInfWeight) {
                    ra[nra++] = u;
                } else {
                    rn_[nrn++] = u;
                }
            }
            int produced = 0;
            if (nla > 0 && nra > 0) {
                appendBidomain(&c, &lc, &rc, la, nla, ra, nra);
                ++produced;
            }
            if (nln > 0 && nrn > 0) {
                appendBidomain(&c, &lc, &rc, ln_, nln, rn_, nrn);
                ++produced;
            }
            if (produced == 2) {
                ++*splits; // one class genuinely split in two
            }
        }
        *out = c;
    }

    /** Child that declares v unmappable: drop it from its bidomain
     *  (an emptied left side kills the whole class). */
    static void
    excludeChild(const Node& p, int bd_idx, std::uint8_t v, Node* out)
    {
        Node c{};
        for (std::uint8_t i = 0; i < p.depth; ++i) {
            c.pair_left[i] = p.pair_left[i];
            c.pair_right[i] = p.pair_right[i];
        }
        c.depth = p.depth;
        std::uint8_t lc = 0;
        std::uint8_t rc = 0;
        for (std::uint8_t i = 0; i < p.num_bds; ++i) {
            const McsBidomain& bd = p.bds[i];
            std::uint8_t lv[kMaxMcs];
            std::uint8_t nl = 0;
            for (std::uint8_t j = 0; j < bd.ll; ++j) {
                const std::uint8_t u = p.left[bd.l + j];
                if (static_cast<std::uint8_t>(bd_idx) ==
                        static_cast<std::uint8_t>(i) &&
                    u == v) {
                    continue;
                }
                lv[nl++] = u;
            }
            if (nl == 0) {
                continue;
            }
            appendBidomain(&c, &lc, &rc, lv, nl,
                           p.right + bd.r, bd.rl);
        }
        *out = c;
    }

    /** Host-side: initial label-class partition + root branch pick. */
    void
    buildRoot()
    {
        // One pass per distinct pattern label (ascending) keeps
        // segments sorted and the class order deterministic; labels
        // only the target has can never form a class.
        std::uint32_t distinct[kMaxMcs];
        std::uint8_t num_distinct = 0;
        for (graph::VertexId v = 0; v < np_; ++v) {
            const std::uint32_t label = p_.labels[v];
            std::uint8_t pos = 0;
            while (pos < num_distinct && distinct[pos] < label) {
                ++pos;
            }
            if (pos < num_distinct && distinct[pos] == label) {
                continue;
            }
            for (std::uint8_t j = num_distinct; j > pos; --j) {
                distinct[j] = distinct[j - 1];
            }
            distinct[pos] = label;
            ++num_distinct;
        }
        std::uint8_t lc = 0;
        std::uint8_t rc = 0;
        for (std::uint8_t i = 0; i < num_distinct; ++i) {
            const std::uint32_t label = distinct[i];
            std::uint8_t lv[kMaxMcs];
            std::uint8_t rv[kMaxMcs];
            std::uint8_t nl = 0;
            std::uint8_t nr = 0;
            for (graph::VertexId v = 0; v < np_; ++v) {
                if (p_.labels[v] == label) {
                    lv[nl++] = static_cast<std::uint8_t>(v);
                }
            }
            for (graph::VertexId v = 0; v < nt_; ++v) {
                if (t_.labels[v] == label) {
                    rv[nr++] = static_cast<std::uint8_t>(v);
                }
            }
            if (nl > 0 && nr > 0) {
                appendBidomain(&root_, &lc, &rc, lv, nl, rv, nr);
            }
        }
        root_bd_ = chooseBidomain(root_);
    }
};

/**
 * Find a maximum common induced subgraph of two labeled dense graphs.
 */
template <class Exec>
McsResult
mcs(Exec& exec, int nthreads, const graph::LabeledMatrix& pattern,
    const graph::LabeledMatrix& target,
    rt::ActiveTracker* tracker = nullptr,
    rt::bnb::SearchConfig cfg = mcsDefaultConfig())
{
    using Ctx = typename Exec::Ctx;
    obs::ScopedHostSpan kernel_span("MCS",
                                    pattern.adj.numVertices());
    McsPolicy<Ctx> policy(pattern, target, tracker);
    rt::bnb::Searcher<Ctx, McsPolicy<Ctx>> searcher(policy, nthreads,
                                                    cfg);
    rt::RunInfo info = exec.parallel(
        nthreads, [&searcher](Ctx& ctx) { searcher.run(ctx); });
    McsResult result;
    // The empty mapping is offered at branch roots, so the bound is
    // always <= n_cap after a run; the guard only covers nthreads-0
    // style misuse where no node was ever visited.
    result.size = searcher.value() == rt::bnb::kNoSolution
                      ? 0
                      : policy.n_cap_ - searcher.value();
    result.mapping.reserve(result.size);
    for (std::uint64_t i = 0; i < result.size; ++i) {
        result.mapping.emplace_back(policy.bestLeft[i],
                                    policy.bestRight[i]);
    }
    result.stats = searcher.stats();
    result.run = std::move(info);
    return result;
}

} // namespace crono::core

#endif // CRONO_CORE_MCS_H_

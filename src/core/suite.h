/**
 * @file
 * The CRONO suite registry (Table I) and a uniform dispatcher.
 *
 * Benchmarks are identified by BenchmarkId; runBenchmark() executes
 * any of the ten kernels on any executor with a Workload bundle, so
 * the experiment harnesses can sweep the whole suite uniformly.
 */

#ifndef CRONO_CORE_SUITE_H_
#define CRONO_CORE_SUITE_H_

#include <span>
#include <string>

#include "core/apsp.h"
#include "core/betweenness.h"
#include "core/bfs.h"
#include "core/community.h"
#include "core/connected_components.h"
#include "core/delta_stepping.h"
#include "core/dfs.h"
#include "core/mcs.h"
#include "core/pagerank.h"
#include "core/sssp.h"
#include "core/triangle_count.h"
#include "core/tsp.h"

namespace crono::core {

/** The ten CRONO benchmarks plus the MCS extension kernel. */
enum class BenchmarkId : int {
    ssspDijk = 0,
    apsp,
    betwCent,
    bfs,
    dfs,
    tsp,
    connComp,
    triCnt,
    pageRank,
    comm,
    mcs, ///< maximum common subgraph (rt::bnb extension kernel)
};

/** Number of benchmarks in the suite. */
inline constexpr int kNumBenchmarks = 11;

/** Registry row (Table I of the paper). */
struct BenchmarkInfo {
    BenchmarkId id;
    const char* name;            ///< paper identifier, e.g. "SSSP_DIJK"
    const char* category;        ///< Path Planning / Search / Processing
    const char* parallelization; ///< Table I strategy
};

/** All registry rows, in paper order. */
std::span<const BenchmarkInfo> allBenchmarks();

/** Registry row for one benchmark. */
const BenchmarkInfo& benchmarkInfo(BenchmarkId id);

/** Paper identifier of @p id. */
const char* benchmarkName(BenchmarkId id);

/** Inputs consumed by runBenchmark (non-owning). */
struct Workload {
    const graph::Graph* graph = nullptr;            ///< CSR kernels
    const graph::AdjacencyMatrix* matrix = nullptr; ///< APSP / BETW_CENT
    const graph::AdjacencyMatrix* cities = nullptr; ///< TSP
    const graph::LabeledMatrix* mcs_pattern = nullptr; ///< MCS
    const graph::LabeledMatrix* mcs_target = nullptr;  ///< MCS
    graph::VertexId source = 0;
    unsigned pr_iterations = 5;
    unsigned comm_rounds = 8;
    /**
     * Frontier representation for the frontier-driven kernels (SSSP,
     * BFS, CONN_COMP, and the APSP/BETW_CENT forward pass). The
     * default keeps every paper-figure experiment on the paper's
     * flag-scan structure.
     */
    rt::FrontierMode frontier_mode = rt::FrontierMode::kFlagScan;
    /**
     * PageRank phase structure; the default keeps the paper's
     * capture-and-scatter shape (see PageRankMode).
     */
    PageRankMode pr_mode = PageRankMode::kScatter;
    /**
     * SSSP algorithm: the paper's label-correcting work-list kernel
     * (default) or bucketed delta-stepping (delta_stepping.h). For
     * kDeltaStep, sssp_delta selects the bucket width (0 = auto).
     */
    SsspAlgo sssp_algo = SsspAlgo::kWorkList;
    graph::Dist sssp_delta = 0;
};

/**
 * Execute benchmark @p id with @p nthreads threads on @p exec.
 *
 * Results are discarded (correctness is the test suite's job); the
 * returned RunInfo carries completion time and per-thread ops.
 */
template <class Exec>
rt::RunInfo
runBenchmark(BenchmarkId id, Exec& exec, int nthreads, const Workload& w,
             rt::ActiveTracker* tracker = nullptr)
{
    switch (id) {
      case BenchmarkId::ssspDijk:
        if (w.sssp_algo == SsspAlgo::kDeltaStep) {
            return deltaSteppingSssp(exec, nthreads, *w.graph, w.source,
                                     tracker, w.sssp_delta)
                .run;
        }
        return sssp(exec, nthreads, *w.graph, w.source, tracker,
                    w.frontier_mode)
            .run;
      case BenchmarkId::apsp:
        return apsp(exec, nthreads, *w.matrix, tracker, w.frontier_mode)
            .run;
      case BenchmarkId::betwCent:
        return betweenness(exec, nthreads, *w.matrix, tracker,
                           w.frontier_mode)
            .run;
      case BenchmarkId::bfs:
        return bfs(exec, nthreads, *w.graph, w.source, graph::kNoVertex,
                   tracker, w.frontier_mode)
            .run;
      case BenchmarkId::dfs:
        return dfs(exec, nthreads, *w.graph, w.source, graph::kNoVertex,
                   tracker)
            .run;
      case BenchmarkId::tsp:
        return tsp(exec, nthreads, *w.cities, tracker).run;
      case BenchmarkId::connComp:
        return connectedComponents(exec, nthreads, *w.graph, tracker,
                                   w.frontier_mode)
            .run;
      case BenchmarkId::triCnt:
        return triangleCount(exec, nthreads, *w.graph, tracker).run;
      case BenchmarkId::pageRank:
        return pageRank(exec, nthreads, *w.graph, w.pr_iterations, 0.15,
                        tracker, w.pr_mode)
            .run;
      case BenchmarkId::comm:
        return communityDetection(exec, nthreads, *w.graph, w.comm_rounds,
                                  tracker)
            .run;
      case BenchmarkId::mcs:
        return mcs(exec, nthreads, *w.mcs_pattern, *w.mcs_target,
                   tracker)
            .run;
    }
    CRONO_ASSERT(false, "unknown benchmark id");
    return {};
}

} // namespace crono::core

#endif // CRONO_CORE_SUITE_H_

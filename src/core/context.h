/**
 * @file
 * The ExecutionContext concept and shared kernel helpers.
 *
 * Every CRONO kernel is a template over a context type `Ctx` so the
 * identical algorithm runs (a) natively on real threads and (b) inside
 * the multicore simulator with every shared-memory access modeled.
 *
 * Required `Ctx` interface (see rt::NativeCtx and sim::SimCtx):
 *
 *   int tid();  int nthreads();
 *   T    read(const T& ref);          // shared load
 *   void write(T& ref, T value);      // shared store
 *   T    fetchAdd(T& ref, T delta);   // atomic RMW, returns old
 *   T    readAtomic(const T& ref);    // declared-racy probe load
 *
 * readAtomic is the kernel's annotation that a load is *intended* to
 * race and any value it can observe is correctness-neutral: the
 * monotone-filter probe before a locked re-check (SSSP/CC label
 * improvement, TSP's branch-and-bound bound), or a claim-protected
 * first-touch filter (BFS's level check before activateClaim). It is
 * modeled and costed exactly like read(); the difference is purely
 * for the concurrency-analysis layer (src/analysis): the race
 * detector orders it after atomic publishes to the same address and
 * excludes it from race checks, while a plain read() that races is
 * reported. Never use it on a value whose staleness could change the
 * result — only on probes whose misses are retried, re-checked under
 * a lock, or absorbed by a monotone fixpoint.
 *   void work(std::uint64_t n);       // n single-cycle compute ops
 *   using Mutex = ...;                // default-constructible
 *   void lock(Mutex&); void unlock(Mutex&);
 *   void barrier();                   // region-wide
 *   std::uint64_t ops();              // instruction-count proxy
 *   std::uint64_t timestamp();        // telemetry clock (native: ns,
 *                                     // sim: local cycles); must not
 *                                     // model work or memory traffic
 *   static constexpr bool kSimulated; // telemetry track domain
 *
 * And the Executor concept used by the kernel drivers:
 *
 *   using Ctx = ...;
 *   rt::RunInfo parallel(int nthreads, std::function<void(Ctx&)>);
 */

#ifndef CRONO_CORE_CONTEXT_H_
#define CRONO_CORE_CONTEXT_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "graph/graph.h"
#include "runtime/instrumentation.h"

namespace crono::core {

/**
 * Striped per-vertex lock array.
 *
 * The paper's kernels lock individual vertices ("atomic locks") when
 * updating shared per-vertex values. A full lock per vertex would
 * dominate the footprint of large graphs, so vertices hash onto a
 * power-of-two pool of locks; contention behaviour is preserved while
 * memory stays bounded.
 */
template <class Ctx>
class LockStripe {
  public:
    /** Pool sized to min(next_pow2(n), max_stripes). */
    explicit LockStripe(std::uint64_t n, std::uint64_t max_stripes = 1024)
    {
        std::uint64_t size = 1;
        while (size < n && size < max_stripes) {
            size <<= 1;
        }
        mask_ = size - 1;
        locks_ = std::vector<typename Ctx::Mutex>(size);
    }

    typename Ctx::Mutex&
    of(std::uint64_t key)
    {
        return locks_[key & mask_];
    }

    /**
     * Stripe index of @p key, for deadlock-free ordered acquisition
     * of two locks (lock the smaller index first).
     */
    std::uint64_t indexOf(std::uint64_t key) const { return key & mask_; }

    std::size_t size() const { return locks_.size(); }

  private:
    std::vector<typename Ctx::Mutex> locks_;
    std::uint64_t mask_;
};

/**
 * RAII critical section over a Ctx mutex.
 */
template <class Ctx>
class ScopedLock {
  public:
    ScopedLock(Ctx& ctx, typename Ctx::Mutex& m) : ctx_(ctx), mutex_(m)
    {
        ctx_.lock(mutex_);
    }
    ~ScopedLock() { ctx_.unlock(mutex_); }

    ScopedLock(const ScopedLock&) = delete;
    ScopedLock& operator=(const ScopedLock&) = delete;

  private:
    Ctx& ctx_;
    typename Ctx::Mutex& mutex_;
};

/** Null-safe active-vertex instrumentation. */
inline void
trackAdd(rt::ActiveTracker* tracker, std::int64_t delta)
{
    if (tracker != nullptr && delta != 0) {
        tracker->add(delta);
    }
}

} // namespace crono::core

#endif // CRONO_CORE_CONTEXT_H_

/**
 * @file
 * Travelling Salesman Problem (Section III-6).
 *
 * Parallelization: branch and bound, expressed as an rt::bnb policy.
 * The tour starts at city 0; two-level branches (the choice of second
 * and third city) are designated statically and captured by threads
 * through the searcher's atomic counter — the same capture idiom the
 * vertex kernels use, applied to subproblems. Each thread searches
 * its branch depth-first, pruning against a global best-cost bound
 * that is read racily on the hot path and improved under an atomic
 * lock — exactly the scheme the paper describes. Threads whose branch
 * cost exceeds the bound abandon the branch and capture the next one.
 *
 * The searcher loop, donation, bound protocol, and replay mode all
 * live in runtime/bnb.h; this file only knows how to root, expand,
 * bound, and install tours. Donation is off by default
 * (SearchConfig::donate_factor = 0) so the default run preserves the
 * paper's capture-only structure node-for-node.
 */

#ifndef CRONO_CORE_TSP_H_
#define CRONO_CORE_TSP_H_

#include <utility>
#include <vector>

#include "core/context.h"
#include "graph/adjacency_matrix.h"
#include "obs/telemetry.h"
#include "runtime/bnb.h"
#include "runtime/executor.h"
#include "runtime/par.h"
#include "runtime/strategies.h"

namespace crono::core {

/**
 * Largest supported tour. The search node tracks visited cities in a
 * 64-bit mask and carries a fixed-size path, so this is the single
 * place the limit is set; TspPolicy's constructor is the single place
 * it is checked.
 */
inline constexpr graph::VertexId kMaxTspCities = 64;

/** One partial tour: a trivially-copyable rt::bnb search node. */
struct TspNode {
    std::uint64_t visited = 0; ///< bitmask over cities (bit 0 = start)
    std::uint64_t cost = 0;    ///< cost of the prefix path
    std::uint32_t depth = 0;   ///< cities placed so far
    graph::VertexId path[kMaxTspCities] = {};
};

/** Optimal (exact) tour over the input cities. */
struct TspResult {
    std::uint64_t cost = 0;
    std::vector<graph::VertexId> tour; ///< starts at city 0
    rt::bnb::SearchStats stats;        ///< nodes visited / donations
    rt::RunInfo run;
};

/**
 * rt::bnb policy for exact TSP. Owns the best-tour payload; the
 * searcher owns bound, capture, donation, and termination.
 */
template <class Ctx>
struct TspPolicy {
    using Node = TspNode;

    TspPolicy(const graph::AdjacencyMatrix& cities_in,
              rt::ActiveTracker* tracker_in)
        : cities(cities_in), n(cities_in.numVertices()),
          bestTour(cities_in.numVertices(), graph::kNoVertex),
          tracker(tracker_in)
    {
        CRONO_REQUIRE(n >= 2 && n <= kMaxTspCities,
                      "TSP supports 2..64 cities");
    }

    std::uint64_t
    numBranches() const
    {
        // Branches are designated statically at two levels (the choice
        // of second and third city) so there are (n-1)(n-2) of them —
        // enough for high thread counts to find work even as the bound
        // prunes whole branches. Below 4 cities there is no two-level
        // prefix; a single branch solves the instance.
        if (n < 4) {
            return 1;
        }
        return static_cast<std::uint64_t>(n - 1) * (n - 2);
    }

    bool
    root(Ctx& ctx, std::uint64_t branch, Node* out)
    {
        trackAdd(tracker, 1);
        Node node{};
        node.path[0] = 0;
        node.visited = 1;
        node.depth = 1;
        if (n >= 4) {
            const auto second =
                static_cast<graph::VertexId>(branch / (n - 2) + 1);
            auto third =
                static_cast<graph::VertexId>(branch % (n - 2) + 1);
            if (third >= second) {
                ++third; // skip the second city's slot
            }
            node.path[1] = second;
            node.path[2] = third;
            node.visited |= (std::uint64_t{1} << second) |
                            (std::uint64_t{1} << third);
            node.depth = 3;
            node.cost = static_cast<std::uint64_t>(
                            ctx.read(cities.row(0)[second])) +
                        ctx.read(cities.row(second)[third]);
        }
        *out = node;
        return true;
    }

    std::uint64_t
    lowerBound(Ctx&, const Node& node) const
    {
        return node.cost; // prefix cost is an admissible bound
    }

    bool
    objective(Ctx& ctx, const Node& node, std::uint64_t* value) const
    {
        if (node.depth != n) {
            return false;
        }
        const graph::VertexId cur = node.path[node.depth - 1];
        *value = node.cost + ctx.read(cities.row(cur)[0]); // close tour
        return true;
    }

    template <class Emit>
    void
    expand(Ctx& ctx, const Node& node, Emit&& emit) const
    {
        if (node.depth == n) {
            return; // complete tour, no extensions
        }
        const graph::VertexId cur = node.path[node.depth - 1];
        for (graph::VertexId next = 1; next < n; ++next) {
            if (node.visited & (std::uint64_t{1} << next)) {
                continue;
            }
            const graph::Weight d = ctx.read(cities.row(cur)[next]);
            Node child = node;
            child.path[child.depth] = next;
            child.visited |= std::uint64_t{1} << next;
            child.cost += d;
            ++child.depth;
            emit(child);
        }
    }

    void
    install(Ctx& ctx, const Node& node)
    {
        for (graph::VertexId i = 0; i < n; ++i) {
            ctx.write(bestTour[i], node.path[i]);
        }
    }

    void branchDone(Ctx&) { trackAdd(tracker, -1); }

    const graph::AdjacencyMatrix& cities;
    graph::VertexId n;
    AlignedVector<graph::VertexId> bestTour;
    rt::ActiveTracker* tracker;
};

/** Solve TSP exactly over a symmetric distance matrix. */
template <class Exec>
TspResult
tsp(Exec& exec, int nthreads, const graph::AdjacencyMatrix& cities,
    rt::ActiveTracker* tracker = nullptr,
    rt::bnb::SearchConfig cfg = {})
{
    using Ctx = typename Exec::Ctx;
    obs::ScopedHostSpan kernel_span("TSP", cities.numVertices());
    TspPolicy<Ctx> policy(cities, tracker);
    rt::bnb::Searcher<Ctx, TspPolicy<Ctx>> searcher(policy, nthreads,
                                                    cfg);
    rt::RunInfo info = exec.parallel(
        nthreads, [&searcher](Ctx& ctx) { searcher.run(ctx); });
    TspResult result;
    result.cost = searcher.value();
    result.tour.assign(policy.bestTour.begin(), policy.bestTour.end());
    result.stats = searcher.stats();
    result.run = std::move(info);
    return result;
}

} // namespace crono::core

#endif // CRONO_CORE_TSP_H_

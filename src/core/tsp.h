/**
 * @file
 * Travelling Salesman Problem (Section III-6).
 *
 * Parallelization: branch and bound. The tour starts at city 0;
 * two-level branches (the choice of second and third city) are
 * designated statically and captured by threads through an atomic
 * counter (par::vertexMapCapture over branch indices — the same
 * capture idiom the vertex kernels use, applied to subproblems). Each
 * thread searches its branch depth-first, pruning against a global
 * best-cost bound that is read racily on the hot path and improved
 * under an atomic lock — exactly the scheme the paper describes.
 * Threads whose branch cost exceeds the bound abandon the branch and
 * capture the next one.
 */

#ifndef CRONO_CORE_TSP_H_
#define CRONO_CORE_TSP_H_

#include <utility>
#include <vector>

#include "core/context.h"
#include "graph/adjacency_matrix.h"
#include "obs/telemetry.h"
#include "runtime/executor.h"
#include "runtime/par.h"
#include "runtime/strategies.h"

namespace crono::core {

/** Optimal (exact) tour over the input cities. */
struct TspResult {
    std::uint64_t cost = 0;
    std::vector<graph::VertexId> tour; ///< starts at city 0
    rt::RunInfo run;
};

template <class Ctx>
struct TspState {
    TspState(const graph::AdjacencyMatrix& cities_in,
             rt::ActiveTracker* tracker_in)
        : cities(cities_in), n(cities_in.numVertices()),
          bestTour(cities_in.numVertices(), graph::kNoVertex),
          tracker(tracker_in)
    {
        CRONO_REQUIRE(n >= 2 && n <= 30, "TSP supports 2..30 cities");
    }

    const graph::AdjacencyMatrix& cities;
    graph::VertexId n;
    rt::GlobalBound<Ctx> bound;
    AlignedVector<graph::VertexId> bestTour;
    typename Ctx::Mutex bestLock;
    rt::CaptureCounter counter;
    rt::ActiveTracker* tracker;
};

/**
 * Recursive branch-and-bound search below a fixed tour prefix.
 * @p nodes counts search-tree nodes entered (telemetry: kBranches).
 */
template <class Ctx>
void
tspSearch(Ctx& ctx, TspState<Ctx>& s, std::vector<graph::VertexId>& path,
          std::uint32_t visited_mask, std::uint64_t cost,
          std::uint64_t& nodes)
{
    ctx.work(2);
    ++nodes;
    // Prune: the racy bound read can only be stale-high, which merely
    // delays pruning.
    if (cost >= s.bound.current(ctx)) {
        return;
    }
    const graph::VertexId cur = path.back();
    if (path.size() == s.n) {
        const std::uint64_t total =
            cost + ctx.read(s.cities.row(cur)[0]); // close the tour
        if (s.bound.tryImprove(ctx, total)) {
            ScopedLock<Ctx> guard(ctx, s.bestLock);
            // Re-check under the lock: a concurrent improvement past
            // `total` must not be overwritten by this (worse) tour.
            // Declared-racy probe: bestLock does not order against the
            // bound's own mutex, so a concurrent improver may write
            // mid-read. Any mismatch (stale or fresh) skips the copy,
            // leaving the tour to the better bound's owner.
            if (ctx.readAtomic(s.bound.value) == total) {
                for (graph::VertexId i = 0; i < s.n; ++i) {
                    ctx.write(s.bestTour[i], path[i]);
                }
            }
        }
        return;
    }
    for (graph::VertexId next = 1; next < s.n; ++next) {
        if (visited_mask & (1u << next)) {
            continue;
        }
        const graph::Weight d = ctx.read(s.cities.row(cur)[next]);
        path.push_back(next);
        tspSearch(ctx, s, path, visited_mask | (1u << next), cost + d,
                  nodes);
        path.pop_back();
    }
}

template <class Ctx>
void
tspKernel(Ctx& ctx, TspState<Ctx>& s)
{
    std::vector<graph::VertexId> path;
    path.reserve(s.n);
    std::uint64_t nodes = 0;
    if (s.n < 4) {
        // Too few cities for two-level branches: solve on one thread.
        if (ctx.tid() == 0) {
            path.push_back(0);
            tspSearch(ctx, s, path, 1u, 0, nodes);
        }
        obs::counterAdd(ctx, obs::Counter::kBranches, nodes);
        return;
    }
    // Branches are designated statically at two levels (the choice of
    // second and third city) so there are (n-1)(n-2) of them — enough
    // for high thread counts to find work even as the bound prunes
    // whole branches.
    const std::uint64_t num_branches =
        static_cast<std::uint64_t>(s.n - 1) * (s.n - 2);
    rt::par::vertexMapCapture(
        ctx, s.counter, num_branches, [&](std::uint64_t branch) {
            trackAdd(s.tracker, 1);
            const auto second =
                static_cast<graph::VertexId>(branch / (s.n - 2) + 1);
            auto third =
                static_cast<graph::VertexId>(branch % (s.n - 2) + 1);
            if (third >= second) {
                ++third; // skip the second city's slot
            }
            path.clear();
            path.push_back(0);
            path.push_back(second);
            path.push_back(third);
            const std::uint64_t d =
                static_cast<std::uint64_t>(
                    ctx.read(s.cities.row(0)[second])) +
                ctx.read(s.cities.row(second)[third]);
            tspSearch(ctx, s, path,
                      (1u << 0) | (1u << second) | (1u << third), d,
                      nodes);
            trackAdd(s.tracker, -1);
        });
    obs::counterAdd(ctx, obs::Counter::kBranches, nodes);
}

/** Solve TSP exactly over a symmetric distance matrix. */
template <class Exec>
TspResult
tsp(Exec& exec, int nthreads, const graph::AdjacencyMatrix& cities,
    rt::ActiveTracker* tracker = nullptr)
{
    using Ctx = typename Exec::Ctx;
    obs::ScopedHostSpan kernel_span("TSP", cities.numVertices());
    TspState<Ctx> state(cities, tracker);
    rt::RunInfo info = exec.parallel(
        nthreads, [&state](Ctx& ctx) { tspKernel(ctx, state); });
    TspResult result;
    result.cost = state.bound.value;
    result.tour.assign(state.bestTour.begin(), state.bestTour.end());
    result.run = std::move(info);
    return result;
}

} // namespace crono::core

#endif // CRONO_CORE_TSP_H_

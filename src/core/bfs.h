/**
 * @file
 * Breadth First Search (Section III-4).
 *
 * Parallelization: graph division with a barrier per level hop. The
 * current level's frontier lives in a rt::FrontierEngine; each round
 * is consumed through the rt::par edge maps in the direction the
 * engine plans for it:
 *
 *  - push (par::edgeMapPush): front vertices expand their out-edges
 *    and claim undiscovered neighbors — flag-scan of the static
 *    vertex block in the paper's kFlagScan structure, chunked work
 *    lists with stealing in kSparse/kAdaptive. Discovery claims go
 *    through FrontierEngine::activateClaim, whose flag fetch-and-add
 *    doubles as the claim (the level array is the cheap
 *    already-visited filter), so the separate `claimed` array of
 *    CRONO's released kernel disappears — one RMW replaces
 *    claim + flag read + flag write, with the same winner-takes-the-
 *    vertex race.
 *  - pull (par::edgeMapPull, heavy kAdaptive rounds / kPull):
 *    undiscovered vertices scan their own neighbors against the
 *    front bitmap and adopt the first in-front neighbor as parent,
 *    stopping the scan there. On the heavy middle levels of a
 *    power-law traversal (most of the graph on the front at once)
 *    that first-hit exit skips the vast majority of edge work the
 *    push direction would burn on already-claimed destinations —
 *    this is the direction-optimizing BFS of Beamer et al., keyed on
 *    rt::pullFrontThreshold.
 *
 * Optionally stops early once a target vertex is reached (the paper
 * frames BFS as a search); by default traverses the whole component
 * producing BFS levels and a parent tree. The stop decision is
 * snapshotted between the round barriers so every thread breaks
 * together, in every mode.
 */

#ifndef CRONO_CORE_BFS_H_
#define CRONO_CORE_BFS_H_

#include <utility>

#include "core/context.h"
#include "graph/graph.h"
#include "obs/telemetry.h"
#include "runtime/executor.h"
#include "runtime/frontier.h"
#include "runtime/par.h"

namespace crono::core {

/** Level not reached by the traversal. */
inline constexpr std::uint32_t kNoLevel = ~std::uint32_t{0};

/** BFS traversal output. */
struct BfsResult {
    AlignedVector<std::uint32_t> level;     ///< kNoLevel if unreached
    AlignedVector<graph::VertexId> parent;  ///< kNoVertex if unreached
    std::uint64_t reached = 0;              ///< vertices visited
    bool found_target = false;
    rt::RunInfo run;
};

/** Shared BFS state. */
template <class Ctx>
struct BfsState {
    BfsState(const graph::Graph& graph, graph::VertexId source,
             graph::VertexId target_in, int nthreads,
             rt::FrontierMode mode, rt::ActiveTracker* tracker_in)
        : g(graph), level(graph.numVertices(), kNoLevel),
          parent(graph.numVertices(), graph::kNoVertex),
          frontier(graph.numVertices(), graph.numEdges(), nthreads,
                   mode),
          target(target_in), tracker(tracker_in)
    {
        CRONO_REQUIRE(source < graph.numVertices(), "bad BFS source");
        level[source] = 0;
        parent[source] = source;
        frontier.seed(source);
        trackAdd(tracker, 1);
    }

    const graph::Graph& g;
    AlignedVector<std::uint32_t> level;
    AlignedVector<graph::VertexId> parent;
    rt::FrontierEngine frontier;
    Padded<std::uint64_t> reached;
    Padded<std::uint32_t> found;
    graph::VertexId target;
    rt::ActiveTracker* tracker;
};

/**
 * Kernel body; all threads execute this with the shared state.
 *
 * "Found" means the target was *consumed* from a front (push: its
 * expansion ran; pull: it was a member of the round's front), so the
 * stop round is the same in every mode and the level/parent arrays
 * always hold the completed rounds' full discoveries.
 */
template <class Ctx>
void
bfsKernel(Ctx& ctx, BfsState<Ctx>& s)
{
    const rt::par::Csr csr = rt::par::csrOf(s.g);

    obs::Track* const track =
        obs::trackFor(obs::sink(), obs::ctxTrackKind<Ctx>, ctx.tid());

    std::uint64_t front = s.frontier.initialFrontSize();
    std::uint64_t local_reached = 0;
    for (std::uint32_t depth = 0; front != 0; ++depth) {
        const rt::RoundPlan plan =
            s.frontier.planRound(front, /*allow_pull=*/true);
        if (plan == rt::RoundPlan::kPull) {
            if (ctx.tid() == 0) {
                // The whole front is consumed this round; account it
                // here since no per-vertex push expansion runs.
                local_reached += front;
                trackAdd(s.tracker,
                         -static_cast<std::int64_t>(front));
                if (s.target < s.g.numVertices() &&
                    s.frontier.inCurrent(ctx, depth, s.target)) {
                    ctx.write(s.found.value, 1u);
                }
            }
            rt::par::edgeMapPull(
                ctx, csr, s.frontier, depth,
                [&](graph::VertexId v) {
                    return ctx.read(s.level[v]) == kNoLevel;
                },
                [&](graph::VertexId v, graph::VertexId u,
                    graph::EdgeId) {
                    // First in-front neighbor wins (deterministic:
                    // CSR order). v is owner-exclusive, no claim RMW.
                    ctx.write(s.level[v], depth + 1);
                    ctx.write(s.parent[v], u);
                    s.frontier.activate(ctx, depth, v);
                    trackAdd(s.tracker, 1);
                    return true; // stop scanning v
                },
                [](graph::VertexId) {});
        } else {
            rt::par::edgeMapPush(
                ctx, csr, s.frontier, depth,
                plan == rt::RoundPlan::kDensePush,
                [&](graph::VertexId u) {
                    ++local_reached;
                    trackAdd(s.tracker, -1);
                    if (u == s.target) {
                        ctx.write(s.found.value, 1u);
                    }
                    return true;
                },
                [&](graph::VertexId u, graph::VertexId v,
                    graph::EdgeId) {
                    ctx.work(1);
                    // Declared-racy probe: v's level may be written by
                    // a concurrent claim winner. A stale kNoLevel only
                    // costs a losing activateClaim RMW; levels are
                    // written once, so a stale non-kNoLevel cannot
                    // happen (set-once, same round claims arbitrate).
                    if (ctx.readAtomic(s.level[v]) != kNoLevel) {
                        return; // visited in an earlier level
                    }
                    if (s.frontier.activateClaim(ctx, depth, v)) {
                        ctx.write(s.level[v], depth + 1);
                        ctx.write(s.parent[v], u);
                        trackAdd(s.tracker, 1);
                    }
                });
        }
        bool stop = false;
        front = s.frontier.advance(ctx, depth, [&] {
            // Between the barriers the round is quiesced, so every
            // thread snapshots the same value and breaks together.
            stop = ctx.read(s.found.value) != 0;
            if (plan == rt::RoundPlan::kPull) {
                // Pull rounds never consume their flags; wipe this
                // thread's block before the parity is reused.
                s.frontier.clearCurrentBlock(ctx, depth);
            }
        });
        if (stop) {
            break;
        }
    }
    if (local_reached != 0) {
        ctx.fetchAdd(s.reached.value, local_reached);
    }
    if (track != nullptr) {
        obs::counterBump(track, obs::Counter::kExpansions,
                         local_reached);
    }
}

/**
 * Run BFS from @p source. Pass @p target = graph::kNoVertex to
 * traverse the full component.
 *
 * @param mode frontier representation; kFlagScan (default) is the
 *             paper's structure, kSparse/kAdaptive run on the
 *             rt::FrontierEngine work lists, with kAdaptive also
 *             taking heavy rounds pull-side (direction optimization)
 */
template <class Exec>
BfsResult
bfs(Exec& exec, int nthreads, const graph::Graph& g,
    graph::VertexId source, graph::VertexId target = graph::kNoVertex,
    rt::ActiveTracker* tracker = nullptr,
    rt::FrontierMode mode = rt::FrontierMode::kFlagScan)
{
    using Ctx = typename Exec::Ctx;
    obs::ScopedHostSpan kernel_span("BFS", g.numVertices());
    BfsState<Ctx> state(g, source, target, nthreads, mode, tracker);
    rt::RunInfo info = exec.parallel(
        nthreads, [&state](Ctx& ctx) { bfsKernel(ctx, state); });
    if (mode != rt::FrontierMode::kFlagScan) {
        state.frontier.applyRoundStats(info);
    }
    return BfsResult{std::move(state.level), std::move(state.parent),
                     state.reached.value, state.found.value != 0,
                     std::move(info)};
}

} // namespace crono::core

#endif // CRONO_CORE_BFS_H_

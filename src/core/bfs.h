/**
 * @file
 * Breadth First Search (Section III-4).
 *
 * Parallelization: graph division with a barrier per level hop.
 * Per-vertex "active" flags mark the current level's frontier; each
 * thread scans its static vertex block, expands its active vertices
 * and claims undiscovered neighbors with an atomic flag. Optionally
 * stops early once a target vertex is reached (the paper frames BFS
 * as a search); by default traverses the whole component producing
 * BFS levels and a parent tree.
 */

#ifndef CRONO_CORE_BFS_H_
#define CRONO_CORE_BFS_H_

#include <utility>

#include "core/context.h"
#include "graph/graph.h"
#include "obs/telemetry.h"
#include "runtime/executor.h"
#include "runtime/frontier.h"
#include "runtime/partition.h"

namespace crono::core {

/** Level not reached by the traversal. */
inline constexpr std::uint32_t kNoLevel = ~std::uint32_t{0};

/** BFS traversal output. */
struct BfsResult {
    AlignedVector<std::uint32_t> level;     ///< kNoLevel if unreached
    AlignedVector<graph::VertexId> parent;  ///< kNoVertex if unreached
    std::uint64_t reached = 0;              ///< vertices visited
    bool found_target = false;
    rt::RunInfo run;
};

/** Shared BFS state. */
template <class Ctx>
struct BfsState {
    BfsState(const graph::Graph& graph, graph::VertexId source,
             graph::VertexId target_in, rt::ActiveTracker* tracker_in)
        : g(graph), level(graph.numVertices(), kNoLevel),
          parent(graph.numVertices(), graph::kNoVertex),
          claimed(graph.numVertices(), 0), target(target_in),
          tracker(tracker_in)
    {
        CRONO_REQUIRE(source < graph.numVertices(), "bad BFS source");
        active[0].assign(graph.numVertices(), 0);
        active[1].assign(graph.numVertices(), 0);
        level[source] = 0;
        parent[source] = source;
        claimed[source] = 1;
        active[0][source] = 1;
        discovered[0].value = 1;
        trackAdd(tracker, 1);
    }

    const graph::Graph& g;
    AlignedVector<std::uint32_t> level;
    AlignedVector<graph::VertexId> parent;
    AlignedVector<std::uint32_t> claimed;
    /** Frontier flags, indexed by level parity. */
    AlignedVector<std::uint32_t> active[2];
    /** Frontier sizes, same parity indexing. */
    Padded<std::uint64_t> discovered[2];
    Padded<std::uint64_t> reached;
    Padded<std::uint32_t> found;
    graph::VertexId target;
    rt::ActiveTracker* tracker;
};

template <class Ctx>
void
bfsKernel(Ctx& ctx, BfsState<Ctx>& s)
{
    const graph::EdgeId* offsets = s.g.rawOffsets().data();
    const graph::VertexId* neighbors = s.g.rawNeighbors().data();
    const rt::Range range =
        rt::blockPartition(s.g.numVertices(), ctx.tid(), ctx.nthreads());

    obs::Track* const track =
        obs::trackFor(obs::sink(), obs::ctxTrackKind<Ctx>, ctx.tid());
    std::uint64_t expansions = 0;

    for (std::uint32_t depth = 0;; ++depth) {
        const std::uint64_t round_begin =
            track != nullptr ? ctx.timestamp() : 0;
        std::uint32_t* cur = s.active[depth % 2].data();
        std::uint32_t* nxt = s.active[(depth + 1) % 2].data();
        std::uint64_t local_found = 0;

        for (std::uint64_t vi = range.begin; vi < range.end; ++vi) {
            const auto u = static_cast<graph::VertexId>(vi);
            if (ctx.read(cur[u]) == 0) {
                continue;
            }
            ctx.write(cur[u], 0u);
            ctx.fetchAdd(s.reached.value, std::uint64_t{1});
            trackAdd(s.tracker, -1);
            ++expansions;
            if (u == s.target) {
                ctx.write(s.found.value, 1u);
            }
            const graph::EdgeId beg = ctx.read(offsets[u]);
            const graph::EdgeId end = ctx.read(offsets[u + 1]);
            for (graph::EdgeId e = beg; e < end; ++e) {
                const graph::VertexId v = ctx.read(neighbors[e]);
                ctx.work(1);
                if (ctx.read(s.claimed[v]) != 0) {
                    continue;
                }
                if (ctx.fetchAdd(s.claimed[v], 1u) == 0) {
                    ctx.write(s.level[v], depth + 1);
                    ctx.write(s.parent[v], u);
                    ctx.write(nxt[v], 1u);
                    ++local_found;
                    trackAdd(s.tracker, 1);
                }
            }
        }
        if (track != nullptr) {
            obs::spanRecord(
                track, {round_begin, ctx.timestamp(), "round-scan",
                        depth, obs::SpanCat::kRound});
        }
        if (local_found > 0) {
            ctx.fetchAdd(s.discovered[(depth + 1) % 2].value, local_found);
        }
        ctx.barrier();
        const std::uint64_t next_front =
            ctx.read(s.discovered[(depth + 1) % 2].value);
        const bool stop = ctx.read(s.found.value) != 0;
        if (ctx.tid() == 0) {
            ctx.write(s.discovered[depth % 2].value, std::uint64_t{0});
        }
        ctx.barrier();
        if (next_front == 0 || stop) {
            break;
        }
    }
    if (track != nullptr) {
        obs::counterBump(track, obs::Counter::kExpansions, expansions);
    }
}

/** BFS state for the work-list engine path (kSparse / kAdaptive). */
template <class Ctx>
struct BfsFrontierState {
    BfsFrontierState(const graph::Graph& graph, graph::VertexId source,
                     graph::VertexId target_in, int nthreads,
                     rt::FrontierMode mode, rt::ActiveTracker* tracker_in)
        : g(graph), level(graph.numVertices(), kNoLevel),
          parent(graph.numVertices(), graph::kNoVertex),
          frontier(graph.numVertices(), graph.numEdges(), nthreads, mode),
          target(target_in), tracker(tracker_in)
    {
        CRONO_REQUIRE(source < graph.numVertices(), "bad BFS source");
        level[source] = 0;
        parent[source] = source;
        frontier.seed(source);
        trackAdd(tracker, 1);
    }

    const graph::Graph& g;
    AlignedVector<std::uint32_t> level;
    AlignedVector<graph::VertexId> parent;
    rt::FrontierEngine frontier;
    Padded<std::uint64_t> reached;
    Padded<std::uint32_t> found;
    graph::VertexId target;
    rt::ActiveTracker* tracker;
};

/**
 * Frontier-engine BFS body: same level-synchronous expansion with
 * atomic claims, but levels are consumed from work lists (or the
 * dense bitmap on adaptive heavy levels) instead of full block scans.
 * Two further savings over the flag-scan structure: discovery claims
 * go through FrontierEngine::activateClaim, whose flag fetch-and-add
 * doubles as the claim (the level array is the cheap already-visited
 * filter, so the separate claimed array disappears), and per-vertex
 * visit counting is accumulated locally and published once per
 * thread — the result is identical, without a shared counter RMW per
 * visited vertex.
 */
template <class Ctx>
void
bfsFrontierKernel(Ctx& ctx, BfsFrontierState<Ctx>& s)
{
    const graph::EdgeId* offsets = s.g.rawOffsets().data();
    const graph::VertexId* neighbors = s.g.rawNeighbors().data();

    obs::Track* const track =
        obs::trackFor(obs::sink(), obs::ctxTrackKind<Ctx>, ctx.tid());

    std::uint64_t front = s.frontier.initialFrontSize();
    std::uint64_t local_reached = 0;
    for (std::uint32_t depth = 0; front != 0; ++depth) {
        const bool dense = s.frontier.denseRound(front);
        s.frontier.processCurrent(
            ctx, depth, dense, [&](graph::VertexId u) {
                ++local_reached;
                trackAdd(s.tracker, -1);
                if (u == s.target) {
                    ctx.write(s.found.value, 1u);
                }
                const graph::EdgeId beg = ctx.read(offsets[u]);
                const graph::EdgeId end = ctx.read(offsets[u + 1]);
                for (graph::EdgeId e = beg; e < end; ++e) {
                    const graph::VertexId v = ctx.read(neighbors[e]);
                    ctx.work(1);
                    if (ctx.read(s.level[v]) != kNoLevel) {
                        continue; // visited in an earlier level
                    }
                    if (s.frontier.activateClaim(ctx, depth, v)) {
                        ctx.write(s.level[v], depth + 1);
                        ctx.write(s.parent[v], u);
                        trackAdd(s.tracker, 1);
                    }
                }
            });
        bool stop = false;
        front = s.frontier.advance(ctx, depth, [&] {
            // Between the barriers the round is quiesced, so every
            // thread snapshots the same value and breaks together.
            stop = ctx.read(s.found.value) != 0;
        });
        if (stop) {
            break;
        }
    }
    if (local_reached != 0) {
        ctx.fetchAdd(s.reached.value, local_reached);
    }
    if (track != nullptr) {
        obs::counterBump(track, obs::Counter::kExpansions,
                         local_reached);
    }
}

/**
 * Run BFS from @p source. Pass @p target = graph::kNoVertex to
 * traverse the full component.
 *
 * @param mode frontier representation; kFlagScan (default) is the
 *             paper's structure, kSparse/kAdaptive run on the
 *             rt::FrontierEngine work lists
 */
template <class Exec>
BfsResult
bfs(Exec& exec, int nthreads, const graph::Graph& g,
    graph::VertexId source, graph::VertexId target = graph::kNoVertex,
    rt::ActiveTracker* tracker = nullptr,
    rt::FrontierMode mode = rt::FrontierMode::kFlagScan)
{
    using Ctx = typename Exec::Ctx;
    obs::ScopedHostSpan kernel_span("BFS", g.numVertices());
    if (mode == rt::FrontierMode::kFlagScan) {
        BfsState<Ctx> state(g, source, target, tracker);
        rt::RunInfo info = exec.parallel(
            nthreads, [&state](Ctx& ctx) { bfsKernel(ctx, state); });
        return BfsResult{std::move(state.level), std::move(state.parent),
                         state.reached.value, state.found.value != 0,
                         std::move(info)};
    }
    BfsFrontierState<Ctx> state(g, source, target, nthreads, mode,
                                tracker);
    rt::RunInfo info = exec.parallel(
        nthreads, [&state](Ctx& ctx) { bfsFrontierKernel(ctx, state); });
    state.frontier.applyRoundStats(info);
    return BfsResult{std::move(state.level), std::move(state.parent),
                     state.reached.value, state.found.value != 0,
                     std::move(info)};
}

} // namespace crono::core

#endif // CRONO_CORE_BFS_H_

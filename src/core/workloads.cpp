#include "core/workloads.h"

#include <cmath>

namespace crono::core {

namespace gen = graph::generators;

const char*
graphKindName(GraphKind kind)
{
    switch (kind) {
      case GraphKind::sparse:
        return "sparse";
      case GraphKind::road:
        return "road";
      case GraphKind::social:
        return "social";
    }
    return "?";
}

graph::Graph
makeGraph(GraphKind kind, graph::VertexId vertices,
          graph::EdgeId edges_per_vertex, std::uint64_t seed)
{
    switch (kind) {
      case GraphKind::sparse:
        return gen::uniformRandom(
            vertices, static_cast<graph::EdgeId>(vertices) *
                          edges_per_vertex,
            /*max_weight=*/64, seed);
      case GraphKind::road: {
        const auto side = static_cast<graph::VertexId>(
            std::lround(std::sqrt(static_cast<double>(vertices))));
        return gen::roadNetwork(std::max<graph::VertexId>(side, 2),
                                std::max<graph::VertexId>(side, 2), seed);
      }
      case GraphKind::social: {
        unsigned scale = 1;
        while ((graph::VertexId{1} << scale) < vertices) {
            ++scale;
        }
        return gen::socialNetwork(
            scale, static_cast<unsigned>(edges_per_vertex), seed);
      }
    }
    CRONO_ASSERT(false, "unknown graph kind");
    return gen::path(2);
}

namespace {

graph::ReorderedGraph
makeReordered(const WorkloadConfig& cfg)
{
    return graph::reorderGraph(
        makeGraph(cfg.kind, cfg.graph_vertices, cfg.edges_per_vertex,
                  cfg.seed),
        cfg.reordering, cfg.blocked_layout);
}

} // namespace

WorkloadSet::WorkloadSet(const WorkloadConfig& cfg)
    : WorkloadSet(cfg, makeReordered(cfg))
{
}

WorkloadSet::WorkloadSet(const WorkloadConfig& cfg,
                         graph::ReorderedGraph rg)
    : cfg_(cfg), graph_(std::move(rg.graph)), perm_(std::move(rg.perm)),
      matrix_(graph::AdjacencyMatrix(gen::uniformRandom(
          cfg.matrix_vertices,
          static_cast<graph::EdgeId>(cfg.matrix_vertices) * 8,
          /*max_weight=*/64, cfg.seed + 1))),
      cities_(gen::tspCities(cfg.tsp_cities, cfg.seed + 2)),
      mcs_pattern_(gen::labeledGraph(
          cfg.mcs_pattern_vertices,
          static_cast<graph::EdgeId>(cfg.mcs_pattern_vertices) * 2,
          cfg.mcs_labels, cfg.seed + 3)),
      mcs_target_(gen::labeledGraph(
          cfg.mcs_target_vertices,
          static_cast<graph::EdgeId>(cfg.mcs_target_vertices) * 2,
          cfg.mcs_labels, cfg.seed + 4))
{
}

Workload
WorkloadSet::forBenchmark(BenchmarkId) const
{
    Workload w;
    w.graph = &graph_;
    w.matrix = &matrix_;
    w.cities = &cities_;
    w.mcs_pattern = &mcs_pattern_;
    w.mcs_target = &mcs_target_;
    // Kernels run in the relabeled space; the canonical source vertex
    // (original id 0) travels through the permutation with them.
    w.source = perm_.toNew(0);
    w.pr_iterations = cfg_.pr_iterations;
    w.comm_rounds = cfg_.comm_rounds;
    return w;
}

graph::Reordering
recommendedReordering(BenchmarkId id, GraphKind kind)
{
    switch (id) {
      case BenchmarkId::apsp:
      case BenchmarkId::betwCent:
      case BenchmarkId::tsp:
      case BenchmarkId::mcs:
        return graph::Reordering::kNone; // dense-matrix inputs
      default:
        break;
    }
    switch (kind) {
      case GraphKind::road:
        return graph::Reordering::kRcm;
      case GraphKind::social:
        return id == BenchmarkId::pageRank
                   ? graph::Reordering::kDegreeSort
                   : graph::Reordering::kHubCluster;
      case GraphKind::sparse:
        return graph::Reordering::kNone; // no structure to recover
    }
    return graph::Reordering::kNone;
}

} // namespace crono::core

/**
 * @file
 * Depth First Search (Section III-5).
 *
 * Parallelization: branch-level. A shared branch stack holds subtree
 * roots; each thread pops a branch and explores it depth-first with a
 * private stack, claiming vertices through atomic flags. Extra
 * branches discovered along the way are donated to the shared stack
 * while it is shallow, which is the only way DFS exposes parallelism
 * — matching the paper's observation that DFS scales worst of the
 * suite (heavy vertex-level dependencies, high L2Home-Sharers time).
 */

#ifndef CRONO_CORE_DFS_H_
#define CRONO_CORE_DFS_H_

#include <utility>
#include <vector>

#include "core/context.h"
#include "graph/graph.h"
#include "runtime/executor.h"

namespace crono::core {

/** Visit order not assigned (vertex unreached). */
inline constexpr std::uint64_t kNotVisited = ~std::uint64_t{0};

/** DFS traversal output. */
struct DfsResult {
    AlignedVector<std::uint64_t> order;     ///< visit sequence number
    AlignedVector<graph::VertexId> parent;  ///< discovery tree
    std::uint64_t visited = 0;
    bool found_target = false;
    rt::RunInfo run;
};

template <class Ctx>
struct DfsState {
    DfsState(const graph::Graph& graph, graph::VertexId source,
             graph::VertexId target_in, rt::ActiveTracker* tracker_in)
        : g(graph), order(graph.numVertices(), kNotVisited),
          parent(graph.numVertices(), graph::kNoVertex),
          claimed(graph.numVertices(), 0),
          sharedStack(graph.numVertices()), target(target_in),
          tracker(tracker_in)
    {
        CRONO_REQUIRE(source < graph.numVertices(), "bad DFS source");
        // The source is pre-claimed and seeded as the first branch.
        claimed[source] = 1;
        parent[source] = source;
        sharedStack[0] = source;
        stackTop.value = 1;
        trackAdd(tracker, 1);
    }

    const graph::Graph& g;
    AlignedVector<std::uint64_t> order;
    AlignedVector<graph::VertexId> parent;
    AlignedVector<std::uint32_t> claimed;
    AlignedVector<graph::VertexId> sharedStack;
    Padded<std::uint64_t> stackTop;
    Padded<std::uint64_t> working;     ///< threads holding a branch
    Padded<std::uint64_t> visitCounter;
    Padded<std::uint32_t> found;
    typename Ctx::Mutex stackLock;
    graph::VertexId target;
    rt::ActiveTracker* tracker;
};

/**
 * Pop a branch root; increments `working` under the same lock so the
 * empty+idle termination test is race-free.
 * @return the branch root, or kNoVertex with *done set appropriately.
 */
template <class Ctx>
graph::VertexId
dfsPopBranch(Ctx& ctx, DfsState<Ctx>& s, bool* done)
{
    ScopedLock<Ctx> guard(ctx, s.stackLock);
    const std::uint64_t top = ctx.read(s.stackTop.value);
    if (top > 0) {
        const graph::VertexId v = ctx.read(s.sharedStack[top - 1]);
        ctx.write(s.stackTop.value, top - 1);
        ctx.write(s.working.value, ctx.read(s.working.value) + 1);
        *done = false;
        return v;
    }
    // No work and nobody who could create more: the traversal is over.
    *done = ctx.read(s.working.value) == 0;
    return graph::kNoVertex;
}

template <class Ctx>
void
dfsKernel(Ctx& ctx, DfsState<Ctx>& s)
{
    const graph::EdgeId* offsets = s.g.rawOffsets().data();
    const graph::VertexId* neighbors = s.g.rawNeighbors().data();
    // Donate branches while the shared stack is shallower than this.
    const std::uint64_t donate_below =
        4 * static_cast<std::uint64_t>(ctx.nthreads());

    std::vector<graph::VertexId> local; // private DFS stack
    for (;;) {
        if (ctx.read(s.found.value) != 0) {
            break; // target reached somewhere
        }
        bool done = false;
        const graph::VertexId root = dfsPopBranch(ctx, s, &done);
        if (root == graph::kNoVertex) {
            if (done) {
                break;
            }
            ctx.work(8); // idle poll
            continue;
        }

        local.push_back(root);
        while (!local.empty() && ctx.read(s.found.value) == 0) {
            const graph::VertexId v = local.back();
            local.pop_back();
            ctx.work(2);
            const std::uint64_t seq =
                ctx.fetchAdd(s.visitCounter.value, std::uint64_t{1});
            ctx.write(s.order[v], seq);
            trackAdd(s.tracker, -1);
            if (v == s.target) {
                ctx.write(s.found.value, 1u);
                break;
            }
            const graph::EdgeId beg = ctx.read(offsets[v]);
            const graph::EdgeId end = ctx.read(offsets[v + 1]);
            bool first_child = true;
            for (graph::EdgeId e = beg; e < end; ++e) {
                const graph::VertexId u = ctx.read(neighbors[e]);
                ctx.work(1);
                if (ctx.read(s.claimed[u]) != 0 ||
                    ctx.fetchAdd(s.claimed[u], 1u) != 0) {
                    continue;
                }
                ctx.write(s.parent[u], v);
                trackAdd(s.tracker, 1);
                // Deepen along the first child; donate later siblings
                // while other threads may be starving.
                if (!first_child &&
                    ctx.read(s.stackTop.value) < donate_below) {
                    ScopedLock<Ctx> guard(ctx, s.stackLock);
                    const std::uint64_t top = ctx.read(s.stackTop.value);
                    ctx.write(s.sharedStack[top], u);
                    ctx.write(s.stackTop.value, top + 1);
                } else {
                    local.push_back(u);
                    first_child = false;
                }
            }
        }
        local.clear(); // branch finished (or aborted on found)

        ScopedLock<Ctx> guard(ctx, s.stackLock);
        ctx.write(s.working.value, ctx.read(s.working.value) - 1);
    }
}

/**
 * Run parallel DFS from @p source; stops early if @p target is found.
 */
template <class Exec>
DfsResult
dfs(Exec& exec, int nthreads, const graph::Graph& g,
    graph::VertexId source, graph::VertexId target = graph::kNoVertex,
    rt::ActiveTracker* tracker = nullptr)
{
    using Ctx = typename Exec::Ctx;
    DfsState<Ctx> state(g, source, target, tracker);
    rt::RunInfo info = exec.parallel(
        nthreads, [&state](Ctx& ctx) { dfsKernel(ctx, state); });
    return DfsResult{std::move(state.order), std::move(state.parent),
                     state.visitCounter.value, state.found.value != 0,
                     std::move(info)};
}

} // namespace crono::core

#endif // CRONO_CORE_DFS_H_

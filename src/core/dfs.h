/**
 * @file
 * Depth First Search (Section III-5).
 *
 * Parallelization: branch-level. A shared branch stack
 * (par::BranchStack) holds subtree roots; each thread pops a branch
 * and explores it depth-first with a private stack, claiming vertices
 * through atomic flags (par::tryClaim). Extra branches discovered
 * along the way are donated to the shared stack while it is shallow,
 * which is the only way DFS exposes parallelism — matching the
 * paper's observation that DFS scales worst of the suite (heavy
 * vertex-level dependencies, high L2Home-Sharers time).
 */

#ifndef CRONO_CORE_DFS_H_
#define CRONO_CORE_DFS_H_

#include <utility>
#include <vector>

#include "core/context.h"
#include "graph/graph.h"
#include "obs/telemetry.h"
#include "runtime/executor.h"
#include "runtime/par.h"

namespace crono::core {

/** Visit order not assigned (vertex unreached). */
inline constexpr std::uint64_t kNotVisited = ~std::uint64_t{0};

/** DFS traversal output. */
struct DfsResult {
    AlignedVector<std::uint64_t> order;     ///< visit sequence number
    AlignedVector<graph::VertexId> parent;  ///< discovery tree
    std::uint64_t visited = 0;
    bool found_target = false;
    rt::RunInfo run;
};

template <class Ctx>
struct DfsState {
    DfsState(const graph::Graph& graph, graph::VertexId source,
             graph::VertexId target_in, rt::ActiveTracker* tracker_in)
        : g(graph), order(graph.numVertices(), kNotVisited),
          parent(graph.numVertices(), graph::kNoVertex),
          claimed(graph.numVertices(), 0),
          branches(graph.numVertices()), target(target_in),
          tracker(tracker_in)
    {
        CRONO_REQUIRE(source < graph.numVertices(), "bad DFS source");
        // The source is pre-claimed and seeded as the first branch.
        claimed[source] = 1;
        parent[source] = source;
        branches.hostSeed(source);
        trackAdd(tracker, 1);
    }

    const graph::Graph& g;
    AlignedVector<std::uint64_t> order;
    AlignedVector<graph::VertexId> parent;
    AlignedVector<std::uint32_t> claimed;
    rt::par::BranchStack<Ctx> branches;
    Padded<std::uint64_t> visitCounter;
    Padded<std::uint32_t> found;
    graph::VertexId target;
    rt::ActiveTracker* tracker;
};

template <class Ctx>
void
dfsKernel(Ctx& ctx, DfsState<Ctx>& s)
{
    const rt::par::Csr csr = rt::par::csrOf(s.g);
    // Donate branches while the shared stack is shallower than this.
    const std::uint64_t donate_below =
        4 * static_cast<std::uint64_t>(ctx.nthreads());

    std::uint64_t visits = 0;
    std::uint64_t donations = 0;
    std::vector<graph::VertexId> local; // private DFS stack
    for (;;) {
        // Declared-racy probe: the finder's write is unordered with
        // this poll. A stale 0 only delays termination by one branch.
        if (ctx.readAtomic(s.found.value) != 0) {
            break; // target reached somewhere
        }
        bool done = false;
        std::uint32_t root = 0;
        if (!s.branches.pop(ctx, &root, &done)) {
            if (done) {
                break;
            }
            ctx.work(8); // idle poll
            continue;
        }

        local.push_back(root);
        while (!local.empty() && ctx.readAtomic(s.found.value) == 0) {
            const graph::VertexId v = local.back();
            local.pop_back();
            ctx.work(2);
            const std::uint64_t seq =
                ctx.fetchAdd(s.visitCounter.value, std::uint64_t{1});
            ctx.write(s.order[v], seq);
            ++visits;
            trackAdd(s.tracker, -1);
            if (v == s.target) {
                ctx.write(s.found.value, 1u);
                break;
            }
            const graph::EdgeId beg = ctx.read(csr.offsets[v]);
            const graph::EdgeId end = ctx.read(csr.offsets[v + 1]);
            bool first_child = true;
            for (graph::EdgeId e = beg; e < end; ++e) {
                const graph::VertexId u = ctx.read(csr.neighbors[e]);
                ctx.work(1);
                if (!rt::par::tryClaim(ctx, s.claimed.data(), u)) {
                    continue;
                }
                ctx.write(s.parent[u], v);
                trackAdd(s.tracker, 1);
                // Deepen along the first child; donate later siblings
                // while other threads may be starving (a full stack
                // declines the donation and the child stays local).
                if (!first_child && s.branches.below(ctx, donate_below) &&
                    s.branches.push(ctx, u)) {
                    ++donations;
                } else {
                    local.push_back(u);
                    first_child = false;
                }
            }
        }
        local.clear(); // branch finished (or aborted on found)
        s.branches.finish(ctx);
    }
    obs::counterAdd(ctx, obs::Counter::kExpansions, visits);
    obs::counterAdd(ctx, obs::Counter::kDonations, donations);
}

/**
 * Run parallel DFS from @p source; stops early if @p target is found.
 */
template <class Exec>
DfsResult
dfs(Exec& exec, int nthreads, const graph::Graph& g,
    graph::VertexId source, graph::VertexId target = graph::kNoVertex,
    rt::ActiveTracker* tracker = nullptr)
{
    using Ctx = typename Exec::Ctx;
    obs::ScopedHostSpan kernel_span("DFS", g.numVertices());
    DfsState<Ctx> state(g, source, target, tracker);
    rt::RunInfo info = exec.parallel(
        nthreads, [&state](Ctx& ctx) { dfsKernel(ctx, state); });
    return DfsResult{std::move(state.order), std::move(state.parent),
                     state.visitCounter.value, state.found.value != 0,
                     std::move(info)};
}

} // namespace crono::core

#endif // CRONO_CORE_DFS_H_

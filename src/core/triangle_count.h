/**
 * @file
 * Triangle Counting (Section III-8), exact version.
 *
 * Parallelization (Table I: Vertex Capture & Graph Division): the
 * enumeration pass captures vertices from a shared atomic cursor
 * (par::vertexMapCapture), updating per-vertex counters under atomic
 * locks; after a barrier, a statically divided reduction pass folds
 * per-vertex counts into the global total through par::reduce — the
 * two-phase structure the paper describes, with the merge expressed
 * as a deterministic tree reduction instead of a shared-counter
 * fetch-and-add race. Each triangle {a < b < c} is enumerated exactly
 * once from its smallest vertex, testing the closing edge with a
 * binary search over the (sorted) CSR adjacency list.
 */

#ifndef CRONO_CORE_TRIANGLE_COUNT_H_
#define CRONO_CORE_TRIANGLE_COUNT_H_

#include <utility>

#include "core/context.h"
#include "graph/graph.h"
#include "obs/telemetry.h"
#include "runtime/executor.h"
#include "runtime/par.h"
#include "runtime/strategies.h"

namespace crono::core {

/** Exact triangle census. */
struct TriangleCountResult {
    std::uint64_t total = 0;
    /** Number of triangles incident on each vertex. */
    AlignedVector<std::uint64_t> per_vertex;
    rt::RunInfo run;
};

template <class Ctx>
struct TriangleCountState {
    TriangleCountState(const graph::Graph& graph, int nthreads,
                       rt::ActiveTracker* tracker_in)
        : g(graph), per_vertex(graph.numVertices(), 0),
          totals(nthreads), locks(graph.numVertices()),
          tracker(tracker_in)
    {
    }

    const graph::Graph& g;
    AlignedVector<std::uint64_t> per_vertex;
    Padded<std::uint64_t> total;
    /** Per-thread fold slots of the phase-2 reduction. */
    rt::par::ReduceSlots<std::uint64_t> totals;
    rt::CaptureCounter cursor;
    LockStripe<Ctx> locks;
    rt::ActiveTracker* tracker;
};

/** Modeled binary search for @p target in @p v's sorted adjacency. */
template <class Ctx>
bool
triangleHasEdge(Ctx& ctx, const graph::EdgeId* offsets,
                const graph::VertexId* neighbors, graph::VertexId v,
                graph::VertexId target)
{
    std::uint64_t lo = ctx.read(offsets[v]);
    std::uint64_t hi = ctx.read(offsets[v + 1]);
    while (lo < hi) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        const graph::VertexId got = ctx.read(neighbors[mid]);
        ctx.work(2);
        if (got == target) {
            return true;
        }
        if (got < target) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    return false;
}

template <class Ctx>
void
triangleCountKernel(Ctx& ctx, TriangleCountState<Ctx>& s)
{
    const rt::par::Csr csr = rt::par::csrOf(s.g);

    // Phase 1: enumerate triangles from their smallest vertex,
    // capturing one vertex per atomic claim.
    std::uint64_t triangles = 0;
    rt::par::vertexMapCapture(
        ctx, s.cursor, s.g.numVertices(), [&](std::uint64_t ai) {
            const auto a = static_cast<graph::VertexId>(ai);
            trackAdd(s.tracker, 1);
            const graph::EdgeId beg = ctx.read(csr.offsets[a]);
            const graph::EdgeId end = ctx.read(csr.offsets[a + 1]);
            for (graph::EdgeId e1 = beg; e1 < end; ++e1) {
                const graph::VertexId b = ctx.read(csr.neighbors[e1]);
                if (b <= a) {
                    continue;
                }
                for (graph::EdgeId e2 = e1 + 1; e2 < end; ++e2) {
                    const graph::VertexId c = ctx.read(csr.neighbors[e2]);
                    ctx.work(1);
                    if (c <= b) {
                        continue;
                    }
                    if (triangleHasEdge(ctx, csr.offsets, csr.neighbors,
                                        b, c)) {
                        ++triangles;
                        for (graph::VertexId corner : {a, b, c}) {
                            ScopedLock<Ctx> guard(ctx,
                                                  s.locks.of(corner));
                            ctx.write(s.per_vertex[corner],
                                      ctx.read(s.per_vertex[corner]) + 1);
                        }
                    }
                }
            }
            trackAdd(s.tracker, -1);
        });
    obs::counterAdd(ctx, obs::Counter::kTriangles, triangles);
    ctx.barrier();

    // Phase 2: fold per-vertex counts into the global total. Each
    // triangle touches three vertices, so the fold divides by 3. The
    // per-thread partial sums combine through a tree reduction
    // (deterministic combine order, no shared-counter RMW race).
    std::uint64_t local = 0;
    rt::par::vertexMap(ctx, s.g.numVertices(), [&](std::uint64_t v) {
        local += ctx.read(s.per_vertex[v]);
        ctx.work(1);
    });
    const std::uint64_t folded = rt::par::reduce(
        ctx, s.totals, local,
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
    if (ctx.tid() == 0) {
        ctx.write(s.total.value, folded);
    }
}

/** Count all triangles in @p g exactly. */
template <class Exec>
TriangleCountResult
triangleCount(Exec& exec, int nthreads, const graph::Graph& g,
              rt::ActiveTracker* tracker = nullptr)
{
    using Ctx = typename Exec::Ctx;
    obs::ScopedHostSpan kernel_span("TRI_CNT", g.numVertices());
    TriangleCountState<Ctx> state(g, nthreads, tracker);
    rt::RunInfo info = exec.parallel(
        nthreads, [&state](Ctx& ctx) { triangleCountKernel(ctx, state); });
    return TriangleCountResult{state.total.value / 3,
                               std::move(state.per_vertex),
                               std::move(info)};
}

} // namespace crono::core

#endif // CRONO_CORE_TRIANGLE_COUNT_H_

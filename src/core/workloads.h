/**
 * @file
 * Owning workload bundles: Table III's input catalog, scaled.
 *
 * A WorkloadSet owns one CSR graph (for the eight list-based kernels),
 * one adjacency matrix (APSP / BETW_CENT) and one city matrix (TSP),
 * and hands out per-benchmark Workload views. GraphKind selects the
 * paper's input families (synthetic sparse, road network, social
 * network).
 */

#ifndef CRONO_CORE_WORKLOADS_H_
#define CRONO_CORE_WORKLOADS_H_

#include <memory>
#include <string>

#include "core/suite.h"
#include "graph/generators.h"
#include "graph/reorder.h"

namespace crono::core {

/** Input family, mirroring Table III. */
enum class GraphKind {
    sparse, ///< GTgraph-style uniform random
    road,   ///< perturbed lattice (SNAP road-network stand-in)
    social, ///< R-MAT power law (Facebook stand-in)
};

/** Printable name of a GraphKind. */
const char* graphKindName(GraphKind kind);

/** Sizing knobs for a WorkloadSet. */
struct WorkloadConfig {
    GraphKind kind = GraphKind::sparse;
    graph::VertexId graph_vertices = 16384;
    graph::EdgeId edges_per_vertex = 16; ///< sparse/social edge factor
    graph::VertexId matrix_vertices = 96;
    graph::VertexId tsp_cities = 10;
    graph::VertexId mcs_pattern_vertices = 8;
    graph::VertexId mcs_target_vertices = 10;
    std::uint32_t mcs_labels = 3;
    unsigned pr_iterations = 5;
    unsigned comm_rounds = 8;
    std::uint64_t seed = 42;
    /**
     * Vertex relabeling applied to the CSR graph (the dense matrix
     * inputs keep their layout — their traversals are row-major
     * already). forBenchmark() maps `source` into the relabeled space,
     * and permutation() maps per-vertex results back.
     */
    graph::Reordering reordering = graph::Reordering::kNone;
    /** Attach the cache-blocked pull layout to the CSR graph. */
    bool blocked_layout = false;
};

/** Owns the inputs for one configuration of the full suite. */
class WorkloadSet {
  public:
    explicit WorkloadSet(const WorkloadConfig& cfg);

    /** Workload view appropriate for benchmark @p id. */
    Workload forBenchmark(BenchmarkId id) const;

    const graph::Graph& graph() const { return graph_; }
    const graph::AdjacencyMatrix& matrix() const { return matrix_; }
    const graph::AdjacencyMatrix& cities() const { return cities_; }
    const graph::LabeledMatrix& mcsPattern() const { return mcs_pattern_; }
    const graph::LabeledMatrix& mcsTarget() const { return mcs_target_; }
    const WorkloadConfig& config() const { return cfg_; }

    /**
     * The relabeling applied to graph() (identity for kNone): new ids
     * are what kernels see, toOld()/valuesToOld() recover original
     * ids from their results.
     */
    const graph::VertexPermutation& permutation() const { return perm_; }

  private:
    WorkloadSet(const WorkloadConfig& cfg, graph::ReorderedGraph rg);

    WorkloadConfig cfg_;
    graph::Graph graph_;
    graph::VertexPermutation perm_;
    graph::AdjacencyMatrix matrix_;
    graph::AdjacencyMatrix cities_;
    graph::LabeledMatrix mcs_pattern_;
    graph::LabeledMatrix mcs_target_;
};

/** Build the CSR graph of @p kind at the requested size. */
graph::Graph makeGraph(GraphKind kind, graph::VertexId vertices,
                       graph::EdgeId edges_per_vertex, std::uint64_t seed);

/**
 * Default ordering for one benchmark on one input family: RCM for the
 * mesh-like road networks, hub-packing (plain degree sort for the
 * gather-friendly PageRank) on power-law social graphs, and identity
 * where relabeling has nothing to exploit (uniform random inputs and
 * the dense-matrix kernels).
 */
graph::Reordering recommendedReordering(BenchmarkId id, GraphKind kind);

} // namespace crono::core

#endif // CRONO_CORE_WORKLOADS_H_

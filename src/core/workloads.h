/**
 * @file
 * Owning workload bundles: Table III's input catalog, scaled.
 *
 * A WorkloadSet owns one CSR graph (for the eight list-based kernels),
 * one adjacency matrix (APSP / BETW_CENT) and one city matrix (TSP),
 * and hands out per-benchmark Workload views. GraphKind selects the
 * paper's input families (synthetic sparse, road network, social
 * network).
 */

#ifndef CRONO_CORE_WORKLOADS_H_
#define CRONO_CORE_WORKLOADS_H_

#include <memory>
#include <string>

#include "core/suite.h"
#include "graph/generators.h"

namespace crono::core {

/** Input family, mirroring Table III. */
enum class GraphKind {
    sparse, ///< GTgraph-style uniform random
    road,   ///< perturbed lattice (SNAP road-network stand-in)
    social, ///< R-MAT power law (Facebook stand-in)
};

/** Printable name of a GraphKind. */
const char* graphKindName(GraphKind kind);

/** Sizing knobs for a WorkloadSet. */
struct WorkloadConfig {
    GraphKind kind = GraphKind::sparse;
    graph::VertexId graph_vertices = 16384;
    graph::EdgeId edges_per_vertex = 16; ///< sparse/social edge factor
    graph::VertexId matrix_vertices = 96;
    graph::VertexId tsp_cities = 10;
    unsigned pr_iterations = 5;
    unsigned comm_rounds = 8;
    std::uint64_t seed = 42;
};

/** Owns the inputs for one configuration of the full suite. */
class WorkloadSet {
  public:
    explicit WorkloadSet(const WorkloadConfig& cfg);

    /** Workload view appropriate for benchmark @p id. */
    Workload forBenchmark(BenchmarkId id) const;

    const graph::Graph& graph() const { return graph_; }
    const graph::AdjacencyMatrix& matrix() const { return matrix_; }
    const graph::AdjacencyMatrix& cities() const { return cities_; }
    const WorkloadConfig& config() const { return cfg_; }

  private:
    WorkloadConfig cfg_;
    graph::Graph graph_;
    graph::AdjacencyMatrix matrix_;
    graph::AdjacencyMatrix cities_;
};

/** Build the CSR graph of @p kind at the requested size. */
graph::Graph makeGraph(GraphKind kind, graph::VertexId vertices,
                       graph::EdgeId edges_per_vertex, std::uint64_t seed);

} // namespace crono::core

#endif // CRONO_CORE_WORKLOADS_H_

/**
 * @file
 * PageRank (Section III-9), exact per-iteration version of Equation 1:
 *
 *   PR_{t+1}(i) = r + (1 - r) * sum_j PR_t(j) / degree(j)
 *
 * over neighbors j of i (r = probability of a random page visit).
 *
 * Two phase structures:
 *
 *  - kScatter (the paper's; Table I: Vertex Capture & Graph
 *    Division): in the scatter phase threads dynamically *capture*
 *    vertices from a shared atomic cursor (par::vertexMapCapture) and
 *    push each captured vertex's contribution to its neighbors'
 *    accumulators under per-vertex atomic locks ("threads may
 *    converge on common neighbors from their given vertices"); the
 *    update phase is statically divided. The capture counter's cache
 *    line ping-pongs between all threads — the fine-grain
 *    communication the paper attributes PageRank's weak scaling to.
 *  - kGather (pull): each iteration freezes every vertex's share
 *    PR(v)/degree(v), then every destination gathers the sum over its
 *    own neighbors (par::edgeMapPullAllGuided — guided scheduling
 *    absorbs the degree skew) and applies Equation 1 in place. No
 *    accumulator locks, no write contention at all: the gather's only
 *    writes are owner-exclusive, and the result is deterministic
 *    (fixed CSR summation order) where scatter's lock-ordered
 *    floating-point adds are not.
 *
 * Iterations are separated by barriers in both modes.
 */

#ifndef CRONO_CORE_PAGERANK_H_
#define CRONO_CORE_PAGERANK_H_

#include <utility>

#include "core/context.h"
#include "graph/graph.h"
#include "obs/telemetry.h"
#include "runtime/executor.h"
#include "runtime/par.h"
#include "runtime/strategies.h"

namespace crono::core {

/** Phase structure of one PageRank run (see file header). */
enum class PageRankMode : int {
    kScatter = 0, ///< paper's capture + push-to-accumulators structure
    kGather = 1,  ///< pull: destinations sum frozen neighbor shares
};

/** Printable mode name ("scatter" / "gather"). */
inline const char*
pageRankModeName(PageRankMode mode)
{
    return mode == PageRankMode::kGather ? "gather" : "scatter";
}

/** Rank vector after a fixed number of exact iterations. */
struct PageRankResult {
    AlignedVector<double> rank;
    unsigned iterations = 0;
    rt::RunInfo run;
};

template <class Ctx>
struct PageRankState {
    PageRankState(const graph::Graph& graph, unsigned iterations_in,
                  double damping, rt::ActiveTracker* tracker_in)
        : g(graph), rank(graph.numVertices(), 0.0),
          incoming(graph.numVertices(), 0.0),
          locks(graph.numVertices()), iterations(iterations_in),
          r(damping), tracker(tracker_in)
    {
        CRONO_REQUIRE(damping > 0.0 && damping < 1.0,
                      "damping must be in (0, 1)");
    }

    const graph::Graph& g;
    AlignedVector<double> rank;
    /** Scatter accumulators; the frozen shares in kGather. */
    AlignedVector<double> incoming;
    /** Per-iteration capture/guided cursors, indexed by parity. */
    rt::CaptureCounter cursor[2];
    LockStripe<Ctx> locks;
    unsigned iterations;
    double r;
    rt::ActiveTracker* tracker;
};

template <class Ctx>
void
pageRankKernel(Ctx& ctx, PageRankState<Ctx>& s)
{
    const rt::par::Csr csr = rt::par::csrOf(s.g);
    const graph::VertexId n = s.g.numVertices();

    // Initialize: uniform probability, clean accumulators.
    const double uniform = 1.0 / static_cast<double>(n);
    rt::par::vertexMap(ctx, n, [&](std::uint64_t v) {
        ctx.write(s.rank[v], uniform);
        ctx.write(s.incoming[v], 0.0);
    });
    ctx.barrier();

    obs::Track* const track =
        obs::trackFor(obs::sink(), obs::ctxTrackKind<Ctx>, ctx.tid());

    for (unsigned it = 0; it < s.iterations; ++it) {
        // Scatter phase: capture vertices dynamically and push
        // PR(v)/degree(v) to every neighbor.
        const std::uint64_t scatter_begin =
            track != nullptr ? ctx.timestamp() : 0;
        rt::par::vertexMapCapture(
            ctx, s.cursor[it % 2], n, [&](std::uint64_t vi) {
                const auto v = static_cast<graph::VertexId>(vi);
                trackAdd(s.tracker, 1);
                const graph::EdgeId beg = ctx.read(csr.offsets[v]);
                const graph::EdgeId end = ctx.read(csr.offsets[v + 1]);
                if (beg == end) {
                    return; // isolated page contributes nothing
                }
                const double share = ctx.read(s.rank[v]) /
                                     static_cast<double>(end - beg);
                ctx.work(2);
                for (graph::EdgeId e = beg; e < end; ++e) {
                    const graph::VertexId u = ctx.read(csr.neighbors[e]);
                    ScopedLock<Ctx> guard(ctx, s.locks.of(u));
                    ctx.write(s.incoming[u],
                              ctx.read(s.incoming[u]) + share);
                }
            });
        if (track != nullptr) {
            obs::spanRecord(
                track, {scatter_begin, ctx.timestamp(), "scatter",
                        it, obs::SpanCat::kRound});
        }
        ctx.barrier();

        // Update phase (graph division): apply Equation 1 and reset
        // the accumulators. Thread 0 also rearms the next iteration's
        // capture cursor; the trailing barrier orders it before use.
        // The paper's formulation uses the unscaled random-visit term
        // r; we use the probability-conserving r/N variant so ranks
        // remain a distribution (sum = 1 on degree>=1 graphs).
        const std::uint64_t update_begin =
            track != nullptr ? ctx.timestamp() : 0;
        rt::par::vertexMap(ctx, n, [&](std::uint64_t v) {
            const double in = ctx.read(s.incoming[v]);
            ctx.write(s.rank[v], s.r * uniform + (1.0 - s.r) * in);
            ctx.write(s.incoming[v], 0.0);
            ctx.work(3);
            trackAdd(s.tracker, -1);
        });
        if (track != nullptr) {
            obs::spanRecord(
                track, {update_begin, ctx.timestamp(), "update", it,
                        obs::SpanCat::kRound});
            if (ctx.tid() == 0) {
                obs::counterBump(track, obs::Counter::kIterations, 1);
            }
        }
        if (ctx.tid() == 0) {
            ctx.write(s.cursor[(it + 1) % 2].next, std::uint64_t{0});
        }
        ctx.barrier();
    }
}

/**
 * Gather-mode kernel body: freeze shares, then pull them in. Uses
 * `incoming` as the frozen-share array; no locks anywhere.
 */
template <class Ctx>
void
pageRankGatherKernel(Ctx& ctx, PageRankState<Ctx>& s)
{
    const rt::par::Csr csr = rt::par::csrOf(s.g);
    const graph::VertexId n = s.g.numVertices();

    const double uniform = 1.0 / static_cast<double>(n);
    rt::par::vertexMap(ctx, n, [&](std::uint64_t v) {
        ctx.write(s.rank[v], uniform);
        ctx.write(s.incoming[v], 0.0);
    });
    ctx.barrier();

    obs::Track* const track =
        obs::trackFor(obs::sink(), obs::ctxTrackKind<Ctx>, ctx.tid());

    for (unsigned it = 0; it < s.iterations; ++it) {
        // Share phase: freeze PR(v)/degree(v) for this iteration.
        const std::uint64_t share_begin =
            track != nullptr ? ctx.timestamp() : 0;
        rt::par::vertexMap(ctx, n, [&](std::uint64_t v) {
            const graph::EdgeId beg = ctx.read(csr.offsets[v]);
            const graph::EdgeId end = ctx.read(csr.offsets[v + 1]);
            const double share =
                beg == end ? 0.0
                           : ctx.read(s.rank[v]) /
                                 static_cast<double>(end - beg);
            ctx.write(s.incoming[v], share);
            ctx.work(2);
            trackAdd(s.tracker, 1);
        });
        if (track != nullptr) {
            obs::spanRecord(track, {share_begin, ctx.timestamp(),
                                    "share", it, obs::SpanCat::kRound});
        }
        ctx.barrier();

        // Gather phase: every destination sums its neighbors' frozen
        // shares and applies Equation 1 in place — owner-exclusive
        // writes, deterministic CSR summation order. Guided
        // scheduling absorbs degree skew; thread 0 rearms the next
        // iteration's cursor behind the barrier.
        const std::uint64_t gather_begin =
            track != nullptr ? ctx.timestamp() : 0;
        if (csr.blocked != nullptr) {
            // Propagation-blocking path: rank doubles as the
            // accumulator (this iteration's shares are already frozen
            // in `incoming`), summed bin-major so the share-array read
            // window stays cache-sized. Owner-exclusive throughout.
            rt::par::edgeMapGatherBlocked(
                ctx, csr,
                [&](graph::VertexId v) { ctx.write(s.rank[v], 0.0); },
                [&](graph::VertexId v, graph::VertexId u,
                    graph::EdgeId) {
                    ctx.write(s.rank[v], ctx.read(s.rank[v]) +
                                             ctx.read(s.incoming[u]));
                },
                [&](graph::VertexId v) {
                    ctx.write(s.rank[v],
                              s.r * uniform +
                                  (1.0 - s.r) * ctx.read(s.rank[v]));
                    ctx.work(3);
                    trackAdd(s.tracker, -1);
                });
        } else {
            double acc = 0.0;
            rt::par::edgeMapPullAllGuided(
                ctx, csr, s.cursor[it % 2],
                [&](graph::VertexId) {
                    acc = 0.0;
                    return true;
                },
                [&](graph::VertexId, graph::VertexId u, graph::EdgeId) {
                    acc += ctx.read(s.incoming[u]);
                    return false; // full-neighborhood sum
                },
                [&](graph::VertexId v) {
                    ctx.write(s.rank[v],
                              s.r * uniform + (1.0 - s.r) * acc);
                    ctx.work(3);
                    trackAdd(s.tracker, -1);
                });
        }
        if (track != nullptr) {
            obs::spanRecord(
                track, {gather_begin, ctx.timestamp(), "gather", it,
                        obs::SpanCat::kRound});
            if (ctx.tid() == 0) {
                obs::counterBump(track, obs::Counter::kIterations, 1);
            }
        }
        if (ctx.tid() == 0) {
            ctx.write(s.cursor[(it + 1) % 2].next, std::uint64_t{0});
        }
        ctx.barrier();
    }
}

/**
 * Run PageRank for @p iterations exact iterations.
 *
 * @param damping the paper's r (random-visit probability), default 0.15
 * @param mode    kScatter (default) is the paper's structure; kGather
 *                pulls frozen shares destination-side (lock-free,
 *                deterministic)
 */
template <class Exec>
PageRankResult
pageRank(Exec& exec, int nthreads, const graph::Graph& g,
         unsigned iterations = 10, double damping = 0.15,
         rt::ActiveTracker* tracker = nullptr,
         PageRankMode mode = PageRankMode::kScatter)
{
    using Ctx = typename Exec::Ctx;
    obs::ScopedHostSpan kernel_span("PAGE_RANK", g.numVertices());
    PageRankState<Ctx> state(g, iterations, damping, tracker);
    rt::RunInfo info = exec.parallel(nthreads, [&](Ctx& ctx) {
        if (mode == PageRankMode::kGather) {
            pageRankGatherKernel(ctx, state);
        } else {
            pageRankKernel(ctx, state);
        }
    });
    return PageRankResult{std::move(state.rank), iterations,
                          std::move(info)};
}

} // namespace crono::core

#endif // CRONO_CORE_PAGERANK_H_

#include "core/suite.h"

namespace crono::core {

namespace {

constexpr BenchmarkInfo kRegistry[kNumBenchmarks] = {
    {BenchmarkId::ssspDijk, "SSSP_DIJK", "Path Planning",
     "Graph Division"},
    {BenchmarkId::apsp, "APSP", "Path Planning", "Vertex Capture"},
    {BenchmarkId::betwCent, "BETW_CENT", "Path Planning",
     "Vertex Capture & Outer Loop"},
    {BenchmarkId::bfs, "BFS", "Search", "Graph Division"},
    {BenchmarkId::dfs, "DFS", "Search", "Branch and Bound"},
    {BenchmarkId::tsp, "TSP", "Search", "Branch and Bound"},
    {BenchmarkId::connComp, "CONN_COMP", "Graph Processing",
     "Graph Division"},
    {BenchmarkId::triCnt, "TRI_CNT", "Graph Processing",
     "Vertex Capture & Graph Division"},
    {BenchmarkId::pageRank, "PageRank", "Graph Processing",
     "Vertex Capture & Graph Division"},
    {BenchmarkId::comm, "COMM", "Graph Processing",
     "Vertex Capture & Graph Division"},
    {BenchmarkId::mcs, "MCS", "Search", "Branch and Bound"},
};

} // namespace

std::span<const BenchmarkInfo>
allBenchmarks()
{
    return {kRegistry, kNumBenchmarks};
}

const BenchmarkInfo&
benchmarkInfo(BenchmarkId id)
{
    return kRegistry[static_cast<int>(id)];
}

const char*
benchmarkName(BenchmarkId id)
{
    return benchmarkInfo(id).name;
}

} // namespace crono::core

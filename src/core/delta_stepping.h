/**
 * @file
 * Bucketed delta-stepping SSSP (Meyer & Sanders), the GAP Benchmark
 * Suite's reference shortest-path algorithm, as a first-class variant
 * of CRONO's SSSP_DIJK kernel.
 *
 * Where the work-list kernel (sssp.h) *paces* a label-correcting
 * frontier — round r expands only vertices within (r+1)*delta and
 * re-queues the rest, an O(rounds-behind) deferral per far vertex —
 * delta-stepping *places* each relaxed vertex directly into the bucket
 * of its tentative distance: bucket b holds vertices with dist in
 * [b*delta, (b+1)*delta). Placement is O(1) and a vertex is expanded
 * only when its bucket becomes the globally smallest, so the
 * re-expansion factor drops to the in-bucket churn alone. The pacing
 * divisor of the work-list kernel (kSsspDeltaDivisor) is one point in
 * this design space: pacing approximates buckets on the round
 * structure; this kernel materializes them.
 *
 * Structure per bucket ("light phase", FrontierEngine-style):
 *  1. rendezvous — every thread publishes the smallest non-empty
 *     bucket of its private bins; after a barrier all threads compute
 *     the same global minimum `curr`;
 *  2. publish — each thread appends its bins[curr] to a shared
 *     frontier array through a fetchAdd cursor (the same chunked
 *     claim-and-fill idiom as rt::FrontierEngine's sparse queues);
 *  3. process — the frontier is block-partitioned; each entry whose
 *     distance still lies in the bucket relaxes its *light* edges
 *     (weight <= delta, may re-enter the current bucket) under the
 *     per-vertex lock stripe and is recorded as settled.
 * When `curr` moves past a bucket, each thread flushes the *heavy*
 * edges (weight > delta) of the vertices it settled there exactly
 * once — heavy relaxations provably land in later buckets, so they
 * are deferred out of the in-bucket churn entirely. The light/heavy
 * CSR split is precomputed host-side at delta.
 *
 * Like every kernel, the body is a template over the ExecutionContext
 * and runs identically on native threads and the simulator; all
 * shared accesses flow through ctx.*, with the two intentionally racy
 * monotone-filter probes declared via readAtomic.
 */

#ifndef CRONO_CORE_DELTA_STEPPING_H_
#define CRONO_CORE_DELTA_STEPPING_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/aligned.h"
#include "core/context.h"
#include "core/sssp.h"
#include "graph/graph.h"
#include "obs/telemetry.h"
#include "runtime/executor.h"

namespace crono::core {

/** Which SSSP algorithm a harness dispatches to. */
enum class SsspAlgo : int {
    kWorkList = 0,  ///< label-correcting frontier kernel (sssp.h)
    kDeltaStep,     ///< bucketed delta-stepping (this file)
};

/** Printable algorithm name, e.g. "delta". */
const char* ssspAlgoName(SsspAlgo algo);

/**
 * Light/heavy CSR split at delta: two degree-offset arrays over the
 * same vertex set, light edges (weight <= delta) separated from heavy
 * (weight > delta). Built host-side once per run.
 */
struct EdgeSplit {
    graph::Dist delta = 0;  ///< the width this split was built at
    AlignedVector<graph::EdgeId> light_offsets;   ///< numVertices + 1
    AlignedVector<graph::EdgeId> heavy_offsets;   ///< numVertices + 1
    AlignedVector<graph::VertexId> light_targets;
    AlignedVector<graph::Weight> light_weights;
    AlignedVector<graph::VertexId> heavy_targets;
    AlignedVector<graph::Weight> heavy_weights;
};

/**
 * Split @p g's edges at @p delta (two counting passes, O(V + E)).
 * The split depends only on (graph, delta), so callers running many
 * sources on one graph — bench_gap's 64 GAP trials — build it once
 * and pass it to deltaSteppingSssp, the same way GAP builds the
 * transpose outside its trial loop.
 */
EdgeSplit splitEdgesAtDelta(const graph::Graph& g, graph::Dist delta);

/**
 * Bucket width heuristic. The width trades in-bucket re-relaxation
 * churn (wide buckets) against bucket-switch overhead and exposed
 * parallelism (narrow buckets), so the sweet spot depends on the
 * thread count:
 *
 *  - at one thread (the GAP baseline-normalized configuration) there
 *    is no parallelism to feed; narrow Dial-like buckets of
 *    ~avg_weight/16 minimize churn and measure fastest across road
 *    and Kronecker inputs;
 *  - with parallel workers a bucket must carry a frontier's worth of
 *    vertices, so the width follows Meyer & Sanders'
 *    Theta(max_weight / degree) guidance: 2 * avg_weight / avg_degree.
 *    Road networks (heavy weights, degree ~2.6) get a wide bucket
 *    near the average weight; power-law graphs a narrow one.
 */
graph::Dist autoDelta(const graph::Graph& g, int nthreads = 1);

/** Sentinel for "no non-empty bucket". */
inline constexpr std::uint64_t kNoBucket = ~std::uint64_t{0};

/** Shared state of one delta-stepping run. */
template <class Ctx>
struct DeltaSsspState {
    DeltaSsspState(const graph::Graph& graph, graph::VertexId source,
                   int nthreads, graph::Dist delta_in,
                   rt::ActiveTracker* tracker_in,
                   const EdgeSplit* split_in = nullptr)
        : g(graph), dist(graph.numVertices(), graph::kInfDist),
          parent(graph.numVertices(), graph::kNoVertex),
          delta(delta_in == 0 ? autoDelta(graph, nthreads) : delta_in),
          owned_split(split_in == nullptr
                          ? splitEdgesAtDelta(graph, delta)
                          : EdgeSplit{}),
          split(split_in == nullptr ? owned_split : *split_in),
          frontier(nthreads == 1
                       ? 0
                       : graph.numEdges() +
                             static_cast<std::size_t>(nthreads) + 1),
          min_bin(static_cast<std::size_t>(nthreads)),
          lanes(static_cast<std::size_t>(nthreads)),
          locks(graph.numVertices()), tracker(tracker_in)
    {
        CRONO_REQUIRE(source < graph.numVertices(), "bad SSSP source");
        CRONO_REQUIRE(split_in == nullptr || split_in->delta == delta,
                      "precomputed split width must match delta");
        dist[source] = 0;
        parent[source] = source;
        lanes[0].value.bins.resize(1);
        lanes[0].value.bins[0].push_back(source);
        trackAdd(tracker, 1);
    }

    /** Owner-private per-thread state (unmodeled, like FrontierEngine
     *  fill cursors): distance-indexed bins plus the settled list of
     *  the bucket currently awaiting its heavy flush. */
    struct Lane {
        std::vector<std::vector<graph::VertexId>> bins;
        std::vector<graph::VertexId> settled;
        /** Bins below this index are known empty (buckets never
         *  repopulate below the global minimum). */
        std::size_t first_maybe = 0;
    };

    const graph::Graph& g;
    AlignedVector<graph::Dist> dist;
    AlignedVector<graph::VertexId> parent;
    graph::Dist delta;
    /** Holds the split when none was passed in; empty otherwise. */
    EdgeSplit owned_split;
    const EdgeSplit& split;
    /** Shared publish buffer; every entry descends from a successful
     *  relaxation, so numEdges is a practical capacity bound (GAP
     *  sizes its frontier identically). Unused (empty) at one thread —
     *  the serial loop processes bins in place. */
    AlignedVector<graph::VertexId> frontier;
    /** Parity-indexed publish cursors: the off-parity cursor is reset
     *  while the on-parity one is in use, so no reset ever races a
     *  claim (same trick as FrontierEngine's parity flag arrays). */
    Padded<std::uint64_t> cursor[2];
    /** Rendezvous slots: thread t's smallest non-empty bucket. */
    std::vector<Padded<std::uint64_t>> min_bin;
    std::vector<Padded<Lane>> lanes;
    Padded<std::uint64_t> rounds;  ///< light phases executed
    LockStripe<Ctx> locks;
    rt::ActiveTracker* tracker;
};

/**
 * Single-thread specialization: with one worker the rendezvous slots,
 * publish cursors, shared frontier and per-vertex locks are pure
 * overhead, so the kernel degenerates to the textbook serial
 * delta-stepping loop — drain bucket `curr` in place (in-bucket
 * re-insertions just extend the drain), then flush the heavy edges of
 * the settled set once. This is the configuration GAP's
 * baseline-normalized speedups are measured in, so the serial path
 * carries no parallelization tax.
 */
template <class Ctx>
void
deltaSteppingSerial(Ctx& ctx, DeltaSsspState<Ctx>& s)
{
    typename DeltaSsspState<Ctx>::Lane& lane = s.lanes[0].value;
    const graph::Dist delta = s.delta;
    const EdgeSplit& split = s.split;

    obs::Track* const track =
        obs::trackFor(obs::sink(), obs::ctxTrackKind<Ctx>, ctx.tid());
    std::uint64_t relaxations = 0;
    std::uint64_t expansions = 0;
    std::uint64_t heavy_tried = 0;
    std::uint64_t stale = 0;
    std::uint64_t steps = 0;

    const auto relax = [&](graph::VertexId u, graph::Dist du,
                           graph::VertexId v, graph::Weight w) {
        const graph::Dist cand = du + w;
        ctx.work(2); // index arithmetic + compare
        if (cand < ctx.read(s.dist[v])) {
            ctx.write(s.dist[v], cand);
            ctx.write(s.parent[v], u);
            ++relaxations;
            const std::uint64_t b = cand / delta;
            if (b >= lane.bins.size()) {
                lane.bins.resize(b + 1);
            }
            lane.bins[b].push_back(v);
            if (b < lane.first_maybe) {
                lane.first_maybe = b;
            }
            trackAdd(s.tracker, 1);
        }
    };

    std::vector<graph::VertexId> work;
    for (;;) {
        std::uint64_t curr = kNoBucket;
        for (std::size_t b = lane.first_maybe; b < lane.bins.size();
             ++b) {
            if (!lane.bins[b].empty()) {
                curr = b;
                break;
            }
        }
        lane.first_maybe = curr == kNoBucket ? lane.bins.size() : curr;
        if (curr == kNoBucket) {
            break;
        }

        const graph::Dist lo = static_cast<graph::Dist>(curr) * delta;
        lane.settled.clear();
        while (curr < lane.bins.size() && !lane.bins[curr].empty()) {
            work.swap(lane.bins[curr]);
            for (const graph::VertexId u : work) {
                trackAdd(s.tracker, -1);
                ctx.work(1); // bucket-range filter
                const graph::Dist du = ctx.read(s.dist[u]);
                if (du < lo) {
                    ++stale; // superseded by a copy in an earlier bucket
                    continue;
                }
                ++expansions;
                const graph::EdgeId light_end =
                    split.light_offsets[static_cast<std::size_t>(u) + 1];
                for (graph::EdgeId e = split.light_offsets[u];
                     e < light_end; ++e) {
                    relax(u, du, ctx.read(split.light_targets[e]),
                          ctx.read(split.light_weights[e]));
                }
                lane.settled.push_back(u);
            }
            work.clear();
        }
        for (const graph::VertexId u : lane.settled) {
            const graph::Dist du = ctx.read(s.dist[u]);
            const graph::EdgeId end =
                split.heavy_offsets[static_cast<std::size_t>(u) + 1];
            for (graph::EdgeId e = split.heavy_offsets[u]; e < end; ++e) {
                ++heavy_tried;
                relax(u, du, ctx.read(split.heavy_targets[e]),
                      ctx.read(split.heavy_weights[e]));
            }
        }
        lane.settled.clear();
        ++steps;
    }

    ctx.write(s.rounds.value, steps);
    if (track != nullptr) {
        obs::counterBump(track, obs::Counter::kRelaxations, relaxations);
        obs::counterBump(track, obs::Counter::kExpansions, expansions);
        obs::counterBump(track, obs::Counter::kActivations, relaxations);
        obs::counterBump(track, obs::Counter::kHeavyRelaxations,
                         heavy_tried);
        obs::counterBump(track, obs::Counter::kStaleSkips, stale);
        obs::counterBump(track, obs::Counter::kBucketSteps, steps);
    }
}

/** Kernel body; all threads execute this with the shared state. */
template <class Ctx>
void
deltaSteppingKernel(Ctx& ctx, DeltaSsspState<Ctx>& s)
{
    if (ctx.nthreads() == 1) {
        deltaSteppingSerial(ctx, s);
        // crono-lint: allow(barrier-divergence): uniform early-out — nthreads() is the same on every thread, and with one thread there is no peer to desynchronize from
        return;
    }
    const int tid = ctx.tid();
    const int nthreads = ctx.nthreads();
    typename DeltaSsspState<Ctx>::Lane& lane = s.lanes[tid].value;
    const graph::Dist delta = s.delta;
    const EdgeSplit& split = s.split;

    obs::Track* const track =
        obs::trackFor(obs::sink(), obs::ctxTrackKind<Ctx>, ctx.tid());
    std::uint64_t relaxations = 0;
    std::uint64_t expansions = 0;
    std::uint64_t activations = 0;
    std::uint64_t heavy_tried = 0;
    std::uint64_t stale = 0;
    std::uint64_t steps = 0;

    const auto myMinBin = [&lane]() -> std::uint64_t {
        for (std::size_t b = lane.first_maybe; b < lane.bins.size(); ++b) {
            if (!lane.bins[b].empty()) {
                lane.first_maybe = b;
                return b;
            }
        }
        lane.first_maybe = lane.bins.size();
        return kNoBucket;
    };

    const auto relax = [&](graph::VertexId u, graph::Dist du,
                           graph::VertexId v, graph::Weight w) {
        const graph::Dist cand = du + w;
        ctx.work(2); // index arithmetic + compare
        // Declared-racy probe: unlocked monotone filter before taking
        // v's lock. dist[v] only decreases, so a stale value admits at
        // worst a wasted acquisition; the locked compare decides.
        if (cand >= ctx.readAtomic(s.dist[v])) {
            return;
        }
        bool won = false;
        {
            ScopedLock<Ctx> guard(ctx, s.locks.of(v));
            if (cand < ctx.read(s.dist[v])) {
                ctx.write(s.dist[v], cand);
                ctx.write(s.parent[v], u);
                won = true;
            }
        }
        if (won) {
            ++relaxations;
            // O(1) bucket placement into the *owner's* private bins —
            // the winning relaxer adopts v for the target bucket
            // (owner-private, so it happens outside the lock).
            const std::uint64_t b = cand / delta;
            if (b >= lane.bins.size()) {
                lane.bins.resize(b + 1);
            }
            lane.bins[b].push_back(v);
            if (b < lane.first_maybe) {
                lane.first_maybe = b;
            }
            ++activations;
            trackAdd(s.tracker, 1);
        }
    };

    std::uint64_t heavy_bucket = kNoBucket;
    for (;;) {
        // Rendezvous: agree on the globally smallest non-empty bucket.
        ctx.write(s.min_bin[tid].value, myMinBin());
        ctx.barrier();
        std::uint64_t curr = kNoBucket;
        for (int t = 0; t < nthreads; ++t) {
            curr = std::min(curr, ctx.read(s.min_bin[t].value));
        }

        if (heavy_bucket != kNoBucket && curr != heavy_bucket) {
            // Bucket heavy_bucket has drained for good (no bucket ever
            // repopulates below the global minimum): flush the heavy
            // edges of the vertices this thread settled there. Every
            // heavy candidate exceeds (heavy_bucket+1)*delta, so the
            // settled distances are final and these relaxations land
            // strictly in later buckets.
            for (const graph::VertexId u : lane.settled) {
                const graph::Dist du = ctx.read(s.dist[u]);
                const graph::EdgeId end =
                    split.heavy_offsets[static_cast<std::size_t>(u) + 1];
                for (graph::EdgeId e = split.heavy_offsets[u]; e < end;
                     ++e) {
                    ++heavy_tried;
                    relax(u, du, ctx.read(split.heavy_targets[e]),
                          ctx.read(split.heavy_weights[e]));
                }
            }
            lane.settled.clear();
            heavy_bucket = kNoBucket;
            // crono-lint: allow(barrier-divergence): uniform branch — curr is the post-barrier global bucket minimum and heavy_bucket mirrors the previously agreed bucket, so every thread takes this path together
            ctx.barrier(); // quiesce heavy relaxations; free the slots
            continue;      // heavy pushes may have opened nearer buckets
        }
        if (curr == kNoBucket) {
            break;
        }

        // ---- light phase over bucket curr ----
        const std::size_t parity = static_cast<std::size_t>(steps & 1);
        if (curr < lane.bins.size() && !lane.bins[curr].empty()) {
            std::vector<graph::VertexId>& bin = lane.bins[curr];
            const std::uint64_t base = ctx.fetchAdd(
                s.cursor[parity].value,
                static_cast<std::uint64_t>(bin.size()));
            CRONO_ASSERT(base + bin.size() <= s.frontier.size(),
                         "delta-stepping frontier overflow");
            for (std::size_t i = 0; i < bin.size(); ++i) {
                ctx.write(s.frontier[base + i], bin[i]);
            }
            bin.clear();
        }
        ctx.barrier();

        const std::uint64_t n = ctx.read(s.cursor[parity].value);
        const std::uint64_t begin =
            n * static_cast<std::uint64_t>(tid) /
            static_cast<std::uint64_t>(nthreads);
        const std::uint64_t end =
            n * (static_cast<std::uint64_t>(tid) + 1) /
            static_cast<std::uint64_t>(nthreads);
        const graph::Dist lo = static_cast<graph::Dist>(curr) * delta;
        for (std::uint64_t i = begin; i < end; ++i) {
            const graph::VertexId u = ctx.read(s.frontier[i]);
            trackAdd(s.tracker, -1);
            ctx.work(1); // bucket-range filter
            // Declared-racy probe: a concurrent in-bucket relaxation
            // may still improve dist[u]. A stale (larger) value within
            // the bucket only re-relaxes light edges that the fresher
            // copy redoes; a value below the bucket means this entry
            // was superseded by a copy in an earlier bucket, already
            // expanded there.
            const graph::Dist du = ctx.readAtomic(s.dist[u]);
            if (du < lo) {
                ++stale;
                continue;
            }
            ++expansions;
            const graph::EdgeId light_end =
                split.light_offsets[static_cast<std::size_t>(u) + 1];
            for (graph::EdgeId e = split.light_offsets[u]; e < light_end;
                 ++e) {
                relax(u, du, ctx.read(split.light_targets[e]),
                      ctx.read(split.light_weights[e]));
            }
            lane.settled.push_back(u);
        }
        if (tid == 0) {
            // The off-parity cursor quiesced at the previous light
            // phase's closing barrier; reset it here for reuse two
            // phases from now.
            ctx.write(s.cursor[parity ^ 1].value, std::uint64_t{0});
        }
        heavy_bucket = curr;
        ++steps;
        ctx.barrier();
    }

    if (tid == 0) {
        ctx.write(s.rounds.value, steps);
    }
    if (track != nullptr) {
        obs::counterBump(track, obs::Counter::kRelaxations, relaxations);
        obs::counterBump(track, obs::Counter::kExpansions, expansions);
        obs::counterBump(track, obs::Counter::kActivations, activations);
        obs::counterBump(track, obs::Counter::kHeavyRelaxations,
                         heavy_tried);
        obs::counterBump(track, obs::Counter::kStaleSkips, stale);
        obs::counterBump(track, obs::Counter::kBucketSteps, steps);
    }
}

/**
 * Run delta-stepping SSSP on @p exec with @p nthreads threads.
 *
 * @param tracker optional active-vertices instrumentation (Figure 2)
 * @param delta   bucket width; 0 (default) picks autoDelta(g). delta=1
 *                degenerates toward Dijkstra order (every edge heavy);
 *                a delta above the weight range degenerates toward
 *                Bellman-Ford (one bucket, every edge light).
 * @param split   optional precomputed light/heavy split (must have
 *                been built at the effective delta); callers running
 *                many sources on one graph build it once. nullptr
 *                builds it inside this call.
 */
template <class Exec>
SsspResult
deltaSteppingSssp(Exec& exec, int nthreads, const graph::Graph& g,
                  graph::VertexId source,
                  rt::ActiveTracker* tracker = nullptr,
                  graph::Dist delta = 0,
                  const EdgeSplit* split = nullptr)
{
    using Ctx = typename Exec::Ctx;
    obs::ScopedHostSpan kernel_span("SSSP_DELTA", g.numVertices());
    DeltaSsspState<Ctx> state(g, source, nthreads, delta, tracker, split);
    rt::RunInfo info = exec.parallel(
        nthreads, [&state](Ctx& ctx) { deltaSteppingKernel(ctx, state); });
    return SsspResult{std::move(state.dist), std::move(state.parent),
                      state.rounds.value, std::move(info)};
}

} // namespace crono::core

#endif // CRONO_CORE_DELTA_STEPPING_H_

/**
 * @file
 * Single Source Shortest Path (SSSP_DIJK), Section III-1 of the paper.
 *
 * Parallelization: graph division over dynamically opened pareto
 * fronts. The algorithm is label-correcting: the current front lives
 * in a rt::FrontierEngine; every round each thread consumes its share
 * of the front through par::edgeMapPush (flag-scan of the static
 * vertex block in the paper's kFlagScan structure, chunked work lists
 * with stealing in kSparse/kAdaptive), relaxes the neighbors of its
 * front vertices (path costs updated under per-vertex locks), and
 * activates improved vertices for the next round. Rounds are
 * separated by barriers; the front swells and then dwindles exactly
 * as Figure 2 shows. (CRONO's released kernels use the flag-scan
 * structure rather than a shared worklist — it has no serializing
 * global queue, only the fine-grain sharing the paper measures — so
 * kFlagScan stays the default for every paper-figure experiment.)
 *
 * SSSP is push-only: a weighted relaxation has no cheap pull
 * formulation (a destination cannot stop at its first in-front
 * neighbor — it would need the *minimum* over all of them, every
 * round), so the kernel never requests pull rounds.
 */

#ifndef CRONO_CORE_SSSP_H_
#define CRONO_CORE_SSSP_H_

#include <algorithm>
#include <utility>

#include "core/context.h"
#include "graph/graph.h"
#include "obs/telemetry.h"
#include "runtime/executor.h"
#include "runtime/frontier.h"
#include "runtime/par.h"

namespace crono::core {

/** Shortest-path tree from one source. */
struct SsspResult {
    AlignedVector<graph::Dist> dist;        ///< kInfDist if unreachable
    AlignedVector<graph::VertexId> parent;  ///< kNoVertex if none
    std::uint64_t rounds = 0;
    rt::RunInfo run;
};

/**
 * Expansion pacing for the work-list SSSP modes: round r only expands
 * front vertices whose tentative distance is within r * delta, where
 * delta = avg_weight / kSsspDeltaDivisor; farther vertices are
 * deferred to the next round (re-queued, O(1)) instead of being
 * expanded from a distance that later relaxations would improve
 * anyway. This is delta-stepping's bucket idea expressed on the
 * round structure: the label-correcting fixpoint (and thus the
 * distances) is unchanged, but expansions happen in near-Dijkstra
 * order, cutting the re-expansion factor from ~5x V to ~1x V on
 * road networks. Half the average weight paces just behind the
 * wavefront (it advances roughly one average edge per hop); larger
 * deltas stop binding, smaller ones add rounds for no extra order.
 * Pacing stays off (delta = 0) in kFlagScan — the paper's structure
 * cannot defer without rescanning, and fidelity is bit-for-bit.
 */
inline constexpr graph::Dist kSsspDeltaDivisor = 2;

/** Shared state of one SSSP run (template over the context type). */
template <class Ctx>
struct SsspState {
    SsspState(const graph::Graph& graph, graph::VertexId source,
              int nthreads, rt::FrontierMode mode,
              rt::ActiveTracker* tracker_in)
        : g(graph), dist(graph.numVertices(), graph::kInfDist),
          parent(graph.numVertices(), graph::kNoVertex),
          frontier(graph.numVertices(), graph.numEdges(), nthreads,
                   mode),
          locks(graph.numVertices()), tracker(tracker_in)
    {
        CRONO_REQUIRE(source < graph.numVertices(), "bad SSSP source");
        dist[source] = 0;
        parent[source] = source;
        frontier.seed(source);
        trackAdd(tracker, 1);
        if (mode != rt::FrontierMode::kFlagScan) {
            // Pace expansions by the average edge weight (host side).
            std::uint64_t total = 0;
            for (const graph::Weight w : graph.rawWeights()) {
                total += w;
            }
            const std::uint64_t edges = graph.rawWeights().size();
            const graph::Dist avg = edges == 0 ? 1 : total / edges;
            delta = std::max<graph::Dist>(avg / kSsspDeltaDivisor, 1);
        }
    }

    const graph::Graph& g;
    AlignedVector<graph::Dist> dist;
    AlignedVector<graph::VertexId> parent;
    rt::FrontierEngine frontier;
    /** Per-round pacing increment; 0 = pacing off (kFlagScan). */
    graph::Dist delta = 0;
    Padded<std::uint64_t> rounds;
    LockStripe<Ctx> locks;
    rt::ActiveTracker* tracker;
};

/** Kernel body; all threads execute this with the shared state. */
template <class Ctx>
void
ssspKernel(Ctx& ctx, SsspState<Ctx>& s)
{
    const rt::par::Csr csr = rt::par::csrOf(s.g);

    // Telemetry locals: plain counters, flushed once at kernel exit.
    // With the sink compiled out they are dead stores the optimizer
    // removes; with a null sink they cost two register increments.
    obs::Track* const track =
        obs::trackFor(obs::sink(), obs::ctxTrackKind<Ctx>, ctx.tid());
    std::uint64_t relaxations = 0;
    std::uint64_t expansions = 0;
    std::uint64_t deferrals = 0;

    std::uint64_t front = s.frontier.initialFrontSize();
    std::uint64_t round = 0;
    graph::Dist du = 0; // captured by pre, read by the edge body
    while (front != 0) {
        const bool dense = s.frontier.denseRound(front);
        // Same value on every thread: pure function of the round.
        const graph::Dist pace =
            s.delta == 0 ? graph::kInfDist : (round + 1) * s.delta;
        rt::par::edgeMapPush(
            ctx, csr, s.frontier, round, dense,
            [&](graph::VertexId u) {
                // Declared-racy probe: a concurrent locked relaxation
                // may improve dist[u] mid-expansion. Monotone filter —
                // a stale (larger) du only produces relaxations that
                // later rounds redo; the locked re-check below keeps
                // dist itself consistent.
                du = ctx.readAtomic(s.dist[u]);
                if (du > pace) {
                    // Too far ahead of the wavefront: expanding now
                    // would almost surely be redone. Push to the next
                    // round (it stays an active front member, so the
                    // tracker count is untouched). The lock serializes
                    // against a concurrent improve-and-activate of u.
                    ScopedLock<Ctx> guard(ctx, s.locks.of(u));
                    s.frontier.activate(ctx, round, u);
                    ++deferrals;
                    return false;
                }
                trackAdd(s.tracker, -1);
                ++expansions;
                return true;
            },
            [&](graph::VertexId u, graph::VertexId v, graph::EdgeId e) {
                const graph::Weight w = ctx.read(csr.weights[e]);
                const graph::Dist cand = du + w;
                ctx.work(2); // index arithmetic + compare
                // Declared-racy probe: unlocked filter before taking
                // v's lock. dist[v] only decreases, so a stale value
                // admits at worst a wasted lock acquisition; the
                // locked compare decides.
                if (cand >= ctx.readAtomic(s.dist[v])) {
                    return;
                }
                ScopedLock<Ctx> guard(ctx, s.locks.of(v));
                if (cand < ctx.read(s.dist[v])) {
                    ctx.write(s.dist[v], cand);
                    ctx.write(s.parent[v], u);
                    ++relaxations;
                    if (s.frontier.activate(ctx, round, v)) {
                        trackAdd(s.tracker, 1);
                    }
                }
            });
        front = s.frontier.advance(ctx, round);
        ++round;
    }
    if (ctx.tid() == 0) {
        ctx.write(s.rounds.value, round);
    }
    if (track != nullptr) {
        obs::counterBump(track, obs::Counter::kExpansions, expansions);
        obs::counterBump(track, obs::Counter::kRelaxations, relaxations);
        obs::counterBump(track, obs::Counter::kDeferrals, deferrals);
    }
}

/**
 * Run SSSP on @p exec with @p nthreads threads.
 *
 * @param tracker optional active-vertices instrumentation (Figure 2)
 * @param mode    frontier representation; kFlagScan (default) is the
 *                paper's structure, kSparse/kAdaptive run on the
 *                rt::FrontierEngine work lists (with pacing)
 */
template <class Exec>
SsspResult
sssp(Exec& exec, int nthreads, const graph::Graph& g,
     graph::VertexId source, rt::ActiveTracker* tracker = nullptr,
     rt::FrontierMode mode = rt::FrontierMode::kFlagScan)
{
    using Ctx = typename Exec::Ctx;
    obs::ScopedHostSpan kernel_span("SSSP_DIJK", g.numVertices());
    SsspState<Ctx> state(g, source, nthreads, mode, tracker);
    rt::RunInfo info = exec.parallel(
        nthreads, [&state](Ctx& ctx) { ssspKernel(ctx, state); });
    if (mode != rt::FrontierMode::kFlagScan) {
        state.frontier.applyRoundStats(info);
    }
    return SsspResult{std::move(state.dist), std::move(state.parent),
                      state.rounds.value, std::move(info)};
}

} // namespace crono::core

#endif // CRONO_CORE_SSSP_H_

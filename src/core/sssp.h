/**
 * @file
 * Single Source Shortest Path (SSSP_DIJK), Section III-1 of the paper.
 *
 * Parallelization: graph division over dynamically opened pareto
 * fronts. The algorithm is label-correcting: per-vertex "active"
 * flags mark the current pareto front; every round each thread scans
 * its static vertex block, relaxes the neighbors of its active
 * vertices (path costs updated under per-vertex locks), and marks
 * improved vertices active for the next round. Rounds are separated
 * by barriers; the front swells and then dwindles exactly as
 * Figure 2 shows. (CRONO's released kernels use this flag-scan
 * structure rather than a shared worklist — it has no serializing
 * global queue, only the fine-grain sharing the paper measures.)
 */

#ifndef CRONO_CORE_SSSP_H_
#define CRONO_CORE_SSSP_H_

#include <utility>

#include "core/context.h"
#include "graph/graph.h"
#include "runtime/executor.h"
#include "runtime/partition.h"

namespace crono::core {

/** Shortest-path tree from one source. */
struct SsspResult {
    AlignedVector<graph::Dist> dist;        ///< kInfDist if unreachable
    AlignedVector<graph::VertexId> parent;  ///< kNoVertex if none
    std::uint64_t rounds = 0;
    rt::RunInfo run;
};

/** Shared state of one SSSP run (template over the context type). */
template <class Ctx>
struct SsspState {
    SsspState(const graph::Graph& graph, graph::VertexId source,
              rt::ActiveTracker* tracker_in)
        : g(graph), dist(graph.numVertices(), graph::kInfDist),
          parent(graph.numVertices(), graph::kNoVertex),
          locks(graph.numVertices()), tracker(tracker_in)
    {
        CRONO_REQUIRE(source < graph.numVertices(), "bad SSSP source");
        active[0].assign(graph.numVertices(), 0);
        active[1].assign(graph.numVertices(), 0);
        dist[source] = 0;
        parent[source] = source;
        active[0][source] = 1;
        enqueued[0].value = 1;
        trackAdd(tracker, 1);
    }

    const graph::Graph& g;
    AlignedVector<graph::Dist> dist;
    AlignedVector<graph::VertexId> parent;
    /** Pareto-front membership flags, indexed by round parity. */
    AlignedVector<std::uint32_t> active[2];
    /** Front sizes, same parity indexing (for termination). */
    Padded<std::uint64_t> enqueued[2];
    Padded<std::uint64_t> rounds;
    LockStripe<Ctx> locks;
    rt::ActiveTracker* tracker;
};

/** Kernel body; all threads execute this with the shared state. */
template <class Ctx>
void
ssspKernel(Ctx& ctx, SsspState<Ctx>& s)
{
    const graph::EdgeId* offsets = s.g.rawOffsets().data();
    const graph::VertexId* neighbors = s.g.rawNeighbors().data();
    const graph::Weight* weights = s.g.rawWeights().data();
    const rt::Range range =
        rt::blockPartition(s.g.numVertices(), ctx.tid(), ctx.nthreads());

    for (std::uint64_t round = 0;; ++round) {
        std::uint32_t* cur = s.active[round % 2].data();
        std::uint32_t* nxt = s.active[(round + 1) % 2].data();
        std::uint64_t local_enqueued = 0;

        for (std::uint64_t vi = range.begin; vi < range.end; ++vi) {
            const auto u = static_cast<graph::VertexId>(vi);
            if (ctx.read(cur[u]) == 0) {
                continue;
            }
            ctx.write(cur[u], 0u);
            trackAdd(s.tracker, -1);
            const graph::Dist du = ctx.read(s.dist[u]);
            const graph::EdgeId beg = ctx.read(offsets[u]);
            const graph::EdgeId end = ctx.read(offsets[u + 1]);
            for (graph::EdgeId e = beg; e < end; ++e) {
                const graph::VertexId v = ctx.read(neighbors[e]);
                const graph::Weight w = ctx.read(weights[e]);
                const graph::Dist cand = du + w;
                ctx.work(2); // index arithmetic + compare
                if (cand >= ctx.read(s.dist[v])) {
                    continue;
                }
                ScopedLock<Ctx> guard(ctx, s.locks.of(v));
                if (cand < ctx.read(s.dist[v])) {
                    ctx.write(s.dist[v], cand);
                    ctx.write(s.parent[v], u);
                    if (ctx.read(nxt[v]) == 0) {
                        ctx.write(nxt[v], 1u);
                        ++local_enqueued;
                        trackAdd(s.tracker, 1);
                    }
                }
            }
        }
        if (local_enqueued > 0) {
            ctx.fetchAdd(s.enqueued[(round + 1) % 2].value,
                         local_enqueued);
        }
        ctx.barrier();
        const std::uint64_t next_front =
            ctx.read(s.enqueued[(round + 1) % 2].value);
        if (ctx.tid() == 0) {
            // Round r+1 accumulates into this parity slot; the reset
            // completes before the second barrier releases anyone.
            ctx.write(s.enqueued[round % 2].value, std::uint64_t{0});
            ctx.write(s.rounds.value, round + 1);
        }
        ctx.barrier();
        if (next_front == 0) {
            break;
        }
    }
}

/**
 * Run SSSP on @p exec with @p nthreads threads.
 *
 * @param tracker optional active-vertices instrumentation (Figure 2)
 */
template <class Exec>
SsspResult
sssp(Exec& exec, int nthreads, const graph::Graph& g,
     graph::VertexId source, rt::ActiveTracker* tracker = nullptr)
{
    using Ctx = typename Exec::Ctx;
    SsspState<Ctx> state(g, source, tracker);
    rt::RunInfo info = exec.parallel(
        nthreads, [&state](Ctx& ctx) { ssspKernel(ctx, state); });
    return SsspResult{std::move(state.dist), std::move(state.parent),
                      state.rounds.value, std::move(info)};
}

} // namespace crono::core

#endif // CRONO_CORE_SSSP_H_

/**
 * @file
 * Single Source Shortest Path (SSSP_DIJK), Section III-1 of the paper.
 *
 * Parallelization: graph division over dynamically opened pareto
 * fronts. The algorithm is label-correcting: per-vertex "active"
 * flags mark the current pareto front; every round each thread scans
 * its static vertex block, relaxes the neighbors of its active
 * vertices (path costs updated under per-vertex locks), and marks
 * improved vertices active for the next round. Rounds are separated
 * by barriers; the front swells and then dwindles exactly as
 * Figure 2 shows. (CRONO's released kernels use this flag-scan
 * structure rather than a shared worklist — it has no serializing
 * global queue, only the fine-grain sharing the paper measures.)
 */

#ifndef CRONO_CORE_SSSP_H_
#define CRONO_CORE_SSSP_H_

#include <algorithm>
#include <utility>

#include "core/context.h"
#include "graph/graph.h"
#include "obs/telemetry.h"
#include "runtime/executor.h"
#include "runtime/frontier.h"
#include "runtime/partition.h"

namespace crono::core {

/** Shortest-path tree from one source. */
struct SsspResult {
    AlignedVector<graph::Dist> dist;        ///< kInfDist if unreachable
    AlignedVector<graph::VertexId> parent;  ///< kNoVertex if none
    std::uint64_t rounds = 0;
    rt::RunInfo run;
};

/** Shared state of one SSSP run (template over the context type). */
template <class Ctx>
struct SsspState {
    SsspState(const graph::Graph& graph, graph::VertexId source,
              rt::ActiveTracker* tracker_in)
        : g(graph), dist(graph.numVertices(), graph::kInfDist),
          parent(graph.numVertices(), graph::kNoVertex),
          locks(graph.numVertices()), tracker(tracker_in)
    {
        CRONO_REQUIRE(source < graph.numVertices(), "bad SSSP source");
        active[0].assign(graph.numVertices(), 0);
        active[1].assign(graph.numVertices(), 0);
        dist[source] = 0;
        parent[source] = source;
        active[0][source] = 1;
        enqueued[0].value = 1;
        trackAdd(tracker, 1);
    }

    const graph::Graph& g;
    AlignedVector<graph::Dist> dist;
    AlignedVector<graph::VertexId> parent;
    /** Pareto-front membership flags, indexed by round parity. */
    AlignedVector<std::uint32_t> active[2];
    /** Front sizes, same parity indexing (for termination). */
    Padded<std::uint64_t> enqueued[2];
    Padded<std::uint64_t> rounds;
    LockStripe<Ctx> locks;
    rt::ActiveTracker* tracker;
};

/** Kernel body; all threads execute this with the shared state. */
template <class Ctx>
void
ssspKernel(Ctx& ctx, SsspState<Ctx>& s)
{
    const graph::EdgeId* offsets = s.g.rawOffsets().data();
    const graph::VertexId* neighbors = s.g.rawNeighbors().data();
    const graph::Weight* weights = s.g.rawWeights().data();
    const rt::Range range =
        rt::blockPartition(s.g.numVertices(), ctx.tid(), ctx.nthreads());

    // Telemetry locals: plain counters, flushed once at kernel exit.
    // With the sink compiled out they are dead stores the optimizer
    // removes; with a null sink they cost two register increments.
    obs::Track* const track =
        obs::trackFor(obs::sink(), obs::ctxTrackKind<Ctx>, ctx.tid());
    std::uint64_t relaxations = 0;
    std::uint64_t expansions = 0;

    for (std::uint64_t round = 0;; ++round) {
        const std::uint64_t round_begin =
            track != nullptr ? ctx.timestamp() : 0;
        std::uint32_t* cur = s.active[round % 2].data();
        std::uint32_t* nxt = s.active[(round + 1) % 2].data();
        std::uint64_t local_enqueued = 0;

        for (std::uint64_t vi = range.begin; vi < range.end; ++vi) {
            const auto u = static_cast<graph::VertexId>(vi);
            if (ctx.read(cur[u]) == 0) {
                continue;
            }
            ctx.write(cur[u], 0u);
            trackAdd(s.tracker, -1);
            ++expansions;
            const graph::Dist du = ctx.read(s.dist[u]);
            const graph::EdgeId beg = ctx.read(offsets[u]);
            const graph::EdgeId end = ctx.read(offsets[u + 1]);
            for (graph::EdgeId e = beg; e < end; ++e) {
                const graph::VertexId v = ctx.read(neighbors[e]);
                const graph::Weight w = ctx.read(weights[e]);
                const graph::Dist cand = du + w;
                ctx.work(2); // index arithmetic + compare
                if (cand >= ctx.read(s.dist[v])) {
                    continue;
                }
                ScopedLock<Ctx> guard(ctx, s.locks.of(v));
                if (cand < ctx.read(s.dist[v])) {
                    ctx.write(s.dist[v], cand);
                    ctx.write(s.parent[v], u);
                    ++relaxations;
                    if (ctx.read(nxt[v]) == 0) {
                        ctx.write(nxt[v], 1u);
                        ++local_enqueued;
                        trackAdd(s.tracker, 1);
                    }
                }
            }
        }
        if (track != nullptr) {
            obs::spanRecord(
                track, {round_begin, ctx.timestamp(), "round-scan",
                        round, obs::SpanCat::kRound});
        }
        if (local_enqueued > 0) {
            ctx.fetchAdd(s.enqueued[(round + 1) % 2].value,
                         local_enqueued);
        }
        ctx.barrier();
        const std::uint64_t next_front =
            ctx.read(s.enqueued[(round + 1) % 2].value);
        if (ctx.tid() == 0) {
            // Round r+1 accumulates into this parity slot; the reset
            // completes before the second barrier releases anyone.
            ctx.write(s.enqueued[round % 2].value, std::uint64_t{0});
            ctx.write(s.rounds.value, round + 1);
        }
        ctx.barrier();
        if (next_front == 0) {
            break;
        }
    }
    if (track != nullptr) {
        obs::counterBump(track, obs::Counter::kExpansions, expansions);
        obs::counterBump(track, obs::Counter::kRelaxations, relaxations);
    }
}

/**
 * SSSP state for the work-list engine path (kSparse / kAdaptive).
 * Same relaxation algorithm as SsspState, but the pareto front lives
 * in a rt::FrontierEngine instead of thread-block flag scans.
 */
/**
 * Expansion pacing for the frontier SSSP path: round r only expands
 * front vertices whose tentative distance is within r * delta, where
 * delta = avg_weight / kSsspDeltaDivisor; farther vertices are
 * deferred to the next round (re-queued, O(1)) instead of being
 * expanded from a distance that later relaxations would improve
 * anyway. This is delta-stepping's bucket idea expressed on the
 * round structure: the label-correcting fixpoint (and thus the
 * distances) is unchanged, but expansions happen in near-Dijkstra
 * order, cutting the re-expansion factor from ~5x V to ~1x V on
 * road networks. Half the average weight paces just behind the
 * wavefront (it advances roughly one average edge per hop); larger
 * deltas stop binding, smaller ones add rounds for no extra order.
 */
inline constexpr graph::Dist kSsspDeltaDivisor = 2;

template <class Ctx>
struct SsspFrontierState {
    SsspFrontierState(const graph::Graph& graph, graph::VertexId source,
                      int nthreads, rt::FrontierMode mode,
                      rt::ActiveTracker* tracker_in)
        : g(graph), dist(graph.numVertices(), graph::kInfDist),
          parent(graph.numVertices(), graph::kNoVertex),
          frontier(graph.numVertices(), graph.numEdges(), nthreads, mode),
          locks(graph.numVertices()), tracker(tracker_in)
    {
        CRONO_REQUIRE(source < graph.numVertices(), "bad SSSP source");
        dist[source] = 0;
        parent[source] = source;
        frontier.seed(source);
        trackAdd(tracker, 1);
        // Pace expansions by the average edge weight (host-side setup).
        std::uint64_t total = 0;
        for (const graph::Weight w : graph.rawWeights()) {
            total += w;
        }
        const std::uint64_t edges = graph.rawWeights().size();
        const graph::Dist avg = edges == 0 ? 1 : total / edges;
        delta = std::max<graph::Dist>(avg / kSsspDeltaDivisor, 1);
    }

    const graph::Graph& g;
    AlignedVector<graph::Dist> dist;
    AlignedVector<graph::VertexId> parent;
    rt::FrontierEngine frontier;
    /** Per-round expansion-distance increment (see kSsspDeltaFactor). */
    graph::Dist delta = 1;
    Padded<std::uint64_t> rounds;
    LockStripe<Ctx> locks;
    rt::ActiveTracker* tracker;
};

/**
 * Frontier-engine SSSP body: identical label-correcting relaxation,
 * but each round only touches the vertices actually on the front
 * (sparse rounds) or the dense bitmap (adaptive heavy rounds), with
 * chunk-granularity work-stealing fixing the load imbalance a sparse
 * front causes under static block partitioning. Front vertices beyond
 * the round's pacing threshold are deferred (re-queued) rather than
 * expanded, so almost every vertex is expanded once, from its final
 * distance — the flag-scan path cannot defer without rescanning, the
 * work lists make it O(1).
 */
template <class Ctx>
void
ssspFrontierKernel(Ctx& ctx, SsspFrontierState<Ctx>& s)
{
    const graph::EdgeId* offsets = s.g.rawOffsets().data();
    const graph::VertexId* neighbors = s.g.rawNeighbors().data();
    const graph::Weight* weights = s.g.rawWeights().data();

    obs::Track* const track =
        obs::trackFor(obs::sink(), obs::ctxTrackKind<Ctx>, ctx.tid());
    std::uint64_t relaxations = 0;
    std::uint64_t expansions = 0;
    std::uint64_t deferrals = 0;

    std::uint64_t front = s.frontier.initialFrontSize();
    std::uint64_t round = 0;
    while (front != 0) {
        const bool dense = s.frontier.denseRound(front);
        // Same value on every thread: pure function of the round.
        const graph::Dist pace = (round + 1) * s.delta;
        s.frontier.processCurrent(
            ctx, round, dense, [&](graph::VertexId u) {
                const graph::Dist du = ctx.read(s.dist[u]);
                if (du > pace) {
                    // Too far ahead of the wavefront: expanding now
                    // would almost surely be redone. Push to the next
                    // round (it stays an active front member, so the
                    // tracker count is untouched). The lock serializes
                    // against a concurrent improve-and-activate of u.
                    ScopedLock<Ctx> guard(ctx, s.locks.of(u));
                    s.frontier.activate(ctx, round, u);
                    ++deferrals;
                    return;
                }
                trackAdd(s.tracker, -1);
                ++expansions;
                const graph::EdgeId beg = ctx.read(offsets[u]);
                const graph::EdgeId end = ctx.read(offsets[u + 1]);
                for (graph::EdgeId e = beg; e < end; ++e) {
                    const graph::VertexId v = ctx.read(neighbors[e]);
                    const graph::Weight w = ctx.read(weights[e]);
                    const graph::Dist cand = du + w;
                    ctx.work(2); // index arithmetic + compare
                    if (cand >= ctx.read(s.dist[v])) {
                        continue;
                    }
                    ScopedLock<Ctx> guard(ctx, s.locks.of(v));
                    if (cand < ctx.read(s.dist[v])) {
                        ctx.write(s.dist[v], cand);
                        ctx.write(s.parent[v], u);
                        ++relaxations;
                        if (s.frontier.activate(ctx, round, v)) {
                            trackAdd(s.tracker, 1);
                        }
                    }
                }
            });
        front = s.frontier.advance(ctx, round);
        ++round;
    }
    if (ctx.tid() == 0) {
        ctx.write(s.rounds.value, round);
    }
    if (track != nullptr) {
        obs::counterBump(track, obs::Counter::kExpansions, expansions);
        obs::counterBump(track, obs::Counter::kRelaxations, relaxations);
        obs::counterBump(track, obs::Counter::kDeferrals, deferrals);
    }
}

/**
 * Run SSSP on @p exec with @p nthreads threads.
 *
 * @param tracker optional active-vertices instrumentation (Figure 2)
 * @param mode    frontier representation; kFlagScan (default) is the
 *                paper's structure, kSparse/kAdaptive run on the
 *                rt::FrontierEngine work lists
 */
template <class Exec>
SsspResult
sssp(Exec& exec, int nthreads, const graph::Graph& g,
     graph::VertexId source, rt::ActiveTracker* tracker = nullptr,
     rt::FrontierMode mode = rt::FrontierMode::kFlagScan)
{
    using Ctx = typename Exec::Ctx;
    obs::ScopedHostSpan kernel_span("SSSP_DIJK", g.numVertices());
    if (mode == rt::FrontierMode::kFlagScan) {
        SsspState<Ctx> state(g, source, tracker);
        rt::RunInfo info = exec.parallel(
            nthreads, [&state](Ctx& ctx) { ssspKernel(ctx, state); });
        return SsspResult{std::move(state.dist), std::move(state.parent),
                          state.rounds.value, std::move(info)};
    }
    SsspFrontierState<Ctx> state(g, source, nthreads, mode, tracker);
    rt::RunInfo info = exec.parallel(
        nthreads, [&state](Ctx& ctx) { ssspFrontierKernel(ctx, state); });
    state.frontier.applyRoundStats(info);
    return SsspResult{std::move(state.dist), std::move(state.parent),
                      state.rounds.value, std::move(info)};
}

} // namespace crono::core

#endif // CRONO_CORE_SSSP_H_

/**
 * @file
 * Community Detection (Section III-10): a parallel, bounded-heuristic
 * Louvain-style modularity optimization.
 *
 * Parallelization (Table I: Vertex Capture & Graph Division): each
 * round, threads capture vertices from a shared atomic cursor
 * (par::vertexMapCapture), computing for each the modularity gain of
 * moving into each neighboring community from racily-read community
 * aggregates (the paper's "bounded heuristic to relax the inherently
 * sequential inter-vertex community dependencies" — staleness trades
 * modularity accuracy for scalability). A move updates the two
 * communities' aggregates under ordered locks. Rounds repeat until no
 * vertex moves or the round bound is hit. This is the single-level
 * refinement; the paper's characterization concerns this dominant
 * phase.
 *
 * The 2m total is combined through par::reducePerThread rather than a
 * shared-double fetch-and-add, so every thread folds the per-thread
 * partial sums in the same (tid) order and derives bit-identical 2m —
 * the one floating-point value every gain computation divides by.
 */

#ifndef CRONO_CORE_COMMUNITY_H_
#define CRONO_CORE_COMMUNITY_H_

#include <utility>
#include <vector>

#include "core/context.h"
#include "graph/graph.h"
#include "obs/telemetry.h"
#include "runtime/executor.h"
#include "runtime/par.h"
#include "runtime/strategies.h"

namespace crono::core {

/** Community assignment plus the achieved modularity. */
struct CommunityResult {
    AlignedVector<graph::VertexId> community;
    double modularity = 0.0;
    std::uint64_t rounds = 0;
    std::uint64_t moves = 0;
    rt::RunInfo run;
};

/** Scratch-arena lane indices of the neighbor-community accumulator. */
inline constexpr int kCommunityCommLane = 0;
inline constexpr int kCommunityWeightLane = 1;

template <class Ctx>
struct CommunityState {
    CommunityState(const graph::Graph& graph, unsigned max_rounds_in,
                   int nthreads, rt::ActiveTracker* tracker_in,
                   const AlignedVector<double>* extra_weight_in = nullptr)
        : g(graph), extraWeight(extra_weight_in),
          community(graph.numVertices(), 0),
          nodeWeight(graph.numVertices(), 0.0),
          commTotal(graph.numVertices(), 0.0),
          locks(graph.numVertices()), scratch(nthreads),
          weightSlots(nthreads), maxRounds(max_rounds_in),
          tracker(tracker_in)
    {
    }

    const graph::Graph& g;
    /** Optional per-vertex internal weight (2x collapsed self loops). */
    const AlignedVector<double>* extraWeight;
    AlignedVector<graph::VertexId> community;
    AlignedVector<double> nodeWeight; ///< sum of incident edge weights
    AlignedVector<double> commTotal;  ///< sum of members' nodeWeight
    /** Round-sweep capture cursors, indexed by round parity. */
    rt::CaptureCounter cursor[2];
    Padded<std::uint64_t> movesByParity[2];
    Padded<std::uint64_t> totalMoves;
    Padded<std::uint64_t> rounds;
    LockStripe<Ctx> locks;
    /** Per-thread neighbor-community accumulators (see lane indices). */
    rt::par::ScratchArena scratch;
    /** Per-thread 2m partial sums (deterministic fold). */
    rt::par::ReduceSlots<double> weightSlots;
    unsigned maxRounds;
    rt::ActiveTracker* tracker;
};

template <class Ctx>
void
communityKernel(Ctx& ctx, CommunityState<Ctx>& s)
{
    const rt::par::Csr csr = rt::par::csrOf(s.g);
    const std::size_t acc_cap = s.g.maxDegree() + 1;
    graph::VertexId* acc_comm = s.scratch.template lane<graph::VertexId>(
        ctx.tid(), kCommunityCommLane, acc_cap);
    double* acc_weight = s.scratch.template lane<double>(
        ctx.tid(), kCommunityWeightLane, acc_cap);

    // Phase 1: singleton communities and weighted-degree aggregates.
    double local_weight = 0.0;
    rt::par::vertexMap(ctx, s.g.numVertices(), [&](std::uint64_t vi) {
        const auto v = static_cast<graph::VertexId>(vi);
        double w_sum = 0.0;
        const graph::EdgeId beg = ctx.read(csr.offsets[v]);
        const graph::EdgeId end = ctx.read(csr.offsets[v + 1]);
        for (graph::EdgeId e = beg; e < end; ++e) {
            w_sum += static_cast<double>(ctx.read(csr.weights[e]));
            ctx.work(1);
        }
        if (s.extraWeight != nullptr) {
            // Collapsed internal edges travel with the vertex: they
            // count in its weighted degree and in 2m, keeping the
            // coarse-level null model honest.
            w_sum += ctx.read((*s.extraWeight)[v]);
        }
        ctx.write(s.community[v], v);
        ctx.write(s.nodeWeight[v], w_sum);
        ctx.write(s.commTotal[v], w_sum);
        local_weight += w_sum;
    });
    const double two_m = rt::par::reducePerThread(
        ctx, s.weightSlots, local_weight,
        [](double a, double b) { return a + b; });
    if (two_m == 0.0) {
        // crono-lint: allow(barrier-divergence): two_m is a reducePerThread result, identical on every thread — the early return is uniform
        return; // edgeless graph: everyone stays a singleton
    }

    // Phase 2: bounded local-move rounds.
    std::uint64_t moves = 0;
    std::int64_t last_active = 0;
    for (std::uint64_t round = 0; round < s.maxRounds; ++round) {
        Padded<std::uint64_t>& counter = s.movesByParity[round % 2];
        std::uint64_t local_moves = 0;
        rt::par::vertexMapCapture(
            ctx, s.cursor[round % 2], s.g.numVertices(),
            [&](std::uint64_t vi) {
                const auto v = static_cast<graph::VertexId>(vi);
                const graph::VertexId cur = ctx.read(s.community[v]);
                const double k_v = ctx.read(s.nodeWeight[v]);
                const graph::EdgeId beg = ctx.read(csr.offsets[v]);
                const graph::EdgeId end = ctx.read(csr.offsets[v + 1]);
                if (beg == end) {
                    return;
                }

                // Gather edge weight toward each neighboring community.
                std::uint32_t ncomms = 0;
                double k_in_cur = 0.0;
                for (graph::EdgeId e = beg; e < end; ++e) {
                    const graph::VertexId u = ctx.read(csr.neighbors[e]);
                    if (u == v) {
                        continue;
                    }
                    const auto w =
                        static_cast<double>(ctx.read(csr.weights[e]));
                    // Declared-racy probe: u's capturer may move u
                    // (locked write) mid-gather. Either community id
                    // is a valid snapshot; a stale one scores a move
                    // the next round re-evaluates and corrects.
                    const graph::VertexId c =
                        ctx.readAtomic(s.community[u]);
                    if (c == cur) {
                        k_in_cur += w;
                        continue;
                    }
                    std::uint32_t slot = 0;
                    while (slot < ncomms &&
                           ctx.read(acc_comm[slot]) != c) {
                        ctx.work(1);
                        ++slot;
                    }
                    if (slot == ncomms) {
                        ctx.write(acc_comm[slot], c);
                        ctx.write(acc_weight[slot], w);
                        ++ncomms;
                    } else {
                        ctx.write(acc_weight[slot],
                                  ctx.read(acc_weight[slot]) + w);
                    }
                }

                // Score of staying (v's own weight removed from cur).
                // Declared-racy probes (here and in the gain loop):
                // concurrent movers adjust commTotal under community
                // locks this scoring pass does not take. Modularity
                // gain is a heuristic on a snapshot — a stale total
                // at worst picks a slightly suboptimal move that a
                // later round re-evaluates; the aggregates themselves
                // stay consistent because every update is locked.
                const double tot_cur =
                    ctx.readAtomic(s.commTotal[cur]) - k_v;
                const double stay = k_in_cur - k_v * tot_cur / two_m;
                double best_gain = stay;
                graph::VertexId best = cur;
                for (std::uint32_t i = 0; i < ncomms; ++i) {
                    const graph::VertexId c = ctx.read(acc_comm[i]);
                    const double k_in = ctx.read(acc_weight[i]);
                    const double gain =
                        k_in -
                        k_v * ctx.readAtomic(s.commTotal[c]) / two_m;
                    ctx.work(3);
                    if (gain > best_gain + 1e-12) {
                        best_gain = gain;
                        best = c;
                    }
                }

                if (best != cur) {
                    // Move v: update both aggregates under ordered
                    // locks.
                    const std::uint64_t i1 = s.locks.indexOf(cur);
                    const std::uint64_t i2 = s.locks.indexOf(best);
                    typename Ctx::Mutex& first =
                        s.locks.of(i1 < i2 ? cur : best);
                    typename Ctx::Mutex& second =
                        s.locks.of(i1 < i2 ? best : cur);
                    ctx.lock(first);
                    if (i1 != i2) {
                        ctx.lock(second);
                    }
                    ctx.write(s.commTotal[cur],
                              ctx.read(s.commTotal[cur]) - k_v);
                    ctx.write(s.commTotal[best],
                              ctx.read(s.commTotal[best]) + k_v);
                    ctx.write(s.community[v], best);
                    if (i1 != i2) {
                        ctx.unlock(second);
                    }
                    ctx.unlock(first);
                    ++local_moves;
                }
            });
        if (local_moves > 0) {
            moves += local_moves;
            ctx.fetchAdd(counter.value, local_moves);
            ctx.fetchAdd(s.totalMoves.value, local_moves);
        }
        ctx.barrier();
        const std::uint64_t total = ctx.read(counter.value);
        if (ctx.tid() == 0) {
            ctx.write(s.movesByParity[(round + 1) % 2].value,
                      std::uint64_t{0});
            ctx.write(s.cursor[(round + 1) % 2].next, std::uint64_t{0});
            ctx.write(s.rounds.value, round + 1);
            trackAdd(s.tracker,
                     static_cast<std::int64_t>(total) - last_active);
            last_active = static_cast<std::int64_t>(total);
        }
        ctx.barrier();
        if (total == 0) {
            break;
        }
    }
    obs::counterAdd(ctx, obs::Counter::kMoves, moves);
}

/** Newman modularity of @p labels over @p g (host-side, for reports). */
double communityModularity(const graph::Graph& g,
                           const AlignedVector<graph::VertexId>& labels);

/**
 * Collapse @p g under @p labels: one coarse vertex per distinct label,
 * parallel inter-community edges summed (host-side; used between
 * levels of the hierarchical algorithm). @p dense_of receives the
 * label -> coarse-vertex mapping.
 */
graph::Graph coarsenByCommunities(
    const graph::Graph& g, const AlignedVector<graph::VertexId>& labels,
    std::vector<graph::VertexId>* dense_of,
    AlignedVector<double>* internal_weight = nullptr);

/** Run bounded-heuristic Louvain community detection. */
template <class Exec>
CommunityResult
communityDetection(Exec& exec, int nthreads, const graph::Graph& g,
                   unsigned max_rounds = 16,
                   rt::ActiveTracker* tracker = nullptr,
                   const AlignedVector<double>* extra_weight = nullptr)
{
    using Ctx = typename Exec::Ctx;
    obs::ScopedHostSpan kernel_span("COMM", g.numVertices());
    CommunityState<Ctx> state(g, max_rounds, nthreads, tracker,
                              extra_weight);
    rt::RunInfo info = exec.parallel(
        nthreads, [&state](Ctx& ctx) { communityKernel(ctx, state); });
    CommunityResult result;
    result.modularity = communityModularity(g, state.community);
    result.community = std::move(state.community);
    result.rounds = state.rounds.value;
    result.moves = state.totalMoves.value;
    result.run = std::move(info);
    return result;
}

/**
 * Full hierarchical Louvain: run local-move levels, collapsing the
 * graph between levels (communities become vertices, parallel edges
 * sum), until a level makes no moves or @p max_levels is reached --
 * the complete structure of the algorithm the paper's COMM kernel is
 * derived from. Final labels are expressed over the original
 * vertices, each community named by its smallest member; modularity
 * is evaluated on the original graph.
 *
 * Collapsed intra-community weight travels with each supernode as an
 * "internal weight" contribution to its weighted degree and to 2m
 * (the Graph type has no self loops), so coarse-level move decisions
 * use the correct null model. The reported modularity is evaluated
 * exactly on the original graph.
 */
template <class Exec>
CommunityResult
communityDetectionHierarchical(Exec& exec, int nthreads,
                               const graph::Graph& g,
                               unsigned max_rounds = 16,
                               unsigned max_levels = 4,
                               rt::ActiveTracker* tracker = nullptr)
{
    CommunityResult level = communityDetection(exec, nthreads, g,
                                               max_rounds, tracker);
    // projection[v]: v's community, as a vertex id of `current`.
    AlignedVector<graph::VertexId> projection = level.community;
    CommunityResult result;
    result.rounds = level.rounds;
    result.moves = level.moves;
    result.run = std::move(level.run);

    graph::Graph current = g; // owned copy collapsed level by level
    AlignedVector<double> extra; // internal weight per coarse vertex
    for (unsigned depth = 1; depth < max_levels && level.moves > 0;
         ++depth) {
        std::vector<graph::VertexId> dense_of;
        AlignedVector<double> internal;
        graph::Graph coarse = coarsenByCommunities(
            current, level.community, &dense_of, &internal);
        if (coarse.numVertices() >= current.numVertices() ||
            coarse.numEdges() == 0) {
            break; // no further collapse possible
        }
        // Collapsed vertices inherit their members' internal weight.
        if (!extra.empty()) {
            for (graph::VertexId v = 0; v < current.numVertices(); ++v) {
                internal[dense_of[level.community[v]]] += extra[v];
            }
        }
        extra = std::move(internal);
        // Re-express the original-vertex projection in coarse ids.
        for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
            projection[v] = dense_of[projection[v]];
        }
        current = std::move(coarse);
        level = communityDetection(exec, nthreads, current, max_rounds,
                                   tracker, &extra);
        for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
            projection[v] = level.community[projection[v]];
        }
        result.rounds += level.rounds;
        result.moves += level.moves;
        result.run.time += level.run.time;
    }

    // Name each final community by its smallest original member.
    AlignedVector<graph::VertexId> representative(g.numVertices(),
                                                  graph::kNoVertex);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        graph::VertexId& rep = representative[projection[v]];
        if (rep == graph::kNoVertex || v < rep) {
            rep = v;
        }
    }
    result.community.resize(g.numVertices());
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        result.community[v] = representative[projection[v]];
    }
    result.modularity = communityModularity(g, result.community);
    return result;
}

} // namespace crono::core

#endif // CRONO_CORE_COMMUNITY_H_

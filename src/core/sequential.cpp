#include "core/sequential.h"

#include <algorithm>
#include <deque>
#include <queue>

#include "common/macros.h"
#include "core/community.h"
#include "graph/builder.h"

#include <unordered_map>

namespace crono::core::seq {

std::vector<graph::Dist>
sssp(const graph::Graph& g, graph::VertexId source)
{
    CRONO_REQUIRE(source < g.numVertices(), "bad source");
    std::vector<graph::Dist> dist(g.numVertices(), graph::kInfDist);
    using Item = std::pair<graph::Dist, graph::VertexId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
    dist[source] = 0;
    pq.push({0, source});
    while (!pq.empty()) {
        const auto [d, u] = pq.top();
        pq.pop();
        if (d != dist[u]) {
            continue; // stale entry
        }
        auto ns = g.neighbors(u);
        auto ws = g.weights(u);
        for (std::size_t i = 0; i < ns.size(); ++i) {
            const graph::Dist cand = d + ws[i];
            if (cand < dist[ns[i]]) {
                dist[ns[i]] = cand;
                pq.push({cand, ns[i]});
            }
        }
    }
    return dist;
}

std::vector<std::uint32_t>
bfsLevels(const graph::Graph& g, graph::VertexId source)
{
    std::vector<std::uint32_t> level(g.numVertices(), ~std::uint32_t{0});
    std::deque<graph::VertexId> queue;
    level[source] = 0;
    queue.push_back(source);
    while (!queue.empty()) {
        const graph::VertexId u = queue.front();
        queue.pop_front();
        for (graph::VertexId v : g.neighbors(u)) {
            if (level[v] == ~std::uint32_t{0}) {
                level[v] = level[u] + 1;
                queue.push_back(v);
            }
        }
    }
    return level;
}

std::uint64_t
reachableCount(const graph::Graph& g, graph::VertexId source)
{
    const auto levels = bfsLevels(g, source);
    return static_cast<std::uint64_t>(std::count_if(
        levels.begin(), levels.end(),
        [](std::uint32_t l) { return l != ~std::uint32_t{0}; }));
}

std::vector<graph::Dist>
apsp(const graph::AdjacencyMatrix& m)
{
    const graph::VertexId n = m.numVertices();
    std::vector<graph::Dist> dist(static_cast<std::size_t>(n) * n,
                                  graph::kInfDist);
    auto at = [&](graph::VertexId i, graph::VertexId j) -> graph::Dist& {
        return dist[static_cast<std::size_t>(i) * n + j];
    };
    for (graph::VertexId i = 0; i < n; ++i) {
        at(i, i) = 0;
        for (graph::VertexId j = 0; j < n; ++j) {
            const graph::Weight w = m.at(i, j);
            if (i != j && w != graph::AdjacencyMatrix::kInfWeight) {
                at(i, j) = std::min<graph::Dist>(at(i, j), w);
            }
        }
    }
    for (graph::VertexId k = 0; k < n; ++k) {
        for (graph::VertexId i = 0; i < n; ++i) {
            if (at(i, k) == graph::kInfDist) {
                continue;
            }
            for (graph::VertexId j = 0; j < n; ++j) {
                if (at(k, j) == graph::kInfDist) {
                    continue;
                }
                at(i, j) = std::min(at(i, j), at(i, k) + at(k, j));
            }
        }
    }
    return dist;
}

std::vector<std::uint64_t>
betweenness(const graph::AdjacencyMatrix& m)
{
    const graph::VertexId n = m.numVertices();
    const auto dist = apsp(m);
    auto at = [&](graph::VertexId i, graph::VertexId j) {
        return dist[static_cast<std::size_t>(i) * n + j];
    };
    std::vector<std::uint64_t> central(n, 0);
    for (graph::VertexId v = 0; v < n; ++v) {
        for (graph::VertexId a = 0; a < n; ++a) {
            if (a == v || at(a, v) == graph::kInfDist) {
                continue;
            }
            for (graph::VertexId b = 0; b < n; ++b) {
                if (b == v || b == a) {
                    continue;
                }
                if (at(a, b) != graph::kInfDist &&
                    at(v, b) != graph::kInfDist &&
                    at(a, v) + at(v, b) == at(a, b)) {
                    ++central[v];
                }
            }
        }
    }
    return central;
}

namespace {

void
tspSearchSeq(const graph::AdjacencyMatrix& m, std::uint32_t visited,
             graph::VertexId cur, std::uint64_t cost, unsigned depth,
             std::uint64_t* best)
{
    const graph::VertexId n = m.numVertices();
    if (cost >= *best) {
        return;
    }
    if (depth == n) {
        *best = std::min(*best, cost + m.at(cur, 0));
        return;
    }
    for (graph::VertexId next = 1; next < n; ++next) {
        if (!(visited & (1u << next))) {
            tspSearchSeq(m, visited | (1u << next), next,
                         cost + m.at(cur, next), depth + 1, best);
        }
    }
}

} // namespace

std::uint64_t
tspCost(const graph::AdjacencyMatrix& cities)
{
    CRONO_REQUIRE(cities.numVertices() >= 2 && cities.numVertices() <= 16,
                  "sequential TSP supports 2..16 cities");
    std::uint64_t best = ~std::uint64_t{0};
    tspSearchSeq(cities, 1u, 0, 0, 1, &best);
    return best;
}

namespace {

bool
mcsAdjacent(const graph::AdjacencyMatrix& m, graph::VertexId a,
            graph::VertexId b)
{
    return m.at(a, b) != graph::AdjacencyMatrix::kInfWeight;
}

void
mcsSearchSeq(const graph::LabeledMatrix& p, const graph::LabeledMatrix& t,
             graph::VertexId v, std::uint32_t used,
             std::vector<std::pair<graph::VertexId, graph::VertexId>>& m,
             std::uint64_t* best)
{
    if (v == p.adj.numVertices()) {
        *best = std::max(*best, static_cast<std::uint64_t>(m.size()));
        return;
    }
    // Skip v entirely...
    mcsSearchSeq(p, t, v + 1, used, m, best);
    // ...or map it to every unused, label-equal, induced-consistent w.
    for (graph::VertexId w = 0; w < t.adj.numVertices(); ++w) {
        if ((used & (1u << w)) || p.labels[v] != t.labels[w]) {
            continue;
        }
        bool consistent = true;
        for (const auto& [pv, tw] : m) {
            if (mcsAdjacent(p.adj, v, pv) != mcsAdjacent(t.adj, w, tw)) {
                consistent = false;
                break;
            }
        }
        if (!consistent) {
            continue;
        }
        m.emplace_back(v, w);
        mcsSearchSeq(p, t, v + 1, used | (1u << w), m, best);
        m.pop_back();
    }
}

} // namespace

std::uint64_t
mcsSize(const graph::LabeledMatrix& pattern,
        const graph::LabeledMatrix& target)
{
    CRONO_REQUIRE(pattern.adj.numVertices() <= 16 &&
                      target.adj.numVertices() <= 16,
                  "sequential MCS supports up to 16 vertices per side");
    std::uint64_t best = 0;
    std::vector<std::pair<graph::VertexId, graph::VertexId>> mapping;
    mcsSearchSeq(pattern, target, 0, 0, mapping, &best);
    return best;
}

std::vector<graph::VertexId>
componentLabels(const graph::Graph& g)
{
    const graph::VertexId n = g.numVertices();
    std::vector<graph::VertexId> label(n, graph::kNoVertex);
    std::vector<graph::VertexId> stack;
    for (graph::VertexId v = 0; v < n; ++v) {
        if (label[v] != graph::kNoVertex) {
            continue;
        }
        // v is the smallest unvisited id, hence its component's min.
        label[v] = v;
        stack.push_back(v);
        while (!stack.empty()) {
            const graph::VertexId u = stack.back();
            stack.pop_back();
            for (graph::VertexId w : g.neighbors(u)) {
                if (label[w] == graph::kNoVertex) {
                    label[w] = v;
                    stack.push_back(w);
                }
            }
        }
    }
    return label;
}

std::uint64_t
triangleCount(const graph::Graph& g)
{
    std::uint64_t total = 0;
    for (graph::VertexId a = 0; a < g.numVertices(); ++a) {
        auto ns = g.neighbors(a);
        for (std::size_t i = 0; i < ns.size(); ++i) {
            if (ns[i] <= a) {
                continue;
            }
            for (std::size_t j = i + 1; j < ns.size(); ++j) {
                if (ns[j] > ns[i] && g.hasEdge(ns[i], ns[j])) {
                    ++total;
                }
            }
        }
    }
    return total;
}

std::vector<graph::VertexId>
dfsOrder(const graph::Graph& g, graph::VertexId source)
{
    CRONO_REQUIRE(source < g.numVertices(), "bad source");
    std::vector<graph::VertexId> order;
    std::vector<bool> visited(g.numVertices(), false);
    std::vector<graph::VertexId> stack;
    stack.push_back(source);
    visited[source] = true;
    while (!stack.empty()) {
        const graph::VertexId u = stack.back();
        stack.pop_back();
        order.push_back(u);
        for (const graph::VertexId v : g.neighbors(u)) {
            if (!visited[v]) {
                visited[v] = true;
                stack.push_back(v);
            }
        }
    }
    return order;
}

std::vector<graph::VertexId>
communityLabels(const graph::Graph& g, unsigned rounds)
{
    std::vector<graph::VertexId> label(g.numVertices());
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        label[v] = v;
    }
    for (unsigned r = 0; r < rounds; ++r) {
        bool changed = false;
        for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
            graph::VertexId best = label[v];
            for (const graph::VertexId u : g.neighbors(v)) {
                best = std::min(best, label[u]);
            }
            if (best != label[v]) {
                label[v] = best;
                changed = true;
            }
        }
        if (!changed) {
            break;
        }
    }
    return label;
}

std::uint64_t
triangleCountFast(const graph::Graph& g)
{
    // For each edge (a, b) with a < b, count common neighbors c with
    // c > b by merging the two sorted adjacency suffixes; every
    // triangle a < b < c is found exactly once, at its smallest edge.
    std::uint64_t total = 0;
    for (graph::VertexId a = 0; a < g.numVertices(); ++a) {
        const auto na = g.neighbors(a);
        for (const graph::VertexId b : na) {
            if (b <= a) {
                continue;
            }
            const auto nb = g.neighbors(b);
            auto ia = std::upper_bound(na.begin(), na.end(), b);
            auto ib = std::upper_bound(nb.begin(), nb.end(), b);
            while (ia != na.end() && ib != nb.end()) {
                if (*ia < *ib) {
                    ++ia;
                } else if (*ib < *ia) {
                    ++ib;
                } else {
                    ++total;
                    ++ia;
                    ++ib;
                }
            }
        }
    }
    return total;
}

std::vector<double>
pageRank(const graph::Graph& g, unsigned iterations, double damping)
{
    const graph::VertexId n = g.numVertices();
    std::vector<double> rank(n, 1.0 / n);
    std::vector<double> incoming(n, 0.0);
    for (unsigned it = 0; it < iterations; ++it) {
        std::fill(incoming.begin(), incoming.end(), 0.0);
        for (graph::VertexId v = 0; v < n; ++v) {
            const auto deg = g.degree(v);
            if (deg == 0) {
                continue;
            }
            const double share = rank[v] / static_cast<double>(deg);
            for (graph::VertexId u : g.neighbors(v)) {
                incoming[u] += share;
            }
        }
        for (graph::VertexId v = 0; v < n; ++v) {
            rank[v] = damping / n + (1.0 - damping) * incoming[v];
        }
    }
    return rank;
}

} // namespace crono::core::seq

namespace crono::core {

double
communityModularity(const graph::Graph& g,
                    const AlignedVector<graph::VertexId>& labels)
{
    std::uint64_t weight_sum = 0;
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        for (graph::Weight w : g.weights(v)) {
            weight_sum += w;
        }
    }
    const double two_m = static_cast<double>(weight_sum);
    if (two_m == 0.0) {
        return 0.0;
    }

    // Q = sum_c [ in_c / 2m - (tot_c / 2m)^2 ]
    std::vector<double> in_c(g.numVertices(), 0.0);
    std::vector<double> tot_c(g.numVertices(), 0.0);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        auto ns = g.neighbors(v);
        auto ws = g.weights(v);
        for (std::size_t i = 0; i < ns.size(); ++i) {
            tot_c[labels[v]] += ws[i];
            if (labels[ns[i]] == labels[v]) {
                in_c[labels[v]] += ws[i];
            }
        }
    }
    double q = 0.0;
    for (graph::VertexId c = 0; c < g.numVertices(); ++c) {
        q += in_c[c] / two_m - (tot_c[c] / two_m) * (tot_c[c] / two_m);
    }
    return q;
}

graph::Graph
coarsenByCommunities(const graph::Graph& g,
                     const AlignedVector<graph::VertexId>& labels,
                     std::vector<graph::VertexId>* dense_of,
                     AlignedVector<double>* internal_weight)
{
    CRONO_ASSERT(labels.size() == g.numVertices(),
                 "label/vertex count mismatch");
    // Compact the label space.
    dense_of->assign(g.numVertices(), graph::kNoVertex);
    graph::VertexId next = 0;
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        graph::VertexId& slot = (*dense_of)[labels[v]];
        if (slot == graph::kNoVertex) {
            slot = next++;
        }
    }

    // Sum parallel inter-community edges (each logical edge appears
    // twice in the CSR; accumulate the lower-id direction once) and
    // collect intra-community weight (both directions, i.e. 2x the
    // logical internal weight -- the supernode "self loop").
    if (internal_weight != nullptr) {
        internal_weight->assign(next, 0.0);
    }
    std::unordered_map<std::uint64_t, std::uint64_t> weight_sum;
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        const graph::VertexId cv = (*dense_of)[labels[v]];
        auto ns = g.neighbors(v);
        auto ws = g.weights(v);
        for (std::size_t i = 0; i < ns.size(); ++i) {
            const graph::VertexId cu = (*dense_of)[labels[ns[i]]];
            if (cv == cu) {
                if (internal_weight != nullptr) {
                    (*internal_weight)[cv] += ws[i];
                }
                continue;
            }
            if (cv > cu) {
                continue; // mirrored direction
            }
            const std::uint64_t key =
                (static_cast<std::uint64_t>(cv) << 32) | cu;
            weight_sum[key] += ws[i];
        }
    }

    graph::GraphBuilder builder(next, /*undirected=*/true);
    constexpr std::uint64_t kMaxWeight = ~graph::Weight{0} >> 1;
    for (const auto& [key, w] : weight_sum) {
        builder.addEdge(static_cast<graph::VertexId>(key >> 32),
                        static_cast<graph::VertexId>(key & 0xffffffffu),
                        static_cast<graph::Weight>(
                            std::min<std::uint64_t>(w, kMaxWeight)));
    }
    return std::move(builder).build(
        graph::GraphBuilder::DedupPolicy::keepAll);
}

} // namespace crono::core

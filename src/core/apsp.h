/**
 * @file
 * All Pairs Shortest Path (Section III-2).
 *
 * Parallelization: vertex capture (par::vertexMapCapture). Each
 * thread atomically captures a source vertex, runs an O(V^2)
 * single-source shortest-path solve over the adjacency-matrix
 * representation using its own private distance and visited lanes of
 * a par::ScratchArena (the paper notes these per-thread structures
 * are what thrash the L1 — the arena allocates them once and the
 * solves re-touch them per source), then writes the finished row into
 * the global distance matrix and captures the next source.
 */

#ifndef CRONO_CORE_APSP_H_
#define CRONO_CORE_APSP_H_

#include <utility>
#include <vector>

#include "core/context.h"
#include "graph/adjacency_matrix.h"
#include "obs/telemetry.h"
#include "runtime/executor.h"
#include "runtime/frontier.h"
#include "runtime/par.h"

namespace crono::core {

/** Dense all-pairs distance matrix. */
struct ApspResult {
    graph::VertexId n = 0;
    AlignedVector<graph::Dist> dist; ///< row-major n x n
    rt::RunInfo run;

    graph::Dist
    at(graph::VertexId s, graph::VertexId t) const
    {
        return dist[static_cast<std::size_t>(s) * n + t];
    }
};

/** Scratch-arena lane indices of the per-thread solve working set. */
inline constexpr int kApspDistLane = 0;
inline constexpr int kApspVisitedLane = 1;

/** Shared APSP state. */
template <class Ctx>
struct ApspState {
    ApspState(const graph::AdjacencyMatrix& matrix, int nthreads,
              rt::ActiveTracker* tracker_in,
              rt::FrontierMode mode_in = rt::FrontierMode::kFlagScan)
        : m(matrix), n(matrix.numVertices()),
          dist(static_cast<std::size_t>(n) * n, graph::kInfDist),
          scratch(nthreads), mode(mode_in), tracker(tracker_in)
    {
        if (mode != rt::FrontierMode::kFlagScan) {
            worklists.assign(static_cast<std::size_t>(nthreads),
                             rt::LocalWorklist(n));
        }
    }

    const graph::AdjacencyMatrix& m;
    graph::VertexId n;
    AlignedVector<graph::Dist> dist;
    /** Private per-thread working sets (deliberately L1-hungry). */
    rt::par::ScratchArena scratch;
    /** Per-thread work lists for the label-correcting solve. */
    std::vector<rt::LocalWorklist> worklists;
    rt::CaptureCounter counter;
    rt::FrontierMode mode;
    rt::ActiveTracker* tracker;
};

/**
 * O(V^2) Dijkstra from @p src into the thread's scratch lanes; every
 * matrix/scratch element access is modeled through @p ctx.
 *
 * @return vertices settled (telemetry: expansions).
 */
template <class Ctx>
std::uint64_t
apspSolveSource(Ctx& ctx, ApspState<Ctx>& s, graph::VertexId src)
{
    const graph::VertexId n = s.n;
    graph::Dist* ldist =
        s.scratch.template lane<graph::Dist>(ctx.tid(), kApspDistLane, n);
    std::uint8_t* lvis = s.scratch.template lane<std::uint8_t>(
        ctx.tid(), kApspVisitedLane, n);

    for (graph::VertexId v = 0; v < n; ++v) {
        ctx.write(ldist[v], graph::kInfDist);
        ctx.write(lvis[v], std::uint8_t{0});
    }
    ctx.write(ldist[src], graph::Dist{0});

    std::uint64_t settled = 0;
    for (graph::VertexId iter = 0; iter < n; ++iter) {
        // Select the nearest unvisited vertex by linear scan.
        graph::VertexId u = graph::kNoVertex;
        graph::Dist best = graph::kInfDist;
        for (graph::VertexId v = 0; v < n; ++v) {
            ctx.work(1);
            if (ctx.read(lvis[v]) == 0 && ctx.read(ldist[v]) < best) {
                best = ctx.read(ldist[v]);
                u = v;
            }
        }
        if (u == graph::kNoVertex) {
            break; // remaining vertices unreachable
        }
        ctx.write(lvis[u], std::uint8_t{1});
        ++settled;

        // Relax the full adjacency-matrix row of u.
        const graph::Weight* row = s.m.row(u).data();
        for (graph::VertexId v = 0; v < n; ++v) {
            const graph::Weight w = ctx.read(row[v]);
            ctx.work(1);
            if (w == graph::AdjacencyMatrix::kInfWeight) {
                continue;
            }
            const graph::Dist cand = best + w;
            if (cand < ctx.read(ldist[v])) {
                ctx.write(ldist[v], cand);
            }
        }
    }

    // Publish the finished row; rows are disjoint so no locks needed.
    graph::Dist* out = s.dist.data() + static_cast<std::size_t>(src) * n;
    for (graph::VertexId v = 0; v < n; ++v) {
        ctx.write(out[v], ctx.read(ldist[v]));
    }
    return settled;
}

/**
 * Work-list forward pass (kSparse / kAdaptive): the O(V) scan-min
 * selection of the flag-scan Dijkstra is replaced by label-correcting
 * pops from a private FIFO (rt::LocalWorklist), with the scratch
 * visited lane reused as the in-list marker. On sparse inputs the
 * solve touches only rows whose distance actually changed instead of
 * performing V scan+relax sweeps. Distances are unique, so the
 * published rows are bit-for-bit those of the flag-scan solve.
 *
 * @return vertices popped (telemetry: expansions).
 */
template <class Ctx>
std::uint64_t
apspSolveSourceWorklist(Ctx& ctx, ApspState<Ctx>& s, graph::VertexId src)
{
    const graph::VertexId n = s.n;
    graph::Dist* ldist =
        s.scratch.template lane<graph::Dist>(ctx.tid(), kApspDistLane, n);
    std::uint8_t* lvis = s.scratch.template lane<std::uint8_t>(
        ctx.tid(), kApspVisitedLane, n);
    rt::LocalWorklist& wl = s.worklists[ctx.tid()];

    for (graph::VertexId v = 0; v < n; ++v) {
        ctx.write(ldist[v], graph::kInfDist);
        ctx.write(lvis[v], std::uint8_t{0}); // in-list marker
    }
    ctx.write(ldist[src], graph::Dist{0});
    wl.clear();
    wl.push(ctx, src);
    ctx.write(lvis[src], std::uint8_t{1});

    std::uint64_t popped = 0;
    while (!wl.empty()) {
        const auto u = static_cast<graph::VertexId>(wl.pop(ctx));
        ++popped;
        ctx.write(lvis[u], std::uint8_t{0});
        const graph::Dist du = ctx.read(ldist[u]);
        const graph::Weight* row = s.m.row(u).data();
        for (graph::VertexId v = 0; v < n; ++v) {
            const graph::Weight w = ctx.read(row[v]);
            ctx.work(1);
            if (w == graph::AdjacencyMatrix::kInfWeight) {
                continue;
            }
            const graph::Dist cand = du + w;
            if (cand < ctx.read(ldist[v])) {
                ctx.write(ldist[v], cand);
                if (ctx.read(lvis[v]) == 0) {
                    ctx.write(lvis[v], std::uint8_t{1});
                    wl.push(ctx, v);
                }
            }
        }
    }

    graph::Dist* out = s.dist.data() + static_cast<std::size_t>(src) * n;
    for (graph::VertexId v = 0; v < n; ++v) {
        ctx.write(out[v], ctx.read(ldist[v]));
    }
    return popped;
}

template <class Ctx>
void
apspKernel(Ctx& ctx, ApspState<Ctx>& s)
{
    const bool worklist = s.mode != rt::FrontierMode::kFlagScan;
    std::uint64_t expansions = 0;
    rt::par::vertexMapCapture(
        ctx, s.counter, s.n, [&](std::uint64_t src) {
            trackAdd(s.tracker, 1);
            if (worklist) {
                expansions += apspSolveSourceWorklist(
                    ctx, s, static_cast<graph::VertexId>(src));
            } else {
                expansions += apspSolveSource(
                    ctx, s, static_cast<graph::VertexId>(src));
            }
            trackAdd(s.tracker, -1);
        });
    obs::counterAdd(ctx, obs::Counter::kExpansions, expansions);
}

/**
 * Run APSP over an adjacency matrix.
 *
 * @param mode kFlagScan (default) runs the paper's scan-min Dijkstra
 *             per source; kSparse/kAdaptive (equivalent here — the
 *             per-source solve has no dense phase worth keeping) run
 *             the label-correcting work-list forward pass
 */
template <class Exec>
ApspResult
apsp(Exec& exec, int nthreads, const graph::AdjacencyMatrix& m,
     rt::ActiveTracker* tracker = nullptr,
     rt::FrontierMode mode = rt::FrontierMode::kFlagScan)
{
    using Ctx = typename Exec::Ctx;
    obs::ScopedHostSpan kernel_span("APSP", m.numVertices());
    ApspState<Ctx> state(m, nthreads, tracker, mode);
    rt::RunInfo info = exec.parallel(
        nthreads, [&state](Ctx& ctx) { apspKernel(ctx, state); });
    return ApspResult{state.n, std::move(state.dist), std::move(info)};
}

} // namespace crono::core

#endif // CRONO_CORE_APSP_H_

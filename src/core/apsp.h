/**
 * @file
 * All Pairs Shortest Path (Section III-2).
 *
 * Parallelization: vertex capture. Each thread atomically captures a
 * source vertex, runs an O(V^2) single-source shortest-path solve over
 * the adjacency-matrix representation using its own private distance
 * and visited arrays (the paper notes these per-thread structures are
 * what thrash the L1), then writes the finished row into the global
 * distance matrix and captures the next source.
 */

#ifndef CRONO_CORE_APSP_H_
#define CRONO_CORE_APSP_H_

#include <utility>
#include <vector>

#include "core/context.h"
#include "graph/adjacency_matrix.h"
#include "runtime/executor.h"
#include "runtime/frontier.h"
#include "runtime/strategies.h"

namespace crono::core {

/** Dense all-pairs distance matrix. */
struct ApspResult {
    graph::VertexId n = 0;
    AlignedVector<graph::Dist> dist; ///< row-major n x n
    rt::RunInfo run;

    graph::Dist
    at(graph::VertexId s, graph::VertexId t) const
    {
        return dist[static_cast<std::size_t>(s) * n + t];
    }
};

/** Shared APSP state. */
template <class Ctx>
struct ApspState {
    ApspState(const graph::AdjacencyMatrix& matrix, int nthreads,
              rt::ActiveTracker* tracker_in,
              rt::FrontierMode mode_in = rt::FrontierMode::kFlagScan)
        : m(matrix), n(matrix.numVertices()),
          dist(static_cast<std::size_t>(n) * n, graph::kInfDist),
          scratch(nthreads), mode(mode_in), tracker(tracker_in)
    {
        for (auto& sc : scratch) {
            sc.dist.assign(n, graph::kInfDist);
            sc.visited.assign(n, 0);
        }
        if (mode != rt::FrontierMode::kFlagScan) {
            worklists.assign(static_cast<std::size_t>(nthreads),
                             rt::LocalWorklist(n));
        }
    }

    /** Private working set of one thread (deliberately L1-hungry). */
    struct Scratch {
        AlignedVector<graph::Dist> dist;
        AlignedVector<std::uint8_t> visited;
    };

    const graph::AdjacencyMatrix& m;
    graph::VertexId n;
    AlignedVector<graph::Dist> dist;
    std::vector<Scratch> scratch;
    /** Per-thread work lists for the label-correcting solve. */
    std::vector<rt::LocalWorklist> worklists;
    rt::CaptureCounter counter;
    rt::FrontierMode mode;
    rt::ActiveTracker* tracker;
};

/**
 * O(V^2) Dijkstra from @p src into the thread's scratch arrays; every
 * matrix/scratch element access is modeled through @p ctx.
 */
template <class Ctx>
void
apspSolveSource(Ctx& ctx, ApspState<Ctx>& s, graph::VertexId src)
{
    auto& local = s.scratch[ctx.tid()];
    const graph::VertexId n = s.n;

    for (graph::VertexId v = 0; v < n; ++v) {
        ctx.write(local.dist[v], graph::kInfDist);
        ctx.write(local.visited[v], std::uint8_t{0});
    }
    ctx.write(local.dist[src], graph::Dist{0});

    for (graph::VertexId iter = 0; iter < n; ++iter) {
        // Select the nearest unvisited vertex by linear scan.
        graph::VertexId u = graph::kNoVertex;
        graph::Dist best = graph::kInfDist;
        for (graph::VertexId v = 0; v < n; ++v) {
            ctx.work(1);
            if (ctx.read(local.visited[v]) == 0 &&
                ctx.read(local.dist[v]) < best) {
                best = ctx.read(local.dist[v]);
                u = v;
            }
        }
        if (u == graph::kNoVertex) {
            break; // remaining vertices unreachable
        }
        ctx.write(local.visited[u], std::uint8_t{1});

        // Relax the full adjacency-matrix row of u.
        const graph::Weight* row = s.m.row(u).data();
        for (graph::VertexId v = 0; v < n; ++v) {
            const graph::Weight w = ctx.read(row[v]);
            ctx.work(1);
            if (w == graph::AdjacencyMatrix::kInfWeight) {
                continue;
            }
            const graph::Dist cand = best + w;
            if (cand < ctx.read(local.dist[v])) {
                ctx.write(local.dist[v], cand);
            }
        }
    }

    // Publish the finished row; rows are disjoint so no locks needed.
    graph::Dist* out = s.dist.data() + static_cast<std::size_t>(src) * n;
    for (graph::VertexId v = 0; v < n; ++v) {
        ctx.write(out[v], ctx.read(local.dist[v]));
    }
}

/**
 * Work-list forward pass (kSparse / kAdaptive): the O(V) scan-min
 * selection of the flag-scan Dijkstra is replaced by label-correcting
 * pops from a private FIFO (rt::LocalWorklist), with the scratch
 * visited array reused as the in-list marker. On sparse inputs the
 * solve touches only rows whose distance actually changed instead of
 * performing V scan+relax sweeps. Distances are unique, so the
 * published rows are bit-for-bit those of the flag-scan solve.
 */
template <class Ctx>
void
apspSolveSourceWorklist(Ctx& ctx, ApspState<Ctx>& s, graph::VertexId src)
{
    auto& local = s.scratch[ctx.tid()];
    rt::LocalWorklist& wl = s.worklists[ctx.tid()];
    const graph::VertexId n = s.n;

    for (graph::VertexId v = 0; v < n; ++v) {
        ctx.write(local.dist[v], graph::kInfDist);
        ctx.write(local.visited[v], std::uint8_t{0}); // in-list marker
    }
    ctx.write(local.dist[src], graph::Dist{0});
    wl.clear();
    wl.push(ctx, src);
    ctx.write(local.visited[src], std::uint8_t{1});

    while (!wl.empty()) {
        const auto u = static_cast<graph::VertexId>(wl.pop(ctx));
        ctx.write(local.visited[u], std::uint8_t{0});
        const graph::Dist du = ctx.read(local.dist[u]);
        const graph::Weight* row = s.m.row(u).data();
        for (graph::VertexId v = 0; v < n; ++v) {
            const graph::Weight w = ctx.read(row[v]);
            ctx.work(1);
            if (w == graph::AdjacencyMatrix::kInfWeight) {
                continue;
            }
            const graph::Dist cand = du + w;
            if (cand < ctx.read(local.dist[v])) {
                ctx.write(local.dist[v], cand);
                if (ctx.read(local.visited[v]) == 0) {
                    ctx.write(local.visited[v], std::uint8_t{1});
                    wl.push(ctx, v);
                }
            }
        }
    }

    graph::Dist* out = s.dist.data() + static_cast<std::size_t>(src) * n;
    for (graph::VertexId v = 0; v < n; ++v) {
        ctx.write(out[v], ctx.read(local.dist[v]));
    }
}

template <class Ctx>
void
apspKernel(Ctx& ctx, ApspState<Ctx>& s)
{
    const bool worklist = s.mode != rt::FrontierMode::kFlagScan;
    for (;;) {
        const std::uint64_t src = rt::captureNext(ctx, s.counter, s.n);
        if (src == rt::kCaptureDone) {
            break;
        }
        trackAdd(s.tracker, 1);
        if (worklist) {
            apspSolveSourceWorklist(ctx, s,
                                    static_cast<graph::VertexId>(src));
        } else {
            apspSolveSource(ctx, s, static_cast<graph::VertexId>(src));
        }
        trackAdd(s.tracker, -1);
    }
}

/**
 * Run APSP over an adjacency matrix.
 *
 * @param mode kFlagScan (default) runs the paper's scan-min Dijkstra
 *             per source; kSparse/kAdaptive (equivalent here — the
 *             per-source solve has no dense phase worth keeping) run
 *             the label-correcting work-list forward pass
 */
template <class Exec>
ApspResult
apsp(Exec& exec, int nthreads, const graph::AdjacencyMatrix& m,
     rt::ActiveTracker* tracker = nullptr,
     rt::FrontierMode mode = rt::FrontierMode::kFlagScan)
{
    using Ctx = typename Exec::Ctx;
    ApspState<Ctx> state(m, nthreads, tracker, mode);
    rt::RunInfo info = exec.parallel(
        nthreads, [&state](Ctx& ctx) { apspKernel(ctx, state); });
    return ApspResult{state.n, std::move(state.dist), std::move(info)};
}

} // namespace crono::core

#endif // CRONO_CORE_APSP_H_

/**
 * @file
 * Host-side pieces of the delta-stepping kernel: the light/heavy CSR
 * split and the auto-delta heuristic. Both run once, single-threaded,
 * before the parallel region opens, so they use plain loads.
 */

#include "core/delta_stepping.h"

#include <algorithm>

namespace crono::core {

const char*
ssspAlgoName(SsspAlgo algo)
{
    switch (algo) {
      case SsspAlgo::kWorkList:
        return "worklist";
      case SsspAlgo::kDeltaStep:
        return "delta";
    }
    return "unknown";
}

EdgeSplit
splitEdgesAtDelta(const graph::Graph& g, graph::Dist delta)
{
    const std::size_t n = g.numVertices();
    const AlignedVector<graph::EdgeId>& offsets = g.rawOffsets();
    const AlignedVector<graph::VertexId>& targets = g.rawNeighbors();
    const AlignedVector<graph::Weight>& weights = g.rawWeights();

    EdgeSplit s;
    s.delta = delta;
    s.light_offsets.assign(n + 1, 0);
    s.heavy_offsets.assign(n + 1, 0);
    for (std::size_t v = 0; v < n; ++v) {
        graph::EdgeId light = 0;
        for (graph::EdgeId e = offsets[v]; e < offsets[v + 1]; ++e) {
            if (weights[e] <= delta) {
                ++light;
            }
        }
        s.light_offsets[v + 1] = s.light_offsets[v] + light;
        s.heavy_offsets[v + 1] =
            s.heavy_offsets[v] + (offsets[v + 1] - offsets[v] - light);
    }
    s.light_targets.resize(s.light_offsets[n]);
    s.light_weights.resize(s.light_offsets[n]);
    s.heavy_targets.resize(s.heavy_offsets[n]);
    s.heavy_weights.resize(s.heavy_offsets[n]);
    for (std::size_t v = 0; v < n; ++v) {
        graph::EdgeId light = s.light_offsets[v];
        graph::EdgeId heavy = s.heavy_offsets[v];
        for (graph::EdgeId e = offsets[v]; e < offsets[v + 1]; ++e) {
            if (weights[e] <= delta) {
                s.light_targets[light] = targets[e];
                s.light_weights[light] = weights[e];
                ++light;
            } else {
                s.heavy_targets[heavy] = targets[e];
                s.heavy_weights[heavy] = weights[e];
                ++heavy;
            }
        }
    }
    return s;
}

graph::Dist
autoDelta(const graph::Graph& g, int nthreads)
{
    const std::uint64_t edges = g.numEdges();
    const std::uint64_t vertices = g.numVertices();
    if (edges == 0 || vertices == 0) {
        return 1;
    }
    std::uint64_t total = 0;
    for (const graph::Weight w : g.rawWeights()) {
        total += w;
    }
    const std::uint64_t avg_weight = std::max<std::uint64_t>(
        total / edges, 1);
    if (nthreads <= 1) {
        // Serial loop: narrow Dial-like buckets (see header comment).
        return std::max<graph::Dist>(avg_weight / 16, 1);
    }
    const std::uint64_t avg_degree = std::max<std::uint64_t>(
        edges / vertices, 1);
    return std::max<graph::Dist>(2 * avg_weight / avg_degree, 1);
}

} // namespace crono::core

/**
 * @file
 * Connected Components (Section III-7).
 *
 * Parallelization: graph division with barriered phases. Labels are
 * initialized to vertex ids, then iteratively lowered to the minimum
 * label among each vertex's neighborhood under per-vertex locks until
 * a round makes no change; vertices sharing a final label form one
 * component. The init / propagate / converge phases separated by
 * barriers produce the sinusoidal active-vertex pattern of Figure 2.
 *
 * Two structures, both built on the rt::par primitives:
 *
 *  - kFlagScan (the paper's): every round is a full pull-style rescan
 *    (par::edgeMapPullAll) — each vertex folds the minimum label over
 *    its whole neighborhood, improving itself under its lock. O(E)
 *    per round regardless of how much is still changing.
 *  - frontier modes: label propagation flips to push (an active
 *    vertex offers its label to its neighbors and re-activates the
 *    ones it improved) — once labels stop changing in a region, its
 *    vertices drop off the front instead of being rescanned. Heavy
 *    rounds go pull-side (par::edgeMapPull): every vertex folds the
 *    minimum over its *in-front* neighbors and self-activates if
 *    improved — same invariant (a vertex whose label changed in
 *    round r is on round r+1's front), no locks needed because pull
 *    writes are owner-exclusive. The fixpoint is identical in every
 *    mode (minimum member id per component).
 */

#ifndef CRONO_CORE_CONNECTED_COMPONENTS_H_
#define CRONO_CORE_CONNECTED_COMPONENTS_H_

#include <utility>

#include "core/context.h"
#include "graph/graph.h"
#include "obs/telemetry.h"
#include "runtime/executor.h"
#include "runtime/frontier.h"
#include "runtime/par.h"

namespace crono::core {

/** Component labeling: label[v] is the smallest vertex id reachable. */
struct ConnectedComponentsResult {
    AlignedVector<graph::VertexId> label;
    std::uint64_t num_components = 0;
    std::uint64_t rounds = 0;
    rt::RunInfo run;
};

template <class Ctx>
struct ConnectedComponentsState {
    ConnectedComponentsState(const graph::Graph& graph,
                             rt::ActiveTracker* tracker_in)
        : g(graph), label(graph.numVertices(), 0),
          locks(graph.numVertices()), tracker(tracker_in)
    {
    }

    const graph::Graph& g;
    AlignedVector<graph::VertexId> label;
    /** Changed-counters indexed by round parity (see kernel). */
    Padded<std::uint64_t> changed[2];
    Padded<std::uint64_t> rounds;
    LockStripe<Ctx> locks;
    rt::ActiveTracker* tracker;
};

template <class Ctx>
void
connectedComponentsKernel(Ctx& ctx, ConnectedComponentsState<Ctx>& s)
{
    const rt::par::Csr csr = rt::par::csrOf(s.g);

    obs::Track* const track =
        obs::trackFor(obs::sink(), obs::ctxTrackKind<Ctx>, ctx.tid());
    std::uint64_t relaxations = 0;

    // Phase 1: initialize labels (each vertex its own region label).
    rt::par::vertexMap(ctx, s.g.numVertices(), [&](std::uint64_t v) {
        ctx.write(s.label[v], static_cast<graph::VertexId>(v));
    });
    ctx.barrier();

    // Phase 2: iterate min-label propagation to a fixpoint. The two
    // parity-indexed counters make the convergence test race-free
    // with only two barriers per round: while round r's counter is
    // being read, round r+1's counter (already zeroed during round
    // r-1) is untouched.
    std::int64_t last_active = 0;
    for (std::uint64_t round = 0;; ++round) {
        const std::uint64_t round_begin =
            track != nullptr ? ctx.timestamp() : 0;
        Padded<std::uint64_t>& counter = s.changed[round % 2];
        std::uint64_t local_changes = 0;
        graph::VertexId lv = 0;
        graph::VertexId best = 0;
        rt::par::edgeMapPullAll(
            ctx, csr,
            [&](graph::VertexId v) {
                lv = ctx.read(s.label[v]);
                best = lv;
                return true;
            },
            [&](graph::VertexId, graph::VertexId u, graph::EdgeId) {
                // Declared-racy probe: u's owner may lower label[u]
                // under u's lock mid-fold. Labels only decrease and
                // every observed value is a valid member id of u's
                // component, so a stale (higher) read at worst defers
                // the improvement to the next rescan round.
                const graph::VertexId lu = ctx.readAtomic(s.label[u]);
                if (lu < best) {
                    best = lu;
                }
                return false; // full neighborhood fold, no early exit
            },
            [&](graph::VertexId v) {
                if (best < lv) {
                    ScopedLock<Ctx> guard(ctx, s.locks.of(v));
                    if (best < ctx.read(s.label[v])) {
                        ctx.write(s.label[v], best);
                        ++local_changes;
                        ++relaxations;
                    }
                }
            });
        if (track != nullptr) {
            obs::spanRecord(
                track, {round_begin, ctx.timestamp(), "round-scan",
                        round, obs::SpanCat::kRound});
        }
        if (local_changes > 0) {
            ctx.fetchAdd(counter.value, local_changes);
        }
        ctx.barrier();
        const std::uint64_t total = ctx.read(counter.value);
        if (ctx.tid() == 0) {
            ctx.write(s.changed[(round + 1) % 2].value, std::uint64_t{0});
            ctx.write(s.rounds.value, round + 1);
            trackAdd(s.tracker,
                     static_cast<std::int64_t>(total) - last_active);
            last_active = static_cast<std::int64_t>(total);
        }
        ctx.barrier();
        if (total == 0) {
            break;
        }
    }
    if (track != nullptr) {
        obs::counterBump(track, obs::Counter::kRelaxations, relaxations);
    }
}

/**
 * Connected-components state for the work-list engine path (see the
 * file header for the push / pull round structure).
 */
template <class Ctx>
struct ConnectedComponentsFrontierState {
    ConnectedComponentsFrontierState(const graph::Graph& graph,
                                     int nthreads, rt::FrontierMode mode,
                                     rt::ActiveTracker* tracker_in)
        : g(graph), label(graph.numVertices()),
          frontier(graph.numVertices(), graph.numEdges(), nthreads, mode),
          locks(graph.numVertices()), tracker(tracker_in)
    {
        for (graph::VertexId v = 0; v < graph.numVertices(); ++v) {
            label[v] = v;
        }
        frontier.seedAll(); // round 0: every vertex offers its own id
    }

    const graph::Graph& g;
    AlignedVector<graph::VertexId> label;
    rt::FrontierEngine frontier;
    Padded<std::uint64_t> rounds;
    LockStripe<Ctx> locks;
    rt::ActiveTracker* tracker;
};

template <class Ctx>
void
connectedComponentsFrontierKernel(Ctx& ctx,
                                  ConnectedComponentsFrontierState<Ctx>& s)
{
    const rt::par::Csr csr = rt::par::csrOf(s.g);

    obs::Track* const track =
        obs::trackFor(obs::sink(), obs::ctxTrackKind<Ctx>, ctx.tid());
    std::uint64_t relaxations = 0;

    std::uint64_t front = s.frontier.initialFrontSize();
    std::uint64_t round = 0;
    while (front != 0) {
        const rt::RoundPlan plan =
            s.frontier.planRound(front, /*allow_pull=*/true);
        if (plan == rt::RoundPlan::kPull) {
            if (ctx.tid() == 0) {
                trackAdd(s.tracker, -static_cast<std::int64_t>(front));
            }
            graph::VertexId lv = 0;
            graph::VertexId best = 0;
            rt::par::edgeMapPull(
                ctx, csr, s.frontier, round,
                [&](graph::VertexId v) {
                    lv = ctx.read(s.label[v]);
                    best = lv;
                    return true; // every vertex is a candidate
                },
                [&](graph::VertexId, graph::VertexId u, graph::EdgeId) {
                    // Declared-racy probe: u's owner may lower
                    // label[u] mid-fold (owner-exclusive pull write).
                    // Monotone: any observed value is a valid member
                    // id; a stale read only defers the improvement.
                    const graph::VertexId lu =
                        ctx.readAtomic(s.label[u]);
                    if (lu < best) {
                        best = lu;
                    }
                    return false; // need the min, no early exit
                },
                [&](graph::VertexId v) {
                    if (best < lv) {
                        // Owner-exclusive (no pushes in a pull round):
                        // plain write, no lock. Concurrent readers see
                        // either label — both are component members.
                        ctx.write(s.label[v], best);
                        ++relaxations;
                        if (s.frontier.activate(ctx, round, v)) {
                            trackAdd(s.tracker, 1);
                        }
                    }
                });
        } else {
            rt::par::edgeMapPush(
                ctx, csr, s.frontier, round,
                plan == rt::RoundPlan::kDensePush,
                [&](graph::VertexId) {
                    trackAdd(s.tracker, -1);
                    return true;
                },
                [&](graph::VertexId u, graph::VertexId v,
                    graph::EdgeId) {
                    ctx.work(1);
                    // Declared-racy probes: both labels may be lowered
                    // concurrently under their own locks. A stale read
                    // only delays the offer, never loses it — v stays
                    // (or lands) on a front whenever its label drops.
                    const graph::VertexId lu =
                        ctx.readAtomic(s.label[u]);
                    if (lu >= ctx.readAtomic(s.label[v])) {
                        return; // racy skip, see above
                    }
                    ScopedLock<Ctx> guard(ctx, s.locks.of(v));
                    if (lu < ctx.read(s.label[v])) {
                        ctx.write(s.label[v], lu);
                        ++relaxations;
                        if (s.frontier.activate(ctx, round, v)) {
                            trackAdd(s.tracker, 1);
                        }
                    }
                });
        }
        front = s.frontier.advance(ctx, round, [&] {
            if (plan == rt::RoundPlan::kPull) {
                s.frontier.clearCurrentBlock(ctx, round);
            }
        });
        ++round;
    }
    if (ctx.tid() == 0) {
        ctx.write(s.rounds.value, round);
    }
    if (track != nullptr) {
        obs::counterBump(track, obs::Counter::kRelaxations, relaxations);
    }
}

/**
 * Run connected components; also reports the component count.
 *
 * @param mode frontier representation; kFlagScan (default) is the
 *             paper's pull-based full-rescan structure,
 *             kSparse/kAdaptive run push-based on the work lists with
 *             heavy rounds taken pull-side (direction optimization)
 */
template <class Exec>
ConnectedComponentsResult
connectedComponents(Exec& exec, int nthreads, const graph::Graph& g,
                    rt::ActiveTracker* tracker = nullptr,
                    rt::FrontierMode mode = rt::FrontierMode::kFlagScan)
{
    using Ctx = typename Exec::Ctx;
    obs::ScopedHostSpan kernel_span("CONN_COMP", g.numVertices());
    ConnectedComponentsResult result;
    rt::RunInfo info;
    AlignedVector<graph::VertexId> label;
    std::uint64_t rounds = 0;
    if (mode == rt::FrontierMode::kFlagScan) {
        ConnectedComponentsState<Ctx> state(g, tracker);
        info = exec.parallel(nthreads, [&state](Ctx& ctx) {
            connectedComponentsKernel(ctx, state);
        });
        label = std::move(state.label);
        rounds = state.rounds.value;
    } else {
        ConnectedComponentsFrontierState<Ctx> state(g, nthreads, mode,
                                                    tracker);
        info = exec.parallel(nthreads, [&state](Ctx& ctx) {
            connectedComponentsFrontierKernel(ctx, state);
        });
        state.frontier.applyRoundStats(info);
        label = std::move(state.label);
        rounds = state.rounds.value;
    }
    result.num_components = 0;
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        if (label[v] == v) {
            ++result.num_components;
        }
    }
    result.label = std::move(label);
    result.rounds = rounds;
    result.run = std::move(info);
    return result;
}

} // namespace crono::core

#endif // CRONO_CORE_CONNECTED_COMPONENTS_H_

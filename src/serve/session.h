/**
 * @file
 * One client connection (DESIGN.md §17.4).
 *
 * A Session sits between a transport (in-process client, TCP
 * connection) and the server's shard queues. The transport side is
 * single-threaded per session: feed() splits the byte stream into
 * frames, decodes them, answers protocol errors immediately (into the
 * output buffer, attributed to the request id when it parsed), and
 * hands well-formed requests back for routing. The output side is
 * multi-writer: any shard worker may complete a request for this
 * session at any time, so sendResponse() appends the encoded frame
 * under a mutex and wakes waiters; responses carry request ids, so no
 * cross-worker ordering is imposed (a client matches responses to
 * requests by id, not position).
 *
 * An oversized length prefix poisons the framing (see protocol.h);
 * the session emits one kTooLarge error and reports itself closing —
 * the transport flushes the output and drops the connection.
 */

#ifndef CRONO_SERVE_SESSION_H_
#define CRONO_SERVE_SESSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "serve/protocol.h"

namespace crono::serve {

class Session {
  public:
    explicit Session(std::uint64_t id) : id_(id) {}

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    std::uint64_t id() const { return id_; }

    /**
     * Transport side: append raw bytes, decode complete frames.
     * Well-formed requests are appended to @p out; malformed frames
     * are answered directly into the output buffer. Single caller per
     * session.
     */
    void feed(std::span<const std::uint8_t> data,
              std::vector<Request>* out);

    /** True once framing poisoned — flush output, then disconnect. */
    bool
    closing() const
    {
        return closing_;
    }

    /** Worker side: encode @p r into the output buffer (thread-safe). */
    void sendResponse(const Response& r);

    /**
     * Drain buffered output bytes (thread-safe). With @p wait, blocks
     * until output is available or markDone() was called; returns
     * empty only when done and drained.
     */
    std::vector<std::uint8_t> takeOutput(bool wait = false);

    /** Unblock takeOutput(wait=true) forever (server shutdown). */
    void markDone();

  private:
    std::uint64_t id_;
    FrameSplitter splitter_; ///< transport thread only
    bool closing_ = false;   ///< transport thread only

    std::mutex outMutex_;
    std::condition_variable outCv_;
    std::vector<std::uint8_t> out_;
    bool done_ = false;
};

} // namespace crono::serve

#endif // CRONO_SERVE_SESSION_H_

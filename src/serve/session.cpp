/**
 * @file
 * Session framing/decode glue and the thread-safe output buffer.
 */

#include "serve/session.h"

#include <utility>

namespace crono::serve {

void
Session::feed(std::span<const std::uint8_t> data,
              std::vector<Request>* out)
{
    if (closing_) {
        return;
    }
    splitter_.feed(data);
    while (auto payload = splitter_.next()) {
        Request req;
        const Status s = decodeRequest(*payload, &req);
        if (s == Status::kOk) {
            out->push_back(std::move(req));
        } else {
            // Answer the bad frame right here: the id is whatever
            // parsed (0 otherwise), the epoch 0 — no snapshot was
            // consulted on behalf of a frame that never became a
            // request.
            sendResponse(errorResponse(req.id, s));
        }
    }
    if (splitter_.poisoned()) {
        sendResponse(errorResponse(0, Status::kTooLarge));
        closing_ = true;
    }
}

void
Session::sendResponse(const Response& r)
{
    std::lock_guard<std::mutex> lock(outMutex_);
    encodeResponse(r, &out_);
    outCv_.notify_all();
}

std::vector<std::uint8_t>
Session::takeOutput(bool wait)
{
    std::unique_lock<std::mutex> lock(outMutex_);
    if (wait) {
        outCv_.wait(lock, [this] { return !out_.empty() || done_; });
    }
    return std::exchange(out_, {});
}

void
Session::markDone()
{
    std::lock_guard<std::mutex> lock(outMutex_);
    done_ = true;
    outCv_.notify_all();
}

} // namespace crono::serve

/**
 * @file
 * crono.serve.v1 rendering. Field set is add-only; see report.h.
 */

#include "serve/report.h"

#include "obs/json.h"

namespace crono::serve {

namespace {

constexpr double kNsPerSecond = 1e9;

void
quantileField(obs::JsonWriter* w, const char* key,
              const obs::LogHistogram& h, double q)
{
    w->key(key).value(h.quantile(q) / kNsPerSecond);
}

} // namespace

std::string
serveReportJson(const ServeInfo& info,
                std::span<const ClassStats> classes,
                const ServeTotals& totals, const WorkloadDesc* workload)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("schema").value("crono.serve.v1");

    w.key("server").beginObject();
    w.key("num_shards").value(info.num_shards);
    w.key("reordering").value(info.reordering);
    w.key("epoch").value(info.epoch);
    w.key("vertices").value(info.vertices);
    w.key("edge_slots").value(info.edge_slots);
    w.key("delta_edges").value(info.delta_edges);
    w.key("delta_depth").value(info.delta_depth);
    w.key("batches_ingested").value(info.batches_ingested);
    w.key("edges_ingested").value(info.edges_ingested);
    w.key("compactions").value(info.compactions);
    w.endObject();

    if (workload != nullptr) {
        w.key("workload").beginObject();
        w.key("mode").value(workload->mode);
        w.key("clients").value(workload->clients);
        w.key("requests_per_client")
            .value(workload->requests_per_client);
        w.key("target_rps").value(workload->target_rps);
        w.key("ingest_batches").value(workload->ingest_batches);
        w.key("graph").value(workload->graph);
        w.key("seed").value(workload->seed);
        w.key("quick").value(workload->quick);
        w.endObject();
    }

    w.key("classes").beginArray();
    for (const ClassStats& c : classes) {
        if (c.count == 0) {
            continue;
        }
        w.beginObject();
        w.key("op").value(c.op);
        w.key("count").value(c.count);
        w.key("errors").value(c.errors);
        w.key("mean_seconds")
            .value(c.latency_ns.mean() / kNsPerSecond);
        quantileField(&w, "p50_seconds", c.latency_ns, 0.50);
        quantileField(&w, "p90_seconds", c.latency_ns, 0.90);
        quantileField(&w, "p99_seconds", c.latency_ns, 0.99);
        w.key("min_seconds")
            .value(static_cast<double>(c.latency_ns.min()) /
                   kNsPerSecond);
        w.key("max_seconds")
            .value(static_cast<double>(c.latency_ns.max()) /
                   kNsPerSecond);
        w.endObject();
    }
    w.endArray();

    w.key("totals").beginObject();
    w.key("requests").value(totals.requests);
    w.key("errors").value(totals.errors);
    w.key("seconds").value(totals.seconds);
    w.key("throughput_rps")
        .value(totals.seconds > 0.0
                   ? static_cast<double>(totals.requests) /
                         totals.seconds
                   : 0.0);
    w.endObject();

    w.endObject();
    return w.str();
}

} // namespace crono::serve

/**
 * @file
 * The crono.serve.v1 report document (DESIGN.md §17.5).
 *
 * One JSON shape serves two producers: the server's kStats endpoint
 * (its own per-class latency histograms, measured request-entry to
 * response-encode) and bench_serve's load-generator report (client-
 * side latencies plus a "workload" block describing the generator).
 * Validators treat "workload" as optional and everything else as
 * required, and the schema is add-only like crono.bench.v1: consumers
 * must ignore unknown fields, fields are never renamed or repurposed.
 *
 * Latencies are recorded into obs::LogHistogram in nanoseconds and
 * reported in seconds (p50/p90/p99 are log-bucket midpoints — see
 * histogram.h for the error bound).
 */

#ifndef CRONO_SERVE_REPORT_H_
#define CRONO_SERVE_REPORT_H_

#include <cstdint>
#include <span>
#include <string>

#include "obs/histogram.h"

namespace crono::serve {

/** The "server" block: store shape and ingest history. */
struct ServeInfo {
    int num_shards = 1;
    std::string reordering = "none";
    std::uint64_t epoch = 0;
    std::uint64_t vertices = 0;
    std::uint64_t edge_slots = 0;   ///< directed slots, overlay included
    std::uint64_t delta_edges = 0;  ///< overlay slots at report time
    std::uint64_t delta_depth = 0;  ///< overlay chain length
    std::uint64_t batches_ingested = 0;
    std::uint64_t edges_ingested = 0;
    std::uint64_t compactions = 0;
};

/** Per-request-class latency record (histogram in nanoseconds). */
struct ClassStats {
    const char* op = "";            ///< opName() of the class
    std::uint64_t count = 0;        ///< responses, any status
    std::uint64_t errors = 0;       ///< responses with status != kOk
    obs::LogHistogram latency_ns;
};

/** The "totals" block. */
struct ServeTotals {
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    double seconds = 0.0;           ///< measurement wall-clock window
};

/** The optional "workload" block (bench_serve reports only). */
struct WorkloadDesc {
    const char* mode = "closed";    ///< "closed" | "open"
    int clients = 0;
    std::uint64_t requests_per_client = 0;
    double target_rps = 0.0;        ///< open loop only; 0 = n/a
    std::uint64_t ingest_batches = 0;
    std::string graph;              ///< input description, e.g. "kron-16"
    std::uint64_t seed = 0;
    bool quick = false;
};

/**
 * Render a complete crono.serve.v1 document. Classes with zero count
 * are skipped; @p workload == nullptr omits the block (server-side
 * stats documents).
 */
std::string serveReportJson(const ServeInfo& info,
                            std::span<const ClassStats> classes,
                            const ServeTotals& totals,
                            const WorkloadDesc* workload = nullptr);

} // namespace crono::serve

#endif // CRONO_SERVE_REPORT_H_

/**
 * @file
 * Delta-CSR overlay and epoch snapshots (DESIGN.md §17.2).
 *
 * The base graph is the immutable CSR everything else in the tree
 * computes on — reordered and blocked-layout-equipped like any PR-5
 * input. Ingest never touches it: each accepted edge batch becomes an
 * immutable DeltaBatch (a miniature CSR of just the new edges, in the
 * base's internal id space, mirrored when the base is undirected)
 * chained onto the previous one, and a new Snapshot is published that
 * shares the base and points at the longer chain.
 *
 * A Snapshot is therefore a persistent (in the functional-programming
 * sense) graph version: queries that pinned epoch E keep a shared_ptr
 * and see exactly E's edge multiset forever, while ingest publishes
 * E+1, E+2, ... beside it. Compaction (store.h) folds the chain into
 * a fresh base and re-runs the reordering, publishing a snapshot with
 * an empty overlay — pinned older epochs stay valid because nothing
 * is mutated, only superseded.
 *
 * materialized() is the bridge to the kernel layer: the first caller
 * per snapshot merges base + chain into one ordinary graph::Graph
 * (same internal id space, adjacency rows re-sorted, parallel edges
 * preserved) and the result is cached, so every query class runs the
 * existing core:: kernels against an honest CSR while paying the
 * merge once per epoch. A snapshot with an empty overlay returns the
 * base itself — post-compaction serving is zero-copy.
 */

#ifndef CRONO_SERVE_DELTA_CSR_H_
#define CRONO_SERVE_DELTA_CSR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "graph/builder.h"
#include "graph/graph.h"
#include "graph/reorder.h"

namespace crono::serve {

/**
 * One immutable ingest batch: the new edges grouped by (internal)
 * source vertex, chained onto the batch before it. Edges are stored
 * exactly as accepted — already mirrored for undirected bases — so
 * walking a chain enumerates directed edge slots just like a CSR row.
 */
class DeltaBatch {
  public:
    /**
     * @param edges internal-space directed edge slots of this batch
     * @param prev  the previous batch, or nullptr for the first
     */
    DeltaBatch(std::vector<graph::Edge> edges,
               std::shared_ptr<const DeltaBatch> prev);

    /** Directed edge slots in this batch alone. */
    std::uint64_t edgeCount() const { return edges_.size(); }

    /** Directed edge slots in this batch and every predecessor. */
    std::uint64_t totalEdges() const { return totalEdges_; }

    /** Chain length including this batch. */
    std::uint32_t depth() const { return depth_; }

    const std::shared_ptr<const DeltaBatch>& prev() const
    {
        return prev_;
    }

    /** Extra out-degree of @p v contributed by this batch alone. */
    std::uint64_t degreeOf(graph::VertexId v) const;

    /** Invoke fn(dst, weight) for each of @p v's edges in this batch. */
    template <class Fn>
    void
    forEachEdge(graph::VertexId v, Fn&& fn) const
    {
        const auto [lo, hi] = rangeOf(v);
        for (std::size_t i = lo; i < hi; ++i) {
            fn(edges_[i].dst, edges_[i].weight);
        }
    }

    /** All edge slots of this batch alone (sorted by src). */
    std::span<const graph::Edge> edges() const { return edges_; }

  private:
    /** [begin, end) index range of @p v's edges in edges_. */
    std::pair<std::size_t, std::size_t>
    rangeOf(graph::VertexId v) const;

    std::vector<graph::Edge> edges_; ///< sorted by (src, dst)
    std::shared_ptr<const DeltaBatch> prev_;
    std::uint64_t totalEdges_ = 0;
    std::uint32_t depth_ = 0;
};

/**
 * One immutable graph version. See the file header; all vertex ids in
 * this interface are *internal* (post-reordering) — the permutation
 * maps them to the external ids clients speak.
 */
class Snapshot {
  public:
    Snapshot(std::uint64_t epoch, std::shared_ptr<const graph::Graph> base,
             std::shared_ptr<const graph::VertexPermutation> perm,
             std::shared_ptr<const DeltaBatch> delta);

    std::uint64_t epoch() const { return epoch_; }

    graph::VertexId numVertices() const { return base_->numVertices(); }

    /** Directed edge slots: base plus the whole overlay chain. */
    std::uint64_t
    numEdges() const
    {
        return base_->numEdges() + deltaEdges();
    }

    /** Directed edge slots contributed by the overlay. */
    std::uint64_t
    deltaEdges() const
    {
        return delta_ != nullptr ? delta_->totalEdges() : 0;
    }

    /** Overlay chain length (0 right after build/compaction). */
    std::uint32_t
    deltaDepth() const
    {
        return delta_ != nullptr ? delta_->depth() : 0;
    }

    const graph::Graph& base() const { return *base_; }

    /** External-id <-> internal-id mapping of this version. */
    const graph::VertexPermutation& perm() const { return *perm_; }

    graph::VertexId
    toInternal(graph::VertexId external) const
    {
        return perm_->toNew(external);
    }

    graph::VertexId
    toExternal(graph::VertexId internal) const
    {
        return perm_->toOld(internal);
    }

    /** Out-degree of internal vertex @p v, overlay included. */
    std::uint64_t degree(graph::VertexId v) const;

    /** fn(dst, weight) over base edges then overlay edges of @p v. */
    template <class Fn>
    void
    forEachEdge(graph::VertexId v, Fn&& fn) const
    {
        const std::span<const graph::VertexId> nbr = base_->neighbors(v);
        const std::span<const graph::Weight> w = base_->weights(v);
        for (std::size_t i = 0; i < nbr.size(); ++i) {
            fn(nbr[i], w[i]);
        }
        for (const DeltaBatch* b = delta_.get(); b != nullptr;
             b = b->prev().get()) {
            b->forEachEdge(v, fn);
        }
    }

    /**
     * The merged CSR of this version (see file header). Built lazily
     * by the first caller, cached for the snapshot's lifetime;
     * thread-safe. With an empty overlay this is the base itself.
     */
    const graph::Graph& materialized() const;

    /** The overlay chain tail (nullptr when compacted). */
    const std::shared_ptr<const DeltaBatch>& deltaChain() const
    {
        return delta_;
    }

  private:
    std::uint64_t epoch_;
    std::shared_ptr<const graph::Graph> base_;
    std::shared_ptr<const graph::VertexPermutation> perm_;
    std::shared_ptr<const DeltaBatch> delta_;
    mutable std::once_flag materializeOnce_;
    mutable std::shared_ptr<const graph::Graph> materialized_;
};

} // namespace crono::serve

#endif // CRONO_SERVE_DELTA_CSR_H_

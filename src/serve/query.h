/**
 * @file
 * QueryEngine: turns decoded requests into responses against one
 * GraphStore (DESIGN.md §17.3).
 *
 * Every read query pins a snapshot up front and computes exclusively
 * against it, so a response's epoch field is exact: the answer is a
 * pure function of that epoch's edge multiset. Point lookups ride on
 * full single-source results (an SSSP answers every future target
 * from the same source at that epoch), so the engine keeps a small
 * LRU of per-(epoch, class, source) kernel results; PageRank,
 * components and the top-k orders are per-epoch and shared by every
 * session.
 *
 * Kernel runs are serialized on an internal mutex — rt::NativeExecutor
 * regions may not overlap — but cache hits bypass it entirely: the
 * common steady state (many clients, few distinct sources, ingest
 * every few seconds) answers most requests from immutable cached
 * arrays with no lock but the LRU's own.
 *
 * Determinism: BFS levels, SSSP distances and component labels are
 * deterministic outright; PageRank runs in gather mode (fixed CSR
 * summation order), so repeated queries at a pinned epoch are
 * bit-for-bit reproducible — the property serve_snapshot_test and the
 * serve differential oracle lean on. Component labels and top-k
 * orders are canonicalized to external ids (min-external-id
 * representative; score-then-id ordering) so answers are stable
 * across reorderings and shard counts too.
 */

#ifndef CRONO_SERVE_QUERY_H_
#define CRONO_SERVE_QUERY_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/aligned.h"
#include "runtime/executor.h"
#include "serve/delta_csr.h"
#include "serve/protocol.h"
#include "serve/store.h"

namespace crono::serve {

/** Query-side tuning knobs. */
struct QueryConfig {
    /** Threads per kernel run (the executor's pool is shared). */
    int nthreads = 2;
    /** Exact PageRank iterations behind kRankScore / kTopRank. */
    unsigned pagerank_iterations = 20;
    /** PageRank damping (the paper's r). */
    double damping = 0.15;
    /** Cached kernel results across all classes (LRU). */
    std::size_t cache_capacity = 32;
};

class QueryEngine {
  public:
    QueryEngine(GraphStore& store, rt::NativeExecutor& exec,
                QueryConfig config = {});

    QueryEngine(const QueryEngine&) = delete;
    QueryEngine& operator=(const QueryEngine&) = delete;

    /**
     * Execute @p req and return its response. Read queries pin the
     * current snapshot; kIngest/kCompact go to the store; kStats
     * returns the installed provider's document (empty-stats fallback
     * without one).
     */
    Response execute(const Request& req);

    /**
     * Execute @p req against a caller-pinned snapshot instead of the
     * store's current one (the server's per-shard batching uses this
     * to serve one drained batch against one epoch). Mutating ops
     * fall through to execute().
     */
    Response executeOn(const Request& req,
                       const std::shared_ptr<const Snapshot>& snap);

    /** Install the kStats document source (the server's report). */
    void
    setStatsProvider(std::function<std::string()> fn)
    {
        statsFn_ = std::move(fn);
    }

    const QueryConfig& config() const { return config_; }

  private:
    /** Cached kernel-result classes (cache key namespace). */
    enum class Kind : std::uint8_t {
        kSssp = 0,
        kBfs,
        kComponents,
        kRank,
        kDegreeOrder,
        kRankOrder,
    };

    /** Component labels plus their external-id canonicalization. */
    struct Components {
        /** Internal representative per internal vertex. */
        AlignedVector<graph::VertexId> label;
        /** Min external id in the component of internal vertex v. */
        AlignedVector<graph::VertexId> canon;
    };

    /** One (score, external id) per vertex, best first. */
    using TopOrder = std::vector<std::pair<std::uint64_t,
                                           graph::VertexId>>;

    /** LRU lookup; nullptr on miss. */
    std::shared_ptr<const void> cacheGet(std::uint64_t epoch, Kind kind,
                                         graph::VertexId source);

    /** LRU insert (evicts the coldest entry past capacity). */
    void cachePut(std::uint64_t epoch, Kind kind, graph::VertexId source,
                  std::shared_ptr<const void> data);

    std::shared_ptr<const AlignedVector<graph::Dist>>
    ssspDists(const Snapshot& snap, graph::VertexId internal_source);

    std::shared_ptr<const AlignedVector<std::uint32_t>>
    bfsLevels(const Snapshot& snap, graph::VertexId internal_source);

    std::shared_ptr<const Components> components(const Snapshot& snap);

    std::shared_ptr<const AlignedVector<double>>
    ranks(const Snapshot& snap);

    std::shared_ptr<const TopOrder> degreeOrder(const Snapshot& snap);

    std::shared_ptr<const TopOrder> rankOrder(const Snapshot& snap);

    GraphStore& store_;
    rt::NativeExecutor& exec_;
    QueryConfig config_;
    std::function<std::string()> statsFn_;

    std::mutex kernelMutex_; ///< executor regions may not overlap

    struct CacheEntry {
        std::uint64_t epoch;
        Kind kind;
        graph::VertexId source;
        std::shared_ptr<const void> data;
    };
    std::mutex cacheMutex_;
    std::list<CacheEntry> cache_; ///< front = hottest
};

} // namespace crono::serve

#endif // CRONO_SERVE_QUERY_H_

/**
 * @file
 * Wire codec implementation. Everything bounds-checks against the
 * frame it was handed; nothing trusts a count field before checking
 * it against both its own ceiling and the bytes actually present.
 */

#include "serve/protocol.h"

#include <cstring>

namespace crono::serve {

const char*
opName(Op op)
{
    switch (op) {
      case Op::kPing: return "ping";
      case Op::kBfsDist: return "bfs";
      case Op::kSsspDist: return "sssp";
      case Op::kSsspBatch: return "sssp_batch";
      case Op::kComponent: return "component";
      case Op::kRankScore: return "rank";
      case Op::kTopDegree: return "top_degree";
      case Op::kTopRank: return "top_rank";
      case Op::kIngest: return "ingest";
      case Op::kCompact: return "compact";
      case Op::kStats: return "stats";
    }
    return "unknown";
}

const char*
statusName(Status s)
{
    switch (s) {
      case Status::kOk: return "ok";
      case Status::kMalformed: return "malformed";
      case Status::kUnknownOp: return "unknown-op";
      case Status::kBadVertex: return "bad-vertex";
      case Status::kTooLarge: return "too-large";
      case Status::kRejected: return "rejected";
    }
    return "unknown";
}

Response
errorResponse(std::uint32_t id, Status status, std::uint64_t epoch)
{
    Response r;
    r.id = id;
    r.status = status;
    r.epoch = epoch;
    return r;
}

namespace {

// Little-endian primitive writers. Explicit byte stores keep the wire
// format host-endianness-independent.

void
putU8(std::uint8_t v, std::vector<std::uint8_t>* out)
{
    out->push_back(v);
}

void
putU32(std::uint32_t v, std::vector<std::uint8_t>* out)
{
    for (int i = 0; i < 4; ++i) {
        out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

void
putU64(std::uint64_t v, std::vector<std::uint8_t>* out)
{
    for (int i = 0; i < 8; ++i) {
        out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

/** Bounds-checked little-endian reader over one frame payload. */
class Cursor {
  public:
    explicit Cursor(std::span<const std::uint8_t> data) : data_(data) {}

    bool
    u8(std::uint8_t* v)
    {
        if (data_.size() - pos_ < 1) {
            return false;
        }
        *v = data_[pos_++];
        return true;
    }

    bool
    u32(std::uint32_t* v)
    {
        if (data_.size() - pos_ < 4) {
            return false;
        }
        *v = 0;
        for (int i = 0; i < 4; ++i) {
            *v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<
                      std::size_t>(i)])
                  << (8 * i);
        }
        pos_ += 4;
        return true;
    }

    bool
    u64(std::uint64_t* v)
    {
        if (data_.size() - pos_ < 8) {
            return false;
        }
        *v = 0;
        for (int i = 0; i < 8; ++i) {
            *v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<
                      std::size_t>(i)])
                  << (8 * i);
        }
        pos_ += 8;
        return true;
    }

    /** Remaining unread bytes. */
    std::size_t left() const { return data_.size() - pos_; }

    bool
    bytes(std::size_t n, std::string* out)
    {
        if (left() < n) {
            return false;
        }
        out->assign(reinterpret_cast<const char*>(data_.data() + pos_),
                    n);
        pos_ += n;
        return true;
    }

  private:
    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
};

/** Patch a frame's length prefix once its payload is fully appended. */
class FrameScope {
  public:
    explicit FrameScope(std::vector<std::uint8_t>* out) : out_(out)
    {
        lenAt_ = out->size();
        putU32(0, out);
    }

    ~FrameScope()
    {
        const auto len = static_cast<std::uint32_t>(
            out_->size() - lenAt_ - 4);
        for (int i = 0; i < 4; ++i) {
            (*out_)[lenAt_ + static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(len >> (8 * i));
        }
    }

  private:
    std::vector<std::uint8_t>* out_;
    std::size_t lenAt_;
};

} // namespace

void
encodeRequest(const Request& r, std::vector<std::uint8_t>* out)
{
    FrameScope frame(out);
    putU32(r.id, out);
    putU8(static_cast<std::uint8_t>(r.op), out);
    switch (r.op) {
      case Op::kPing:
      case Op::kCompact:
      case Op::kStats:
        break;
      case Op::kBfsDist:
      case Op::kSsspDist:
        putU32(r.source, out);
        putU32(r.target, out);
        break;
      case Op::kSsspBatch:
        putU32(r.source, out);
        putU32(static_cast<std::uint32_t>(r.targets.size()), out);
        for (const graph::VertexId t : r.targets) {
            putU32(t, out);
        }
        break;
      case Op::kComponent:
      case Op::kRankScore:
        putU32(r.source, out);
        break;
      case Op::kTopDegree:
      case Op::kTopRank:
        putU32(r.k, out);
        break;
      case Op::kIngest:
        putU32(static_cast<std::uint32_t>(r.edges.size()), out);
        for (const graph::Edge& e : r.edges) {
            putU32(e.src, out);
            putU32(e.dst, out);
            putU32(e.weight, out);
        }
        break;
    }
}

void
encodeResponse(const Response& r, std::vector<std::uint8_t>* out)
{
    FrameScope frame(out);
    putU32(r.id, out);
    putU8(static_cast<std::uint8_t>(r.status), out);
    putU64(r.epoch, out);
    putU32(static_cast<std::uint32_t>(r.values.size()), out);
    for (const std::uint64_t v : r.values) {
        putU64(v, out);
    }
    putU32(static_cast<std::uint32_t>(r.vertices.size()), out);
    for (const graph::VertexId v : r.vertices) {
        putU32(v, out);
    }
    putU32(static_cast<std::uint32_t>(r.text.size()), out);
    out->insert(out->end(), r.text.begin(), r.text.end());
}

Status
decodeRequest(std::span<const std::uint8_t> payload, Request* out)
{
    *out = Request{};
    Cursor c(payload);
    std::uint8_t op = 0;
    if (!c.u32(&out->id) || !c.u8(&op)) {
        return Status::kMalformed;
    }
    if (op >= kNumOps) {
        return Status::kUnknownOp;
    }
    out->op = static_cast<Op>(op);
    switch (out->op) {
      case Op::kPing:
      case Op::kCompact:
      case Op::kStats:
        break;
      case Op::kBfsDist:
      case Op::kSsspDist:
        if (!c.u32(&out->source) || !c.u32(&out->target)) {
            return Status::kMalformed;
        }
        break;
      case Op::kSsspBatch: {
        std::uint32_t n = 0;
        if (!c.u32(&out->source) || !c.u32(&n)) {
            return Status::kMalformed;
        }
        if (n > kMaxBatchTargets) {
            return Status::kTooLarge;
        }
        // Check the claimed count against the bytes actually present
        // before reserving anything.
        if (c.left() < static_cast<std::size_t>(n) * 4) {
            return Status::kMalformed;
        }
        out->targets.resize(n);
        for (std::uint32_t i = 0; i < n; ++i) {
            if (!c.u32(&out->targets[i])) {
                return Status::kMalformed;
            }
        }
        break;
      }
      case Op::kComponent:
      case Op::kRankScore:
        if (!c.u32(&out->source)) {
            return Status::kMalformed;
        }
        break;
      case Op::kTopDegree:
      case Op::kTopRank:
        if (!c.u32(&out->k)) {
            return Status::kMalformed;
        }
        if (out->k > kMaxTopK) {
            return Status::kTooLarge;
        }
        break;
      case Op::kIngest: {
        std::uint32_t n = 0;
        if (!c.u32(&n)) {
            return Status::kMalformed;
        }
        if (n > kMaxIngestEdges) {
            return Status::kTooLarge;
        }
        if (c.left() < static_cast<std::size_t>(n) * 12) {
            return Status::kMalformed;
        }
        out->edges.resize(n);
        for (std::uint32_t i = 0; i < n; ++i) {
            graph::Edge& e = out->edges[i];
            if (!c.u32(&e.src) || !c.u32(&e.dst) || !c.u32(&e.weight)) {
                return Status::kMalformed;
            }
        }
        break;
      }
    }
    if (c.left() != 0) {
        return Status::kMalformed; // trailing garbage
    }
    return Status::kOk;
}

Status
decodeResponse(std::span<const std::uint8_t> payload, Response* out)
{
    *out = Response{};
    Cursor c(payload);
    std::uint8_t status = 0;
    if (!c.u32(&out->id) || !c.u8(&status) || !c.u64(&out->epoch)) {
        return Status::kMalformed;
    }
    out->status = static_cast<Status>(status);
    std::uint32_t n = 0;
    if (!c.u32(&n) || c.left() < static_cast<std::size_t>(n) * 8) {
        return Status::kMalformed;
    }
    out->values.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        if (!c.u64(&out->values[i])) {
            return Status::kMalformed;
        }
    }
    if (!c.u32(&n) || c.left() < static_cast<std::size_t>(n) * 4) {
        return Status::kMalformed;
    }
    out->vertices.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        if (!c.u32(&out->vertices[i])) {
            return Status::kMalformed;
        }
    }
    if (!c.u32(&n) || !c.bytes(n, &out->text)) {
        return Status::kMalformed;
    }
    if (c.left() != 0) {
        return Status::kMalformed;
    }
    return Status::kOk;
}

void
FrameSplitter::feed(std::span<const std::uint8_t> data)
{
    if (poisoned_) {
        return;
    }
    buf_.insert(buf_.end(), data.begin(), data.end());
}

std::optional<std::vector<std::uint8_t>>
FrameSplitter::next()
{
    if (poisoned_ || buf_.size() - pos_ < 4) {
        return std::nullopt;
    }
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
        len |= static_cast<std::uint32_t>(
                   buf_[pos_ + static_cast<std::size_t>(i)])
               << (8 * i);
    }
    if (len > kMaxFrameBytes) {
        poisoned_ = true;
        return std::nullopt;
    }
    if (buf_.size() - pos_ - 4 < len) {
        return std::nullopt;
    }
    std::vector<std::uint8_t> payload(
        buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + 4),
        buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + 4 + len));
    pos_ += 4 + len;
    // Reclaim consumed prefix once it dominates the buffer.
    if (pos_ > 4096 && pos_ > buf_.size() / 2) {
        buf_.erase(buf_.begin(), buf_.begin() +
                                     static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    return payload;
}

} // namespace crono::serve

/**
 * @file
 * Wire protocol of the graph query server (DESIGN.md §17.1).
 *
 * Transport framing is length-prefixed binary: every message is a
 * 4-byte little-endian payload length followed by that many payload
 * bytes. Inside a frame, requests are
 *
 *   [u32 id][u8 opcode][op-specific fields, little-endian]
 *
 * and responses are self-describing regardless of opcode:
 *
 *   [u32 id][u8 status][u64 epoch]
 *   [u32 n_values][n x u64][u32 n_vertices][n x u32][u32 n_text][bytes]
 *
 * so a client can always skip a response it does not understand, and
 * the codec has exactly one response decoder to fuzz. Floating-point
 * results (PageRank scores) travel as IEEE-754 bit patterns inside
 * the u64 value array; the kStats payload is a crono.serve.v1 JSON
 * document in the text field (the protocol's "JSON half").
 *
 * Every response carries the epoch its request was served against,
 * which is what makes snapshot isolation testable over the wire: two
 * responses with equal epochs came from the same immutable graph.
 *
 * Robustness contract (enforced by tests/serve_protocol_test.cpp's
 * fuzz loop): a decoder never reads past the frame, rejects truncated
 * fields, count fields larger than the remaining payload, unknown
 * opcodes and trailing garbage, and a FrameSplitter fed an oversized
 * or negative-looking length prefix poisons the stream instead of
 * allocating the attacker's number.
 */

#ifndef CRONO_SERVE_PROTOCOL_H_
#define CRONO_SERVE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/builder.h"
#include "graph/graph.h"

namespace crono::serve {

/** Hard ceiling on one frame's payload bytes. */
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/** Ceiling on batch-lookup targets in one request. */
inline constexpr std::uint32_t kMaxBatchTargets = 1u << 14;

/** Ceiling on edges in one ingest request. */
inline constexpr std::uint32_t kMaxIngestEdges = 1u << 16;

/** Ceiling on k for the top-k queries. */
inline constexpr std::uint32_t kMaxTopK = 4096;

/** Request opcodes. */
enum class Op : std::uint8_t {
    kPing = 0,      ///< liveness probe; epoch echo only
    kBfsDist,       ///< hop count source -> target (BFS level)
    kSsspDist,      ///< weighted distance source -> target
    kSsspBatch,     ///< weighted distances source -> many targets
    kComponent,     ///< canonical component label of a vertex
    kRankScore,     ///< PageRank score of a vertex
    kTopDegree,     ///< k highest-degree vertices (degree centrality)
    kTopRank,       ///< k highest-PageRank vertices
    kIngest,        ///< append an edge-update batch (new epoch)
    kCompact,       ///< force delta compaction (new epoch)
    kStats,         ///< server statistics as crono.serve.v1 JSON
};

/** Number of opcodes (for per-class metric arrays). */
inline constexpr int kNumOps = 11;

/** Printable request-class name, e.g. "sssp_batch". */
const char* opName(Op op);

/** Response status. */
enum class Status : std::uint8_t {
    kOk = 0,
    kMalformed,    ///< payload did not parse (truncated / trailing)
    kUnknownOp,    ///< opcode outside the table
    kBadVertex,    ///< vertex id outside [0, numVertices)
    kTooLarge,     ///< count field over its ceiling, or frame too big
    kRejected,     ///< semantically invalid (e.g. empty ingest)
};

/** Printable status name, e.g. "bad-vertex". */
const char* statusName(Status s);

/** Sentinel value meaning unreachable / not defined. */
inline constexpr std::uint64_t kNoValue = ~std::uint64_t{0};

/** One decoded request (fields beyond the opcode's are ignored). */
struct Request {
    std::uint32_t id = 0;
    Op op = Op::kPing;
    graph::VertexId source = 0;  ///< kBfsDist..kRankScore
    graph::VertexId target = 0;  ///< kBfsDist / kSsspDist
    std::uint32_t k = 0;         ///< kTopDegree / kTopRank
    std::vector<graph::VertexId> targets; ///< kSsspBatch
    std::vector<graph::Edge> edges;       ///< kIngest
};

/** One response (uniform shape; see file header for the wire form). */
struct Response {
    std::uint32_t id = 0;
    Status status = Status::kOk;
    std::uint64_t epoch = 0;
    std::vector<std::uint64_t> values;    ///< dists/levels/labels/bits
    std::vector<graph::VertexId> vertices; ///< top-k ids
    std::string text;                     ///< kStats JSON document
};

/** Shorthand: an error response echoing @p id. */
Response errorResponse(std::uint32_t id, Status status,
                       std::uint64_t epoch = 0);

// --------------------------------------------------------------- codec

/** Append one whole frame (length prefix + payload) for @p r. */
void encodeRequest(const Request& r, std::vector<std::uint8_t>* out);

/** Append one whole frame for @p r. */
void encodeResponse(const Response& r, std::vector<std::uint8_t>* out);

/**
 * Decode a request frame *payload* (no length prefix). On any error
 * the returned status is not kOk and @p out is default-initialized
 * except for the id when at least the id parsed (so the error can be
 * attributed).
 */
Status decodeRequest(std::span<const std::uint8_t> payload, Request* out);

/** Decode a response frame payload (same contract as decodeRequest). */
Status decodeResponse(std::span<const std::uint8_t> payload,
                      Response* out);

// ------------------------------------------------------------- framing

/**
 * Incremental length-prefix splitter. Feed arbitrary byte chunks;
 * next() hands back complete payloads one at a time. A length prefix
 * over kMaxFrameBytes poisons the splitter (poisoned() stays true and
 * next() never yields again) — the session layer turns that into a
 * kTooLarge response and a close, never an allocation of the claimed
 * size.
 */
class FrameSplitter {
  public:
    /** Append raw transport bytes. No-op when poisoned. */
    void feed(std::span<const std::uint8_t> data);

    /** The next complete frame payload, if one is buffered. */
    std::optional<std::vector<std::uint8_t>> next();

    /** True once an oversized length prefix was seen. */
    bool poisoned() const { return poisoned_; }

    /** Bytes buffered but not yet returned (for tests). */
    std::size_t pending() const { return buf_.size() - pos_; }

  private:
    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
    bool poisoned_ = false;
};

} // namespace crono::serve

#endif // CRONO_SERVE_PROTOCOL_H_

/**
 * @file
 * QueryEngine implementation: snapshot pinning, result caching, and
 * the per-opcode answer assembly.
 */

#include "serve/query.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/macros.h"
#include "core/bfs.h"
#include "core/connected_components.h"
#include "core/pagerank.h"
#include "core/sssp.h"

namespace crono::serve {

QueryEngine::QueryEngine(GraphStore& store, rt::NativeExecutor& exec,
                         QueryConfig config)
    : store_(store), exec_(exec), config_(config)
{
    CRONO_REQUIRE(config_.nthreads >= 1, "query engine needs threads");
    CRONO_REQUIRE(config_.cache_capacity >= 1, "cache capacity >= 1");
}

std::shared_ptr<const void>
QueryEngine::cacheGet(std::uint64_t epoch, Kind kind,
                      graph::VertexId source)
{
    std::lock_guard<std::mutex> lock(cacheMutex_);
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
        if (it->epoch == epoch && it->kind == kind &&
            it->source == source) {
            cache_.splice(cache_.begin(), cache_, it);
            return cache_.front().data;
        }
    }
    return nullptr;
}

void
QueryEngine::cachePut(std::uint64_t epoch, Kind kind,
                      graph::VertexId source,
                      std::shared_ptr<const void> data)
{
    std::lock_guard<std::mutex> lock(cacheMutex_);
    cache_.push_front(CacheEntry{epoch, kind, source, std::move(data)});
    while (cache_.size() > config_.cache_capacity) {
        cache_.pop_back();
    }
}

std::shared_ptr<const AlignedVector<graph::Dist>>
QueryEngine::ssspDists(const Snapshot& snap,
                       graph::VertexId internal_source)
{
    if (auto hit = cacheGet(snap.epoch(), Kind::kSssp, internal_source)) {
        return std::static_pointer_cast<
            const AlignedVector<graph::Dist>>(hit);
    }
    std::lock_guard<std::mutex> lock(kernelMutex_);
    if (auto hit = cacheGet(snap.epoch(), Kind::kSssp, internal_source)) {
        return std::static_pointer_cast<
            const AlignedVector<graph::Dist>>(hit);
    }
    core::SsspResult r = core::sssp(exec_, config_.nthreads,
                                    snap.materialized(), internal_source);
    auto dists = std::make_shared<const AlignedVector<graph::Dist>>(
        std::move(r.dist));
    cachePut(snap.epoch(), Kind::kSssp, internal_source, dists);
    return dists;
}

std::shared_ptr<const AlignedVector<std::uint32_t>>
QueryEngine::bfsLevels(const Snapshot& snap,
                       graph::VertexId internal_source)
{
    if (auto hit = cacheGet(snap.epoch(), Kind::kBfs, internal_source)) {
        return std::static_pointer_cast<
            const AlignedVector<std::uint32_t>>(hit);
    }
    std::lock_guard<std::mutex> lock(kernelMutex_);
    if (auto hit = cacheGet(snap.epoch(), Kind::kBfs, internal_source)) {
        return std::static_pointer_cast<
            const AlignedVector<std::uint32_t>>(hit);
    }
    core::BfsResult r = core::bfs(exec_, config_.nthreads,
                                  snap.materialized(), internal_source);
    auto levels = std::make_shared<const AlignedVector<std::uint32_t>>(
        std::move(r.level));
    cachePut(snap.epoch(), Kind::kBfs, internal_source, levels);
    return levels;
}

std::shared_ptr<const QueryEngine::Components>
QueryEngine::components(const Snapshot& snap)
{
    if (auto hit = cacheGet(snap.epoch(), Kind::kComponents, 0)) {
        return std::static_pointer_cast<const Components>(hit);
    }
    std::lock_guard<std::mutex> lock(kernelMutex_);
    if (auto hit = cacheGet(snap.epoch(), Kind::kComponents, 0)) {
        return std::static_pointer_cast<const Components>(hit);
    }
    core::ConnectedComponentsResult r = core::connectedComponents(
        exec_, config_.nthreads, snap.materialized());
    auto comp = std::make_shared<Components>();
    comp->label = std::move(r.label);
    // Canonicalize to the minimum external id per component so the
    // answer is independent of the reordering of this epoch.
    const graph::VertexId n = snap.numVertices();
    AlignedVector<graph::VertexId> min_ext(n, graph::kNoVertex);
    for (graph::VertexId v = 0; v < n; ++v) {
        const graph::VertexId rep = comp->label[v];
        min_ext[rep] = std::min(min_ext[rep], snap.toExternal(v));
    }
    comp->canon.resize(n);
    for (graph::VertexId v = 0; v < n; ++v) {
        comp->canon[v] = min_ext[comp->label[v]];
    }
    std::shared_ptr<const Components> out = comp;
    cachePut(snap.epoch(), Kind::kComponents, 0, out);
    return out;
}

std::shared_ptr<const AlignedVector<double>>
QueryEngine::ranks(const Snapshot& snap)
{
    if (auto hit = cacheGet(snap.epoch(), Kind::kRank, 0)) {
        return std::static_pointer_cast<
            const AlignedVector<double>>(hit);
    }
    std::lock_guard<std::mutex> lock(kernelMutex_);
    if (auto hit = cacheGet(snap.epoch(), Kind::kRank, 0)) {
        return std::static_pointer_cast<
            const AlignedVector<double>>(hit);
    }
    // Gather mode: deterministic summation order, so a pinned epoch
    // answers rank queries bit-for-bit reproducibly.
    core::PageRankResult r = core::pageRank(
        exec_, config_.nthreads, snap.materialized(),
        config_.pagerank_iterations, config_.damping, nullptr,
        core::PageRankMode::kGather);
    auto ranks = std::make_shared<const AlignedVector<double>>(
        std::move(r.rank));
    cachePut(snap.epoch(), Kind::kRank, 0, ranks);
    return ranks;
}

namespace {

/** Best-first comparator: higher score, then smaller external id. */
bool
betterThan(const std::pair<std::uint64_t, graph::VertexId>& a,
           const std::pair<std::uint64_t, graph::VertexId>& b)
{
    return a.first != b.first ? a.first > b.first : a.second < b.second;
}

} // namespace

std::shared_ptr<const QueryEngine::TopOrder>
QueryEngine::degreeOrder(const Snapshot& snap)
{
    if (auto hit = cacheGet(snap.epoch(), Kind::kDegreeOrder, 0)) {
        return std::static_pointer_cast<const TopOrder>(hit);
    }
    const graph::VertexId n = snap.numVertices();
    auto order = std::make_shared<TopOrder>();
    order->reserve(n);
    for (graph::VertexId v = 0; v < n; ++v) {
        order->emplace_back(snap.degree(v), snap.toExternal(v));
    }
    const std::size_t keep =
        std::min<std::size_t>(order->size(), kMaxTopK);
    std::partial_sort(order->begin(),
                      order->begin() + static_cast<std::ptrdiff_t>(keep),
                      order->end(), betterThan);
    order->resize(keep);
    std::shared_ptr<const TopOrder> out = order;
    cachePut(snap.epoch(), Kind::kDegreeOrder, 0, out);
    return out;
}

std::shared_ptr<const QueryEngine::TopOrder>
QueryEngine::rankOrder(const Snapshot& snap)
{
    if (auto hit = cacheGet(snap.epoch(), Kind::kRankOrder, 0)) {
        return std::static_pointer_cast<const TopOrder>(hit);
    }
    const std::shared_ptr<const AlignedVector<double>> rank =
        ranks(snap);
    const graph::VertexId n = snap.numVertices();
    auto order = std::make_shared<TopOrder>();
    order->reserve(n);
    for (graph::VertexId v = 0; v < n; ++v) {
        // IEEE-754 bit pattern: ranks are non-negative, and for
        // non-negative doubles the bit order is the value order, so
        // the u64 comparator sorts by score exactly.
        order->emplace_back(std::bit_cast<std::uint64_t>((*rank)[v]),
                            snap.toExternal(v));
    }
    const std::size_t keep =
        std::min<std::size_t>(order->size(), kMaxTopK);
    std::partial_sort(order->begin(),
                      order->begin() + static_cast<std::ptrdiff_t>(keep),
                      order->end(), betterThan);
    order->resize(keep);
    std::shared_ptr<const TopOrder> out = order;
    cachePut(snap.epoch(), Kind::kRankOrder, 0, out);
    return out;
}

Response
QueryEngine::execute(const Request& req)
{
    switch (req.op) {
      case Op::kIngest: {
        // Kernel mutex held: compaction (auto or forced) runs
        // reorderGraph, which records on the (kHost, 0) obs track —
        // the same single-writer track the kernels' host spans use.
        std::lock_guard<std::mutex> lock(kernelMutex_);
        std::uint64_t epoch = 0;
        const Status s = store_.ingestBatch(req.edges, &epoch);
        Response r = errorResponse(req.id, s, epoch);
        if (s == Status::kOk) {
            r.values.push_back(req.edges.size());
        } else {
            r.epoch = store_.snapshot()->epoch();
        }
        return r;
      }
      case Op::kCompact: {
        std::lock_guard<std::mutex> lock(kernelMutex_);
        Response r;
        r.id = req.id;
        r.epoch = store_.compact();
        return r;
      }
      case Op::kStats: {
        Response r;
        r.id = req.id;
        r.epoch = store_.snapshot()->epoch();
        r.text = statsFn_ ? statsFn_() : std::string("{}");
        return r;
      }
      default:
        return executeOn(req, store_.snapshot());
    }
}

Response
QueryEngine::executeOn(const Request& req,
                       const std::shared_ptr<const Snapshot>& snap)
{
    if (req.op == Op::kIngest || req.op == Op::kCompact ||
        req.op == Op::kStats) {
        return execute(req); // mutating/global ops ignore the pin
    }

    Response r;
    r.id = req.id;
    r.epoch = snap->epoch();
    const graph::VertexId n = snap->numVertices();

    switch (req.op) {
      case Op::kPing:
        break;
      case Op::kBfsDist: {
        if (req.source >= n || req.target >= n) {
            return errorResponse(req.id, Status::kBadVertex, r.epoch);
        }
        const auto levels = bfsLevels(*snap, snap->toInternal(req.source));
        const std::uint32_t lvl = (*levels)[snap->toInternal(req.target)];
        r.values.push_back(lvl == core::kNoLevel ? kNoValue : lvl);
        break;
      }
      case Op::kSsspDist: {
        if (req.source >= n || req.target >= n) {
            return errorResponse(req.id, Status::kBadVertex, r.epoch);
        }
        const auto dist = ssspDists(*snap, snap->toInternal(req.source));
        const graph::Dist d = (*dist)[snap->toInternal(req.target)];
        r.values.push_back(d == graph::kInfDist ? kNoValue : d);
        break;
      }
      case Op::kSsspBatch: {
        if (req.source >= n) {
            return errorResponse(req.id, Status::kBadVertex, r.epoch);
        }
        for (const graph::VertexId t : req.targets) {
            if (t >= n) {
                return errorResponse(req.id, Status::kBadVertex,
                                     r.epoch);
            }
        }
        const auto dist = ssspDists(*snap, snap->toInternal(req.source));
        r.values.reserve(req.targets.size());
        for (const graph::VertexId t : req.targets) {
            const graph::Dist d = (*dist)[snap->toInternal(t)];
            r.values.push_back(d == graph::kInfDist ? kNoValue : d);
        }
        break;
      }
      case Op::kComponent: {
        if (req.source >= n) {
            return errorResponse(req.id, Status::kBadVertex, r.epoch);
        }
        const auto comp = components(*snap);
        r.values.push_back(comp->canon[snap->toInternal(req.source)]);
        break;
      }
      case Op::kRankScore: {
        if (req.source >= n) {
            return errorResponse(req.id, Status::kBadVertex, r.epoch);
        }
        const auto rank = ranks(*snap);
        r.values.push_back(std::bit_cast<std::uint64_t>(
            (*rank)[snap->toInternal(req.source)]));
        break;
      }
      case Op::kTopDegree: {
        if (req.k == 0) {
            return errorResponse(req.id, Status::kRejected, r.epoch);
        }
        const auto order = degreeOrder(*snap);
        const std::size_t k =
            std::min<std::size_t>(req.k, order->size());
        for (std::size_t i = 0; i < k; ++i) {
            r.values.push_back((*order)[i].first);
            r.vertices.push_back((*order)[i].second);
        }
        break;
      }
      case Op::kTopRank: {
        if (req.k == 0) {
            return errorResponse(req.id, Status::kRejected, r.epoch);
        }
        const auto order = rankOrder(*snap);
        const std::size_t k =
            std::min<std::size_t>(req.k, order->size());
        for (std::size_t i = 0; i < k; ++i) {
            r.values.push_back((*order)[i].first);
            r.vertices.push_back((*order)[i].second);
        }
        break;
      }
      case Op::kIngest:
      case Op::kCompact:
      case Op::kStats:
        break; // handled above
    }
    return r;
}

} // namespace crono::serve

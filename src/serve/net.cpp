/**
 * @file
 * TCP listener/client implementation. All socket errors degrade to
 * clean connection teardown; nothing in here aborts the server.
 */

#include "serve/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace crono::serve {

namespace {

/** write() until done; false on any error. */
bool
sendAll(int fd, const std::uint8_t* data, std::size_t len)
{
    std::size_t sent = 0;
    while (sent < len) {
        const ssize_t n =
            ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

TcpListener::TcpListener(Server& server, std::uint16_t port)
    : server_(server)
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        return;
    }
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, 64) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        return;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr),
                      &len) == 0) {
        port_ = ntohs(addr.sin_port);
    }
}

TcpListener::~TcpListener()
{
    stop();
}

bool
TcpListener::start()
{
    if (listenFd_ < 0) {
        return false;
    }
    acceptor_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
TcpListener::stop()
{
    if (stopping_.exchange(true)) {
        return;
    }
    if (listenFd_ >= 0) {
        ::shutdown(listenFd_, SHUT_RDWR);
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (acceptor_.joinable()) {
        acceptor_.join();
    }
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (const int fd : connFds_) {
            ::shutdown(fd, SHUT_RDWR);
        }
        threads = std::move(connThreads_);
    }
    for (std::thread& t : threads) {
        t.join();
    }
}

void
TcpListener::acceptLoop()
{
    while (!stopping_) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_) {
                return;
            }
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        std::lock_guard<std::mutex> lock(connMutex_);
        if (stopping_) {
            ::close(fd);
            return;
        }
        connFds_.push_back(fd);
        connThreads_.emplace_back(
            [this, fd] { connectionLoop(fd); });
    }
}

void
TcpListener::connectionLoop(int fd)
{
    const std::shared_ptr<Session> session = server_.openSession();

    // Writer: drain the session's output to the socket until the
    // session is done (reader saw EOF / framing poisoned) or the
    // socket dies.
    std::thread writer([session, fd] {
        while (true) {
            const std::vector<std::uint8_t> bytes =
                session->takeOutput(/*wait=*/true);
            if (bytes.empty()) {
                return; // done and drained
            }
            if (!sendAll(fd, bytes.data(), bytes.size())) {
                return;
            }
        }
    });

    std::vector<std::uint8_t> buf(1 << 14);
    while (!stopping_) {
        const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
        if (n <= 0) {
            break;
        }
        server_.feed(session,
                     {buf.data(), static_cast<std::size_t>(n)});
        if (session->closing()) {
            break; // oversized frame: error already queued
        }
    }
    session->markDone();
    ::shutdown(fd, SHUT_RDWR);
    writer.join();
    ::close(fd);
}

TcpClient::TcpClient(const std::string& host, std::uint16_t port)
{
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        return;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd_);
        fd_ = -1;
        return;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpClient::~TcpClient()
{
    if (fd_ >= 0) {
        ::close(fd_);
    }
}

Response
TcpClient::call(Request req)
{
    req.id = nextId_++;
    if (fd_ < 0) {
        return errorResponse(req.id, Status::kRejected);
    }
    std::vector<std::uint8_t> frame;
    encodeRequest(req, &frame);
    if (!sendAll(fd_, frame.data(), frame.size())) {
        return errorResponse(req.id, Status::kRejected);
    }
    std::vector<std::uint8_t> buf(1 << 14);
    while (true) {
        while (auto payload = rx_.next()) {
            Response r;
            if (decodeResponse(*payload, &r) == Status::kOk &&
                r.id == req.id) {
                return r;
            }
        }
        const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
        if (n <= 0) {
            return errorResponse(req.id, Status::kRejected);
        }
        rx_.feed({buf.data(), static_cast<std::size_t>(n)});
    }
}

} // namespace crono::serve

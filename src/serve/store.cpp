/**
 * @file
 * GraphStore: epoch publication, ingest validation/mirroring, and the
 * compaction that folds the overlay back through the PR-5 reordering
 * machinery.
 */

#include "serve/store.h"

#include <utility>
#include <vector>

#include "common/macros.h"

namespace crono::serve {

GraphStore::GraphStore(graph::Graph external, StoreConfig config)
    : config_(config)
{
    CRONO_REQUIRE(config_.num_shards >= 1,
                  "store needs at least one shard");
    numVertices_ = external.numVertices();
    undirected_ = external.undirected();
    graph::ReorderedGraph rg = graph::reorderGraph(
        external, config_.reordering, config_.blocked_layout);
    base_ = std::make_shared<const graph::Graph>(std::move(rg.graph));
    perm_ = std::make_shared<const graph::VertexPermutation>(
        std::move(rg.perm));
    publish(std::make_shared<const Snapshot>(1, base_, perm_, nullptr));
}

std::shared_ptr<const Snapshot>
GraphStore::snapshot() const
{
    std::lock_guard<std::mutex> lock(snapMutex_);
    return current_;
}

void
GraphStore::publish(std::shared_ptr<const Snapshot> snap)
{
    std::lock_guard<std::mutex> lock(snapMutex_);
    current_ = std::move(snap);
}

Status
GraphStore::ingestBatch(std::span<const graph::Edge> edges,
                        std::uint64_t* epoch_out)
{
    std::lock_guard<std::mutex> lock(writeMutex_);

    // Validate the whole batch in external space before touching
    // anything: an ingest is atomic — all of it lands or none does.
    std::uint64_t accepted = 0;
    for (const graph::Edge& e : edges) {
        if (e.src >= numVertices_ || e.dst >= numVertices_) {
            return Status::kBadVertex;
        }
        if (e.src != e.dst) {
            ++accepted;
        }
    }
    if (accepted == 0) {
        return Status::kRejected;
    }

    const std::shared_ptr<const Snapshot> cur = snapshot();

    // Map into the current internal id space, mirroring as the base
    // does so the overlay slots compose with CSR rows seamlessly.
    std::vector<graph::Edge> internal;
    internal.reserve(static_cast<std::size_t>(accepted) *
                     (undirected_ ? 2 : 1));
    for (const graph::Edge& e : edges) {
        if (e.src == e.dst) {
            continue;
        }
        const graph::VertexId s = cur->toInternal(e.src);
        const graph::VertexId d = cur->toInternal(e.dst);
        internal.push_back({s, d, e.weight});
        if (undirected_) {
            internal.push_back({d, s, e.weight});
        }
    }

    auto batch = std::make_shared<const DeltaBatch>(std::move(internal),
                                                    cur->deltaChain());
    const std::uint64_t epoch = cur->epoch() + 1;
    publish(std::make_shared<const Snapshot>(epoch, base_, perm_,
                                             std::move(batch)));
    batches_.fetch_add(1, std::memory_order_relaxed);
    edges_.fetch_add(accepted, std::memory_order_relaxed);
    if (epoch_out != nullptr) {
        *epoch_out = epoch;
    }

    const std::shared_ptr<const Snapshot> now = snapshot();
    if (now->deltaEdges() >= config_.compact_delta_edges ||
        now->deltaDepth() >= config_.compact_batches) {
        compactLocked();
    }
    return Status::kOk;
}

std::uint64_t
GraphStore::compact()
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    return compactLocked();
}

std::uint64_t
GraphStore::compactLocked()
{
    const std::shared_ptr<const Snapshot> cur = snapshot();
    const graph::Graph& mat = cur->materialized();

    // Reconstruct the logical edge list in external ids. Undirected
    // bases store both directions of every logical edge, so emitting
    // the v < dst slot of each pair (self loops cannot exist) yields
    // each parallel edge exactly once; the builder re-mirrors.
    graph::GraphBuilder builder(numVertices_, undirected_);
    for (graph::VertexId v = 0; v < mat.numVertices(); ++v) {
        const graph::VertexId ext_src = cur->toExternal(v);
        const std::span<const graph::VertexId> nbr = mat.neighbors(v);
        const std::span<const graph::Weight> w = mat.weights(v);
        for (std::size_t i = 0; i < nbr.size(); ++i) {
            if (undirected_ && v >= nbr[i]) {
                continue;
            }
            builder.addEdge(ext_src, cur->toExternal(nbr[i]), w[i]);
        }
    }
    builder.withReordering(config_.reordering)
        .withBlockedLayout(config_.blocked_layout);
    graph::ReorderedGraph rg = std::move(builder).buildReordered(
        graph::GraphBuilder::DedupPolicy::keepAll);

    base_ = std::make_shared<const graph::Graph>(std::move(rg.graph));
    perm_ = std::make_shared<const graph::VertexPermutation>(
        std::move(rg.perm));
    const std::uint64_t epoch = cur->epoch() + 1;
    publish(std::make_shared<const Snapshot>(epoch, base_, perm_,
                                             nullptr));
    compactions_.fetch_add(1, std::memory_order_relaxed);
    return epoch;
}

StoreStats
GraphStore::stats() const
{
    StoreStats s;
    s.epoch = snapshot()->epoch();
    s.batches_ingested = batches_.load(std::memory_order_relaxed);
    s.edges_ingested = edges_.load(std::memory_order_relaxed);
    s.compactions = compactions_.load(std::memory_order_relaxed);
    return s;
}

} // namespace crono::serve

/**
 * @file
 * TCP transport for the serve stack (POSIX sockets, loopback-first).
 *
 * TcpListener accepts connections on behalf of a Server: each
 * connection gets a Session and two threads — a reader pumping raw
 * bytes into Server::feed (framing, decode and routing happen in the
 * session/server layers; this file never parses a byte) and a writer
 * draining the session's output buffer back to the socket. TcpClient
 * is the matching synchronous client, protocol-identical to the
 * in-process serve::Client so every conformance test result holds
 * across the wire.
 *
 * This is deliberately thread-per-connection: the server's capacity
 * story lives in the shard workers and batching, not in connection
 * counts, and the tests/bench drive tens of connections, not tens of
 * thousands.
 */

#ifndef CRONO_SERVE_NET_H_
#define CRONO_SERVE_NET_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "serve/server.h"

namespace crono::serve {

class TcpListener {
  public:
    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral; see port()). Throws
     * nothing: check port() != 0 / start() return for success.
     */
    TcpListener(Server& server, std::uint16_t port);

    /** Stops and joins if still running. */
    ~TcpListener();

    TcpListener(const TcpListener&) = delete;
    TcpListener& operator=(const TcpListener&) = delete;

    /** The bound port (0 when binding failed). */
    std::uint16_t port() const { return port_; }

    /** Spawn the acceptor. @return false when binding failed. */
    bool start();

    /** Close the listener and every connection; join all threads. */
    void stop();

  private:
    void acceptLoop();
    void connectionLoop(int fd);

    Server& server_;
    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stopping_{false};
    std::thread acceptor_;

    std::mutex connMutex_;
    std::vector<int> connFds_;
    std::vector<std::thread> connThreads_;
};

/** Blocking client for a TcpListener-served endpoint. */
class TcpClient {
  public:
    TcpClient(const std::string& host, std::uint16_t port);

    ~TcpClient();

    TcpClient(const TcpClient&) = delete;
    TcpClient& operator=(const TcpClient&) = delete;

    bool connected() const { return fd_ >= 0; }

    /**
     * Assign a fresh id, send, block for the matching response.
     * Returns a kRejected response when the connection is gone.
     */
    Response call(Request req);

  private:
    int fd_ = -1;
    FrameSplitter rx_;
    std::uint32_t nextId_ = 1;
};

} // namespace crono::serve

#endif // CRONO_SERVE_NET_H_

/**
 * @file
 * Server implementation: routing, shard workers, the ingest thread,
 * and the in-process client.
 */

#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/macros.h"
#include "graph/reorder.h"
#include "obs/telemetry.h"

namespace crono::serve {

namespace {

/** Worker obs tracks sit above the kernel tids (single writer each). */
constexpr int kWorkerTrackBase = 256;
constexpr int kIngestTrackTid = 255;

std::uint64_t
steadyNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

Server::Server(GraphStore& store, rt::NativeExecutor& exec,
               ServerConfig config)
    : store_(store), engine_(store, exec, config.query),
      config_(config),
      shardQueues_(static_cast<std::size_t>(store.numShards())),
      classes_(static_cast<std::size_t>(kNumOps))
{
    CRONO_REQUIRE(config_.num_workers >= 1, "server needs a worker");
    CRONO_REQUIRE(config_.batch_max >= 1, "batch_max must be >= 1");
    config_.num_workers =
        std::min(config_.num_workers, store.numShards());
    nextShard_.assign(static_cast<std::size_t>(config_.num_workers), 0);
    engine_.setStatsProvider([this] { return statsJson(); });
}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    CRONO_REQUIRE(!running_, "server already started");
    stopping_ = false;
    running_ = true;
    start_ns_ = steadyNs();
    workers_.reserve(static_cast<std::size_t>(config_.num_workers));
    for (int w = 0; w < config_.num_workers; ++w) {
        workers_.emplace_back([this, w] { workerLoop(w); });
    }
    ingestThread_ = std::thread([this] { ingestLoop(); });
}

void
Server::stop()
{
    if (!running_.exchange(false)) {
        return;
    }
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        stopping_ = true;
        queueCv_.notify_all();
    }
    {
        std::lock_guard<std::mutex> lock(ingestMutex_);
        stopping_ = true;
        ingestCv_.notify_all();
    }
    for (std::thread& t : workers_) {
        t.join();
    }
    workers_.clear();
    if (ingestThread_.joinable()) {
        ingestThread_.join();
    }
    // Workers are gone: anything still queued is answered kRejected.
    for (std::deque<Pending>& q : shardQueues_) {
        drainReject(&q);
    }
    drainReject(&ingestQueue_);
    {
        std::lock_guard<std::mutex> lock(sessionMutex_);
        for (const std::shared_ptr<Session>& s : sessions_) {
            s->markDone();
        }
    }
}

void
Server::drainReject(std::deque<Pending>* queue)
{
    while (!queue->empty()) {
        Pending p = std::move(queue->front());
        queue->pop_front();
        finish(p, errorResponse(p.req.id, Status::kRejected,
                                store_.snapshot()->epoch()));
    }
}

std::shared_ptr<Session>
Server::openSession()
{
    std::lock_guard<std::mutex> lock(sessionMutex_);
    auto s = std::make_shared<Session>(nextSessionId_++);
    sessions_.push_back(s);
    return s;
}

void
Server::feed(const std::shared_ptr<Session>& session,
             std::span<const std::uint8_t> data)
{
    std::vector<Request> requests;
    session->feed(data, &requests);
    for (Request& req : requests) {
        route(session, std::move(req));
    }
}

void
Server::route(const std::shared_ptr<Session>& session, Request&& req)
{
    Pending p{session, std::move(req), steadyNs()};
    if (!running_ || stopping_) {
        finish(p, errorResponse(p.req.id, Status::kRejected,
                                store_.snapshot()->epoch()));
        return;
    }
    if (p.req.op == Op::kIngest || p.req.op == Op::kCompact) {
        std::lock_guard<std::mutex> lock(ingestMutex_);
        ingestQueue_.push_back(std::move(p));
        ingestCv_.notify_one();
        return;
    }
    // Shard by the source vertex's *internal* id so a batch walks one
    // contiguous range of the reordered layout. Global queries (and
    // invalid sources — the worker will answer kBadVertex) spread by
    // request id.
    const std::shared_ptr<const Snapshot> snap = store_.snapshot();
    std::size_t shard;
    const bool pointQuery =
        p.req.op == Op::kBfsDist || p.req.op == Op::kSsspDist ||
        p.req.op == Op::kSsspBatch || p.req.op == Op::kComponent ||
        p.req.op == Op::kRankScore;
    if (pointQuery && p.req.source < snap->numVertices()) {
        shard = static_cast<std::size_t>(
            store_.shardOfInternal(snap->toInternal(p.req.source)));
    } else {
        shard = p.req.id % shardQueues_.size();
    }
    std::lock_guard<std::mutex> lock(queueMutex_);
    shardQueues_[shard].push_back(std::move(p));
    queueCv_.notify_all();
}

void
Server::workerLoop(int w)
{
    obs::Track* const track = obs::trackFor(
        obs::sink(), obs::TrackKind::kHost, kWorkerTrackBase + w);
    const std::size_t num_shards = shardQueues_.size();
    const auto workers = static_cast<std::size_t>(config_.num_workers);
    const auto me = static_cast<std::size_t>(w);

    std::vector<Pending> batch;
    while (true) {
        batch.clear();
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueCv_.wait(lock, [&] {
                if (stopping_) {
                    return true;
                }
                for (std::size_t s = me; s < num_shards; s += workers) {
                    if (!shardQueues_[s].empty()) {
                        return true;
                    }
                }
                return false;
            });
            // Round-robin over owned shards so one hot shard cannot
            // starve the others; drain at most batch_max from the
            // chosen shard (one snapshot pin per batch).
            std::size_t& cursor = nextShard_[me];
            std::size_t chosen = num_shards;
            const std::size_t owned = (num_shards - me + workers - 1) /
                                      workers;
            for (std::size_t i = 0; i < owned; ++i) {
                const std::size_t s =
                    me + ((cursor + i) % owned) * workers;
                if (s < num_shards && !shardQueues_[s].empty()) {
                    chosen = s;
                    cursor = (cursor + i + 1) % owned;
                    break;
                }
            }
            if (chosen == num_shards) {
                if (stopping_) {
                    return;
                }
                continue;
            }
            std::deque<Pending>& q = shardQueues_[chosen];
            const auto take = std::min<std::size_t>(
                q.size(), static_cast<std::size_t>(config_.batch_max));
            for (std::size_t i = 0; i < take; ++i) {
                batch.push_back(std::move(q.front()));
                q.pop_front();
            }
        }
        // One epoch for the whole batch: every response in it carries
        // the same epoch, computed against one immutable graph.
        const std::shared_ptr<const Snapshot> snap = store_.snapshot();
        for (const Pending& p : batch) {
            finish(p, engine_.executeOn(p.req, snap));
        }
        obs::counterBump(track, obs::Counter::kServeBatches, 1);
        obs::counterBump(track, obs::Counter::kServeRequests,
                         batch.size());
    }
}

void
Server::ingestLoop()
{
    obs::Track* const track = obs::trackFor(
        obs::sink(), obs::TrackKind::kHost, kIngestTrackTid);
    while (true) {
        Pending p;
        {
            std::unique_lock<std::mutex> lock(ingestMutex_);
            ingestCv_.wait(lock, [&] {
                return stopping_ || !ingestQueue_.empty();
            });
            if (ingestQueue_.empty()) {
                return; // stopping
            }
            p = std::move(ingestQueue_.front());
            ingestQueue_.pop_front();
        }
        const Response r = engine_.execute(p.req);
        if (r.status == Status::kOk) {
            if (p.req.op == Op::kIngest) {
                obs::counterBump(track,
                                 obs::Counter::kServeIngestEdges,
                                 p.req.edges.size());
            } else if (p.req.op == Op::kCompact) {
                obs::counterBump(track,
                                 obs::Counter::kServeCompactions, 1);
            }
        }
        obs::counterBump(track, obs::Counter::kServeRequests, 1);
        finish(p, r);
    }
}

void
Server::finish(const Pending& p, const Response& r)
{
    const std::uint64_t latency = steadyNs() - p.enqueue_ns;
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ClassAgg& agg = classes_[static_cast<std::size_t>(p.req.op)];
        ++agg.count;
        if (r.status != Status::kOk) {
            ++agg.errors;
        }
        agg.latency_ns.add(latency);
    }
    p.session->sendResponse(r);
}

std::string
Server::statsJson() const
{
    const std::shared_ptr<const Snapshot> snap = store_.snapshot();
    const StoreStats st = store_.stats();

    ServeInfo info;
    info.num_shards = store_.numShards();
    info.reordering =
        graph::reorderingName(store_.config().reordering);
    info.epoch = snap->epoch();
    info.vertices = snap->numVertices();
    info.edge_slots = snap->numEdges();
    info.delta_edges = snap->deltaEdges();
    info.delta_depth = snap->deltaDepth();
    info.batches_ingested = st.batches_ingested;
    info.edges_ingested = st.edges_ingested;
    info.compactions = st.compactions;

    std::vector<ClassStats> classes;
    ServeTotals totals;
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        for (int op = 0; op < kNumOps; ++op) {
            const ClassAgg& agg =
                classes_[static_cast<std::size_t>(op)];
            ClassStats c;
            c.op = opName(static_cast<Op>(op));
            c.count = agg.count;
            c.errors = agg.errors;
            c.latency_ns = agg.latency_ns;
            classes.push_back(std::move(c));
            totals.requests += agg.count;
            totals.errors += agg.errors;
        }
    }
    totals.seconds =
        static_cast<double>(steadyNs() -
                            (start_ns_ != 0 ? start_ns_ : steadyNs())) /
        1e9;
    return serveReportJson(info, classes, totals, nullptr);
}

Client::Client(Server& server)
    : server_(server), session_(server.openSession())
{
}

Response
Client::call(Request req)
{
    req.id = nextId_++;
    std::vector<std::uint8_t> frame;
    encodeRequest(req, &frame);
    server_.feed(session_, frame);
    while (true) {
        const std::vector<std::uint8_t> bytes =
            session_->takeOutput(/*wait=*/true);
        if (bytes.empty()) {
            // Server shut down with our request unanswered.
            return errorResponse(req.id, Status::kRejected);
        }
        rx_.feed(bytes);
        while (auto payload = rx_.next()) {
            Response r;
            if (decodeResponse(*payload, &r) == Status::kOk &&
                r.id == req.id) {
                return r;
            }
        }
    }
}

} // namespace crono::serve

/**
 * @file
 * GraphStore: the single-writer, many-reader owner of one served
 * graph (DESIGN.md §17.2).
 *
 * Concurrency model:
 *  - Readers call snapshot() and get a shared_ptr<const Snapshot>;
 *    everything reachable from it is immutable, so a reader holds its
 *    epoch for as long as it likes with no further coordination.
 *  - Writers (the server's ingest thread, or a test calling
 *    ingestBatch directly) serialize on an internal mutex. An ingest
 *    validates the batch in the external id space, maps it through
 *    the current epoch's permutation, mirrors it if the base is
 *    undirected, chains a DeltaBatch, and publishes epoch+1.
 *  - Compaction runs on the same writer mutex: it reconstructs the
 *    external edge list from the current epoch's materialized graph,
 *    rebuilds through GraphBuilder with the configured Reordering and
 *    blocked layout (re-running the PR-5 machinery on the grown
 *    graph), and publishes a snapshot with an empty overlay. The edge
 *    multiset is preserved exactly (DedupPolicy::keepAll), so
 *    compaction is semantically invisible: epoch E+1 answers every
 *    query identically to E.
 *
 * Sharding: internal vertex ids are split into num_shards contiguous
 * ranges. Because the base is reordered, the ranges are meaningful —
 * under degree/hub orderings shard 0 holds the hot vertices — and the
 * server batches queries per shard so consecutive kernel runs touch
 * neighboring footprints.
 */

#ifndef CRONO_SERVE_STORE_H_
#define CRONO_SERVE_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>

#include "graph/builder.h"
#include "graph/graph.h"
#include "graph/reorder.h"
#include "serve/delta_csr.h"
#include "serve/protocol.h"

namespace crono::serve {

/** Store construction and compaction policy. */
struct StoreConfig {
    /** Contiguous internal-id shards (>= 1). */
    int num_shards = 1;
    /** Ordering applied at build and re-applied on every compaction. */
    graph::Reordering reordering = graph::Reordering::kNone;
    /** Attach the bin-major blocked pull layout to each base. */
    bool blocked_layout = true;
    /** Fold the overlay once it reaches this many directed slots. */
    std::uint64_t compact_delta_edges = 1u << 16;
    /** ... or this many chained batches, whichever comes first. */
    std::uint32_t compact_batches = 16;
};

/** Monotonic store counters (relaxed snapshots, test/report fodder). */
struct StoreStats {
    std::uint64_t epoch = 0;
    std::uint64_t batches_ingested = 0;
    std::uint64_t edges_ingested = 0; ///< accepted logical input edges
    std::uint64_t compactions = 0;
};

class GraphStore {
  public:
    /**
     * Build the first epoch from an external-space graph. The
     * external ids of @p external are the ids clients use forever,
     * across every reordering and compaction.
     */
    GraphStore(graph::Graph external, StoreConfig config);

    GraphStore(const GraphStore&) = delete;
    GraphStore& operator=(const GraphStore&) = delete;

    /** The current epoch's snapshot (immutable; pin as long as needed). */
    std::shared_ptr<const Snapshot> snapshot() const;

    /**
     * Apply one edge-update batch (external ids). Self loops are
     * dropped; an out-of-range endpoint rejects the whole batch with
     * kBadVertex and publishes nothing; an empty (or all-self-loop)
     * batch is kRejected. On kOk, @p epoch_out (if non-null) receives
     * the new epoch. May trigger an automatic compaction.
     */
    Status ingestBatch(std::span<const graph::Edge> edges,
                       std::uint64_t* epoch_out = nullptr);

    /**
     * Fold the overlay into a fresh reordered base now. Publishes a
     * new epoch even when the overlay is empty (callers use that as
     * an epoch fence). @return the new epoch.
     */
    std::uint64_t compact();

    StoreStats stats() const;

    int numShards() const { return config_.num_shards; }

    /** Shard of internal vertex @p v (contiguous ranges). */
    int
    shardOfInternal(graph::VertexId v) const
    {
        return static_cast<int>(
            static_cast<std::uint64_t>(v) *
            static_cast<std::uint64_t>(config_.num_shards) /
            (numVertices_ > 0 ? numVertices_ : 1));
    }

    const StoreConfig& config() const { return config_; }

  private:
    /** Publish @p snap as the current epoch. */
    void publish(std::shared_ptr<const Snapshot> snap);

    /** Compaction body; caller holds writeMutex_. */
    std::uint64_t compactLocked();

    StoreConfig config_;
    graph::VertexId numVertices_ = 0;
    bool undirected_ = true;

    mutable std::mutex snapMutex_;   ///< guards current_ only
    std::shared_ptr<const Snapshot> current_;

    std::mutex writeMutex_;          ///< serializes ingest/compaction

    /// Current base + permutation (written only under writeMutex_;
    /// shared into every Snapshot built on them).
    std::shared_ptr<const graph::Graph> base_;
    std::shared_ptr<const graph::VertexPermutation> perm_;

    std::atomic<std::uint64_t> batches_{0};
    std::atomic<std::uint64_t> edges_{0};
    std::atomic<std::uint64_t> compactions_{0};
};

} // namespace crono::serve

#endif // CRONO_SERVE_STORE_H_

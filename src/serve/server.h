/**
 * @file
 * The graph query server (DESIGN.md §17).
 *
 * Request flow: a transport feeds a Session's bytes; decoded requests
 * are routed — edge mutations (kIngest/kCompact) to the single ingest
 * thread, everything else to a per-shard queue keyed by the query's
 * source vertex in the *internal* (reordered) id space. Shard workers
 * drain one shard's queue up to batch_max requests at a time and
 * serve the whole batch against ONE pinned snapshot: consecutive
 * requests touch one contiguous, reordering-packed vertex range and
 * one epoch's caches, which is the server-side payoff of the PR-5
 * layouts. The ingest thread applies edge batches through the store
 * (publishing new epochs, auto-compacting) without ever blocking
 * readers — in-flight query batches keep their pinned epochs.
 *
 * Latency accounting: every request is stamped at enqueue and its
 * class histogram (obs::LogHistogram, nanoseconds) updated when the
 * response is encoded — the numbers behind the kStats document and
 * the serve smoke checks. Worker threads bump the serve counters on
 * distinct obs host tracks (tid 256+w / 255 for ingest) to respect
 * the tracks' single-writer discipline; kernel spans stay on the
 * host track and are serialized by the engine's kernel mutex.
 */

#ifndef CRONO_SERVE_SERVER_H_
#define CRONO_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.h"
#include "runtime/executor.h"
#include "serve/query.h"
#include "serve/report.h"
#include "serve/session.h"
#include "serve/store.h"

namespace crono::serve {

/** Server shape and batching policy. */
struct ServerConfig {
    /** Shard worker threads (clamped to the store's shard count). */
    int num_workers = 2;
    /** Max requests drained per shard batch (one snapshot pin). */
    int batch_max = 16;
    /** Query-engine knobs (kernel threads, PageRank depth, cache). */
    QueryConfig query;
};

class Server {
  public:
    Server(GraphStore& store, rt::NativeExecutor& exec,
           ServerConfig config = {});

    /** Stops and joins if still running. */
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /** Spawn the shard workers and the ingest thread. */
    void start();

    /**
     * Drain-and-join: in-queue requests are answered kRejected, every
     * session's waiters are released. Idempotent.
     */
    void stop();

    bool running() const { return running_; }

    /** Open an in-process connection. */
    std::shared_ptr<Session> openSession();

    /**
     * Push transport bytes for @p session: frames are decoded and
     * routed; responses appear in the session's output buffer.
     * Single caller per session at a time (transport discipline).
     */
    void feed(const std::shared_ptr<Session>& session,
              std::span<const std::uint8_t> data);

    /** The crono.serve.v1 stats document (also behind Op::kStats). */
    std::string statsJson() const;

    GraphStore& store() { return store_; }
    QueryEngine& engine() { return engine_; }
    const ServerConfig& config() const { return config_; }

  private:
    struct Pending {
        std::shared_ptr<Session> session;
        Request req;
        std::uint64_t enqueue_ns = 0;
    };

    /** Route one decoded request to its queue (or reject if down). */
    void route(const std::shared_ptr<Session>& session, Request&& req);

    void workerLoop(int w);
    void ingestLoop();

    /** Record latency + class stats, then encode to the session. */
    void finish(const Pending& p, const Response& r);

    /** Reject everything still queued (under no queue lock). */
    void drainReject(std::deque<Pending>* queue);

    GraphStore& store_;
    QueryEngine engine_;
    ServerConfig config_;

    std::atomic<bool> running_{false};
    /// Written under both queue mutexes (wakeup safety); atomic so
    /// route() can read it without them.
    std::atomic<bool> stopping_{false};

    std::mutex queueMutex_;
    std::condition_variable queueCv_;
    std::vector<std::deque<Pending>> shardQueues_;
    std::vector<std::size_t> nextShard_; ///< per-worker fairness cursor

    std::mutex ingestMutex_;
    std::condition_variable ingestCv_;
    std::deque<Pending> ingestQueue_;

    std::vector<std::thread> workers_;
    std::thread ingestThread_;

    std::mutex sessionMutex_;
    std::vector<std::shared_ptr<Session>> sessions_;
    std::uint64_t nextSessionId_ = 1;

    /** Per-class latency + error aggregation. */
    struct ClassAgg {
        std::uint64_t count = 0;
        std::uint64_t errors = 0;
        obs::LogHistogram latency_ns;
    };
    mutable std::mutex statsMutex_;
    std::vector<ClassAgg> classes_; ///< indexed by opcode
    std::uint64_t start_ns_ = 0;
};

/**
 * Synchronous in-process client: one session, one outstanding request
 * at a time, responses matched by id. This is the conformance tests'
 * client and the closed-loop load generator's per-thread client.
 */
class Client {
  public:
    explicit Client(Server& server);

    /** Assigns a fresh id, sends, and blocks for the response. */
    Response call(Request req);

    /** The underlying session (for raw-bytes protocol tests). */
    const std::shared_ptr<Session>& session() const { return session_; }

  private:
    Server& server_;
    std::shared_ptr<Session> session_;
    FrameSplitter rx_;
    std::uint32_t nextId_ = 1;
};

} // namespace crono::serve

#endif // CRONO_SERVE_SERVER_H_

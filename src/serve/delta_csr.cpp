/**
 * @file
 * DeltaBatch grouping and the per-snapshot merge into an ordinary
 * CSR. The merge preserves the edge multiset exactly (parallel edges
 * and all) and re-sorts each adjacency row ascending, matching the
 * builder's invariant so any kernel can consume the result.
 */

#include "serve/delta_csr.h"

#include <algorithm>

#include "common/macros.h"

namespace crono::serve {

DeltaBatch::DeltaBatch(std::vector<graph::Edge> edges,
                       std::shared_ptr<const DeltaBatch> prev)
    : edges_(std::move(edges)), prev_(std::move(prev))
{
    std::sort(edges_.begin(), edges_.end(),
              [](const graph::Edge& a, const graph::Edge& b) {
                  return a.src != b.src ? a.src < b.src : a.dst < b.dst;
              });
    totalEdges_ = edges_.size() +
                  (prev_ != nullptr ? prev_->totalEdges() : 0);
    depth_ = 1 + (prev_ != nullptr ? prev_->depth() : 0);
}

std::pair<std::size_t, std::size_t>
DeltaBatch::rangeOf(graph::VertexId v) const
{
    const auto lo = std::lower_bound(
        edges_.begin(), edges_.end(), v,
        [](const graph::Edge& e, graph::VertexId x) { return e.src < x; });
    auto hi = lo;
    while (hi != edges_.end() && hi->src == v) {
        ++hi;
    }
    return {static_cast<std::size_t>(lo - edges_.begin()),
            static_cast<std::size_t>(hi - edges_.begin())};
}

std::uint64_t
DeltaBatch::degreeOf(graph::VertexId v) const
{
    const auto [lo, hi] = rangeOf(v);
    return hi - lo;
}

Snapshot::Snapshot(std::uint64_t epoch,
                   std::shared_ptr<const graph::Graph> base,
                   std::shared_ptr<const graph::VertexPermutation> perm,
                   std::shared_ptr<const DeltaBatch> delta)
    : epoch_(epoch), base_(std::move(base)), perm_(std::move(perm)),
      delta_(std::move(delta))
{
    CRONO_REQUIRE(base_ != nullptr && perm_ != nullptr,
                  "snapshot needs a base graph and a permutation");
    CRONO_REQUIRE(perm_->size() == base_->numVertices(),
                  "permutation does not cover the base graph");
}

std::uint64_t
Snapshot::degree(graph::VertexId v) const
{
    std::uint64_t d = base_->degree(v);
    for (const DeltaBatch* b = delta_.get(); b != nullptr;
         b = b->prev().get()) {
        d += b->degreeOf(v);
    }
    return d;
}

const graph::Graph&
Snapshot::materialized() const
{
    if (delta_ == nullptr) {
        return *base_;
    }
    std::call_once(materializeOnce_, [this] {
        const graph::VertexId n = base_->numVertices();
        AlignedVector<graph::EdgeId> offsets(n + 1, 0);
        for (graph::VertexId v = 0; v < n; ++v) {
            offsets[v + 1] = offsets[v] + degree(v);
        }
        const auto total = static_cast<std::size_t>(offsets[n]);
        AlignedVector<graph::VertexId> neighbors(total);
        AlignedVector<graph::Weight> weights(total);
        for (graph::VertexId v = 0; v < n; ++v) {
            std::size_t at = offsets[v];
            forEachEdge(v, [&](graph::VertexId dst, graph::Weight w) {
                neighbors[at] = dst;
                weights[at] = w;
                ++at;
            });
            CRONO_ASSERT(at == offsets[v + 1],
                         "materialize fill mismatch");
            // Re-sort the row ascending (builder invariant); the
            // weights ride along with their neighbor.
            std::vector<std::pair<graph::VertexId, graph::Weight>> row;
            row.reserve(at - offsets[v]);
            for (std::size_t i = offsets[v]; i < at; ++i) {
                row.emplace_back(neighbors[i], weights[i]);
            }
            std::sort(row.begin(), row.end());
            for (std::size_t i = 0; i < row.size(); ++i) {
                neighbors[offsets[v] + i] = row[i].first;
                weights[offsets[v] + i] = row[i].second;
            }
        }
        materialized_ = std::make_shared<const graph::Graph>(
            std::move(offsets), std::move(neighbors), std::move(weights),
            base_->undirected());
    });
    return *materialized_;
}

} // namespace crono::serve

#include "obs/perf/counters.h"

#include <cstdlib>
#include <cstring>

#include "common/macros.h"
#include "obs/telemetry.h" // nowNs

#if defined(__linux__) && !defined(CRONO_PERF_DISABLED)
#define CRONO_PERF_HAVE_SYSCALL 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#if !defined(_WIN32)
#include <sys/resource.h>
#include <sys/time.h>
#endif

namespace crono::obs::perf {

const char*
hwCounterName(HwCounter c)
{
    switch (c) {
      case HwCounter::kCycles: return "cycles";
      case HwCounter::kInstructions: return "instructions";
      case HwCounter::kLlcRefs: return "llc_refs";
      case HwCounter::kLlcMisses: return "llc_misses";
      case HwCounter::kBranchMisses: return "branch_misses";
      case HwCounter::kStalledCycles: return "stalled_cycles";
      case HwCounter::kTaskClockNs: return "task_clock_ns";
      case HwCounter::kPageFaults: return "page_faults";
      case HwCounter::kContextSwitches: return "context_switches";
      case HwCounter::kCpuMigrations: return "cpu_migrations";
      case HwCounter::kUserNs: return "user_ns";
      case HwCounter::kSystemNs: return "system_ns";
      case HwCounter::kMinorFaults: return "minor_faults";
      case HwCounter::kMajorFaults: return "major_faults";
      case HwCounter::kVolCtxSwitches: return "vol_ctx_switches";
      case HwCounter::kInvolCtxSwitches: return "invol_ctx_switches";
      case HwCounter::kWallNs: return "wall_ns";
    }
    return "unknown";
}

const char*
counterSourceName(CounterSource s)
{
    switch (s) {
      case CounterSource::kNone: return "none";
      case CounterSource::kPerf: return "perf";
      case CounterSource::kPerfSw: return "perf-sw";
      case CounterSource::kFallback: return "fallback";
    }
    return "unknown";
}

CounterDelta&
CounterDelta::operator+=(const CounterDelta& o)
{
    for (int i = 0; i < kNumHwCounters; ++i) {
        v[static_cast<std::size_t>(i)] +=
            o.v[static_cast<std::size_t>(i)];
    }
    multiplexed = multiplexed || o.multiplexed;
    if (source == CounterSource::kNone) {
        source = o.source;
    }
    return *this;
}

bool
CounterDelta::any() const
{
    for (const std::uint64_t x : v) {
        if (x != 0) {
            return true;
        }
    }
    return false;
}

namespace {

double
ratio(std::uint64_t num, std::uint64_t den)
{
    return den > 0
               ? static_cast<double>(num) / static_cast<double>(den)
               : 0.0;
}

} // namespace

double
CounterDelta::ipc() const
{
    return ratio(get(HwCounter::kInstructions), get(HwCounter::kCycles));
}

double
CounterDelta::llcMissRate() const
{
    return ratio(get(HwCounter::kLlcMisses), get(HwCounter::kLlcRefs));
}

double
CounterDelta::branchMissRate() const
{
    return ratio(get(HwCounter::kBranchMisses),
                 get(HwCounter::kInstructions));
}

double
CounterDelta::stallFraction() const
{
    return ratio(get(HwCounter::kStalledCycles), get(HwCounter::kCycles));
}

CounterDelta
sampleDelta(const Sample& begin, const Sample& end, CounterSource source)
{
    CounterDelta d;
    d.source = source;
    d.multiplexed = begin.multiplexed || end.multiplexed;
    for (int i = 0; i < kNumHwCounters; ++i) {
        const auto s = static_cast<std::size_t>(i);
        d.v[s] = end.v[s] >= begin.v[s] ? end.v[s] - begin.v[s] : 0;
    }
    return d;
}

namespace {

/** CRONO_PROFILE env policy: where the probe chain starts. */
enum class Policy { kFull, kSwOnly, kFallbackOnly };

Policy
envPolicy()
{
    const char* const env = std::getenv("CRONO_PROFILE");
    if (env == nullptr) {
        return Policy::kFull;
    }
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "OFF") == 0 ||
        std::strcmp(env, "0") == 0) {
        return Policy::kFallbackOnly;
    }
    if (std::strcmp(env, "sw") == 0) {
        return Policy::kSwOnly;
    }
    return Policy::kFull;
}

constexpr std::uint64_t kNsPerSec = 1000000000ull;
constexpr std::uint64_t kNsPerUsec = 1000ull;

/** rusage + steady-clock sample (the tier that never fails). */
Sample
fallbackSample()
{
    Sample s;
#if !defined(_WIN32)
    struct rusage ru;
#if defined(RUSAGE_THREAD)
    const int who = RUSAGE_THREAD;
#else
    const int who = RUSAGE_SELF;
#endif
    if (getrusage(who, &ru) == 0) {
        const auto tv_ns = [](const timeval& tv) {
            return static_cast<std::uint64_t>(tv.tv_sec) * kNsPerSec +
                   static_cast<std::uint64_t>(tv.tv_usec) * kNsPerUsec;
        };
        s.v[static_cast<std::size_t>(HwCounter::kUserNs)] =
            tv_ns(ru.ru_utime);
        s.v[static_cast<std::size_t>(HwCounter::kSystemNs)] =
            tv_ns(ru.ru_stime);
        s.v[static_cast<std::size_t>(HwCounter::kMinorFaults)] =
            static_cast<std::uint64_t>(ru.ru_minflt);
        s.v[static_cast<std::size_t>(HwCounter::kMajorFaults)] =
            static_cast<std::uint64_t>(ru.ru_majflt);
        s.v[static_cast<std::size_t>(HwCounter::kVolCtxSwitches)] =
            static_cast<std::uint64_t>(ru.ru_nvcsw);
        s.v[static_cast<std::size_t>(HwCounter::kInvolCtxSwitches)] =
            static_cast<std::uint64_t>(ru.ru_nivcsw);
    }
#endif
    s.v[static_cast<std::size_t>(HwCounter::kWallNs)] = nowNs();
    return s;
}

} // namespace

#if defined(CRONO_PERF_HAVE_SYSCALL)

namespace {

long
perfEventOpen(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
              unsigned long flags)
{
    return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

struct EventSpec {
    HwCounter slot;
    std::uint32_t type;
    std::uint64_t config;
};

constexpr EventSpec kHardwareGroup[] = {
    {HwCounter::kCycles, PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {HwCounter::kInstructions, PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_INSTRUCTIONS},
    {HwCounter::kLlcRefs, PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_CACHE_REFERENCES},
    {HwCounter::kLlcMisses, PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_CACHE_MISSES},
    {HwCounter::kBranchMisses, PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_BRANCH_MISSES},
    {HwCounter::kStalledCycles, PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
};

constexpr EventSpec kSoftwareGroup[] = {
    {HwCounter::kTaskClockNs, PERF_TYPE_SOFTWARE,
     PERF_COUNT_SW_TASK_CLOCK},
    {HwCounter::kPageFaults, PERF_TYPE_SOFTWARE,
     PERF_COUNT_SW_PAGE_FAULTS},
    {HwCounter::kContextSwitches, PERF_TYPE_SOFTWARE,
     PERF_COUNT_SW_CONTEXT_SWITCHES},
    {HwCounter::kCpuMigrations, PERF_TYPE_SOFTWARE,
     PERF_COUNT_SW_CPU_MIGRATIONS},
};

} // namespace

bool
ThreadCounters::openGroup(bool hardware_tier)
{
    const EventSpec* specs = hardware_tier ? kHardwareGroup
                                           : kSoftwareGroup;
    const int nspecs = hardware_tier
                           ? static_cast<int>(std::size(kHardwareGroup))
                           : static_cast<int>(std::size(kSoftwareGroup));
    for (int i = 0; i < nspecs; ++i) {
        perf_event_attr attr;
        std::memset(&attr, 0, sizeof attr);
        attr.type = specs[i].type;
        attr.size = sizeof attr;
        attr.config = specs[i].config;
        attr.disabled = (i == 0) ? 1 : 0; // group enabled via leader
        attr.exclude_kernel = 1;
        attr.exclude_hv = 1;
        attr.read_format = PERF_FORMAT_GROUP |
                           PERF_FORMAT_TOTAL_TIME_ENABLED |
                           PERF_FORMAT_TOTAL_TIME_RUNNING;
        const int group_fd = (i == 0) ? -1 : fds_[0];
        const long fd = perfEventOpen(&attr, /*pid=*/0, /*cpu=*/-1,
                                      group_fd, PERF_FLAG_FD_CLOEXEC);
        if (fd < 0) {
            if (i == 0) {
                return false; // tier unavailable: leader won't open
            }
            continue; // sibling unsupported (e.g. stalled cycles): skip
        }
        fds_[nfds_] = static_cast<int>(fd);
        slots_[nfds_] = specs[i].slot;
        ++nfds_;
    }
    ioctl(fds_[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(fds_[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    return true;
}

void
ThreadCounters::closeAll()
{
    // Close siblings before the leader.
    for (int i = nfds_ - 1; i >= 0; --i) {
        close(fds_[i]);
    }
    nfds_ = 0;
}

ThreadCounters::ThreadCounters()
{
    fds_.fill(-1);
    const Policy policy = envPolicy();
    if (policy != Policy::kFallbackOnly) {
        if (policy == Policy::kFull && openGroup(/*hardware_tier=*/true)) {
            source_ = CounterSource::kPerf;
            return;
        }
        if (openGroup(/*hardware_tier=*/false)) {
            source_ = CounterSource::kPerfSw;
            return;
        }
    }
    source_ = CounterSource::kFallback;
}

ThreadCounters::~ThreadCounters()
{
    closeAll();
}

Sample
ThreadCounters::sample() const
{
    if (source_ == CounterSource::kFallback) {
        return fallbackSample();
    }
    Sample s;
    // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running,
    // value[nr]. nr <= kMaxGroup by construction.
    std::uint64_t buf[3 + kMaxGroup] = {};
    const auto want = static_cast<long>(
        (3 + static_cast<std::size_t>(nfds_)) * sizeof(std::uint64_t));
    const long got = read(fds_[0], buf, sizeof buf);
    if (got < want) {
        return s; // zero sample; delta will clamp to zero
    }
    const std::uint64_t enabled = buf[1];
    const std::uint64_t running = buf[2];
    double scale = 1.0;
    if (running > 0 && running < enabled) {
        scale = static_cast<double>(enabled) /
                static_cast<double>(running);
        s.multiplexed = true;
    } else if (running == 0 && enabled > 0) {
        s.multiplexed = true; // never scheduled: values stay zero
    }
    for (int i = 0; i < nfds_; ++i) {
        const double scaled =
            static_cast<double>(buf[3 + i]) * scale;
        s.v[static_cast<std::size_t>(slots_[i])] =
            static_cast<std::uint64_t>(scaled);
    }
    return s;
}

#else // !CRONO_PERF_HAVE_SYSCALL

bool
ThreadCounters::openGroup(bool)
{
    return false;
}

void
ThreadCounters::closeAll()
{
}

ThreadCounters::ThreadCounters()
{
    fds_.fill(-1);
    source_ = CounterSource::kFallback;
}

ThreadCounters::~ThreadCounters() = default;

Sample
ThreadCounters::sample() const
{
    return fallbackSample();
}

#endif // CRONO_PERF_HAVE_SYSCALL

} // namespace crono::obs::perf

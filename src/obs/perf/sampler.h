/**
 * @file
 * Span-attributed counter collection: a ProfileSession installs a
 * global Collector (the same nullable-sink pattern as
 * TelemetrySession), and the telemetry span hooks (ScopedSpan /
 * ScopedHostSpan / the executor's worker body) bracket every native
 * span with two counter samples, aggregating the delta under the
 * span's name.
 *
 * Threading model: all mutable state is reached through a
 * thread_local PerfTrack pointer, so recording is single-writer and
 * lock-free, and the perf fds inside ThreadCounters are always
 * opened, read, and closed on their owning OS thread. The Collector
 * only takes a mutex on first use per (thread, session); a session
 * generation counter invalidates stale thread_local caches when
 * sessions come and go (including when two NativeExecutor instances
 * reuse the same worker tid on different OS threads — each thread
 * gets its own track and the report merges by slot).
 *
 * Nesting: a round span inside a kernel span each subtract their own
 * sample window, so every aggregate is the *inclusive* cost of its
 * span name, like gprof inclusive time. Simulator spans never reach
 * this layer (hardware counters on sim fibers would measure host
 * work, which is meaningless for the model).
 */

#ifndef CRONO_OBS_PERF_SAMPLER_H_
#define CRONO_OBS_PERF_SAMPLER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "obs/perf/counters.h"

namespace crono::obs::perf {

/** Aggregated cost of one span name on one track. */
struct SpanAgg {
    const char* name = nullptr; ///< span-name literal
    std::uint8_t cat = 0;       ///< SpanCat value
    std::uint64_t count = 0;    ///< closed spans aggregated
    CounterDelta total;
    LogHistogram duration_ns{4};
};

/**
 * One OS thread's profile state: the counter chain plus a sample
 * stack for nested spans and the per-name aggregates. Single-writer;
 * created on first span of that thread in a session.
 */
class PerfTrack {
  public:
    static constexpr int kMaxDepth = 16;

    explicit PerfTrack(int slot) : slot_(slot) {}

    int slot() const { return slot_; }
    CounterSource source() const { return counters_.source(); }

    /** Open a span window: push a sample, return its token. */
    int
    begin()
    {
        if (depth_ >= kMaxDepth) {
            return -1; // deeper nesting than profiling tracks
        }
        stack_[static_cast<std::size_t>(depth_)] = counters_.sample();
        return depth_++;
    }

    /** Close the window @p token and aggregate under @p name. */
    void end(int token, const char* name, std::uint8_t cat,
             std::uint64_t dur_ns);

    const std::vector<SpanAgg>& aggs() const { return aggs_; }

  private:
    ThreadCounters counters_;
    std::array<Sample, kMaxDepth> stack_;
    std::vector<SpanAgg> aggs_;
    int depth_ = 0;
    int slot_;
};

/** Track slot naming: the host thread, then worker tids shifted. */
inline constexpr int kHostSlot = 0;

inline constexpr int
slotForTid(int tid)
{
    return tid + 1;
}

/**
 * Owns every PerfTrack of one profiling session. Tracks are created
 * per OS thread (see file comment); readers run post-hoc.
 */
class Collector {
  public:
    Collector();

    Collector(const Collector&) = delete;
    Collector& operator=(const Collector&) = delete;

    /** Create (and register) a track for the calling thread. */
    PerfTrack* createTrack(int slot);

    /** Invoke fn(track) for every created track (post-run reader). */
    template <class Fn>
    void
    forEachTrack(Fn&& fn) const
    {
        std::lock_guard<std::mutex> g(mutex_);
        for (const auto& t : tracks_) {
            fn(*t);
        }
    }

    /**
     * The session's counter source: the weakest tier any track
     * landed on (threads can differ only via races with env changes,
     * but the report must not overclaim), or the probe source before
     * any track exists.
     */
    CounterSource source() const;

    /** Any track's group was multiplexed at some sample. */
    bool multiplexed() const;

  private:
    mutable std::mutex mutex_;
    std::deque<std::unique_ptr<PerfTrack>> tracks_;
    CounterSource probeSource_;
};

namespace detail {
/** Non-null (as uintptr) while a ProfileSession is installed. */
extern std::atomic<std::uintptr_t> g_collector;
/** Bumped on install *and* uninstall to invalidate caches. */
extern std::atomic<std::uint64_t> g_generation;
} // namespace detail

/** The installed collector, or nullptr when profiling is idle. */
inline Collector*
collector()
{
    return reinterpret_cast<Collector*>(
        detail::g_collector.load(std::memory_order_acquire));
}

inline bool
profilingActive()
{
    return detail::g_collector.load(std::memory_order_acquire) != 0;
}

// Span hooks (called by obs::ScopedSpan / ScopedHostSpan / the
// executor). The inline wrappers keep the idle cost to one relaxed
// load and a predictable branch; the Slow variants live in
// sampler.cpp.

int spanBeginSlow(int slot);
void spanEndSlow(int slot, int token, const char* name, std::uint8_t cat,
                 std::uint64_t dur_ns);

inline int
spanBegin(int slot)
{
    return profilingActive() ? spanBeginSlow(slot) : -1;
}

inline void
spanEnd(int slot, int token, const char* name, std::uint8_t cat,
        std::uint64_t dur_ns)
{
    if (token >= 0 && profilingActive()) {
        spanEndSlow(slot, token, name, cat, dur_ns);
    }
}

/**
 * RAII profiling session: owns a Collector and installs it globally
 * for its lifetime. Sessions must not nest, and must outlive every
 * span they measure. Orthogonal to TelemetrySession — but span
 * attribution only happens where telemetry hooks run, so profiling a
 * CRONO_TELEMETRY=OFF build records nothing through spans (the
 * explicit ScopedHwRegion below still works).
 */
class ProfileSession {
  public:
    ProfileSession();
    ~ProfileSession();

    ProfileSession(const ProfileSession&) = delete;
    ProfileSession& operator=(const ProfileSession&) = delete;

    Collector& sessionCollector() { return collector_; }
    const Collector& sessionCollector() const { return collector_; }

  private:
    Collector collector_;
};

/**
 * Explicit measured region, for call sites outside the span
 * machinery (tests, custom harness phases). @p name must outlive the
 * session.
 */
class ScopedHwRegion {
  public:
    ScopedHwRegion(int slot, const char* name, std::uint8_t cat = 0);
    ~ScopedHwRegion();

    ScopedHwRegion(const ScopedHwRegion&) = delete;
    ScopedHwRegion& operator=(const ScopedHwRegion&) = delete;

  private:
    const char* name_;
    std::uint64_t beginNs_;
    int slot_;
    int token_;
    std::uint8_t cat_;
};

} // namespace crono::obs::perf

#endif // CRONO_OBS_PERF_SAMPLER_H_

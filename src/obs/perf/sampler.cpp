#include "obs/perf/sampler.h"

#include <cstring>

#include "common/macros.h"
#include "obs/telemetry.h" // nowNs

namespace crono::obs::perf {

namespace detail {
std::atomic<std::uintptr_t> g_collector{0};
std::atomic<std::uint64_t> g_generation{0};
} // namespace detail

void
PerfTrack::end(int token, const char* name, std::uint8_t cat,
               std::uint64_t dur_ns)
{
    if (token < 0 || token >= depth_) {
        return; // unmatched (e.g. depth overflow at begin)
    }
    depth_ = token;
    const Sample end_sample = counters_.sample();
    const CounterDelta delta = sampleDelta(
        stack_[static_cast<std::size_t>(token)], end_sample,
        counters_.source());
    // Aggregate by (name, cat). Names are literals, so pointer
    // equality catches nearly every lookup; strcmp covers a literal
    // duplicated across translation units.
    SpanAgg* agg = nullptr;
    for (SpanAgg& a : aggs_) {
        if (a.cat == cat &&
            (a.name == name || std::strcmp(a.name, name) == 0)) {
            agg = &a;
            break;
        }
    }
    if (agg == nullptr) {
        aggs_.emplace_back();
        agg = &aggs_.back();
        agg->name = name;
        agg->cat = cat;
    }
    ++agg->count;
    agg->total += delta;
    agg->duration_ns.add(dur_ns);
}

Collector::Collector()
{
    // Probe the chain once on the constructing thread so source() is
    // meaningful even for a session that never saw a span.
    probeSource_ = ThreadCounters().source();
}

PerfTrack*
Collector::createTrack(int slot)
{
    auto track = std::make_unique<PerfTrack>(slot);
    PerfTrack* raw = track.get();
    std::lock_guard<std::mutex> g(mutex_);
    tracks_.push_back(std::move(track));
    return raw;
}

CounterSource
Collector::source() const
{
    std::lock_guard<std::mutex> g(mutex_);
    CounterSource weakest = CounterSource::kNone;
    for (const auto& t : tracks_) {
        const CounterSource s = t->source();
        if (weakest == CounterSource::kNone ||
            static_cast<int>(s) > static_cast<int>(weakest)) {
            weakest = s; // enum order: perf < perf-sw < fallback
        }
    }
    return weakest == CounterSource::kNone ? probeSource_ : weakest;
}

bool
Collector::multiplexed() const
{
    bool any = false;
    forEachTrack([&](const PerfTrack& t) {
        for (const SpanAgg& a : t.aggs()) {
            any = any || a.total.multiplexed;
        }
    });
    return any;
}

namespace {

/**
 * Per-thread track cache. The generation check invalidates it across
 * session boundaries (both install and uninstall bump g_generation),
 * which also defeats ABA on a Collector reallocated at the same
 * address.
 */
struct TlState {
    std::uint64_t generation = 0;
    int slot = -1;
    PerfTrack* track = nullptr;
};

thread_local TlState tl_state;

PerfTrack*
currentTrack(int slot)
{
    Collector* const c = collector();
    if (c == nullptr) {
        return nullptr;
    }
    const std::uint64_t gen =
        detail::g_generation.load(std::memory_order_acquire);
    if (tl_state.track == nullptr || tl_state.generation != gen ||
        tl_state.slot != slot) {
        tl_state.track = c->createTrack(slot);
        tl_state.generation = gen;
        tl_state.slot = slot;
    }
    return tl_state.track;
}

} // namespace

int
spanBeginSlow(int slot)
{
    PerfTrack* const t = currentTrack(slot);
    return t != nullptr ? t->begin() : -1;
}

void
spanEndSlow(int slot, int token, const char* name, std::uint8_t cat,
            std::uint64_t dur_ns)
{
    // Re-resolve through the cache: if the session changed between
    // begin and end the generation mismatch re-creates a track, whose
    // empty stack makes end() drop the unmatched token safely.
    PerfTrack* const t = currentTrack(slot);
    if (t != nullptr) {
        t->end(token, name, cat, dur_ns);
    }
}

ProfileSession::ProfileSession()
{
    CRONO_REQUIRE(!profilingActive(), "ProfileSessions must not nest");
    detail::g_generation.fetch_add(1, std::memory_order_acq_rel);
    detail::g_collector.store(
        reinterpret_cast<std::uintptr_t>(&collector_),
        std::memory_order_release);
}

ProfileSession::~ProfileSession()
{
    detail::g_collector.store(0, std::memory_order_release);
    detail::g_generation.fetch_add(1, std::memory_order_acq_rel);
}

ScopedHwRegion::ScopedHwRegion(int slot, const char* name,
                               std::uint8_t cat)
    : name_(name), beginNs_(nowNs()), slot_(slot),
      token_(spanBegin(slot)), cat_(cat)
{
}

ScopedHwRegion::~ScopedHwRegion()
{
    spanEnd(slot_, token_, name_, cat_, nowNs() - beginNs_);
}

} // namespace crono::obs::perf

/**
 * @file
 * Per-thread hardware-counter access with a graceful degradation
 * chain, so the native benches can report the cache/branch behaviour
 * the paper characterizes in `sim::` on real silicon when the kernel
 * allows it — and still produce a well-formed report when it doesn't
 * (containers, perf_event_paranoid, non-Linux hosts).
 *
 * The chain, probed once per ThreadCounters on the owning thread:
 *
 *  1. "perf"      — a perf_event_open counter *group* (cycles leader;
 *                   instructions, LLC refs/misses, branch misses,
 *                   stalled backend cycles as siblings) read with
 *                   PERF_FORMAT_GROUP so all values come from one
 *                   atomic snapshot. TIME_ENABLED/TIME_RUNNING scale
 *                   each read when the PMU multiplexes the group
 *                   (CounterDelta::multiplexed reports that the
 *                   values are extrapolations, per the usual
 *                   perf-tool convention). Events count user space
 *                   only (exclude_kernel) so paranoid level 2 still
 *                   admits them.
 *  2. "perf-sw"   — the kernel's software events (task-clock,
 *                   page-faults, context-switches, cpu-migrations)
 *                   when no hardware PMU is exposed (common in VMs).
 *  3. "fallback"  — getrusage(RUSAGE_THREAD) + the steady clock when
 *                   perf_event_open itself is forbidden. Coarse
 *                   (scheduler-tick granularity) but never fails.
 *
 * Policy overrides: the CRONO_PROFILE environment variable ("off"/"0"
 * forces tier 3, "sw" skips tier 1), and building with
 * -DCRONO_PROFILE=OFF (CRONO_PERF_DISABLED) compiles the syscall
 * tiers out entirely. Counters are free-running after open; a Sample
 * is a scaled running total and a CounterDelta is the difference of
 * two Samples, so nested spans can each subtract their own window.
 */

#ifndef CRONO_OBS_PERF_COUNTERS_H_
#define CRONO_OBS_PERF_COUNTERS_H_

#include <array>
#include <cstdint>

namespace crono::obs::perf {

/** Everything a sample can carry, across all three tiers. */
enum class HwCounter : std::uint8_t {
    // Tier 1: hardware events.
    kCycles = 0,       ///< user-space CPU cycles
    kInstructions,     ///< user-space retired instructions
    kLlcRefs,          ///< last-level-cache references
    kLlcMisses,        ///< last-level-cache misses
    kBranchMisses,     ///< mispredicted branches
    kStalledCycles,    ///< backend-stall cycles
    // Tier 2: kernel software events.
    kTaskClockNs,      ///< on-CPU time of this thread
    kPageFaults,       ///< faults taken by this thread
    kContextSwitches,  ///< involuntary + voluntary switches
    kCpuMigrations,    ///< cross-CPU migrations
    // Tier 3: rusage + steady clock.
    kUserNs,           ///< rusage user time
    kSystemNs,         ///< rusage system time
    kMinorFaults,      ///< rusage minflt
    kMajorFaults,      ///< rusage majflt
    kVolCtxSwitches,   ///< rusage nvcsw
    kInvolCtxSwitches, ///< rusage nivcsw
    kWallNs,           ///< steady clock (fallback tier only)
};

inline constexpr int kNumHwCounters = 17;

/** Stable JSON key, e.g. "llc_misses". */
const char* hwCounterName(HwCounter c);

/** Which tier of the degradation chain produced a measurement. */
enum class CounterSource : std::uint8_t {
    kNone = 0,  ///< no measurement taken
    kPerf,      ///< hardware counter group
    kPerfSw,    ///< perf software events
    kFallback,  ///< rusage + steady clock
};

/** Stable tag: "none" / "perf" / "perf-sw" / "fallback". */
const char* counterSourceName(CounterSource s);

/** Scaled running totals at one instant (subtract two for a delta). */
struct Sample {
    std::array<std::uint64_t, kNumHwCounters> v{};
    /** Group was descheduled part of the time; values are scaled. */
    bool multiplexed = false;
};

/** Counter deltas over one window, plus derived rates. */
struct CounterDelta {
    std::array<std::uint64_t, kNumHwCounters> v{};
    CounterSource source = CounterSource::kNone;
    bool multiplexed = false;

    std::uint64_t
    get(HwCounter c) const
    {
        return v[static_cast<std::size_t>(c)];
    }

    CounterDelta& operator+=(const CounterDelta& o);

    /** Any counter non-zero? */
    bool any() const;

    // Derived rates; each returns 0 when its inputs are absent.
    double ipc() const;            ///< instructions / cycles
    double llcMissRate() const;    ///< llc_misses / llc_refs
    double branchMissRate() const; ///< branch_misses / instructions
    double stallFraction() const;  ///< stalled_cycles / cycles
};

/** end - begin, clamped at 0 per counter (scaling can jitter). */
CounterDelta sampleDelta(const Sample& begin, const Sample& end,
                         CounterSource source);

/**
 * One thread's counter chain. Must be constructed, sampled, and
 * destroyed on the same thread (perf fds and RUSAGE_THREAD are both
 * per-thread); the sampler layer guarantees this by storing
 * ThreadCounters behind thread_local access.
 */
class ThreadCounters {
  public:
    ThreadCounters();
    ~ThreadCounters();

    ThreadCounters(const ThreadCounters&) = delete;
    ThreadCounters& operator=(const ThreadCounters&) = delete;

    CounterSource source() const { return source_; }

    /** Scaled running totals now (never fails; zero on kNone). */
    Sample sample() const;

  private:
    static constexpr int kMaxGroup = 6;

    bool openGroup(bool hardware_tier);
    void closeAll();

    std::array<int, kMaxGroup> fds_{};
    std::array<HwCounter, kMaxGroup> slots_{};
    int nfds_ = 0;
    CounterSource source_ = CounterSource::kNone;
};

} // namespace crono::obs::perf

#endif // CRONO_OBS_PERF_COUNTERS_H_

#include "obs/profile_report.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/json.h"

namespace crono::obs {

ImbalanceSummary
imbalanceFromRecorder(const Recorder& recorder)
{
    ImbalanceSummary out;
    recorder.forEachTrack([&](TrackKind kind, int tid, const Track& t) {
        if (kind != TrackKind::kWorker) {
            return;
        }
        double wall = 0.0, barrier = 0.0, steal = 0.0;
        for (const SpanEvent& ev : t.spans()) {
            const auto dur = static_cast<double>(ev.end - ev.begin);
            if (ev.cat == SpanCat::kKernel &&
                std::strcmp(ev.name, "worker") == 0) {
                wall += dur;
            } else if (ev.cat == SpanCat::kBarrierWait) {
                barrier += dur;
            } else if (ev.cat == SpanCat::kSteal) {
                steal += dur;
            }
        }
        if (wall <= 0.0) {
            return;
        }
        ThreadImbalance ti;
        ti.tid = tid;
        ti.wall_ns = wall;
        ti.barrier_frac = std::min(1.0, barrier / wall);
        ti.steal_frac = std::min(1.0 - ti.barrier_frac, steal / wall);
        ti.busy_frac = 1.0 - ti.barrier_frac - ti.steal_frac;
        out.threads.push_back(ti);
    });
    if (out.threads.size() > 1) {
        double mean = 0.0;
        for (const ThreadImbalance& ti : out.threads) {
            mean += ti.wall_ns * ti.busy_frac;
        }
        mean /= static_cast<double>(out.threads.size());
        double var = 0.0;
        for (const ThreadImbalance& ti : out.threads) {
            const double busy = ti.wall_ns * ti.busy_frac;
            var += (busy - mean) * (busy - mean);
        }
        var /= static_cast<double>(out.threads.size());
        out.busy_cv = mean > 0.0 ? std::sqrt(var) / mean : 0.0;
    }
    return out;
}

std::vector<SpanProfile>
collectSpanProfiles(const perf::Collector& c)
{
    std::vector<SpanProfile> out;
    c.forEachTrack([&](const perf::PerfTrack& track) {
        for (const perf::SpanAgg& agg : track.aggs()) {
            SpanProfile* sp = nullptr;
            const char* const cat_name =
                spanCatName(static_cast<SpanCat>(agg.cat));
            for (SpanProfile& existing : out) {
                if (existing.name == agg.name &&
                    existing.cat == cat_name) {
                    sp = &existing;
                    break;
                }
            }
            if (sp == nullptr) {
                out.emplace_back();
                sp = &out.back();
                sp->name = agg.name;
                sp->cat = cat_name;
            }
            sp->count += agg.count;
            sp->total += agg.total;
            sp->duration_ns.merge(agg.duration_ns);
            sp->per_thread.emplace_back(track.slot(), agg.total);
        }
    });
    std::sort(out.begin(), out.end(),
              [](const SpanProfile& a, const SpanProfile& b) {
                  return a.duration_ns.sum() > b.duration_ns.sum();
              });
    for (SpanProfile& sp : out) {
        std::sort(sp.per_thread.begin(), sp.per_thread.end(),
                  [](const auto& a, const auto& b) {
                      return a.first < b.first;
                  });
    }
    return out;
}

namespace {

void
writeCounterDelta(JsonWriter& w, const perf::CounterDelta& d)
{
    w.beginObject();
    for (int c = 0; c < perf::kNumHwCounters; ++c) {
        const auto hc = static_cast<perf::HwCounter>(c);
        if (d.get(hc) != 0) {
            w.key(perf::hwCounterName(hc)).value(d.get(hc));
        }
    }
    w.endObject();
}

void
writeSpanProfile(JsonWriter& w, const SpanProfile& sp)
{
    w.beginObject();
    w.key("name").value(sp.name);
    w.key("cat").value(sp.cat);
    w.key("count").value(sp.count);
    w.key("duration_ns").beginObject();
    w.key("mean").value(sp.duration_ns.mean());
    w.key("p50").value(sp.duration_ns.quantile(0.50));
    w.key("p90").value(sp.duration_ns.quantile(0.90));
    w.key("p99").value(sp.duration_ns.quantile(0.99));
    w.key("max").value(sp.duration_ns.max());
    w.endObject();
    w.key("counters");
    writeCounterDelta(w, sp.total);
    w.key("derived").beginObject();
    w.key("ipc").value(sp.total.ipc());
    w.key("llc_miss_rate").value(sp.total.llcMissRate());
    w.key("branch_miss_rate").value(sp.total.branchMissRate());
    w.key("stall_fraction").value(sp.total.stallFraction());
    w.endObject();
    w.key("per_thread").beginArray();
    for (const auto& [slot, delta] : sp.per_thread) {
        w.beginObject();
        w.key("slot").value(slot);
        w.key("counters");
        writeCounterDelta(w, delta);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace

std::string
ProfileReport::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("crono.profile.v1");
    w.key("source").value(perf::counterSourceName(source));
    w.key("multiplexed").value(multiplexed);
    w.key("sections").beginArray();
    for (const ProfileSection& sec : sections) {
        w.beginObject();
        w.key("graph").value(sec.graph);
        w.key("threads").value(sec.threads);
        w.key("spans_dropped").value(sec.spans_dropped);
        w.key("spans").beginArray();
        for (const SpanProfile& sp : sec.spans) {
            writeSpanProfile(w, sp);
        }
        w.endArray();
        w.key("imbalance").beginObject();
        w.key("threads").beginArray();
        for (const ThreadImbalance& ti : sec.imbalance.threads) {
            w.beginObject();
            w.key("tid").value(ti.tid);
            w.key("wall_ns").value(ti.wall_ns);
            w.key("busy_frac").value(ti.busy_frac);
            w.key("barrier_frac").value(ti.barrier_frac);
            w.key("steal_frac").value(ti.steal_frac);
            w.endObject();
        }
        w.endArray();
        w.key("busy_cv").value(sec.imbalance.busy_cv);
        w.endObject();
        if (sec.has_sim) {
            w.key("sim").beginArray();
            for (const ProfileSection::SimRow& row : sec.sim) {
                w.beginObject();
                w.key("kernel").value(row.kernel);
                w.key("completion_cycles").value(row.completion_cycles);
                w.key("l1d_miss_rate").value(row.l1d_miss_rate);
                w.key("l2_miss_rate").value(row.l2_miss_rate);
                w.key("hierarchy_miss_rate")
                    .value(row.hierarchy_miss_rate);
                w.endObject();
            }
            w.endArray();
        } else {
            w.key("sim").null();
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

bool
ProfileReport::writeJson(const std::string& path) const
{
    return writeTextFile(path, toJson());
}

} // namespace crono::obs

#include "obs/telemetry.h"

namespace crono::obs {

const char*
spanCatName(SpanCat cat)
{
    switch (cat) {
      case SpanCat::kKernel:
        return "kernel";
      case SpanCat::kRound:
        return "round";
      case SpanCat::kBarrierWait:
        return "barrier-wait";
      case SpanCat::kSteal:
        return "steal";
      case SpanCat::kSimEpoch:
        return "sim-epoch";
    }
    return "unknown";
}

const char*
counterName(Counter c)
{
    switch (c) {
      case Counter::kRelaxations:
        return "relaxations";
      case Counter::kExpansions:
        return "expansions";
      case Counter::kDeferrals:
        return "deferrals";
      case Counter::kActivations:
        return "activations";
      case Counter::kDenseRounds:
        return "dense_rounds";
      case Counter::kSparseRounds:
        return "sparse_rounds";
      case Counter::kModeSwitches:
        return "mode_switches";
      case Counter::kStealAttempts:
        return "steal_attempts";
      case Counter::kStealChunks:
        return "steal_chunks";
      case Counter::kBarrierWaits:
        return "barrier_waits";
      case Counter::kIterations:
        return "iterations";
      case Counter::kBusyCycles:
        return "busy_cycles";
      case Counter::kStallCycles:
        return "stall_cycles";
      case Counter::kPullRounds:
        return "pull_rounds";
      case Counter::kCaptures:
        return "captures";
      case Counter::kDonations:
        return "donations";
      case Counter::kMoves:
        return "moves";
      case Counter::kTriangles:
        return "triangles";
      case Counter::kBranches:
        return "branches";
      case Counter::kReorderMs:
        return "reorder_ms";
      case Counter::kBlockFills:
        return "block_fills";
      case Counter::kBucketSteps:
        return "bucket_steps";
      case Counter::kStaleSkips:
        return "stale_skips";
      case Counter::kHeavyRelaxations:
        return "heavy_relaxations";
      case Counter::kLoadMs:
        return "load_ms";
      case Counter::kBidomainSplits:
        return "bidomain_splits";
      case Counter::kServeRequests:
        return "serve_requests";
      case Counter::kServeBatches:
        return "serve_batches";
      case Counter::kServeIngestEdges:
        return "serve_ingest_edges";
      case Counter::kServeCompactions:
        return "serve_compactions";
    }
    return "unknown";
}

const char*
trackKindName(TrackKind kind)
{
    switch (kind) {
      case TrackKind::kHost:
        return "host";
      case TrackKind::kWorker:
        return "worker";
      case TrackKind::kSimThread:
        return "sim-thread";
      case TrackKind::kSimCore:
        return "sim-core";
    }
    return "unknown";
}

Track::Track(std::size_t capacity)
{
    std::size_t cap = 16;
    while (cap < capacity) {
        cap <<= 1;
    }
    ring_.resize(cap);
    mask_ = cap - 1;
}

std::vector<SpanEvent>
Track::spans() const
{
    const std::uint64_t cap = mask_ + 1;
    const std::uint64_t n = count_ < cap ? count_ : cap;
    const std::uint64_t first = count_ < cap ? 0 : count_ - cap;
    std::vector<SpanEvent> out;
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        out.push_back(
            ring_[static_cast<std::size_t>((first + i) & mask_)]);
    }
    return out;
}

Recorder::Recorder(std::size_t spans_per_track)
    : spansPerTrack_(spans_per_track)
{
}

Track*
Recorder::createTrack(TrackKind kind, int tid)
{
    std::lock_guard<std::mutex> g(createMutex_);
    auto& slot =
        slots_[static_cast<int>(kind)][static_cast<std::size_t>(tid)];
    Track* t = slot.load(std::memory_order_relaxed);
    if (t == nullptr) {
        owned_.push_back(std::make_unique<Track>(spansPerTrack_));
        t = owned_.back().get();
        slot.store(t, std::memory_order_release);
    }
    return t;
}

std::uint64_t
Recorder::totalCounter(Counter c) const
{
    std::uint64_t total = 0;
    forEachTrack([&](TrackKind, int, const Track& t) {
        total += t.counter(c);
    });
    return total;
}

std::uint64_t
Recorder::totalDropped() const
{
    std::uint64_t total = 0;
    forEachTrack([&](TrackKind, int, const Track& t) {
        total += t.dropped();
    });
    return total;
}

#if !defined(CRONO_TELEMETRY_DISABLED)

namespace detail {
std::atomic<Recorder*> g_sink{nullptr};
} // namespace detail

void
setSink(Recorder* recorder)
{
    detail::g_sink.store(recorder, std::memory_order_release);
}

#endif // !CRONO_TELEMETRY_DISABLED

} // namespace crono::obs

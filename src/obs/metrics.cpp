#include "obs/metrics.h"

#include "obs/histogram.h"
#include "obs/json.h"

namespace crono::obs {

namespace {

// Component / miss-class labels, spelled here rather than calling the
// crono_sim name functions so crono_obs stays link-independent of the
// simulator (it reads sim::SimRunStats fields only). The static
// asserts tie the copies to the enum sizes.
static_assert(sim::kNumComponents == 6,
              "update component labels below alongside sim::Component");
constexpr const char* kComponentLabels[sim::kNumComponents] = {
    "compute",       "l1_to_l2_home", "l2_home_waiting",
    "l2_home_sharers", "l2_home_off_chip", "synchronization",
};

constexpr const char* kMissClassLabels[3] = {"cold", "capacity",
                                             "sharing"};

void
writeCacheStats(JsonWriter& w, const sim::CacheStats& c)
{
    w.beginObject();
    w.key("accesses").value(c.accesses);
    w.key("hits").value(c.hits);
    w.key("misses").beginObject();
    for (int i = 0; i < 3; ++i) {
        w.key(kMissClassLabels[i]).value(c.misses[static_cast<std::size_t>(i)]);
    }
    w.endObject();
    w.key("total_misses").value(c.totalMisses());
    w.key("miss_rate").value(c.missRate());
    w.endObject();
}

void
writeCounters(
    JsonWriter& w,
    const std::vector<std::pair<std::string, std::uint64_t>>& counters)
{
    w.beginObject();
    for (const auto& [name, val] : counters) {
        w.key(name).value(val);
    }
    w.endObject();
}

} // namespace

std::vector<std::pair<std::string, std::uint64_t>>
counterTotals(const Recorder& recorder)
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (int c = 0; c < kNumCounters; ++c) {
        const std::uint64_t v =
            recorder.totalCounter(static_cast<Counter>(c));
        if (v != 0) {
            out.emplace_back(counterName(static_cast<Counter>(c)), v);
        }
    }
    return out;
}

CounterSnapshot
counterSnapshot()
{
    CounterSnapshot snap{};
    if (const Recorder* r = sink()) {
        for (int c = 0; c < kNumCounters; ++c) {
            snap[static_cast<std::size_t>(c)] =
                r->totalCounter(static_cast<Counter>(c));
        }
    }
    return snap;
}

std::vector<std::pair<std::string, std::uint64_t>>
counterDiff(const CounterSnapshot& before, const CounterSnapshot& after)
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (int c = 0; c < kNumCounters; ++c) {
        const auto i = static_cast<std::size_t>(c);
        if (after[i] != before[i]) {
            out.emplace_back(counterName(static_cast<Counter>(c)),
                             after[i] - before[i]);
        }
    }
    return out;
}

void
BenchResult::setTrialPercentiles(const std::vector<double>& trial_seconds)
{
    p50_seconds = exactQuantile(trial_seconds, 0.50);
    p90_seconds = exactQuantile(trial_seconds, 0.90);
    p99_seconds = exactQuantile(trial_seconds, 0.99);
}

void
MetricsReport::setRuntime(const rt::RunInfo& info)
{
    time = info.time;
    variability = info.variability;
    thread_ops = info.thread_ops;
    round_variability = info.round_variability;
}

void
MetricsReport::setCounters(const Recorder& recorder)
{
    counters = counterTotals(recorder);
    spans_dropped = recorder.totalDropped();
    spans_recorded = 0;
    recorder.forEachTrack([this](TrackKind, int, const Track& t) {
        spans_recorded += t.recorded();
    });
}

void
MetricsReport::setSim(const sim::SimRunStats& stats)
{
    has_sim = true;
    sim = stats;
}

std::string
MetricsReport::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("crono.metrics.v1");
    w.key("kernel").value(kernel);
    w.key("graph").value(graph);
    w.key("threads").value(threads);
    w.key("frontier_mode").value(frontier_mode);

    w.key("runtime").beginObject();
    w.key("time").value(time);
    w.key("time_unit").value(time_unit);
    w.key("variability").value(variability);
    w.key("rounds").value(rounds);
    w.key("thread_ops").beginArray();
    for (const std::uint64_t ops : thread_ops) {
        w.value(ops);
    }
    w.endArray();
    w.key("round_variability").beginArray();
    for (const double v : round_variability) {
        w.value(v);
    }
    w.endArray();
    w.endObject();

    w.key("counters");
    writeCounters(w, counters);
    w.key("spans").beginObject();
    w.key("recorded").value(spans_recorded);
    w.key("dropped").value(spans_dropped);
    w.endObject();

    if (has_sim) {
        w.key("sim").beginObject();
        w.key("completion_cycles").value(sim.completion_cycles);
        w.key("breakdown").beginObject();
        for (int c = 0; c < sim::kNumComponents; ++c) {
            w.key(kComponentLabels[c])
                .value(sim.breakdown.cycles[static_cast<std::size_t>(c)]);
        }
        w.endObject();
        w.key("l1d");
        writeCacheStats(w, sim.l1d);
        w.key("l1i_accesses").value(sim.l1i_accesses);
        w.key("l2");
        writeCacheStats(w, sim.l2);
        w.key("cache_hierarchy_miss_rate")
            .value(sim.cacheHierarchyMissRate());
        w.key("network").beginObject();
        w.key("messages").value(sim.network.messages);
        w.key("flits").value(sim.network.flits);
        w.key("flit_hops").value(sim.network.flit_hops);
        w.key("contention_cycles").value(sim.network.contention_cycles);
        w.endObject();
        w.key("dram").beginObject();
        w.key("accesses").value(sim.dram.accesses);
        w.key("queue_cycles").value(sim.dram.queue_cycles);
        w.endObject();
        w.key("directory").beginObject();
        w.key("lookups").value(sim.directory.lookups);
        w.key("invalidations").value(sim.directory.invalidations);
        w.key("broadcasts").value(sim.directory.broadcasts);
        w.key("write_backs").value(sim.directory.write_backs);
        w.endObject();
        w.key("energy").beginObject();
        w.key("l1i").value(sim.energy.l1i);
        w.key("l1d").value(sim.energy.l1d);
        w.key("l2").value(sim.energy.l2);
        w.key("directory").value(sim.energy.directory);
        w.key("router").value(sim.energy.router);
        w.key("link").value(sim.energy.link);
        w.key("dram").value(sim.energy.dram);
        w.key("total").value(sim.energy.total());
        w.endObject();
        w.endObject();
    } else {
        w.key("sim").null();
    }

    w.endObject();
    return w.str();
}

bool
MetricsReport::writeJson(const std::string& path) const
{
    return writeTextFile(path, toJson());
}

std::string
benchSuiteJson(const std::vector<BenchResult>& results)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("crono.bench.v1");
    w.key("results").beginArray();
    for (const BenchResult& r : results) {
        w.beginObject();
        w.key("name").value(r.name);
        w.key("kernel").value(r.kernel);
        w.key("graph").value(r.graph);
        w.key("vertices").value(r.vertices);
        w.key("edges").value(r.edges);
        w.key("threads").value(r.threads);
        w.key("mode").value(r.mode);
        w.key("time_seconds").value(r.time_seconds);
        w.key("edges_per_second").value(r.edges_per_second);
        w.key("variability").value(r.variability);
        w.key("rounds").value(r.rounds);
        w.key("seq_seconds").value(r.seq_seconds);
        w.key("speedup").value(r.speedup);
        w.key("trials").value(r.trials);
        w.key("p50_seconds").value(r.p50_seconds);
        w.key("p90_seconds").value(r.p90_seconds);
        w.key("p99_seconds").value(r.p99_seconds);
        w.key("counters");
        writeCounters(w, r.counters);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace crono::obs

#include "obs/trace_export.h"

#include <algorithm>
#include <array>
#include <string>

#include "obs/json.h"

namespace crono::obs {

namespace {

/** Chrome trace pid for a track kind (1-based, stable order). */
int
pidOf(TrackKind kind)
{
    return static_cast<int>(kind) + 1;
}

/** Native tracks record ns; simulated tracks record cycles. */
bool
nsClock(TrackKind kind)
{
    return kind == TrackKind::kHost || kind == TrackKind::kWorker;
}

/** Exported time unit: ns -> us, cycles -> 1 unit per cycle. */
double
toUnits(TrackKind kind, std::uint64_t delta)
{
    return nsClock(kind) ? static_cast<double>(delta) / 1000.0
                         : static_cast<double>(delta);
}

} // namespace

std::string
chromeTraceJson(const Recorder& recorder)
{
    // Normalize per process: the earliest begin of any span in a kind
    // becomes that process's t = 0.
    std::array<std::uint64_t, kNumTrackKinds> t0;
    t0.fill(~std::uint64_t{0});
    recorder.forEachTrack([&](TrackKind kind, int, const Track& t) {
        for (const SpanEvent& ev : t.spans()) {
            t0[static_cast<int>(kind)] =
                std::min(t0[static_cast<int>(kind)], ev.begin);
        }
    });

    JsonWriter w;
    w.beginObject();
    w.key("displayTimeUnit").value("ms");
    w.key("traceEvents").beginArray();

    // Metadata: process and thread names.
    bool named[kNumTrackKinds] = {};
    recorder.forEachTrack([&](TrackKind kind, int tid, const Track&) {
        if (!named[static_cast<int>(kind)]) {
            named[static_cast<int>(kind)] = true;
            w.beginObject();
            w.key("name").value("process_name");
            w.key("ph").value("M");
            w.key("pid").value(pidOf(kind));
            w.key("args").beginObject();
            w.key("name").value(trackKindName(kind));
            w.endObject();
            w.endObject();
        }
        w.beginObject();
        w.key("name").value("thread_name");
        w.key("ph").value("M");
        w.key("pid").value(pidOf(kind));
        w.key("tid").value(tid);
        w.key("args").beginObject();
        std::string tname = trackKindName(kind);
        tname += " ";
        tname += std::to_string(tid);
        w.key("name").value(tname);
        w.endObject();
        w.endObject();
    });

    // Spans as complete ("X") events.
    recorder.forEachTrack([&](TrackKind kind, int tid, const Track& t) {
        const std::uint64_t base = t0[static_cast<int>(kind)];
        std::uint64_t track_end = 0;
        for (const SpanEvent& ev : t.spans()) {
            track_end = std::max(track_end, ev.end);
            w.beginObject();
            w.key("name").value(ev.name);
            w.key("cat").value(spanCatName(ev.cat));
            w.key("ph").value("X");
            w.key("pid").value(pidOf(kind));
            w.key("tid").value(tid);
            w.key("ts").value(toUnits(kind, ev.begin - base));
            const std::uint64_t dur =
                ev.end > ev.begin ? ev.end - ev.begin : 0;
            w.key("dur").value(toUnits(kind, dur));
            w.key("args").beginObject();
            w.key("arg").value(ev.arg);
            w.endObject();
            w.endObject();
        }
        // Counter totals as one trailing "C" sample per counter.
        const double end_ts =
            track_end > base ? toUnits(kind, track_end - base) : 0.0;
        for (int c = 0; c < kNumCounters; ++c) {
            const std::uint64_t v = t.counter(static_cast<Counter>(c));
            if (v == 0) {
                continue;
            }
            const char* cname = counterName(static_cast<Counter>(c));
            w.beginObject();
            w.key("name").value(cname);
            w.key("ph").value("C");
            w.key("pid").value(pidOf(kind));
            w.key("tid").value(tid);
            w.key("ts").value(end_ts);
            w.key("args").beginObject();
            w.key(cname).value(v);
            w.endObject();
            w.endObject();
        }
    });

    w.endArray();
    w.endObject();
    return w.str();
}

bool
writeChromeTrace(const Recorder& recorder, const std::string& path)
{
    return writeTextFile(path, chromeTraceJson(recorder));
}

} // namespace crono::obs

/**
 * @file
 * Minimal dependency-free JSON support for the exporters.
 *
 * Two halves:
 *  - JsonWriter: a streaming writer (explicit begin/end scopes, string
 *    escaping, integer-exact uint64) used to emit traces, metrics and
 *    bench reports without building an in-memory document.
 *  - json::Value + json::parse: a small recursive-descent parser used
 *    by the schema tests to round-trip everything the writers emit
 *    (and by consumers that want to read a report back).
 *
 * The writer emits only valid JSON: non-finite doubles are clamped to
 * 0 (they would otherwise produce "nan"/"inf", which json.tool and
 * Perfetto both reject).
 */

#ifndef CRONO_OBS_JSON_H_
#define CRONO_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace crono::obs {

/** Streaming JSON writer with scope tracking. */
class JsonWriter {
  public:
    JsonWriter& beginObject();
    JsonWriter& endObject();
    JsonWriter& beginArray();
    JsonWriter& endArray();

    /** Object key; must be followed by a value or scope open. */
    JsonWriter& key(std::string_view k);

    JsonWriter& value(std::string_view v);
    JsonWriter& value(const char* v);
    JsonWriter& value(double v);
    JsonWriter& value(std::uint64_t v);
    JsonWriter& value(std::int64_t v);
    JsonWriter& value(int v);
    JsonWriter& value(unsigned v);
    JsonWriter& value(bool v);
    JsonWriter& null();

    /** The document so far (complete once all scopes are closed). */
    const std::string& str() const { return out_; }

  private:
    void comma();
    void escaped(std::string_view s);

    std::string out_;
    /** One entry per open scope: true until the first element. */
    std::vector<bool> first_;
    bool afterKey_ = false;
};

namespace json {

/** Parsed JSON document node. */
struct Value {
    enum class Kind { null, boolean, number, string, array, object };

    Kind kind = Kind::null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<Value> arr;
    std::vector<std::pair<std::string, Value>> obj; ///< insertion order

    bool isNull() const { return kind == Kind::null; }
    bool isNumber() const { return kind == Kind::number; }
    bool isString() const { return kind == Kind::string; }
    bool isArray() const { return kind == Kind::array; }
    bool isObject() const { return kind == Kind::object; }

    /** Member lookup (nullptr if absent or not an object). */
    const Value* find(std::string_view key) const;

    /** num as an unsigned integer (0 when not a number). */
    std::uint64_t asU64() const;
};

/**
 * Parse @p text into @p out.
 * @return true on success; on failure @p err (if non-null) gets a
 *         one-line description with the byte offset.
 */
bool parse(std::string_view text, Value& out, std::string* err = nullptr);

} // namespace json

/** Overwrite @p path with @p content. @return false on I/O error. */
bool writeTextFile(const std::string& path, std::string_view content);

} // namespace crono::obs

#endif // CRONO_OBS_JSON_H_

/**
 * @file
 * Core of the observability layer: scoped spans and named counters
 * recorded into per-track single-writer ring buffers behind a
 * runtime-nullable global sink.
 *
 * Design constraints (this is a *measurement substrate* — it must not
 * perturb what it measures):
 *
 *  - Compile-time gate: configuring with -DCRONO_TELEMETRY=OFF defines
 *    CRONO_TELEMETRY_DISABLED, which turns sink() into a constexpr
 *    nullptr so every `if (auto* r = obs::sink())` hook folds away to
 *    nothing. The Recorder/exporter types stay defined either way so
 *    call sites compile identically.
 *  - Runtime-nullable sink: with telemetry compiled in but no
 *    TelemetrySession installed (the paper-figure benches), a hook
 *    costs one relaxed atomic load and a predictable branch.
 *  - Lock-free recording: each (kind, tid) track is written by exactly
 *    one thread (on the simulator, all fibers share the host thread),
 *    so appends are plain stores into a private ring — no locks, no
 *    shared cache lines between recording threads. The only lock is a
 *    creation-time mutex taken once per track.
 *  - Clock domains: native tracks carry steady-clock nanoseconds,
 *    simulator tracks carry simulated cycles. Exporters normalize per
 *    domain; recording never converts.
 *  - On the simulator, hooks use only ctx.tid()/ctx.timestamp(), never
 *    ctx.read()/write(), so telemetry adds zero modeled memory traffic
 *    and zero simulated cycles — simulated statistics are bit-for-bit
 *    identical with telemetry on or off.
 */

#ifndef CRONO_OBS_TELEMETRY_H_
#define CRONO_OBS_TELEMETRY_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/perf/sampler.h"

namespace crono::obs {

// ---------------------------------------------------------------- spans

/** Span categories (the "cat" field of exported trace events). */
enum class SpanCat : std::uint8_t {
    kKernel = 0,   ///< a whole parallel region / kernel driver
    kRound,        ///< one frontier round / PageRank phase
    kBarrierWait,  ///< blocked in a barrier or lock
    kSteal,        ///< draining another thread's chunk queue
    kSimEpoch,     ///< simulated-thread / sim-core lifetime
};

inline constexpr int kNumSpanCats = 5;

/** Printable category name, e.g. "barrier-wait". */
const char* spanCatName(SpanCat cat);

/**
 * One closed span. @p name must be a string literal (or otherwise
 * outlive the Recorder); spans are stored by pointer, never copied.
 */
struct SpanEvent {
    std::uint64_t begin = 0;    ///< track clock domain (ns or cycles)
    std::uint64_t end = 0;
    const char* name = nullptr;
    std::uint64_t arg = 0;      ///< payload (front size, chunks, ops)
    SpanCat cat = SpanCat::kKernel;
};

// -------------------------------------------------------------- counters

/** Named monotonic counters, one fixed slot per track. */
enum class Counter : std::uint8_t {
    kRelaxations = 0,  ///< successful distance/label improvements
    kExpansions,       ///< front vertices expanded (edge scans)
    kDeferrals,        ///< SSSP pacing re-queues
    kActivations,      ///< vertices pushed onto a next front
    kDenseRounds,      ///< rounds consumed via the dense bitmap
    kSparseRounds,     ///< rounds consumed via the work lists
    kModeSwitches,     ///< dense<->sparse flips (kAdaptive)
    kStealAttempts,    ///< probes of a non-empty victim queue
    kStealChunks,      ///< chunks actually stolen
    kBarrierWaits,     ///< barrier episodes entered
    kIterations,       ///< fixed-iteration kernels (PageRank)
    kBusyCycles,       ///< sim: compute component cycles
    kStallCycles,      ///< sim: non-compute (memory + sync) cycles
    kPullRounds,       ///< rounds consumed pull-side (direction opt.)
    kCaptures,         ///< work items claimed via vertex capture
    kDonations,        ///< branches donated to a shared stack
    kMoves,            ///< community-detection vertex moves
    kTriangles,        ///< triangles enumerated (each exactly once)
    kBranches,         ///< B&B (TSP/MCS) search-tree nodes visited
    kReorderMs,        ///< milliseconds spent reordering a graph
    kBlockFills,       ///< (bin, destination) entries in blocked layouts
    kBucketSteps,      ///< delta-stepping light-bucket phases executed
    kStaleSkips,       ///< delta-stepping bucket entries superseded
    kHeavyRelaxations, ///< delta-stepping heavy-edge relaxations tried
    kLoadMs,           ///< milliseconds spent parsing a graph file
    kBidomainSplits,   ///< MCS bidomain classes split during expansion
    kServeRequests,    ///< serve: requests answered (any status)
    kServeBatches,     ///< serve: per-shard batches drained by workers
    kServeIngestEdges, ///< serve: logical edges accepted by ingest
    kServeCompactions, ///< serve: delta compactions folded
};

inline constexpr int kNumCounters = 30;

/** Printable counter name, e.g. "steal_chunks". */
const char* counterName(Counter c);

// --------------------------------------------------------------- tracks

/**
 * Track identity: which timeline an event belongs to. Exporters map
 * each kind to one "process" in the Chrome trace so the clock domains
 * never share an axis.
 */
enum class TrackKind : std::uint8_t {
    kHost = 0,      ///< driver thread (native ns)
    kWorker,        ///< NativeExecutor workers (native ns)
    kSimThread,     ///< simulated software threads (cycles)
    kSimCore,       ///< simulated physical cores (cycles)
};

inline constexpr int kNumTrackKinds = 4;

/** Printable kind name, e.g. "sim-core". */
const char* trackKindName(TrackKind kind);

/**
 * One timeline: a bounded single-writer span ring plus counter slots.
 * When the ring is full the oldest spans are overwritten (dropped()
 * reports how many); counters never saturate.
 */
class Track {
  public:
    /** @param capacity span slots; rounded up to a power of two. */
    explicit Track(std::size_t capacity);

    /** Append one closed span (single writer, wait-free). */
    void
    record(const SpanEvent& ev)
    {
        ring_[static_cast<std::size_t>(count_) & mask_] = ev;
        ++count_;
    }

    /** Bump counter @p c by @p n (single writer). */
    void
    add(Counter c, std::uint64_t n)
    {
        counters_[static_cast<int>(c)] += n;
    }

    /** Spans still in the ring, oldest first (reader side, post-run). */
    std::vector<SpanEvent> spans() const;

    /** Spans overwritten because the ring was full. */
    std::uint64_t
    dropped() const
    {
        const std::uint64_t cap = mask_ + 1;
        return count_ > cap ? count_ - cap : 0;
    }

    /** Total spans ever recorded. */
    std::uint64_t recorded() const { return count_; }

    std::uint64_t
    counter(Counter c) const
    {
        return counters_[static_cast<int>(c)];
    }

    // Live-span tracking: the innermost *open* scoped span's name,
    // maintained by ScopedSpan/ScopedHostSpan (single writer, like
    // the ring). Lets the analysis layer attribute an event raised
    // mid-span — e.g. a detected race — to the kernel or span it
    // occurred in, which the closed-span ring cannot answer until
    // after the fact.

    /** Innermost open scoped span's name (nullptr outside any). */
    const char* liveName() const { return live_; }

    /** Open a scoped span; returns the prior name for popLive. */
    const char*
    pushLive(const char* name)
    {
        const char* prior = live_;
        live_ = name;
        return prior;
    }

    /** Close the innermost span, restoring pushLive's return value. */
    void popLive(const char* prior) { live_ = prior; }

  private:
    std::vector<SpanEvent> ring_;
    std::uint64_t mask_;
    std::uint64_t count_ = 0;
    const char* live_ = nullptr;
    std::array<std::uint64_t, kNumCounters> counters_{};
};

// ------------------------------------------------------------- recorder

/**
 * Owns every track of one telemetry session. Track lookup is a
 * lock-free double-checked load; creation (first use of a (kind, tid)
 * pair) takes a mutex once.
 */
class Recorder {
  public:
    /** Tracks per kind; tids at or above this record nothing. */
    static constexpr int kMaxTracksPerKind = 512;

    /** @param spans_per_track ring capacity of each track. */
    explicit Recorder(std::size_t spans_per_track = 8192);

    Recorder(const Recorder&) = delete;
    Recorder& operator=(const Recorder&) = delete;

    /**
     * The (kind, tid) track, created on first use. Returns nullptr
     * for out-of-range tids so hot paths can skip silently.
     */
    Track*
    track(TrackKind kind, int tid)
    {
        if (tid < 0 || tid >= kMaxTracksPerKind) {
            return nullptr;
        }
        auto& slot = slots_[static_cast<int>(kind)]
                           [static_cast<std::size_t>(tid)];
        Track* t = slot.load(std::memory_order_acquire);
        return t != nullptr ? t : createTrack(kind, tid);
    }

    /** Read-only view of an existing track (nullptr if never used). */
    const Track*
    peek(TrackKind kind, int tid) const
    {
        if (tid < 0 || tid >= kMaxTracksPerKind) {
            return nullptr;
        }
        return slots_[static_cast<int>(kind)]
                     [static_cast<std::size_t>(tid)]
            .load(std::memory_order_acquire);
    }

    /** Invoke fn(kind, tid, track) for every created track. */
    template <class Fn>
    void
    forEachTrack(Fn&& fn) const
    {
        for (int k = 0; k < kNumTrackKinds; ++k) {
            for (int tid = 0; tid < kMaxTracksPerKind; ++tid) {
                const Track* t = slots_[k][static_cast<std::size_t>(tid)]
                                     .load(std::memory_order_acquire);
                if (t != nullptr) {
                    fn(static_cast<TrackKind>(k), tid, *t);
                }
            }
        }
    }

    /** Counter @p c summed over every track. */
    std::uint64_t totalCounter(Counter c) const;

    /** Spans dropped summed over every track. */
    std::uint64_t totalDropped() const;

  private:
    Track* createTrack(TrackKind kind, int tid);

    using Slots = std::array<std::atomic<Track*>,
                             static_cast<std::size_t>(kMaxTracksPerKind)>;
    std::array<Slots, kNumTrackKinds> slots_{};
    std::deque<std::unique_ptr<Track>> owned_;
    std::mutex createMutex_;
    std::size_t spansPerTrack_;
};

// ------------------------------------------------ global nullable sink

#if defined(CRONO_TELEMETRY_DISABLED)

/** Telemetry compiled out: hooks fold to nothing. */
constexpr Recorder* sink() { return nullptr; }
inline void setSink(Recorder*) {}

#else

namespace detail {
extern std::atomic<Recorder*> g_sink;
} // namespace detail

/** The installed recorder, or nullptr when telemetry is idle. */
inline Recorder*
sink()
{
    return detail::g_sink.load(std::memory_order_acquire);
}

/** Install (or, with nullptr, remove) the global recorder. */
void setSink(Recorder* recorder);

#endif // CRONO_TELEMETRY_DISABLED

/**
 * RAII telemetry session: owns a Recorder and installs it as the
 * global sink for its lifetime. Sessions must not nest.
 */
class TelemetrySession {
  public:
    explicit TelemetrySession(std::size_t spans_per_track = 8192)
        : recorder_(spans_per_track)
    {
        setSink(&recorder_);
    }

    ~TelemetrySession() { setSink(nullptr); }

    TelemetrySession(const TelemetrySession&) = delete;
    TelemetrySession& operator=(const TelemetrySession&) = delete;

    Recorder& recorder() { return recorder_; }
    const Recorder& recorder() const { return recorder_; }

  private:
    Recorder recorder_;
};

// ------------------------------------------------------ record helpers

/** Steady-clock nanoseconds (the native tracks' clock domain). */
inline std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Track kind for events recorded by an ExecutionContext: simulated
 * contexts (SimCtx) land on kSimThread tracks, native ones on
 * kWorker. Requires Ctx::kSimulated (part of the context concept).
 */
template <class Ctx>
inline constexpr TrackKind ctxTrackKind =
    Ctx::kSimulated ? TrackKind::kSimThread : TrackKind::kWorker;

// Null-safe hook primitives. Call sites use these instead of member
// calls so the CRONO_TELEMETRY_DISABLED build contains no (dead)
// member call on a folded-null pointer — gcc's -Wnonnull flags those
// even in provably unreachable branches.

/** The (kind, tid) track of @p r, or nullptr when idle/disabled. */
inline Track*
trackFor(Recorder* r, TrackKind kind, int tid)
{
#if defined(CRONO_TELEMETRY_DISABLED)
    (void)r;
    (void)kind;
    (void)tid;
    return nullptr;
#else
    return r != nullptr ? r->track(kind, tid) : nullptr;
#endif
}

/** Append @p ev to @p t if it exists. */
inline void
spanRecord(Track* t, const SpanEvent& ev)
{
#if defined(CRONO_TELEMETRY_DISABLED)
    (void)t;
    (void)ev;
#else
    if (t != nullptr) {
        t->record(ev);
    }
#endif
}

/** Bump counter @p c on @p t if it exists. */
inline void
counterBump(Track* t, Counter c, std::uint64_t n)
{
#if defined(CRONO_TELEMETRY_DISABLED)
    (void)t;
    (void)c;
    (void)n;
#else
    if (t != nullptr) {
        t->add(c, n);
    }
#endif
}

/** Bump a counter on the calling context's track (no-op when idle). */
template <class Ctx>
inline void
counterAdd(Ctx& ctx, Counter c, std::uint64_t n)
{
    if (n == 0) {
        return;
    }
    counterBump(trackFor(sink(), ctxTrackKind<Ctx>, ctx.tid()), c, n);
}

/**
 * RAII span on the calling context's track, in the context's clock
 * domain. Does nothing (and reads no clock) when the sink is idle.
 *
 * On native contexts, an active perf::ProfileSession additionally
 * brackets the span with hardware-counter samples so the span name
 * accumulates per-thread counter deltas (simulated contexts never
 * sample — host counters are meaningless for the model).
 */
template <class Ctx>
class ScopedSpan {
  public:
    ScopedSpan(Ctx& ctx, SpanCat cat, const char* name,
               std::uint64_t arg = 0)
    {
        track_ = trackFor(sink(), ctxTrackKind<Ctx>, ctx.tid());
        if (track_ != nullptr) {
            ctx_ = &ctx;
            ev_ = {ctx.timestamp(), 0, name, arg, cat};
            prior_ = track_->pushLive(name);
            if constexpr (!Ctx::kSimulated) {
                hwSlot_ = perf::slotForTid(ctx.tid());
                hwToken_ = perf::spanBegin(hwSlot_);
            }
        }
    }

    ~ScopedSpan()
    {
        if (track_ != nullptr) {
            track_->popLive(prior_);
            ev_.end = ctx_->timestamp();
            spanRecord(track_, ev_);
            if constexpr (!Ctx::kSimulated) {
                perf::spanEnd(hwSlot_, hwToken_, ev_.name,
                              static_cast<std::uint8_t>(ev_.cat),
                              ev_.end - ev_.begin);
            }
        }
    }

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

  private:
    Track* track_ = nullptr;
    Ctx* ctx_ = nullptr;
    const char* prior_ = nullptr;
    SpanEvent ev_;
    int hwSlot_ = 0;
    int hwToken_ = -1;
};

/**
 * RAII span on the host track (native ns clock): wraps driver-level
 * work such as a whole kernel invocation.
 */
class ScopedHostSpan {
  public:
    explicit ScopedHostSpan(const char* name, std::uint64_t arg = 0,
                            SpanCat cat = SpanCat::kKernel)
    {
        track_ = trackFor(sink(), TrackKind::kHost, 0);
        if (track_ != nullptr) {
            ev_ = {nowNs(), 0, name, arg, cat};
            prior_ = track_->pushLive(name);
            hwToken_ = perf::spanBegin(perf::kHostSlot);
        }
    }

    ~ScopedHostSpan()
    {
        if (track_ != nullptr) {
            track_->popLive(prior_);
            ev_.end = nowNs();
            spanRecord(track_, ev_);
            perf::spanEnd(perf::kHostSlot, hwToken_, ev_.name,
                          static_cast<std::uint8_t>(ev_.cat),
                          ev_.end - ev_.begin);
        }
    }

    ScopedHostSpan(const ScopedHostSpan&) = delete;
    ScopedHostSpan& operator=(const ScopedHostSpan&) = delete;

  private:
    Track* track_ = nullptr;
    const char* prior_ = nullptr;
    SpanEvent ev_;
    int hwToken_ = -1;
};

} // namespace crono::obs

#endif // CRONO_OBS_TELEMETRY_H_

/**
 * @file
 * Log-bucketed latency histogram (HdrHistogram-style) for span
 * durations and per-source bench trials.
 *
 * Bucketing: values below 2^sub_bits land in exact unit-width
 * buckets; above that, each power-of-two octave is split into
 * 2^sub_bits equal sub-buckets, so the relative bucket width — and
 * therefore the worst-case quantile error before interpolation — is
 * bounded by 2^-sub_bits. The default (sub_bits = 4, 16 sub-buckets
 * per octave) keeps p50/p90/p99 within ~6% of the exact order
 * statistic while covering the full uint64 range in ~1000 buckets.
 *
 * Quantiles are reported as the midpoint of the covering bucket,
 * clamped to the observed [min, max] — so an empty histogram reports
 * 0 and a single-sample histogram reports the sample exactly.
 *
 * exactQuantile() is the companion for the small-sample case (64 GAP
 * source trials): an interpolated order statistic over the raw
 * samples, used where the rows are few enough to keep them all.
 */

#ifndef CRONO_OBS_HISTOGRAM_H_
#define CRONO_OBS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace crono::obs {

/** Fixed-range log-bucketed histogram over uint64 values. */
class LogHistogram {
  public:
    /** @param sub_bits log2 sub-buckets per octave (1..8). */
    explicit LogHistogram(int sub_bits = 4);

    /** Record one value (full uint64 range; never saturates). */
    void add(std::uint64_t value);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ > 0 ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const;

    /**
     * Value at quantile @p q in [0, 1] (0 when empty): midpoint of
     * the covering bucket, clamped to [min, max].
     */
    double quantile(double q) const;

    /** Merge @p other (must share sub_bits) into this histogram. */
    void merge(const LogHistogram& other);

    int subBits() const { return subBits_; }

    /** Invoke fn(lo, hi, count) for every non-empty bucket [lo, hi). */
    template <class Fn>
    void
    forEachBucket(Fn&& fn) const
    {
        for (std::size_t i = 0; i < counts_.size(); ++i) {
            if (counts_[i] != 0) {
                fn(bucketLo(i), bucketHi(i), counts_[i]);
            }
        }
    }

    /** Bucket index covering @p value (exposed for tests). */
    std::size_t indexFor(std::uint64_t value) const;

    /** Inclusive lower bound of bucket @p index. */
    std::uint64_t bucketLo(std::size_t index) const;

    /** Exclusive upper bound of bucket @p index (saturates at max). */
    std::uint64_t bucketHi(std::size_t index) const;

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
    int subBits_;
};

/**
 * Interpolated order statistic: the value at quantile @p q of
 * @p samples (unsorted; copied and sorted internally). Returns 0 for
 * an empty vector. q is clamped to [0, 1].
 */
double exactQuantile(const std::vector<double>& samples, double q);

} // namespace crono::obs

#endif // CRONO_OBS_HISTOGRAM_H_

#include "obs/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/macros.h"

namespace crono::obs {

LogHistogram::LogHistogram(int sub_bits) : subBits_(sub_bits)
{
    CRONO_REQUIRE(sub_bits >= 1 && sub_bits <= 8,
                  "LogHistogram sub_bits out of range");
    // Highest index is the one covering UINT64_MAX (msb 63):
    //   ((63 - sub_bits + 1) << sub_bits) + (2^sub_bits - 1)
    const std::size_t top =
        (static_cast<std::size_t>(64 - subBits_) << subBits_) +
        ((std::size_t{1} << subBits_) - 1);
    counts_.assign(top + 1, 0);
}

std::size_t
LogHistogram::indexFor(std::uint64_t value) const
{
    const auto sub_count = std::uint64_t{1} << subBits_;
    if (value < sub_count) {
        return static_cast<std::size_t>(value);
    }
    const int msb = 63 - std::countl_zero(value);
    const int shift = msb - subBits_;
    const auto sub = (value >> shift) & (sub_count - 1);
    return (static_cast<std::size_t>(msb - subBits_ + 1) << subBits_) +
           static_cast<std::size_t>(sub);
}

std::uint64_t
LogHistogram::bucketLo(std::size_t index) const
{
    const auto sub_count = std::uint64_t{1} << subBits_;
    if (index < sub_count) {
        return index;
    }
    const auto octave = index >> subBits_; // >= 1
    const auto sub = index & (sub_count - 1);
    return (sub_count + sub) << (octave - 1);
}

std::uint64_t
LogHistogram::bucketHi(std::size_t index) const
{
    const auto sub_count = std::uint64_t{1} << subBits_;
    if (index < sub_count) {
        return index + 1;
    }
    const auto octave = index >> subBits_;
    const std::uint64_t lo = bucketLo(index);
    const std::uint64_t width = std::uint64_t{1} << (octave - 1);
    // The final bucket's half-open bound would wrap past UINT64_MAX.
    return lo + width >= lo ? lo + width : ~std::uint64_t{0};
}

void
LogHistogram::add(std::uint64_t value)
{
    ++counts_[indexFor(value)];
    ++count_;
    sum_ += value;
    if (count_ == 1 || value < min_) {
        min_ = value;
    }
    if (value > max_) {
        max_ = value;
    }
}

double
LogHistogram::mean() const
{
    return count_ > 0
               ? static_cast<double>(sum_) / static_cast<double>(count_)
               : 0.0;
}

double
LogHistogram::quantile(double q) const
{
    if (count_ == 0) {
        return 0.0;
    }
    q = std::clamp(q, 0.0, 1.0);
    // 0-based rank of the order statistic we want.
    const auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count_ - 1));
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        cumulative += counts_[i];
        if (cumulative > rank) {
            const double mid =
                0.5 * (static_cast<double>(bucketLo(i)) +
                       static_cast<double>(bucketHi(i)));
            return std::clamp(mid, static_cast<double>(min_),
                              static_cast<double>(max_));
        }
    }
    return static_cast<double>(max_); // unreachable if counts are sane
}

void
LogHistogram::merge(const LogHistogram& other)
{
    CRONO_REQUIRE(subBits_ == other.subBits_,
                  "LogHistogram::merge needs matching sub_bits");
    if (other.count_ == 0) {
        return;
    }
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        counts_[i] += other.counts_[i];
    }
    if (count_ == 0 || other.min_ < min_) {
        min_ = other.min_;
    }
    if (other.max_ > max_) {
        max_ = other.max_;
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

double
exactQuantile(const std::vector<double>& samples, double q)
{
    if (samples.empty()) {
        return 0.0;
    }
    std::vector<double> sorted(samples);
    std::sort(sorted.begin(), sorted.end());
    q = std::clamp(q, 0.0, 1.0);
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= sorted.size()) {
        return sorted.back();
    }
    return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

} // namespace crono::obs

/**
 * @file
 * The "crono.profile.v1" report: span-attributed hardware-counter
 * deltas, log-bucketed duration percentiles, and per-thread
 * busy/steal/barrier-wait imbalance fractions — the native-hardware
 * counterpart of the sim:: characterization tables (Fig 3/4).
 *
 * Schema (add-only, like the other crono.* documents):
 *
 *   { "schema": "crono.profile.v1",
 *     "source": "perf" | "perf-sw" | "fallback",
 *     "multiplexed": bool,
 *     "sections": [                       // one per profiled input
 *       { "graph": ..., "threads": N,
 *         "spans": [
 *           { "name": "SSSP_DIJK", "cat": "kernel", "count": ...,
 *             "duration_ns": {mean,p50,p90,p99,max},
 *             "counters": { <non-zero merged deltas> },
 *             "derived": {ipc, llc_miss_rate, branch_miss_rate,
 *                         stall_fraction},
 *             "per_thread": [ {"slot": s, "counters": {...}} ] } ],
 *         "imbalance": { "threads": [ {"tid", "wall_ns",
 *             "busy_frac", "barrier_frac", "steal_frac"} ],
 *             "busy_cv": ... },
 *         "sim": null | [ {"kernel", "completion_cycles",
 *             "l1d_miss_rate", "l2_miss_rate",
 *             "hierarchy_miss_rate"} ] } ] }
 *
 * Span aggregates are *inclusive* (a round span's cost is also part
 * of its kernel span), and imbalance fractions are derived from the
 * telemetry span rings, so spans dropped from a full ring make them
 * approximations (the per-section "spans_dropped" field says when).
 */

#ifndef CRONO_OBS_PROFILE_REPORT_H_
#define CRONO_OBS_PROFILE_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"
#include "obs/perf/counters.h"
#include "obs/perf/sampler.h"
#include "obs/telemetry.h"

namespace crono::obs {

/** One span name's cost, merged across threads. */
struct SpanProfile {
    std::string name;
    std::string cat;          ///< spanCatName of the SpanCat
    std::uint64_t count = 0;  ///< closed spans aggregated
    perf::CounterDelta total; ///< merged across threads
    LogHistogram duration_ns{4};
    /** Per-thread deltas, keyed by sampler slot (0 = host). */
    std::vector<std::pair<int, perf::CounterDelta>> per_thread;
};

/** One worker thread's time split, from the telemetry span rings. */
struct ThreadImbalance {
    int tid = 0;
    double wall_ns = 0.0;     ///< sum of this thread's worker spans
    double busy_frac = 0.0;   ///< 1 - barrier_frac - steal_frac
    double barrier_frac = 0.0;
    double steal_frac = 0.0;
};

struct ImbalanceSummary {
    std::vector<ThreadImbalance> threads;
    /** Coefficient of variation of per-thread busy time. */
    double busy_cv = 0.0;
};

/**
 * Per-thread busy/steal/barrier-wait split from @p recorder's worker
 * tracks (worker spans minus the barrier-wait and steal spans nested
 * inside them).
 */
ImbalanceSummary imbalanceFromRecorder(const Recorder& recorder);

/** Spans of @p c merged across tracks, largest total duration first. */
std::vector<SpanProfile> collectSpanProfiles(const perf::Collector& c);

/** One profiled input's results. */
struct ProfileSection {
    std::string graph;
    int threads = 0;
    std::uint64_t spans_dropped = 0;
    std::vector<SpanProfile> spans;
    ImbalanceSummary imbalance;

    /** Sim side-by-side row (miss rates from sim::SimRunStats). */
    struct SimRow {
        std::string kernel;
        std::uint64_t completion_cycles = 0;
        double l1d_miss_rate = 0.0;
        double l2_miss_rate = 0.0;
        double hierarchy_miss_rate = 0.0;
    };
    bool has_sim = false;
    std::vector<SimRow> sim;
};

/** The whole document. */
struct ProfileReport {
    perf::CounterSource source = perf::CounterSource::kNone;
    bool multiplexed = false;
    std::vector<ProfileSection> sections;

    std::string toJson() const;
    bool writeJson(const std::string& path) const;
};

} // namespace crono::obs

#endif // CRONO_OBS_PROFILE_REPORT_H_

/**
 * @file
 * Chrome trace-event exporter: turns a Recorder's tracks into the
 * JSON object format that Perfetto and chrome://tracing load.
 *
 * Mapping:
 *  - each TrackKind becomes one "process" (host=1, worker=2,
 *    sim-thread=3, sim-core=4) so the two clock domains (native
 *    nanoseconds, simulated cycles) never share an axis;
 *  - each (kind, tid) track becomes one named "thread" in it;
 *  - spans become "X" (complete) events with ts/dur in microsecond
 *    units — native ns are divided by 1000, simulated cycles are
 *    exported 1 cycle = 1 unit (the axis reads as "us" but means
 *    cycles; only relative placement matters);
 *  - timestamps are normalized per process (min begin = 0) so native
 *    steady-clock epochs don't push the viewport into year 2262;
 *  - counter totals become one trailing "C" event per counter per
 *    track, visible as Perfetto counter tracks.
 */

#ifndef CRONO_OBS_TRACE_EXPORT_H_
#define CRONO_OBS_TRACE_EXPORT_H_

#include <string>

#include "obs/telemetry.h"

namespace crono::obs {

/** The trace-event JSON document for @p recorder. */
std::string chromeTraceJson(const Recorder& recorder);

/**
 * Write chromeTraceJson(recorder) to @p path.
 * @return false on I/O error.
 */
bool writeChromeTrace(const Recorder& recorder, const std::string& path);

} // namespace crono::obs

#endif // CRONO_OBS_TRACE_EXPORT_H_

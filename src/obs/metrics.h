/**
 * @file
 * Machine-readable run reports with stable schemas.
 *
 *  - MetricsReport ("crono.metrics.v1"): one JSON document merging a
 *    run's identity (kernel, graph, threads, frontier mode), the
 *    runtime measurement (rt::RunInfo incl. per-round variability),
 *    the telemetry counters of a Recorder, and — when the run went
 *    through the simulator — the full sim::SimRunStats (cycle
 *    breakdown, cache/NoC/DRAM/directory counters, energy).
 *  - BenchResult ("crono.bench.v1"): one row of bench_micro --json;
 *    benchSuiteJson() wraps rows into the BENCH_micro.json document
 *    that tracks the perf trajectory across PRs.
 *
 * Schema stability contract: fields are only ever added, never
 * renamed or removed, and the "schema" tag is bumped on any breaking
 * change. tests/obs_test.cpp round-trips both documents through
 * obs::json::parse.
 */

#ifndef CRONO_OBS_METRICS_H_
#define CRONO_OBS_METRICS_H_

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/telemetry.h"
// crono-lint: allow(include-layering): MetricsReport is the one merge point that folds executor counters into report rows — a read-only view over the higher layer, linked only into tools/tests
#include "runtime/executor.h"
// crono-lint: allow(include-layering): same merge-point exception as executor.h above, for the simulator's stats block
#include "sim/stats.h"

namespace crono::obs {

/** One run's merged metrics (see file comment for the schema). */
struct MetricsReport {
    // Identity.
    std::string kernel;        ///< paper name, e.g. "SSSP_DIJK"
    std::string graph;         ///< input description
    int threads = 0;
    std::string frontier_mode; ///< "flagscan" / "sparse" / "adaptive"

    // Runtime section (RunInfo).
    double time = 0.0;         ///< seconds (native) or cycles (sim)
    std::string time_unit = "seconds";
    double variability = 0.0;
    std::uint64_t rounds = 0;
    std::vector<std::uint64_t> thread_ops;
    std::vector<double> round_variability;

    // Telemetry counters, merged across tracks (insertion order).
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::uint64_t spans_recorded = 0;
    std::uint64_t spans_dropped = 0;

    // Simulator section (absent unless setSim was called).
    bool has_sim = false;
    sim::SimRunStats sim;

    /** Copy the RunInfo measurement into the runtime section. */
    void setRuntime(const rt::RunInfo& info);

    /** Merge every non-zero counter total of @p recorder. */
    void setCounters(const Recorder& recorder);

    /** Attach simulator statistics. */
    void setSim(const sim::SimRunStats& stats);

    /** The "crono.metrics.v1" JSON document. */
    std::string toJson() const;

    /** Write toJson() to @p path. @return false on I/O error. */
    bool writeJson(const std::string& path) const;
};

/** One bench_micro --json row. */
struct BenchResult {
    std::string name;    ///< unique row id, e.g. "sssp/road/sparse/t4"
    std::string kernel;
    std::string graph;
    std::uint64_t vertices = 0;
    std::uint64_t edges = 0;
    int threads = 0;
    std::string mode;    ///< frontier mode ("" for non-frontier kernels)
    double time_seconds = 0.0;
    double edges_per_second = 0.0;
    double variability = 0.0;
    std::uint64_t rounds = 0;
    /**
     * GAP-methodology fields (add-only, per the schema contract):
     * wall-clock of the work-efficient sequential baseline over the
     * same trials, the baseline-normalized speedup
     * (seq_seconds / time_seconds), and how many trials the times
     * average over. All zero for rows without a baseline.
     */
    double seq_seconds = 0.0;
    double speedup = 0.0;
    std::uint64_t trials = 0;
    /**
     * Trial latency distribution (add-only): order statistics over
     * the per-trial wall-clock samples behind time_seconds (the
     * GAP 64-source trials, or the fixed trial count). All zero for
     * rows measured as a single aggregate.
     */
    double p50_seconds = 0.0;
    double p90_seconds = 0.0;
    double p99_seconds = 0.0;
    std::vector<std::pair<std::string, std::uint64_t>> counters;

    /** Fill p50/p90/p99 from per-trial samples (obs::exactQuantile). */
    void setTrialPercentiles(const std::vector<double>& trial_seconds);
};

/** The "crono.bench.v1" document wrapping @p results. */
std::string benchSuiteJson(const std::vector<BenchResult>& results);

/** Non-zero counter totals of @p recorder, in Counter enum order. */
std::vector<std::pair<std::string, std::uint64_t>>
counterTotals(const Recorder& recorder);

// Session-total counter snapshots. A Recorder only accumulates, so a
// per-row (per-kernel, per-trial-group) counter attribution is the
// difference between two snapshots. Shared by the bench harnesses
// (bench_gap, bench_profile) instead of each carrying its own copy.

/** Totals of every Counter at one instant. */
using CounterSnapshot = std::array<std::uint64_t, kNumCounters>;

/** Snapshot of the installed sink's totals (zeros when idle). */
CounterSnapshot counterSnapshot();

/** Non-zero (after - before) totals, named, in Counter enum order. */
std::vector<std::pair<std::string, std::uint64_t>>
counterDiff(const CounterSnapshot& before, const CounterSnapshot& after);

} // namespace crono::obs

#endif // CRONO_OBS_METRICS_H_

#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace crono::obs {

// ----------------------------------------------------------- JsonWriter

void
JsonWriter::comma()
{
    if (afterKey_) {
        afterKey_ = false;
        return; // value completes a "key": pair, no comma
    }
    if (!first_.empty()) {
        if (first_.back()) {
            first_.back() = false;
        } else {
            out_ += ',';
        }
    }
}

void
JsonWriter::escaped(std::string_view s)
{
    out_ += '"';
    for (const char c : s) {
        switch (c) {
          case '"':
            out_ += "\\\"";
            break;
          case '\\':
            out_ += "\\\\";
            break;
          case '\n':
            out_ += "\\n";
            break;
          case '\r':
            out_ += "\\r";
            break;
          case '\t':
            out_ += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out_ += buf;
            } else {
                out_ += c;
            }
        }
    }
    out_ += '"';
}

JsonWriter&
JsonWriter::beginObject()
{
    comma();
    out_ += '{';
    first_.push_back(true);
    return *this;
}

JsonWriter&
JsonWriter::endObject()
{
    first_.pop_back();
    out_ += '}';
    return *this;
}

JsonWriter&
JsonWriter::beginArray()
{
    comma();
    out_ += '[';
    first_.push_back(true);
    return *this;
}

JsonWriter&
JsonWriter::endArray()
{
    first_.pop_back();
    out_ += ']';
    return *this;
}

JsonWriter&
JsonWriter::key(std::string_view k)
{
    comma();
    escaped(k);
    out_ += ':';
    afterKey_ = true;
    return *this;
}

JsonWriter&
JsonWriter::value(std::string_view v)
{
    comma();
    escaped(v);
    return *this;
}

JsonWriter&
JsonWriter::value(const char* v)
{
    return value(std::string_view(v));
}

JsonWriter&
JsonWriter::value(double v)
{
    comma();
    if (!std::isfinite(v)) {
        v = 0.0; // "nan"/"inf" are not JSON
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
    return *this;
}

JsonWriter&
JsonWriter::value(std::uint64_t v)
{
    comma();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out_ += buf;
    return *this;
}

JsonWriter&
JsonWriter::value(std::int64_t v)
{
    comma();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out_ += buf;
    return *this;
}

JsonWriter&
JsonWriter::value(int v)
{
    return value(static_cast<std::int64_t>(v));
}

JsonWriter&
JsonWriter::value(unsigned v)
{
    return value(static_cast<std::uint64_t>(v));
}

JsonWriter&
JsonWriter::value(bool v)
{
    comma();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter&
JsonWriter::null()
{
    comma();
    out_ += "null";
    return *this;
}

// --------------------------------------------------------------- parser

namespace json {

const Value*
Value::find(std::string_view key) const
{
    if (kind != Kind::object) {
        return nullptr;
    }
    for (const auto& [k, v] : obj) {
        if (k == key) {
            return &v;
        }
    }
    return nullptr;
}

std::uint64_t
Value::asU64() const
{
    if (kind != Kind::number || num < 0) {
        return 0;
    }
    return static_cast<std::uint64_t>(num);
}

namespace {

struct Parser {
    std::string_view text;
    std::size_t pos = 0;
    std::string err;

    bool
    fail(const char* what)
    {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "%s at byte %zu", what, pos);
        err = buf;
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r')) {
            ++pos;
        }
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char* lit)
    {
        const std::size_t n = std::strlen(lit);
        if (text.compare(pos, n, lit) == 0) {
            pos += n;
            return true;
        }
        return fail("bad literal");
    }

    bool
    parseString(std::string& out)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != '"') {
            return fail("expected string");
        }
        ++pos;
        out.clear();
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"') {
                return true;
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size()) {
                break;
            }
            const char esc = text[pos++];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out += esc;
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                if (pos + 4 > text.size()) {
                    return fail("bad \\u escape");
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9') {
                        code |= static_cast<unsigned>(h - '0');
                    } else if (h >= 'a' && h <= 'f') {
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    } else if (h >= 'A' && h <= 'F') {
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    } else {
                        return fail("bad \\u escape");
                    }
                }
                // The exporters only escape control characters, so a
                // one-byte mapping is enough; other code points pass
                // through UTF-8 unescaped.
                out += static_cast<char>(code & 0xff);
                break;
              }
              default:
                return fail("bad escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseValue(Value& out)
    {
        skipWs();
        if (pos >= text.size()) {
            return fail("unexpected end");
        }
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            out.kind = Value::Kind::object;
            skipWs();
            if (consume('}')) {
                return true;
            }
            for (;;) {
                std::string key;
                if (!parseString(key)) {
                    return false;
                }
                if (!consume(':')) {
                    return fail("expected ':'");
                }
                Value v;
                if (!parseValue(v)) {
                    return false;
                }
                out.obj.emplace_back(std::move(key), std::move(v));
                if (consume(',')) {
                    continue;
                }
                if (consume('}')) {
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            out.kind = Value::Kind::array;
            skipWs();
            if (consume(']')) {
                return true;
            }
            for (;;) {
                Value v;
                if (!parseValue(v)) {
                    return false;
                }
                out.arr.push_back(std::move(v));
                if (consume(',')) {
                    continue;
                }
                if (consume(']')) {
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out.kind = Value::Kind::string;
            return parseString(out.str);
        }
        if (c == 't') {
            out.kind = Value::Kind::boolean;
            out.b = true;
            return literal("true");
        }
        if (c == 'f') {
            out.kind = Value::Kind::boolean;
            out.b = false;
            return literal("false");
        }
        if (c == 'n') {
            out.kind = Value::Kind::null;
            return literal("null");
        }
        // number
        const std::size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) {
            ++pos;
        }
        while (pos < text.size() &&
               ((text[pos] >= '0' && text[pos] <= '9') ||
                text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
                text[pos] == '-' || text[pos] == '+')) {
            ++pos;
        }
        if (pos == start) {
            return fail("expected value");
        }
        out.kind = Value::Kind::number;
        out.num = std::strtod(std::string(text.substr(start, pos - start))
                                  .c_str(),
                              nullptr);
        return true;
    }
};

} // namespace

bool
parse(std::string_view text, Value& out, std::string* err)
{
    Parser p{text};
    out = Value{};
    if (!p.parseValue(out)) {
        if (err != nullptr) {
            *err = p.err;
        }
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (err != nullptr) {
            *err = "trailing data after document";
        }
        return false;
    }
    return true;
}

} // namespace json

bool
writeTextFile(const std::string& path, std::string_view content)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        return false;
    }
    const std::size_t written =
        std::fwrite(content.data(), 1, content.size(), f);
    const bool ok = written == content.size() && std::fclose(f) == 0;
    if (!ok && written != content.size()) {
        std::fclose(f);
    }
    return ok;
}

} // namespace crono::obs

/**
 * @file
 * Characterize any graph the way the paper characterizes its inputs:
 * structural statistics, native timings for every applicable kernel,
 * and a simulated architectural profile (breakdown, miss classes,
 * network pressure, energy) at a chosen thread count.
 *
 *   $ ./examples/characterize sparse 4096        # generator families
 *   $ ./examples/characterize road 16384
 *   $ ./examples/characterize social 8192
 *   $ ./examples/characterize file mygraph.el    # crono edge list
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/suite.h"
#include "core/workloads.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "sim/machine.h"

namespace {

using namespace crono;

graph::Graph
loadInput(int argc, char** argv)
{
    const std::string kind = argc > 1 ? argv[1] : "sparse";
    if (kind == "file") {
        if (argc < 3) {
            std::fprintf(stderr, "usage: characterize file <path.el>\n");
            std::exit(1);
        }
        return graph::io::loadEdgeList(argv[2]);
    }
    const auto n = static_cast<graph::VertexId>(
        argc > 2 ? std::atoi(argv[2]) : 4096);
    if (kind == "road") {
        return core::makeGraph(core::GraphKind::road, n, 8, 7);
    }
    if (kind == "social") {
        return core::makeGraph(core::GraphKind::social, n, 8, 7);
    }
    return core::makeGraph(core::GraphKind::sparse, n, 8, 7);
}

} // namespace

int
main(int argc, char** argv)
{
    const graph::Graph g = loadInput(argc, argv);
    std::printf("%s clustering=%.3f\n\n",
                graph::formatStats("input", graph::computeStats(g))
                    .c_str(),
                graph::clusteringCoefficient(g));

    // Native timings for the CSR kernels.
    rt::NativeExecutor exec(4);
    core::Workload w;
    w.graph = &g;
    w.pr_iterations = 5;
    w.comm_rounds = 8;
    std::printf("native (4 threads):\n");
    for (const auto& info : core::allBenchmarks()) {
        if (info.id == core::BenchmarkId::apsp ||
            info.id == core::BenchmarkId::betwCent ||
            info.id == core::BenchmarkId::tsp) {
            continue; // matrix/city kernels don't apply to a CSR input
        }
        const auto run = core::runBenchmark(info.id, exec, 4, w);
        std::printf("  %-12s %10.2f ms   variability %.2f\n", info.name,
                    run.time * 1e3, run.variability);
    }

    // Simulated architectural profile of BFS + SSSP on 64 cores.
    sim::Config cfg = sim::Config::futuristic256();
    cfg.num_cores = 64;
    sim::Machine machine(cfg);
    std::printf("\nsimulated 64-core profile:\n");
    for (auto id : {core::BenchmarkId::bfs, core::BenchmarkId::ssspDijk}) {
        core::runBenchmark(id, machine, 64, w);
        const auto& st = machine.lastStats();
        const auto n = st.breakdown.normalized();
        std::printf(
            "  %-12s %10llu cycles  miss %5.2f%% (shar %4.1f%%)  "
            "net %llu flit-hops  energy: %4.1f%% network\n",
            core::benchmarkName(id),
            static_cast<unsigned long long>(st.completion_cycles),
            100.0 * st.l1d.missRate(),
            100.0 * static_cast<double>(st.l1d.misses[2]) /
                std::max<std::uint64_t>(st.l1d.accesses, 1),
            static_cast<unsigned long long>(st.network.flit_hops),
            100.0 * (st.energy.router + st.energy.link) /
                st.energy.total());
        std::printf(
            "               comp %.2f l1l2 %.2f wait %.2f shar %.2f "
            "off %.2f sync %.2f\n",
            n[sim::Component::compute], n[sim::Component::l1ToL2Home],
            n[sim::Component::l2HomeWaiting],
            n[sim::Component::l2HomeSharers],
            n[sim::Component::l2HomeOffChip],
            n[sim::Component::synchronization]);
    }
    return 0;
}

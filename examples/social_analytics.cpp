/**
 * @file
 * Social-network analytics — the paper's data-analytics motivation.
 * Generates a power-law graph, ranks influencers with PageRank,
 * measures clustering with triangle counting, and finds friend groups
 * with community detection.
 *
 *   $ ./examples/social_analytics [scale=13]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/community.h"
#include "core/pagerank.h"
#include "core/triangle_count.h"
#include "graph/generators.h"
#include "graph/stats.h"

int
main(int argc, char** argv)
{
    using namespace crono;
    const unsigned scale =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 13;

    const graph::Graph net =
        graph::generators::socialNetwork(scale, /*edge_factor=*/14,
                                         /*seed=*/99);
    std::printf("%s\n",
                graph::formatStats("social-net", graph::computeStats(net))
                    .c_str());

    rt::NativeExecutor exec(4);

    // Influencers: top PageRank vertices.
    const core::PageRankResult pr = core::pageRank(exec, 4, net, 15);
    std::vector<graph::VertexId> by_rank(net.numVertices());
    for (graph::VertexId v = 0; v < net.numVertices(); ++v) {
        by_rank[v] = v;
    }
    std::partial_sort(by_rank.begin(), by_rank.begin() + 5, by_rank.end(),
                      [&](graph::VertexId a, graph::VertexId b) {
                          return pr.rank[a] > pr.rank[b];
                      });
    std::printf("top influencers:");
    for (int i = 0; i < 5; ++i) {
        std::printf(" v%u(%.2e)", by_rank[i], pr.rank[by_rank[i]]);
    }
    std::printf("   [%.2f ms]\n", pr.run.time * 1e3);

    // Clustering: triangles and the most-embedded member.
    const core::TriangleCountResult tri =
        core::triangleCount(exec, 4, net);
    const auto most = static_cast<graph::VertexId>(
        std::max_element(tri.per_vertex.begin(), tri.per_vertex.end()) -
        tri.per_vertex.begin());
    std::printf("triangles: %llu total; v%u sits on %llu   [%.2f ms]\n",
                static_cast<unsigned long long>(tri.total), most,
                static_cast<unsigned long long>(tri.per_vertex[most]),
                tri.run.time * 1e3);

    // Friend groups: full hierarchical Louvain.
    const core::CommunityResult comm =
        core::communityDetectionHierarchical(exec, 4, net, 10, 4);
    std::vector<std::uint32_t> sizes(net.numVertices(), 0);
    for (graph::VertexId c : comm.community) {
        ++sizes[c];
    }
    const std::uint32_t groups = static_cast<std::uint32_t>(
        std::count_if(sizes.begin(), sizes.end(),
                      [](std::uint32_t s) { return s > 0; }));
    std::printf("communities: %u groups, modularity %.3f after %llu "
                "rounds   [%.2f ms]\n",
                groups, comm.modularity,
                static_cast<unsigned long long>(comm.rounds),
                comm.run.time * 1e3);
    return 0;
}

/**
 * @file
 * Path planning on a road network — the paper's self-driving-car
 * motivation. Builds a road-network graph, plans a route with the
 * parallel SSSP kernel, reconstructs the turn-by-turn path from the
 * parent tree, and cross-checks with BFS hop counts.
 *
 *   $ ./examples/road_navigation [side=256]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/bfs.h"
#include "core/sssp.h"
#include "graph/generators.h"
#include "graph/stats.h"

int
main(int argc, char** argv)
{
    using namespace crono;
    const graph::VertexId side =
        argc > 1 ? static_cast<graph::VertexId>(std::atoi(argv[1])) : 256;

    const graph::Graph roads =
        graph::generators::roadNetwork(side, side, /*seed=*/2026);
    std::printf("%s\n",
                graph::formatStats("road-network",
                                   graph::computeStats(roads))
                    .c_str());

    // Plan from the "garage" (top-left) to the "office" (bottom-right).
    const graph::VertexId start = 0;
    const graph::VertexId goal = roads.numVertices() - 1;
    rt::NativeExecutor exec(4);
    const core::SsspResult plan = core::sssp(exec, 4, roads, start);

    if (plan.dist[goal] == graph::kInfDist) {
        std::printf("no route: the deleted road segments disconnected "
                    "the goal; try another seed\n");
        return 0;
    }

    // Reconstruct the route from the shortest-path tree.
    std::vector<graph::VertexId> route;
    for (graph::VertexId v = goal; v != start; v = plan.parent[v]) {
        route.push_back(v);
    }
    route.push_back(start);

    std::printf("route cost %llu over %zu waypoints (%.2f ms to plan)\n",
                static_cast<unsigned long long>(plan.dist[goal]),
                route.size(), plan.run.time * 1e3);
    std::printf("first waypoints:");
    for (std::size_t i = route.size(); i-- > 0 && route.size() - i <= 8;) {
        std::printf(" %u", route[i]);
    }
    std::printf(" ...\n");

    // Hop count lower-bounds the waypoint count (BFS cross-check).
    const core::BfsResult hops = core::bfs(exec, 4, roads, start, goal);
    std::printf("hop distance %u <= %zu route edges\n", hops.level[goal],
                route.size() - 1);
    return 0;
}

/**
 * @file
 * Telemetry walkthrough: run an instrumented SSSP natively, run a
 * small simulated BFS for the architectural counters, and export both
 * a Perfetto-loadable Chrome trace and a "crono.metrics.v1" report.
 *
 *   $ ./examples/telemetry_demo [--trace trace.json] [--metrics m.json]
 *
 * Open the trace at https://ui.perfetto.dev (or chrome://tracing):
 * one process per track kind — host driver spans, one row per worker
 * thread (rounds, barrier waits, steals), and the simulated thread /
 * core utilization rows in cycle time.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "core/bfs.h"
#include "core/sssp.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace_export.h"
#include "sim/machine.h"

int
main(int argc, char** argv)
{
    using namespace crono;

    std::string trace_path = "telemetry_trace.json";
    std::string metrics_path = "telemetry_metrics.json";
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0) {
            trace_path = argv[i + 1];
        } else if (std::strcmp(argv[i], "--metrics") == 0) {
            metrics_path = argv[i + 1];
        }
    }

    // Everything recorded while the session is alive lands in its
    // recorder; kernels need no telemetry arguments.
    obs::TelemetrySession session;

    // 1. Native instrumented run: SSSP over a 256x256 road network on
    //    the sparse work-list engine — the configuration with the
    //    richest span mix (rounds, barrier waits, steals).
    const graph::Graph road = graph::generators::roadNetwork(256, 256, 9);
    rt::NativeExecutor exec(4);
    const core::SsspResult sssp = core::sssp(
        exec, 4, road, 0, nullptr, rt::FrontierMode::kSparse);
    std::printf("native SSSP: %llu rounds in %.2f ms\n",
                static_cast<unsigned long long>(sssp.rounds),
                sssp.run.time * 1e3);

    // 2. Simulated run: a small BFS on a 16-core machine adds the
    //    sim-thread / sim-core tracks and the cache statistics.
    sim::Config cfg = sim::Config::futuristic256();
    cfg.num_cores = 16;
    sim::Machine machine(cfg);
    const graph::Graph small =
        graph::generators::uniformRandom(2048, 16384, 64, 1);
    core::bfs(machine, 16, small, 0);
    std::printf("simulated BFS: %llu cycles\n",
                static_cast<unsigned long long>(
                    machine.lastStats().completion_cycles));

    // 3. Export the Perfetto trace (both runs, one process per kind).
    if (!obs::writeChromeTrace(session.recorder(), trace_path)) {
        std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
        return 1;
    }
    std::printf("trace   -> %s (load at https://ui.perfetto.dev)\n",
                trace_path.c_str());

    // 4. Export the merged metrics report: runtime measurement +
    //    telemetry counters + simulator cache statistics.
    obs::MetricsReport report;
    report.kernel = "SSSP_DIJK";
    report.graph = "road(256,256)";
    report.threads = 4;
    report.frontier_mode = "sparse";
    report.setRuntime(sssp.run);
    report.rounds = sssp.rounds;
    report.setCounters(session.recorder());
    report.setSim(machine.lastStats());
    if (!report.writeJson(metrics_path)) {
        std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
        return 1;
    }
    std::printf("metrics -> %s\n", metrics_path.c_str());
    return 0;
}

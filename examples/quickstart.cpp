/**
 * @file
 * Quickstart: build a graph, run two kernels natively, and run one on
 * the simulated 256-core machine.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>

#include "core/bfs.h"
#include "core/sssp.h"
#include "graph/generators.h"
#include "sim/machine.h"

int
main()
{
    using namespace crono;

    // 1. Make a graph (or load one with graph::io::loadEdgeList).
    const graph::Graph g =
        graph::generators::uniformRandom(/*n=*/10000, /*m=*/80000,
                                         /*max_weight=*/64, /*seed=*/1);
    std::printf("graph: %u vertices, %llu edge slots\n", g.numVertices(),
                static_cast<unsigned long long>(g.numEdges()));

    // 2. Run kernels on real threads.
    rt::NativeExecutor exec(4);
    const core::BfsResult bfs = core::bfs(exec, 4, g, 0);
    std::printf("BFS reached %llu vertices in %.2f ms\n",
                static_cast<unsigned long long>(bfs.reached),
                bfs.run.time * 1e3);

    const core::SsspResult sssp = core::sssp(exec, 4, g, 0);
    std::printf("SSSP: dist(0 -> 9999) = %llu (%llu rounds, %.2f ms)\n",
                static_cast<unsigned long long>(sssp.dist[9999]),
                static_cast<unsigned long long>(sssp.rounds),
                sssp.run.time * 1e3);

    // 3. Run the same kernel on the simulated futuristic multicore
    //    and look at the architectural characterization.
    sim::Config cfg = sim::Config::futuristic256();
    cfg.num_cores = 64; // smaller machine keeps the demo snappy
    sim::Machine machine(cfg);
    const graph::Graph small =
        graph::generators::uniformRandom(2048, 16384, 64, 1);
    core::bfs(machine, 64, small, 0);
    std::printf("\nsimulated BFS on 64 cores:\n%s",
                machine.lastStats().describe().c_str());
    return 0;
}

/**
 * @file
 * Architectural design-space exploration — the use case CRONO exists
 * for. Runs BFS on the simulated multicore while varying one design
 * parameter at a time (L1 capacity, ACKwise pointers, hop latency)
 * and prints how completion time and its breakdown respond.
 *
 *   $ ./examples/arch_exploration
 */

#include <cstdio>

#include "core/bfs.h"
#include "graph/generators.h"
#include "sim/machine.h"

namespace {

using namespace crono;

void
report(const char* label, sim::Machine& machine, const graph::Graph& g)
{
    core::bfs(machine, 64, g, 0);
    const sim::SimRunStats& st = machine.lastStats();
    const sim::Breakdown n = st.breakdown.normalized();
    std::printf("  %-24s %10llu cycles  miss %5.2f%%  "
                "[comp %.2f net %.2f shar %.2f sync %.2f]\n",
                label,
                static_cast<unsigned long long>(st.completion_cycles),
                100.0 * st.l1d.missRate(),
                n[sim::Component::compute],
                n[sim::Component::l1ToL2Home],
                n[sim::Component::l2HomeSharers],
                n[sim::Component::synchronization]);
}

} // namespace

int
main()
{
    const graph::Graph g =
        graph::generators::uniformRandom(4096, 32768, 32, 3);
    char label[64];

    std::printf("BFS on 64 threads, 256 simulated cores\n");

    std::printf("\nL1-D capacity sweep:\n");
    for (std::uint32_t kb : {8u, 32u, 128u}) {
        sim::Config cfg = sim::Config::futuristic256();
        cfg.l1d.size_bytes = kb * 1024;
        sim::Machine machine(cfg);
        std::snprintf(label, sizeof(label), "L1-D %u KB", kb);
        report(label, machine, g);
    }

    std::printf("\nACKwise pointer sweep:\n");
    for (int k : {1, 4, 8}) {
        sim::Config cfg = sim::Config::futuristic256();
        cfg.ackwise_pointers = k;
        sim::Machine machine(cfg);
        std::snprintf(label, sizeof(label), "ACKwise-%d", k);
        report(label, machine, g);
    }

    std::printf("\nnetwork hop-latency sweep:\n");
    for (std::uint32_t hop : {1u, 2u, 4u}) {
        sim::Config cfg = sim::Config::futuristic256();
        cfg.hop_cycles = hop;
        sim::Machine machine(cfg);
        std::snprintf(label, sizeof(label), "%u-cycle hops", hop);
        report(label, machine, g);
    }

    std::printf("\ncore model:\n");
    for (auto type : {sim::CoreType::inOrder, sim::CoreType::outOfOrder}) {
        sim::Machine machine(sim::Config::futuristic256(type));
        report(type == sim::CoreType::inOrder ? "in-order"
                                              : "out-of-order",
               machine, g);
    }
    return 0;
}

/**
 * @file
 * Figure 2: active vertices over normalized execution time for every
 * CRONO benchmark. Both axes are normalized exactly as in the paper
 * (active count by its peak, time into percent buckets); the series
 * is rendered as a number row and a small ASCII sparkline.
 */

#include "bench/bench_common.h"

#include "runtime/instrumentation.h"

namespace {

void
printSeries(const char* name, const std::vector<double>& series)
{
    std::printf("%-12s", name);
    for (double v : series) {
        std::printf(" %4.2f", v);
    }
    std::printf("\n%-12s", "");
    static const char* kGlyphs[] = {" ", ".", ":", "-", "=", "#"};
    for (double v : series) {
        const int level =
            std::min(5, static_cast<int>(v * 5.999));
        std::printf(" %4s", kGlyphs[level]);
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace crono;
    const bench::Options opt = bench::parseOptions(argc, argv);

    std::printf("=== Figure 2: active vertices vs normalized time ===\n"
                "(native execution, 8 threads; 20 time buckets,\n"
                " values normalized to the per-benchmark peak)\n\n");

    core::WorkloadConfig wc = bench::simWorkloadConfig(opt);
    const core::WorkloadSet set(wc);
    rt::NativeExecutor exec(8);
    for (const auto& info : core::allBenchmarks()) {
        rt::ActiveTracker tracker(1 << 15, 1);
        core::runBenchmark(info.id, exec, 8, set.forBenchmark(info.id),
                           &tracker);
        printSeries(info.name, tracker.normalizedSeries(20));
    }
    return 0;
}

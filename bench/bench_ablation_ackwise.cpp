/**
 * @file
 * Ablation: ACKwise pointer count. Sweeps k over {1, 2, 4, 8} for the
 * sharing-heavy kernels and reports completion cycles and broadcast
 * counts — quantifying how much the limited directory's broadcast
 * fallback costs (Table II fixes k = 4).
 */

#include "bench/bench_common.h"

int
main(int argc, char** argv)
{
    using namespace crono;
    const bench::Options opt = bench::parseOptions(argc, argv);
    const core::WorkloadSet set(bench::simWorkloadConfig(opt));

    std::printf("=== Ablation: ACKwise-k sharer pointers (64 threads) "
                "===\n\n");
    std::printf("%-12s %4s %14s %12s %12s\n", "benchmark", "k", "cycles",
                "broadcasts", "invalidations");

    for (auto id : {core::BenchmarkId::ssspDijk, core::BenchmarkId::bfs,
                    core::BenchmarkId::pageRank,
                    core::BenchmarkId::connComp}) {
        for (int k : {1, 2, 4, 8}) {
            sim::Config cfg = sim::Config::futuristic256();
            cfg.ackwise_pointers = k;
            sim::Machine machine(cfg);
            core::runBenchmark(id, machine, 64, set.forBenchmark(id));
            const auto& st = machine.lastStats();
            std::printf("%-12s %4d %14llu %12llu %12llu\n",
                        core::benchmarkName(id), k,
                        static_cast<unsigned long long>(
                            st.completion_cycles),
                        static_cast<unsigned long long>(
                            st.directory.broadcasts),
                        static_cast<unsigned long long>(
                            st.directory.invalidations));
        }
    }
    return 0;
}

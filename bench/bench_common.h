/**
 * @file
 * Shared infrastructure for the experiment harnesses (one binary per
 * paper table/figure). Each harness prints the same rows/series the
 * paper reports; EXPERIMENTS.md records paper-vs-measured.
 *
 * Command line: every harness accepts
 *   --quick        quarter-size inputs (CI-friendly)
 *   --seed=N       generator seed (default 42)
 *   --json=DIR     also write machine-readable crono.metrics.v1
 *                  reports into DIR, one file per benchmark (see
 *                  jsonPathFor) — never a single shared file that a
 *                  multi-kernel sweep would overwrite row by row
 */

#ifndef CRONO_BENCH_BENCH_COMMON_H_
#define CRONO_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/suite.h"
#include "core/workloads.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "sim/machine.h"

namespace crono::bench {

/** Parsed harness options. */
struct Options {
    bool quick = false;
    std::uint64_t seed = 42;
    std::string json_dir; ///< empty = no JSON reports
};

inline Options
parseOptions(int argc, char** argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            opt.quick = true;
        } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
            opt.seed = std::strtoull(argv[i] + 7, nullptr, 10);
        } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
            opt.json_dir = argv[i] + 7;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            opt.json_dir = ".";
        } else {
            std::fprintf(stderr, "unknown option: %s\n", argv[i]);
        }
    }
    return opt;
}

/**
 * Per-benchmark report path: <json_dir>/<harness>_<bench>.json. Each
 * (harness, benchmark) pair owns a distinct file so a suite sweep
 * produces one report per kernel instead of each run clobbering the
 * previous kernel's output.
 */
inline std::string
jsonPathFor(const Options& opt, const std::string& harness,
            const std::string& bench_name)
{
    return opt.json_dir + "/" + harness + "_" + bench_name + ".json";
}

/**
 * Write @p rows as one "crono.bench.v1" document at @p path, with
 * the shared diagnostics every harness used to hand-roll.
 * @return false (after printing to stderr) on I/O failure.
 */
inline bool
writeBenchReport(const std::string& path,
                 const std::vector<obs::BenchResult>& rows)
{
    if (!obs::writeTextFile(path, obs::benchSuiteJson(rows))) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows.size());
    return true;
}

// ------------------------------------------- GAP measurement rules
//
// The GAP Benchmark Suite (Beamer, Asanović, Patterson) fixes the
// methodology this harness follows:
//  - speedups are normalized to a *work-efficient sequential
//    baseline* (core::seq), never to the 1-thread parallel run;
//  - source-dependent kernels (BFS, SSSP, DFS) run one trial from
//    each of 64 pre-drawn random non-isolated sources and report the
//    average;
//  - only the kernel is timed — graph build, reordering and any
//    algorithm-private preprocessing driven from the timed call stay
//    inside, file I/O and generation stay outside.

/** Number of source trials the GAP specification fixes. */
inline constexpr int kGapSourceTrials = 64;

/**
 * Draw @p k sources uniformly from the non-isolated vertices of
 * @p g (GAP rule: a degree-zero source measures nothing).
 * Deterministic in @p seed; sources may repeat, as in the reference
 * implementation's generator.
 */
inline std::vector<graph::VertexId>
gapSources(const graph::Graph& g, int k, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<graph::VertexId> sources;
    sources.reserve(static_cast<std::size_t>(k));
    while (sources.size() < static_cast<std::size_t>(k)) {
        const auto v = static_cast<graph::VertexId>(
            rng.nextBelow(g.numVertices()));
        if (!g.neighbors(v).empty()) {
            sources.push_back(v);
        }
    }
    return sources;
}

/** Wall-clock seconds of one @p fn() call (monotonic clock). */
template <class Fn>
inline double
timedSeconds(Fn&& fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double>(elapsed).count();
}

/** The workload sizes used for the simulator experiments. */
inline core::WorkloadConfig
simWorkloadConfig(const Options& opt,
                  core::GraphKind kind = core::GraphKind::sparse)
{
    core::WorkloadConfig cfg;
    cfg.kind = kind;
    cfg.graph_vertices = opt.quick ? 2048 : 8192;
    cfg.edges_per_vertex = 8;
    cfg.matrix_vertices = opt.quick ? 64 : 192;
    cfg.tsp_cities = opt.quick ? 9 : 12;
    cfg.pr_iterations = 3;
    cfg.comm_rounds = 6;
    cfg.seed = opt.seed;
    return cfg;
}

/** Simulated thread counts swept by Figure 1 (1..256). */
inline std::vector<int>
simThreadCounts(int max_threads = 256)
{
    std::vector<int> out;
    for (int t = 1; t <= max_threads; t *= 2) {
        out.push_back(t);
    }
    return out;
}

/** One point of a thread sweep. */
struct SweepPoint {
    int threads = 0;
    sim::SimRunStats stats;
    double variability = 0.0;
};

/** Run @p id on a fresh machine per thread count. */
inline std::vector<SweepPoint>
sweepSim(const sim::Config& cfg, core::BenchmarkId id,
         const core::Workload& w, const std::vector<int>& threads)
{
    std::vector<SweepPoint> out;
    sim::Machine machine(cfg);
    for (int t : threads) {
        const rt::RunInfo info = core::runBenchmark(id, machine, t, w);
        out.push_back({t, machine.lastStats(), info.variability});
    }
    return out;
}

/** Index of the sweep point with the fewest completion cycles. */
inline std::size_t
bestPoint(const std::vector<SweepPoint>& sweep)
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < sweep.size(); ++i) {
        if (sweep[i].stats.completion_cycles <
            sweep[best].stats.completion_cycles) {
            best = i;
        }
    }
    return best;
}

inline void
printBreakdownHeader()
{
    std::printf("%8s %12s %8s %8s %8s %8s %8s %8s %8s %6s\n", "threads",
                "cycles", "speedup", "Compute", "L1-L2H", "L2Wait",
                "L2Shar", "OffChip", "Sync", "Vari");
}

inline void
printBreakdownRow(const SweepPoint& p, std::uint64_t base_cycles)
{
    const sim::Breakdown n = p.stats.breakdown.normalized();
    std::printf(
        "%8d %12llu %8.2f %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f %6.2f\n",
        p.threads,
        static_cast<unsigned long long>(p.stats.completion_cycles),
        static_cast<double>(base_cycles) /
            static_cast<double>(p.stats.completion_cycles),
        n[sim::Component::compute], n[sim::Component::l1ToL2Home],
        n[sim::Component::l2HomeWaiting], n[sim::Component::l2HomeSharers],
        n[sim::Component::l2HomeOffChip],
        n[sim::Component::synchronization], p.variability);
}

} // namespace crono::bench

#endif // CRONO_BENCH_BENCH_COMMON_H_

/**
 * @file
 * Figure 9: "real machine" speedups for 1..16 threads.
 *
 * Substitution (see DESIGN.md): this host has a single core, so no
 * real multithreaded speedup is measurable. The paper's i7-4790 is
 * modeled as a second simulator configuration — 8 hardware contexts
 * (4 cores x 2-way SMT), out-of-order, large shared cache — and 16
 * software threads are timesliced on it, reproducing the >8-thread
 * flattening the paper attributes to OS context switching.
 */

#include "bench/bench_common.h"

int
main(int argc, char** argv)
{
    using namespace crono;
    const bench::Options opt = bench::parseOptions(argc, argv);
    const sim::Config cfg = sim::Config::realMachine();

    core::WorkloadConfig wc = bench::simWorkloadConfig(opt);
    wc.matrix_vertices = opt.quick ? 32 : 96; // APSP/BETW trimmed
    const core::WorkloadSet set(wc);

    const std::vector<int> threads = {1, 2, 4, 8, 16};
    std::printf("=== Figure 9: speedups on the i7-4790-like "
                "configuration ===\n\n%s\n",
                cfg.describe().c_str());
    std::printf("%-12s", "benchmark");
    for (int t : threads) {
        std::printf(" %7s%d", "t", t);
    }
    std::printf("\n");

    for (const auto& info : core::allBenchmarks()) {
        const auto points = bench::sweepSim(
            cfg, info.id, set.forBenchmark(info.id), threads);
        const double base =
            static_cast<double>(points[0].stats.completion_cycles);
        std::printf("%-12s", info.name);
        for (const auto& p : points) {
            std::printf(" %7.2fx",
                        base / static_cast<double>(
                                   p.stats.completion_cycles));
        }
        std::printf("\n");
    }
    return 0;
}

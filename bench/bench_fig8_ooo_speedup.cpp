/**
 * @file
 * Figure 8: speedup at the best thread count over the sequential
 * (1-thread) run on the out-of-order core configuration. Branch-and-
 * bound kernels (DFS, TSP) show smaller speedups than with in-order
 * cores because the sequential OOO baseline improves.
 */

#include "bench/bench_common.h"

int
main(int argc, char** argv)
{
    using namespace crono;
    const bench::Options opt = bench::parseOptions(argc, argv);
    const core::WorkloadSet set(bench::simWorkloadConfig(opt));

    std::printf("=== Figure 8: speedups over sequential OOO core ===\n\n");
    std::printf("%-12s %14s %14s %9s %9s\n", "benchmark", "ooo-best",
                "inorder-best", "ooo-thr", "io-thr");

    const std::vector<int> sweep = {1, 16, 64, 256};
    for (const auto& info : core::allBenchmarks()) {
        const auto report = [&](sim::CoreType type, double* speedup,
                                int* threads) {
            const sim::Config cfg = sim::Config::futuristic256(type);
            const auto points = bench::sweepSim(
                cfg, info.id, set.forBenchmark(info.id), sweep);
            const auto& best = points[bench::bestPoint(points)];
            *speedup =
                static_cast<double>(points[0].stats.completion_cycles) /
                static_cast<double>(best.stats.completion_cycles);
            *threads = best.threads;
        };
        double ooo = 0, in_order = 0;
        int ooo_threads = 0, io_threads = 0;
        report(sim::CoreType::outOfOrder, &ooo, &ooo_threads);
        report(sim::CoreType::inOrder, &in_order, &io_threads);
        std::printf("%-12s %13.2fx %13.2fx %9d %9d\n", info.name, ooo,
                    in_order, ooo_threads, io_threads);
    }
    return 0;
}

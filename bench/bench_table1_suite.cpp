/**
 * @file
 * Table I: the benchmark registry — identifiers, categories and
 * parallelization strategies — plus a one-run sanity line per kernel
 * proving each entry executes. With --json=DIR the sweep additionally
 * writes one crono.metrics.v1 report per kernel (table1_<NAME>.json),
 * so the ten runs never overwrite each other's output.
 */

#include "bench/bench_common.h"

#include "obs/metrics.h"

int
main(int argc, char** argv)
{
    using namespace crono;
    const bench::Options opt = bench::parseOptions(argc, argv);

    std::printf("=== Table I: benchmarks and parallelizations ===\n\n");
    std::printf("%-12s %-18s %s\n", "Benchmark", "Category",
                "Parallelization");
    for (const auto& info : core::allBenchmarks()) {
        std::printf("%-12s %-18s %s\n", info.name, info.category,
                    info.parallelization);
    }

    core::WorkloadConfig wc = bench::simWorkloadConfig(opt);
    wc.graph_vertices = 512;
    wc.matrix_vertices = 24;
    wc.tsp_cities = 7;
    const core::WorkloadSet set(wc);
    rt::NativeExecutor exec(4);
    std::printf("\nsanity run (native, 4 threads):\n");
    int failures = 0;
    for (const auto& info : core::allBenchmarks()) {
        const core::Workload w = set.forBenchmark(info.id);
        // Fresh session per kernel: each report carries only its own
        // counters.
        obs::TelemetrySession session;
        const auto run = core::runBenchmark(info.id, exec, 4, w);
        std::printf("  %-12s %8.2f ms  variability %.2f\n", info.name,
                    run.time * 1e3, run.variability);
        if (opt.json_dir.empty()) {
            continue;
        }
        obs::MetricsReport report;
        report.kernel = info.name;
        report.graph = "workload(sanity)";
        report.threads = 4;
        report.frontier_mode = rt::frontierModeName(w.frontier_mode);
        report.setRuntime(run);
        report.setCounters(session.recorder());
        const std::string path =
            bench::jsonPathFor(opt, "table1", info.name);
        if (report.writeJson(path)) {
            std::printf("  %-12s wrote %s\n", "", path.c_str());
        } else {
            std::fprintf(stderr, "table1: cannot write %s\n",
                         path.c_str());
            ++failures;
        }
    }
    return failures == 0 ? 0 : 1;
}

/**
 * @file
 * Table I: the benchmark registry — identifiers, categories and
 * parallelization strategies — plus a one-run sanity line per kernel
 * proving each entry executes.
 */

#include "bench/bench_common.h"

int
main(int argc, char** argv)
{
    using namespace crono;
    const bench::Options opt = bench::parseOptions(argc, argv);

    std::printf("=== Table I: benchmarks and parallelizations ===\n\n");
    std::printf("%-12s %-18s %s\n", "Benchmark", "Category",
                "Parallelization");
    for (const auto& info : core::allBenchmarks()) {
        std::printf("%-12s %-18s %s\n", info.name, info.category,
                    info.parallelization);
    }

    core::WorkloadConfig wc = bench::simWorkloadConfig(opt);
    wc.graph_vertices = 512;
    wc.matrix_vertices = 24;
    wc.tsp_cities = 7;
    const core::WorkloadSet set(wc);
    rt::NativeExecutor exec(4);
    std::printf("\nsanity run (native, 4 threads):\n");
    for (const auto& info : core::allBenchmarks()) {
        const auto run = core::runBenchmark(info.id, exec, 4,
                                            set.forBenchmark(info.id));
        std::printf("  %-12s %8.2f ms  variability %.2f\n", info.name,
                    run.time * 1e3, run.variability);
    }
    return 0;
}

/**
 * @file
 * Ablation: on-chip network sensitivity. Sweeps hop latency (router
 * pipeline depth) and memory-controller count for a network-bound
 * kernel — quantifying the paper's claim that graph workloads stress
 * the network far more than off-chip bandwidth.
 */

#include "bench/bench_common.h"

int
main(int argc, char** argv)
{
    using namespace crono;
    const bench::Options opt = bench::parseOptions(argc, argv);
    const core::WorkloadSet set(bench::simWorkloadConfig(opt));
    const auto id = core::BenchmarkId::ssspDijk;
    const core::Workload w = set.forBenchmark(id);

    std::printf("=== Ablation: NoC and memory-bandwidth sensitivity "
                "(SSSP_DIJK, 64 threads) ===\n\n");

    std::printf("hop latency sweep (Table II: 2 cycles):\n");
    std::printf("%8s %14s %14s\n", "hops", "cycles", "contention");
    for (std::uint32_t hop : {1u, 2u, 4u, 8u}) {
        sim::Config cfg = sim::Config::futuristic256();
        cfg.hop_cycles = hop;
        sim::Machine machine(cfg);
        core::runBenchmark(id, machine, 64, w);
        const auto& st = machine.lastStats();
        std::printf("%8u %14llu %14llu\n", hop,
                    static_cast<unsigned long long>(st.completion_cycles),
                    static_cast<unsigned long long>(
                        st.network.contention_cycles));
    }

    std::printf("\nrouting policy sweep (Section VII-B):\n");
    std::printf("%8s %14s %14s\n", "policy", "cycles", "contention");
    for (auto routing : {sim::Routing::xy, sim::Routing::yx,
                         sim::Routing::o1turn}) {
        sim::Config cfg = sim::Config::futuristic256();
        cfg.routing = routing;
        sim::Machine machine(cfg);
        core::runBenchmark(id, machine, 64, w);
        const auto& st = machine.lastStats();
        const char* name = routing == sim::Routing::xy
                               ? "xy"
                               : routing == sim::Routing::yx ? "yx"
                                                             : "o1turn";
        std::printf("%8s %14llu %14llu\n", name,
                    static_cast<unsigned long long>(st.completion_cycles),
                    static_cast<unsigned long long>(
                        st.network.contention_cycles));
    }

    std::printf("\nmemory controller sweep (Table II: 8 x 5 GB/s):\n");
    std::printf("%8s %14s %14s\n", "ctrls", "cycles", "dram-queue");
    for (int ctrls : {1, 2, 8, 16}) {
        sim::Config cfg = sim::Config::futuristic256();
        cfg.num_mem_controllers = ctrls;
        sim::Machine machine(cfg);
        core::runBenchmark(id, machine, 64, w);
        const auto& st = machine.lastStats();
        std::printf("%8d %14llu %14llu\n", ctrls,
                    static_cast<unsigned long long>(st.completion_cycles),
                    static_cast<unsigned long long>(
                        st.dram.queue_cycles));
    }
    return 0;
}

/**
 * @file
 * Figure 5: vertex-scalability study — best-thread-count speedup as
 * the input grows. Sparse synthetic graphs are swept for the CSR
 * kernels, matrix sizes for APSP/BETW_CENT, and city counts for TSP
 * (sizes scaled down from the paper's 16K..4M per DESIGN.md; the
 * monotone "bigger graphs scale better" trend is the result).
 */

#include "bench/bench_common.h"

namespace {

using namespace crono;

double
bestSpeedup(const sim::Config& cfg, core::BenchmarkId id,
            const core::Workload& w, const std::vector<int>& threads)
{
    const auto points = bench::sweepSim(cfg, id, w, threads);
    const auto& best = points[bench::bestPoint(points)];
    return static_cast<double>(points[0].stats.completion_cycles) /
           static_cast<double>(best.stats.completion_cycles);
}

} // namespace

int
main(int argc, char** argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    const sim::Config cfg = sim::Config::futuristic256();
    const std::vector<int> threads = {1, 64, 256};

    std::printf("=== Figure 5: vertex scalability (best speedups) "
                "===\n\n");

    // CSR kernels over growing sparse graphs.
    const std::vector<graph::VertexId> sizes =
        opt.quick ? std::vector<graph::VertexId>{1024, 4096}
                  : std::vector<graph::VertexId>{1024, 4096, 16384};
    std::printf("%-12s", "benchmark");
    for (auto n : sizes) {
        std::printf(" %8uV", n);
    }
    std::printf("\n");
    for (const auto& info : core::allBenchmarks()) {
        if (info.id == core::BenchmarkId::apsp ||
            info.id == core::BenchmarkId::betwCent ||
            info.id == core::BenchmarkId::tsp) {
            continue; // swept separately below
        }
        std::printf("%-12s", info.name);
        for (auto n : sizes) {
            core::WorkloadConfig wc = bench::simWorkloadConfig(opt);
            wc.graph_vertices = n;
            const core::WorkloadSet set(wc);
            std::printf(" %8.2fx",
                        bestSpeedup(cfg, info.id,
                                    set.forBenchmark(info.id), threads));
        }
        std::printf("\n");
    }

    // APSP / BETW_CENT over matrix sizes.
    const std::vector<graph::VertexId> matrix_sizes =
        opt.quick ? std::vector<graph::VertexId>{32, 64}
                  : std::vector<graph::VertexId>{48, 96, 192};
    for (auto id : {core::BenchmarkId::apsp, core::BenchmarkId::betwCent}) {
        std::printf("%-12s", core::benchmarkName(id));
        for (auto n : matrix_sizes) {
            core::WorkloadConfig wc = bench::simWorkloadConfig(opt);
            wc.matrix_vertices = n;
            const core::WorkloadSet set(wc);
            std::printf(" %6u:%6.1fx", n,
                        bestSpeedup(cfg, id, set.forBenchmark(id),
                                    threads));
        }
        std::printf("\n");
    }

    // TSP over city counts (paper: 4..32 cities).
    const std::vector<graph::VertexId> cities =
        opt.quick ? std::vector<graph::VertexId>{6, 8, 10}
                  : std::vector<graph::VertexId>{8, 10, 12};
    std::printf("%-12s", "TSP");
    for (auto n : cities) {
        core::WorkloadConfig wc = bench::simWorkloadConfig(opt);
        wc.tsp_cities = n;
        const core::WorkloadSet set(wc);
        std::printf(" %5u:%6.1fx", n,
                    bestSpeedup(cfg, core::BenchmarkId::tsp,
                                set.forBenchmark(core::BenchmarkId::tsp),
                                threads));
    }
    std::printf("\n");
    return 0;
}

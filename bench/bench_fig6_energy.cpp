/**
 * @file
 * Figure 6: normalized dynamic energy breakdown of the memory system
 * (L1-I / L1-D / L2 / directory / routers / links / DRAM) per
 * benchmark at the best thread count.
 */

#include "bench/bench_common.h"

int
main(int argc, char** argv)
{
    using namespace crono;
    const bench::Options opt = bench::parseOptions(argc, argv);
    const sim::Config cfg = sim::Config::futuristic256();
    const core::WorkloadSet set(bench::simWorkloadConfig(opt));

    std::printf("=== Figure 6: normalized dynamic energy breakdown ===\n"
                "(11 nm-class per-event energies; DSENT/McPAT "
                "stand-in)\n\n");
    std::printf("%-12s %6s %6s %6s %6s %7s %6s %6s %9s\n", "benchmark",
                "L1-I", "L1-D", "L2", "dir", "router", "link", "DRAM",
                "network%");

    const std::vector<int> sweep = {16, 64, 256};
    double network_share_sum = 0.0;
    for (const auto& info : core::allBenchmarks()) {
        const auto points = bench::sweepSim(
            cfg, info.id, set.forBenchmark(info.id), sweep);
        const auto& best = points[bench::bestPoint(points)];
        const sim::EnergyBreakdown& e = best.stats.energy;
        const double total = e.total();
        const double network = (e.router + e.link) / total;
        network_share_sum += network;
        std::printf(
            "%-12s %6.3f %6.3f %6.3f %6.3f %7.3f %6.3f %6.3f %8.1f%%\n",
            info.name, e.l1i / total, e.l1d / total, e.l2 / total,
            e.directory / total, e.router / total, e.link / total,
            e.dram / total, 100.0 * network);
    }
    std::printf("\naverage network (router+link) share: %.1f%% "
                "(paper: ~75%%)\n",
                100.0 * network_share_sum / core::kNumBenchmarks);
    return 0;
}

/**
 * @file
 * Figure 3: private L1-D miss-rate breakdown (cold / capacity /
 * sharing) at the thread count giving the highest speedup, per
 * benchmark, on the simulated in-order multicore.
 */

#include "bench/bench_common.h"

int
main(int argc, char** argv)
{
    using namespace crono;
    const bench::Options opt = bench::parseOptions(argc, argv);
    const sim::Config cfg = sim::Config::futuristic256();
    const core::WorkloadSet set(bench::simWorkloadConfig(opt));

    std::printf("=== Figure 3: L1-D miss classification at best thread "
                "count ===\n\n");
    std::printf("%-12s %7s %9s %8s %8s %8s\n", "benchmark", "threads",
                "miss%", "cold%", "capac%", "shar%");

    const std::vector<int> sweep = {16, 64, 256};
    for (const auto& info : core::allBenchmarks()) {
        const auto points = bench::sweepSim(
            cfg, info.id, set.forBenchmark(info.id), sweep);
        const auto& best = points[bench::bestPoint(points)];
        const sim::CacheStats& l1 = best.stats.l1d;
        const auto pct = [&](sim::MissClass c) {
            return 100.0 *
                   static_cast<double>(
                       l1.misses[static_cast<int>(c)]) /
                   static_cast<double>(l1.accesses);
        };
        std::printf("%-12s %7d %8.2f%% %7.2f%% %7.2f%% %7.2f%%\n",
                    info.name, best.threads, 100.0 * l1.missRate(),
                    pct(sim::MissClass::cold),
                    pct(sim::MissClass::capacity),
                    pct(sim::MissClass::sharing));
    }
    return 0;
}

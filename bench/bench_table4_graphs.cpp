/**
 * @file
 * Table IV: best speedups across input-graph families — synthetic
 * sparse, three road networks (TX/PA/CA stand-ins at three seeds) and
 * a social network (Facebook stand-in). Also prints the Table III
 * input catalog with structural statistics.
 */

#include "bench/bench_common.h"

#include "graph/stats.h"

int
main(int argc, char** argv)
{
    using namespace crono;
    const bench::Options opt = bench::parseOptions(argc, argv);
    const sim::Config cfg = sim::Config::futuristic256();
    const std::vector<int> threads = {1, 64, 256};

    struct Column {
        const char* name;
        core::GraphKind kind;
        std::uint64_t seed;
    };
    const std::vector<Column> columns = {
        {"Sparse", core::GraphKind::sparse, opt.seed},
        {"RoadTX", core::GraphKind::road, opt.seed + 10},
        {"RoadPN", core::GraphKind::road, opt.seed + 20},
        {"RoadCA", core::GraphKind::road, opt.seed + 30},
        {"Social", core::GraphKind::social, opt.seed + 40},
    };

    std::printf("=== Table III: input graph catalog ===\n\n");
    std::vector<core::WorkloadSet> sets;
    sets.reserve(columns.size());
    for (const Column& c : columns) {
        core::WorkloadConfig wc = bench::simWorkloadConfig(opt);
        wc.kind = c.kind;
        wc.seed = c.seed;
        wc.graph_vertices = opt.quick ? 2048 : 4096;
        sets.emplace_back(wc);
        std::printf("  %s\n",
                    graph::formatStats(
                        c.name, graph::computeStats(sets.back().graph()))
                        .c_str());
    }

    std::printf("\n=== Table IV: best speedups per graph family ===\n\n");
    std::printf("%-12s", "benchmark");
    for (const Column& c : columns) {
        std::printf(" %8s", c.name);
    }
    std::printf("\n");

    for (const auto& info : core::allBenchmarks()) {
        if (info.id == core::BenchmarkId::apsp ||
            info.id == core::BenchmarkId::betwCent ||
            info.id == core::BenchmarkId::tsp) {
            continue; // Table IV marks these input-independent ("-")
        }
        std::printf("%-12s", info.name);
        for (std::size_t c = 0; c < columns.size(); ++c) {
            const auto points =
                bench::sweepSim(cfg, info.id,
                                sets[c].forBenchmark(info.id), threads);
            const auto& best = points[bench::bestPoint(points)];
            std::printf(" %7.2fx",
                        static_cast<double>(
                            points[0].stats.completion_cycles) /
                            static_cast<double>(
                                best.stats.completion_cycles));
        }
        std::printf("\n");
    }
    return 0;
}

/**
 * @file
 * Ablation: private caching vs remote access (Section VII-A's
 * locality-aware coherence discussion). Runs sharing-heavy kernels
 * with L1 allocation enabled (baseline MESI), disabled (every access
 * serviced at the L2 home), and with the adaptive locality-aware
 * protocol (private copies granted only after demonstrated reuse),
 * reporting cycles, sharing misses and network traffic.
 */

#include "bench/bench_common.h"

int
main(int argc, char** argv)
{
    using namespace crono;
    const bench::Options opt = bench::parseOptions(argc, argv);
    const core::WorkloadSet set(bench::simWorkloadConfig(opt));

    std::printf("=== Ablation: private caching vs remote-only access "
                "(64 threads) ===\n\n");
    std::printf("%-12s %-8s %14s %12s %12s %14s\n", "benchmark", "mode",
                "cycles", "sharing-miss", "invalidations", "flit-hops");

    for (auto id : {core::BenchmarkId::ssspDijk,
                    core::BenchmarkId::pageRank, core::BenchmarkId::bfs,
                    core::BenchmarkId::triCnt}) {
        struct Mode {
            const char* name;
            bool l1;
            std::uint32_t threshold;
        };
        for (const Mode& mode : {Mode{"private", true, 0},
                                 Mode{"remote", false, 0},
                                 Mode{"adaptive", true, 4}}) {
            sim::Config cfg = sim::Config::futuristic256();
            cfg.l1_allocation = mode.l1;
            cfg.locality_threshold = mode.threshold;
            sim::Machine machine(cfg);
            core::runBenchmark(id, machine, 64, set.forBenchmark(id));
            const auto& st = machine.lastStats();
            std::printf("%-12s %-8s %14llu %12llu %12llu %14llu\n",
                        core::benchmarkName(id), mode.name,
                        static_cast<unsigned long long>(
                            st.completion_cycles),
                        static_cast<unsigned long long>(
                            st.l1d.misses[static_cast<int>(
                                sim::MissClass::sharing)]),
                        static_cast<unsigned long long>(
                            st.directory.invalidations),
                        static_cast<unsigned long long>(
                            st.network.flit_hops));
        }
    }
    return 0;
}

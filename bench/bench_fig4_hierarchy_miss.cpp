/**
 * @file
 * Figure 4: cache-hierarchy miss rate (L2 misses / L1-D accesses, in
 * percent) at the best thread count, per benchmark.
 */

#include "bench/bench_common.h"

int
main(int argc, char** argv)
{
    using namespace crono;
    const bench::Options opt = bench::parseOptions(argc, argv);
    const sim::Config cfg = sim::Config::futuristic256();
    const core::WorkloadSet set(bench::simWorkloadConfig(opt));

    std::printf("=== Figure 4: cache hierarchy miss rate at best thread "
                "count ===\n\n");
    std::printf("%-12s %7s %16s\n", "benchmark", "threads",
                "hierarchy miss%");

    const std::vector<int> sweep = {16, 64, 256};
    for (const auto& info : core::allBenchmarks()) {
        const auto points = bench::sweepSim(
            cfg, info.id, set.forBenchmark(info.id), sweep);
        const auto& best = points[bench::bestPoint(points)];
        std::printf("%-12s %7d %15.3f%%\n", info.name, best.threads,
                    100.0 * best.stats.cacheHierarchyMissRate());
    }
    return 0;
}

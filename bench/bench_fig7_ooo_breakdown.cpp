/**
 * @file
 * Figure 7: normalized completion-time breakdown at the best thread
 * count on the out-of-order core configuration. The paper's point:
 * OOO cores hide off-chip and streaming latency but not on-chip
 * communication (waiting / sharers / synchronization remain).
 */

#include "bench/bench_common.h"

int
main(int argc, char** argv)
{
    using namespace crono;
    const bench::Options opt = bench::parseOptions(argc, argv);
    const sim::Config cfg =
        sim::Config::futuristic256(sim::CoreType::outOfOrder);
    const core::WorkloadSet set(bench::simWorkloadConfig(opt));

    std::printf("=== Figure 7: OOO completion-time breakdown at best "
                "thread count ===\n\n%s\n",
                cfg.describe().c_str());
    std::printf("%-12s %7s %8s %8s %8s %8s %8s %8s\n", "benchmark",
                "threads", "Compute", "L1-L2H", "L2Wait", "L2Shar",
                "OffChip", "Sync");

    const std::vector<int> sweep = {16, 64, 256};
    for (const auto& info : core::allBenchmarks()) {
        const auto points = bench::sweepSim(
            cfg, info.id, set.forBenchmark(info.id), sweep);
        const auto& best = points[bench::bestPoint(points)];
        const sim::Breakdown n = best.stats.breakdown.normalized();
        std::printf(
            "%-12s %7d %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n",
            info.name, best.threads, n[sim::Component::compute],
            n[sim::Component::l1ToL2Home],
            n[sim::Component::l2HomeWaiting],
            n[sim::Component::l2HomeSharers],
            n[sim::Component::l2HomeOffChip],
            n[sim::Component::synchronization]);
    }
    return 0;
}

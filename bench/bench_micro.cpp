/**
 * @file
 * google-benchmark microbenchmarks: native kernel throughput (edges
 * per second per kernel) and the hot simulator components (cache
 * lookup, mesh routing, memory-system transactions, fiber switch).
 * These guard against performance regressions in the library itself
 * rather than reproducing a paper figure.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/suite.h"
#include "core/workloads.h"
#include "sim/machine.h"

namespace {

using namespace crono;

const graph::Graph&
microGraph()
{
    static const graph::Graph g =
        graph::generators::uniformRandom(4096, 32768, 32, 5);
    return g;
}

void
BM_NativeSssp(benchmark::State& state)
{
    const auto threads = static_cast<int>(state.range(0));
    rt::NativeExecutor exec(threads);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::sssp(exec, threads, microGraph(), 0).dist.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(microGraph().numEdges()));
}
BENCHMARK(BM_NativeSssp)->Arg(1)->Arg(2)->Arg(4);

void
BM_NativeBfs(benchmark::State& state)
{
    const auto threads = static_cast<int>(state.range(0));
    rt::NativeExecutor exec(threads);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::bfs(exec, threads, microGraph(), 0).reached);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(microGraph().numEdges()));
}
BENCHMARK(BM_NativeBfs)->Arg(1)->Arg(2)->Arg(4);

/**
 * Frontier-mode benchmarks: a 512x512 road network (262144 vertices,
 * avg degree ~2.6, huge diameter) is the regime where the flag-scan
 * structure rescans every vertex thousands of times. edges/sec for
 * every FrontierMode makes the sparse/adaptive win measurable
 * (acceptance: >= 2x over kFlagScan at 4 threads).
 */
const graph::Graph&
roadBenchGraph()
{
    static const graph::Graph g =
        graph::generators::roadNetwork(512, 512, 9);
    return g;
}

rt::FrontierMode
benchMode(benchmark::State& state)
{
    const auto mode = static_cast<rt::FrontierMode>(state.range(0));
    state.SetLabel(rt::frontierModeName(mode));
    return mode;
}

void
BM_RoadSssp(benchmark::State& state)
{
    const rt::FrontierMode mode = benchMode(state);
    const auto threads = static_cast<int>(state.range(1));
    rt::NativeExecutor exec(threads);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::sssp(exec, threads, roadBenchGraph(), 0, nullptr, mode)
                .dist.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(roadBenchGraph().numEdges()));
}
BENCHMARK(BM_RoadSssp)
    ->ArgNames({"mode", "threads"})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({2, 4})
    ->Unit(benchmark::kMillisecond);

void
BM_RoadBfs(benchmark::State& state)
{
    const rt::FrontierMode mode = benchMode(state);
    const auto threads = static_cast<int>(state.range(1));
    rt::NativeExecutor exec(threads);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::bfs(exec, threads, roadBenchGraph(), 0,
                      graph::kNoVertex, nullptr, mode)
                .reached);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(roadBenchGraph().numEdges()));
}
BENCHMARK(BM_RoadBfs)
    ->ArgNames({"mode", "threads"})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({2, 4})
    ->Unit(benchmark::kMillisecond);

void
BM_NativeTriangleCount(benchmark::State& state)
{
    rt::NativeExecutor exec(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::triangleCount(exec, 2, microGraph()).total);
    }
}
BENCHMARK(BM_NativeTriangleCount);

void
BM_NativePageRankIteration(benchmark::State& state)
{
    rt::NativeExecutor exec(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::pageRank(exec, 2, microGraph(), 1).rank.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(microGraph().numEdges()));
}
BENCHMARK(BM_NativePageRankIteration);

void
BM_SimCacheLookup(benchmark::State& state)
{
    sim::Config cfg;
    sim::Cache cache(cfg.l1d, cfg.line_bytes);
    for (sim::LineAddr line = 0; line < 512; ++line) {
        cache.insert(line, sim::LineState::shared);
    }
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookup(rng.nextBelow(512)));
    }
}
BENCHMARK(BM_SimCacheLookup);

void
BM_SimMeshSend(benchmark::State& state)
{
    sim::Mesh mesh(sim::Config::futuristic256());
    Rng rng(1);
    std::uint64_t t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mesh.send(static_cast<int>(rng.nextBelow(256)),
                      static_cast<int>(rng.nextBelow(256)), 512, t));
        t += 20;
    }
}
BENCHMARK(BM_SimMeshSend);

void
BM_SimMemoryAccess(benchmark::State& state)
{
    sim::MemorySystem mem(sim::Config::futuristic256());
    Rng rng(1);
    std::vector<std::uint8_t> data(1 << 20);
    std::uint64_t t = 0;
    for (auto _ : state) {
        const auto addr = reinterpret_cast<std::uintptr_t>(
            &data[rng.nextBelow(data.size())]);
        benchmark::DoNotOptimize(
            mem.access(static_cast<int>(rng.nextBelow(256)), addr, 8,
                       rng.nextBelow(4) == 0, t));
        t += 4;
    }
}
BENCHMARK(BM_SimMemoryAccess);

void
BM_SimFiberSwitch(benchmark::State& state)
{
    sim::Fiber* handle = nullptr;
    bool stop = false;
    sim::Fiber fiber(
        [&] {
            while (!stop) {
                handle->yieldToHost();
            }
        },
        128 * 1024);
    handle = &fiber;
    for (auto _ : state) {
        fiber.resume(); // one round trip = two context switches
    }
    stop = true;
    fiber.resume();
}
BENCHMARK(BM_SimFiberSwitch);

void
BM_SimulatedBfsEndToEnd(benchmark::State& state)
{
    sim::Config cfg = sim::Config::futuristic256();
    cfg.num_cores = 16;
    sim::Machine machine(cfg);
    const graph::Graph g =
        graph::generators::uniformRandom(512, 2048, 16, 7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::bfs(machine, 16, g, 0).reached);
    }
}
BENCHMARK(BM_SimulatedBfsEndToEnd);

} // namespace

BENCHMARK_MAIN();

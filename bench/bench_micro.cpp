/**
 * @file
 * google-benchmark microbenchmarks: native kernel throughput (edges
 * per second per kernel) and the hot simulator components (cache
 * lookup, mesh routing, memory-system transactions, fiber switch).
 * These guard against performance regressions in the library itself
 * rather than reproducing a paper figure.
 *
 * `bench_micro --json <path>` switches to a machine-readable mode: it
 * runs one telemetry-instrumented pass of each kernel configuration
 * and writes a "crono.bench.v1" document (see obs/metrics.h) whose
 * rows carry wall time, edges/sec, variability and the telemetry
 * counters — the BENCH_micro.json perf trajectory across PRs.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "core/suite.h"
#include "core/workloads.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "sim/machine.h"

namespace {

using namespace crono;

const graph::Graph&
microGraph()
{
    static const graph::Graph g =
        graph::generators::uniformRandom(4096, 32768, 32, 5);
    return g;
}

void
BM_NativeSssp(benchmark::State& state)
{
    const auto threads = static_cast<int>(state.range(0));
    rt::NativeExecutor exec(threads);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::sssp(exec, threads, microGraph(), 0).dist.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(microGraph().numEdges()));
}
BENCHMARK(BM_NativeSssp)->Arg(1)->Arg(2)->Arg(4);

void
BM_NativeBfs(benchmark::State& state)
{
    const auto threads = static_cast<int>(state.range(0));
    rt::NativeExecutor exec(threads);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::bfs(exec, threads, microGraph(), 0).reached);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(microGraph().numEdges()));
}
BENCHMARK(BM_NativeBfs)->Arg(1)->Arg(2)->Arg(4);

/**
 * Frontier-mode benchmarks: a 512x512 road network (262144 vertices,
 * avg degree ~2.6, huge diameter) is the regime where the flag-scan
 * structure rescans every vertex thousands of times. edges/sec for
 * every FrontierMode makes the sparse/adaptive win measurable
 * (acceptance: >= 2x over kFlagScan at 4 threads).
 */
const graph::Graph&
roadBenchGraph()
{
    static const graph::Graph g =
        graph::generators::roadNetwork(512, 512, 9);
    return g;
}

rt::FrontierMode
benchMode(benchmark::State& state)
{
    const auto mode = static_cast<rt::FrontierMode>(state.range(0));
    state.SetLabel(rt::frontierModeName(mode));
    return mode;
}

void
BM_RoadSssp(benchmark::State& state)
{
    const rt::FrontierMode mode = benchMode(state);
    const auto threads = static_cast<int>(state.range(1));
    rt::NativeExecutor exec(threads);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::sssp(exec, threads, roadBenchGraph(), 0, nullptr, mode)
                .dist.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(roadBenchGraph().numEdges()));
}
BENCHMARK(BM_RoadSssp)
    ->ArgNames({"mode", "threads"})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({2, 4})
    ->Unit(benchmark::kMillisecond);

void
BM_RoadBfs(benchmark::State& state)
{
    const rt::FrontierMode mode = benchMode(state);
    const auto threads = static_cast<int>(state.range(1));
    rt::NativeExecutor exec(threads);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::bfs(exec, threads, roadBenchGraph(), 0,
                      graph::kNoVertex, nullptr, mode)
                .reached);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(roadBenchGraph().numEdges()));
}
BENCHMARK(BM_RoadBfs)
    ->ArgNames({"mode", "threads"})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({2, 4})
    ->Unit(benchmark::kMillisecond);

/**
 * Direction-optimization benchmarks: an R-MAT social network (2^14
 * vertices, edge factor 16, low diameter, power-law degrees) is the
 * regime where a BFS puts a large fraction of the graph on the front
 * in two or three heavy middle rounds. Sweeping every FrontierMode —
 * including kPull and the direction-optimizing kAdaptive — makes the
 * pull-side win measurable (acceptance: adaptive beats the push-only
 * modes here).
 */
const graph::Graph&
socialBenchGraph()
{
    static const graph::Graph g =
        graph::generators::socialNetwork(14, 16, 11);
    return g;
}

void
BM_SocialBfs(benchmark::State& state)
{
    const rt::FrontierMode mode = benchMode(state);
    const auto threads = static_cast<int>(state.range(1));
    rt::NativeExecutor exec(threads);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::bfs(exec, threads, socialBenchGraph(), 0,
                      graph::kNoVertex, nullptr, mode)
                .reached);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(socialBenchGraph().numEdges()));
}
BENCHMARK(BM_SocialBfs)
    ->ArgNames({"mode", "threads"})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({3, 1})
    ->Args({2, 1})
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({3, 4})
    ->Args({2, 4})
    ->Unit(benchmark::kMillisecond);

void
BM_SocialPagerank(benchmark::State& state)
{
    const auto mode = static_cast<core::PageRankMode>(state.range(0));
    state.SetLabel(core::pageRankModeName(mode));
    const auto threads = static_cast<int>(state.range(1));
    rt::NativeExecutor exec(threads);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::pageRank(exec, threads, socialBenchGraph(), 5, 0.15,
                           nullptr, mode)
                .rank.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 5 *
        static_cast<std::int64_t>(socialBenchGraph().numEdges()));
}
BENCHMARK(BM_SocialPagerank)
    ->ArgNames({"mode", "threads"})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 4})
    ->Args({1, 4})
    ->Unit(benchmark::kMillisecond);

void
BM_NativeTriangleCount(benchmark::State& state)
{
    rt::NativeExecutor exec(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::triangleCount(exec, 2, microGraph()).total);
    }
}
BENCHMARK(BM_NativeTriangleCount);

void
BM_NativePageRankIteration(benchmark::State& state)
{
    rt::NativeExecutor exec(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::pageRank(exec, 2, microGraph(), 1).rank.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(microGraph().numEdges()));
}
BENCHMARK(BM_NativePageRankIteration);

void
BM_SimCacheLookup(benchmark::State& state)
{
    sim::Config cfg;
    sim::Cache cache(cfg.l1d, cfg.line_bytes);
    for (sim::LineAddr line = 0; line < 512; ++line) {
        cache.insert(line, sim::LineState::shared);
    }
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookup(rng.nextBelow(512)));
    }
}
BENCHMARK(BM_SimCacheLookup);

void
BM_SimMeshSend(benchmark::State& state)
{
    sim::Mesh mesh(sim::Config::futuristic256());
    Rng rng(1);
    std::uint64_t t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mesh.send(static_cast<int>(rng.nextBelow(256)),
                      static_cast<int>(rng.nextBelow(256)), 512, t));
        t += 20;
    }
}
BENCHMARK(BM_SimMeshSend);

void
BM_SimMemoryAccess(benchmark::State& state)
{
    sim::MemorySystem mem(sim::Config::futuristic256());
    Rng rng(1);
    std::vector<std::uint8_t> data(1 << 20);
    std::uint64_t t = 0;
    for (auto _ : state) {
        const auto addr = reinterpret_cast<std::uintptr_t>(
            &data[rng.nextBelow(data.size())]);
        benchmark::DoNotOptimize(
            mem.access(static_cast<int>(rng.nextBelow(256)), addr, 8,
                       rng.nextBelow(4) == 0, t));
        t += 4;
    }
}
BENCHMARK(BM_SimMemoryAccess);

void
BM_SimFiberSwitch(benchmark::State& state)
{
    sim::Fiber* handle = nullptr;
    bool stop = false;
    sim::Fiber fiber(
        [&] {
            while (!stop) {
                handle->yieldToHost();
            }
        },
        128 * 1024);
    handle = &fiber;
    for (auto _ : state) {
        fiber.resume(); // one round trip = two context switches
    }
    stop = true;
    fiber.resume();
}
BENCHMARK(BM_SimFiberSwitch);

void
BM_SimulatedBfsEndToEnd(benchmark::State& state)
{
    sim::Config cfg = sim::Config::futuristic256();
    cfg.num_cores = 16;
    sim::Machine machine(cfg);
    const graph::Graph g =
        graph::generators::uniformRandom(512, 2048, 16, 7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::bfs(machine, 16, g, 0).reached);
    }
}
BENCHMARK(BM_SimulatedBfsEndToEnd);

// ------------------------------------------------------- --json mode

/**
 * Smaller road instance than the wall-time benches use: the JSON
 * suite runs every configuration once per invocation, so it trades
 * statistical depth for breadth.
 */
const graph::Graph&
jsonRoadGraph()
{
    static const graph::Graph g = graph::generators::roadNetwork(256, 256, 9);
    return g;
}

obs::BenchResult
makeRow(std::string name, std::string kernel, std::string graph_name,
        const graph::Graph& g, int threads, std::string mode,
        double seconds, const rt::RunInfo& info, std::uint64_t rounds,
        const obs::Recorder& recorder)
{
    obs::BenchResult row;
    row.name = std::move(name);
    row.kernel = std::move(kernel);
    row.graph = std::move(graph_name);
    row.vertices = g.numVertices();
    row.edges = g.numEdges();
    row.threads = threads;
    row.mode = std::move(mode);
    row.time_seconds = seconds;
    row.edges_per_second =
        seconds > 0.0 ? static_cast<double>(g.numEdges()) / seconds : 0.0;
    row.variability = info.variability;
    row.rounds = rounds;
    row.counters = obs::counterTotals(recorder);
    return row;
}

/** Wall-clock one invocation of @p fn under a fresh telemetry session. */
template <class Fn>
obs::BenchResult
timedEntry(const std::string& name, const std::string& kernel,
           const std::string& graph_name, const graph::Graph& g,
           int threads, const std::string& mode, Fn&& fn)
{
    obs::TelemetrySession session;
    const auto start = std::chrono::steady_clock::now();
    const auto [info, rounds] = fn();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return makeRow(name, kernel, graph_name, g, threads, mode, seconds,
                   info, rounds, session.recorder());
}

int
runJsonSuite(const std::string& path)
{
    std::vector<obs::BenchResult> rows;
    const graph::Graph& road = jsonRoadGraph();
    const graph::Graph& rnd = microGraph();
    const std::string road_name = "road(256,256)";
    const std::string rnd_name = "uniform(4096,32768)";

    rt::NativeExecutor exec(4);
    const rt::FrontierMode modes[] = {rt::FrontierMode::kFlagScan,
                                      rt::FrontierMode::kSparse,
                                      rt::FrontierMode::kAdaptive};
    for (const rt::FrontierMode mode : modes) {
        const std::string mode_name = rt::frontierModeName(mode);
        for (const int threads : {1, 4}) {
            const std::string suffix =
                "/" + mode_name + "/t" + std::to_string(threads);
            rows.push_back(timedEntry(
                "sssp/road" + suffix, "SSSP_DIJK", road_name, road,
                threads, mode_name, [&] {
                    auto res =
                        core::sssp(exec, threads, road, 0, nullptr, mode);
                    return std::pair{res.run, res.rounds};
                }));
            rows.push_back(timedEntry(
                "bfs/road" + suffix, "BFS", road_name, road, threads,
                mode_name, [&] {
                    auto res = core::bfs(exec, threads, road, 0,
                                         graph::kNoVertex, nullptr, mode);
                    return std::pair{res.run, std::uint64_t{0}};
                }));
        }
    }
    // Direction-optimization rows: all four modes on the social
    // network (the pull/adaptive headline), plus scatter-vs-gather
    // PageRank.
    const graph::Graph& social = socialBenchGraph();
    const std::string social_name = "social(2^14,ef16)";
    const rt::FrontierMode social_modes[] = {
        rt::FrontierMode::kFlagScan, rt::FrontierMode::kSparse,
        rt::FrontierMode::kPull, rt::FrontierMode::kAdaptive};
    for (const rt::FrontierMode mode : social_modes) {
        const std::string mode_name = rt::frontierModeName(mode);
        rows.push_back(timedEntry(
            "bfs/social/" + mode_name + "/t4", "BFS", social_name,
            social, 4, mode_name, [&] {
                auto res = core::bfs(exec, 4, social, 0,
                                     graph::kNoVertex, nullptr, mode);
                return std::pair{res.run, std::uint64_t{0}};
            }));
    }
    for (const core::PageRankMode mode :
         {core::PageRankMode::kScatter, core::PageRankMode::kGather}) {
        const std::string mode_name = core::pageRankModeName(mode);
        rows.push_back(timedEntry(
            "pagerank/social/" + mode_name + "/t4", "PAGE_RANK",
            social_name, social, 4, mode_name, [&] {
                auto res = core::pageRank(exec, 4, social, 5, 0.15,
                                          nullptr, mode);
                return std::pair{res.run, std::uint64_t{res.iterations}};
            }));
    }

    rows.push_back(timedEntry(
        "cc/uniform/flagscan/t4", "CONN_COMP", rnd_name, rnd, 4,
        "flagscan", [&] {
            auto res = core::connectedComponents(exec, 4, rnd);
            return std::pair{res.run, res.rounds};
        }));
    rows.push_back(timedEntry(
        "pagerank/uniform/t4", "PAGE_RANK", rnd_name, rnd, 4, "", [&] {
            auto res = core::pageRank(exec, 4, rnd, 10);
            return std::pair{res.run, std::uint64_t{res.iterations}};
        }));
    rows.push_back(timedEntry(
        "trianglecount/uniform/t4", "TRI_CNT", rnd_name, rnd, 4, "",
        [&] {
            auto res = core::triangleCount(exec, 4, rnd);
            return std::pair{res.run, std::uint64_t{0}};
        }));

    if (!bench::writeBenchReport(path, rows)) {
        return 1;
    }
    for (const obs::BenchResult& row : rows) {
        std::printf("  %-28s %10.4f s  %12.0f edges/s\n",
                    row.name.c_str(), row.time_seconds,
                    row.edges_per_second);
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    // --json <path> (or --json=<path>) bypasses google-benchmark and
    // runs the machine-readable suite instead.
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[i + 1];
            break;
        }
        if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
            break;
        }
    }
    if (!json_path.empty()) {
        return runJsonSuite(json_path);
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

/**
 * @file
 * Load generator + conformance driver for the serve stack: N client
 * threads issue a deterministic mix of query classes against a live
 * server while an ingest thread streams edge-update batches (plus one
 * final compaction), so every latency distribution includes epoch
 * churn — the serving regime the snapshot design exists for.
 *
 * Two loops:
 *  - closed (default): each client issues its next request the moment
 *    the previous response lands; concurrency == --clients.
 *  - open: each client fires on a fixed schedule derived from --rps
 *    (total across clients) and reports how often it fell behind.
 *
 * Reports:
 *  - <json>/serve_report.json — crono.serve.v1 (client-side p50/p90/
 *    p99 per class + workload block; see serve/report.h)
 *  - <json>/table_serve.json — crono.bench.v1 rows (one per class,
 *    plus serve/throughput) so the bench_compare regression gate and
 *    baselines work unchanged (bench/baselines/serve_quick.json)
 *
 * The request mix is a fixed 20-slot schedule (not sampled), so every
 * class appears whenever requests-per-client >= 20 and the report's
 * row set is deterministic — which the names-only coverage gate in
 * scripts/check_regression.sh depends on.
 *
 * --connect=HOST:PORT drives an already-running crono_serve over TCP
 * instead of an in-process server (protocol-identical).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "obs/histogram.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "runtime/executor.h"
#include "serve/net.h"
#include "serve/report.h"
#include "serve/server.h"

namespace {

using namespace crono;

struct Args {
    bench::Options common;
    int clients = 8;
    int requests = 0;       ///< per client; 0 = default by quick
    bool open_loop = false;
    double rps = 200.0;     ///< open loop: total target rate
    unsigned scale = 0;     ///< 0 = default by quick
    unsigned edge_factor = 8;
    int shards = 4;
    int workers = 2;
    int threads = 2;
    unsigned pr_iters = 10;
    int sources = 4;        ///< distinct query sources (cache realism)
    int ingest_batches = 4;
    int ingest_every_ms = 5;
    graph::Reordering reorder = graph::Reordering::kDegreeSort;
    std::string connect;    ///< "host:port" (empty = in-process)
};

bool
parseArgs(int argc, char** argv, Args* a)
{
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--quick") == 0) {
            a->common.quick = true;
        } else if (std::strncmp(arg, "--seed=", 7) == 0) {
            a->common.seed = std::strtoull(arg + 7, nullptr, 10);
        } else if (std::strncmp(arg, "--json=", 7) == 0) {
            a->common.json_dir = arg + 7;
        } else if (std::strcmp(arg, "--json") == 0) {
            a->common.json_dir = ".";
        } else if (std::strncmp(arg, "--clients=", 10) == 0) {
            a->clients = std::atoi(arg + 10);
        } else if (std::strncmp(arg, "--requests=", 11) == 0) {
            a->requests = std::atoi(arg + 11);
        } else if (std::strcmp(arg, "--mode=open") == 0) {
            a->open_loop = true;
        } else if (std::strcmp(arg, "--mode=closed") == 0) {
            a->open_loop = false;
        } else if (std::strncmp(arg, "--rps=", 6) == 0) {
            a->rps = std::atof(arg + 6);
        } else if (std::strncmp(arg, "--scale=", 8) == 0) {
            a->scale = static_cast<unsigned>(std::atoi(arg + 8));
        } else if (std::strncmp(arg, "--edge-factor=", 14) == 0) {
            a->edge_factor =
                static_cast<unsigned>(std::atoi(arg + 14));
        } else if (std::strncmp(arg, "--shards=", 9) == 0) {
            a->shards = std::atoi(arg + 9);
        } else if (std::strncmp(arg, "--workers=", 10) == 0) {
            a->workers = std::atoi(arg + 10);
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            a->threads = std::atoi(arg + 10);
        } else if (std::strncmp(arg, "--pr-iters=", 11) == 0) {
            a->pr_iters = static_cast<unsigned>(std::atoi(arg + 11));
        } else if (std::strncmp(arg, "--sources=", 10) == 0) {
            a->sources = std::atoi(arg + 10);
        } else if (std::strncmp(arg, "--ingest-batches=", 17) == 0) {
            a->ingest_batches = std::atoi(arg + 17);
        } else if (std::strncmp(arg, "--ingest-every-ms=", 18) == 0) {
            a->ingest_every_ms = std::atoi(arg + 18);
        } else if (std::strncmp(arg, "--reorder=", 10) == 0) {
            bool found = false;
            for (const graph::Reordering r :
                 graph::allReorderings()) {
                if (std::strcmp(arg + 10,
                                graph::reorderingName(r)) == 0) {
                    a->reorder = r;
                    found = true;
                }
            }
            if (!found) {
                std::fprintf(stderr, "unknown reordering: %s\n",
                             arg + 10);
                return false;
            }
        } else if (std::strncmp(arg, "--connect=", 10) == 0) {
            a->connect = arg + 10;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg);
            return false;
        }
    }
    if (a->scale == 0) {
        a->scale = a->common.quick ? 12 : 20;
    }
    if (a->requests == 0) {
        a->requests = a->common.quick ? 25 : 50;
    }
    return true;
}

/** Uniform client interface over in-process and TCP transports. */
class AnyClient {
  public:
    virtual ~AnyClient() = default;
    virtual serve::Response call(serve::Request req) = 0;
};

class LocalClient final : public AnyClient {
  public:
    explicit LocalClient(serve::Server& server) : c_(server) {}
    serve::Response
    call(serve::Request req) override
    {
        return c_.call(std::move(req));
    }

  private:
    serve::Client c_;
};

class RemoteClient final : public AnyClient {
  public:
    RemoteClient(const std::string& host, std::uint16_t port)
        : c_(host, port)
    {
    }
    bool connected() const { return c_.connected(); }
    serve::Response
    call(serve::Request req) override
    {
        return c_.call(std::move(req));
    }

  private:
    serve::TcpClient c_;
};

/**
 * The fixed 20-slot request-class schedule (see file header). Point
 * query sources are drawn from the shared source pool so epochs hit
 * warm kernel caches the way a real workload's hot keys do.
 */
constexpr serve::Op kSchedule[20] = {
    serve::Op::kPing,      serve::Op::kBfsDist,
    serve::Op::kSsspDist,  serve::Op::kBfsDist,
    serve::Op::kComponent, serve::Op::kSsspDist,
    serve::Op::kSsspBatch, serve::Op::kTopDegree,
    serve::Op::kSsspDist,  serve::Op::kRankScore,
    serve::Op::kBfsDist,   serve::Op::kComponent,
    serve::Op::kSsspDist,  serve::Op::kTopRank,
    serve::Op::kSsspBatch, serve::Op::kRankScore,
    serve::Op::kBfsDist,   serve::Op::kComponent,
    serve::Op::kSsspDist,  serve::Op::kTopDegree,
};

/** Per-class latency aggregation (one per client, merged at exit). */
struct ClassAgg {
    std::uint64_t count = 0;
    std::uint64_t errors = 0;
    obs::LogHistogram lat_ns;
};

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

struct ClientStats {
    std::vector<ClassAgg> classes{
        static_cast<std::size_t>(serve::kNumOps)};
    std::uint64_t behind = 0; ///< open loop: late-fire count
};

void
clientLoop(AnyClient* client, const Args& args, int client_id,
           graph::VertexId num_vertices,
           const std::vector<graph::VertexId>& sources,
           ClientStats* stats)
{
    Rng rng(args.common.seed * 7919 +
            static_cast<std::uint64_t>(client_id));
    const double interval_ns =
        args.open_loop ? 1e9 * args.clients / args.rps : 0.0;
    const std::uint64_t t0 = nowNs();

    for (int i = 0; i < args.requests; ++i) {
        if (args.open_loop) {
            const auto due = t0 + static_cast<std::uint64_t>(
                                      interval_ns * i);
            const std::uint64_t now = nowNs();
            if (now < due) {
                std::this_thread::sleep_for(
                    std::chrono::nanoseconds(due - now));
            } else if (i > 0) {
                ++stats->behind;
            }
        }
        serve::Request req;
        req.op = kSchedule[static_cast<std::size_t>(i) % 20];
        switch (req.op) {
          case serve::Op::kBfsDist:
          case serve::Op::kSsspDist:
            req.source = sources[rng.nextBelow(sources.size())];
            req.target = static_cast<graph::VertexId>(
                rng.nextBelow(num_vertices));
            break;
          case serve::Op::kSsspBatch:
            req.source = sources[rng.nextBelow(sources.size())];
            for (int t = 0; t < 8; ++t) {
                req.targets.push_back(static_cast<graph::VertexId>(
                    rng.nextBelow(num_vertices)));
            }
            break;
          case serve::Op::kComponent:
          case serve::Op::kRankScore:
            req.source = sources[rng.nextBelow(sources.size())];
            break;
          case serve::Op::kTopDegree:
          case serve::Op::kTopRank:
            req.k = 10;
            break;
          default:
            break;
        }
        const serve::Op op = req.op;
        const std::uint64_t begin = nowNs();
        const serve::Response resp = client->call(std::move(req));
        const std::uint64_t latency = nowNs() - begin;
        ClassAgg& agg = stats->classes[static_cast<std::size_t>(op)];
        ++agg.count;
        if (resp.status != serve::Status::kOk) {
            ++agg.errors;
        }
        agg.lat_ns.add(latency);
    }
}

void
ingestLoop(AnyClient* client, const Args& args,
           graph::VertexId num_vertices,
           const std::atomic<bool>* clients_done, ClientStats* stats)
{
    Rng rng(args.common.seed * 104729 + 17);
    for (int b = 0; b < args.ingest_batches; ++b) {
        if (clients_done->load()) {
            break; // measurement window over; stop churning epochs
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(args.ingest_every_ms));
        serve::Request req;
        req.op = serve::Op::kIngest;
        for (int e = 0; e < 32; ++e) {
            req.edges.push_back(
                {static_cast<graph::VertexId>(
                     rng.nextBelow(num_vertices)),
                 static_cast<graph::VertexId>(
                     rng.nextBelow(num_vertices)),
                 static_cast<graph::Weight>(1 + rng.nextBelow(64))});
        }
        const std::uint64_t begin = nowNs();
        const serve::Response resp = client->call(std::move(req));
        const std::uint64_t latency = nowNs() - begin;
        ClassAgg& agg = stats->classes[static_cast<std::size_t>(
            serve::Op::kIngest)];
        ++agg.count;
        if (resp.status != serve::Status::kOk) {
            ++agg.errors;
        }
        agg.lat_ns.add(latency);
    }
    // One forced compaction inside the window so its latency class is
    // always present in the report.
    serve::Request req;
    req.op = serve::Op::kCompact;
    const std::uint64_t begin = nowNs();
    const serve::Response resp = client->call(std::move(req));
    ClassAgg& agg =
        stats->classes[static_cast<std::size_t>(serve::Op::kCompact)];
    ++agg.count;
    if (resp.status != serve::Status::kOk) {
        ++agg.errors;
    }
    agg.lat_ns.add(nowNs() - begin);
}

/** Fill the report's server block from a kStats round trip. */
serve::ServeInfo
serverInfoFrom(AnyClient* client)
{
    serve::ServeInfo info;
    serve::Request req;
    req.op = serve::Op::kStats;
    const serve::Response resp = client->call(std::move(req));
    obs::json::Value doc;
    if (resp.status != serve::Status::kOk ||
        !obs::json::parse(resp.text, doc)) {
        return info;
    }
    const obs::json::Value* server = doc.find("server");
    if (server == nullptr) {
        return info;
    }
    const auto u64 = [&](const char* key) -> std::uint64_t {
        const obs::json::Value* v = server->find(key);
        return v != nullptr ? v->asU64() : 0;
    };
    info.num_shards = static_cast<int>(u64("num_shards"));
    if (const obs::json::Value* r = server->find("reordering")) {
        info.reordering = r->str;
    }
    info.epoch = u64("epoch");
    info.vertices = u64("vertices");
    info.edge_slots = u64("edge_slots");
    info.delta_edges = u64("delta_edges");
    info.delta_depth = u64("delta_depth");
    info.batches_ingested = u64("batches_ingested");
    info.edges_ingested = u64("edges_ingested");
    info.compactions = u64("compactions");
    return info;
}

} // namespace

int
main(int argc, char** argv)
{
    Args args;
    if (!parseArgs(argc, argv, &args)) {
        return 2;
    }
    const std::string graph_name =
        "kron-" + std::to_string(args.scale);

    // In-process serving stack (unless --connect).
    std::unique_ptr<serve::GraphStore> store;
    std::unique_ptr<rt::NativeExecutor> exec;
    std::unique_ptr<serve::Server> server;
    graph::VertexId num_vertices = 0;
    std::uint64_t edge_slots = 0;

    if (args.connect.empty()) {
        std::printf("building %s (seed %llu)...\n", graph_name.c_str(),
                    static_cast<unsigned long long>(args.common.seed));
        graph::Graph g = graph::generators::kronecker(
            args.scale, args.edge_factor, /*max_weight=*/64,
            args.common.seed);
        num_vertices = g.numVertices();
        edge_slots = g.numEdges();
        serve::StoreConfig store_cfg;
        store_cfg.num_shards = args.shards;
        store_cfg.reordering = args.reorder;
        store = std::make_unique<serve::GraphStore>(std::move(g),
                                                    store_cfg);
        exec = std::make_unique<rt::NativeExecutor>(args.threads);
        serve::ServerConfig server_cfg;
        server_cfg.num_workers = args.workers;
        server_cfg.query.nthreads = args.threads;
        server_cfg.query.pagerank_iterations = args.pr_iters;
        server = std::make_unique<serve::Server>(*store, *exec,
                                                 server_cfg);
        server->start();
    }

    const auto makeClient = [&]() -> std::unique_ptr<AnyClient> {
        if (args.connect.empty()) {
            return std::make_unique<LocalClient>(*server);
        }
        const std::size_t colon = args.connect.rfind(':');
        const std::string host = args.connect.substr(0, colon);
        const auto port = static_cast<std::uint16_t>(
            std::atoi(args.connect.c_str() + colon + 1));
        auto c = std::make_unique<RemoteClient>(host, port);
        if (!c->connected()) {
            std::fprintf(stderr, "cannot connect to %s\n",
                         args.connect.c_str());
            std::exit(1);
        }
        return c;
    };

    if (!args.connect.empty()) {
        // Probe the remote store's shape for sources/targets.
        auto probe = makeClient();
        const serve::ServeInfo info = serverInfoFrom(probe.get());
        num_vertices =
            static_cast<graph::VertexId>(info.vertices);
        edge_slots = info.edge_slots;
        if (num_vertices == 0) {
            std::fprintf(stderr, "remote stats probe failed\n");
            return 1;
        }
    }

    // Shared source pool: hot keys, deterministic in the seed.
    Rng src_rng(args.common.seed);
    std::vector<graph::VertexId> sources;
    for (int i = 0; i < args.sources; ++i) {
        sources.push_back(static_cast<graph::VertexId>(
            src_rng.nextBelow(num_vertices)));
    }

    std::printf(
        "%s loop: %d clients x %d requests, %d-source pool, "
        "%d ingest batches\n",
        args.open_loop ? "open" : "closed", args.clients,
        args.requests, args.sources, args.ingest_batches);

    std::vector<std::unique_ptr<AnyClient>> clients;
    for (int c = 0; c < args.clients + 1; ++c) {
        clients.push_back(makeClient()); // last one is the ingester
    }

    std::vector<ClientStats> stats(
        static_cast<std::size_t>(args.clients) + 1);
    std::atomic<bool> clients_done{false};

    const std::uint64_t window_begin = nowNs();
    std::vector<std::thread> threads;
    for (int c = 0; c < args.clients; ++c) {
        threads.emplace_back([&, c] {
            clientLoop(clients[static_cast<std::size_t>(c)].get(),
                       args, c, num_vertices, sources,
                       &stats[static_cast<std::size_t>(c)]);
        });
    }
    std::thread ingester([&] {
        ingestLoop(clients.back().get(), args, num_vertices,
                   &clients_done, &stats.back());
    });
    for (std::thread& t : threads) {
        t.join();
    }
    clients_done = true;
    ingester.join();
    const double seconds =
        static_cast<double>(nowNs() - window_begin) / 1e9;

    // Merge per-client aggregations.
    std::vector<ClassAgg> merged(
        static_cast<std::size_t>(serve::kNumOps));
    std::uint64_t behind = 0;
    for (const ClientStats& s : stats) {
        for (int op = 0; op < serve::kNumOps; ++op) {
            const ClassAgg& a =
                s.classes[static_cast<std::size_t>(op)];
            ClassAgg& m = merged[static_cast<std::size_t>(op)];
            m.count += a.count;
            m.errors += a.errors;
            m.lat_ns.merge(a.lat_ns);
        }
        behind += s.behind;
    }

    serve::ServeInfo info = serverInfoFrom(clients[0].get());
    serve::ServeTotals totals;
    totals.seconds = seconds;
    std::vector<serve::ClassStats> classes;
    for (int op = 0; op < serve::kNumOps; ++op) {
        const ClassAgg& m = merged[static_cast<std::size_t>(op)];
        serve::ClassStats c;
        c.op = serve::opName(static_cast<serve::Op>(op));
        c.count = m.count;
        c.errors = m.errors;
        c.latency_ns = m.lat_ns;
        classes.push_back(std::move(c));
        totals.requests += m.count;
        totals.errors += m.errors;
    }

    std::printf("%-12s %8s %6s %12s %12s %12s\n", "class", "count",
                "err", "p50_ms", "p90_ms", "p99_ms");
    for (const serve::ClassStats& c : classes) {
        if (c.count == 0) {
            continue;
        }
        std::printf("%-12s %8llu %6llu %12.3f %12.3f %12.3f\n", c.op,
                    static_cast<unsigned long long>(c.count),
                    static_cast<unsigned long long>(c.errors),
                    c.latency_ns.quantile(0.50) / 1e6,
                    c.latency_ns.quantile(0.90) / 1e6,
                    c.latency_ns.quantile(0.99) / 1e6);
    }
    std::printf("totals: %llu requests, %llu errors, %.2fs, "
                "%.1f req/s%s\n",
                static_cast<unsigned long long>(totals.requests),
                static_cast<unsigned long long>(totals.errors),
                totals.seconds,
                static_cast<double>(totals.requests) / totals.seconds,
                args.open_loop
                    ? (", behind " + std::to_string(behind)).c_str()
                    : "");

    if (!args.common.json_dir.empty()) {
        serve::WorkloadDesc wl;
        wl.mode = args.open_loop ? "open" : "closed";
        wl.clients = args.clients;
        wl.requests_per_client =
            static_cast<std::uint64_t>(args.requests);
        wl.target_rps = args.open_loop ? args.rps : 0.0;
        wl.ingest_batches =
            merged[static_cast<std::size_t>(serve::Op::kIngest)]
                .count;
        wl.graph = graph_name;
        wl.seed = args.common.seed;
        wl.quick = args.common.quick;
        const std::string report_path =
            args.common.json_dir + "/serve_report.json";
        if (!obs::writeTextFile(
                report_path,
                serve::serveReportJson(info, classes, totals, &wl))) {
            std::fprintf(stderr, "cannot write %s\n",
                         report_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", report_path.c_str());

        // crono.bench.v1 rows so bench_compare gates serve latencies
        // exactly like kernel times.
        std::vector<obs::BenchResult> rows;
        for (int op = 0; op < serve::kNumOps; ++op) {
            const ClassAgg& m = merged[static_cast<std::size_t>(op)];
            if (m.count == 0) {
                continue;
            }
            obs::BenchResult row;
            row.name = std::string("serve/") +
                       serve::opName(static_cast<serve::Op>(op)) +
                       "/c" + std::to_string(args.clients);
            row.kernel = serve::opName(static_cast<serve::Op>(op));
            row.graph = graph_name;
            row.vertices = num_vertices;
            row.edges = edge_slots;
            row.threads = args.clients;
            row.time_seconds = m.lat_ns.mean() / 1e9;
            row.trials = m.count;
            row.p50_seconds = m.lat_ns.quantile(0.50) / 1e9;
            row.p90_seconds = m.lat_ns.quantile(0.90) / 1e9;
            row.p99_seconds = m.lat_ns.quantile(0.99) / 1e9;
            rows.push_back(std::move(row));
        }
        obs::BenchResult tput;
        tput.name = "serve/throughput/c" + std::to_string(args.clients);
        tput.kernel = "throughput";
        tput.graph = graph_name;
        tput.vertices = num_vertices;
        tput.edges = edge_slots;
        tput.threads = args.clients;
        tput.time_seconds =
            totals.requests > 0
                ? totals.seconds /
                      static_cast<double>(totals.requests)
                : 0.0;
        tput.trials = totals.requests;
        rows.push_back(std::move(tput));
        if (!bench::writeBenchReport(
                bench::jsonPathFor(args.common, "table", "serve"),
                rows)) {
            return 1;
        }
    }

    if (server != nullptr) {
        server->stop();
    }
    return totals.errors == 0 ? 0 : 1;
}

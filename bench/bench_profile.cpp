/**
 * @file
 * Native hardware-counter profile: runs the frontier kernels on road
 * and social inputs under a TelemetrySession + ProfileSession, then
 * reports, per kernel span,
 *
 *  - span-attributed counter deltas (cycles, instructions, LLC
 *    refs/misses, branch misses — or the software/rusage tiers when
 *    the host forbids hardware counters, see obs/perf/counters.h);
 *  - log-bucketed duration percentiles over the per-source trials;
 *  - per-thread busy/barrier/steal imbalance from the span rings;
 *  - the simulator's miss rates for the same kernels side by side,
 *    the native counterpart of the paper's Fig 3/4 cache tables.
 *
 * `--json=DIR` writes DIR/table_profile.json, a "crono.profile.v1"
 * document (schema in obs/profile_report.h). The report's "source"
 * field says which degradation tier produced the numbers; forcing
 * CRONO_PROFILE=off in the environment exercises the fallback path
 * (CI asserts this stays well-formed in counter-less containers).
 *
 * Options beyond the common set: --threads=N (default: hardware
 * concurrency), --sources=N, --trials=N, --input=road|social|all,
 * --no-sim.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "graph/generators.h"
#include "obs/profile_report.h"
#include "obs/telemetry.h"

namespace {

using namespace crono;
using graph::VertexId;

struct ProfileOptions {
    bench::Options base;
    int threads = 0; ///< 0 = hardware concurrency
    int sources = 8; ///< per-source kernel trials
    int trials = 3;  ///< non-source kernel trials
    bool no_sim = false;
    std::string input = "all";
};

ProfileOptions
parseProfileOptions(int argc, char** argv)
{
    ProfileOptions opt;
    for (int i = 1; i < argc; ++i) {
        const char* const a = argv[i];
        if (std::strcmp(a, "--quick") == 0) {
            opt.base.quick = true;
        } else if (std::strncmp(a, "--seed=", 7) == 0) {
            opt.base.seed = std::strtoull(a + 7, nullptr, 10);
        } else if (std::strncmp(a, "--json=", 7) == 0) {
            opt.base.json_dir = a + 7;
        } else if (std::strcmp(a, "--json") == 0) {
            opt.base.json_dir = ".";
        } else if (std::strncmp(a, "--threads=", 10) == 0) {
            opt.threads = std::atoi(a + 10);
        } else if (std::strncmp(a, "--sources=", 10) == 0) {
            opt.sources = std::atoi(a + 10);
        } else if (std::strncmp(a, "--trials=", 9) == 0) {
            opt.trials = std::atoi(a + 9);
        } else if (std::strcmp(a, "--no-sim") == 0) {
            opt.no_sim = true;
        } else if (std::strncmp(a, "--input=", 8) == 0) {
            opt.input = a + 8;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", a);
        }
    }
    if (opt.base.quick) {
        opt.sources = std::min(opt.sources, 2);
        opt.trials = std::min(opt.trials, 1);
    }
    if (opt.threads <= 0) {
        opt.threads = static_cast<int>(
            std::max(1u, std::thread::hardware_concurrency()));
    }
    return opt;
}

/** Defeat dead-code elimination of the kernel results. */
std::uint64_t g_sink = 0;

/** Kernels profiled natively and mirrored in the sim section. */
constexpr const char* kProfiledKernels[] = {
    "BFS", "SSSP_DIJK", "SSSP_DELTA", "PAGE_RANK", "CONN_COMP",
    "TRI_CNT",
};

/**
 * One profiled input: run the kernel set under telemetry + profiling
 * sessions, then distill spans and imbalance into a ProfileSection.
 * The weakest counter tier and the multiplexing flag accumulate into
 * @p source / @p multiplexed.
 */
obs::ProfileSection
profileSection(const ProfileOptions& opt, const graph::Graph& g,
               const std::string& tag, obs::perf::CounterSource* source,
               bool* multiplexed)
{
    const int nt = opt.threads;
    obs::TelemetrySession telemetry;
    obs::perf::ProfileSession profile;
    {
        rt::NativeExecutor exec(nt);
        const std::vector<VertexId> sources =
            bench::gapSources(g, opt.sources, opt.base.seed * 131 + 7);
        const graph::Dist delta = core::autoDelta(g, nt);
        for (const VertexId src : sources) {
            g_sink += core::bfs(exec, nt, g, src, graph::kNoVertex,
                                nullptr, rt::FrontierMode::kAdaptive)
                          .reached;
            g_sink += core::sssp(exec, nt, g, src, nullptr,
                                 rt::FrontierMode::kAdaptive)
                          .dist[0];
            g_sink += core::deltaSteppingSssp(exec, nt, g, src, nullptr,
                                              delta)
                          .dist[0];
        }
        for (int t = 0; t < opt.trials; ++t) {
            g_sink += static_cast<std::uint64_t>(
                core::pageRank(exec, nt, g, 5, 0.15, nullptr,
                               core::PageRankMode::kScatter)
                    .rank[0] *
                1e9);
            g_sink += core::connectedComponents(
                          exec, nt, g, nullptr,
                          rt::FrontierMode::kAdaptive)
                          .num_components;
            g_sink += core::triangleCount(exec, nt, g).total;
        }
    } // join workers so every span (and perf window) is closed

    obs::ProfileSection section;
    section.graph = tag;
    section.threads = nt;
    section.spans_dropped = telemetry.recorder().totalDropped();
    section.spans =
        obs::collectSpanProfiles(profile.sessionCollector());
    section.imbalance = obs::imbalanceFromRecorder(telemetry.recorder());
    *source = std::max(*source, profile.sessionCollector().source());
    *multiplexed |= profile.sessionCollector().multiplexed();
    return section;
}

/** The kernel spans of @p section, paper order, skipping absentees. */
std::vector<const obs::SpanProfile*>
kernelSpans(const obs::ProfileSection& section)
{
    std::vector<const obs::SpanProfile*> out;
    for (const char* name : kProfiledKernels) {
        for (const obs::SpanProfile& s : section.spans) {
            if (s.name == name && s.cat == "kernel") {
                out.push_back(&s);
                break;
            }
        }
    }
    return out;
}

/** Sim miss-rate rows for the same kernel set (fresh machine). */
void
addSimRows(const ProfileOptions& opt, obs::ProfileSection& section)
{
    const sim::Config cfg; // paper baseline machine
    const core::WorkloadConfig wc = bench::simWorkloadConfig(opt.base);
    const core::WorkloadSet set(wc);
    const int sim_threads = 16;
    sim::Machine machine(cfg);

    // Kernel-span names, not registry names (the registry spells
    // PageRank in paper-table style, the spans in identifier style).
    const struct {
        core::BenchmarkId id;
        const char* span_name;
    } rows[] = {
        {core::BenchmarkId::bfs, "BFS"},
        {core::BenchmarkId::ssspDijk, "SSSP_DIJK"},
        {core::BenchmarkId::pageRank, "PAGE_RANK"},
        {core::BenchmarkId::connComp, "CONN_COMP"},
        {core::BenchmarkId::triCnt, "TRI_CNT"},
    };
    for (const auto& r : rows) {
        core::runBenchmark(r.id, machine, sim_threads,
                           set.forBenchmark(r.id));
        const sim::SimRunStats& st = machine.lastStats();
        section.sim.push_back({r.span_name, st.completion_cycles,
                               st.l1d.missRate(), st.l2.missRate(),
                               st.cacheHierarchyMissRate()});
    }
    // Delta-stepping through the same SSSP workload, so the paper's
    // SSSP row has both algorithms side by side.
    core::Workload w = set.forBenchmark(core::BenchmarkId::ssspDijk);
    w.sssp_algo = core::SsspAlgo::kDeltaStep;
    core::runBenchmark(core::BenchmarkId::ssspDijk, machine,
                       sim_threads, w);
    const sim::SimRunStats& st = machine.lastStats();
    section.sim.push_back({"SSSP_DELTA", st.completion_cycles,
                           st.l1d.missRate(), st.l2.missRate(),
                           st.cacheHierarchyMissRate()});
    section.has_sim = true;
}

void
printSection(const obs::ProfileSection& section,
             obs::perf::CounterSource source)
{
    namespace perf = obs::perf;
    std::printf("\n=== %s (threads=%d%s) ===\n", section.graph.c_str(),
                section.threads,
                section.spans_dropped != 0 ? ", spans dropped" : "");

    std::printf("\n%-12s %6s %10s %10s %10s %10s\n", "span", "count",
                "mean_ms", "p50_ms", "p90_ms", "p99_ms");
    for (const obs::SpanProfile& s : section.spans) {
        if (s.cat != "kernel" && s.cat != "round") {
            continue;
        }
        const double ms = 1e-6;
        std::printf("%-12s %6llu %10.3f %10.3f %10.3f %10.3f\n",
                    s.name.c_str(),
                    static_cast<unsigned long long>(s.count),
                    s.duration_ns.mean() * ms,
                    s.duration_ns.quantile(0.50) * ms,
                    s.duration_ns.quantile(0.90) * ms,
                    s.duration_ns.quantile(0.99) * ms);
    }

    // Fig 3/4-style table: native cache behaviour (when the host
    // exposes hardware counters) against the simulator's miss rates.
    std::printf("\n%-12s | %9s %6s %8s | %9s %9s %9s\n", "kernel",
                "nat LLC%", "IPC", "br-mis%", "sim L1D%", "sim L2%",
                "sim hier%");
    const std::vector<const obs::SpanProfile*> kernels =
        kernelSpans(section);
    for (const obs::SpanProfile* s : kernels) {
        const obs::ProfileSection::SimRow* sim_row = nullptr;
        for (const auto& r : section.sim) {
            if (r.kernel == s->name) {
                sim_row = &r;
                break;
            }
        }
        if (source == perf::CounterSource::kPerf) {
            std::printf("%-12s | %9.2f %6.2f %8.3f |", s->name.c_str(),
                        s->total.llcMissRate() * 100.0, s->total.ipc(),
                        s->total.branchMissRate() * 100.0);
        } else {
            std::printf("%-12s | %9s %6s %8s |", s->name.c_str(), "-",
                        "-", "-");
        }
        if (sim_row != nullptr) {
            std::printf(" %9.2f %9.2f %9.2f\n",
                        sim_row->l1d_miss_rate * 100.0,
                        sim_row->l2_miss_rate * 100.0,
                        sim_row->hierarchy_miss_rate * 100.0);
        } else {
            std::printf(" %9s %9s %9s\n", "-", "-", "-");
        }
    }
    if (source != perf::CounterSource::kPerf) {
        std::printf("(no hardware PMU on this host: native columns "
                    "need the \"perf\" tier, measured tier is "
                    "\"%s\")\n",
                    perf::counterSourceName(source));
    }

    std::printf("\nimbalance (busy_cv=%.4f):\n",
                section.imbalance.busy_cv);
    std::printf("%6s %12s %8s %10s %8s\n", "tid", "wall_ms", "busy%",
                "barrier%", "steal%");
    for (const obs::ThreadImbalance& t : section.imbalance.threads) {
        std::printf("%6d %12.3f %8.2f %10.2f %8.2f\n", t.tid,
                    t.wall_ns * 1e-6, t.busy_frac * 100.0,
                    t.barrier_frac * 100.0, t.steal_frac * 100.0);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    const ProfileOptions opt = parseProfileOptions(argc, argv);
    namespace gen = graph::generators;

    std::printf("hardware-counter profile (threads=%d, sources=%d, "
                "trials=%d, seed=%llu)\n",
                opt.threads, opt.sources, opt.trials,
                static_cast<unsigned long long>(opt.base.seed));

    obs::ProfileReport report;
    report.source = obs::perf::CounterSource::kNone;

    if (opt.input == "all" || opt.input == "road") {
        const VertexId side = opt.base.quick ? 64 : 256;
        const graph::Graph road =
            gen::roadNetwork(side, side, opt.base.seed);
        const std::string tag =
            "road(" + std::to_string(side) + "^2)";
        report.sections.push_back(profileSection(
            opt, road, tag, &report.source, &report.multiplexed));
        if (!opt.no_sim) {
            addSimRows(opt, report.sections.back());
        }
    }
    if (opt.input == "all" || opt.input == "social") {
        const unsigned scale = opt.base.quick ? 12 : 16;
        const graph::Graph social =
            gen::socialNetwork(scale, 14, opt.base.seed + 1);
        const std::string tag =
            "social(2^" + std::to_string(scale) + ",ef14)";
        report.sections.push_back(profileSection(
            opt, social, tag, &report.source, &report.multiplexed));
        if (!opt.no_sim) {
            addSimRows(opt, report.sections.back());
        }
    }

    std::printf("counter source: %s%s\n",
                obs::perf::counterSourceName(report.source),
                report.multiplexed ? " (multiplexed, scaled)" : "");
    for (const obs::ProfileSection& s : report.sections) {
        printSection(s, report.source);
    }

    if (!opt.base.json_dir.empty()) {
        const std::string path =
            opt.base.json_dir + "/table_profile.json";
        if (!report.writeJson(path)) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return 1;
        }
        std::printf("\nwrote %s (%zu sections)\n", path.c_str(),
                    report.sections.size());
    }
    (void)g_sink;
    return 0;
}
